package vini_test

// Zero-allocation guard for the steady-state IIAS forwarding fast path:
// tunnel-in -> CheckIPHeader -> DecIPTTL -> FIB lookup -> encap table ->
// in-place UDP/IPv4 re-encapsulation -> tunnel-out. With pooled packets,
// version-cached FIB lookups, and headroom header serialization, the whole
// chain must run at 0 allocations per packet.

import (
	"net/netip"
	"runtime/debug"
	"testing"

	"vini/internal/click"
	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// tunnelRelease models the substrate's tunnel transport on the fast path:
// write the outer UDP and IPv4 headers into the packet's headroom exactly
// as Process.SendUDPPacket does, then return the buffer to the pool (the
// wire hand-off of the real stack).
type tunnelRelease struct {
	local netip.Addr
	sent  int
}

func (t *tunnelRelease) SendTunnel(e fib.EncapEntry, p *packet.Packet) {
	packet.EncapUDP(p, t.local, e.Remote, 33000, e.Port)
	packet.EncapIPv4(p, &packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: t.local, Dst: e.Remote})
	t.sent++
	p.Release()
}

func buildFastPath(tb testing.TB) (*click.Router, *tunnelRelease, []byte) {
	tb.Helper()
	loop := sim.NewLoop(1)
	local := netip.MustParseAddr("198.32.154.40")
	tun := &tunnelRelease{local: local}
	ctx := &click.Context{
		Clock: loop, RNG: loop.RNG(),
		FIB:       fib.New(),
		Encap:     fib.NewEncapTable(),
		Tunnels:   tun,
		Tap:       tapDiscard{},
		LocalAddr: packet.Flow{Src: netip.MustParseAddr("10.1.0.1")},
	}
	nh := netip.MustParseAddr("10.1.128.2")
	ctx.FIB.Add(fib.Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: nh, OutPort: 0})
	ctx.Encap.Set(fib.EncapEntry{NextHop: nh, Remote: netip.MustParseAddr("198.32.154.41"), Port: 33000})
	r, err := click.ParseConfig(ctx, `
		fromtun :: FromTunnel;
		chk :: CheckIPHeader;
		dec :: DecIPTTL;
		rt :: LookupIPRoute;
		encap :: EncapTunnel;
		fromtun -> chk; chk[0] -> dec; dec[0] -> rt; rt[0] -> encap;
	`)
	if err != nil {
		tb.Fatal(err)
	}
	if err := r.Initialize(); err != nil {
		tb.Fatal(err)
	}
	tmpl := packet.BuildUDP(netip.MustParseAddr("10.1.0.9"), netip.MustParseAddr("10.1.0.7"),
		1, 2, 64, make([]byte, 1400))
	return r, tun, tmpl
}

func TestForwardingFastPathZeroAlloc(t *testing.T) {
	r, tun, tmpl := buildFastPath(t)
	forward := func() {
		p := packet.Get()
		copy(p.Extend(len(tmpl)), tmpl)
		r.Push("fromtun", 0, p)
	}
	// Warm up: compile the FIB's stride table, populate the per-element
	// route and encap caches, and grow the pooled buffer once.
	for i := 0; i < 32; i++ {
		forward()
	}
	// GC during measurement would drain the sync.Pool and charge the
	// refill to the forwarding path; disable it for a deterministic count.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(200, forward); allocs != 0 {
		t.Fatalf("forwarding fast path: %.1f allocs/packet, want 0", allocs)
	}
	if tun.sent == 0 {
		t.Fatal("no packets reached the tunnel transport")
	}
}

// TestInstrumentedFastPathZeroAlloc guards the telemetry overhead
// budget: the same forwarding chain with per-element counters, the
// packet-trace hook, and a flight recorder attached must still run at 0
// allocations per packet — for ordinary packets (whose only added cost
// is one Paint comparison in the trace hook) and for painted packets
// (whose every element hop lands in the recorder ring).
func TestInstrumentedFastPathZeroAlloc(t *testing.T) {
	loop := sim.NewLoop(1)
	local := netip.MustParseAddr("198.32.154.40")
	tun := &tunnelRelease{local: local}
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(0)
	rec.EnsureDomain(loop.Domain.ID())
	scope := reg.Scope("iias", "fwdr")
	ctx := &click.Context{
		Clock: loop, RNG: loop.RNG(),
		FIB:       fib.New(),
		Encap:     fib.NewEncapTable(),
		Tunnels:   tun,
		Tap:       tapDiscard{},
		LocalAddr: packet.Flow{Src: netip.MustParseAddr("10.1.0.1")},
		Metrics:   scope,
		Trace: func(el, ev string, p *packet.Packet) {
			if p != nil && p.Anno.Paint == telemetry.TracePaint {
				rec.Record(loop.Domain, telemetry.Event{
					Kind: telemetry.EvPacket, Slice: "iias", Node: "fwdr",
					Elem: el, Detail: ev, Value: int64(p.Len()),
				})
			}
		},
	}
	nh := netip.MustParseAddr("10.1.128.2")
	ctx.FIB.Add(fib.Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: nh, OutPort: 0})
	ctx.Encap.Set(fib.EncapEntry{NextHop: nh, Remote: netip.MustParseAddr("198.32.154.41"), Port: 33000})
	r, err := click.ParseConfig(ctx, `
		fromtun :: FromTunnel;
		chk :: CheckIPHeader;
		dec :: DecIPTTL;
		rt :: LookupIPRoute;
		encap :: EncapTunnel;
		fromtun -> chk; chk[0] -> dec; dec[0] -> rt; rt[0] -> encap;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Initialize(); err != nil {
		t.Fatal(err)
	}
	tmpl := packet.BuildUDP(netip.MustParseAddr("10.1.0.9"), netip.MustParseAddr("10.1.0.7"),
		1, 2, 64, make([]byte, 1400))
	forward := func(paint int) {
		p := packet.Get()
		copy(p.Extend(len(tmpl)), tmpl)
		p.Anno.Paint = paint
		r.Push("fromtun", 0, p)
	}
	for i := 0; i < 32; i++ {
		forward(0)
		forward(telemetry.TracePaint)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(200, func() { forward(0) }); allocs != 0 {
		t.Fatalf("instrumented fast path (unpainted): %.1f allocs/packet, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { forward(telemetry.TracePaint) }); allocs != 0 {
		t.Fatalf("instrumented fast path (painted): %.1f allocs/packet, want 0", allocs)
	}
	if tun.sent == 0 {
		t.Fatal("no packets reached the tunnel transport")
	}
	// The instrumentation actually observed the traffic.
	if c := reg.FindCounter("iias", "fwdr", "click/encap/sent"); c == nil || c.Value() == 0 {
		t.Fatal("click/encap/sent counter missing or zero")
	}
	hops := telemetry.PacketPath(rec.Events())
	if len(hops) == 0 {
		t.Fatal("painted packets left no trace in the flight recorder")
	}
}

// extRelease models the egress node's hand-off of a post-NAT packet to
// the node's real network stack: count and recycle.
type extRelease struct{ sent int }

func (e *extRelease) SendExternal(p *packet.Packet) {
	e.sent++
	p.Release()
}

// TestNAPTEgressZeroAlloc guards the egress NAPT path: once a flow's
// binding exists, in-place translation (RFC 1624 incremental checksums,
// pooled buffer kept) through IPNAPT -> ToExternal must run at 0
// allocations per packet.
func TestNAPTEgressZeroAlloc(t *testing.T) {
	loop := sim.NewLoop(1)
	ext := &extRelease{}
	ctx := &click.Context{Clock: loop, RNG: loop.RNG(), External: ext}
	r, err := click.ParseConfig(ctx, `
		napt :: IPNAPT(198.32.154.226);
		ext :: ToExternal;
		napt[0] -> ext;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Initialize(); err != nil {
		t.Fatal(err)
	}
	tmpl := packet.BuildUDP(netip.MustParseAddr("10.1.0.9"), netip.MustParseAddr("128.112.139.43"),
		4321, 53, 64, make([]byte, 1400))
	egress := func() {
		p := packet.Get()
		copy(p.Extend(len(tmpl)), tmpl)
		r.Push("napt", 0, p)
	}
	// Warm up: the first packet allocates the flow's binding; later
	// packets of the same flow hit it.
	for i := 0; i < 32; i++ {
		egress()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(200, egress); allocs != 0 {
		t.Fatalf("NAPT egress path: %.1f allocs/packet, want 0", allocs)
	}
	if ext.sent == 0 {
		t.Fatal("no packets reached the external sink")
	}
}

// TestFastPathEncapsulationBytes pins the in-place encapsulation output to
// the allocating reference builders, so the zero-alloc path cannot drift
// from the wire format.
func TestFastPathEncapsulationBytes(t *testing.T) {
	src := netip.MustParseAddr("198.32.154.40")
	dst := netip.MustParseAddr("198.32.154.41")
	payload := []byte("inner datagram bytes")
	want := packet.BuildUDP(src, dst, 33000, 33001, 64, payload)

	p := packet.Get()
	defer p.Release()
	copy(p.Extend(len(payload)), payload)
	packet.EncapUDP(p, src, dst, 33000, 33001)
	packet.EncapIPv4(p, &packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst})
	if string(p.Data) != string(want) {
		t.Fatalf("in-place encap differs from reference:\n got %x\nwant %x", p.Data, want)
	}
}
