package vini_test

// One benchmark per table and figure of the paper's evaluation
// (Section 5), each reporting the headline quantity as a custom metric
// so `go test -bench=. -benchmem` regenerates the evaluation:
//
//	BenchmarkTable2_*    Mb/s and forwarder CPU on the DETER testbed
//	BenchmarkTable3_*    ping RTT on DETER
//	BenchmarkTable4_*    Mb/s on PlanetLab (native / default share / PL-VINI)
//	BenchmarkTable5_*    ping RTT on PlanetLab
//	BenchmarkTable6_*    jitter on PlanetLab
//	BenchmarkFigure6_*   UDP loss at 45 Mb/s
//	BenchmarkFigure8     OSPF convergence (seconds of outage; RTTs)
//	BenchmarkFigure9     TCP through the failure (MB transferred)
//
// Plus microbenchmarks of the substrate hot paths.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"vini/internal/click"
	"vini/internal/experiment"
	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/sim"
)

func benchThroughput(b *testing.B, fn func(seed int64) (experiment.ThroughputResult, error)) {
	b.Helper()
	var mbps, cpu float64
	for i := 0; i < b.N; i++ {
		r, err := fn(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		mbps += r.Mbps
		cpu += r.CPU
	}
	b.ReportMetric(mbps/float64(b.N), "Mb/s")
	b.ReportMetric(100*cpu/float64(b.N), "fwdrCPU%")
}

func benchPing(b *testing.B, fn func(seed int64) (experiment.PingResult, error)) {
	b.Helper()
	var avg, mdev float64
	for i := 0; i < b.N; i++ {
		r, err := fn(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		avg += r.Avg
		mdev += r.Mdev
	}
	b.ReportMetric(avg/float64(b.N), "avg-ms")
	b.ReportMetric(mdev/float64(b.N), "mdev-ms")
}

// --- Table 2: TCP throughput on DETER (paper: 940 vs 195 Mb/s) ---

func BenchmarkTable2_Network(b *testing.B) {
	benchThroughput(b, func(seed int64) (experiment.ThroughputResult, error) {
		return experiment.Table2(seed, false, 3*time.Second)
	})
}

func BenchmarkTable2_IIAS(b *testing.B) {
	benchThroughput(b, func(seed int64) (experiment.ThroughputResult, error) {
		return experiment.Table2(seed, true, 3*time.Second)
	})
}

// --- Table 3: ping on DETER (paper: 0.414 vs 0.547 ms) ---

func BenchmarkTable3_Network(b *testing.B) {
	benchPing(b, func(seed int64) (experiment.PingResult, error) {
		return experiment.Table3(seed, false, 2000)
	})
}

func BenchmarkTable3_IIAS(b *testing.B) {
	benchPing(b, func(seed int64) (experiment.PingResult, error) {
		return experiment.Table3(seed, true, 2000)
	})
}

// --- Table 4: TCP on PlanetLab (paper: 90.8 / 22.5 / 86.2 Mb/s) ---

func benchTable4(b *testing.B, mode experiment.Mode) {
	benchThroughput(b, func(seed int64) (experiment.ThroughputResult, error) {
		return experiment.Table4(seed, mode, 5*time.Second)
	})
}

func BenchmarkTable4_Network(b *testing.B)      { benchTable4(b, experiment.ModeNative) }
func BenchmarkTable4_DefaultShare(b *testing.B) { benchTable4(b, experiment.ModeDefaultShare) }
func BenchmarkTable4_PLVINI(b *testing.B)       { benchTable4(b, experiment.ModePLVINI) }

// --- Table 5: ping on PlanetLab (paper avg: 24.5 / 27.7 / 25.1 ms) ---

func benchTable5(b *testing.B, mode experiment.Mode) {
	benchPing(b, func(seed int64) (experiment.PingResult, error) {
		return experiment.Table5(seed, mode, 800)
	})
}

func BenchmarkTable5_Network(b *testing.B)      { benchTable5(b, experiment.ModeNative) }
func BenchmarkTable5_DefaultShare(b *testing.B) { benchTable5(b, experiment.ModeDefaultShare) }
func BenchmarkTable5_PLVINI(b *testing.B)       { benchTable5(b, experiment.ModePLVINI) }

// --- Table 6: jitter on PlanetLab (paper mean: 0.27 / 2.4 / 1.3 ms) ---

func benchTable6(b *testing.B, mode experiment.Mode) {
	var jitter float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table6(int64(i+1), mode)
		if err != nil {
			b.Fatal(err)
		}
		jitter += r.Mean
	}
	b.ReportMetric(jitter/float64(b.N), "jitter-ms")
}

func BenchmarkTable6_Network(b *testing.B)      { benchTable6(b, experiment.ModeNative) }
func BenchmarkTable6_DefaultShare(b *testing.B) { benchTable6(b, experiment.ModeDefaultShare) }
func BenchmarkTable6_PLVINI(b *testing.B)       { benchTable6(b, experiment.ModePLVINI) }

// --- Figure 6: loss vs rate (paper: ~14% at 45 Mb/s on default share) ---

func benchFigure6(b *testing.B, mode experiment.Mode) {
	var loss45 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiment.Figure6(int64(i+1), mode, []float64{45}, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		loss45 += pts[0].LossPct
	}
	b.ReportMetric(loss45/float64(b.N), "loss45Mbps-%")
}

func BenchmarkFigure6_DefaultShare(b *testing.B) { benchFigure6(b, experiment.ModeDefaultShare) }
func BenchmarkFigure6_PLVINI(b *testing.B)       { benchFigure6(b, experiment.ModePLVINI) }

// --- Figure 8: OSPF convergence (paper: outage 10s->17s, 76->93 ms) ---

func BenchmarkFigure8(b *testing.B) {
	var outage, preRTT, postRTT float64
	for i := 0; i < b.N; i++ {
		e, err := experiment.NewAbilene(int64(i + 2))
		if err != nil {
			b.Fatal(err)
		}
		pts, err := e.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		firstLost, firstAfter := -1.0, -1.0
		var pre, post sim.Stats
		for _, p := range pts {
			switch {
			case p.Lost && firstLost < 0:
				firstLost = p.T
			case !p.Lost && p.T > firstLost && firstLost > 0 && firstAfter < 0:
				firstAfter = p.T
			}
			if !p.Lost && p.T < 10 {
				pre.Add(p.RTTms)
			}
			if !p.Lost && p.T > 25 && p.T < 33 {
				post.Add(p.RTTms)
			}
		}
		outage += firstAfter - firstLost
		preRTT += pre.Mean()
		postRTT += post.Mean()
	}
	b.ReportMetric(outage/float64(b.N), "outage-s")
	b.ReportMetric(preRTT/float64(b.N), "preRTT-ms")
	b.ReportMetric(postRTT/float64(b.N), "postRTT-ms")
}

// --- Figure 9: TCP across the failure (paper: stall 10-18s) ---

func BenchmarkFigure9(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		e, err := experiment.NewAbilene(int64(i + 2))
		if err != nil {
			b.Fatal(err)
		}
		arr, err := e.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if len(arr) > 0 {
			total += arr[len(arr)-1].MB
		}
	}
	b.ReportMetric(total/float64(b.N), "MB-in-50s")
}

// --- substrate microbenchmarks ---

func BenchmarkFIBLookup(b *testing.B) {
	t := fib.New()
	for i := 0; i < 1024; i++ {
		a := netip.AddrFrom4([4]byte{10, byte(i >> 4), byte(i << 4), 0})
		t.Add(fib.Route{Prefix: netip.PrefixFrom(a, 20)})
	}
	dst := netip.MustParseAddr("10.1.2.3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(dst)
	}
}

// BenchmarkFIBCacheLookup measures the per-consumer version-stamped cache
// in front of the table (the LookupIPRoute element's hot path).
func BenchmarkFIBCacheLookup(b *testing.B) {
	t := fib.New()
	for i := 0; i < 1024; i++ {
		a := netip.AddrFrom4([4]byte{10, byte(i >> 4), byte(i << 4), 0})
		t.Add(fib.Route{Prefix: netip.PrefixFrom(a, 20)})
	}
	c := fib.NewCache(t)
	dst := netip.MustParseAddr("10.1.2.3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(dst)
	}
}

func BenchmarkIPv4ParseMarshal(b *testing.B) {
	src := netip.MustParseAddr("10.1.1.2")
	dst := netip.MustParseAddr("10.1.2.3")
	d := packet.BuildUDP(src, dst, 1, 2, 64, make([]byte, 1400))
	b.SetBytes(int64(len(d)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var h packet.IPv4
		if _, err := h.Parse(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packet.Checksum(buf)
	}
}

// BenchmarkClickForward pushes packets through the full IIAS element
// graph (classify, check, TTL, FIB lookup, encap).
func BenchmarkClickForward(b *testing.B) {
	loop := sim.NewLoop(1)
	ctx := &click.Context{
		Clock: loop, RNG: loop.RNG(),
		FIB:       fib.New(),
		Encap:     fib.NewEncapTable(),
		Tunnels:   tunnelDiscard{},
		Tap:       tapDiscard{},
		LocalAddr: packet.Flow{Src: netip.MustParseAddr("10.1.0.1")},
	}
	nh := netip.MustParseAddr("10.1.128.2")
	ctx.FIB.Add(fib.Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: nh, OutPort: 0})
	ctx.Encap.Set(fib.EncapEntry{NextHop: nh, Remote: netip.MustParseAddr("198.32.154.41"), Port: 33000})
	r, err := click.ParseConfig(ctx, `
		fromtun :: FromTunnel;
		chk :: CheckIPHeader;
		dec :: DecIPTTL;
		rt :: LookupIPRoute;
		encap :: EncapTunnel;
		fromtun -> chk; chk[0] -> dec; dec[0] -> rt; rt[0] -> encap;
	`)
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Initialize(); err != nil {
		b.Fatal(err)
	}
	tmpl := packet.BuildUDP(netip.MustParseAddr("10.1.0.9"), netip.MustParseAddr("10.1.0.7"), 1, 2, 64, make([]byte, 1400))
	b.SetBytes(int64(len(tmpl)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := packet.New(append([]byte(nil), tmpl...))
		r.Push("fromtun", 0, p)
	}
}

// BenchmarkClickForwardPooled is the same element graph driven with pooled
// packets and a releasing tunnel sink that re-encapsulates in headroom —
// the configuration the zero-alloc guard (TestForwardingFastPathZeroAlloc)
// pins at 0 allocs/op.
func BenchmarkClickForwardPooled(b *testing.B) {
	r, _, tmpl := buildFastPath(b)
	b.SetBytes(int64(len(tmpl)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := packet.Get()
		copy(p.Extend(len(tmpl)), tmpl)
		r.Push("fromtun", 0, p)
	}
}

type tunnelDiscard struct{}

func (tunnelDiscard) SendTunnel(fib.EncapEntry, *packet.Packet) {}

type tapDiscard struct{}

func (tapDiscard) DeliverTap(*packet.Packet) {}

// BenchmarkSimLoop measures raw event throughput of the kernel.
func BenchmarkSimLoop(b *testing.B) {
	loop := sim.NewLoop(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			loop.Schedule(time.Microsecond, tick)
		}
	}
	loop.Schedule(time.Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	loop.RunAll()
	if n < b.N {
		b.Fatal("loop ended early")
	}
}

// TestBenchmarksCompile keeps the fmt import honest and documents where
// captured results live.
func TestBenchmarksCompile(t *testing.T) {
	_ = fmt.Sprintf("see EXPERIMENTS.md for paper-vs-measured tables")
}

// --- ablation benchmarks (DESIGN.md design-choice studies) ---

func BenchmarkAblationCPUIsolation(b *testing.B) {
	var gainMbps, mdevRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiment.CPUIsolationAblation(int64(i+3), 12*time.Second, 300)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]experiment.IsolationRow{}
		for _, r := range rows {
			byName[r.Name] = r
		}
		gainMbps += byName["reservation + RT (PL-VINI)"].Mbps - byName["default share"].Mbps
		if m := byName["reservation + RT (PL-VINI)"].PingMdev; m > 0 {
			mdevRatio += byName["default share"].PingMdev / m
		}
	}
	b.ReportMetric(gainMbps/float64(b.N), "plvini-gain-Mb/s")
	b.ReportMetric(mdevRatio/float64(b.N), "mdev-improvement-x")
}

func BenchmarkAblationSocketBuffer(b *testing.B) {
	var knee float64
	for i := 0; i < b.N; i++ {
		rows, err := experiment.SocketBufferAblation(int64(i+4), []int{32, 128, 1024}, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		knee += rows[0].LossPct - rows[2].LossPct
	}
	b.ReportMetric(knee/float64(b.N), "loss32KB-minus-1MB-%")
}

func BenchmarkAblationPacketSize(b *testing.B) {
	var kpps64 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiment.PacketSizeAblation(int64(i+5), []int{64, 1400}, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		kpps64 += rows[0].KppsMeasured
	}
	b.ReportMetric(kpps64/float64(b.N), "64B-kpps")
}

func BenchmarkAblationBGPMux(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BGPMuxAblation(8); err != nil {
			b.Fatal(err)
		}
	}
}
