module vini

go 1.22
