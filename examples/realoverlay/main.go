// Real overlay: the same IIAS router — Click graph, FIB, OSPF — running
// over real UDP sockets on loopback. Three nodes form a triangle, real
// hello packets maintain real adjacencies, a packet is forwarded end to
// end, and failing one tunnel inside Click makes live OSPF reroute
// around it. Run several cmd/iiasd processes across machines for the
// distributed version.
package main

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/overlay"
	"vini/internal/packet"
)

func main() {
	mk := func(name, tap string) *overlay.Node {
		n, err := overlay.NewNode(overlay.Config{
			Name: name, Listen: "127.0.0.1:0",
			TapAddr: netip.MustParseAddr(tap),
			Hello:   300 * time.Millisecond, Dead: 900 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		return n
	}
	a := mk("a", "10.99.0.1")
	b := mk("b", "10.99.0.2")
	c := mk("c", "10.99.0.3")
	defer a.Close()
	defer b.Close()
	defer c.Close()

	subnet := byte(9)
	link := func(x, y *overlay.Node, cost uint32) {
		subnet++
		px := netip.AddrFrom4([4]byte{10, 99, subnet, 1})
		py := netip.AddrFrom4([4]byte{10, 99, subnet, 2})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 99, subnet, 0}), 30)
		must(x.AddPeer(overlay.PeerConfig{Remote: y.LocalAddr(), LocalIf: px, PeerIf: py, Prefix: prefix, Cost: cost}))
		must(y.AddPeer(overlay.PeerConfig{Remote: x.LocalAddr(), LocalIf: py, PeerIf: px, Prefix: prefix, Cost: cost}))
	}
	// Triangle: the a-b direct link is cheap; the detour via c costs more.
	link(a, b, 1)
	link(a, c, 10)
	link(c, b, 10)

	got := make(chan string, 16)
	b.OnDeliver(func(d []byte) {
		var ip packet.IPv4
		seg, err := ip.Parse(d)
		if err != nil {
			return
		}
		var u packet.UDP
		if body, err := u.Parse(seg); err == nil {
			got <- fmt.Sprintf("%q (TTL left %d)", body, ip.TTL)
		}
	})
	for _, n := range []*overlay.Node{a, b, c} {
		must(n.Start())
		fmt.Printf("node %v live on %s\n", n.TapAddr(), n.LocalAddr())
	}

	waitRoute := func(n *overlay.Node, pfx string, what string) {
		deadline := time.Now().Add(20 * time.Second)
		p := netip.MustParsePrefix(pfx)
		for time.Now().Before(deadline) {
			for _, r := range n.Routes() {
				if r.Prefix == p {
					fmt.Printf("%s: %s\n", what, r)
					return
				}
			}
			time.Sleep(100 * time.Millisecond)
		}
		panic("timed out waiting for " + what)
	}
	waitRoute(a, "10.99.0.2/32", "a's route to b (direct, metric 1)")

	send := func(tag string) {
		d := packet.BuildUDP(a.TapAddr(), b.TapAddr(), 1000, 2000, 64, []byte(tag))
		a.Send(d)
		select {
		case msg := <-got:
			fmt.Printf("b received %s\n", msg)
		case <-time.After(5 * time.Second):
			fmt.Println("b received nothing within 5s")
		}
	}
	send("over the direct a-b tunnel")

	fmt.Println("failing the a-b tunnel inside Click on both ends...")
	a.FailTunnel(0, true)
	b.FailTunnel(0, true)
	// Wait for OSPF to reroute via c (metric 20).
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		rerouted := false
		for _, r := range a.Routes() {
			if r.Prefix == netip.MustParsePrefix("10.99.0.2/32") && r.Metric == 20 {
				rerouted = true
				fmt.Printf("a rerouted: %s\n", r)
			}
		}
		if rerouted {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	send("after live reroute via c")
	fmt.Println("done: live OSPF rerouted around a failure injected in the data plane")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
