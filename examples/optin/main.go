// Opt-in: the paper's Figure 2 "life of a packet". An end host connects
// an OpenVPN-style client to an IIAS ingress node; its web request rides
// the overlay across Abilene to the egress node, leaves through NAT to a
// server that never heard of VINI, and the response returns through the
// overlay to the client. Element-level trace events from the transit
// Click processes are printed along the way.
package main

import (
	"fmt"
	"net/netip"
	"time"

	"vini"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/topology"
)

func main() {
	v, err := vini.BuildAbilene(7, vini.PlanetLabProfile())
	if err != nil {
		panic(err)
	}
	// An end-host client near Washington D.C. and a web server ("CNN" in
	// the paper's figure) attached beyond New York.
	clientPub := netip.MustParseAddr("128.112.93.81")
	serverPub := netip.MustParseAddr("64.236.16.20")
	mustNode(v, "client", clientPub)
	mustNode(v, "webserver", serverPub)
	mustLink(v, "client", topology.Washington, 5*time.Millisecond)
	mustLink(v, "webserver", topology.NewYork, 2*time.Millisecond)
	v.ComputeRoutes()

	s, err := vini.MirrorAbilene(v, vini.SliceConfig{Name: "iias", CPUShare: 0.25, RT: true}, time.Second, 3*time.Second)
	if err != nil {
		panic(err)
	}
	wash, _ := s.VirtualNode(topology.Washington)
	ny, _ := s.VirtualNode(topology.NewYork)

	// New York is the egress: NAT to the real Internet. Washington is
	// the ingress: an OpenVPN-style server for opt-in clients.
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(3 * i)
	}
	clientOverlay := netip.MustParseAddr("10.1.0.87")
	if err := ny.EnableEgress(); err != nil {
		panic(err)
	}
	if err := wash.EnableVPNServer(1194); err != nil {
		panic(err)
	}
	if err := wash.RegisterVPNClient(clientOverlay, key); err != nil {
		panic(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second) // converge

	// Trace the packet through the ingress and egress Click processes.
	for _, vn := range []*vini.VirtualNode{wash, ny} {
		name := vn.Phys().Name()
		vn.Trace = func(el, ev string, p *packet.Packet) {
			if f, ok := packet.FlowOf(p.Data); ok && (f.DstPort == 80 || f.SrcPort == 80) {
				fmt.Printf("  [%s click] %s: %s (%s)\n", name, el, ev, f)
			}
		}
	}

	// The client opts in: capture the server's prefix and the overlay.
	vc, err := vini.NewVPNClient(v, "client", clientOverlay, key,
		netip.AddrPortFrom(wash.Phys().Addr(), 1194),
		[]netip.Prefix{s.Prefix(), netip.PrefixFrom(serverPub, 32)})
	if err != nil {
		panic(err)
	}

	// The web server answers on UDP port 80 (a one-packet HTTP stand-in).
	web, _ := v.Net.Node("webserver")
	web.StackListenUDP(80, func(d []byte) {
		f, _ := packet.FlowOf(d)
		fmt.Printf("  [webserver] request from %v:%d (the egress NAT address)\n", f.Src, f.SrcPort)
		resp := packet.BuildUDP(serverPub, f.Src, 80, f.SrcPort, 64, []byte("HTTP/1.0 200 OK"))
		web.StackSend(resp)
	})

	// The client's browser sends the request; the client node's VPN tun
	// device captures it.
	var response string
	client, _ := v.Net.Node("client")
	client.StackListenUDP(5555, func(d []byte) {
		var ip packet.IPv4
		seg, _ := ip.Parse(d)
		var u packet.UDP
		body, _ := u.Parse(seg)
		response = string(body)
	})
	fmt.Println("life of a packet (Firefox -> CNN in the paper's Figure 2):")
	fmt.Printf("  [client] sends UDP %v:5555 -> %v:80 into the VPN tun device\n", clientOverlay, serverPub)
	req := packet.BuildUDP(clientOverlay, serverPub, 5555, 80, 64, []byte("GET / HTTP/1.0"))
	client.StackSend(req)
	v.Run(v.Loop().Now() + 20*time.Second)
	if response == "" {
		panic("no response returned through the overlay")
	}
	fmt.Printf("  [client] received %q back through the overlay (VPN frames decrypted: %d)\n",
		response, vc.Received)
}

func mustNode(v *vini.VINI, name string, addr netip.Addr) {
	if _, err := v.AddNode(name, addr, netem.DETERProfile(), vini.SchedOptions{}); err != nil {
		panic(err)
	}
}

func mustLink(v *vini.VINI, a, b string, delay time.Duration) {
	if _, err := v.AddLink(vini.LinkConfig{A: a, B: b, Bandwidth: 100e6, Delay: delay}); err != nil {
		panic(err)
	}
}
