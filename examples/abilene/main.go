// Abilene mirror: the paper's Section 5.2 experiment end to end. The
// Abilene router configurations are parsed with the rcc machinery, the
// topology and OSPF weights drive a slice that mirrors the backbone, the
// Denver–Kansas City virtual link is failed inside Click at t=10 s and
// restored at t=34 s, and ping between Washington D.C. and Seattle shows
// OSPF convergence — Figure 8 as a program.
package main

import (
	"fmt"
	"strings"
	"time"

	"vini/internal/experiment"
	"vini/internal/topology"
	"vini/internal/traffic"
)

func main() {
	fmt.Println("building VINI from the Abilene router configurations (rcc)...")
	e, err := experiment.NewAbilene(2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("overlay converged; OSPF hello %s, dead %s\n", e.Hello, e.Dead)
	fmt.Println("pinging washington -> seattle every 200 ms;")
	fmt.Println("failing denver--kansas-city inside Click at t=10 s, restoring at t=34 s")
	pts, err := e.Figure8()
	if err != nil {
		panic(err)
	}
	// Render an ASCII Figure 8: one row per second.
	const width = 50
	scale := func(rtt float64) int {
		// 70 ms..120 ms mapped onto the row.
		pos := int((rtt - 70) / 50 * width)
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		return pos
	}
	fmt.Printf("%6s  %-*s  %s\n", "t(s)", width, "70ms"+strings.Repeat(" ", width-9)+"120ms", "rtt")
	for sec := 0; sec < 50; sec += 1 {
		var rtts []float64
		lost := 0
		for _, p := range pts {
			if int(p.T) != sec {
				continue
			}
			if p.Lost {
				lost++
			} else {
				rtts = append(rtts, p.RTTms)
			}
		}
		row := []byte(strings.Repeat(".", width))
		label := ""
		for _, r := range rtts {
			row[scale(r)] = '*'
		}
		if len(rtts) > 0 {
			label = fmt.Sprintf("%.1f ms", rtts[len(rtts)-1])
		}
		if lost > 0 {
			label += fmt.Sprintf("  (%d lost)", lost)
		}
		fmt.Printf("%6d  %s  %s\n", sec, row, label)
	}
	fmt.Println("\npaper: 76 ms default path via New York/Chicago/Indianapolis/Kansas City/Denver;")
	fmt.Println("       93 ms failover via Atlanta/Houston/Los Angeles/Sunnyvale;")
	fmt.Println("       transient mixed paths appear briefly at each transition.")

	// Read the recovered default path back out hop by hop: each transit
	// Click's ICMPError element answers the TTL-limited probes.
	fmt.Println("\ntraceroute washington -> seattle (after restoration):")
	wash, _ := e.Slice.VirtualNode(topology.Washington)
	sea, _ := e.Slice.VirtualNode(topology.Seattle)
	h := traffic.NewICMPHost(wash.Phys())
	tr := h.StartTraceroute(e.V.Loop(), traffic.TracerouteConfig{
		Src: wash.TapAddr, Dst: sea.TapAddr})
	e.V.Run(e.V.Loop().Now() + 60*time.Second)
	for _, hop := range tr.Hops {
		name := "?"
		for _, n := range e.Slice.VirtualNodes() {
			if vn, _ := e.Slice.VirtualNode(n); vn.TapAddr == hop.Addr {
				name = n
			}
		}
		fmt.Printf("  %2d  %-15v %-14s %.1f ms\n", hop.TTL, hop.Addr, name,
			float64(hop.RTT)/float64(time.Millisecond))
	}
}
