// Simultaneous experiments: two slices share the same physical Abilene
// substrate — one runs OSPF, the other RIP — with isolated address
// blocks, ports, and failures, demonstrating the paper's Section 3.4
// requirements. A third part shows the Section 6.1 BGP multiplexer: both
// experiments share one external BGP adjacency, with ownership filtering
// and update rate limiting; and the conclusion's atomic protocol
// switchover runs on a dual-protocol slice.
package main

import (
	"fmt"
	"net/netip"
	"time"

	"vini"
	"vini/internal/bgp"
	"vini/internal/sim"
	"vini/internal/topology"
)

func main() {
	v, err := vini.BuildAbilene(11, vini.PlanetLabProfile())
	if err != nil {
		panic(err)
	}
	mirror := func(name string) *vini.Slice {
		s, err := v.CreateSlice(vini.SliceConfig{Name: name, CPUShare: 0.2, RT: true})
		if err != nil {
			panic(err)
		}
		g := vini.Abilene()
		for _, n := range g.Nodes() {
			if _, err := s.AddVirtualNode(n); err != nil {
				panic(err)
			}
		}
		for _, l := range g.Links() {
			if _, err := s.ConnectVirtual(l.A, l.B, l.CostAB); err != nil {
				panic(err)
			}
		}
		return s
	}

	ospfSlice := mirror("ospf-experiment")
	ripSlice := mirror("rip-experiment")
	ospfSlice.StartOSPF(time.Second, 3*time.Second)
	ripSlice.StartRIP(2 * time.Second)
	v.Run(90 * time.Second)

	show := func(s *vini.Slice, label string) {
		w, _ := s.VirtualNode(topology.Washington)
		sea, _ := s.VirtualNode(topology.Seattle)
		r, ok := w.FIB.Lookup(sea.TapAddr)
		fmt.Printf("%-16s washington->seattle (%v): ", label, sea.TapAddr)
		if ok {
			fmt.Printf("via %v metric %d (%s)\n", r.NextHop, r.Metric, r.Proto)
		} else {
			fmt.Println("no route")
		}
	}
	fmt.Println("two slices share the substrate with disjoint address blocks:")
	fmt.Printf("  %s: %v    %s: %v\n", ospfSlice.Name(), ospfSlice.Prefix(), ripSlice.Name(), ripSlice.Prefix())
	show(ospfSlice, "OSPF slice")
	show(ripSlice, "RIP slice")

	// Fail Denver-KC in the OSPF slice only; the RIP slice is untouched.
	vl, _ := ospfSlice.FindVirtualLink(topology.Denver, topology.KansasCity)
	vl.SetFailed(true)
	v.Run(v.Loop().Now() + 30*time.Second)
	fmt.Println("\nafter failing denver--kansas-city inside the OSPF slice only:")
	show(ospfSlice, "OSPF slice")
	show(ripSlice, "RIP slice")

	// --- BGP multiplexer (Section 6.1) ---
	fmt.Println("\nBGP multiplexer: one external adjacency shared by both experiments")
	loop := v.Loop()
	mux := bgp.NewMux(loop, bgp.MuxConfig{ASN: 64600, RouterID: 99,
		NextHopSelf: netip.MustParseAddr("198.32.154.50"), HoldTime: 30 * time.Second})
	upstream := bgp.NewSpeaker(loop, bgp.Config{ASN: 7018, RouterID: 1,
		NextHopSelf: netip.MustParseAddr("12.0.0.1"), HoldTime: 30 * time.Second})
	wireBGP(loop, mux.Speaker(), upstream)
	must(mux.Register("ospf-experiment", netip.MustParsePrefix("198.32.0.0/20"), 2, 4))
	must(mux.Register("rip-experiment", netip.MustParsePrefix("198.32.16.0/20"), 2, 4))
	upstream.Originate(netip.MustParsePrefix("12.0.0.0/8"), bgp.PathAttrs{})
	v.Run(loop.Now() + 5*time.Second)

	must(mux.Announce("ospf-experiment", netip.MustParsePrefix("198.32.1.0/24"), bgp.PathAttrs{}))
	must(mux.Announce("rip-experiment", netip.MustParsePrefix("198.32.17.0/24"), bgp.PathAttrs{}))
	if err := mux.Announce("rip-experiment", netip.MustParsePrefix("198.32.1.0/24"), bgp.PathAttrs{}); err != nil {
		fmt.Printf("  ownership filter: %v\n", err)
	}
	for i := 0; i < 8; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 32, 2, 0}), 24)
		mux.Announce("ospf-experiment", p, bgp.PathAttrs{})
	}
	fmt.Printf("  rate limiter dropped %d of a flapping experiment's updates\n", mux.RateDropped)
	v.Run(loop.Now() + 5*time.Second)
	fmt.Println("  upstream's view over the single session:")
	for _, r := range upstream.LocRIB() {
		fmt.Printf("    %v via AS path %v\n", r.Prefix, r.Attrs.ASPath)
	}
	fmt.Println("  external routes redistributed to every experiment:")
	for _, r := range mux.ExternalRoutes() {
		fmt.Printf("    %v from %s\n", r.Prefix, r.From)
	}

	// --- Atomic switchover (conclusion) ---
	fmt.Println("\natomic protocol switchover on a dual-protocol slice:")
	dual := mirror("dual-experiment")
	dual.StartOSPF(time.Second, 3*time.Second)
	dual.StartRIP(2 * time.Second)
	v.Run(v.Loop().Now() + 60*time.Second)
	show(dual, "before (OSPF wins)")
	must(dual.SwitchProtocol("rip"))
	show(dual, "after switch to RIP")
	must(dual.SwitchProtocol("ospf"))
	show(dual, "back to OSPF")
}

// wireBGP connects two speakers with an in-memory reliable pipe on the
// simulation loop (standing in for the TCP session).
func wireBGP(loop *sim.Loop, a, b *bgp.Speaker) {
	send := func(deliver func(string, []byte) error, from string) func([]byte) {
		return func(msg []byte) {
			buf := append([]byte(nil), msg...)
			loop.Schedule(5*time.Millisecond, func() { deliver(from, buf) })
		}
	}
	must(a.AddPeer(bgp.PeerConfig{Name: "upstream", EBGP: true}, connFunc(send(b.Deliver, "vini-mux"))))
	must(b.AddPeer(bgp.PeerConfig{Name: "vini-mux", EBGP: true}, connFunc(send(a.Deliver, "upstream"))))
}

type connFunc func(msg []byte)

func (f connFunc) Send(msg []byte) { f(msg) }

func must(err error) {
	if err != nil {
		panic(err)
	}
}
