// Quickstart: build a three-node VINI deployment, embed one IIAS slice,
// run OSPF over the virtual topology, and measure it with ping and
// iperf — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"net/netip"
	"time"

	"vini"
	"vini/internal/traffic"
)

func main() {
	// Physical substrate: three hosts in a line, gigabit links.
	v := vini.New(42)
	for i, name := range []string{"left", "middle", "right"} {
		addr := netip.MustParseAddr(fmt.Sprintf("198.51.100.%d", i+1))
		if _, err := v.AddNode(name, addr, vini.PlanetLabProfile(), vini.SchedOptions{}); err != nil {
			panic(err)
		}
	}
	mustLink(v, "left", "middle", 5*time.Millisecond)
	mustLink(v, "middle", "right", 7*time.Millisecond)
	v.ComputeRoutes()

	// One slice with a CPU reservation and real-time priority (the
	// PL-VINI configuration), mirroring the physical topology.
	s, err := v.CreateSlice(vini.SliceConfig{Name: "quickstart", CPUShare: 0.25, RT: true})
	if err != nil {
		panic(err)
	}
	for _, n := range []string{"left", "middle", "right"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			panic(err)
		}
	}
	if _, err := s.ConnectVirtual("left", "middle", 10); err != nil {
		panic(err)
	}
	if _, err := s.ConnectVirtual("middle", "right", 20); err != nil {
		panic(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(20 * time.Second) // let OSPF converge

	left, _ := s.VirtualNode("left")
	right, _ := s.VirtualNode("right")
	fmt.Println(left.DumpFIB())

	// Ping across the overlay.
	traffic.NewICMPHost(right.Phys())
	h := traffic.NewICMPHost(left.Phys())
	p := h.StartPing(v.Loop(), traffic.PingConfig{
		Src: left.TapAddr, Dst: right.TapAddr,
		Interval: 100 * time.Millisecond, Count: 50,
	})
	v.Run(v.Loop().Now() + 10*time.Second)
	fmt.Printf("ping %v -> %v: %s\n", left.TapAddr, right.TapAddr, p)

	// Bulk TCP across the overlay.
	test, err := traffic.StartIperfTCP(v.Net, left.Phys(), right.Phys(), traffic.IperfTCPConfig{
		Streams: 4, Window: 64 << 10,
		SrcAddr: left.TapAddr, DstAddr: right.TapAddr,
	})
	if err != nil {
		panic(err)
	}
	v.Run(v.Loop().Now() + 5*time.Second)
	test.Stop()
	fmt.Printf("iperf: %.1f Mb/s over the overlay\n", test.Mbps())

	// Fail the left-middle virtual link inside Click: the route is
	// withdrawn when the OSPF dead interval expires.
	vl, _ := s.FindVirtualLink("left", "middle")
	vl.SetFailed(true)
	v.Run(v.Loop().Now() + 10*time.Second)
	if _, ok := left.FIB.Lookup(right.TapAddr); !ok {
		fmt.Println("after failure injection: left has no route to right (as expected: no alternate path)")
	}
}

func mustLink(v *vini.VINI, a, b string, delay time.Duration) {
	if _, err := v.AddLink(vini.LinkConfig{A: a, B: b, Bandwidth: 1e9, Delay: delay}); err != nil {
		panic(err)
	}
}
