package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"

	"vini/internal/overlay"
)

func TestPeerListSet(t *testing.T) {
	var p peerList
	if err := p.Set("127.0.0.1:7002,10.99.1.1,10.99.1.2,10.99.1.0/30,10"); err != nil {
		t.Fatalf("valid peer rejected: %v", err)
	}
	if len(p) != 1 {
		t.Fatalf("peer count = %d, want 1", len(p))
	}
	got := p[0]
	want := overlay.PeerConfig{
		Remote:  "127.0.0.1:7002",
		LocalIf: netip.MustParseAddr("10.99.1.1"),
		PeerIf:  netip.MustParseAddr("10.99.1.2"),
		Prefix:  netip.MustParsePrefix("10.99.1.0/30"),
		Cost:    10,
	}
	if got != want {
		t.Fatalf("parsed peer = %+v, want %+v", got, want)
	}
	if s := p.String(); s != "1 peers" {
		t.Fatalf("String() = %q", s)
	}

	bad := []string{
		"",                                    // empty
		"127.0.0.1:7002,10.99.1.1,10.99.1.2",  // too few fields
		"r,x,10.99.1.2,10.99.1.0/30,10",       // bad localIf
		"r,10.99.1.1,x,10.99.1.0/30,10",       // bad peerIf
		"r,10.99.1.1,10.99.1.2,not/prefix,10", // bad prefix
		"r,10.99.1.1,10.99.1.2,10.99.1.0/30,x", // bad cost
	}
	for _, s := range bad {
		if err := p.Set(s); err == nil {
			t.Errorf("Set(%q) accepted", s)
		}
	}
	if len(p) != 1 {
		t.Fatalf("failed Sets appended peers: %d", len(p))
	}
}

// TestMetricsEndpointServing stands up one overlay node the way main()
// does and drives the handler iiasd mounts behind -metrics.
func TestMetricsEndpointServing(t *testing.T) {
	node, err := overlay.NewNode(overlay.Config{
		Name: "d0", Listen: "127.0.0.1:0",
		TapAddr: netip.MustParseAddr("10.99.7.1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(node.MetricsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	// A peerless node still exposes its registry: the scrape-time gauges
	// and the Click element counters registered at build time.
	for _, want := range []string{`node="d0"`, "vini_fib_routes", "vini_ospf_neighbors"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", resp.StatusCode)
	}
}
