// Command iiasd runs one live IIAS overlay router: real UDP tunnel
// sockets, real OSPF adjacencies over them, and the Click forwarding
// graph in between. Several iiasd processes — on one machine or many —
// form a live "Internet In A Slice".
//
// Usage:
//
//	iiasd -listen 127.0.0.1:7001 -tap 10.99.0.1 \
//	      -peer 127.0.0.1:7002,10.99.1.1,10.99.1.2,10.99.1.0/30,10
//
// Each -peer flag (repeatable) is remote,localIf,peerIf,prefix,cost.
// The daemon prints its routing table whenever it changes and echoes any
// UDP packet delivered to its tap address.
//
// With -metrics ADDR the daemon also serves its telemetry over HTTP:
// Prometheus text exposition at /metrics, a JSON snapshot at
// /metrics.json, and a liveness probe at /healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"vini/internal/overlay"
	"vini/internal/packet"
)

type peerList []overlay.PeerConfig

func (p *peerList) String() string { return fmt.Sprintf("%d peers", len(*p)) }

func (p *peerList) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 5 {
		return fmt.Errorf("want remote,localIf,peerIf,prefix,cost")
	}
	localIf, err := netip.ParseAddr(parts[1])
	if err != nil {
		return err
	}
	peerIf, err := netip.ParseAddr(parts[2])
	if err != nil {
		return err
	}
	prefix, err := netip.ParsePrefix(parts[3])
	if err != nil {
		return err
	}
	cost, err := strconv.ParseUint(parts[4], 10, 32)
	if err != nil {
		return err
	}
	*p = append(*p, overlay.PeerConfig{
		Remote: parts[0], LocalIf: localIf, PeerIf: peerIf,
		Prefix: prefix, Cost: uint32(cost),
	})
	return nil
}

func main() {
	var peers peerList
	listen := flag.String("listen", "127.0.0.1:0", "UDP tunnel bind address")
	tap := flag.String("tap", "", "overlay (tap0) address, e.g. 10.99.0.1")
	hello := flag.Duration("hello", 5*time.Second, "OSPF hello interval")
	dead := flag.Duration("dead", 10*time.Second, "OSPF router-dead interval")
	name := flag.String("name", "iias", "node name for logs")
	metrics := flag.String("metrics", "", "HTTP bind address for /metrics, /metrics.json and /healthz (empty disables)")
	flag.Var(&peers, "peer", "remote,localIf,peerIf,prefix,cost (repeatable)")
	flag.Parse()
	if *tap == "" {
		fmt.Fprintln(os.Stderr, "iiasd: -tap is required")
		os.Exit(2)
	}
	tapAddr, err := netip.ParseAddr(*tap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iiasd:", err)
		os.Exit(2)
	}
	node, err := overlay.NewNode(overlay.Config{
		Name: *name, Listen: *listen, TapAddr: tapAddr,
		Hello: *hello, Dead: *dead, Peers: peers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iiasd:", err)
		os.Exit(1)
	}
	node.OnDeliver(func(dgram []byte) {
		if f, ok := packet.FlowOf(dgram); ok {
			fmt.Printf("[%s] delivered %v\n", *name, f)
		}
	})
	if err := node.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "iiasd:", err)
		os.Exit(1)
	}
	fmt.Printf("[%s] listening on %s, tap %s, %d peers\n",
		*name, node.LocalAddr(), tapAddr, len(peers))
	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, node.MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "iiasd: metrics:", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("[%s] metrics on http://%s/metrics\n", *name, *metrics)
	}
	// Periodically report adjacencies and routes.
	go func() {
		var lastRoutes string
		for {
			time.Sleep(2 * time.Second)
			var b strings.Builder
			for _, r := range node.Routes() {
				fmt.Fprintf(&b, "  %s\n", r)
			}
			if cur := b.String(); cur != lastRoutes {
				lastRoutes = cur
				fmt.Printf("[%s] routing table:\n%s", *name, cur)
				for _, nb := range node.Neighbors() {
					fmt.Printf("[%s] neighbor %s on %s: %s\n", *name, nb.Addr, nb.Iface, nb.State)
				}
			}
		}
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Printf("[%s] shutting down\n", *name)
	node.Close()
}
