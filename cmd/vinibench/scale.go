package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"vini/internal/simtest"
)

// scaleRow is one engine configuration's measurement in the
// BENCH_scale.json report.
type scaleRow struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	Gomaxprocs   int     `json:"gomaxprocs"`
	BuildSeconds float64 `json:"build_seconds"`
	RunSeconds   float64 `json:"run_seconds"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Sent         uint64  `json:"sent"`
	Delivered    uint64  `json:"delivered"`
	Digest       string  `json:"digest"`
	Schedule     string  `json:"schedule_digest"`
}

type scaleReport struct {
	Topology   string     `json:"topology"`
	Nodes      int        `json:"nodes"`
	Links      int        `json:"links"`
	Slices     int        `json:"slices"`
	VNodes     int        `json:"vnodes"`
	Flows      int        `json:"flows"`
	OfferedBps float64    `json:"offered_bps"`
	GoVersion  string     `json:"go_version"`
	NumCPU     int        `json:"num_cpu"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Rows       []scaleRow `json:"rows"`
	// DigestsAgree reports whether every sharded worker count produced
	// byte-identical scenario and schedule digests.
	DigestsAgree bool   `json:"sharded_digests_agree"`
	Note         string `json:"note,omitempty"`
}

// scaleExp runs the scale-regime scenario — hundreds of slices on a
// REPETITA topology, far past the old 126-slice ceiling — across the
// classic loop and 1/2/4-worker sharded engines, checks digest parity,
// and writes BENCH_scale.json. External REPETITA files plug in via
// -topo/-demands; otherwise the pinned synthetic topology is used.
func scaleExp() error {
	opts := simtest.ScaleOptions{
		Seed:   *seedFlag,
		Nodes:  *scaleNodes,
		Slices: count(*scaleSlices, 150),
	}
	if *topoFlag != "" {
		g, err := os.ReadFile(*topoFlag)
		if err != nil {
			return fmt.Errorf("scale: %w", err)
		}
		opts.GraphText = string(g)
		if *demandsFlag == "" {
			return fmt.Errorf("scale: -topo requires -demands")
		}
		d, err := os.ReadFile(*demandsFlag)
		if err != nil {
			return fmt.Errorf("scale: %w", err)
		}
		opts.DemandsText = string(d)
	}
	maxW := *parallelFlag
	if maxW < 1 {
		maxW = 1
	}
	workerCounts := []int{0, 1}
	for w := 2; w <= maxW; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	rep := scaleReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		DigestsAgree: true,
		Topology:     "synthetic",
	}
	if *topoFlag != "" {
		rep.Topology = *topoFlag
	}
	fmt.Printf("scale regime: %d slices, seed %d\n", opts.Slices, opts.Seed)
	fmt.Printf("host: %d CPUs, GOMAXPROCS=%d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-14s %8s %8s %12s %14s %10s %12s\n",
		"engine", "build", "run", "events", "events/sec", "sent", "delivered")
	shardDigest, shardSchedule := "", ""
	for _, w := range workerCounts {
		o := opts
		o.Workers = w
		r, err := simtest.RunScale(o)
		if err != nil {
			return fmt.Errorf("scale: workers=%d: %w", w, err)
		}
		if r.Failed() {
			fmt.Printf("%s\n", r)
			return fmt.Errorf("scale: workers=%d: %d invariant violations", w, len(r.Violations))
		}
		name := "classic-loop"
		if w > 0 {
			name = fmt.Sprintf("domains x%d", w)
		}
		row := scaleRow{
			Name: name, Workers: w, Gomaxprocs: runtime.GOMAXPROCS(0),
			BuildSeconds: r.BuildSeconds, RunSeconds: r.RunSeconds,
			Events: r.Events, EventsPerSec: float64(r.Events) / r.RunSeconds,
			Sent: r.Sent, Delivered: r.Delivered,
			Digest:   fmt.Sprintf("%016x", r.Digest),
			Schedule: fmt.Sprintf("%016x", r.ScheduleDigest),
		}
		fmt.Printf("%-14s %7.2fs %7.2fs %12d %14.0f %10d %12d\n",
			row.Name, row.BuildSeconds, row.RunSeconds, row.Events,
			row.EventsPerSec, row.Sent, row.Delivered)
		rep.Nodes, rep.Links, rep.Slices = r.Nodes, r.Links, r.Slices
		rep.VNodes, rep.Flows, rep.OfferedBps = r.VNodes, r.Flows, r.OfferedBps
		if w > 0 {
			if shardDigest == "" {
				shardDigest, shardSchedule = row.Digest, row.Schedule
			} else if row.Digest != shardDigest || row.Schedule != shardSchedule {
				rep.DigestsAgree = false
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	if !rep.DigestsAgree {
		fmt.Println("DETERMINISM VIOLATION: sharded digests diverged across worker counts")
	} else {
		fmt.Printf("sharded scenario digest %s / schedule %s identical across all worker counts\n",
			shardDigest, shardSchedule)
	}
	if runtime.GOMAXPROCS(0) < 2 {
		rep.Note = "single-CPU host: worker goroutines time-share one core, so no " +
			"wall-clock speedup is possible here"
		fmt.Println("note: " + rep.Note)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_scale.json")
	if !rep.DigestsAgree {
		return fmt.Errorf("scale: digests diverged across worker counts")
	}
	if *baselineFlag != "" {
		if err := checkScaleBaseline(*baselineFlag, rep, maxW); err != nil {
			return err
		}
	}
	return nil
}

// checkScaleBaseline compares the max-worker leg's throughput against a
// committed prior BENCH_scale.json, failing on a regression of more
// than 15% — the same floor-not-race gate as the parallel experiment.
func checkScaleBaseline(path string, rep scaleReport, maxW int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("scale: baseline: %w", err)
	}
	var base scaleReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("scale: baseline %s: %w", path, err)
	}
	pick := func(rows []scaleRow) *scaleRow {
		for i := range rows {
			if rows[i].Workers == maxW {
				return &rows[i]
			}
		}
		return nil
	}
	cur, prev := pick(rep.Rows), pick(base.Rows)
	if cur == nil || prev == nil || prev.EventsPerSec <= 0 ||
		base.Slices != rep.Slices || base.Nodes != rep.Nodes {
		fmt.Printf("baseline %s has no comparable %d-worker row; skipping throughput gate\n", path, maxW)
		return nil
	}
	ratio := cur.EventsPerSec / prev.EventsPerSec
	fmt.Printf("baseline gate: %d-worker %.0f events/sec vs baseline %.0f (%.2fx, floor 0.85x; baseline host GOMAXPROCS=%d, this host %d)\n",
		maxW, cur.EventsPerSec, prev.EventsPerSec, ratio, prev.Gomaxprocs, cur.Gomaxprocs)
	if ratio < 0.85 {
		return fmt.Errorf("scale: %d-worker events/sec regressed %.0f%% below baseline %s",
			maxW, (1-ratio)*100, path)
	}
	return nil
}
