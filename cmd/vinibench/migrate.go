package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/telemetry"
)

// migBenchPort carries the fixed-rate probe stream the blackout
// measurement is derived from.
const migBenchPort = 47000

// migProbeInterval is the probe spacing: one probe per simulated
// millisecond, so every lost sequence number is 1000 us of blackout.
const migProbeInterval = time.Millisecond

// migrateRow is one measured migration arm in BENCH_migrate.json.
type migrateRow struct {
	Mode           string  `json:"mode"`
	Sent           int     `json:"probes_sent"`
	Delivered      int     `json:"probes_delivered"`
	Lost           int     `json:"probes_lost"`
	Duplicates     int     `json:"duplicate_deliveries"`
	BlackoutUs     int64   `json:"blackout_us"`
	MaxGapUs       int64   `json:"max_gap_us"`
	Clones         uint64  `json:"window_clones_sent"`
	CloneDrops     uint64  `json:"window_clones_suppressed"`
	NeighborEvents int     `json:"ospf_neighbor_events"`
	MetricsDigest  string  `json:"metrics_digest"`
	FlightDigest   string  `json:"flight_digest"`
	WallSeconds    float64 `json:"wall_seconds"`
}

type migrateReport struct {
	GoVersion          string     `json:"go_version"`
	NumCPU             int        `json:"num_cpu"`
	GOMAXPROCS         int        `json:"gomaxprocs"`
	Seed               int64      `json:"seed"`
	ProbeIntervalUs    int64      `json:"probe_interval_us"`
	MBB                migrateRow `json:"make_before_break"`
	Naive              migrateRow `json:"naive_reembed"`
	ReplayDigestsMatch bool       `json:"replay_digests_match"`
	StrictlySmaller    bool       `json:"mbb_blackout_strictly_smaller"`
	Note               string     `json:"note,omitempty"`
}

// migrateExp measures the cutover blackout of live vnode migration two
// ways on the same seeded quad substrate: the make-before-break path
// (shadow pre-built, state transplanted, in-flight traffic
// double-delivered across the window) against the naive
// break-before-make baseline (retire first, rebuild, let OSPF
// reconverge). A probe leaves west for east through the migrating
// transit hop every simulated millisecond; the blackout window is the
// probes that never arrive. Each arm runs twice with the same seed and
// must reproduce its telemetry digests byte-for-byte, the same
// replay-determinism cross-check the parallel and scale benchmarks
// apply. The experiment fails unless the make-before-break blackout is
// strictly smaller than the naive one (and, concretely, zero).
func migrateExp() error {
	warm, total := count(1000, 400), count(6000, 3000)
	mbb, err := migrateArm(false, warm, total)
	if err != nil {
		return err
	}
	mbbReplay, err := migrateArm(false, warm, total)
	if err != nil {
		return err
	}
	naive, err := migrateArm(true, warm, total)
	if err != nil {
		return err
	}
	naiveReplay, err := migrateArm(true, warm, total)
	if err != nil {
		return err
	}
	rep := migrateReport{
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: *seedFlag,
		ProbeIntervalUs: migProbeInterval.Microseconds(),
		MBB:             mbb, Naive: naive,
		ReplayDigestsMatch: mbb.MetricsDigest == mbbReplay.MetricsDigest &&
			mbb.FlightDigest == mbbReplay.FlightDigest &&
			naive.MetricsDigest == naiveReplay.MetricsDigest &&
			naive.FlightDigest == naiveReplay.FlightDigest,
		StrictlySmaller: mbb.BlackoutUs < naive.BlackoutUs,
	}
	fmt.Printf("live migration blackout: west->east probes every %v through a migrating transit vnode\n", migProbeInterval)
	fmt.Printf("%-18s %8s %10s %6s %5s %12s %12s %8s %10s\n",
		"mode", "sent", "delivered", "lost", "dups", "blackout", "maxgap", "clones", "nbr-evts")
	for _, r := range []migrateRow{mbb, naive} {
		fmt.Printf("%-18s %8d %10d %6d %5d %10dus %10dus %8d %10d\n",
			r.Mode, r.Sent, r.Delivered, r.Lost, r.Duplicates,
			r.BlackoutUs, r.MaxGapUs, r.Clones, r.NeighborEvents)
	}
	if rep.ReplayDigestsMatch {
		fmt.Println("replay cross-check: both arms reproduced their telemetry digests on a second seeded run")
	} else {
		rep.Note = "replay digest mismatch: seeded reruns diverged"
		fmt.Println("WARNING: " + rep.Note)
	}
	fmt.Printf("blackout: make-before-break %dus vs naive re-embed %dus\n", mbb.BlackoutUs, naive.BlackoutUs)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_migrate.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_migrate.json")
	switch {
	case !rep.ReplayDigestsMatch:
		return fmt.Errorf("migrate: replay digests diverged")
	case mbb.Lost != 0:
		return fmt.Errorf("migrate: make-before-break lost %d probes, want 0", mbb.Lost)
	case mbb.Duplicates != 0 || naive.Duplicates != 0:
		return fmt.Errorf("migrate: duplicate deliveries (mbb %d, naive %d)", mbb.Duplicates, naive.Duplicates)
	case naive.Lost == 0:
		return fmt.Errorf("migrate: naive baseline lost nothing — the comparison is vacuous")
	case !rep.StrictlySmaller:
		return fmt.Errorf("migrate: blackout not strictly smaller than naive (%dus vs %dus)",
			mbb.BlackoutUs, naive.BlackoutUs)
	}
	return nil
}

// migrateArm runs one seeded migration under the probe stream: warm
// probes settle the overlay, the migration starts at probe `warm`, and
// the stream continues to `total` before a settling run tallies
// deliveries.
func migrateArm(naive bool, warm, total int) (migrateRow, error) {
	mode := "make-before-break"
	if naive {
		mode = "naive-reembed"
	}
	row := migrateRow{Mode: mode, Sent: total}
	start := time.Now()
	v := core.New(*seedFlag)
	for i, n := range []string{"west", "mid", "east", "spare"} {
		a := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(n, a, netem.DETERProfile(), sched.Options{}); err != nil {
			return row, err
		}
	}
	for _, l := range [][2]string{{"west", "mid"}, {"mid", "east"}, {"west", "spare"}, {"spare", "east"}} {
		if _, err := v.AddLink(netem.LinkConfig{A: l[0], B: l[1],
			Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
			return row, err
		}
	}
	v.ComputeRoutes()
	tel := v.EnableTelemetry()
	base := packet.Stats()
	s, err := v.CreateSlice(core.SliceConfig{Name: "mig", CPUShare: 0.25, RT: true})
	if err != nil {
		return row, err
	}
	for _, n := range []string{"west", "mid", "east"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			return row, err
		}
	}
	for _, l := range [][2]string{{"west", "mid"}, {"mid", "east"}} {
		if _, err := s.ConnectVirtual(l[0], l[1], 1); err != nil {
			return row, err
		}
	}
	s.StartOSPF(time.Second, 3*time.Second)
	loop := v.Loop()
	v.Run(loop.Now() + 20*time.Second)
	west, _ := s.VirtualNode("west")
	east, _ := s.VirtualNode("east")
	westTap, eastTap := west.TapAddr, east.TapAddr
	// The classic single-timeline engine runs listeners inline, so a
	// plain slice indexed by sequence number is race-free here.
	delivered := make([]int, total)
	for _, n := range []string{"west", "mid", "east", "spare"} {
		node, ok := v.Net.Node(n)
		if !ok {
			return row, fmt.Errorf("no node %s", n)
		}
		if err := node.StackListenUDP(migBenchPort, func(d []byte) {
			var ip packet.IPv4
			seg, err := ip.Parse(d)
			if err != nil {
				return
			}
			var u packet.UDP
			pay, err := u.Parse(seg)
			if err != nil || len(pay) < 4 {
				return
			}
			if seq := int(binary.BigEndian.Uint32(pay)); seq < total && ip.Dst == eastTap {
				delivered[seq]++
			}
		}); err != nil {
			return row, err
		}
	}
	westNode, _ := v.Net.Node("west")
	var m *core.Migration
	var migStart time.Duration
	for i := 0; i < total; i++ {
		var pay [4]byte
		binary.BigEndian.PutUint32(pay[:], uint32(i))
		westNode.StackSend(packet.BuildUDP(westTap, eastTap, migBenchPort, migBenchPort, 64, pay[:]))
		if i == warm {
			migStart = loop.Now()
			m, err = s.Migrate("mid", "spare", core.MigrateOptions{
				Window: 500 * time.Millisecond, Drain: 500 * time.Millisecond, Naive: naive})
			if err != nil {
				return row, err
			}
		}
		v.Run(loop.Now() + migProbeInterval)
	}
	v.Run(loop.Now() + 10*time.Second)
	if m.Phase() != core.MigDone {
		return row, fmt.Errorf("%s: migration phase %v, want Done", mode, m.Phase())
	}
	if _, ok := s.VirtualNode("spare"); !ok {
		return row, fmt.Errorf("%s: spare does not host the slice after migration", mode)
	}
	gap := 0
	for i := 0; i < total; i++ {
		switch n := delivered[i]; {
		case n == 0:
			row.Lost++
			gap++
			if us := int64(gap) * migProbeInterval.Microseconds(); us > row.MaxGapUs {
				row.MaxGapUs = us
			}
		default:
			row.Delivered++
			row.Duplicates += n - 1
			gap = 0
		}
	}
	row.BlackoutUs = int64(row.Lost) * migProbeInterval.Microseconds()
	row.Clones, row.CloneDrops = m.ClonesSent(), m.CloneDrops()
	for _, ev := range tel.Rec.Events() {
		if ev.Kind == telemetry.EvNeighbor && ev.At >= migStart {
			row.NeighborEvents++
		}
	}
	row.MetricsDigest = fmt.Sprintf("%016x", tel.Reg.Digest())
	row.FlightDigest = fmt.Sprintf("%016x", tel.Rec.Digest())
	if err := s.Audit(); err != nil {
		return row, fmt.Errorf("%s: %v", mode, err)
	}
	for i := 0; i < 40 && packet.Stats().Sub(base).InFlight() != 0; i++ {
		v.Run(loop.Now() + 50*time.Millisecond)
	}
	if f := packet.Stats().Sub(base).InFlight(); f != 0 {
		return row, fmt.Errorf("%s: pool ledger unbalanced: %d in flight", mode, f)
	}
	row.WallSeconds = time.Since(start).Seconds()
	return row, nil
}
