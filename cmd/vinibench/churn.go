package main

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/topology"
)

// churnRow is one create/run/pause/reembed/destroy cycle in the
// BENCH_churn.json report.
type churnRow struct {
	Cycle       int     `json:"cycle"`
	SliceID     int     `json:"slice_id"`
	BasePort    uint16  `json:"base_port"`
	Moved       int     `json:"reembed_moved"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	InFlight    int64   `json:"pool_in_flight_after_teardown"`
}

type churnReport struct {
	Topology    string     `json:"topology"`
	GoVersion   string     `json:"go_version"`
	NumCPU      int        `json:"num_cpu"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Cycles      int        `json:"cycles"`
	Rows        []churnRow `json:"rows"`
	IDsRecycled bool       `json:"ids_recycled"`
	LedgerClean bool       `json:"ledger_clean"`
	Note        string     `json:"note,omitempty"`
}

// churnExp cycles one IIAS slice through its whole lifecycle on a
// running Abilene substrate — admit, embed, converge, pause across the
// dead interval, resume, re-embed around a substrate failure, destroy —
// and verifies after every teardown that the substrate is exactly as
// clean as before the slice existed: the packet-pool ledger balances
// and the next cycle is re-admitted onto the recycled slice id, port
// block, and address prefix (the allocator's LIFO free lists hand
// released blocks straight back).
func churnExp() error {
	cycles := count(8, 3)
	v := core.New(*seedFlag)
	g := topology.Abilene()
	for _, pop := range g.Nodes() {
		addr, _ := topology.AbilenePublicAddr(pop)
		if _, err := v.AddNode(pop, netip.MustParseAddr(addr),
			netem.PlanetLabProfile(), sched.Options{}); err != nil {
			return err
		}
	}
	for _, l := range g.Links() {
		if _, err := v.AddLink(netem.LinkConfig{A: l.A, B: l.B,
			Bandwidth: l.Bandwidth, Delay: l.Delay}); err != nil {
			return err
		}
	}
	v.ComputeRoutes()
	baseline := packet.Stats()
	loop := v.Loop()
	rep := churnReport{Topology: "abilene",
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0), Cycles: cycles,
		IDsRecycled: true, LedgerClean: true}
	fmt.Printf("slice churn on Abilene (11 PoPs), %d cycles\n", cycles)
	fmt.Printf("%-6s %8s %10s %8s %10s %12s %10s\n",
		"cycle", "id", "baseport", "moved", "wall", "events", "inflight")
	firstID := 0
	var firstPrefix, firstPorts string
	links := g.Links()
	var prevFired uint64
	for c := 0; c < cycles; c++ {
		start := time.Now()
		s, err := v.CreateSlice(core.SliceConfig{
			Name: fmt.Sprintf("churn%d", c), CPUShare: 0.25, RT: true,
			ExposePhysicalFailures: true})
		if err != nil {
			return err
		}
		if c == 0 {
			firstID = s.ID()
			firstPrefix = s.Prefix().String()
			firstPorts = s.PortRange().String()
		} else if s.ID() != firstID || s.Prefix().String() != firstPrefix ||
			s.PortRange().String() != firstPorts {
			rep.IDsRecycled = false
		}
		for _, pop := range g.Nodes() {
			if _, err := s.AddVirtualNode(pop); err != nil {
				return err
			}
		}
		for _, l := range g.Links() {
			if _, err := s.ConnectVirtual(l.A, l.B, l.CostAB); err != nil {
				return err
			}
		}
		s.StartOSPF(5*time.Second, 10*time.Second)
		v.Run(loop.Now() + dur(30*time.Second, 15*time.Second))
		if err := s.Pause(); err != nil {
			return err
		}
		v.Run(loop.Now() + 15*time.Second)
		if err := s.Resume(); err != nil {
			return err
		}
		v.Run(loop.Now() + dur(30*time.Second, 20*time.Second))
		// Fail a rotating substrate link and walk the slice around it.
		l := links[c%len(links)]
		if err := v.FailLink(l.A, l.B, 100*time.Millisecond); err != nil {
			return err
		}
		v.Run(loop.Now() + 2*time.Second)
		moved, err := s.ReEmbed()
		if err != nil {
			return err
		}
		v.Run(loop.Now() + 5*time.Second)
		if err := v.RestoreLink(l.A, l.B, 100*time.Millisecond); err != nil {
			return err
		}
		v.Run(loop.Now() + 2*time.Second)
		if _, err := s.ReEmbed(); err != nil {
			return err
		}
		if err := s.Destroy(); err != nil {
			return err
		}
		if err := s.Audit(); err != nil {
			return fmt.Errorf("cycle %d: %v", c, err)
		}
		v.Run(loop.Now() + 3*time.Second)
		for i := 0; i < 40 && packet.Stats().Sub(baseline).InFlight() != 0; i++ {
			v.Run(loop.Now() + 50*time.Millisecond)
		}
		fired := v.Executor().TotalFired()
		row := churnRow{Cycle: c, SliceID: s.ID(), BasePort: s.BasePort(),
			Moved: moved, WallSeconds: time.Since(start).Seconds(),
			Events:   fired - prevFired,
			InFlight: packet.Stats().Sub(baseline).InFlight()}
		prevFired = fired
		if row.InFlight != 0 {
			rep.LedgerClean = false
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-6d %8d %10d %8d %9.2fs %12d %10d\n",
			row.Cycle, row.SliceID, row.BasePort, row.Moved,
			row.WallSeconds, row.Events, row.InFlight)
	}
	if rep.IDsRecycled {
		fmt.Printf("slice id %d, port block %s, prefix %s recycled across all %d cycles\n",
			firstID, firstPorts, firstPrefix, cycles)
	} else {
		rep.Note = "recycling failed: destroyed slice id/prefix/ports were not reissued"
		fmt.Println("WARNING: " + rep.Note)
	}
	if !rep.LedgerClean {
		fmt.Println("WARNING: pool ledger did not balance after teardown")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_churn.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_churn.json")
	if !rep.IDsRecycled || !rep.LedgerClean {
		return fmt.Errorf("churn: lifecycle invariants violated")
	}
	return nil
}
