package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vini/internal/simtest"
)

// adaptivePhaseRow is one quiescent measurement point in the report:
// the controller's estimate beside the true available bandwidth.
type adaptivePhaseRow struct {
	Name         string  `json:"name"`
	AvailBps     float64 `json:"avail_bps"`
	EstimateBps  float64 `json:"estimate_bps"`
	DeliveredBps float64 `json:"delivered_bps"`
	RatioPct     float64 `json:"estimate_over_avail_pct"`
}

// adaptiveRow is one engine leg of the adaptive benchmark.
type adaptiveRow struct {
	Name            string  `json:"name"`
	Workers         int     `json:"workers"`
	Gomaxprocs      int     `json:"gomaxprocs"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	TracePoints     int     `json:"controller_updates"`
	Digest          string  `json:"digest"`
	Schedule        string  `json:"schedule_digest"`
	TelemetryDigest string  `json:"telemetry_digest"`
	FlightDigest    string  `json:"flight_digest"`
	WallSeconds     float64 `json:"wall_seconds"`
}

type adaptiveReport struct {
	GoVersion          string             `json:"go_version"`
	NumCPU             int                `json:"num_cpu"`
	GOMAXPROCS         int                `json:"gomaxprocs"`
	Seed               int64              `json:"seed"`
	BottleneckBps      float64            `json:"bottleneck_bps"`
	AltBps             float64            `json:"alt_path_bps"`
	CrossBps           float64            `json:"cross_traffic_bps"`
	Phases             []adaptivePhaseRow `json:"phases"`
	Rows               []adaptiveRow      `json:"rows"`
	DigestsAgree       bool               `json:"sharded_digests_agree"`
	ReplayDigestsMatch bool               `json:"replay_digests_match"`
	Note               string             `json:"note,omitempty"`
}

// adaptiveExp drives the delay-gradient adaptive sender through the
// full simtest scenario — alone, against CBR cross-traffic, across
// overlay Pause/Resume, and through a substrate reroute — on the
// classic engine and on 1/2/4-worker sharded execution. Every sharded
// leg must produce byte-identical digests, a same-seed classic rerun
// must reproduce its digests exactly (the replay cross-check every
// benchmark here applies), and every leg must satisfy the convergence
// and teardown invariants. The per-phase estimate-vs-actual table is
// the paper-style readout; BENCH_adaptive.json is the committed
// artifact the CI baseline gate compares against.
func adaptiveExp() error {
	rep := adaptiveReport{
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: *seedFlag,
		DigestsAgree: true,
	}
	var shardDigest, shardSchedule string
	var classic *simtest.AdaptiveResult
	maxW := 0
	fmt.Printf("%-14s %12s %14s %10s %8s\n", "engine", "events", "events/sec", "updates", "wall")
	for _, w := range []int{0, 1, 2, 4} {
		start := time.Now()
		r, err := simtest.RunAdaptive(simtest.AdaptiveOptions{Seed: *seedFlag, Workers: w})
		if err != nil {
			return err
		}
		if r.Failed() {
			fmt.Printf("%s\n", r)
			return fmt.Errorf("adaptive: workers=%d: %d invariant violations", w, len(r.Violations))
		}
		name := "classic-loop"
		if w > 0 {
			name = fmt.Sprintf("domains x%d", w)
			maxW = w
		}
		row := adaptiveRow{
			Name: name, Workers: w, Gomaxprocs: runtime.GOMAXPROCS(0),
			Events: r.Events, EventsPerSec: float64(r.Events) / r.RunSeconds,
			TracePoints:     r.TracePoints,
			Digest:          fmt.Sprintf("%016x", r.Digest),
			Schedule:        fmt.Sprintf("%016x", r.ScheduleDigest),
			TelemetryDigest: fmt.Sprintf("%016x", r.TelemetryDigest),
			FlightDigest:    fmt.Sprintf("%016x", r.FlightDigest),
			WallSeconds:     time.Since(start).Seconds(),
		}
		fmt.Printf("%-14s %12d %14.0f %10d %7.2fs\n",
			row.Name, row.Events, row.EventsPerSec, row.TracePoints, row.WallSeconds)
		if w == 0 {
			classic = r
			rep.BottleneckBps, rep.AltBps, rep.CrossBps = r.BottleneckBps, r.AltBps, r.CrossBps
			for _, p := range r.Phases {
				rep.Phases = append(rep.Phases, adaptivePhaseRow{
					Name: p.Name, AvailBps: p.AvailBps,
					EstimateBps: p.EstimateBps, DeliveredBps: p.DeliveredBps,
					RatioPct: 100 * p.EstimateBps / p.AvailBps,
				})
			}
		} else {
			if shardDigest == "" {
				shardDigest, shardSchedule = row.Digest, row.Schedule
			} else if row.Digest != shardDigest || row.Schedule != shardSchedule {
				rep.DigestsAgree = false
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	// Replay cross-check: the same classic seed run again must
	// reproduce every digest byte-for-byte.
	replay, err := simtest.RunAdaptive(simtest.AdaptiveOptions{Seed: *seedFlag})
	if err != nil {
		return err
	}
	rep.ReplayDigestsMatch = replay.Digest == classic.Digest &&
		replay.ScheduleDigest == classic.ScheduleDigest &&
		replay.TelemetryDigest == classic.TelemetryDigest &&
		replay.FlightDigest == classic.FlightDigest

	fmt.Printf("\nbottleneck %.2f Mb/s, alternate path %.2f Mb/s, CBR cross-traffic %.2f Mb/s\n",
		rep.BottleneckBps/1e6, rep.AltBps/1e6, rep.CrossBps/1e6)
	fmt.Printf("%-10s %12s %14s %14s %8s\n", "phase", "avail", "estimate", "delivered", "est/avail")
	for _, p := range rep.Phases {
		fmt.Printf("%-10s %9.0f kb %11.0f kb %11.0f kb %7.0f%%\n",
			p.Name, p.AvailBps/1e3, p.EstimateBps/1e3, p.DeliveredBps/1e3, p.RatioPct)
	}
	if rep.DigestsAgree {
		fmt.Printf("sharded digest %s / schedule %s identical across 1/2/4 workers\n",
			shardDigest, shardSchedule)
	} else {
		fmt.Println("DETERMINISM VIOLATION: sharded digests diverged across worker counts")
	}
	if rep.ReplayDigestsMatch {
		fmt.Println("replay cross-check: second seeded classic run reproduced every digest")
	} else {
		rep.Note = "replay digest mismatch: seeded reruns diverged"
		fmt.Println("WARNING: " + rep.Note)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_adaptive.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_adaptive.json")
	switch {
	case !rep.DigestsAgree:
		return fmt.Errorf("adaptive: digests diverged across worker counts")
	case !rep.ReplayDigestsMatch:
		return fmt.Errorf("adaptive: replay digests diverged")
	}
	if *baselineFlag != "" {
		if err := checkAdaptiveBaseline(*baselineFlag, rep, maxW); err != nil {
			return err
		}
	}
	return nil
}

// checkAdaptiveBaseline compares the max-worker leg's throughput
// against a committed prior BENCH_adaptive.json, failing on a
// regression of more than 15% — the same floor-not-race gate as the
// parallel and scale experiments.
func checkAdaptiveBaseline(path string, rep adaptiveReport, maxW int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("adaptive: baseline: %w", err)
	}
	var base adaptiveReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("adaptive: baseline %s: %w", path, err)
	}
	pick := func(rows []adaptiveRow) *adaptiveRow {
		for i := range rows {
			if rows[i].Workers == maxW {
				return &rows[i]
			}
		}
		return nil
	}
	cur, prev := pick(rep.Rows), pick(base.Rows)
	if cur == nil || prev == nil || prev.EventsPerSec <= 0 || base.Seed != rep.Seed {
		fmt.Printf("baseline %s has no comparable %d-worker row; skipping throughput gate\n", path, maxW)
		return nil
	}
	ratio := cur.EventsPerSec / prev.EventsPerSec
	fmt.Printf("baseline gate: %d-worker %.0f events/sec vs baseline %.0f (%.2fx, floor 0.85x; baseline host GOMAXPROCS=%d, this host %d)\n",
		maxW, cur.EventsPerSec, prev.EventsPerSec, ratio, prev.Gomaxprocs, cur.Gomaxprocs)
	if ratio < 0.85 {
		return fmt.Errorf("adaptive: %d-worker events/sec regressed %.0f%% below baseline %s",
			maxW, (1-ratio)*100, path)
	}
	return nil
}
