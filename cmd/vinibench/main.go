// Command vinibench regenerates every table and figure in the paper's
// Section 5 evaluation and prints paper-reported values beside the
// measured ones. See EXPERIMENTS.md for a captured run.
//
// Usage:
//
//	vinibench [-exp all|table2|table3|table4|table5|table6|fig6|fig7|fig8|fig9|ablation|fastpath|simtest|parallel|telemetry|churn|migrate|scale|adaptive] [-seed N] [-short] [-parallel N] [-slices N] [-nodes N] [-topo F -demands F] [-v]
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"
	"testing"
	"time"

	"vini/internal/click"
	"vini/internal/experiment"
	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/rcc"
	"vini/internal/sim"
	"vini/internal/simtest"
	"vini/internal/topology"
)

var (
	expFlag      = flag.String("exp", "all", "experiment to run")
	seedFlag     = flag.Int64("seed", 2, "simulation seed")
	short        = flag.Bool("short", false, "shorter measurement windows")
	parallelFlag = flag.Int("parallel", 4, "max worker count for the parallel-executor benchmark")
	baselineFlag = flag.String("baseline", "", "path to a prior BENCH_parallel.json (or BENCH_scale.json / BENCH_adaptive.json for -exp scale / adaptive); the experiment fails if the max-worker events/sec regresses more than 15% below it")
	verbose      = flag.Bool("v", false, "print per-domain event counters in the parallel experiment")
	scaleSlices  = flag.Int("slices", 500, "concurrent slice count for the scale experiment")
	scaleNodes   = flag.Int("nodes", 64, "synthetic substrate size for the scale experiment")
	topoFlag     = flag.String("topo", "", "external REPETITA .graph file for the scale experiment")
	demandsFlag  = flag.String("demands", "", "external REPETITA .demands file for the scale experiment")
)

func main() {
	flag.Parse()
	run := func(name string, fn func() error) {
		if *expFlag != "all" && *expFlag != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("table2", table2)
	run("table3", table3)
	run("table4", table4)
	run("table5", table5)
	run("table6", table6)
	run("fig6", fig6)
	run("fig7", fig7)
	run("fig8", fig8)
	run("fig9", fig9)
	run("ablation", ablation)
	run("fastpath", fastpath)
	run("simtest", simtestExp)
	run("parallel", parallelExp)
	run("telemetry", telemetryExp)
	run("churn", churnExp)
	run("migrate", migrateExp)
	run("scale", scaleExp)
	run("adaptive", adaptiveExp)
}

// telemetryExp reruns the Figure 8 failure scenario with the telemetry
// layer enabled and dumps what it captured: the metrics registry and
// flight-recorder digests (the values the worker-parity property pins),
// the convergence windows derived from the control-plane timeline, and
// the per-domain executor profile. The whole scenario runs twice with
// the same seed; the two digest pairs must match byte-for-byte or the
// experiment fails — the same replay-determinism property the
// distributed executor's parity proof rests on. With -v it also emits
// the full JSON snapshot, the machine-readable form the Section 5
// harness reads.
func telemetryExp() error {
	e, err := experiment.NewAbilene(*seedFlag)
	if err != nil {
		return err
	}
	if _, err := e.Figure8(); err != nil {
		return err
	}
	tel := e.V.Telemetry()
	snap := tel.Snapshot()
	fmt.Printf("metrics: %d series (digest %016x); flight recorder: %d events, %d dropped (digest %016x)\n",
		len(snap.Metrics), snap.MetricsDigest, len(snap.Events), snap.Dropped, snap.FlightDigest)
	replay, err := experiment.NewAbilene(*seedFlag)
	if err != nil {
		return err
	}
	if _, err := replay.Figure8(); err != nil {
		return err
	}
	rsnap := replay.V.Telemetry().Snapshot()
	if rsnap.MetricsDigest != snap.MetricsDigest || rsnap.FlightDigest != snap.FlightDigest {
		return fmt.Errorf("telemetry: DIGEST MISMATCH on replay: metrics %016x vs %016x, flight %016x vs %016x",
			snap.MetricsDigest, rsnap.MetricsDigest, snap.FlightDigest, rsnap.FlightDigest)
	}
	fmt.Printf("replay cross-check: second seeded run reproduced both digests\n")
	fmt.Println("convergence after link events (first-class query over the timeline):")
	for _, c := range snap.Convergences {
		dir := "up"
		if c.Down {
			dir = "down"
		}
		fmt.Printf("  %-28s %-4s at t=%-8v %3d installs, converged in %v\n",
			c.Link, dir, c.At, c.Installs, c.Duration)
	}
	prof := e.V.ExecutorProfile()
	fmt.Printf("executor: %d workers, %d rounds, %d windows, %d fallbacks\n",
		prof.Workers, prof.Rounds, prof.Windows, prof.Fallbacks)
	fmt.Printf("executor: %d trains carrying %d messages, %d deliveries, %d steals, %d parks (%v parked)\n",
		prof.Trains, prof.TrainMsgs, prof.Deliveries, prof.Steals, prof.Parks, prof.ParkTime.Round(time.Millisecond))
	if *verbose {
		for _, d := range prof.Domains {
			fmt.Printf("  dom %2d %-14s now=%-10v lookahead=%-8v fired=%-7d scheduled=%-7d sent=%-6d delivered=%-6d stalls=%d\n",
				d.ID, d.Label, d.Now, d.Lookahead, d.Fired, d.Scheduled, d.Sent, d.Delivered, d.Stalls)
		}
		js, err := tel.SnapshotJSON()
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", js)
	} else {
		fmt.Println("(run with -v for the per-domain profile and the full JSON snapshot)")
	}
	return nil
}

// simtestExp sweeps seeded deterministic-simulation scenarios and
// reports the invariant engine's verdict; any violation prints the
// seed that replays it exactly.
func simtestExp() error {
	seeds := count(100, 20)
	var recon []time.Duration
	violations := 0
	for s := *seedFlag; s < *seedFlag+int64(seeds); s++ {
		r, err := simtest.Run(simtest.Options{Seed: s})
		if err != nil {
			return err
		}
		recon = append(recon, r.Reconvergences...)
		if r.Failed() {
			violations++
			fmt.Printf("%s\n", r)
		}
	}
	var max, sum time.Duration
	for _, d := range recon {
		sum += d
		if d > max {
			max = d
		}
	}
	var mean time.Duration
	if len(recon) > 0 {
		mean = sum / time.Duration(len(recon))
	}
	fmt.Printf("%d scenarios explored (seeds %d..%d): %d invariant violations\n",
		seeds, *seedFlag, *seedFlag+int64(seeds)-1, violations)
	fmt.Printf("reconvergence after %d injected failures: mean %v, max %v\n",
		len(recon), mean.Round(time.Millisecond), max)
	fmt.Println("invariants: loop-freedom, RIB/FIB/cache consistency, packet conservation, bounded reconvergence")
	if violations > 0 {
		return fmt.Errorf("simtest: %d scenarios violated invariants", violations)
	}
	return nil
}

// fastpath reports the data-plane hot-path microbenchmarks with their
// allocation metrics, the numbers the zero-allocation guard in
// fastpath_test.go pins.
func fastpath() error {
	report := func(name string, setBytes int64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		line := fmt.Sprintf("%-24s %10.1f ns/op %8d B/op %6d allocs/op",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
		if setBytes > 0 {
			mbs := float64(setBytes) * float64(r.N) / r.T.Seconds() / 1e6
			line += fmt.Sprintf(" %9.0f MB/s", mbs)
		}
		fmt.Println(line)
	}
	report("fib-lookup", 0, func(b *testing.B) {
		t := fib.New()
		for i := 0; i < 1024; i++ {
			a := netip.AddrFrom4([4]byte{10, byte(i >> 4), byte(i << 4), 0})
			t.Add(fib.Route{Prefix: netip.PrefixFrom(a, 20)})
		}
		c := fib.NewCache(t)
		dst := netip.MustParseAddr("10.1.2.3")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Lookup(dst)
		}
	})
	report("checksum-1500B", 1500, func(b *testing.B) {
		buf := make([]byte, 1500)
		for i := 0; i < b.N; i++ {
			packet.Checksum(buf)
		}
	})
	r, tmpl, err := forwardGraph()
	if err != nil {
		return err
	}
	report("click-forward-pooled", int64(len(tmpl)), func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := packet.Get()
			copy(p.Extend(len(tmpl)), tmpl)
			r.Push("fromtun", 0, p)
		}
	})
	fmt.Println("(steady-state IIAS forwarding: pooled packets, cached FIB, in-place encap)")
	return nil
}

// tunnelEncap re-encapsulates in headroom and recycles, the substrate's
// fast-path hand-off.
type tunnelEncap struct{ local netip.Addr }

func (t tunnelEncap) SendTunnel(e fib.EncapEntry, p *packet.Packet) {
	packet.EncapUDP(p, t.local, e.Remote, 33000, e.Port)
	packet.EncapIPv4(p, &packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: t.local, Dst: e.Remote})
	p.Release()
}

type tapDiscard struct{}

func (tapDiscard) DeliverTap(p *packet.Packet) { p.Release() }

// forwardGraph builds the IIAS forwarding chain the fastpath benchmarks
// drive: tunnel-in -> check -> TTL -> FIB -> encap -> tunnel-out.
func forwardGraph() (*click.Router, []byte, error) {
	loop := sim.NewLoop(1)
	ctx := &click.Context{
		Clock: loop, RNG: loop.RNG(),
		FIB:       fib.New(),
		Encap:     fib.NewEncapTable(),
		Tunnels:   tunnelEncap{local: netip.MustParseAddr("198.32.154.40")},
		Tap:       tapDiscard{},
		LocalAddr: packet.Flow{Src: netip.MustParseAddr("10.1.0.1")},
	}
	nh := netip.MustParseAddr("10.1.128.2")
	ctx.FIB.Add(fib.Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: nh, OutPort: 0})
	ctx.Encap.Set(fib.EncapEntry{NextHop: nh, Remote: netip.MustParseAddr("198.32.154.41"), Port: 33000})
	r, err := click.ParseConfig(ctx, `
		fromtun :: FromTunnel;
		chk :: CheckIPHeader;
		dec :: DecIPTTL;
		rt :: LookupIPRoute;
		encap :: EncapTunnel;
		fromtun -> chk; chk[0] -> dec; dec[0] -> rt; rt[0] -> encap;
	`)
	if err != nil {
		return nil, nil, err
	}
	if err := r.Initialize(); err != nil {
		return nil, nil, err
	}
	tmpl := packet.BuildUDP(netip.MustParseAddr("10.1.0.9"), netip.MustParseAddr("10.1.0.7"),
		1, 2, 64, make([]byte, 1400))
	return r, tmpl, nil
}

// ablation regenerates the design-choice studies DESIGN.md lists.
func ablation() error {
	fmt.Println("-- CPU isolation: which PL-VINI knob buys what (paper §4.1.2/§5.1.2)")
	rows, err := experiment.CPUIsolationAblation(*seedFlag, dur(12*time.Second, 8*time.Second), count(800, 300))
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %10s %12s %10s\n", "configuration", "TCP Mb/s", "ping mdev", "ping max")
	for _, r := range rows {
		fmt.Printf("%-28s %10.1f %9.2fms %7.1fms\n", r.Name, r.Mbps, r.PingMdev, r.PingMax)
	}
	fmt.Println("\n-- socket buffer vs Figure 6 loss knee (45 Mb/s CBR, default share)")
	bufs, err := experiment.SocketBufferAblation(*seedFlag, []int{32, 64, 128, 256, 1024}, dur(10*time.Second, 5*time.Second))
	if err != nil {
		return err
	}
	for _, b := range bufs {
		fmt.Printf("  %5d KB buffer  loss %6.2f%%\n", b.BufferKB, b.LossPct)
	}
	fmt.Println("\n-- user-space forwarding capacity vs packet size (DETER, saturating CBR)")
	sizes, err := experiment.PacketSizeAblation(*seedFlag, []int{64, 256, 512, 1024, 1400}, dur(4*time.Second, 2*time.Second))
	if err != nil {
		return err
	}
	for _, s := range sizes {
		fmt.Printf("  %5dB payload  %8.1f Mb/s  %8.1f kpps\n", s.PayloadBytes, s.Mbps, s.KppsMeasured)
	}
	fmt.Println("\n-- BGP multiplexer: external-session load for N experiments (§6.1)")
	for _, n := range []int{2, 4, 8} {
		row, err := experiment.BGPMuxAblation(n)
		if err != nil {
			return err
		}
		fmt.Printf("  %d experiments: %d session with mux vs %d without; hijacks rejected %d, flood updates dropped %d\n",
			row.Experiments, row.SessionsWithMux, row.SessionsWithout, row.RejectedHijacks, row.RateLimitedFloods)
	}
	return nil
}

func dur(long, shortDur time.Duration) time.Duration {
	if *short {
		return shortDur
	}
	return long
}

func count(long, shortN int) int {
	if *short {
		return shortN
	}
	return long
}

func table2() error {
	fmt.Println("TCP throughput on DETER (20 iperf streams, GigE)")
	fmt.Printf("%-10s %14s %14s %8s\n", "", "paper Mb/s", "measured Mb/s", "CPU%")
	paper := map[string][2]float64{"Network": {940, 48}, "IIAS": {195, 99}}
	for _, overlay := range []bool{false, true} {
		r, err := experiment.Table2(*seedFlag, overlay, dur(10*time.Second, 3*time.Second))
		if err != nil {
			return err
		}
		p := paper[r.Name]
		fmt.Printf("%-10s %9.0f (%2.0f%%) %14.1f %7.1f\n", r.Name, p[0], p[1], r.Mbps, 100*r.CPU)
	}
	return nil
}

func table3() error {
	fmt.Println("ping on DETER (ms)")
	fmt.Printf("%-10s %28s %38s\n", "", "paper min/avg/max/mdev", "measured min/avg/max/mdev")
	paper := map[string]string{
		"Network": "0.193/0.414/0.593/0.089",
		"IIAS":    "0.269/0.547/0.783/0.080",
	}
	for _, overlay := range []bool{false, true} {
		r, err := experiment.Table3(*seedFlag, overlay, count(10000, 2000))
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %28s %18.3f/%.3f/%.3f/%.3f (loss %.1f%%)\n",
			r.Name, paper[r.Name], r.Min, r.Avg, r.Max, r.Mdev, r.LossPct)
	}
	return nil
}

var modes = []experiment.Mode{experiment.ModeNative, experiment.ModeDefaultShare, experiment.ModePLVINI}

func table4() error {
	fmt.Println("TCP throughput on PlanetLab (Chicago -> Washington, 20 streams)")
	fmt.Printf("%-20s %12s %14s %8s\n", "", "paper Mb/s", "measured Mb/s", "CPU%")
	paper := map[string][2]float64{
		"Network": {90.8, 0}, "IIAS on PlanetLab": {22.5, 13}, "IIAS on PL-VINI": {86.2, 40}}
	for _, m := range modes {
		r, err := experiment.Table4(*seedFlag, m, dur(10*time.Second, 4*time.Second))
		if err != nil {
			return err
		}
		p := paper[r.Name]
		fmt.Printf("%-20s %12.1f %14.1f %7.1f\n", r.Name, p[0], r.Mbps, 100*r.CPU)
		_ = p
	}
	return nil
}

func table5() error {
	fmt.Println("ping on PlanetLab (ms)")
	fmt.Printf("%-20s %26s %30s\n", "", "paper min/avg/max/mdev", "measured min/avg/max/mdev")
	paper := map[string]string{
		"Network":           "24.4/24.5/28.2/0.2",
		"IIAS on PlanetLab": "24.7/27.7/80.9/4.8",
		"IIAS on PL-VINI":   "24.7/25.1/28.6/0.38",
	}
	for _, m := range modes {
		r, err := experiment.Table5(*seedFlag, m, count(3000, 800))
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %26s %12.1f/%.1f/%.1f/%.2f\n",
			r.Name, paper[r.Name], r.Min, r.Avg, r.Max, r.Mdev)
	}
	return nil
}

func table6() error {
	fmt.Println("jitter on PlanetLab (ms, CBR streams 1-50 Mb/s)")
	fmt.Printf("%-20s %12s %24s\n", "", "paper mean", "measured mean (stddev)")
	paper := map[string]float64{
		"Network": 0.27, "IIAS on PlanetLab": 2.4, "IIAS on PL-VINI": 1.3}
	for _, m := range modes {
		r, err := experiment.Table6(*seedFlag, m)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %12.2f %16.2f (%.2f)\n", r.Name, paper[r.Name], r.Mean, r.Stddev)
	}
	return nil
}

func fig6() error {
	fmt.Println("packet loss vs UDP rate (Figure 6)")
	rates := []float64{1, 5, 10, 15, 20, 25, 30, 35, 40, 45}
	if *short {
		rates = []float64{5, 15, 25, 35, 45}
	}
	for _, m := range []experiment.Mode{experiment.ModeDefaultShare, experiment.ModePLVINI} {
		pts, err := experiment.Figure6(*seedFlag, m, rates, dur(10*time.Second, 5*time.Second))
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", m)
		for _, p := range pts {
			fmt.Printf("  %5.1f Mb/s  loss %6.2f%%  %s\n", p.RateMbps, p.LossPct, bar(p.LossPct))
		}
	}
	fmt.Println("paper: default share rises to ~14% at 45 Mb/s; PL-VINI stays at network level")
	return nil
}

func bar(pct float64) string {
	n := int(pct)
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func fig7() error {
	fmt.Println("Abilene topology as extracted from router configurations (Figure 7)")
	files := rcc.AbileneConfigs()
	codes := make([]string, 0, len(files))
	for code := range files {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	var configs []*rcc.RouterConfig
	for _, code := range codes {
		c, err := rcc.Parse(files[code])
		if err != nil {
			return err
		}
		configs = append(configs, c)
	}
	if probs := rcc.Check(configs); len(probs) > 0 {
		return fmt.Errorf("configuration faults: %v", probs)
	}
	g, err := rcc.BuildTopology(configs)
	if err != nil {
		return err
	}
	fmt.Printf("%d PoPs, %d links (rcc static analysis: clean)\n", len(g.Nodes()), len(g.Links()))
	for _, l := range g.Links() {
		fmt.Printf("  %-6s -- %-6s cost %4d delay %s\n", l.A, l.B, l.CostAB, l.Delay)
	}
	def := g.ShortestPaths(topology.AbileneRouterCode[topology.Washington], nil)
	p := def[topology.AbileneRouterCode[topology.Seattle]]
	fmt.Printf("default wash->sttl path: %v (RTT %v)\n", p.Hops, 2*p.Delay)
	return nil
}

func fig8() error {
	fmt.Println("ping RTT during OSPF convergence (Figure 8; fail Denver-Kansas City at t=10s, restore t=34s)")
	e, err := experiment.NewAbilene(*seedFlag)
	if err != nil {
		return err
	}
	pts, err := e.Figure8()
	if err != nil {
		return err
	}
	prev := -1.0
	for _, p := range pts {
		marker := ""
		if p.Lost {
			fmt.Printf("  t=%5.1fs  lost\n", p.T)
			prev = -1
			continue
		}
		if prev > 0 && (p.RTTms-prev > 2 || prev-p.RTTms > 2) {
			marker = "  <- path change"
		}
		if prev < 0 || marker != "" || int(p.T*5)%25 == 0 {
			fmt.Printf("  t=%5.1fs  rtt %6.1f ms%s\n", p.T, p.RTTms, marker)
		}
		prev = p.RTTms
	}
	fmt.Println("paper: 76 ms -> failure at 10 s -> no replies until ~17 s -> brief ~110 ms -> 93 ms -> restore at 34 s -> brief ~87 ms -> 76 ms")
	for _, c := range e.Convergences() {
		dir := "restore"
		if c.Down {
			dir = "failure"
		}
		fmt.Printf("telemetry: %s %s at t=%v reconverged in %v (%d route installs)\n",
			c.Link, dir, c.At, c.Duration, c.Installs)
	}
	return nil
}

func fig9() error {
	fmt.Println("TCP transfer during OSPF convergence (Figure 9; 16 KB window)")
	e, err := experiment.NewAbilene(*seedFlag)
	if err != nil {
		return err
	}
	arr, err := e.Figure9()
	if err != nil {
		return err
	}
	last := -2.0
	for _, a := range arr {
		if a.T-last >= 2 {
			fmt.Printf("  t=%5.1fs  %6.3f MB transferred\n", a.T, a.MB)
			last = a.T
		}
	}
	if n := len(arr); n > 0 {
		fmt.Printf("  t=%5.1fs  %6.3f MB transferred (final)\n", arr[n-1].T, arr[n-1].MB)
	}
	fmt.Println("paper 9(a): steady ~16KB/76ms progress, stall 10-18 s, slow-start restart, dip near 38 s")
	// 9(b): the detail around the restart.
	fmt.Println("restart detail (Figure 9(b)):")
	var restart float64
	var base float64
	for _, a := range arr {
		if a.T > 10.5 && restart == 0 {
			restart = a.T
			base = a.MB
		}
		if restart > 0 && a.T < restart+2.2 {
			fmt.Printf("  t=%7.3fs  stream position %8.0f bytes\n", a.T, (a.MB-base)*1e6)
		}
	}
	return nil
}
