package main

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/topology"
	"vini/internal/traffic"
)

// parallelRow is one engine configuration's measurement in the
// BENCH_parallel.json report.
type parallelRow struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	WallSeconds float64 `json:"wall_seconds"`
	// Events counts fired events. Since cross-domain hand-offs became
	// typed deliveries (no wrapper events on either path), a fired
	// event means the same thing in classic and sharded mode: one
	// semantic action. Residual differences between the modes are real
	// workload divergence — the engines fork RNG streams differently
	// and are separate deterministic baselines — not accounting noise.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Deliveries is reported separately: cross-domain typed messages
	// delivered into a destination heap (0 in classic mode, where every
	// hop is a local event).
	Deliveries uint64 `json:"deliveries"`
	// Rounds counts coordinator quiescence epochs (classic: events).
	Rounds    uint64 `json:"rounds"`
	Windows   uint64 `json:"windows"`
	Fallbacks uint64 `json:"fallbacks"`
	Trains    uint64 `json:"trains"`
	TrainMsgs uint64 `json:"train_msgs"`
	// Steals is wall-clock/interleaving dependent (diagnostic only).
	Steals         uint64 `json:"steals"`
	ScheduleDigest string `json:"schedule_digest"`
	// PerDomain maps domain label -> fired event count; the full
	// counter set prints under -v.
	PerDomain map[string]uint64 `json:"per_domain_fired,omitempty"`
}

type parallelReport struct {
	Topology     string        `json:"topology"`
	Slices       int           `json:"slices"`
	VirtualSecs  float64       `json:"virtual_seconds"`
	GoVersion    string        `json:"go_version"`
	NumCPU       int           `json:"num_cpu"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Rows         []parallelRow `json:"rows"`
	Speedup      float64       `json:"speedup_4w_over_1w"`
	DigestsAgree bool          `json:"sharded_digests_agree"`
	Note         string        `json:"note,omitempty"`
}

// cbrPairs are the per-slice cross-country flows; each slice gets one,
// so traffic load spreads over distinct source/sink domains.
var cbrPairs = [][2]string{
	{topology.Washington, topology.Seattle},
	{topology.NewYork, topology.LosAngeles},
	{topology.Chicago, topology.Houston},
	{topology.Atlanta, topology.Sunnyvale},
}

// buildParallelWorld assembles the benchmark scenario: the 11-PoP
// Abilene substrate (minimum link propagation delay 2.25 ms — the
// conservative executor's lookahead floor) carrying 4 IIAS slices, each
// mirroring the physical topology with its own OSPF instance and one
// cross-country UDP CBR flow. workers == 0 builds on the classic
// single-timeline loop; workers >= 1 shards each PoP into its own time
// domain.
func buildParallelWorld(seed int64, workers int) (*core.VINI, error) {
	v := core.New(seed)
	if workers > 0 {
		v = core.NewParallel(seed, workers)
	}
	g := topology.Abilene()
	for _, pop := range g.Nodes() {
		addr, _ := topology.AbilenePublicAddr(pop)
		if _, err := v.AddNode(pop, netip.MustParseAddr(addr),
			netem.PlanetLabProfile(), sched.Options{}); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		if _, err := v.AddLink(netem.LinkConfig{A: l.A, B: l.B,
			Bandwidth: l.Bandwidth, Delay: l.Delay}); err != nil {
			return nil, err
		}
	}
	v.ComputeRoutes()
	for i := 0; i < len(cbrPairs); i++ {
		s, err := v.CreateSlice(core.SliceConfig{
			Name: fmt.Sprintf("slice%d", i), CPUShare: 0.2})
		if err != nil {
			return nil, err
		}
		for _, pop := range g.Nodes() {
			if _, err := s.AddVirtualNode(pop); err != nil {
				return nil, err
			}
		}
		for _, l := range g.Links() {
			if _, err := s.ConnectVirtual(l.A, l.B, l.CostAB); err != nil {
				return nil, err
			}
		}
		s.StartOSPF(5*time.Second, 10*time.Second)
		src, _ := s.VirtualNode(cbrPairs[i][0])
		dst, _ := s.VirtualNode(cbrPairs[i][1])
		if _, err := traffic.StartUDPCBR(v.Net, src.Phys(), dst.Phys(), traffic.UDPCBRConfig{
			RateBps: 10e6, Port: uint16(5001 + i),
			SrcAddr: src.TapAddr, DstAddr: dst.TapAddr}); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// runParallelBench measures one engine configuration end to end.
func runParallelBench(workers int, window time.Duration) (parallelRow, []sim.DomainStats, error) {
	name := "classic-loop"
	if workers > 0 {
		name = fmt.Sprintf("domains x%d", workers)
	}
	row := parallelRow{Name: name, Workers: workers}
	v, err := buildParallelWorld(*seedFlag, workers)
	if err != nil {
		return row, nil, err
	}
	defer v.Close()
	start := time.Now()
	v.Run(window)
	row.WallSeconds = time.Since(start).Seconds()
	x := v.Executor()
	row.Gomaxprocs = runtime.GOMAXPROCS(0)
	row.Events = x.TotalFired()
	row.EventsPerSec = float64(row.Events) / row.WallSeconds
	row.Deliveries = x.Deliveries()
	row.Rounds = x.Rounds()
	row.Windows = x.Windows()
	row.Fallbacks = x.Fallbacks()
	row.Trains, row.TrainMsgs = x.TrainStats()
	row.Steals = x.Steals()
	row.ScheduleDigest = fmt.Sprintf("%016x", x.ScheduleDigest())
	stats := x.Stats()
	if workers > 0 {
		row.PerDomain = make(map[string]uint64, len(stats))
		for _, s := range stats {
			row.PerDomain[s.Label] = s.Fired
		}
	}
	return row, stats, nil
}

// parallelExp benchmarks the sharded conservative executor against the
// classic loop on the 4-slice Abilene scenario, checks that every
// sharded worker count executes the byte-identical event schedule, and
// writes BENCH_parallel.json.
func parallelExp() error {
	window := dur(60*time.Second, 20*time.Second)
	maxW := *parallelFlag
	if maxW < 1 {
		maxW = 1
	}
	workerCounts := []int{0, 1}
	for w := 2; w <= maxW; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	fmt.Printf("4-slice Abilene (11 PoPs, min link delay 2.25ms), %v virtual time\n", window)
	fmt.Printf("host: %d CPUs, GOMAXPROCS=%d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-14s %10s %12s %14s %12s %8s %10s %10s %10s\n",
		"engine", "wall", "events", "events/sec", "deliveries", "rounds", "trains", "steals", "fallbacks")
	rep := parallelReport{
		Topology: "abilene", Slices: len(cbrPairs),
		VirtualSecs: window.Seconds(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		DigestsAgree: true,
	}
	var wall1, wall4 float64
	shardDigest := ""
	for _, w := range workerCounts {
		row, stats, err := runParallelBench(w, window)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %9.2fs %12d %14.0f %12d %8d %10d %10d %10d\n",
			row.Name, row.WallSeconds, row.Events, row.EventsPerSec,
			row.Deliveries, row.Rounds, row.Trains, row.Steals, row.Fallbacks)
		if *verbose && w > 0 {
			fmt.Printf("  %-14s %10s %10s %10s %10s %10s %10s %8s\n",
				"domain", "scheduled", "sent", "delivered", "fired", "cancelled", "recycled", "stalls")
			for _, s := range stats {
				fmt.Printf("  %-14s %10d %10d %10d %10d %10d %10d %8d\n",
					s.Label, s.Scheduled, s.Sent, s.Delivered, s.Fired, s.Cancelled, s.Recycled, s.Stalls)
			}
		}
		if w > 0 {
			if shardDigest == "" {
				shardDigest = row.ScheduleDigest
			} else if row.ScheduleDigest != shardDigest {
				rep.DigestsAgree = false
			}
		}
		if w == 1 {
			wall1 = row.WallSeconds
		}
		if w == maxW {
			wall4 = row.WallSeconds
		}
		rep.Rows = append(rep.Rows, row)
	}
	if wall1 > 0 && wall4 > 0 {
		rep.Speedup = wall1 / wall4
		fmt.Printf("speedup (%d workers vs 1): %.2fx\n", maxW, rep.Speedup)
	}
	if !rep.DigestsAgree {
		fmt.Println("DETERMINISM VIOLATION: sharded schedule digests diverged across worker counts")
	} else {
		fmt.Printf("sharded schedule digest %s identical across all worker counts\n", shardDigest)
	}
	if runtime.GOMAXPROCS(0) < 2 {
		rep.Note = "single-CPU host: worker goroutines time-share one core, so no " +
			"wall-clock speedup is possible here; see DESIGN.md \"Time domains & " +
			"conservative synchronization\" for the multi-core profile"
		fmt.Println("note: " + rep.Note)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_parallel.json")
	if !rep.DigestsAgree {
		return fmt.Errorf("parallel: schedule digests diverged across worker counts")
	}
	if *baselineFlag != "" {
		if err := checkBaseline(*baselineFlag, rep, maxW); err != nil {
			return err
		}
	}
	return nil
}

// checkBaseline compares the max-worker leg's throughput against a
// committed prior report and fails on a regression of more than 15%.
// The committed baseline records whatever host class generated it, so
// the gate is a floor, not a race: a faster runner passes trivially,
// while dropping 15% below even the baseline host signals a real
// executor regression.
func checkBaseline(path string, rep parallelReport, maxW int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("parallel: baseline: %w", err)
	}
	var base parallelReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parallel: baseline %s: %w", path, err)
	}
	pick := func(rows []parallelRow) *parallelRow {
		for i := range rows {
			if rows[i].Workers == maxW {
				return &rows[i]
			}
		}
		return nil
	}
	cur, prev := pick(rep.Rows), pick(base.Rows)
	if cur == nil || prev == nil || prev.EventsPerSec <= 0 {
		fmt.Printf("baseline %s has no comparable %d-worker row; skipping throughput gate\n", path, maxW)
		return nil
	}
	ratio := cur.EventsPerSec / prev.EventsPerSec
	fmt.Printf("baseline gate: %d-worker %.0f events/sec vs baseline %.0f (%.2fx, floor 0.85x; baseline host GOMAXPROCS=%d, this host %d)\n",
		maxW, cur.EventsPerSec, prev.EventsPerSec, ratio, prev.Gomaxprocs, cur.Gomaxprocs)
	if ratio < 0.85 {
		return fmt.Errorf("parallel: %d-worker events/sec regressed %.0f%% below baseline %s",
			maxW, (1-ratio)*100, path)
	}
	return nil
}
