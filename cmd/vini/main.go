// Command vini runs an experiment specification file (the ns-like
// language of the paper's Section 6.2) on a simulated VINI deployment
// and prints the measurements.
//
// Usage:
//
//	vini experiment.spec
//	echo "topology abilene ..." | vini -
package main

import (
	"fmt"
	"io"
	"os"

	"vini/internal/experiment"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: vini <spec-file|->")
		os.Exit(2)
	}
	var text []byte
	var err error
	if os.Args[1] == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec, err := experiment.ParseSpec(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("running %q on %s topology (%s, warmup %s, duration %s)\n",
		spec.Slice.Name, spec.Topology, spec.Protocol, spec.Warmup, spec.Duration)
	res, err := spec.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, l := range res.Log {
		fmt.Println("event:", l)
	}
	for _, p := range res.Pings {
		fmt.Printf("ping %s -> %s: min/avg/max/mdev = %.3f/%.3f/%.3f/%.3f ms, loss %.1f%%\n",
			p.Src, p.Dst, p.Min, p.Avg, p.Max, p.Mdev, p.LossPct)
		for _, s := range p.Timeline {
			if s.Lost {
				fmt.Printf("  t=%6.1fs lost\n", s.T)
			} else {
				fmt.Printf("  t=%6.1fs rtt %7.2f ms\n", s.T, s.RTTms)
			}
		}
	}
	for _, t := range res.TCPs {
		fmt.Printf("iperf-tcp %s -> %s: %.2f Mb/s\n", t.Src, t.Dst, t.Mbps)
	}
	for _, c := range res.CBRs {
		fmt.Printf("udp-cbr %s -> %s: loss %.2f%%, jitter %.3f ms\n",
			c.Src, c.Dst, c.LossPct, c.JitterMs)
	}
	for _, a := range res.Adaptives {
		fmt.Printf("adaptive %s -> %s: estimate %.0f kb/s, %d sent, %d received\n",
			a.Src, a.Dst, a.EstimateBps/1e3, a.Sent, a.Received)
		for _, pt := range a.Trace {
			fmt.Printf("  t=%6.1fs estimate %8.0f kb/s actual %8.0f kb/s\n",
				pt.T, pt.EstimateBps/1e3, pt.ActualBps/1e3)
		}
	}
}
