// Command rccdump parses router configuration files, runs rcc-style
// static checks, and dumps the extracted topology — the front half of
// the machinery that mirrors an operational network into a VINI
// experiment.
//
// Usage:
//
//	rccdump file1.conf file2.conf ...
//	rccdump -abilene          # use the embedded Abilene configurations
//	rccdump -abilene -emit    # print the embedded configurations
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vini/internal/rcc"
)

var (
	abilene = flag.Bool("abilene", false, "use the embedded Abilene router configurations")
	emit    = flag.Bool("emit", false, "print the configurations instead of the topology")
)

func main() {
	flag.Parse()
	var configs []*rcc.RouterConfig
	if *abilene {
		files := rcc.AbileneConfigs()
		names := make([]string, 0, len(files))
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if *emit {
				fmt.Printf("### %s.conf\n%s\n", n, files[n])
				continue
			}
			c, err := rcc.Parse(files[n])
			if err != nil {
				fatal(err)
			}
			configs = append(configs, c)
		}
		if *emit {
			return
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: rccdump [-abilene [-emit]] [config files...]")
			os.Exit(2)
		}
		for _, f := range flag.Args() {
			text, err := os.ReadFile(f)
			if err != nil {
				fatal(err)
			}
			c, err := rcc.Parse(string(text))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", f, err))
			}
			configs = append(configs, c)
		}
	}
	if probs := rcc.Check(configs); len(probs) > 0 {
		fmt.Println("static analysis found configuration faults:")
		for _, p := range probs {
			fmt.Println("  ", p)
		}
		os.Exit(1)
	}
	fmt.Println("static analysis: clean")
	g, err := rcc.BuildTopology(configs)
	if err != nil {
		fatal(err)
	}
	hello, dead, err := rcc.Timers(configs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("topology: %d routers, %d links (OSPF hello %s, dead %s)\n",
		len(g.Nodes()), len(g.Links()), hello, dead)
	for _, l := range g.Links() {
		fmt.Printf("  %-8s -- %-8s cost %5d/%-5d delay %-8s bw %.0f bit/s\n",
			l.A, l.B, l.CostAB, l.CostBA, l.Delay, l.Bandwidth)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
