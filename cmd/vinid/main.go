// Command vinid hosts domain shards of one simulated VINI world across
// processes. A coordinator process partitions the world's node domains
// round-robin over itself plus N-1 workers, ships the experiment
// parameters in the handshake payload (so every process provably builds
// the identical world), runs its own shard, and merges the per-domain
// FNV schedule digests and telemetry snapshots the workers report. With
// -check it also runs the whole world in-process and exits non-zero
// unless the merged digests are byte-identical — the distributed-parity
// proof.
//
// Usage:
//
//	vinid -shards 2 [-check] [-seed N] [-nodes N] [-duration D]   # coordinator, spawns workers
//	vinid -worker -connect HOST:PORT -shard K                     # one worker shard
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"vini/internal/sim"
	"vini/internal/simtest"
	"vini/internal/telemetry"
)

var (
	workerFlag  = flag.Bool("worker", false, "run as a worker shard (requires -connect and -shard)")
	connectFlag = flag.String("connect", "", "coordinator address to dial (worker mode)")
	shardFlag   = flag.Int("shard", 0, "this worker's shard index, 1..shards-1 (worker mode)")
	shardsFlag  = flag.Int("shards", 2, "total process count including the coordinator")
	listenFlag  = flag.String("listen", "127.0.0.1:0", "coordinator listen address")
	spawnFlag   = flag.Bool("spawn", true, "coordinator launches its own worker processes; with -spawn=false it waits for external vinid -worker processes")
	checkFlag   = flag.Bool("check", false, "also run the world in-process and fail unless digests match")
	timeoutFlag = flag.Duration("timeout", 30*time.Second, "handshake and per-superstep wire deadline")
	seedFlag    = flag.Int64("seed", 42, "scenario seed")
	nodesFlag   = flag.Int("nodes", 8, "physical node count")
	durFlag     = flag.Duration("duration", 2*time.Second, "virtual duration")
	workersFlag = flag.Int("workers", 0, "executor worker goroutines per process (0 = one per owned domain, capped at 4)")
	// failAfter is the failure-injection hook the transport tests use: a
	// worker exits hard after that many supersteps, simulating a crash
	// mid-epoch.
	failAfter = flag.Int("fail-after-supersteps", 0, "worker self-destructs after N supersteps (testing)")
)

func main() {
	flag.Parse()
	var err error
	if *workerFlag {
		err = runWorker()
	} else {
		err = runCoordinator()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vinid: %v\n", err)
		os.Exit(1)
	}
}

// dyingWorker is the crash-injection wrapper behind -fail-after-supersteps.
type dyingWorker struct {
	*sim.SockWorker
	after, calls int
}

func (d *dyingWorker) Exchange(x *sim.Executor) error {
	d.calls++
	if d.calls > d.after {
		os.Exit(3) // simulated crash: no FAIL frame, no goodbye
	}
	return d.SockWorker.Exchange(x)
}

func runWorker() error {
	if *connectFlag == "" || *shardFlag < 1 {
		return fmt.Errorf("worker mode needs -connect and -shard >= 1")
	}
	w, payload, err := sim.DialCoordinator(*connectFlag, *shardFlag, *timeoutFlag)
	if err != nil {
		return err
	}
	defer w.Close()
	var p simtest.DistParams
	if err := json.Unmarshal(payload, &p); err != nil {
		return fmt.Errorf("bad params payload: %w", err)
	}
	var tr sim.DomainTransport = w
	if *failAfter > 0 {
		tr = &dyingWorker{SockWorker: w, after: *failAfter}
	}
	res, err := simtest.RunDist(p, tr, *shardFlag, w.Shards())
	if err != nil {
		return err
	}
	tel, err := json.Marshal(res.Telemetry)
	if err != nil {
		return err
	}
	return w.Report(res.DomainDigests, tel)
}

func runCoordinator() error {
	shards := *shardsFlag
	if shards < 2 {
		return fmt.Errorf("-shards must be >= 2 (got %d)", shards)
	}
	p := simtest.DistParams{Seed: *seedFlag, Nodes: *nodesFlag,
		Duration: *durFlag, Workers: *workersFlag}
	payload, err := json.Marshal(p)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listenFlag)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("vinid: coordinating %d shards on %s\n", shards, ln.Addr())

	var procs []*exec.Cmd
	if *spawnFlag {
		self, err := os.Executable()
		if err != nil {
			return err
		}
		for s := 1; s < shards; s++ {
			args := []string{"-worker", "-connect", ln.Addr().String(),
				"-shard", strconv.Itoa(s), "-timeout", timeoutFlag.String()}
			if *failAfter > 0 && s == 1 {
				args = append(args, "-fail-after-supersteps", strconv.Itoa(*failAfter))
			}
			cmd := exec.Command(self, args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("spawn shard %d: %w", s, err)
			}
			procs = append(procs, cmd)
		}
		defer func() {
			for _, c := range procs {
				c.Process.Kill()
				c.Wait()
			}
		}()
	}

	coord, err := sim.AcceptWorkers(ln, shards, payload, *timeoutFlag)
	if err != nil {
		return err
	}
	defer coord.Close()

	own, err := simtest.RunDist(p, coord, 0, shards)
	if err != nil {
		return err
	}
	reports, err := coord.Gather()
	if err != nil {
		return err
	}
	results := make([]*simtest.DistResult, shards)
	results[0] = own
	for _, r := range reports {
		var snap []telemetry.MetricValue
		if err := json.Unmarshal(r.Payload, &snap); err != nil {
			return fmt.Errorf("shard %d telemetry payload: %w", r.Shard, err)
		}
		results[r.Shard] = &simtest.DistResult{DomainDigests: r.Digests, Telemetry: snap}
	}
	sched, tel, err := simtest.MergeDistResults(results, shards)
	if err != nil {
		return err
	}
	fmt.Printf("vinid: merged schedule digest %016x, telemetry digest %016x\n", sched, tel)

	for _, c := range procs {
		if err := c.Wait(); err != nil {
			return fmt.Errorf("worker exited: %w", err)
		}
	}
	procs = nil

	if *checkFlag {
		base, err := simtest.RunDist(p, nil, 0, 1)
		if err != nil {
			return fmt.Errorf("in-process baseline: %w", err)
		}
		if sched != base.ScheduleDigest || tel != base.TelemetryDigest {
			return fmt.Errorf("DIGEST MISMATCH: distributed %016x/%016x vs in-process %016x/%016x",
				sched, tel, base.ScheduleDigest, base.TelemetryDigest)
		}
		fmt.Printf("vinid: parity check passed (in-process %016x/%016x)\n",
			base.ScheduleDigest, base.TelemetryDigest)
	}
	return nil
}
