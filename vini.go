// Package vini is the public API of this VINI implementation — a virtual
// network infrastructure in the design of "In VINI Veritas: Realistic and
// Controlled Network Experimentation" (Bavier, Feamster, Huang, Peterson,
// Rexford; SIGCOMM 2006).
//
// VINI embeds experiment "slices" onto a shared physical substrate. Each
// slice gets its own virtual topology of UDP-tunnel links, a Click-style
// user-space forwarding plane per virtual node, XORP-role routing
// processes (OSPF, RIP, BGP) configuring the forwarding tables through a
// forwarding-engine abstraction, controlled failure injection inside the
// data plane, and resource guarantees (CPU reservations and real-time
// priority) on the hosting nodes. Real traffic enters via tap devices,
// an OpenVPN-style opt-in ingress, and leaves through NAT egress.
//
// Quick start:
//
//	v := vini.New(1)
//	v.AddNode("a", netip.MustParseAddr("198.51.100.1"), vini.PlanetLabProfile(), vini.SchedOptions{})
//	v.AddNode("b", netip.MustParseAddr("198.51.100.2"), vini.PlanetLabProfile(), vini.SchedOptions{})
//	v.AddLink(vini.LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: 5 * time.Millisecond})
//	v.ComputeRoutes()
//	s, _ := v.CreateSlice(vini.SliceConfig{Name: "demo", CPUShare: 0.25, RT: true})
//	s.AddVirtualNode("a")
//	s.AddVirtualNode("b")
//	s.ConnectVirtual("a", "b", 10)
//	s.StartOSPF(5*time.Second, 10*time.Second)
//	v.Run(60 * time.Second)
//
// The deeper subsystems are importable directly for advanced use:
// vini/internal is visible to programs inside this module (examples/ and
// cmd/ demonstrate both levels).
package vini

import (
	"net/netip"
	"time"

	"vini/internal/core"
	"vini/internal/experiment"
	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/topology"
)

// Re-exported construction types.
type (
	// VINI is one infrastructure deployment (see internal/core).
	VINI = core.VINI
	// Slice is one embedded experiment.
	Slice = core.Slice
	// VirtualNode is a slice's IIAS router on one physical node.
	VirtualNode = core.VirtualNode
	// VirtualLink is one UDP-tunnel virtual link.
	VirtualLink = core.VirtualLink
	// SliceConfig carries the PL-VINI resource knobs.
	SliceConfig = core.SliceConfig
	// LinkAlarm is the upcall for underlying topology changes.
	LinkAlarm = core.LinkAlarm
	// VPNClient is an opted-in end host.
	VPNClient = core.VPNClient
	// LinkConfig describes a physical link.
	LinkConfig = netem.LinkConfig
	// Profile is the host CPU/cost model.
	Profile = netem.Profile
	// SchedOptions configures a node's CPU scheduler.
	SchedOptions = sched.Options
	// Spec is a parsed ns-like experiment specification.
	Spec = experiment.Spec
)

// New creates an infrastructure on a deterministic event loop.
func New(seed int64) *VINI { return core.New(seed) }

// DETERProfile is the dedicated-testbed host model (2.8 GHz Xeon).
func DETERProfile() Profile { return netem.DETERProfile() }

// PlanetLabProfile is the shared-testbed host model (1.2-1.4 GHz P-III).
func PlanetLabProfile() Profile { return netem.PlanetLabProfile() }

// NewVPNClient attaches an OpenVPN-style client process to an end host.
func NewVPNClient(v *VINI, node string, overlayAddr netip.Addr, key []byte,
	server netip.AddrPort, capture []netip.Prefix) (*VPNClient, error) {
	return core.NewVPNClient(v, node, overlayAddr, key, server, capture)
}

// Abilene returns the 11-PoP Abilene backbone with its published OSPF
// weights and calibrated delays — the topology the paper mirrors.
func Abilene() *topology.Graph { return topology.Abilene() }

// AbilenePublicAddr returns the tunnel-endpoint address of the node
// co-located at an Abilene PoP.
func AbilenePublicAddr(pop string) (string, bool) {
	return topology.AbilenePublicAddr(pop)
}

// ParseSpec reads an ns-like experiment specification (Section 6.2 of
// the paper); run it with Spec.Run.
func ParseSpec(text string) (*Spec, error) { return experiment.ParseSpec(text) }

// BuildAbilene constructs a VINI whose physical substrate is the Abilene
// backbone, each PoP hosting one node with the given profile.
func BuildAbilene(seed int64, prof Profile) (*VINI, error) {
	v := New(seed)
	g := topology.Abilene()
	for _, n := range g.Nodes() {
		addr, _ := topology.AbilenePublicAddr(n)
		if _, err := v.AddNode(n, netip.MustParseAddr(addr), prof, sched.Options{}); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		if _, err := v.AddLink(netem.LinkConfig{A: l.A, B: l.B,
			Bandwidth: l.Bandwidth, Delay: l.Delay}); err != nil {
			return nil, err
		}
	}
	v.ComputeRoutes()
	return v, nil
}

// MirrorAbilene embeds a slice that mirrors the Abilene topology
// one-to-one with the real OSPF costs, as the paper's Section 5.2
// experiment does, and starts OSPF with the given timers.
func MirrorAbilene(v *VINI, cfg SliceConfig, hello, dead time.Duration) (*Slice, error) {
	s, err := v.CreateSlice(cfg)
	if err != nil {
		return nil, err
	}
	g := topology.Abilene()
	for _, n := range g.Nodes() {
		if _, err := s.AddVirtualNode(n); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		if _, err := s.ConnectVirtual(l.A, l.B, l.CostAB); err != nil {
			return nil, err
		}
	}
	s.StartOSPF(hello, dead)
	return s, nil
}
