package ospf

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"vini/internal/fib"
	"vini/internal/sim"
)

// Transport sends an OSPF packet out a virtual interface toward the
// point-to-point neighbor. The IIAS overlay implements this by wrapping
// the payload in IP protocol 89 and pushing it through the Click graph,
// so routing traffic traverses (and is cut by failures of) the same
// tunnels as data traffic.
type Transport interface {
	SendRouting(ifIndex int, payload []byte)
}

// Interface is one point-to-point virtual interface.
type Interface struct {
	Name   string
	Index  int        // element/tunnel port
	Addr   netip.Addr // local address on the /30
	Prefix netip.Prefix
	Cost   uint32
}

// Config parameterizes a router.
type Config struct {
	RouterID uint32
	// Hello and Dead are the §5.2 knobs (5 s and 10 s in the paper).
	Hello, Dead time.Duration
	// Rxmt is the LSA retransmission interval (default 2s).
	Rxmt time.Duration
	// SPFDelay batches LSDB changes before recomputing (default 100 ms).
	SPFDelay time.Duration
	// Refresh re-originates our LSA periodically so neighbors' aging
	// never expires live state (default 30 minutes, as OSPF's
	// LSRefreshTime; tests shorten it).
	Refresh time.Duration
	// MaxAge purges LSAs not refreshed within it (default 1 hour,
	// OSPF's MaxAge).
	MaxAge time.Duration
	// Stubs are local prefixes advertised in the router LSA (the tap0
	// host route, in IIAS).
	Stubs []StubDesc
	// Ticks, when set, is the clock for coarse periodic timers (hello,
	// refresh, age sweep) — typically a sim.TickWheel that coalesces
	// many routers' ticks into shared slot events. Deadline-sensitive
	// timers (dead, retransmit, SPF delay) always use the main clock.
	// Nil means periodic timers use the main clock too.
	Ticks sim.Clock
}

func (c *Config) setDefaults() {
	if c.Hello <= 0 {
		c.Hello = 5 * time.Second
	}
	if c.Dead <= 0 {
		c.Dead = 2 * c.Hello
	}
	if c.Rxmt <= 0 {
		c.Rxmt = 2 * time.Second
	}
	if c.SPFDelay <= 0 {
		c.SPFDelay = 100 * time.Millisecond
	}
	if c.Refresh <= 0 {
		c.Refresh = 30 * time.Minute
	}
	if c.MaxAge <= 0 {
		c.MaxAge = time.Hour
	}
}

// neighborState is the simplified adjacency FSM: Down → Init (we heard
// them) → Full (they heard us too; database exchanged).
type neighborState int

const (
	nDown neighborState = iota
	nInit
	nFull
)

func (s neighborState) String() string {
	switch s {
	case nInit:
		return "Init"
	case nFull:
		return "Full"
	default:
		return "Down"
	}
}

type neighbor struct {
	id        uint32
	addr      netip.Addr // neighbor's interface address (hello source)
	ifc       *Interface
	state     neighborState
	deadTimer sim.Timer
	// pendingAcks maps LSA keys awaiting this neighbor's ack.
	pendingAcks map[Key]LSA
	rxmtTimer   sim.Timer
}

// NeighborInfo is the externally visible adjacency state.
type NeighborInfo struct {
	ID    uint32
	Addr  netip.Addr
	Iface string
	State string
}

// Router is one OSPF speaker.
type Router struct {
	cfg   Config
	clock sim.Clock
	// ticks carries the periodic hello/refresh/age timers (cfg.Ticks,
	// or clock when unset).
	ticks  sim.Clock
	tr     Transport
	ifaces []*Interface
	// neighbors keyed by interface index (point-to-point: one each).
	neighbors map[int]*neighbor
	// lsdb holds the latest LSA per origin; lsdbAt tracks when each
	// instance was installed, for MaxAge purging.
	lsdb   map[uint32]LSA
	lsdbAt map[uint32]time.Duration
	// mySeq is this router's LSA sequence counter.
	mySeq uint32
	// onRoutes receives the post-SPF route table (the FEA hook).
	onRoutes func([]fib.Route)
	// onNeighbor observes adjacency state transitions (telemetry hook).
	onNeighbor func(iface int, neighbor uint32, state string)
	// lastRoutes is the most recently emitted route set (see Routes).
	lastRoutes []fib.Route
	spfPending bool
	started    bool
	helloTimer sim.Timer
	// SPFRuns counts SPF executions, for convergence diagnostics.
	SPFRuns int
}

// New creates a router; call AddInterface then Start.
func New(clock sim.Clock, cfg Config, tr Transport) *Router {
	cfg.setDefaults()
	ticks := cfg.Ticks
	if ticks == nil {
		ticks = clock
	}
	return &Router{
		cfg:       cfg,
		clock:     clock,
		ticks:     ticks,
		tr:        tr,
		neighbors: make(map[int]*neighbor),
		lsdb:      make(map[uint32]LSA),
		lsdbAt:    make(map[uint32]time.Duration),
	}
}

// AddInterface registers a point-to-point interface before Start.
func (r *Router) AddInterface(ifc Interface) error {
	if r.started {
		return fmt.Errorf("ospf: AddInterface after Start")
	}
	c := ifc
	r.ifaces = append(r.ifaces, &c)
	return nil
}

// OnRoutes installs the route sink invoked after every SPF run.
func (r *Router) OnRoutes(fn func([]fib.Route)) { r.onRoutes = fn }

// OnNeighborEvent installs an observer for adjacency state transitions
// (Init, Full, Down). It fires in the router's clock domain; telemetry
// uses it to populate the control-plane timeline.
func (r *Router) OnNeighborEvent(fn func(iface int, neighbor uint32, state string)) {
	r.onNeighbor = fn
}

func (r *Router) neighborEvent(iface int, id uint32, state string) {
	if r.onNeighbor != nil {
		r.onNeighbor(iface, id, state)
	}
}

// Start begins hello transmission and originates the initial LSA.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	r.originate()
	r.sendHellos()
	r.ticks.Schedule(r.cfg.Refresh, r.refresh)
	r.ticks.Schedule(r.cfg.MaxAge/4, r.ageSweep)
}

// refresh periodically re-originates our LSA (LSRefreshTime) so it never
// ages out of neighbors' databases.
func (r *Router) refresh() {
	if !r.started {
		return
	}
	r.originate()
	r.ticks.Schedule(r.cfg.Refresh, r.refresh)
}

// ageSweep purges LSAs that have not been refreshed within MaxAge — the
// garbage left by routers that disappeared without withdrawing state.
func (r *Router) ageSweep() {
	if !r.started {
		return
	}
	now := r.clock.Now()
	changed := false
	for origin, at := range r.lsdbAt {
		if origin == r.cfg.RouterID {
			continue
		}
		if now-at > r.cfg.MaxAge {
			delete(r.lsdb, origin)
			delete(r.lsdbAt, origin)
			changed = true
		}
	}
	if changed {
		r.scheduleSPF()
	}
	r.ticks.Schedule(r.cfg.MaxAge/4, r.ageSweep)
}

// Stop cancels timers; the router stops speaking.
func (r *Router) Stop() {
	r.started = false
	if !r.helloTimer.IsZero() {
		r.helloTimer.Stop()
	}
	for _, nb := range r.neighbors {
		if !nb.deadTimer.IsZero() {
			nb.deadTimer.Stop()
		}
		if !nb.rxmtTimer.IsZero() {
			nb.rxmtTimer.Stop()
		}
	}
}

// Neighbors reports adjacency state sorted by interface index.
func (r *Router) Neighbors() []NeighborInfo {
	idxs := make([]int, 0, len(r.neighbors))
	for i := range r.neighbors {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]NeighborInfo, 0, len(idxs))
	for _, i := range idxs {
		nb := r.neighbors[i]
		out = append(out, NeighborInfo{ID: nb.id, Addr: nb.addr, Iface: nb.ifc.Name, State: nb.state.String()})
	}
	return out
}

// LSDB returns the database sorted by origin.
func (r *Router) LSDB() []LSA {
	out := make([]LSA, 0, len(r.lsdb))
	for _, l := range r.lsdb {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

func (r *Router) sendHellos() {
	if !r.started {
		return
	}
	for _, ifc := range r.ifaces {
		var seen []uint32
		if nb, ok := r.neighbors[ifc.Index]; ok && nb.state >= nInit {
			seen = append(seen, nb.id)
		}
		pkt := MarshalHello(r.cfg.RouterID, Hello{
			HelloInterval: uint16(r.cfg.Hello / time.Second),
			DeadInterval:  uint16(r.cfg.Dead / time.Second),
			Neighbors:     seen,
		})
		r.tr.SendRouting(ifc.Index, pkt)
	}
	r.helloTimer = r.ticks.Schedule(r.cfg.Hello, r.sendHellos)
}

// Receive processes an OSPF packet arriving on interface ifIndex from
// the neighbor address src. Malformed packets are dropped with an error
// for the caller's logs.
func (r *Router) Receive(ifIndex int, src netip.Addr, payload []byte) error {
	if !r.started {
		return nil
	}
	h, body, err := ParseHeader(payload)
	if err != nil {
		return err
	}
	if h.RouterID == r.cfg.RouterID {
		return nil // our own packet reflected
	}
	switch h.Type {
	case TypeHello:
		hello, err := ParseHello(body)
		if err != nil {
			return err
		}
		r.handleHello(ifIndex, src, h.RouterID, hello)
	case TypeLSU:
		u, err := ParseLSU(body)
		if err != nil {
			return err
		}
		r.handleLSU(ifIndex, h.RouterID, u)
	case TypeLSAck:
		a, err := ParseLSAck(body)
		if err != nil {
			return err
		}
		r.handleAck(ifIndex, a)
	default:
		return fmt.Errorf("ospf: unknown type %d", h.Type)
	}
	return nil
}

func (r *Router) iface(idx int) *Interface {
	for _, ifc := range r.ifaces {
		if ifc.Index == idx {
			return ifc
		}
	}
	return nil
}

func (r *Router) handleHello(ifIndex int, src netip.Addr, id uint32, h Hello) {
	ifc := r.iface(ifIndex)
	if ifc == nil {
		return
	}
	nb := r.neighbors[ifIndex]
	if nb == nil || nb.id != id {
		nb = &neighbor{id: id, addr: src, ifc: ifc, pendingAcks: make(map[Key]LSA)}
		r.neighbors[ifIndex] = nb
	}
	nb.addr = src
	// Reset the dead timer.
	if !nb.deadTimer.IsZero() {
		nb.deadTimer.Stop()
	}
	nb.deadTimer = r.clock.Schedule(r.cfg.Dead, func() { r.neighborDead(ifIndex, nb) })
	// Two-way check: do they list us?
	twoWay := false
	for _, n := range h.Neighbors {
		if n == r.cfg.RouterID {
			twoWay = true
			break
		}
	}
	switch {
	case nb.state == nDown:
		nb.state = nInit
		r.neighborEvent(ifIndex, id, "Init")
	case nb.state == nInit && twoWay:
		r.adjacencyUp(nb)
		r.neighborEvent(ifIndex, id, "Full")
	case nb.state == nFull && !twoWay:
		// Neighbor restarted and forgot us.
		nb.state = nInit
		r.originate()
		r.neighborEvent(ifIndex, id, "Init")
	}
}

// adjacencyUp brings the neighbor Full: exchange the database (the
// simplified stand-in for ExStart/Exchange/Loading) and re-originate our
// LSA to include the new link.
func (r *Router) adjacencyUp(nb *neighbor) {
	nb.state = nFull
	r.originate()
	// Database exchange: send everything we have.
	var all []LSA
	for _, l := range r.lsdb {
		all = append(all, l)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Origin < all[j].Origin })
	if len(all) > 0 {
		r.sendLSU(nb, all)
	}
}

func (r *Router) neighborDead(ifIndex int, nb *neighbor) {
	if r.neighbors[ifIndex] != nb {
		return
	}
	delete(r.neighbors, ifIndex)
	if !nb.rxmtTimer.IsZero() {
		nb.rxmtTimer.Stop()
	}
	r.originate()
	r.neighborEvent(ifIndex, nb.id, "Down")
}

// originate rebuilds and floods our router LSA.
func (r *Router) originate() {
	r.mySeq++
	lsa := LSA{Origin: r.cfg.RouterID, Seq: r.mySeq, Stubs: append([]StubDesc(nil), r.cfg.Stubs...)}
	// Advertise interface subnets as stubs plus links to Full neighbors.
	idxs := make([]int, 0, len(r.neighbors))
	for i := range r.neighbors {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		nb := r.neighbors[i]
		if nb.state == nFull {
			lsa.Links = append(lsa.Links, LinkDesc{NeighborID: nb.id, Cost: nb.ifc.Cost})
		}
	}
	for _, ifc := range r.ifaces {
		lsa.Stubs = append(lsa.Stubs, StubDesc{Prefix: ifc.Prefix.Masked(), Cost: ifc.Cost})
	}
	r.lsdb[r.cfg.RouterID] = lsa
	r.lsdbAt[r.cfg.RouterID] = r.clock.Now()
	r.flood(lsa, -1)
	r.scheduleSPF()
}

// flood sends the LSA to every Full neighbor except the one on exceptIf,
// tracking acknowledgements for retransmission. Interface order is
// sorted so runs are bit-reproducible (map order would perturb the
// shared simulation RNG).
func (r *Router) flood(lsa LSA, exceptIf int) {
	idxs := make([]int, 0, len(r.neighbors))
	for i := range r.neighbors {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		nb := r.neighbors[i]
		if i == exceptIf || nb.state != nFull {
			continue
		}
		r.sendLSU(nb, []LSA{lsa})
	}
}

func (r *Router) sendLSU(nb *neighbor, lsas []LSA) {
	for _, l := range lsas {
		// Supersede any older pending instance of the same origin.
		for k := range nb.pendingAcks {
			if k.Origin == l.Origin && k.Seq < l.Seq {
				delete(nb.pendingAcks, k)
			}
		}
		nb.pendingAcks[l.Key()] = l
	}
	r.tr.SendRouting(nb.ifc.Index, MarshalLSU(r.cfg.RouterID, LSU{LSAs: lsas}))
	if nb.rxmtTimer.IsZero() {
		nb.rxmtTimer = r.clock.Schedule(r.cfg.Rxmt, func() { r.retransmit(nb) })
	}
}

func (r *Router) retransmit(nb *neighbor) {
	nb.rxmtTimer = sim.Timer{}
	if len(nb.pendingAcks) == 0 || nb.state != nFull {
		return
	}
	var lsas []LSA
	for _, l := range nb.pendingAcks {
		lsas = append(lsas, l)
	}
	sort.Slice(lsas, func(i, j int) bool { return lsas[i].Origin < lsas[j].Origin })
	r.tr.SendRouting(nb.ifc.Index, MarshalLSU(r.cfg.RouterID, LSU{LSAs: lsas}))
	nb.rxmtTimer = r.clock.Schedule(r.cfg.Rxmt, func() { r.retransmit(nb) })
}

func (r *Router) handleLSU(ifIndex int, from uint32, u LSU) {
	nb := r.neighbors[ifIndex]
	var acks []Key
	changed := false
	for _, lsa := range u.LSAs {
		acks = append(acks, lsa.Key())
		if lsa.Origin == r.cfg.RouterID {
			// Someone floods a stale copy of our own LSA: outrace it.
			if lsa.Seq >= r.mySeq {
				r.mySeq = lsa.Seq
				r.originate()
			}
			continue
		}
		cur, have := r.lsdb[lsa.Origin]
		if have && cur.Seq >= lsa.Seq {
			continue // old news
		}
		r.lsdb[lsa.Origin] = lsa
		r.lsdbAt[lsa.Origin] = r.clock.Now()
		changed = true
		r.flood(lsa, ifIndex)
	}
	if nb != nil && len(acks) > 0 {
		r.tr.SendRouting(ifIndex, MarshalLSAck(r.cfg.RouterID, LSAck{Keys: acks}))
	}
	if changed {
		r.scheduleSPF()
	}
}

func (r *Router) handleAck(ifIndex int, a LSAck) {
	nb := r.neighbors[ifIndex]
	if nb == nil {
		return
	}
	for _, k := range a.Keys {
		delete(nb.pendingAcks, k)
	}
}

func (r *Router) scheduleSPF() {
	if r.spfPending {
		return
	}
	r.spfPending = true
	r.clock.Schedule(r.cfg.SPFDelay, func() {
		r.spfPending = false
		r.runSPF()
	})
}

// runSPF computes shortest paths over the LSDB and emits routes. An edge
// u→v is used only if both u and v advertise it (the bidirectional
// check), which is what makes half-propagated failures produce the
// transient paths Figure 8 shows rather than loops.
func (r *Router) runSPF() {
	r.SPFRuns++
	if r.onRoutes == nil {
		return
	}
	type nodeDist struct {
		id   uint32
		dist uint64
	}
	const inf = ^uint64(0)
	dist := map[uint32]uint64{r.cfg.RouterID: 0}
	firstHop := map[uint32]*neighbor{} // dest -> first-hop neighbor
	visited := map[uint32]bool{}
	// cost returns the bidirectional-checked edge cost u->v.
	cost := func(u, v uint32) (uint32, bool) {
		lu, ok := r.lsdb[u]
		if !ok {
			return 0, false
		}
		lv, ok := r.lsdb[v]
		if !ok {
			return 0, false
		}
		var cuv uint32
		found := false
		for _, l := range lu.Links {
			if l.NeighborID == v && (!found || l.Cost < cuv) {
				cuv, found = l.Cost, true
			}
		}
		if !found {
			return 0, false
		}
		back := false
		for _, l := range lv.Links {
			if l.NeighborID == u {
				back = true
				break
			}
		}
		if !back {
			return 0, false
		}
		return cuv, true
	}
	for {
		// Extract min unvisited.
		best := nodeDist{dist: inf}
		ids := make([]uint32, 0, len(dist))
		for id := range dist {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if !visited[id] && dist[id] < best.dist {
				best = nodeDist{id: id, dist: dist[id]}
			}
		}
		if best.dist == inf {
			break
		}
		u := best.id
		visited[u] = true
		// Relax u's edges.
		lu := r.lsdb[u]
		for _, l := range lu.Links {
			v := l.NeighborID
			c, ok := cost(u, v)
			if !ok {
				continue
			}
			nd := dist[u] + uint64(c)
			cur, have := dist[v]
			if !have || nd < cur {
				dist[v] = nd
				// Propagate first hop.
				if u == r.cfg.RouterID {
					firstHop[v] = r.neighborByID(v)
				} else {
					firstHop[v] = firstHop[u]
				}
			}
		}
	}
	var routes []fib.Route
	for dst, d := range dist {
		if dst == r.cfg.RouterID {
			continue
		}
		nb := firstHop[dst]
		if nb == nil {
			continue
		}
		lsa := r.lsdb[dst]
		for _, s := range lsa.Stubs {
			routes = append(routes, fib.Route{
				Prefix:  s.Prefix,
				NextHop: nb.addr,
				OutPort: nb.ifc.Index,
				Metric:  uint32(d) + s.Cost,
			})
		}
	}
	// Deduplicate: several routers may advertise the same subnet (both
	// ends of a /30); keep the lowest metric. Equal-metric ties break on
	// next-hop address — `routes` was accumulated in map-range order, so
	// without a total order here the winner would vary run to run and
	// replay determinism would be lost.
	bestRoute := map[netip.Prefix]fib.Route{}
	for _, rt := range routes {
		cur, ok := bestRoute[rt.Prefix]
		if !ok || rt.Metric < cur.Metric ||
			(rt.Metric == cur.Metric && rt.NextHop.Less(cur.NextHop)) {
			bestRoute[rt.Prefix] = rt
		}
	}
	routes = routes[:0]
	for _, rt := range bestRoute {
		routes = append(routes, rt)
	}
	sort.Slice(routes, func(i, j int) bool {
		return routes[i].Prefix.String() < routes[j].Prefix.String()
	})
	r.lastRoutes = append(r.lastRoutes[:0], routes...)
	r.onRoutes(routes)
}

// Routes returns a copy of the route set produced by the most recent
// SPF run — the protocol's RIB as last handed to the FEA. The
// simulation invariant checkers compare it against the merged RIB and
// the installed FIB (control-plane/data-plane consistency).
func (r *Router) Routes() []fib.Route {
	out := make([]fib.Route, len(r.lastRoutes))
	copy(out, r.lastRoutes)
	return out
}

// NeighborSnapshot is one adjacency in an exported State.
type NeighborSnapshot struct {
	Iface int
	ID    uint32
	Addr  netip.Addr
	Full  bool
}

// State is a transferable snapshot of a router's control-plane state:
// the LSA sequence counter, the link-state database, and the adjacency
// table. A migration shadow imports it before Start so its first
// originated LSA supersedes the old instance's (Seq+1) and its first
// hello already lists every Full neighbor — peers never observe the
// "neighbor restarted and forgot us" transition, so no adjacency reset
// and no route churn.
type State struct {
	Seq       uint32
	LSAs      []LSA
	Neighbors []NeighborSnapshot
}

// ExportState snapshots the router's control-plane state for transfer to
// a migration shadow. Must run in the router's clock domain or at a
// barrier.
func (r *Router) ExportState() State {
	st := State{Seq: r.mySeq, LSAs: r.LSDB()}
	idxs := make([]int, 0, len(r.neighbors))
	for i := range r.neighbors {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		nb := r.neighbors[i]
		st.Neighbors = append(st.Neighbors, NeighborSnapshot{
			Iface: i, ID: nb.id, Addr: nb.addr, Full: nb.state == nFull})
	}
	return st
}

// ImportState installs a transferred snapshot into a not-yet-started
// router: the sequence counter, the LSDB (installed as of now for MaxAge
// accounting), and the adjacencies, whose dead timers are armed fresh on
// this router's clock. Pending-ack state is not transferred — if an LSU
// to the old instance was in flight, the peer retransmits and the shadow
// (holding the same-seq LSDB) acknowledges. Call between AddInterface
// and Start; the interfaces named by the snapshot must exist.
func (r *Router) ImportState(st State) error {
	if r.started {
		return fmt.Errorf("ospf: ImportState after Start")
	}
	r.mySeq = st.Seq
	now := r.clock.Now()
	for _, lsa := range st.LSAs {
		r.lsdb[lsa.Origin] = lsa
		r.lsdbAt[lsa.Origin] = now
	}
	for _, ns := range st.Neighbors {
		ifc := r.iface(ns.Iface)
		if ifc == nil {
			return fmt.Errorf("ospf: ImportState: no interface with index %d", ns.Iface)
		}
		nb := &neighbor{id: ns.ID, addr: ns.Addr, ifc: ifc, pendingAcks: make(map[Key]LSA)}
		if ns.Full {
			nb.state = nFull
		} else {
			nb.state = nInit
		}
		idx := ns.Iface
		nb.deadTimer = r.clock.Schedule(r.cfg.Dead, func() { r.neighborDead(idx, nb) })
		r.neighbors[idx] = nb
	}
	return nil
}

func (r *Router) neighborByID(id uint32) *neighbor {
	idxs := make([]int, 0, len(r.neighbors))
	for i := range r.neighbors {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if nb := r.neighbors[i]; nb.id == id && nb.state == nFull {
			return nb
		}
	}
	return nil
}
