package ospf

import (
	"fmt"
	"net/netip"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"vini/internal/fib"
	"vini/internal/sim"
	"vini/internal/topology"
)

// mesh wires Routers together with delayed, failable point-to-point
// pipes, standing in for the overlay tunnels.
type mesh struct {
	loop    *sim.Loop
	routers map[string]*meshNode
	loss    float64 // per-packet loss probability on every pipe
}

type meshNode struct {
	m      *mesh
	name   string
	r      *Router
	routes []fib.Route
	pipes  map[int]*pipe // by local ifIndex
}

type pipe struct {
	peer     *meshNode
	peerIf   int
	peerAddr netip.Addr
	delay    time.Duration
	down     *bool
}

func newMesh(loop *sim.Loop) *mesh {
	return &mesh{loop: loop, routers: make(map[string]*meshNode)}
}

func (m *mesh) addRouter(name string, id uint32, cfg Config) *meshNode {
	cfg.RouterID = id
	n := &meshNode{m: m, name: name, pipes: make(map[int]*pipe)}
	n.r = New(m.loop, cfg, n)
	n.r.OnRoutes(func(rs []fib.Route) { n.routes = rs })
	m.routers[name] = n
	return n
}

// SendRouting implements Transport with the pipe's delay and failure.
func (n *meshNode) SendRouting(ifIndex int, payload []byte) {
	p, ok := n.pipes[ifIndex]
	if !ok {
		return
	}
	if n.m.loss > 0 && n.m.loop.RNG().Bool(n.m.loss) {
		return
	}
	buf := append([]byte(nil), payload...)
	src := localAddr(n, ifIndex)
	n.m.loop.Schedule(p.delay, func() {
		if *p.down {
			return
		}
		p.peer.r.Receive(p.peerIf, src, buf)
	})
}

func localAddr(n *meshNode, ifIndex int) netip.Addr {
	for _, ifc := range n.r.ifaces {
		if ifc.Index == ifIndex {
			return ifc.Addr
		}
	}
	return netip.Addr{}
}

var subnetCounter int

// connect links two routers with a fresh /30 and the given cost/delay.
// It returns a pointer to the link's failure flag.
func (m *mesh) connect(a, b *meshNode, cost uint32, delay time.Duration) *bool {
	subnetCounter++
	base := netip.MustParseAddr("10.1.0.0").As4()
	base[2] = byte(subnetCounter >> 6)
	base[3] = byte(subnetCounter << 2 & 0xff)
	addrA := netip.AddrFrom4([4]byte{base[0], base[1], base[2], base[3] + 1})
	addrB := netip.AddrFrom4([4]byte{base[0], base[1], base[2], base[3] + 2})
	prefix := netip.PrefixFrom(netip.AddrFrom4(base), 30)
	ifA := len(a.pipes)
	ifB := len(b.pipes)
	a.r.AddInterface(Interface{Name: fmt.Sprintf("%s-%s", a.name, b.name), Index: ifA, Addr: addrA, Prefix: prefix, Cost: cost})
	b.r.AddInterface(Interface{Name: fmt.Sprintf("%s-%s", b.name, a.name), Index: ifB, Addr: addrB, Prefix: prefix, Cost: cost})
	down := new(bool)
	a.pipes[ifA] = &pipe{peer: b, peerIf: ifB, peerAddr: addrB, delay: delay, down: down}
	b.pipes[ifB] = &pipe{peer: a, peerIf: ifA, peerAddr: addrA, delay: delay, down: down}
	return down
}

func (m *mesh) startAll() {
	// Start in sorted name order: map range order would vary run to
	// run, permuting the shared-RNG draw sequence (loss decisions) and
	// making loss-dependent tests flaky.
	names := make([]string, 0, len(m.routers))
	for name := range m.routers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.routers[name].r.Start()
	}
}

// routeTo finds n's route for the given prefix.
func (n *meshNode) routeTo(prefix string) (fib.Route, bool) {
	p := netip.MustParsePrefix(prefix)
	for _, r := range n.routes {
		if r.Prefix == p {
			return r, true
		}
	}
	return fib.Route{}, false
}

func stub(p string) StubDesc { return StubDesc{Prefix: netip.MustParsePrefix(p), Cost: 0} }

func fastCfg(stubs ...StubDesc) Config {
	return Config{Hello: time.Second, Dead: 3 * time.Second,
		Rxmt: 500 * time.Millisecond, SPFDelay: 50 * time.Millisecond, Stubs: stubs}
}

func TestWireRoundTrips(t *testing.T) {
	h := Hello{HelloInterval: 5, DeadInterval: 10, Neighbors: []uint32{7, 9}}
	pkt := MarshalHello(42, h)
	hdr, body, err := ParseHeader(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != TypeHello || hdr.RouterID != 42 {
		t.Fatalf("header = %+v", hdr)
	}
	h2, err := ParseHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Neighbors) != 2 || h2.Neighbors[0] != 7 || h2.DeadInterval != 10 {
		t.Fatalf("hello = %+v", h2)
	}

	lsa := LSA{Origin: 1, Seq: 3,
		Links: []LinkDesc{{NeighborID: 2, Cost: 100}},
		Stubs: []StubDesc{{Prefix: netip.MustParsePrefix("10.0.0.1/32"), Cost: 0}}}
	u := LSU{LSAs: []LSA{lsa}}
	pkt = MarshalLSU(1, u)
	_, body, err = ParseHeader(pkt)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ParseLSU(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.LSAs) != 1 || u2.LSAs[0].Origin != 1 || u2.LSAs[0].Links[0].Cost != 100 ||
		u2.LSAs[0].Stubs[0].Prefix.String() != "10.0.0.1/32" {
		t.Fatalf("lsu = %+v", u2)
	}

	a := LSAck{Keys: []Key{{Origin: 1, Seq: 3}}}
	pkt = MarshalLSAck(2, a)
	_, body, err = ParseHeader(pkt)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ParseLSAck(body)
	if err != nil || len(a2.Keys) != 1 || a2.Keys[0] != (Key{1, 3}) {
		t.Fatalf("ack = %+v err=%v", a2, err)
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	pkt := MarshalHello(42, Hello{HelloInterval: 5, DeadInterval: 10})
	for i := range pkt {
		bad := append([]byte(nil), pkt...)
		bad[i] ^= 0x5a
		if _, _, err := ParseHeader(bad); err == nil {
			// Flipping the checksum field itself must also fail.
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	if _, _, err := ParseHeader([]byte{2, 1}); err == nil {
		t.Fatal("truncated packet accepted")
	}
}

func TestWireFuzzNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		if h, body, err := ParseHeader(b); err == nil {
			switch h.Type {
			case TypeHello:
				ParseHello(body)
			case TypeLSU:
				ParseLSU(body)
			case TypeLSAck:
				ParseLSAck(body)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoRoutersConverge(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	a := m.addRouter("a", 1, fastCfg(stub("10.0.0.1/32")))
	b := m.addRouter("b", 2, fastCfg(stub("10.0.0.2/32")))
	m.connect(a, b, 10, time.Millisecond)
	m.startAll()
	loop.Run(10 * time.Second)
	if nbs := a.r.Neighbors(); len(nbs) != 1 || nbs[0].State != "Full" {
		t.Fatalf("a neighbors = %+v", nbs)
	}
	r, ok := a.routeTo("10.0.0.2/32")
	if !ok {
		t.Fatalf("a has no route to b's stub: %v", a.routes)
	}
	if r.Metric != 10 {
		t.Fatalf("metric = %d, want 10", r.Metric)
	}
	if _, ok := b.routeTo("10.0.0.1/32"); !ok {
		t.Fatal("b has no route to a's stub")
	}
}

func TestLineOfThreeNextHops(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	a := m.addRouter("a", 1, fastCfg(stub("10.0.0.1/32")))
	b := m.addRouter("b", 2, fastCfg(stub("10.0.0.2/32")))
	c := m.addRouter("c", 3, fastCfg(stub("10.0.0.3/32")))
	m.connect(a, b, 5, time.Millisecond)
	m.connect(b, c, 7, time.Millisecond)
	m.startAll()
	loop.Run(15 * time.Second)
	r, ok := a.routeTo("10.0.0.3/32")
	if !ok {
		t.Fatalf("a cannot reach c: %v", a.routes)
	}
	if r.Metric != 12 {
		t.Fatalf("a->c metric = %d, want 12", r.Metric)
	}
	// Next hop must be b's interface address on the a-b subnet.
	nbs := a.r.Neighbors()
	if r.NextHop != nbs[0].Addr {
		t.Fatalf("next hop = %v, want %v", r.NextHop, nbs[0].Addr)
	}
}

func TestFailureDetectionAndReroute(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	a := m.addRouter("a", 1, fastCfg(stub("10.0.0.1/32")))
	b := m.addRouter("b", 2, fastCfg(stub("10.0.0.2/32")))
	c := m.addRouter("c", 3, fastCfg(stub("10.0.0.3/32")))
	downAB := m.connect(a, b, 1, time.Millisecond)
	m.connect(a, c, 10, time.Millisecond)
	m.connect(c, b, 10, time.Millisecond)
	m.startAll()
	loop.Run(10 * time.Second)
	r, _ := a.routeTo("10.0.0.2/32")
	if r.Metric != 1 {
		t.Fatalf("initial metric = %d, want 1 (direct)", r.Metric)
	}
	// Fail a-b. Within the dead interval plus SPF delay, a must reroute
	// via c with metric 20.
	*downAB = true
	failAt := loop.Now()
	loop.Run(failAt + 4*time.Second)
	r, ok := a.routeTo("10.0.0.2/32")
	if !ok {
		t.Fatalf("no route after failure: %v", a.routes)
	}
	if r.Metric != 20 {
		t.Fatalf("post-failure metric = %d, want 20 (via c)", r.Metric)
	}
	// Restore: routes revert to the direct path.
	*downAB = false
	loop.Run(loop.Now() + 6*time.Second)
	r, _ = a.routeTo("10.0.0.2/32")
	if r.Metric != 1 {
		t.Fatalf("post-restore metric = %d, want 1", r.Metric)
	}
}

func TestFloodingSurvivesLoss(t *testing.T) {
	loop := sim.NewLoop(99)
	m := newMesh(loop)
	m.loss = 0.3 // drop 30% of all routing packets
	a := m.addRouter("a", 1, fastCfg(stub("10.0.0.1/32")))
	b := m.addRouter("b", 2, fastCfg(stub("10.0.0.2/32")))
	c := m.addRouter("c", 3, fastCfg(stub("10.0.0.3/32")))
	m.connect(a, b, 1, time.Millisecond)
	m.connect(b, c, 1, time.Millisecond)
	m.startAll()
	loop.Run(60 * time.Second)
	if _, ok := a.routeTo("10.0.0.3/32"); !ok {
		t.Fatalf("retransmission did not deliver LSAs under loss: %v", a.routes)
	}
	if _, ok := c.routeTo("10.0.0.1/32"); !ok {
		t.Fatal("reverse direction missing too")
	}
}

// TestAbileneMatchesReference brings up OSPF on the full Abilene topology
// with the paper's weights and checks that every router's OSPF metrics
// equal the reference Dijkstra over the same graph.
func TestAbileneMatchesReference(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	g := topology.Abilene()
	nodes := map[string]*meshNode{}
	ids := map[string]uint32{}
	for i, name := range g.Nodes() {
		id := uint32(i + 1)
		ids[name] = id
		nodes[name] = m.addRouter(name, id, fastCfg(StubDesc{
			Prefix: netip.PrefixFrom(AddrFromRouterID(0x0a000000+id), 32)}))
	}
	for _, l := range g.Links() {
		m.connect(nodes[l.A], nodes[l.B], l.CostAB, l.Delay)
	}
	m.startAll()
	loop.Run(30 * time.Second)
	for _, src := range g.Nodes() {
		ref := g.ShortestPaths(src, nil)
		for _, dst := range g.Nodes() {
			if dst == src {
				continue
			}
			want := ref[dst].Cost
			pfx := netip.PrefixFrom(AddrFromRouterID(0x0a000000+ids[dst]), 32)
			var got fib.Route
			found := false
			for _, r := range nodes[src].routes {
				if r.Prefix == pfx {
					got, found = r, true
					break
				}
			}
			if !found {
				t.Fatalf("%s has no route to %s", src, dst)
			}
			if got.Metric != want {
				t.Fatalf("%s->%s metric = %d, want %d", src, dst, got.Metric, want)
			}
		}
	}
}

func TestStopSilencesRouter(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	a := m.addRouter("a", 1, fastCfg())
	b := m.addRouter("b", 2, fastCfg(stub("10.0.0.2/32")))
	m.connect(a, b, 1, time.Millisecond)
	m.startAll()
	loop.Run(10 * time.Second)
	a.r.Stop()
	// After b's dead interval, b should drop the adjacency.
	loop.Run(loop.Now() + 5*time.Second)
	if nbs := b.r.Neighbors(); len(nbs) != 0 {
		t.Fatalf("b still has neighbors after a stopped: %+v", nbs)
	}
}

func TestRouterIDAddrRoundTrip(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		return AddrFromRouterID(RouterIDFromAddr(addr)) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAgingPurgesDeadRouterState: a router that vanishes without
// withdrawing leaves its LSA behind; refresh keeps live state alive and
// MaxAge sweeps the corpse out of everyone's database.
func TestAgingPurgesDeadRouterState(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	cfg := fastCfg(stub("10.0.0.1/32"))
	cfg.Refresh = 10 * time.Second
	cfg.MaxAge = 30 * time.Second
	mk := func(name string, id uint32, st string) *meshNode {
		c := cfg
		c.Stubs = []StubDesc{stub(st)}
		return m.addRouter(name, id, c)
	}
	a := mk("a", 1, "10.0.0.1/32")
	b := mk("b", 2, "10.0.0.2/32")
	c := mk("c", 3, "10.0.0.3/32")
	m.connect(a, b, 1, time.Millisecond)
	m.connect(b, c, 1, time.Millisecond)
	m.startAll()
	loop.Run(10 * time.Second)
	if len(a.r.LSDB()) != 3 {
		t.Fatalf("a LSDB = %d entries", len(a.r.LSDB()))
	}
	// c dies silently.
	c.r.Stop()
	// Refresh keeps a and b alive in each other's databases well past
	// MaxAge; c's LSA ages out.
	loop.Run(loop.Now() + 2*time.Minute)
	db := a.r.LSDB()
	for _, l := range db {
		if l.Origin == 3 {
			t.Fatalf("dead router's LSA survived aging: %+v", db)
		}
	}
	found := map[uint32]bool{}
	for _, l := range db {
		found[l.Origin] = true
	}
	if !found[1] || !found[2] {
		t.Fatalf("live LSAs aged out: %+v", db)
	}
	// And live routes still work.
	if _, ok := a.routeTo("10.0.0.2/32"); !ok {
		t.Fatal("live route lost")
	}
}

// TestStateTransferPreservesAdjacencies: exporting a router's state,
// stopping it, and importing into a fresh instance before Start (the
// make-before-break migration hand-off) must be invisible to peers — no
// adjacency reset, no neighbor events, no route change.
func TestStateTransferPreservesAdjacencies(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	a := m.addRouter("a", 1, fastCfg(stub("10.0.0.1/32")))
	b := m.addRouter("b", 2, fastCfg(stub("10.0.0.2/32")))
	c := m.addRouter("c", 3, fastCfg(stub("10.0.0.3/32")))
	m.connect(a, b, 1, time.Millisecond)
	m.connect(b, c, 1, time.Millisecond)
	m.startAll()
	loop.Run(10 * time.Second)
	if _, ok := a.routeTo("10.0.0.3/32"); !ok {
		t.Fatal("no route a->c before migration")
	}
	routesBefore := fmt.Sprintf("%v", a.routes)

	// Swap b for a fresh instance carrying b's exported state. The new
	// instance reuses b's identity, interfaces, and pipes — only the
	// Router object (and, in a real migration, the hosting process) is
	// new.
	b2 := &meshNode{m: m, name: "b", pipes: b.pipes}
	b2.r = New(loop, fastCfg(stub("10.0.0.2/32")), b2)
	b2.r.cfg.RouterID = 2
	b2.r.OnRoutes(func(rs []fib.Route) { b2.routes = rs })
	for _, ifc := range b.r.ifaces {
		b2.r.AddInterface(*ifc)
	}
	for _, p := range b.pipes {
		// Point the peers' pipes at the new instance.
		p.peer.pipes[p.peerIf].peer = b2
	}
	st := b.r.ExportState()
	b.r.Stop()
	if err := b2.r.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	var events []string
	a.r.OnNeighborEvent(func(iface int, id uint32, state string) {
		events = append(events, fmt.Sprintf("a: if%d n%d %s", iface, id, state))
	})
	c.r.OnNeighborEvent(func(iface int, id uint32, state string) {
		events = append(events, fmt.Sprintf("c: if%d n%d %s", iface, id, state))
	})
	b2.r.Start()
	m.routers["b"] = b2

	// Run well past the dead interval: peers must never notice.
	loop.Run(loop.Now() + 15*time.Second)
	if len(events) != 0 {
		t.Fatalf("peers observed adjacency churn across migration: %v", events)
	}
	for _, n := range []*meshNode{a, c} {
		for _, nb := range n.r.Neighbors() {
			if nb.State != "Full" {
				t.Fatalf("%s adjacency degraded: %+v", n.name, nb)
			}
		}
	}
	if after := fmt.Sprintf("%v", a.routes); after != routesBefore {
		t.Fatalf("routes changed across migration:\nbefore %s\nafter  %s", routesBefore, after)
	}
	// The shadow must itself be Full toward both peers and forwarding.
	if got := len(b2.r.Neighbors()); got != 2 {
		t.Fatalf("shadow has %d neighbors, want 2", got)
	}
	if _, ok := b2.routeTo("10.0.0.3/32"); !ok {
		t.Fatal("shadow has no route to c")
	}
}

// TestImportStateRejectsMisuse: importing after Start or naming a
// missing interface must error, not corrupt state.
func TestImportStateRejectsMisuse(t *testing.T) {
	loop := sim.NewLoop(1)
	m := newMesh(loop)
	a := m.addRouter("a", 1, fastCfg())
	b := m.addRouter("b", 2, fastCfg())
	m.connect(a, b, 1, time.Millisecond)
	m.startAll()
	loop.Run(5 * time.Second)
	st := a.r.ExportState()
	if err := a.r.ImportState(st); err == nil {
		t.Fatal("ImportState after Start accepted")
	}
	fresh := New(loop, fastCfg(), b)
	fresh.cfg.RouterID = 9
	st.Neighbors = append(st.Neighbors, NeighborSnapshot{Iface: 99, ID: 7, Full: true})
	if err := fresh.ImportState(st); err == nil {
		t.Fatal("ImportState with unknown interface accepted")
	}
}
