// Package ospf implements the OSPF subset XORP provides to IIAS: hello
// protocol with configurable hello/dead intervals, point-to-point
// adjacencies, router-LSA origination, reliable flooding with
// acknowledgements and retransmission, and Dijkstra SPF feeding routes to
// the FEA. The Section 5.2 experiment — hello interval 5 s, router-dead
// interval 10 s, fail the Denver–Kansas City link, watch convergence — is
// driven entirely through this package.
package ospf

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Message types.
const (
	TypeHello = 1
	TypeLSU   = 4
	TypeLSAck = 5
)

const headerLen = 16

// Header is the common OSPF packet header (version 2, area 0 only).
type Header struct {
	Type     uint8
	RouterID uint32
	Length   uint16
}

// LinkDesc is one point-to-point link in a router LSA.
type LinkDesc struct {
	NeighborID uint32
	Cost       uint32
}

// StubDesc is one stub prefix (a locally attached network) in a router
// LSA: the tap0 host route and the virtual interface subnets.
type StubDesc struct {
	Prefix netip.Prefix
	Cost   uint32
}

// LSA is a router LSA: the origin's view of its own adjacencies.
type LSA struct {
	Origin uint32
	Seq    uint32
	Links  []LinkDesc
	Stubs  []StubDesc
}

// Key identifies the LSA instance for flooding/acks.
type Key struct {
	Origin uint32
	Seq    uint32
}

// Key returns the LSA's identity.
func (l LSA) Key() Key { return Key{Origin: l.Origin, Seq: l.Seq} }

// Hello is the neighbor-discovery message.
type Hello struct {
	HelloInterval uint16 // seconds
	DeadInterval  uint16 // seconds
	Neighbors     []uint32
}

// LSU carries LSAs being flooded.
type LSU struct {
	LSAs []LSA
}

// LSAck acknowledges received LSAs.
type LSAck struct {
	Keys []Key
}

// RouterIDFromAddr derives the 32-bit router ID from an IPv4 address
// (the node's tap0 address in IIAS).
func RouterIDFromAddr(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// AddrFromRouterID is the inverse of RouterIDFromAddr.
func AddrFromRouterID(id uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	return netip.AddrFrom4(b)
}

func marshalHeader(typ uint8, routerID uint32, body []byte) []byte {
	out := make([]byte, headerLen+len(body))
	out[0] = 2 // version
	out[1] = typ
	binary.BigEndian.PutUint16(out[2:4], uint16(len(out)))
	binary.BigEndian.PutUint32(out[4:8], routerID)
	// bytes 8-11: area 0; 14-15 reserved
	copy(out[headerLen:], body)
	binary.BigEndian.PutUint16(out[12:14], ipChecksum(out))
	return out
}

func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 12 {
			continue // checksum field
		}
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ParseHeader validates and decodes the common header, returning the body.
func ParseHeader(b []byte) (Header, []byte, error) {
	var h Header
	if len(b) < headerLen {
		return h, nil, fmt.Errorf("ospf: packet too short (%d)", len(b))
	}
	if b[0] != 2 {
		return h, nil, fmt.Errorf("ospf: version %d", b[0])
	}
	length := binary.BigEndian.Uint16(b[2:4])
	if int(length) < headerLen || int(length) > len(b) {
		return h, nil, fmt.Errorf("ospf: bad length %d", length)
	}
	if ipChecksum(b[:length]) != binary.BigEndian.Uint16(b[12:14]) {
		return h, nil, fmt.Errorf("ospf: checksum mismatch")
	}
	h.Type = b[1]
	h.RouterID = binary.BigEndian.Uint32(b[4:8])
	h.Length = length
	return h, b[headerLen:length], nil
}

// MarshalHello encodes a hello packet.
func MarshalHello(routerID uint32, h Hello) []byte {
	body := make([]byte, 6+4*len(h.Neighbors))
	binary.BigEndian.PutUint16(body[0:2], h.HelloInterval)
	binary.BigEndian.PutUint16(body[2:4], h.DeadInterval)
	binary.BigEndian.PutUint16(body[4:6], uint16(len(h.Neighbors)))
	for i, n := range h.Neighbors {
		binary.BigEndian.PutUint32(body[6+4*i:], n)
	}
	return marshalHeader(TypeHello, routerID, body)
}

// ParseHello decodes a hello body.
func ParseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 6 {
		return h, fmt.Errorf("ospf: hello too short")
	}
	h.HelloInterval = binary.BigEndian.Uint16(body[0:2])
	h.DeadInterval = binary.BigEndian.Uint16(body[2:4])
	n := int(binary.BigEndian.Uint16(body[4:6]))
	if len(body) < 6+4*n {
		return h, fmt.Errorf("ospf: hello neighbor list truncated")
	}
	for i := 0; i < n; i++ {
		h.Neighbors = append(h.Neighbors, binary.BigEndian.Uint32(body[6+4*i:]))
	}
	return h, nil
}

func marshalLSA(out []byte, l LSA) []byte {
	out = binary.BigEndian.AppendUint32(out, l.Origin)
	out = binary.BigEndian.AppendUint32(out, l.Seq)
	out = binary.BigEndian.AppendUint16(out, uint16(len(l.Links)))
	out = binary.BigEndian.AppendUint16(out, uint16(len(l.Stubs)))
	for _, ln := range l.Links {
		out = binary.BigEndian.AppendUint32(out, ln.NeighborID)
		out = binary.BigEndian.AppendUint32(out, ln.Cost)
	}
	for _, s := range l.Stubs {
		a := s.Prefix.Addr().As4()
		out = append(out, a[:]...)
		out = append(out, byte(s.Prefix.Bits()), 0, 0, 0)
		out = binary.BigEndian.AppendUint32(out, s.Cost)
	}
	return out
}

func parseLSA(b []byte) (LSA, []byte, error) {
	var l LSA
	if len(b) < 12 {
		return l, nil, fmt.Errorf("ospf: LSA truncated")
	}
	l.Origin = binary.BigEndian.Uint32(b[0:4])
	l.Seq = binary.BigEndian.Uint32(b[4:8])
	nl := int(binary.BigEndian.Uint16(b[8:10]))
	ns := int(binary.BigEndian.Uint16(b[10:12]))
	b = b[12:]
	need := 8*nl + 12*ns
	if len(b) < need {
		return l, nil, fmt.Errorf("ospf: LSA body truncated")
	}
	for i := 0; i < nl; i++ {
		l.Links = append(l.Links, LinkDesc{
			NeighborID: binary.BigEndian.Uint32(b[0:4]),
			Cost:       binary.BigEndian.Uint32(b[4:8]),
		})
		b = b[8:]
	}
	for i := 0; i < ns; i++ {
		addr := netip.AddrFrom4([4]byte(b[0:4]))
		bits := int(b[4])
		if bits > 32 {
			return l, nil, fmt.Errorf("ospf: bad stub prefix length %d", bits)
		}
		l.Stubs = append(l.Stubs, StubDesc{
			Prefix: netip.PrefixFrom(addr, bits),
			Cost:   binary.BigEndian.Uint32(b[8:12]),
		})
		b = b[12:]
	}
	return l, b, nil
}

// MarshalLSU encodes a link-state update.
func MarshalLSU(routerID uint32, u LSU) []byte {
	body := binary.BigEndian.AppendUint16(nil, uint16(len(u.LSAs)))
	for _, l := range u.LSAs {
		body = marshalLSA(body, l)
	}
	return marshalHeader(TypeLSU, routerID, body)
}

// ParseLSU decodes an LSU body.
func ParseLSU(body []byte) (LSU, error) {
	var u LSU
	if len(body) < 2 {
		return u, fmt.Errorf("ospf: LSU too short")
	}
	n := int(binary.BigEndian.Uint16(body[0:2]))
	b := body[2:]
	for i := 0; i < n; i++ {
		l, rest, err := parseLSA(b)
		if err != nil {
			return u, err
		}
		u.LSAs = append(u.LSAs, l)
		b = rest
	}
	return u, nil
}

// MarshalLSAck encodes an acknowledgement.
func MarshalLSAck(routerID uint32, a LSAck) []byte {
	body := binary.BigEndian.AppendUint16(nil, uint16(len(a.Keys)))
	for _, k := range a.Keys {
		body = binary.BigEndian.AppendUint32(body, k.Origin)
		body = binary.BigEndian.AppendUint32(body, k.Seq)
	}
	return marshalHeader(TypeLSAck, routerID, body)
}

// ParseLSAck decodes an acknowledgement body.
func ParseLSAck(body []byte) (LSAck, error) {
	var a LSAck
	if len(body) < 2 {
		return a, fmt.Errorf("ospf: LSAck too short")
	}
	n := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+8*n {
		return a, fmt.Errorf("ospf: LSAck truncated")
	}
	for i := 0; i < n; i++ {
		a.Keys = append(a.Keys, Key{
			Origin: binary.BigEndian.Uint32(body[2+8*i:]),
			Seq:    binary.BigEndian.Uint32(body[6+8*i:]),
		})
	}
	return a, nil
}
