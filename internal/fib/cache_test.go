package fib

import (
	"net/netip"
	"testing"
)

func TestCacheHitAndInvalidationOnAdd(t *testing.T) {
	tb := New()
	nhA := netip.MustParseAddr("192.0.2.1")
	nhB := netip.MustParseAddr("192.0.2.2")
	if err := tb.Add(Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: nhA, OutPort: 0}); err != nil {
		t.Fatal(err)
	}
	c := NewCache(tb)
	dst := netip.MustParseAddr("10.1.2.3")
	r, ok := c.Lookup(dst)
	if !ok || r.NextHop != nhA {
		t.Fatalf("lookup = %v %v, want %v", r, ok, nhA)
	}
	// Second lookup served from the cache must agree.
	if r, ok = c.Lookup(dst); !ok || r.NextHop != nhA {
		t.Fatalf("cached lookup = %v %v", r, ok)
	}
	// A more specific route must take effect on the very next lookup.
	if err := tb.Add(Route{Prefix: netip.MustParsePrefix("10.1.2.0/24"), NextHop: nhB, OutPort: 0}); err != nil {
		t.Fatal(err)
	}
	if r, ok = c.Lookup(dst); !ok || r.NextHop != nhB {
		t.Fatalf("after add: %v %v, want %v", r, ok, nhB)
	}
}

func TestCacheInvalidationOnRemoveAndReplace(t *testing.T) {
	tb := New()
	nhA := netip.MustParseAddr("192.0.2.1")
	nhB := netip.MustParseAddr("192.0.2.2")
	tb.Add(Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: nhA, Owner: "rib"})
	tb.Add(Route{Prefix: netip.MustParsePrefix("10.1.2.0/24"), NextHop: nhB, Owner: "rib"})
	c := NewCache(tb)
	dst := netip.MustParseAddr("10.1.2.3")
	if r, _ := c.Lookup(dst); r.NextHop != nhB {
		t.Fatalf("initial next hop %v", r.NextHop)
	}
	tb.Remove(netip.MustParsePrefix("10.1.2.0/24"))
	if r, _ := c.Lookup(dst); r.NextHop != nhA {
		t.Fatalf("after remove: next hop %v, want %v", r.NextHop, nhA)
	}
	tb.Replace("rib", []Route{{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: nhB, Owner: "rib"}})
	if r, ok := c.Lookup(dst); !ok || r.NextHop != nhB {
		t.Fatalf("after replace: %v %v, want %v", r, ok, nhB)
	}
}

func TestCacheNegativeEntryInvalidated(t *testing.T) {
	tb := New()
	c := NewCache(tb)
	dst := netip.MustParseAddr("10.1.2.3")
	if _, ok := c.Lookup(dst); ok {
		t.Fatal("empty table produced a route")
	}
	// The miss is cached; adding a covering route must invalidate it.
	nh := netip.MustParseAddr("192.0.2.9")
	tb.Add(Route{Prefix: netip.MustParsePrefix("10.0.0.0/8"), NextHop: nh})
	if r, ok := c.Lookup(dst); !ok || r.NextHop != nh {
		t.Fatalf("negative entry survived add: %v %v", r, ok)
	}
}

func TestCacheRejectsNonIPv4(t *testing.T) {
	tb := New()
	tb.Add(Route{Prefix: netip.MustParsePrefix("0.0.0.0/0")})
	c := NewCache(tb)
	if _, ok := c.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("IPv6 destination matched an IPv4 table")
	}
}

func TestCacheManyDestinations(t *testing.T) {
	// More destinations than cache slots: correctness under eviction.
	tb := New()
	for i := 0; i < 64; i++ {
		tb.Add(Route{
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
			OutPort: i,
		})
	}
	c := NewCache(tb)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 64; i++ {
			dst := netip.AddrFrom4([4]byte{10, byte(i), 1, 1})
			r, ok := c.Lookup(dst)
			if !ok || r.OutPort != i {
				t.Fatalf("pass %d dst %v: %v %v", pass, dst, r, ok)
			}
		}
	}
}
