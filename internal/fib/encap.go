package fib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// EncapEntry maps a virtual next hop (the address of a UML-style virtual
// interface on a neighboring virtual node) to the tunnel that reaches it:
// the public address/port of the PlanetLab node hosting that virtual node.
type EncapEntry struct {
	NextHop netip.Addr // virtual interface address (10/8 space)
	Remote  netip.Addr // public address of the physical node
	Port    uint16     // UDP tunnel port
	Tunnel  int        // local tunnel index (Click output port)
}

// EncapTable is the preconfigured table Click consults after the FIB
// lookup to map the selected virtual next hop onto a UDP tunnel
// (Section 4.2.1). Unlike the FIB it is exact-match and changes only when
// the virtual topology changes.
type EncapTable struct {
	mu      sync.RWMutex
	entries map[netip.Addr]EncapEntry
}

// NewEncapTable returns an empty encapsulation table.
func NewEncapTable() *EncapTable {
	return &EncapTable{entries: make(map[netip.Addr]EncapEntry)}
}

// Set installs the mapping for e.NextHop.
func (t *EncapTable) Set(e EncapEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[e.NextHop] = e
}

// Remove deletes the mapping for nextHop.
func (t *EncapTable) Remove(nextHop netip.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, nextHop)
}

// Lookup resolves a virtual next hop to its tunnel.
func (t *EncapTable) Lookup(nextHop netip.Addr) (EncapEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[nextHop]
	return e, ok
}

// Len reports the number of mappings.
func (t *EncapTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Entries returns all mappings sorted by next hop.
func (t *EncapTable) Entries() []EncapEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]EncapEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NextHop.Less(out[j].NextHop) })
	return out
}

func (e EncapEntry) String() string {
	return fmt.Sprintf("%s -> %s:%d (tunnel %d)", e.NextHop, e.Remote, e.Port, e.Tunnel)
}
