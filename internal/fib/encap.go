package fib

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
)

// EncapEntry maps a virtual next hop (the address of a UML-style virtual
// interface on a neighboring virtual node) to the tunnel that reaches it:
// the public address/port of the PlanetLab node hosting that virtual node.
type EncapEntry struct {
	NextHop netip.Addr // virtual interface address (10/8 space)
	Remote  netip.Addr // public address of the physical node
	Port    uint16     // UDP tunnel port
	Tunnel  int        // local tunnel index (Click output port)
}

// EncapTable is the preconfigured table Click consults after the FIB
// lookup to map the selected virtual next hop onto a UDP tunnel
// (Section 4.2.1). Unlike the FIB it is exact-match and changes only when
// the virtual topology changes.
type EncapTable struct {
	mu      sync.RWMutex
	entries map[netip.Addr]EncapEntry
	// byTunnel indexes entries by local tunnel index, so per-packet
	// transmit paths (ToTunnel) resolve without scanning.
	byTunnel map[int]EncapEntry
	// byRemote indexes by public address of the physical node, the reverse
	// lookup tunnel receive does to identify the ingress tunnel.
	byRemote map[netip.Addr]EncapEntry
	// version increments on every mutation so per-element caches
	// invalidate, mirroring fib.Table.
	version atomic.Uint64
	// aliases maps additional remote addresses onto the entry for a
	// canonical one, so a migrating neighbor's drain-window traffic (still
	// sourced from its old physical address) keeps demultiplexing to the
	// right ingress tunnel after the entry's Remote has been repointed.
	aliases map[netip.Addr]netip.Addr
}

// NewEncapTable returns an empty encapsulation table.
func NewEncapTable() *EncapTable {
	return &EncapTable{
		entries:  make(map[netip.Addr]EncapEntry),
		byTunnel: make(map[int]EncapEntry),
		byRemote: make(map[netip.Addr]EncapEntry),
	}
}

// Version returns the mutation counter.
func (t *EncapTable) Version() uint64 { return t.version.Load() }

// Set installs the mapping for e.NextHop.
func (t *EncapTable) Set(e EncapEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.entries[e.NextHop]; ok {
		delete(t.byTunnel, old.Tunnel)
	}
	t.entries[e.NextHop] = e
	t.byTunnel[e.Tunnel] = e
	t.reindexRemoteLocked()
	t.version.Add(1)
}

// Remove deletes the mapping for nextHop.
func (t *EncapTable) Remove(nextHop netip.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.entries[nextHop]; ok {
		delete(t.byTunnel, old.Tunnel)
	}
	delete(t.entries, nextHop)
	t.reindexRemoteLocked()
	t.version.Add(1)
}

// reindexRemoteLocked rebuilds the reverse index. When several tunnels
// share a remote (two virtual links to neighbors on one physical node),
// the lowest next hop wins — the same entry a sorted Entries() scan finds
// first. Mutations are control-plane rare, so a full rebuild is fine.
func (t *EncapTable) reindexRemoteLocked() {
	clear(t.byRemote)
	for _, e := range t.entries {
		if ex, ok := t.byRemote[e.Remote]; !ok || e.NextHop.Less(ex.NextHop) {
			t.byRemote[e.Remote] = e
		}
	}
}

// ByTunnel resolves a local tunnel index to its entry.
func (t *EncapTable) ByTunnel(tunnel int) (EncapEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.byTunnel[tunnel]
	return e, ok
}

// ByRemote resolves the public address of a physical neighbor to the
// entry a sorted Entries() scan would find first (tunnel-ingress
// identification without the per-packet scan). Addresses with no direct
// entry fall back through the alias table.
func (t *EncapTable) ByRemote(remote netip.Addr) (EncapEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if e, ok := t.byRemote[remote]; ok {
		return e, ok
	}
	if canon, ok := t.aliases[remote]; ok {
		e, ok := t.byRemote[canon]
		return e, ok
	}
	return EncapEntry{}, false
}

// SetRemoteAlias makes packets sourced from alias resolve as if from
// canonical. Migration cutover installs one per neighbor before
// repointing the entry's Remote to the shadow's address: the old
// instance's drain-window traffic then still identifies the same ingress
// tunnel. Aliases survive Set/Remove reindexing; ClearRemoteAlias
// removes one at retire.
func (t *EncapTable) SetRemoteAlias(alias, canonical netip.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.aliases == nil {
		t.aliases = make(map[netip.Addr]netip.Addr)
	}
	t.aliases[alias] = canonical
	t.version.Add(1)
}

// ClearRemoteAlias removes a remote alias installed by SetRemoteAlias.
func (t *EncapTable) ClearRemoteAlias(alias netip.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.aliases, alias)
	t.version.Add(1)
}

// Lookup resolves a virtual next hop to its tunnel.
func (t *EncapTable) Lookup(nextHop netip.Addr) (EncapEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[nextHop]
	return e, ok
}

// Len reports the number of mappings.
func (t *EncapTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Entries returns all mappings sorted by next hop.
func (t *EncapTable) Entries() []EncapEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]EncapEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NextHop.Less(out[j].NextHop) })
	return out
}

func (e EncapEntry) String() string {
	return fmt.Sprintf("%s -> %s:%d (tunnel %d)", e.NextHop, e.Remote, e.Port, e.Tunnel)
}
