package fib

import (
	"fmt"
	"net/netip"
)

// cacheSlots sizes the direct-mapped Cache. The IIAS hot path sees a
// handful of active destinations per forwarder, so a small power of two
// keeps the cache in one or two lines.
const cacheSlots = 16

// Cache is a version-stamped, direct-mapped route cache for a single
// consumer (one Click LookupIPRoute element, one netem kernel FIB). A hit
// for a repeated destination costs a version load and an address compare —
// no lock, no trie walk. Any table mutation bumps the version and the next
// lookup discards the whole cache, so a flipped route takes effect on the
// very next packet.
//
// A Cache is NOT safe for concurrent use; each consumer owns its own, in
// the spirit of a per-core flow cache.
type Cache struct {
	t       *Table
	version uint64
	slots   [cacheSlots]cacheSlot
}

type cacheSlot struct {
	dst   netip.Addr
	route Route
	ok    bool // table lookup result (negative hits cache too)
	set   bool
}

// NewCache returns a cache over t.
func NewCache(t *Table) *Cache { return &Cache{t: t} }

// Table returns the underlying table.
func (c *Cache) Table() *Table { return c.t }

// Lookup is equivalent to c.Table().Lookup(dst) but serves repeated
// destinations from the cache while the table version is unchanged.
func (c *Cache) Lookup(dst netip.Addr) (Route, bool) {
	if !dst.Is4() {
		return Route{}, false
	}
	if v := c.t.version.Load(); v != c.version {
		c.version = v
		for i := range c.slots {
			c.slots[i].set = false
		}
	}
	s := &c.slots[slotOf(dst)]
	if s.set && s.dst == dst {
		return s.route, s.ok
	}
	r, ok := c.t.Lookup(dst)
	s.dst, s.route, s.ok, s.set = dst, r, ok, true
	return r, ok
}

// Verify checks every populated slot against the table's reference
// lookup. Slots cached under an older table version are legal (the next
// Lookup flushes them), so Verify only audits when the stamp is
// current; a populated slot that then disagrees with the reference trie
// means the invalidation protocol failed — exactly the bug class
// (serving stale routes after a flip) the simulation tests hunt.
func (c *Cache) Verify() error {
	if c.t.version.Load() != c.version {
		return nil
	}
	for i := range c.slots {
		s := &c.slots[i]
		if !s.set {
			continue
		}
		ref, ok := c.t.LookupReference(s.dst)
		if s.ok != ok || (ok && s.route != ref) {
			return fmt.Errorf("fib: cache slot %d stale for %v: cached=%v,%v reference=%v,%v",
				i, s.dst, s.route, s.ok, ref, ok)
		}
	}
	return nil
}

func slotOf(dst netip.Addr) int {
	b := dst.As4()
	h := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	h *= 2654435761 // Fibonacci hashing spreads low-entropy suffixes
	return int(h >> 28)
}
