package fib

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestLongestPrefixWins(t *testing.T) {
	tb := New()
	for i, p := range []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.1.2.3/32"} {
		if err := tb.Add(Route{Prefix: pfx(p), OutPort: i, Owner: "static"}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		dst  string
		port int
	}{
		{"10.1.2.3", 4},
		{"10.1.2.4", 3},
		{"10.1.3.1", 2},
		{"10.2.0.1", 1},
		{"192.0.2.1", 0},
	}
	for _, c := range cases {
		r, ok := tb.Lookup(addr(c.dst))
		if !ok || r.OutPort != c.port {
			t.Fatalf("Lookup(%s) = %+v ok=%v, want port %d", c.dst, r, ok, c.port)
		}
	}
}

func TestNoDefaultNoMatch(t *testing.T) {
	tb := New()
	tb.Add(Route{Prefix: pfx("10.0.0.0/8")})
	if _, ok := tb.Lookup(addr("192.0.2.1")); ok {
		t.Fatal("matched without a covering prefix")
	}
	if _, ok := tb.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("IPv6 lookup matched")
	}
}

func TestAddReplaceRemove(t *testing.T) {
	tb := New()
	tb.Add(Route{Prefix: pfx("10.0.0.0/8"), Metric: 1})
	tb.Add(Route{Prefix: pfx("10.0.0.0/8"), Metric: 2})
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", tb.Len())
	}
	r, _ := tb.Lookup(addr("10.1.1.1"))
	if r.Metric != 2 {
		t.Fatalf("metric = %d, want 2", r.Metric)
	}
	if !tb.Remove(pfx("10.0.0.0/8")) {
		t.Fatal("Remove returned false")
	}
	if tb.Remove(pfx("10.0.0.0/8")) {
		t.Fatal("double Remove returned true")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tb.Len())
	}
}

func TestMaskedPrefixNormalization(t *testing.T) {
	tb := New()
	tb.Add(Route{Prefix: netip.PrefixFrom(addr("10.1.2.3"), 8)})
	r, ok := tb.Lookup(addr("10.9.9.9"))
	if !ok || r.Prefix != pfx("10.0.0.0/8") {
		t.Fatalf("unmasked insert not normalized: %+v ok=%v", r, ok)
	}
}

func TestRejectInvalid(t *testing.T) {
	tb := New()
	if err := tb.Add(Route{Prefix: netip.Prefix{}}); err == nil {
		t.Fatal("invalid prefix accepted")
	}
	if err := tb.Add(Route{Prefix: netip.MustParsePrefix("2001:db8::/32")}); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
}

func TestRemoveOwner(t *testing.T) {
	tb := New()
	tb.Add(Route{Prefix: pfx("10.1.0.0/16"), Owner: "ospf"})
	tb.Add(Route{Prefix: pfx("10.2.0.0/16"), Owner: "ospf"})
	tb.Add(Route{Prefix: pfx("10.3.0.0/16"), Owner: "static"})
	if n := tb.RemoveOwner("ospf"); n != 2 {
		t.Fatalf("RemoveOwner = %d, want 2", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	if _, ok := tb.Lookup(addr("10.3.1.1")); !ok {
		t.Fatal("static route lost")
	}
}

func TestReplaceAtomicSwitchover(t *testing.T) {
	tb := New()
	tb.Add(Route{Prefix: pfx("10.1.0.0/16"), Owner: "vnetA", Metric: 1})
	tb.Add(Route{Prefix: pfx("10.2.0.0/16"), Owner: "vnetA", Metric: 1})
	tb.Add(Route{Prefix: pfx("10.9.0.0/16"), Owner: "static", Metric: 9})
	tb.Replace("vnetA", []Route{
		{Prefix: pfx("10.1.0.0/16"), Metric: 5},
		{Prefix: pfx("10.4.0.0/16"), Metric: 5},
	})
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3: %s", tb.Len(), tb)
	}
	if _, ok := tb.Lookup(addr("10.2.1.1")); ok {
		t.Fatal("withdrawn route still present")
	}
	r, ok := tb.Lookup(addr("10.4.1.1"))
	if !ok || r.Metric != 5 || r.Owner != "vnetA" {
		t.Fatalf("new route wrong: %+v", r)
	}
	if _, ok := tb.Lookup(addr("10.9.1.1")); !ok {
		t.Fatal("other owner's route removed")
	}
}

func TestRoutesSorted(t *testing.T) {
	tb := New()
	for _, p := range []string{"10.2.0.0/16", "10.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24"} {
		tb.Add(Route{Prefix: pfx(p)})
	}
	rs := tb.Routes()
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24", "10.2.0.0/16"}
	for i, w := range want {
		if rs[i].Prefix.String() != w {
			t.Fatalf("Routes[%d] = %v, want %s", i, rs[i].Prefix, w)
		}
	}
}

// TestLookupMatchesLinearScan is the property test: trie LPM must agree
// with a brute-force longest-match reference on random tables.
func TestLookupMatchesLinearScan(t *testing.T) {
	f := func(seeds []uint32, probes []uint32) bool {
		tb := New()
		var routes []Route
		for i, s := range seeds {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], s)
			bits := int(s % 33)
			p := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
			r := Route{Prefix: p, OutPort: i}
			tb.Add(r)
			// Linear reference replaces duplicates like the trie does.
			replaced := false
			for j := range routes {
				if routes[j].Prefix == p {
					routes[j] = r
					replaced = true
				}
			}
			if !replaced {
				routes = append(routes, r)
			}
		}
		for _, pr := range probes {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], pr)
			dst := netip.AddrFrom4(b)
			var best *Route
			for i := range routes {
				if routes[i].Prefix.Contains(dst) {
					if best == nil || routes[i].Prefix.Bits() > best.Prefix.Bits() {
						best = &routes[i]
					}
				}
			}
			got, ok := tb.Lookup(dst)
			if (best != nil) != ok {
				return false
			}
			if ok && (got.Prefix != best.Prefix || got.OutPort != best.OutPort) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionIncrements(t *testing.T) {
	tb := New()
	v0 := tb.Version()
	tb.Add(Route{Prefix: pfx("10.0.0.0/8")})
	if tb.Version() == v0 {
		t.Fatal("version did not change on Add")
	}
	v1 := tb.Version()
	tb.Remove(pfx("10.0.0.0/8"))
	if tb.Version() == v1 {
		t.Fatal("version did not change on Remove")
	}
}

func TestEncapTable(t *testing.T) {
	et := NewEncapTable()
	e := EncapEntry{NextHop: addr("10.1.1.2"), Remote: addr("198.32.154.250"), Port: 33000, Tunnel: 1}
	et.Set(e)
	got, ok := et.Lookup(addr("10.1.1.2"))
	if !ok || got != e {
		t.Fatalf("Lookup = %+v ok=%v", got, ok)
	}
	if _, ok := et.Lookup(addr("10.1.1.3")); ok {
		t.Fatal("spurious match")
	}
	et.Set(EncapEntry{NextHop: addr("10.1.1.3"), Remote: addr("198.32.154.226"), Port: 33000, Tunnel: 2})
	if et.Len() != 2 {
		t.Fatalf("Len = %d", et.Len())
	}
	es := et.Entries()
	if len(es) != 2 || !es[0].NextHop.Less(es[1].NextHop) {
		t.Fatalf("Entries not sorted: %v", es)
	}
	et.Remove(addr("10.1.1.2"))
	if _, ok := et.Lookup(addr("10.1.1.2")); ok {
		t.Fatal("removed entry still present")
	}
}

func TestEncapTableRemoteAliases(t *testing.T) {
	et := NewEncapTable()
	e := EncapEntry{NextHop: addr("10.1.1.2"), Remote: addr("198.32.154.250"), Port: 33000, Tunnel: 1}
	et.Set(e)
	if _, ok := et.ByRemote(addr("198.32.154.1")); ok {
		t.Fatal("unaliased remote matched")
	}
	v0 := et.Version()
	et.SetRemoteAlias(addr("198.32.154.1"), addr("198.32.154.250"))
	if et.Version() == v0 {
		t.Fatal("version did not change on SetRemoteAlias")
	}
	if got, ok := et.ByRemote(addr("198.32.154.1")); !ok || got != e {
		t.Fatalf("alias lookup = %+v ok=%v", got, ok)
	}
	// The direct remote still resolves, and aliases survive reindexing.
	et.Set(EncapEntry{NextHop: addr("10.1.1.3"), Remote: addr("198.32.154.226"), Port: 33000, Tunnel: 2})
	if got, ok := et.ByRemote(addr("198.32.154.1")); !ok || got != e {
		t.Fatalf("alias lost across Set: %+v ok=%v", got, ok)
	}
	if got, ok := et.ByRemote(addr("198.32.154.250")); !ok || got != e {
		t.Fatalf("direct remote lookup = %+v ok=%v", got, ok)
	}
	// Aliases chase the canonical remote's current entry: after the
	// migration cutover repoints Remote, the alias follows.
	moved := EncapEntry{NextHop: addr("10.1.1.2"), Remote: addr("198.32.154.99"), Port: 33000, Tunnel: 1}
	et.Set(moved)
	et.SetRemoteAlias(addr("198.32.154.250"), addr("198.32.154.99"))
	if got, ok := et.ByRemote(addr("198.32.154.250")); !ok || got != moved {
		t.Fatalf("repointed alias lookup = %+v ok=%v", got, ok)
	}
	et.ClearRemoteAlias(addr("198.32.154.250"))
	if _, ok := et.ByRemote(addr("198.32.154.250")); ok {
		t.Fatal("cleared alias still matched")
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := New()
	for i := 0; i < 1000; i++ {
		var a [4]byte
		binary.BigEndian.PutUint32(a[:], uint32(i)<<14)
		tb.Add(Route{Prefix: netip.PrefixFrom(netip.AddrFrom4(a), 18).Masked()})
	}
	dst := addr("10.1.2.3")
	tb.Add(Route{Prefix: pfx("10.0.0.0/8")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(dst)
	}
}
