package fib

import (
	"net/netip"
	"testing"
)

func oracleSample() []netip.Addr {
	return []netip.Addr{
		netip.MustParseAddr("10.1.0.1"),
		netip.MustParseAddr("10.1.128.2"),
		netip.MustParseAddr("10.2.3.4"),
		netip.MustParseAddr("192.168.1.1"),
		netip.MustParseAddr("8.8.8.8"),
	}
}

// TestVerifyCompiledCatchesCorruption is the mutation test for the
// differential FIB oracle: a poisoned compiled table must be reported,
// and an intact one must not.
func TestVerifyCompiledCatchesCorruption(t *testing.T) {
	tbl := New()
	tbl.Add(Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: netip.MustParseAddr("10.1.128.2"), OutPort: 0})
	tbl.Add(Route{Prefix: netip.MustParsePrefix("10.1.0.1/32"), OutPort: 1})
	tbl.Add(Route{Prefix: netip.MustParsePrefix("10.1.128.0/30"), NextHop: netip.MustParseAddr("10.1.128.1"), OutPort: 2})
	if err := tbl.VerifyCompiled(oracleSample()); err != nil {
		t.Fatalf("clean table failed verification: %v", err)
	}
	if n := tbl.CorruptCompiledForTest(); n == 0 {
		t.Fatal("nothing corrupted")
	}
	if err := tbl.VerifyCompiled(oracleSample()); err == nil {
		t.Fatal("corrupted compiled table passed verification")
	}
	// A mutation recompiles and heals the divergence.
	tbl.Add(Route{Prefix: netip.MustParsePrefix("10.3.0.0/16"), NextHop: netip.MustParseAddr("10.1.128.2"), OutPort: 0})
	if err := tbl.VerifyCompiled(oracleSample()); err != nil {
		t.Fatalf("recompiled table failed verification: %v", err)
	}
}

// TestCacheVerifyCatchesSkippedInvalidation simulates the bug class the
// cache audit exists for: a route flips but a consumer's cache keeps
// serving the old route because invalidation was (here: deliberately)
// skipped. Verify must flag the stale slot.
func TestCacheVerifyCatchesSkippedInvalidation(t *testing.T) {
	tbl := New()
	dst := netip.MustParseAddr("10.1.2.3")
	tbl.Add(Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: netip.MustParseAddr("10.1.128.2"), OutPort: 0})
	c := NewCache(tbl)
	if _, ok := c.Lookup(dst); !ok {
		t.Fatal("expected a route")
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("fresh cache failed verification: %v", err)
	}
	// Route flip: same prefix, new next hop.
	tbl.Add(Route{Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: netip.MustParseAddr("10.1.128.6"), OutPort: 3})
	// A healthy cache is merely stale-stamped now, which is legal —
	// the next Lookup flushes it — so Verify stays quiet.
	if err := c.Verify(); err != nil {
		t.Fatalf("stale-stamped cache should not fail verification: %v", err)
	}
	// Simulate broken invalidation: restamp to the current version
	// while keeping the old slots, the exact state a skipped flush
	// would leave behind.
	c.version = tbl.version.Load()
	if err := c.Verify(); err == nil {
		t.Fatal("stale cache slot passed verification")
	}
	// The normal path heals: one Lookup flushes and re-fills.
	c.version = 0
	if _, ok := c.Lookup(dst); !ok {
		t.Fatal("expected a route after flush")
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("refilled cache failed verification: %v", err)
	}
}
