// Package fib implements the IIAS forwarding state: a longest-prefix-match
// IPv4 forwarding table (the FIB that XORP installs into Click via the
// FEA) and the encapsulation table that maps virtual next hops to the
// public addresses of the physical nodes carrying the UDP tunnels
// (Section 4.2.1 of the paper).
package fib

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Route is one FIB entry. NextHop is the virtual interface address of the
// neighboring virtual node (what XORP installs); an invalid NextHop with
// valid OutPort means "directly connected / deliver locally on OutPort".
type Route struct {
	Prefix  netip.Prefix
	NextHop netip.Addr
	OutPort int // element output port / tunnel index
	Metric  uint32
	// Owner tags the installer of the route so bulk withdrawals
	// (RemoveOwner, Replace) only touch their own state. The FEA RIB
	// installs everything as owner "rib".
	Owner string
	// Proto labels the routing protocol that produced the route ("ospf",
	// "rip", "bgp", "static", "connected"), preserved across RIB merges.
	Proto string
}

func (r Route) String() string {
	return fmt.Sprintf("%s via %s port %d metric %d (%s)",
		r.Prefix, r.NextHop, r.OutPort, r.Metric, r.Owner)
}

// node is a binary-trie node keyed on successive destination-address bits.
type node struct {
	children [2]*node
	route    *Route
}

// Table is a longest-prefix-match IPv4 forwarding table. It is safe for
// concurrent use: the live overlay looks up from socket readers while the
// routing process updates routes.
//
// Mutations go to an exact binary trie under the mutex; lookups go to an
// immutable stride-8 multibit trie compiled lazily from it (lock-free via
// atomic pointer, rebuilt when the version counter moves). Updates are
// control-plane rare, lookups are per-packet, so the data plane never
// contends with XORP installing routes.
type Table struct {
	mu   sync.RWMutex
	root node
	n    int
	// version increments on every mutation; Click's LookupIPRoute element
	// and per-consumer Caches invalidate against it.
	version atomic.Uint64
	// compiled is the stride-8 lookup structure for version
	// compiled.version; nil or stale until the next Lookup rebuilds it.
	compiled atomic.Pointer[ctable]
}

// New returns an empty table.
func New() *Table { return &Table{} }

// Len reports the number of routes.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// Version returns the mutation counter.
func (t *Table) Version() uint64 {
	return t.version.Load()
}

func addrBit(a [4]byte, i int) int {
	return int(a[i/8]>>(7-i%8)) & 1
}

// Add inserts or replaces the route for r.Prefix. It returns an error for
// non-IPv4 or invalid prefixes.
func (t *Table) Add(r Route) error {
	if !r.Prefix.IsValid() || !r.Prefix.Addr().Is4() {
		return fmt.Errorf("fib: invalid IPv4 prefix %v", r.Prefix)
	}
	r.Prefix = r.Prefix.Masked()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &t.root
	a := r.Prefix.Addr().As4()
	for i := 0; i < r.Prefix.Bits(); i++ {
		b := addrBit(a, i)
		if n.children[b] == nil {
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	if n.route == nil {
		t.n++
	}
	rc := r
	n.route = &rc
	t.version.Add(1)
	return nil
}

// Remove deletes the route for prefix, reporting whether it existed.
func (t *Table) Remove(prefix netip.Prefix) bool {
	if !prefix.IsValid() || !prefix.Addr().Is4() {
		return false
	}
	prefix = prefix.Masked()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &t.root
	a := prefix.Addr().As4()
	for i := 0; i < prefix.Bits(); i++ {
		n = n.children[addrBit(a, i)]
		if n == nil {
			return false
		}
	}
	if n.route == nil {
		return false
	}
	n.route = nil
	t.n--
	t.version.Add(1)
	return true
}

// Lookup returns the longest-prefix-match route for dst. The hot path is
// lock-free: four byte-indexed descents through the compiled stride-8
// trie.
func (t *Table) Lookup(dst netip.Addr) (Route, bool) {
	if !dst.Is4() {
		return Route{}, false
	}
	c := t.compiled.Load()
	if c == nil || c.version != t.version.Load() {
		c = t.recompile()
	}
	if r := c.lookup(dst.As4()); r != nil {
		return *r, true
	}
	return Route{}, false
}

// LookupReference returns the longest-prefix-match route for dst by
// walking the exact binary trie under the read lock, bypassing the
// compiled stride-8 structure entirely. It is deliberately the dumbest
// correct implementation: the differential oracle simulation tests
// check the fast path against, packet by packet.
func (t *Table) LookupReference(dst netip.Addr) (Route, bool) {
	if !dst.Is4() {
		return Route{}, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best *Route
	n := &t.root
	a := dst.As4()
	for i := 0; ; i++ {
		if n.route != nil {
			best = n.route
		}
		if i == 32 {
			break
		}
		n = n.children[addrBit(a, i)]
		if n == nil {
			break
		}
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// VerifyCompiled checks the compiled stride-8 trie against the
// reference binary trie for every address in addrs, returning a
// description of the first divergence. A nil error means the fast path
// and the oracle agree on the whole sample.
func (t *Table) VerifyCompiled(addrs []netip.Addr) error {
	for _, a := range addrs {
		fast, fok := t.Lookup(a)
		ref, rok := t.LookupReference(a)
		if fok != rok || (fok && fast != ref) {
			return fmt.Errorf("fib: compiled lookup diverges for %v: fast=%v,%v reference=%v,%v",
				a, fast, fok, ref, rok)
		}
	}
	return nil
}

// ctable is an immutable stride-8 multibit trie: one level per address
// byte, with prefixes whose length is not a multiple of 8 expanded across
// the covered slots at build time (controlled prefix expansion).
type ctable struct {
	version uint64
	root    cnode
}

type cnode struct {
	// def is the route whose prefix ends exactly at this node's depth
	// (length ≡ 0 mod 8), the fallback for every slot.
	def *Route
	// routes[i] is the longest expanded route with 1–8 more bits matching
	// byte value i at this level.
	routes [256]*Route
	// children[i] descends to the next byte's level.
	children [256]*cnode
}

func (c *ctable) insert(r *Route) {
	a := r.Prefix.Addr().As4()
	bits := r.Prefix.Bits()
	n := &c.root
	d := 0
	for ; (d+1)*8 <= bits; d++ {
		b := a[d]
		if n.children[b] == nil {
			n.children[b] = &cnode{}
		}
		n = n.children[b]
	}
	rem := bits - d*8
	if rem == 0 {
		n.def = r
		return
	}
	// Expand the partial byte: every slot sharing the top rem bits.
	base := int(a[d] & (0xff << (8 - rem)))
	for i := 0; i < 1<<(8-rem); i++ {
		if ex := n.routes[base+i]; ex == nil || ex.Prefix.Bits() < bits {
			n.routes[base+i] = r
		}
	}
}

func (c *ctable) lookup(a [4]byte) *Route {
	var best *Route
	n := &c.root
	for i := 0; i < 4; i++ {
		if n.def != nil {
			best = n.def
		}
		b := a[i]
		if r := n.routes[b]; r != nil {
			best = r
		}
		if n.children[b] == nil {
			return best
		}
		n = n.children[b]
	}
	if n.def != nil { // /32 routes live at depth 4
		best = n.def
	}
	return best
}

// recompile rebuilds the stride-8 trie from the binary trie under the
// write lock (double-checked, so concurrent lookups build it once).
func (t *Table) recompile() *ctable {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	if c := t.compiled.Load(); c != nil && c.version == v {
		return c
	}
	c := &ctable{version: v}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.route != nil {
			rc := *n.route
			c.insert(&rc)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(&t.root)
	t.compiled.Store(c)
	return c
}

// CorruptCompiledForTest flips the output port of every route in the
// currently compiled stride-8 trie without touching the reference
// binary trie or the version counter. It exists solely for the
// simulation harness's mutation tests, which use it to prove the
// differential oracle (VerifyCompiled) actually catches a fast path
// that diverges from the reference. Returns the number of corrupted
// entries (0 means the table was empty).
func (t *Table) CorruptCompiledForTest() int {
	t.Lookup(netip.AddrFrom4([4]byte{0, 0, 0, 0})) // force compilation at the current version
	c := t.compiled.Load()
	if c == nil {
		return 0
	}
	var corrupt func(n *cnode) int
	corrupt = func(n *cnode) int {
		cnt := 0
		if n.def != nil {
			bad := *n.def
			bad.OutPort ^= 0x40
			n.def = &bad
			cnt++
		}
		for i, r := range n.routes {
			if r != nil {
				bad := *r
				bad.OutPort ^= 0x40
				n.routes[i] = &bad
				cnt++
			}
		}
		for _, ch := range n.children {
			if ch != nil {
				cnt += corrupt(ch)
			}
		}
		return cnt
	}
	return corrupt(&c.root)
}

// RemoveOwner deletes every route installed by owner, returning the count.
// The FEA uses this when a routing process disconnects or a slice is torn
// down.
func (t *Table) RemoveOwner(owner string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.route != nil && n.route.Owner == owner {
			n.route = nil
			t.n--
			removed++
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(&t.root)
	if removed > 0 {
		t.version.Add(1)
	}
	return removed
}

// Routes returns all routes sorted by prefix (address then length), the
// order `show route` style dumps use.
func (t *Table) Routes() []Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Route, 0, t.n)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.route != nil {
			out = append(out, *n.route)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(&t.root)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Prefix.Addr(), out[j].Prefix.Addr()
		if ai != aj {
			return ai.Less(aj)
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// Replace atomically swaps in a whole new route set for owner: routes not
// in rs are withdrawn, others added/updated. This is the "atomic
// switchover between virtual networks" primitive from the paper's
// conclusion.
func (t *Table) Replace(owner string, rs []Route) {
	t.mu.Lock()
	keep := make(map[netip.Prefix]bool, len(rs))
	for _, r := range rs {
		keep[r.Prefix.Masked()] = true
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.route != nil && n.route.Owner == owner && !keep[n.route.Prefix] {
			n.route = nil
			t.n--
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(&t.root)
	t.version.Add(1)
	t.mu.Unlock()
	for _, r := range rs {
		r.Owner = owner
		t.Add(r)
	}
}

// String dumps the table, one route per line.
func (t *Table) String() string {
	var b strings.Builder
	for _, r := range t.Routes() {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}
