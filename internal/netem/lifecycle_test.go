package netem

import (
	"testing"
	"time"

	"vini/internal/packet"
)

// sendTo emits one UDP datagram from src to dst at the given port.
func sendTo(src, dst *Node, port uint16) {
	d := packet.BuildUDP(src.Addr(), dst.Addr(), 5000, port, 64, []byte("x"))
	src.StackSend(d)
}

func TestProcessCloseReleasesEverything(t *testing.T) {
	w, src, _, dst := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	base := packet.Stats()
	proc := dst.NewProcess(ProcessConfig{Name: "click", Share: 0.5})
	delivered := 0
	if _, err := proc.OpenUDP(33000, func(p *packet.Packet) {
		delivered++
		p.Release()
	}); err != nil {
		t.Fatal(err)
	}
	sendTo(src, dst, 33000)
	w.Run(10 * time.Millisecond)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	proc.Close()
	if !proc.Closed() {
		t.Fatal("Closed() false after Close")
	}
	// The port is free again and packets to it no longer reach the
	// handler (the node answers port-unreachable instead).
	sendTo(src, dst, 33000)
	w.Run(20 * time.Millisecond)
	if delivered != 1 {
		t.Fatalf("closed socket delivered: %d", delivered)
	}
	if _, busy := dst.udpPorts[33000]; busy {
		t.Fatal("port still bound after Close")
	}
	if len(dst.procs) != 0 {
		t.Fatalf("proc list has %d entries after Close", len(dst.procs))
	}
	// Rebinding the port must succeed.
	p2 := dst.NewProcess(ProcessConfig{Name: "click2", Share: 0.5})
	if _, err := p2.OpenUDP(33000, func(p *packet.Packet) { p.Release() }); err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
	p2.Close()
	proc.Close() // idempotent
	w.Run(30 * time.Millisecond)
	if f := packet.Stats().Sub(base).InFlight(); f != 0 {
		t.Fatalf("pool ledger unbalanced after Close: %d in flight", f)
	}
}

func TestProcessCloseReleasesBufferedPackets(t *testing.T) {
	w, src, _, dst := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	base := packet.Stats()
	proc := dst.NewProcess(ProcessConfig{Name: "click", Share: 0.5})
	if _, err := proc.OpenUDP(33000, func(p *packet.Packet) { p.Release() }); err != nil {
		t.Fatal(err)
	}
	// Park the scheduler task so packets pile up in the socket buffer,
	// then close with the buffer full.
	proc.Task().SetSuspended(true)
	for i := 0; i < 8; i++ {
		sendTo(src, dst, 33000)
	}
	w.Run(10 * time.Millisecond)
	proc.Close()
	w.Run(20 * time.Millisecond)
	if f := packet.Stats().Sub(base).InFlight(); f != 0 {
		t.Fatalf("buffered packets leaked: %d in flight", f)
	}
}

func TestProcessPauseDropsAndResumeDelivers(t *testing.T) {
	w, src, _, dst := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	proc := dst.NewProcess(ProcessConfig{Name: "click", Share: 0.5})
	delivered := 0
	s, err := proc.OpenUDP(33000, func(p *packet.Packet) {
		delivered++
		p.Release()
	})
	if err != nil {
		t.Fatal(err)
	}
	proc.SetPaused(true)
	sendTo(src, dst, 33000)
	w.Run(10 * time.Millisecond)
	if delivered != 0 {
		t.Fatalf("paused process delivered: %d", delivered)
	}
	if s.Drops != 1 {
		t.Fatalf("paused socket Drops = %d, want 1", s.Drops)
	}
	proc.SetPaused(false)
	sendTo(src, dst, 33000)
	w.Run(20 * time.Millisecond)
	if delivered != 1 {
		t.Fatalf("resumed process delivered = %d, want 1", delivered)
	}
}

func TestRemoveAddrDropsDeterministically(t *testing.T) {
	w, src, _, dst := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	alias := addr("10.5.0.1")
	dst.AddAddr(alias)
	w.ComputeRoutes()
	got := 0
	if err := dst.StackListenUDP(7000, func(d []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	d := packet.BuildUDP(src.Addr(), alias, 5000, 7000, 64, []byte("x"))
	src.StackSend(append([]byte(nil), d...))
	w.Run(10 * time.Millisecond)
	if got != 1 {
		t.Fatalf("alias delivery = %d, want 1", got)
	}
	dst.RemoveAddr(alias)
	drops := dst.Drops
	src.StackSend(d)
	w.Run(20 * time.Millisecond)
	if got != 1 {
		t.Fatalf("removed alias still delivered: %d", got)
	}
	if dst.Drops <= drops {
		t.Fatal("packet to removed alias did not drop at the owner")
	}
	// The primary address refuses removal.
	dst.RemoveAddr(dst.Addr())
	if !dst.HasAddr(dst.Addr()) {
		t.Fatal("primary address removed")
	}
}

func TestLinkEventUnsubscribe(t *testing.T) {
	w, _, _, _ := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	var a, b int
	idA := w.OnLinkEvent(func(ev LinkEvent) { a++ })
	idB := w.OnLinkEvent(func(ev LinkEvent) { b++ })
	if err := w.FailLink("src", "fwdr", 0); err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 1 {
		t.Fatalf("upcalls = %d,%d, want 1,1", a, b)
	}
	w.Unsubscribe(idA)
	if err := w.RestoreLink("src", "fwdr", 0); err != nil {
		t.Fatal(err)
	}
	if a != 1 {
		t.Fatalf("unsubscribed upcall fired: %d", a)
	}
	if b != 2 {
		t.Fatalf("surviving upcall = %d, want 2", b)
	}
	_ = idB
	w.Unsubscribe(99) // out of range: no-op
}
