package netem

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
)

func TestLinkJitterIsFIFO(t *testing.T) {
	loop := sim.NewLoop(5)
	w := New(loop)
	a, _ := w.AddNode("a", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	b, _ := w.AddNode("b", addr("10.0.0.2"), DETERProfile(), sched.Options{})
	w.AddLink(LinkConfig{A: "a", B: "b", Bandwidth: 1e9,
		Delay: time.Millisecond, Jitter: 2 * time.Millisecond})
	w.ComputeRoutes()
	var seqs []uint16
	b.StackListenUDP(7, func(d []byte) {
		var ip packet.IPv4
		seg, _ := ip.Parse(d)
		var u packet.UDP
		u.Parse(seg)
		seqs = append(seqs, u.SrcPort)
	})
	for i := 0; i < 200; i++ {
		a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), uint16(i), 7, 64, nil))
	}
	loop.Run(time.Second)
	if len(seqs) != 200 {
		t.Fatalf("delivered %d", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("reordering under jitter: %d after %d", seqs[i], seqs[i-1])
		}
	}
}

func TestLinkStatsAccumulate(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	a, _ := w.AddNode("a", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	b, _ := w.AddNode("b", addr("10.0.0.2"), DETERProfile(), sched.Options{})
	l, _ := w.AddLink(LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: time.Millisecond})
	w.ComputeRoutes()
	b.StackListenUDP(7, func([]byte) {})
	for i := 0; i < 5; i++ {
		a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), 1, 7, 64, make([]byte, 100)))
	}
	loop.Run(time.Second)
	pk, by, dr := l.Stats(0)
	if pk != 5 || dr != 0 || by != 5*128 {
		t.Fatalf("stats = %d pkts %d bytes %d drops", pk, by, dr)
	}
	if pk2, _, _ := l.Stats(1); pk2 != 0 {
		t.Fatalf("reverse direction counted %d", pk2)
	}
}

func TestTTLExpiryInKernel(t *testing.T) {
	w, src, fwd, dst := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	got := 0
	dst.StackListenUDP(7, func([]byte) { got++ })
	// TTL 1: the forwarder must drop it, not deliver.
	src.StackSend(packet.BuildUDP(src.Addr(), dst.Addr(), 1, 7, 1, nil))
	w.Run(10 * time.Millisecond)
	if got != 0 {
		t.Fatal("TTL-1 packet crossed a router")
	}
	if fwd.Drops == 0 {
		t.Fatal("drop not counted")
	}
}

func TestInjectLocalAndGarbage(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	n, _ := w.AddNode("n", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	got := 0
	n.StackListenUDP(9, func([]byte) { got++ })
	n.InjectLocal(packet.BuildUDP(addr("10.0.0.2"), n.Addr(), 1, 9, 64, nil))
	if got != 1 {
		t.Fatal("InjectLocal did not deliver")
	}
	drops := n.Drops
	n.InjectLocal([]byte{1, 2, 3})
	if n.Drops != drops+1 {
		t.Fatal("garbage not counted as drop")
	}
}

func TestStackListenTCPConflict(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	n, _ := w.AddNode("n", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	if err := n.StackListenTCP(80, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.StackListenTCP(80, func([]byte) {}); err == nil {
		t.Fatal("duplicate TCP listener accepted")
	}
}

func TestOpenPortRangeValidationAndDemux(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	a, _ := w.AddNode("a", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	b, _ := w.AddNode("b", addr("10.0.0.2"), DETERProfile(), sched.Options{})
	w.AddLink(LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: time.Microsecond})
	w.ComputeRoutes()
	proc := b.NewProcess(ProcessConfig{Name: "p", Share: 0.5})
	if _, err := proc.OpenPortRange(5000, 4000, func(*packet.Packet) {}); err == nil {
		t.Fatal("inverted range accepted")
	}
	got := 0
	if _, err := proc.OpenPortRange(40000, 40010, func(*packet.Packet) { got++ }); err != nil {
		t.Fatal(err)
	}
	// UDP and TCP to the range both land in the process.
	a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), 1, 40005, 64, nil))
	a.StackSend(packet.BuildTCP(a.Addr(), b.Addr(), packet.TCP{SrcPort: 2, DstPort: 40007, Flags: packet.TCPSyn}, 64, nil))
	a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), 1, 39999, 64, nil)) // outside
	loop.Run(100 * time.Millisecond)
	if got != 2 {
		t.Fatalf("range captured %d, want 2", got)
	}
}

func TestTapPriorityOverKernelRoutes(t *testing.T) {
	// A tap route shadows kernel routes for locally originated traffic
	// even when a kernel route exists for the destination.
	loop := sim.NewLoop(1)
	w := New(loop)
	a, _ := w.AddNode("a", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	b, _ := w.AddNode("b", addr("10.9.0.2"), DETERProfile(), sched.Options{})
	w.AddLink(LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: time.Microsecond})
	w.ComputeRoutes()
	kernelGot := 0
	b.StackListenUDP(7, func([]byte) { kernelGot++ })
	proc := a.NewProcess(ProcessConfig{Name: "click", Share: 0.5})
	tapGot := 0
	proc.OpenTap(netip.MustParsePrefix("10.9.0.0/16"), func(*packet.Packet) { tapGot++ })
	a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), 1, 7, 64, nil))
	loop.Run(100 * time.Millisecond)
	if tapGot != 1 || kernelGot != 0 {
		t.Fatalf("tap=%d kernel=%d; tap must win for local sends", tapGot, kernelGot)
	}
}

func TestProcessSendIPRoutesViaKernel(t *testing.T) {
	w, src, _, dst := threeNodeNet(t, DETERProfile(), 1e9, 10*time.Microsecond)
	proc := src.NewProcess(ProcessConfig{Name: "p", Share: 0.5})
	got := 0
	dst.StackListenUDP(7, func([]byte) { got++ })
	proc.SendIP(packet.BuildUDP(src.Addr(), dst.Addr(), 1, 7, 64, nil))
	w.Run(10 * time.Millisecond)
	if got != 1 {
		t.Fatal("SendIP not delivered")
	}
}

func TestUtilizationWindows(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	n, _ := w.AddNode("n", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	if u := n.KernelUtilization(); u != 0 {
		t.Fatalf("fresh node utilization = %v", u)
	}
	_ = loop
}
