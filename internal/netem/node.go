package netem

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// Node is one physical host: a kernel stack (addresses, route table,
// local sockets, tap devices) plus a CPU on which user-space processes
// (the Click forwarders of each slice) are scheduled.
type Node struct {
	name string
	net  *Network
	// dom is the node's time domain: the control domain in classic
	// mode, a private one in sharded mode. Everything the node does at
	// runtime — CPU scheduling, forwarding latency, stack timestamps —
	// is clocked and scheduled here.
	dom  *sim.Domain
	prof Profile
	// addr is the node's primary (public) address.
	addr netip.Addr
	// addrs is the set of local addresses (primary + aliases).
	addrs map[netip.Addr]bool
	// routes is the kernel routing table of the underlying network.
	routes *fib.Table
	// routeCache fronts routes for the per-packet forwarding path.
	routeCache *fib.Cache
	// links are attached physical links, by slot.
	links []*Link
	// CPU schedules this node's user processes.
	CPU *sched.CPU
	// procs are the registered user-space processes.
	procs []*Process
	// udpPorts demultiplexes local UDP delivery to process sockets.
	udpPorts map[uint16]*Socket
	// stackUDP are kernel-resident UDP listeners (measurement apps).
	stackUDP map[uint16]StackHandler
	// stackTCP are kernel-resident TCP segment consumers by local port.
	stackTCP map[uint16]StackHandler
	// icmpTap observes ICMP delivered locally (ping apps).
	icmpTap StackHandler
	// taps route kernel packets matching a prefix into a process (the
	// PL-VINI tap0 device: everything under 10.0.0.0/8).
	taps []tapRoute
	// portRanges capture local UDP/TCP delivery for NAT return traffic.
	portRanges []portRange
	// kernelUsed accounts kernel CPU for the utilization columns.
	kernelUsed   time.Duration
	kernAcctFrom time.Duration
	// Drops counts packets dropped for lack of any local consumer/route.
	Drops uint64
	// Telemetry mirrors (nil-safe): cumulative kernel CPU nanoseconds
	// and kernel drops, written only from this node's domain.
	mKernel, mDrops *telemetry.Counter
	// wheel coalesces coarse protocol ticks in sharded mode (see Ticks).
	wheel *sim.TickWheel
}

// Instrument attaches the node's telemetry counters. Driver-time only.
func (n *Node) Instrument(kernelNS, drops *telemetry.Counter) {
	n.mKernel, n.mDrops = kernelNS, drops
}

// drop records a kernel-level packet drop.
func (n *Node) drop() {
	n.Drops++
	n.mDrops.Inc()
}

// StackHandler receives a full IP datagram delivered by the kernel.
type StackHandler func(dgram []byte)

type tapRoute struct {
	prefix netip.Prefix
	sock   *Socket
}

type portRange struct {
	lo, hi uint16
	sock   *Socket
}

func (n *Node) rangeSocket(port uint16) *Socket {
	for _, r := range n.portRanges {
		if port >= r.lo && port <= r.hi {
			return r.sock
		}
	}
	return nil
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Addr returns the node's primary address.
func (n *Node) Addr() netip.Addr { return n.addr }

// Clock returns the node's domain-scoped clock. Protocol and traffic
// code attached to this node must schedule here (not on the global
// loop) so it stays correct under parallel execution.
func (n *Node) Clock() sim.Clock { return n.dom }

// Domain returns the node's time domain.
func (n *Node) Domain() *sim.Domain { return n.dom }

// Ticks returns the clock coarse periodic protocol timers (hellos, RIP
// updates, refresh sweeps) should schedule on. In sharded mode it is a
// per-node tick wheel: many ticks share one heap event per 100 ms slot,
// so timer housekeeping neither multiplies events nor pins the domain's
// published execution promise to the next hello. In classic mode it is
// the domain itself — the single-timeline schedule stays byte-identical
// to the historical loop.
func (n *Node) Ticks() sim.Clock {
	if !n.net.shard {
		return n.dom
	}
	if n.wheel == nil {
		n.wheel = sim.NewTickWheel(n.dom, 100*time.Millisecond)
	}
	return n.wheel
}

// Profile returns the node's host cost model.
func (n *Node) Profile() Profile { return n.prof }

// Routes exposes the kernel routing table (the "underlying IP network").
func (n *Node) Routes() *fib.Table { return n.routes }

// AddAddr adds a local alias address.
func (n *Node) AddAddr(a netip.Addr) { n.addrs[a] = true }

// RemoveAddr drops a local alias (slice teardown). Stale /32 host routes
// other nodes still hold for it simply fail the local-delivery check
// until the next ComputeRoutes stops advertising the address; in-flight
// packets addressed to it drop deterministically at this node.
func (n *Node) RemoveAddr(a netip.Addr) {
	if a == n.addr {
		return // the primary address is not removable
	}
	delete(n.addrs, a)
}

// HasAddr reports whether a is local to this node.
func (n *Node) HasAddr(a netip.Addr) bool { return n.addrs[a] }

// StackListenUDP registers a kernel-resident UDP listener (zero CPU
// contention; used by measurement endpoints). It returns an error if the
// port is taken by a process socket or another listener.
func (n *Node) StackListenUDP(port uint16, h StackHandler) error {
	if _, busy := n.udpPorts[port]; busy {
		return fmt.Errorf("netem: %s UDP port %d bound by a process", n.name, port)
	}
	if _, busy := n.stackUDP[port]; busy {
		return fmt.Errorf("netem: %s UDP port %d already listened", n.name, port)
	}
	n.stackUDP[port] = h
	return nil
}

// StackUnlistenUDP releases a kernel-resident UDP listener. Releasing a
// port that is not listened is a no-op. Packets already in flight to the
// port take the normal unlistened path (ICMP port unreachable).
func (n *Node) StackUnlistenUDP(port uint16) { delete(n.stackUDP, port) }

// StackListenICMP registers the local ICMP consumer.
func (n *Node) StackListenICMP(h StackHandler) { n.icmpTap = h }

// StackUnlistenICMP detaches the local ICMP consumer.
func (n *Node) StackUnlistenICMP() { n.icmpTap = nil }

// StackListeners counts live kernel-resident registrations (UDP and TCP
// ports, plus one for an attached ICMP tap). Workload-teardown audits
// check it returns to its pre-workload value after Close.
func (n *Node) StackListeners() int {
	c := len(n.stackUDP) + len(n.stackTCP)
	if n.icmpTap != nil {
		c++
	}
	return c
}

// StackListenTCP registers a kernel-resident TCP endpoint on port. The
// handler receives whole IP datagrams; internal/tcpm implements the
// protocol machine above it.
func (n *Node) StackListenTCP(port uint16, h StackHandler) error {
	if _, busy := n.stackTCP[port]; busy {
		return fmt.Errorf("netem: %s TCP port %d already listened", n.name, port)
	}
	n.stackTCP[port] = h
	return nil
}

// StackUnlistenTCP releases a kernel-resident TCP endpoint. Releasing a
// port that is not listened is a no-op.
func (n *Node) StackUnlistenTCP(port uint16) { delete(n.stackTCP, port) }

// InjectLocal delivers a datagram to this node's local consumers as if it
// had arrived addressed to the node — the path Click's ToTap element uses
// to hand overlay packets back to applications.
func (n *Node) InjectLocal(dgram []byte) {
	var ip packet.IPv4
	if _, err := ip.Parse(dgram); err != nil {
		n.drop()
		return
	}
	p := packet.Get()
	p.SetData(dgram)
	n.deliverLocal(ip, p)
}

// AddTapRoute directs kernel packets for prefix into sock's process —
// the modified TUN/TAP driver of Section 4.1.3 (each slice sees its own
// tap0; the kernel routes 10.0.0.0/8 there).
func (n *Node) AddTapRoute(prefix netip.Prefix, sock *Socket) {
	n.taps = append(n.taps, tapRoute{prefix: prefix, sock: sock})
}

// kernelCharge accounts d of kernel CPU time.
func (n *Node) kernelCharge(d time.Duration) {
	n.kernelUsed += d
	n.mKernel.Add(uint64(d))
}

// KernelUtilization reports the kernel CPU fraction since the last reset.
func (n *Node) KernelUtilization() float64 {
	elapsed := n.dom.Now() - n.kernAcctFrom
	if elapsed <= 0 {
		return 0
	}
	return float64(n.kernelUsed) / float64(elapsed)
}

// ResetAccounting clears CPU accounting on the node and its processes.
func (n *Node) ResetAccounting() {
	n.kernelUsed = 0
	n.kernAcctFrom = n.dom.Now()
	n.CPU.ResetAccounting()
	for _, p := range n.procs {
		for _, s := range p.socks {
			s.Drops = 0
		}
	}
}

// StackSend transmits dgram from this node's kernel: tap routes first
// (the 10/8 route to tap0), then local delivery, then kernel forwarding.
func (n *Node) StackSend(dgram []byte) {
	n.kernelCharge(n.prof.scaled(n.prof.StackCost))
	n.send(dgram)
}

// receive handles a packet arriving from a link.
func (n *Node) receive(p *packet.Packet, from *Link) {
	if n.net.onPacket != nil {
		n.net.onPacket(n, "recv", p)
	}
	n.route(p, false)
}

// route is the kernel path: tap prefixes, local delivery, or forwarding.
func (n *Node) route(p *packet.Packet, fromLocal bool) {
	var ip packet.IPv4
	if _, err := ip.Parse(p.Data); err != nil {
		n.drop()
		p.Release()
		return
	}
	// Tap routes shadow real routes for locally originated traffic and
	// for arriving packets not addressed to this node.
	if fromLocal || !n.addrs[ip.Dst] {
		for _, t := range n.taps {
			if t.prefix.Contains(ip.Dst) {
				t.sock.enqueue(p)
				return
			}
		}
	}
	if n.addrs[ip.Dst] {
		n.deliverLocal(ip, p)
		return
	}
	// Kernel IP forwarding on the underlying network. Locally originated
	// packets are sent, not forwarded: no TTL decrement at the origin.
	if n.routeCache == nil {
		n.routeCache = fib.NewCache(n.routes)
	}
	r, ok := n.routeCache.Lookup(ip.Dst)
	if !ok {
		n.drop()
		p.Release()
		return
	}
	if !fromLocal {
		if ip.TTL <= 1 {
			// Answer ICMP time exceeded from this router's address, so
			// traceroute works across the substrate too.
			n.drop()
			if ip.Proto != packet.ProtoICMP {
				if reply := packet.BuildICMPError(n.addr, packet.ICMPTimeExceeded, 0, p.Data); reply != nil {
					n.send(reply)
				}
			}
			p.Release()
			return
		}
		packet.SetTTL(p.Data, ip.TTL-1)
		n.kernelCharge(n.prof.scaled(n.prof.KernelForwardCost))
	}
	n.forwardOut(r, p)
}

// forwardOut puts the packet on the outgoing link after the kernel
// forwarding latency.
func (n *Node) forwardOut(r fib.Route, p *packet.Packet) {
	if r.OutPort < 0 || r.OutPort >= len(n.links) {
		n.drop()
		p.Release()
		return
	}
	link := n.links[r.OutPort]
	cost := n.prof.scaled(n.prof.KernelForwardCost)
	// Typed same-domain event: no closure allocation on the per-hop
	// forwarding path (the event itself recycles through the free list).
	n.dom.Send(n.dom, cost, link.txFrom(n), p)
}

// deliverLocal hands a packet addressed to this node to its consumer.
// Delivered packets are never Released here: stack handlers receive (and
// may retain) p.Data, so the buffer must stay out of the pool and fall to
// the garbage collector — Escape records that hand-off in the pool
// ledger. Only undeliverable packets are released.
func (n *Node) deliverLocal(ip packet.IPv4, p *packet.Packet) {
	n.kernelCharge(n.prof.scaled(n.prof.StackCost))
	switch ip.Proto {
	case packet.ProtoUDP:
		var u packet.UDP
		payload := p.Data[ip.HeaderLen:]
		if _, err := u.Parse(payload); err != nil {
			n.drop()
			p.Release()
			return
		}
		if s, ok := n.udpPorts[u.DstPort]; ok {
			s.enqueue(p)
			return
		}
		if h, ok := n.stackUDP[u.DstPort]; ok {
			p.Escape() // handler may retain p.Data; buffer leaves the pool
			h(p.Data)
			return
		}
		if s := n.rangeSocket(u.DstPort); s != nil {
			s.enqueue(p)
			return
		}
		// No listener: answer ICMP port unreachable, as the kernel does
		// (traceroute's termination signal).
		n.drop()
		if reply := packet.BuildICMPError(ip.Dst, packet.ICMPUnreachable, 3, p.Data); reply != nil {
			n.send(reply)
		}
		p.Release()
	case packet.ProtoTCP:
		var th packet.TCP
		payload := p.Data[ip.HeaderLen:]
		if _, err := th.Parse(payload); err != nil {
			n.drop()
			p.Release()
			return
		}
		if h, ok := n.stackTCP[th.DstPort]; ok {
			p.Escape()
			h(p.Data)
			return
		}
		if s := n.rangeSocket(th.DstPort); s != nil {
			s.enqueue(p)
			return
		}
		n.drop()
		p.Release()
	case packet.ProtoICMP:
		if n.icmpTap != nil {
			p.Escape()
			n.icmpTap(p.Data)
			return
		}
		n.drop()
		p.Release()
	default:
		n.drop()
		p.Release()
	}
}

// send transmits a fully-formed IP datagram from this node, used by both
// kernel apps and processes after their CPU cost is charged.
func (n *Node) send(dgram []byte) {
	p := packet.Get()
	p.SetData(dgram)
	n.sendPacket(p)
}

// sendPacket transmits an already-wrapped datagram, the zero-copy path
// used by in-place tunnel encapsulation (Process.SendUDPPacket).
func (n *Node) sendPacket(p *packet.Packet) {
	p.Anno.Timestamp = n.dom.Now()
	n.route(p, true)
}
