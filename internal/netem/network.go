// Package netem is the physical substrate simulator: hosts with
// calibrated CPU cost models (profile.go), links with bandwidth,
// propagation delay, and drop-tail queues, kernel IP forwarding, and
// user-space processes scheduled by internal/sched. It stands in for the
// paper's DETER testbed and PlanetLab deployment (see DESIGN.md,
// substitution 1 and 2).
package netem

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/topology"
)

// Network is a set of nodes and links on a shared executor. In classic
// mode every node shares the loop's control domain (single timeline,
// byte-identical to the historical global loop); in sharded mode each
// node gets its own sim.Domain and cross-node packet hand-offs travel
// through domain mailboxes, letting the executor run nodes in parallel.
type Network struct {
	loop *sim.Loop
	// shard assigns each node its own time domain.
	shard bool
	rng   *sim.RNG
	nodes map[string]*Node
	order []string
	links []*Link
	// alarms receive physical-topology-change upcalls (Section 3.1's
	// "exposure of underlying topology changes").
	alarms []func(ev LinkEvent)
	// onPacket, when set, observes substrate-level packet hops (node
	// receive, link transmit). It runs in the domain the hop happens in
	// and must not allocate or touch cross-domain state; telemetry uses
	// it to trace painted packets across the physical network.
	onPacket func(n *Node, event string, p *packet.Packet)
}

// OnPacket installs the substrate packet-hop observer. Driver-time only.
func (w *Network) OnPacket(fn func(n *Node, event string, p *packet.Packet)) {
	w.onPacket = fn
}

// Links returns the instantiated links in creation order. Callers must
// not mutate the slice.
func (w *Network) Links() []*Link { return w.links }

// LinkEvent reports a physical link transition for upcalls to slices.
type LinkEvent struct {
	A, B string
	Down bool
	At   time.Duration
}

// New creates an empty network on loop, with every node on the loop's
// single timeline (the classic mode).
func New(loop *sim.Loop) *Network {
	return &Network{
		loop:  loop,
		rng:   loop.RNG().Fork(),
		nodes: make(map[string]*Node),
	}
}

// NewSharded creates an empty network in which every node added gets
// its own time domain on loop's executor, so the simulation can run
// nodes on parallel workers. Topology must be complete before the
// first Run. Control actions (FailLink, ComputeRoutes, driver
// Schedule calls on the loop) run on the control domain at global
// barriers, exactly ordered against node events by the merge key.
func NewSharded(loop *sim.Loop) *Network {
	w := New(loop)
	w.shard = true
	return w
}

// Loop returns the event loop.
func (w *Network) Loop() *sim.Loop { return w.loop }

// AddNode creates a node with the given primary address and host profile.
func (w *Network) AddNode(name string, addr netip.Addr, prof Profile, schedOpt sched.Options) (*Node, error) {
	if _, dup := w.nodes[name]; dup {
		return nil, fmt.Errorf("netem: duplicate node %q", name)
	}
	dom := w.loop.Domain
	if w.shard {
		dom = w.loop.Executor().NewDomain(name)
	}
	n := &Node{
		name:     name,
		net:      w,
		dom:      dom,
		prof:     prof,
		addr:     addr,
		addrs:    map[netip.Addr]bool{addr: true},
		routes:   fib.New(),
		CPU:      sched.New(dom, schedOpt),
		udpPorts: make(map[uint16]*Socket),
		stackUDP: make(map[uint16]StackHandler),
		stackTCP: make(map[uint16]StackHandler),
	}
	w.nodes[name] = n
	w.order = append(w.order, name)
	return n, nil
}

// Node returns a node by name.
func (w *Network) Node(name string) (*Node, bool) {
	n, ok := w.nodes[name]
	return n, ok
}

// MustNode returns a node or panics; for experiment setup code.
func (w *Network) MustNode(name string) *Node {
	n, ok := w.nodes[name]
	if !ok {
		panic("netem: unknown node " + name)
	}
	return n
}

// Nodes returns node names in creation order.
func (w *Network) Nodes() []string { return append([]string(nil), w.order...) }

// AddLink connects two nodes.
func (w *Network) AddLink(cfg LinkConfig) (*Link, error) {
	a, ok := w.nodes[cfg.A]
	if !ok {
		return nil, fmt.Errorf("netem: unknown node %q", cfg.A)
	}
	b, ok := w.nodes[cfg.B]
	if !ok {
		return nil, fmt.Errorf("netem: unknown node %q", cfg.B)
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("netem: link %s-%s needs positive bandwidth", cfg.A, cfg.B)
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 256 << 10
	}
	l := &Link{cfg: cfg, net: w, a: a, b: b}
	l.dir[0] = &linkDir{link: l, rng: w.rng, dst: b, tx: linkTx{l: l, src: a}}
	l.dir[1] = &linkDir{link: l, rng: w.rng, dst: a, tx: linkTx{l: l, src: b}}
	if w.shard {
		// Each direction draws jitter from its own stream (forked at
		// construction, so deterministic) — transmit runs inside the
		// source node's domain and must not touch a shared RNG.
		l.dir[0].rng = w.rng.Fork()
		l.dir[1].rng = w.rng.Fork()
		if a.dom != b.dom {
			// Register the per-pair edge: the link's propagation delay
			// bounds how far each endpoint's published promise reaches
			// into the other's horizon (adaptive per-neighbor
			// lookahead, not a single worst-case minimum).
			a.dom.ObserveInboundLink(b.dom, cfg.Delay)
			b.dom.ObserveInboundLink(a.dom, cfg.Delay)
			// Register both directions as wire handlers so deliveries
			// can cross process shards. Every process replays AddLink in
			// the same order, so the handler ids agree everywhere.
			w.loop.Executor().BindWire(l.dir[0])
			w.loop.Executor().BindWire(l.dir[1])
		}
	}
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	w.links = append(w.links, l)
	return l, nil
}

// FindLink locates the link between two nodes.
func (w *Network) FindLink(a, b string) (*Link, bool) {
	for _, l := range w.links {
		if (l.a.name == a && l.b.name == b) || (l.a.name == b && l.b.name == a) {
			return l, true
		}
	}
	return nil, false
}

// OnLinkEvent registers an upcall for physical topology changes and
// returns a subscription id for Unsubscribe (slice teardown must detach
// its upcall so a destroyed slice can never be called back).
func (w *Network) OnLinkEvent(fn func(ev LinkEvent)) int {
	w.alarms = append(w.alarms, fn)
	return len(w.alarms) - 1
}

// Unsubscribe detaches a link-event upcall by the id OnLinkEvent
// returned. The slot is nilled (not compacted) so other ids stay valid.
func (w *Network) Unsubscribe(id int) {
	if id >= 0 && id < len(w.alarms) {
		w.alarms[id] = nil
	}
}

// FailLink takes the physical link down, notifies upcall subscribers,
// and (after igpDelay, modelling the substrate IGP) reroutes the
// underlying network around it — the automatic masking that Section 6.1
// notes VINI experiments must be able to see through.
func (w *Network) FailLink(a, b string, igpDelay time.Duration) error {
	return w.setLink(a, b, true, igpDelay)
}

// RestoreLink brings the link back and reconverges the substrate.
func (w *Network) RestoreLink(a, b string, igpDelay time.Duration) error {
	return w.setLink(a, b, false, igpDelay)
}

func (w *Network) setLink(a, b string, down bool, igpDelay time.Duration) error {
	l, ok := w.FindLink(a, b)
	if !ok {
		return fmt.Errorf("netem: no link %s-%s", a, b)
	}
	l.SetDown(down)
	ev := LinkEvent{A: a, B: b, Down: down, At: w.loop.Now()}
	for _, fn := range w.alarms {
		if fn != nil {
			fn(ev)
		}
	}
	if igpDelay >= 0 {
		w.loop.Schedule(igpDelay, func() { w.ComputeRoutes() })
	}
	return nil
}

// ComputeRoutes fills every node's kernel routing table with shortest
// paths over the current physical topology (hop count metric, delay as
// tie-break via cost scaling). Host routes are installed for every node
// address (/32), modelling the substrate's IGP.
func (w *Network) ComputeRoutes() {
	g := topology.New()
	down := map[int]bool{}
	for i, l := range w.links {
		g.AddLink(topology.Link{
			A: l.a.name, B: l.b.name,
			CostAB: uint32(l.cfg.Delay/time.Microsecond) + 1,
			Delay:  l.cfg.Delay,
		})
		if l.down {
			down[i] = true
		}
	}
	for _, name := range w.order {
		n := w.nodes[name]
		paths := g.ShortestPaths(name, down)
		var routes []fib.Route
		for dst, p := range paths {
			if dst == name || len(p.Hops) < 2 {
				continue
			}
			next := p.Hops[1]
			port := -1
			for i, l := range n.links {
				if l.down {
					continue
				}
				if (l.a == n && l.b.name == next) || (l.b == n && l.a.name == next) {
					port = i
					break
				}
			}
			if port < 0 {
				continue
			}
			dn := w.nodes[dst]
			for a := range dn.addrs {
				routes = append(routes, fib.Route{
					Prefix:  netip.PrefixFrom(a, 32),
					OutPort: port,
					Metric:  p.Cost,
					Owner:   "igp",
				})
			}
		}
		n.routes.Replace("igp", routes)
	}
}

// Run advances the simulation until the given virtual time.
func (w *Network) Run(until time.Duration) { w.loop.Run(until) }
