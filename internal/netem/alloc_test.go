package netem

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
)

// TestCrossDomainPacketPathAllocs proves the sharded per-packet path is
// allocation-free in steady state: locally-originated forward at the
// source node → typed transmit event → link serialization with lazy
// queue drain → cross-domain message train → typed delivery → kernel
// route lookup at the far node → drop (no route). The drop exit is used
// deliberately — local delivery Escapes the buffer to the consumer,
// which allocates by design; the forwarding fabric itself must not.
func TestCrossDomainPacketPathAllocs(t *testing.T) {
	x := sim.NewExecutor(21, 1)
	defer x.Shutdown()
	loop := x.Loop()
	w := NewSharded(loop)
	aAddr := netip.MustParseAddr("192.168.0.1")
	bAddr := netip.MustParseAddr("192.168.0.2")
	a, err := w.AddNode("a", aAddr, DETERProfile(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddNode("b", bAddr, DETERProfile(), sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddLink(LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// Route the probe prefix out of a toward b; b has no route for it
	// and no listener, so every packet exits through the alloc-free
	// kernel drop.
	dst := netip.MustParseAddr("10.99.0.1")
	a.routes.Replace("test", []fib.Route{{
		Prefix: netip.PrefixFrom(dst, 32), OutPort: 0, Metric: 1, Owner: "test",
	}})

	const burst = 32
	dgrams := make([][]byte, burst)
	for i := range dgrams {
		dgrams[i] = packet.BuildUDP(aAddr, dst, 5000, 7, 64, []byte("probe"))
	}
	until := time.Duration(0)
	cycle := func() {
		for i := 0; i < burst; i++ {
			packet.SetTTL(dgrams[i], 64)
			p := packet.Get()
			p.SetData(dgrams[i])
			a.route(p, true)
		}
		until += 20 * time.Millisecond
		w.Run(until)
	}
	for i := 0; i < 5; i++ {
		cycle() // warm pools, caches, trains, heaps
	}
	dropsBefore := w.MustNode("b").Drops
	avg := testing.AllocsPerRun(50, cycle)
	if got := w.MustNode("b").Drops; got == dropsBefore {
		t.Fatal("probe packets never reached b's drop path")
	}
	if perPkt := avg / burst; perPkt > 0.02 {
		t.Fatalf("cross-domain packet path allocates %.3f allocs/packet (%.1f per %d-packet burst), want 0",
			perPkt, avg, burst)
	}
}
