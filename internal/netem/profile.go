package netem

import "time"

// Profile is the host cost model. Every constant is derived from a number
// the paper reports, so the microbenchmark shapes (Tables 2-6) emerge
// from the model rather than being scripted:
//
//   - SyscallCost = 5µs is the paper's strace estimate (§5.1.1): "Click
//     calls poll, recvfrom, and sendto once, and gettimeofday three
//     times, with an estimated cost of 5µs per call".
//   - SyscallsPerPacket = 6 accordingly.
//   - CopyCostPerByte is solved from Table 2: the DETER forwarder
//     saturates one 2.8 GHz Xeon (99% CPU) at 195 Mb/s of MSS-sized
//     segments plus the reverse ACK stream, giving ≈9.5 ns/byte for
//     copy+classify+checksum work.
//   - KernelForwardCost is solved from Table 2's native row: 940 Mb/s
//     bidirectional with the Fwdr CPU 48% busy gives ≈6µs per packet.
//   - StackCost covers local socket delivery/injection.
type Profile struct {
	Name string
	// SyscallCost is the cost of one system call.
	SyscallCost time.Duration
	// SyscallsPerPacket is how many syscalls the user-space forwarder
	// spends per packet (poll + recvfrom + sendto + 3× gettimeofday).
	SyscallsPerPacket int
	// CopyCostPerByte is user-space per-byte handling cost.
	CopyCostPerByte time.Duration
	// PerPacketOverhead is fixed per-packet user-space cost beyond
	// syscalls and copying (Click element graph traversal).
	PerPacketOverhead time.Duration
	// KernelForwardCost is per-packet in-kernel IP forwarding latency
	// (and CPU) on this host.
	KernelForwardCost time.Duration
	// StackCost is the kernel cost to deliver to / accept from a local
	// socket.
	StackCost time.Duration
	// SocketBuf is the UDP receive buffer in bytes (Linux default-era
	// ~128 KiB); overflowing it while the forwarder waits for the CPU is
	// the loss mechanism behind Figure 6(a).
	SocketBuf int
	// Speed scales all CPU costs (1.0 = DETER's 2.8 GHz Xeon).
	Speed float64
}

// scaled applies the Speed factor.
func (p Profile) scaled(d time.Duration) time.Duration {
	if p.Speed == 0 {
		return d
	}
	return time.Duration(float64(d) * p.Speed)
}

// UserPacketCost is the CPU consumed by the user-space forwarder to
// receive, process, and retransmit one packet of n bytes.
func (p Profile) UserPacketCost(n int) time.Duration {
	c := time.Duration(p.SyscallsPerPacket)*p.SyscallCost +
		time.Duration(n)*p.CopyCostPerByte +
		p.PerPacketOverhead
	return p.scaled(c)
}

// DETERProfile models the paper's DETER machines: pc2800 2.8 GHz Xeons
// with Gigabit Ethernet (§5.1.1).
func DETERProfile() Profile {
	return Profile{
		Name:              "deter-pc2800",
		SyscallCost:       5 * time.Microsecond,
		SyscallsPerPacket: 6,
		CopyCostPerByte:   10 * time.Nanosecond, // ≈9.5 ns/B solved from Table 2, rounded to the ns tick
		PerPacketOverhead: 1 * time.Microsecond,
		KernelForwardCost: 4 * time.Microsecond,
		StackCost:         10 * time.Microsecond,
		SocketBuf:         128 << 10,
		Speed:             1.0,
	}
}

// PlanetLabProfile models the paper's PlanetLab nodes at Abilene PoPs:
// 1.2-1.4 GHz Pentium III machines (§5.1.2). The P-III's per-clock
// efficiency well exceeds the NetBurst Xeon's, so per-packet costs scale
// down despite half the clock rate; Table 4 — 86 Mb/s forwarded with CPU
// to spare under a 25% reservation — pins the factor at ≈0.7.
func PlanetLabProfile() Profile {
	p := DETERProfile()
	p.Name = "planetlab-piii"
	p.Speed = 0.7
	return p
}
