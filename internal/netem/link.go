package netem

import (
	"time"

	"vini/internal/packet"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// LinkConfig describes one physical link.
type LinkConfig struct {
	A, B string
	// Bandwidth in bits per second.
	Bandwidth float64
	// Delay is one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per packet,
	// modelling the residual variability real paths show (the paper's
	// native Abilene ping mdev of 0.2 ms).
	Jitter time.Duration
	// QueueBytes bounds the transmit queue in each direction (default
	// 256 KiB, a typical router interface buffer).
	QueueBytes int
}

// Link is an instantiated bidirectional link. Each direction has its own
// transmitter state.
type Link struct {
	cfg  LinkConfig
	net  *Network
	a, b *Node
	down bool
	dir  [2]*linkDir // 0: a->b, 1: b->a
}

type linkDir struct {
	link *Link
	// rng draws per-packet jitter. In classic mode this aliases the
	// network RNG (preserving the historical draw sequence); in sharded
	// mode each direction owns a forked stream, since transmit runs in
	// the source node's domain.
	rng *sim.RNG
	// busyUntil is when the transmitter finishes the current queue.
	busyUntil time.Duration
	// queued tracks bytes committed but not yet serialized.
	queued int
	// Drops counts queue-overflow losses.
	Drops uint64
	// Packets and Bytes count transmissions.
	Packets, Bytes uint64
	// lastArrival keeps delivery FIFO under per-packet jitter: a link is
	// a pipe, so a later packet never overtakes an earlier one.
	lastArrival time.Duration
	// Telemetry mirrors of the counters above; nil-safe, each direction
	// written only from the source node's domain.
	mPkts, mBytes, mDrops *telemetry.Counter
}

// Instrument attaches telemetry counters to one direction (0: A->B,
// 1: B->A). Call from the driver before traffic flows.
func (l *Link) Instrument(dir int, pkts, bytes, drops *telemetry.Counter) {
	d := l.dir[dir]
	d.mPkts, d.mBytes, d.mDrops = pkts, bytes, drops
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Down reports the failure state.
func (l *Link) Down() bool { return l.down }

// SetDown fails or restores the physical link. In-flight packets are not
// recalled (they were already on the wire).
func (l *Link) SetDown(v bool) { l.down = v }

// Stats returns per-direction counters (0: A->B, 1: B->A).
func (l *Link) Stats(dir int) (packets, bytes, drops uint64) {
	d := l.dir[dir]
	return d.Packets, d.Bytes, d.Drops
}

// transmit sends p from node src across the link. It models a FIFO
// drop-tail queue ahead of a fixed-rate serializer plus propagation
// delay, then hands the packet to the far node's receive path. It runs
// in src's time domain; when the far node lives in a different domain
// the arrival becomes a timestamped mailbox message, which is the only
// way simulated state ever crosses domains.
func (l *Link) transmit(src *Node, p *packet.Packet) {
	if l.down {
		p.Release()
		return
	}
	var d *linkDir
	var dst *Node
	switch src {
	case l.a:
		d, dst = l.dir[0], l.b
	case l.b:
		d, dst = l.dir[1], l.a
	default:
		panic("netem: transmit from node not on link")
	}
	now := src.dom.Now()
	if d.busyUntil < now {
		d.busyUntil = now
		d.queued = 0
	}
	if d.queued+p.Len() > l.cfg.QueueBytes {
		d.Drops++
		d.mDrops.Inc()
		p.Release()
		return
	}
	d.queued += p.Len()
	wire := time.Duration(float64(p.Len()*8) / l.cfg.Bandwidth * float64(time.Second))
	d.busyUntil += wire
	d.Packets++
	d.Bytes += uint64(p.Len())
	d.mPkts.Inc()
	d.mBytes.Add(uint64(p.Len()))
	if l.net.onPacket != nil {
		l.net.onPacket(src, "link-tx", p)
	}
	delay := l.cfg.Delay
	if l.cfg.Jitter > 0 {
		delay += time.Duration(d.rng.Float64() * float64(l.cfg.Jitter))
	}
	arrival := d.busyUntil + delay
	if arrival < d.lastArrival {
		arrival = d.lastArrival
	}
	d.lastArrival = arrival
	size := p.Len()
	if src.dom == dst.dom {
		src.dom.Schedule(arrival-now, func() {
			d.queued -= size
			if d.queued < 0 {
				d.queued = 0
			}
			if l.down {
				p.Release() // failed while in flight
				return
			}
			dst.receive(p, l)
		})
		return
	}
	// Sharded: the transmitter state (d.queued) belongs to src's domain
	// and the receive path to dst's, so the arrival splits into a local
	// queue-drain event and a cross-domain delivery message. Ownership
	// of p transfers with the message.
	src.dom.Schedule(arrival-now, func() {
		d.queued -= size
		if d.queued < 0 {
			d.queued = 0
		}
	})
	src.dom.SendTo(dst.dom, arrival-now, func() {
		if l.down {
			p.Release() // failed while in flight
			return
		}
		dst.receive(p, l)
	})
}
