package netem

import (
	"time"

	"vini/internal/packet"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// LinkConfig describes one physical link.
type LinkConfig struct {
	A, B string
	// Bandwidth in bits per second.
	Bandwidth float64
	// Delay is one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per packet,
	// modelling the residual variability real paths show (the paper's
	// native Abilene ping mdev of 0.2 ms).
	Jitter time.Duration
	// QueueBytes bounds the transmit queue in each direction (default
	// 256 KiB, a typical router interface buffer).
	QueueBytes int
}

// Link is an instantiated bidirectional link. Each direction has its own
// transmitter state.
type Link struct {
	cfg  LinkConfig
	net  *Network
	a, b *Node
	down bool
	dir  [2]*linkDir // 0: a->b, 1: b->a
}

type linkDir struct {
	link *Link
	// dst is the receiving node of this direction (the typed delivery
	// handler target in sharded mode).
	dst *Node
	// rng draws per-packet jitter. In classic mode this aliases the
	// network RNG (preserving the historical draw sequence); in sharded
	// mode each direction owns a forked stream, since transmit runs in
	// the source node's domain.
	rng *sim.RNG
	// busyUntil is when the transmitter finishes the current queue.
	busyUntil time.Duration
	// queued tracks bytes committed but not yet serialized.
	queued int
	// pend records in-flight (arrival, size) pairs in sharded mode; the
	// transmit path purges due entries lazily instead of scheduling one
	// queue-drain event per packet. pendHead is the ring's consumed
	// prefix.
	pend     []drainRec
	pendHead int
	// Drops counts queue-overflow losses.
	Drops uint64
	// Packets and Bytes count transmissions.
	Packets, Bytes uint64
	// lastArrival keeps delivery FIFO under per-packet jitter: a link is
	// a pipe, so a later packet never overtakes an earlier one.
	lastArrival time.Duration
	// tx is the typed forward-onto-this-link handler (see linkTx).
	tx linkTx
	// Telemetry mirrors of the counters above; nil-safe, each direction
	// written only from the source node's domain.
	mPkts, mBytes, mDrops *telemetry.Counter
}

// drainRec is one lazily-drained transmit-queue entry.
type drainRec struct {
	at   time.Duration
	size int
}

// linkTx is the typed handler for the kernel-forwarding hand-off onto a
// link: forwardOut schedules it (same-domain, through the event free
// list) after the forwarding latency, so the per-hop path costs no
// closure allocation. One lives in each linkDir, with src the node that
// transmits in that direction.
type linkTx struct {
	l   *Link
	src *Node
}

// Invoke runs in src's domain: put the packet on the wire.
func (t *linkTx) Invoke(arg any) { t.l.transmit(t.src, arg.(*packet.Packet)) }

// txFrom returns the transmit handler for packets leaving src.
func (l *Link) txFrom(src *Node) *linkTx {
	if src == l.a {
		return &l.dir[0].tx
	}
	return &l.dir[1].tx
}

// purge applies every due queue-drain entry, replicating the semantics
// of the per-packet drain events it replaces: each entry decrements
// queued, floored at zero (an idle-reset may already have zeroed it).
func (d *linkDir) purge(now time.Duration) {
	for d.pendHead < len(d.pend) && d.pend[d.pendHead].at <= now {
		d.queued -= d.pend[d.pendHead].size
		if d.queued < 0 {
			d.queued = 0
		}
		d.pendHead++
	}
	if d.pendHead == len(d.pend) {
		d.pend = d.pend[:0]
		d.pendHead = 0
	} else if d.pendHead > 64 && d.pendHead*2 > len(d.pend) {
		n := copy(d.pend, d.pend[d.pendHead:])
		d.pend = d.pend[:n]
		d.pendHead = 0
	}
}

// Invoke is the typed cross-domain delivery handler: it runs in the
// receiving node's domain at the packet's arrival time, carried by a
// pooled message train instead of a per-packet closure.
func (d *linkDir) Invoke(arg any) {
	p := arg.(*packet.Packet)
	if d.link.down {
		p.Release() // failed while in flight
		return
	}
	d.dst.receive(p, d.link)
}

// EncodeArg, DecodeArg, and DropArg make linkDir a sim.WireHandler, so a
// delivery whose receiving node lives in another process shard can ride
// the socket transport: the packet (data plus annotations) is the wire
// argument. The sender's copy is released after encoding; the owner
// shard decodes into a fresh pooled packet.
func (d *linkDir) EncodeArg(dst []byte, arg any) []byte {
	return packet.AppendWire(dst, arg.(*packet.Packet))
}

func (d *linkDir) DecodeArg(b []byte) (any, error) {
	p, err := packet.DecodeWire(b)
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (d *linkDir) DropArg(arg any) { arg.(*packet.Packet).Release() }

// Instrument attaches telemetry counters to one direction (0: A->B,
// 1: B->A). Call from the driver before traffic flows.
func (l *Link) Instrument(dir int, pkts, bytes, drops *telemetry.Counter) {
	d := l.dir[dir]
	d.mPkts, d.mBytes, d.mDrops = pkts, bytes, drops
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Down reports the failure state.
func (l *Link) Down() bool { return l.down }

// SetDown fails or restores the physical link. In-flight packets are not
// recalled (they were already on the wire).
func (l *Link) SetDown(v bool) { l.down = v }

// Stats returns per-direction counters (0: A->B, 1: B->A).
func (l *Link) Stats(dir int) (packets, bytes, drops uint64) {
	d := l.dir[dir]
	return d.Packets, d.Bytes, d.Drops
}

// transmit sends p from node src across the link. It models a FIFO
// drop-tail queue ahead of a fixed-rate serializer plus propagation
// delay, then hands the packet to the far node's receive path. It runs
// in src's time domain; when the far node lives in a different domain
// the arrival becomes a timestamped mailbox message, which is the only
// way simulated state ever crosses domains.
func (l *Link) transmit(src *Node, p *packet.Packet) {
	if l.down {
		p.Release()
		return
	}
	var d *linkDir
	var dst *Node
	switch src {
	case l.a:
		d, dst = l.dir[0], l.b
	case l.b:
		d, dst = l.dir[1], l.a
	default:
		panic("netem: transmit from node not on link")
	}
	now := src.dom.Now()
	if src.dom != dst.dom {
		// Sharded: apply queue drains that came due before this
		// transmit (they ran as their own events on the classic path).
		d.purge(now)
	}
	if d.busyUntil < now {
		d.busyUntil = now
		d.queued = 0
	}
	if d.queued+p.Len() > l.cfg.QueueBytes {
		d.Drops++
		d.mDrops.Inc()
		p.Release()
		return
	}
	d.queued += p.Len()
	wire := time.Duration(float64(p.Len()*8) / l.cfg.Bandwidth * float64(time.Second))
	d.busyUntil += wire
	d.Packets++
	d.Bytes += uint64(p.Len())
	d.mPkts.Inc()
	d.mBytes.Add(uint64(p.Len()))
	if l.net.onPacket != nil {
		l.net.onPacket(src, "link-tx", p)
	}
	delay := l.cfg.Delay
	if l.cfg.Jitter > 0 {
		delay += time.Duration(d.rng.Float64() * float64(l.cfg.Jitter))
	}
	arrival := d.busyUntil + delay
	if arrival < d.lastArrival {
		arrival = d.lastArrival
	}
	d.lastArrival = arrival
	size := p.Len()
	if src.dom == dst.dom {
		src.dom.Schedule(arrival-now, func() {
			d.queued -= size
			if d.queued < 0 {
				d.queued = 0
			}
			if l.down {
				p.Release() // failed while in flight
				return
			}
			dst.receive(p, l)
		})
		return
	}
	// Sharded: the transmitter state (d.queued) belongs to src's domain
	// and the receive path to dst's. The queue drain is recorded for
	// lazy application at the next transmit (no event at all), and the
	// delivery rides a typed message train — one pooled event in dst,
	// zero allocations, one inbox lock per flushed train rather than
	// per packet. Ownership of p transfers with the message.
	d.pend = append(d.pend, drainRec{at: arrival, size: size})
	src.dom.Send(dst.dom, arrival-now, d, p)
}
