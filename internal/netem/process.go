package netem

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/packet"
	"vini/internal/sched"
)

// Process is a user-space program (a slice's Click forwarder, an OpenVPN
// server) running on a node under the CPU scheduler. Packets destined to
// its sockets queue in per-socket receive buffers; the process's task is
// woken and, when the scheduler runs it, drains the buffers paying the
// profile's per-packet cost — the paper's poll/recvfrom/sendto/
// gettimeofday budget. The gap between wake and run is the scheduling
// latency whose tail overflows buffers in Figure 6(a).
type Process struct {
	Name string
	node *Node
	task *sched.Task
	// socks in creation order, drained round-robin.
	socks []*Socket
	// handler consumes one packet when the process runs.
	pending int
	// paused drops inbound traffic at the socket (slice pause); the
	// scheduler task is suspended in step.
	paused bool
	// closed marks a torn-down process; Close is idempotent.
	closed bool
}

// Socket is a UDP socket bound by a process.
type Socket struct {
	proc    *Process
	port    uint16
	handler func(p *packet.Packet)
	buf     []*packet.Packet
	bufB    int
	// closed rejects enqueues and makes an in-flight delivery drop its
	// packet instead of running the handler (teardown).
	closed bool
	// Drops counts receive-buffer overflows (the Figure 6(a) metric).
	Drops uint64
	// Received counts accepted packets.
	Received uint64
}

// ProcessConfig configures scheduling for a process.
type ProcessConfig struct {
	Name string
	// RT and Share map to the PL-VINI knobs: real-time priority and CPU
	// reservation (Share also models the default fair share).
	RT    bool
	Share float64
	// Strict selects the non-work-conserving allocation of §6.2: the
	// process gets exactly its share, never idle surplus.
	Strict bool
}

// NewProcess registers a process on the node.
func (n *Node) NewProcess(cfg ProcessConfig) *Process {
	p := &Process{Name: cfg.Name, node: n}
	p.task = n.CPU.NewTask(sched.TaskConfig{
		Name:   cfg.Name,
		RT:     cfg.RT,
		Share:  cfg.Share,
		Strict: cfg.Strict,
		Work:   p.work,
	})
	n.procs = append(n.procs, p)
	return p
}

// Task exposes the scheduler task (for wake-latency statistics).
func (p *Process) Task() *sched.Task { return p.task }

// Node returns the hosting node.
func (p *Process) Node() *Node { return p.node }

// OpenUDP binds port and registers handler, called in process context
// (i.e. after scheduling) for each received packet.
func (p *Process) OpenUDP(port uint16, handler func(pkt *packet.Packet)) (*Socket, error) {
	n := p.node
	if _, busy := n.udpPorts[port]; busy {
		return nil, fmt.Errorf("netem: %s UDP port %d already bound", n.name, port)
	}
	if _, busy := n.stackUDP[port]; busy {
		return nil, fmt.Errorf("netem: %s UDP port %d already listened", n.name, port)
	}
	s := &Socket{proc: p, port: port, handler: handler}
	n.udpPorts[port] = s
	p.socks = append(p.socks, s)
	return s, nil
}

// OpenPortRange binds a contiguous UDP/TCP port span to the process, the
// capture an egress node needs so NAT return traffic from external hosts
// re-enters the slice's Click forwarder (Section 4.2.3).
func (p *Process) OpenPortRange(lo, hi uint16, handler func(pkt *packet.Packet)) (*Socket, error) {
	if lo > hi {
		return nil, fmt.Errorf("netem: bad port range %d-%d", lo, hi)
	}
	s := &Socket{proc: p, handler: handler}
	p.socks = append(p.socks, s)
	p.node.portRanges = append(p.node.portRanges, portRange{lo: lo, hi: hi, sock: s})
	return s, nil
}

// OpenTap creates the slice's tap0 device: a socket that receives the
// kernel packets matching prefix (10.0.0.0/8 in PL-VINI).
func (p *Process) OpenTap(prefix netip.Prefix, handler func(pkt *packet.Packet)) *Socket {
	s := &Socket{proc: p, handler: handler}
	p.socks = append(p.socks, s)
	p.node.AddTapRoute(prefix, s)
	return s
}

// enqueue adds a packet to the socket buffer, waking the process; tail
// drops when the receive buffer is full.
func (s *Socket) enqueue(p *packet.Packet) {
	if s.closed || s.proc.paused {
		// A closed socket has no consumer; a paused process models a
		// stopped slice whose kernel buffers fill and tail-drop. Either
		// way the packet dies here.
		s.Drops++
		p.Release()
		return
	}
	prof := s.proc.node.prof
	if s.bufB+p.Len() > prof.SocketBuf {
		s.Drops++
		p.Release()
		return
	}
	s.buf = append(s.buf, p)
	s.bufB += p.Len()
	s.proc.pending++
	s.Received++
	s.proc.task.Wake()
}

// SendUDP transmits payload from the process's port to dst — Click's
// sendto on a tunnel socket. The CPU cost was charged when the packet
// that triggered this send was processed. The payload is copied (into
// pooled headroom), so callers may reuse it.
func (p *Process) SendUDP(srcPort uint16, dst netip.AddrPort, payload []byte, ttl uint8) {
	pkt := packet.Get()
	pkt.SetData(payload)
	p.SendUDPPacket(srcPort, dst, pkt, ttl)
}

// SendUDPPacket is SendUDP for a packet the caller owns: the UDP and IPv4
// headers are written into the packet's headroom in place (no copy when
// the packet has DefaultHeadroom available, as tunnel-decapsulated
// packets do). Ownership transfers to the substrate.
func (p *Process) SendUDPPacket(srcPort uint16, dst netip.AddrPort, pkt *packet.Packet, ttl uint8) {
	src := p.node.addr
	packet.EncapUDP(pkt, src, dst.Addr(), srcPort, dst.Port())
	packet.EncapIPv4(pkt, &packet.IPv4{TTL: ttl, Proto: packet.ProtoUDP, Src: src, Dst: dst.Addr()})
	p.node.sendPacket(pkt)
}

// SendIP transmits a raw IP datagram from this process (tap0 writes).
func (p *Process) SendIP(dgram []byte) {
	p.node.send(dgram)
}

// work is the scheduler WorkFunc: it consumes the CPU cost of the oldest
// buffered packet and delivers it to the handler when that cost has
// elapsed, so per-packet processing time appears as forwarding latency
// (the +130 µs the paper's Table 3 measures) and not just as CPU load.
func (p *Process) work(budget time.Duration) (time.Duration, bool) {
	s := p.nextReady()
	if s == nil {
		p.pending = 0
		return 0, false
	}
	pkt := s.buf[0]
	cost := p.node.prof.UserPacketCost(pkt.Len())
	if cost > budget {
		cost = budget // a grain is the scheduler's accounting floor
	}
	s.buf = s.buf[1:]
	s.bufB -= pkt.Len()
	p.pending--
	p.node.dom.Schedule(cost, func() {
		if s.closed {
			// The process was torn down while this delivery was in
			// flight; the handler's world no longer exists.
			pkt.Release()
			return
		}
		s.handler(pkt)
	})
	return cost, p.pending > 0
}

// SetPaused freezes or thaws the process: inbound packets tail-drop at
// its sockets and the scheduler task is parked (so buffered work stops
// too). Must run in the node's domain or at a barrier.
func (p *Process) SetPaused(v bool) {
	if p.closed || p.paused == v {
		return
	}
	p.paused = v
	p.task.SetSuspended(v)
}

// Close tears the process down: every socket is closed and its buffered
// packets returned to the pool, port bindings and tap/port-range
// captures are removed from the node, the process is deregistered, and
// its scheduler task removed. Idempotent. Must run in the node's domain
// or at a barrier. Deliveries already paid for (scheduled by work) drain
// harmlessly: the closed flag makes them release their packet.
func (p *Process) Close() {
	if p.closed {
		return
	}
	p.closed = true
	n := p.node
	for _, s := range p.socks {
		s.closed = true
		if s.port != 0 && n.udpPorts[s.port] == s {
			delete(n.udpPorts, s.port)
		}
		for _, pkt := range s.buf {
			pkt.Release()
		}
		s.buf = nil
		s.bufB = 0
	}
	p.pending = 0
	taps := n.taps[:0]
	for _, t := range n.taps {
		if t.sock.proc != p {
			taps = append(taps, t)
		}
	}
	n.taps = taps
	ranges := n.portRanges[:0]
	for _, r := range n.portRanges {
		if r.sock.proc != p {
			ranges = append(ranges, r)
		}
	}
	n.portRanges = ranges
	for i, x := range n.procs {
		if x == p {
			n.procs = append(n.procs[:i], n.procs[i+1:]...)
			break
		}
	}
	n.CPU.RemoveTask(p.task)
}

// Closed reports whether Close has run.
func (p *Process) Closed() bool { return p.closed }

// nextReady returns the socket with the oldest waiting packet, so service
// order matches arrival order across sockets (what poll gives Click).
func (p *Process) nextReady() *Socket {
	var best *Socket
	var bestT time.Duration
	for _, s := range p.socks {
		if len(s.buf) == 0 {
			continue
		}
		t := s.buf[0].Anno.Timestamp
		if best == nil || t < bestT {
			best, bestT = s, t
		}
	}
	return best
}
