package netem

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// threeNodeNet builds src -- fwdr -- dst with the given profile/links.
func threeNodeNet(t *testing.T, prof Profile, bw float64, delay time.Duration) (*Network, *Node, *Node, *Node) {
	t.Helper()
	loop := sim.NewLoop(1)
	w := New(loop)
	src, err := w.AddNode("src", addr("192.168.1.1"), prof, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := w.AddNode("fwdr", addr("192.168.1.2"), prof, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := w.AddNode("dst", addr("192.168.1.3"), prof, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddLink(LinkConfig{A: "src", B: "fwdr", Bandwidth: bw, Delay: delay}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddLink(LinkConfig{A: "fwdr", B: "dst", Bandwidth: bw, Delay: delay}); err != nil {
		t.Fatal(err)
	}
	w.ComputeRoutes()
	return w, src, fwd, dst
}

func TestKernelForwardingDelivers(t *testing.T) {
	w, src, _, dst := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	var got [][]byte
	if err := dst.StackListenUDP(7000, func(d []byte) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	d := packet.BuildUDP(src.Addr(), dst.Addr(), 5000, 7000, 64, []byte("hello"))
	src.StackSend(d)
	w.Run(10 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("delivered = %d, want 1", len(got))
	}
	var ip packet.IPv4
	if _, err := ip.Parse(got[0]); err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Fatalf("TTL = %d, want 63 (one kernel hop)", ip.TTL)
	}
}

func TestLatencyMatchesLinkModel(t *testing.T) {
	prof := DETERProfile()
	w, src, _, dst := threeNodeNet(t, prof, 1e9, 100*time.Microsecond)
	var arrived time.Duration
	dst.StackListenUDP(7000, func(d []byte) { arrived = w.Loop().Now() })
	payload := make([]byte, 1000-packet.IPv4HeaderLen-packet.UDPHeaderLen)
	d := packet.BuildUDP(src.Addr(), dst.Addr(), 5000, 7000, 64, payload)
	src.StackSend(d)
	w.Run(10 * time.Millisecond)
	// Expected: 2 links × (wire 8µs for 1000B at 1Gb/s + 100µs prop) +
	// stack costs + kernel forward (2× fwd cost: charge + latency).
	min := 2 * (8*time.Microsecond + 100*time.Microsecond)
	max := min + 100*time.Microsecond
	if arrived < min || arrived > max {
		t.Fatalf("arrival = %v, want in [%v, %v]", arrived, min, max)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	a, _ := w.AddNode("a", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	b, _ := w.AddNode("b", addr("10.0.0.2"), DETERProfile(), sched.Options{})
	l, _ := w.AddLink(LinkConfig{A: "a", B: "b", Bandwidth: 1e6, Delay: time.Millisecond, QueueBytes: 3000})
	w.ComputeRoutes()
	got := 0
	b.StackListenUDP(7, func([]byte) { got++ })
	for i := 0; i < 10; i++ {
		a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), 1, 7, 64, make([]byte, 972)))
	}
	loop.Run(time.Second)
	_, _, drops := l.Stats(0)
	if drops == 0 {
		t.Fatal("no queue drops on overloaded slow link")
	}
	if got == 0 || got >= 10 {
		t.Fatalf("delivered %d of 10", got)
	}
	if int(drops)+got != 10 {
		t.Fatalf("drops %d + delivered %d != 10", drops, got)
	}
}

func TestLinkDownBlocksTraffic(t *testing.T) {
	w, src, _, dst := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	got := 0
	dst.StackListenUDP(7, func([]byte) { got++ })
	l, _ := w.FindLink("src", "fwdr")
	l.SetDown(true)
	src.StackSend(packet.BuildUDP(src.Addr(), dst.Addr(), 1, 7, 64, nil))
	w.Run(10 * time.Millisecond)
	if got != 0 {
		t.Fatal("packet crossed a failed link")
	}
	l.SetDown(false)
	src.StackSend(packet.BuildUDP(src.Addr(), dst.Addr(), 1, 7, 64, nil))
	w.Run(20 * time.Millisecond)
	if got != 1 {
		t.Fatalf("restored link delivered %d", got)
	}
}

func TestFailLinkUpcallAndReroute(t *testing.T) {
	// Triangle: a-b direct plus a-c-b detour.
	loop := sim.NewLoop(1)
	w := New(loop)
	a, _ := w.AddNode("a", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	b, _ := w.AddNode("b", addr("10.0.0.2"), DETERProfile(), sched.Options{})
	w.AddNode("c", addr("10.0.0.3"), DETERProfile(), sched.Options{})
	w.AddLink(LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: time.Millisecond})
	w.AddLink(LinkConfig{A: "a", B: "c", Bandwidth: 1e9, Delay: time.Millisecond})
	w.AddLink(LinkConfig{A: "c", B: "b", Bandwidth: 1e9, Delay: time.Millisecond})
	w.ComputeRoutes()
	var events []LinkEvent
	w.OnLinkEvent(func(ev LinkEvent) { events = append(events, ev) })
	got := 0
	b.StackListenUDP(7, func([]byte) { got++ })

	if err := w.FailLink("a", "b", 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Down {
		t.Fatalf("upcall events = %+v", events)
	}
	// Before substrate reconvergence, traffic to b is blackholed.
	a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), 1, 7, 64, nil))
	w.Run(40 * time.Millisecond)
	if got != 0 {
		t.Fatal("traffic delivered before reroute")
	}
	// After reconvergence it flows via c.
	w.Run(60 * time.Millisecond)
	a.StackSend(packet.BuildUDP(a.Addr(), b.Addr(), 1, 7, 64, nil))
	w.Run(100 * time.Millisecond)
	if got != 1 {
		t.Fatalf("rerouted delivery = %d, want 1", got)
	}
	if err := w.RestoreLink("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Down {
		t.Fatalf("restore upcall missing: %+v", events)
	}
}

func TestProcessSocketAndCost(t *testing.T) {
	w, src, fwd, _ := threeNodeNet(t, DETERProfile(), 1e9, 100*time.Microsecond)
	proc := fwd.NewProcess(ProcessConfig{Name: "click", Share: 0.25})
	var handled []time.Duration
	if _, err := proc.OpenUDP(33000, func(p *packet.Packet) {
		handled = append(handled, w.Loop().Now())
	}); err != nil {
		t.Fatal(err)
	}
	src.StackSend(packet.BuildUDP(src.Addr(), fwd.Addr(), 33000, 33000, 64, make([]byte, 1400)))
	w.Run(50 * time.Millisecond)
	if len(handled) != 1 {
		t.Fatalf("handled = %d", len(handled))
	}
	// The handler runs only after the profile's per-packet CPU cost.
	cost := DETERProfile().UserPacketCost(1400 + packet.UDPHeaderLen + packet.IPv4HeaderLen)
	if cost < 30*time.Microsecond {
		t.Fatalf("per-packet cost suspiciously low: %v", cost)
	}
	if proc.Task().Used() < cost {
		t.Fatalf("task used %v < packet cost %v", proc.Task().Used(), cost)
	}
}

func TestSocketBufferOverflow(t *testing.T) {
	// A hogged CPU delays the process; packets beyond the socket buffer
	// are dropped — Figure 6(a)'s mechanism.
	loop := sim.NewLoop(3)
	w := New(loop)
	prof := DETERProfile()
	prof.SocketBuf = 3000 // tiny: two 1428B packets
	n, _ := w.AddNode("n", addr("10.0.0.1"), prof, sched.Options{})
	m, _ := w.AddNode("m", addr("10.0.0.2"), DETERProfile(), sched.Options{})
	w.AddLink(LinkConfig{A: "m", B: "n", Bandwidth: 1e9, Delay: 10 * time.Microsecond})
	w.ComputeRoutes()
	// Saturate the CPU with an always-busy hog so the process waits.
	hogBusy := true
	hog := n.CPU.NewTask(sched.TaskConfig{Name: "hog", Share: 0.5,
		Work: func(b time.Duration) (time.Duration, bool) { return b, hogBusy }})
	hog.Wake()
	proc := n.NewProcess(ProcessConfig{Name: "click", Share: 0.001})
	got := 0
	sock, _ := proc.OpenUDP(33000, func(p *packet.Packet) { got++ })
	for i := 0; i < 10; i++ {
		m.StackSend(packet.BuildUDP(m.Addr(), n.Addr(), 1, 33000, 64, make([]byte, 1400)))
	}
	loop.Run(2 * time.Second)
	hogBusy = false
	loop.Run(3 * time.Second)
	if sock.Drops == 0 {
		t.Fatal("no socket overflow drops under CPU contention")
	}
	if got+int(sock.Drops) != 10 {
		t.Fatalf("got %d + drops %d != 10", got, sock.Drops)
	}
}

func TestTapRouting(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	n, _ := w.AddNode("n", addr("198.32.154.50"), DETERProfile(), sched.Options{})
	proc := n.NewProcess(ProcessConfig{Name: "click", Share: 0.25})
	var viaTap []*packet.Packet
	proc.OpenTap(netip.MustParsePrefix("10.0.0.0/8"), func(p *packet.Packet) {
		viaTap = append(viaTap, p)
	})
	// A locally-originated packet to 10/8 goes to the tap (and thus the
	// slice's Click), not the kernel route table.
	n.StackSend(packet.BuildUDP(addr("10.1.87.2"), addr("10.1.2.3"), 1, 2, 64, nil))
	loop.Run(10 * time.Millisecond)
	if len(viaTap) != 1 {
		t.Fatalf("tap got %d packets", len(viaTap))
	}
}

func TestProcessPortConflicts(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	n, _ := w.AddNode("n", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	p1 := n.NewProcess(ProcessConfig{Name: "a"})
	p2 := n.NewProcess(ProcessConfig{Name: "b"})
	if _, err := p1.OpenUDP(5000, func(*packet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.OpenUDP(5000, func(*packet.Packet) {}); err == nil {
		t.Fatal("duplicate bind allowed (VNET isolation violated)")
	}
	if err := n.StackListenUDP(5000, func([]byte) {}); err == nil {
		t.Fatal("stack listener allowed over process socket")
	}
}

func TestKernelUtilizationAccounting(t *testing.T) {
	w, src, fwd, dst := threeNodeNet(t, DETERProfile(), 1e9, 10*time.Microsecond)
	dst.StackListenUDP(7, func([]byte) {})
	for i := 0; i < 1000; i++ {
		src.StackSend(packet.BuildUDP(src.Addr(), dst.Addr(), 1, 7, 64, make([]byte, 1000)))
	}
	w.Run(100 * time.Millisecond)
	if fwd.KernelUtilization() <= 0 {
		t.Fatal("kernel forwarding not accounted")
	}
	fwd.ResetAccounting()
	if fwd.KernelUtilization() != 0 {
		t.Fatal("accounting not reset")
	}
}

func TestUserPacketCostFormula(t *testing.T) {
	p := DETERProfile()
	got := p.UserPacketCost(1500)
	want := 6*5*time.Microsecond + 1500*10*time.Nanosecond + 1*time.Microsecond
	if got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	pl := PlanetLabProfile()
	if pl.UserPacketCost(1500) >= got {
		t.Fatal("PlanetLab profile should be slightly cheaper (P-III vs NetBurst)")
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	loop := sim.NewLoop(1)
	w := New(loop)
	w.AddNode("x", addr("10.0.0.1"), DETERProfile(), sched.Options{})
	if _, err := w.AddNode("x", addr("10.0.0.2"), DETERProfile(), sched.Options{}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := w.AddLink(LinkConfig{A: "x", B: "ghost", Bandwidth: 1e9}); err == nil {
		t.Fatal("link to unknown node accepted")
	}
	if _, err := w.AddLink(LinkConfig{A: "x", B: "x", Bandwidth: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}
