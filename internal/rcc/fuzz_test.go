package rcc

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the router-configuration parser.
// Parse must never panic: it either returns a config or a line-numbered
// error. Valid parses are pushed further through Check and
// BuildTopology, which must also stay panic-free on any single config.
func FuzzParse(f *testing.F) {
	for _, text := range AbileneConfigs() {
		f.Add(text)
	}
	f.Add("hostname r1\ninterface ge-0/0/0\n ip address 10.0.0.1/30\n ip ospf cost 5\n")
	f.Add("hostname r2\nrouter ospf\n hello-interval 5\n dead-interval 20\n")
	f.Add("hostname r3\ninterface xe-0\n description \"to CHIC\"\n delay 5ms\n bandwidth 1e9\n")
	f.Add("! comment only\n# another\n")
	f.Add("hostname")           // missing argument
	f.Add("description naked")  // outside interface
	f.Add("ip address 10.0.0.1") // not a prefix
	f.Add("interface a\ninterface b\nhostname h\n")
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := Parse(text)
		if err != nil {
			return
		}
		if cfg.Hostname == "" {
			t.Fatalf("Parse accepted a config with no hostname")
		}
		// A parsed config must survive static analysis and topology
		// extraction without panicking.
		probs := Check([]*RouterConfig{cfg})
		_ = probs
		_, _ = BuildTopology([]*RouterConfig{cfg})
		// Re-parsing the rendering of what we understood must agree —
		// cheap idempotence guard against field-order parsing bugs.
		if strings.TrimSpace(text) == "" {
			t.Fatalf("Parse accepted empty input")
		}
	})
}
