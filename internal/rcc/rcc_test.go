package rcc

import (
	"strings"
	"testing"
	"time"

	"vini/internal/topology"
)

const sampleConfig = `
hostname dnvr
!
interface so-0/0/0
 description "to kscy"
 ip address 10.9.1.1/30
 ip ospf cost 639
 delay 5.5ms
 bandwidth 10000000000
!
interface so-0/1/0
 description "to snva"
 ip address 10.9.1.5/30
 ip ospf cost 1295
!
router ospf
 hello-interval 5
 dead-interval 10
`

func TestParseSample(t *testing.T) {
	rc, err := Parse(sampleConfig)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Hostname != "dnvr" {
		t.Fatalf("hostname = %q", rc.Hostname)
	}
	if len(rc.Interfaces) != 2 {
		t.Fatalf("interfaces = %d", len(rc.Interfaces))
	}
	i0 := rc.Interfaces[0]
	if i0.Name != "so-0/0/0" || i0.Description != "to kscy" ||
		i0.OSPFCost != 639 || i0.Delay != 5500*time.Microsecond ||
		i0.Addr.String() != "10.9.1.1" || i0.Prefix.String() != "10.9.1.0/30" ||
		i0.Bandwidth != 10e9 {
		t.Fatalf("iface 0 = %+v", i0)
	}
	if rc.HelloInterval != 5 || rc.DeadInterval != 10 {
		t.Fatalf("timers = %d/%d", rc.HelloInterval, rc.DeadInterval)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"interface x\n ip address banana",
		"hostname a\ninterface x\n ip ospf cost zero",
		"hostname a\n description \"orphan\"",
		"hostname a\nfrobnicate",
		"interface x\n ip address 10.0.0.1/30", // no hostname
		"hostname a\ninterface x\n delay -5ms",
		"hostname a\nrouter ospf\n hello-interval x",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("config %q parsed without error", c)
		}
	}
}

func TestCheckFindsFaults(t *testing.T) {
	a, _ := Parse("hostname a\ninterface i\n ip address 10.9.0.1/30\n ip ospf cost 5")
	b, _ := Parse("hostname b\ninterface i\n ip address 10.9.0.2/30\n ip ospf cost 7")
	probs := Check([]*RouterConfig{a, b})
	found := false
	for _, p := range probs {
		if strings.Contains(p.Msg, "asymmetric") {
			found = true
		}
	}
	if !found {
		t.Fatalf("asymmetric cost not detected: %v", probs)
	}

	// Dangling link.
	c, _ := Parse("hostname c\ninterface i\n ip address 10.9.9.1/30\n ip ospf cost 5")
	probs = Check([]*RouterConfig{c})
	if len(probs) == 0 || !strings.Contains(probs[0].Msg, "dangling") {
		t.Fatalf("dangling link not detected: %v", probs)
	}

	// Duplicate address.
	d1, _ := Parse("hostname d1\ninterface i\n ip address 10.9.8.1/30\n ip ospf cost 5")
	d2, _ := Parse("hostname d2\ninterface i\n ip address 10.9.8.1/30\n ip ospf cost 5")
	probs = Check([]*RouterConfig{d1, d2})
	dup := false
	for _, p := range probs {
		if strings.Contains(p.Msg, "also configured") {
			dup = true
		}
	}
	if !dup {
		t.Fatalf("duplicate address not detected: %v", probs)
	}
}

func TestAbileneConfigsRoundTrip(t *testing.T) {
	files := AbileneConfigs()
	if len(files) != 11 {
		t.Fatalf("configs = %d, want 11", len(files))
	}
	var configs []*RouterConfig
	for code, text := range files {
		rc, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		if rc.Hostname != code {
			t.Fatalf("hostname %q for file %q", rc.Hostname, code)
		}
		configs = append(configs, rc)
	}
	if probs := Check(configs); len(probs) != 0 {
		t.Fatalf("generated configs have faults: %v", probs)
	}
	g, err := BuildTopology(configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Links()) != 14 || len(g.Nodes()) != 11 {
		t.Fatalf("rebuilt topology: %d nodes %d links", len(g.Nodes()), len(g.Links()))
	}
	// Shortest paths across the rebuilt graph must match the reference
	// topology exactly (translating codes back to PoP names).
	ref := topology.Abilene()
	for _, srcPop := range ref.Nodes() {
		src := topology.AbileneRouterCode[srcPop]
		refPaths := ref.ShortestPaths(srcPop, nil)
		gotPaths := g.ShortestPaths(src, nil)
		for _, dstPop := range ref.Nodes() {
			if dstPop == srcPop {
				continue
			}
			dst := topology.AbileneRouterCode[dstPop]
			if gotPaths[dst].Cost != refPaths[dstPop].Cost {
				t.Fatalf("%s->%s cost %d, want %d", src, dst,
					gotPaths[dst].Cost, refPaths[dstPop].Cost)
			}
			if gotPaths[dst].Delay != refPaths[dstPop].Delay {
				t.Fatalf("%s->%s delay %v, want %v", src, dst,
					gotPaths[dst].Delay, refPaths[dstPop].Delay)
			}
		}
	}
	h, d, err := Timers(configs)
	if err != nil || h != 5*time.Second || d != 10*time.Second {
		t.Fatalf("timers = %v/%v err=%v", h, d, err)
	}
}

func TestBuildTopologyRejectsFaulty(t *testing.T) {
	a, _ := Parse("hostname a\ninterface i\n ip address 10.9.0.1/30\n ip ospf cost 5")
	if _, err := BuildTopology([]*RouterConfig{a}); err == nil {
		t.Fatal("faulty configs accepted")
	}
}

func TestTimersInconsistent(t *testing.T) {
	a, _ := Parse("hostname a\nrouter ospf\n hello-interval 5")
	b, _ := Parse("hostname b\nrouter ospf\n hello-interval 10")
	if _, _, err := Timers([]*RouterConfig{a, b}); err == nil {
		t.Fatal("inconsistent timers accepted")
	}
}

func TestPopForCode(t *testing.T) {
	pop, ok := PopForCode("dnvr")
	if !ok || pop != topology.Denver {
		t.Fatalf("PopForCode(dnvr) = %q, %v", pop, ok)
	}
	if _, ok := PopForCode("zzzz"); ok {
		t.Fatal("unknown code resolved")
	}
}
