// Package rcc plays the role rcc (the router configuration checker)
// plays in PL-VINI (Sections 4 and 6.2): it parses router configuration
// files from an operational network, statically checks them for faults,
// extracts the topology and OSPF weights, and drives the generation of
// the matching VINI experiment — "PL-VINI's current machinery for
// mirroring the Abilene topology automatically generates the necessary
// XORP and Click configurations ... from the actual Abilene routing
// configuration".
//
// The accepted configuration dialect is a compact IOS-like format:
//
//	hostname dnvr
//	!
//	interface so-0/0/0
//	 description "to kscy"
//	 ip address 10.9.1.1/30
//	 ip ospf cost 639
//	 delay 5.5ms
//	!
//	router ospf
//	 hello-interval 5
//	 dead-interval 10
//
// The non-standard "delay" line carries the measured propagation delay a
// VINI embedding needs; real configurations omit it.
package rcc

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"vini/internal/topology"
)

// InterfaceConfig is one parsed interface stanza.
type InterfaceConfig struct {
	Name        string
	Description string
	Addr        netip.Addr
	Prefix      netip.Prefix
	OSPFCost    uint32
	Delay       time.Duration
	Bandwidth   float64
}

// RouterConfig is one parsed router configuration file.
type RouterConfig struct {
	Hostname   string
	Interfaces []InterfaceConfig
	// HelloInterval/DeadInterval are the router's OSPF timers in seconds.
	HelloInterval, DeadInterval int
}

// Parse reads one router configuration.
func Parse(text string) (*RouterConfig, error) {
	rc := &RouterConfig{}
	var curIf *InterfaceConfig
	inOSPF := false
	flush := func() {
		if curIf != nil {
			rc.Interfaces = append(rc.Interfaces, *curIf)
			curIf = nil
		}
	}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("rcc: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case fields[0] == "hostname" && len(fields) == 2:
			flush()
			inOSPF = false
			rc.Hostname = fields[1]
		case fields[0] == "interface" && len(fields) == 2:
			flush()
			inOSPF = false
			curIf = &InterfaceConfig{Name: fields[1]}
		case fields[0] == "router" && len(fields) == 2 && fields[1] == "ospf":
			flush()
			inOSPF = true
		case fields[0] == "description":
			if curIf == nil {
				return nil, fail("description outside interface")
			}
			curIf.Description = strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "description")), `"`)
		case fields[0] == "ip" && len(fields) >= 3 && fields[1] == "address":
			if curIf == nil {
				return nil, fail("ip address outside interface")
			}
			p, err := netip.ParsePrefix(fields[2])
			if err != nil {
				return nil, fail("bad address %q", fields[2])
			}
			curIf.Addr = p.Addr()
			curIf.Prefix = p.Masked()
		case fields[0] == "ip" && len(fields) == 4 && fields[1] == "ospf" && fields[2] == "cost":
			if curIf == nil {
				return nil, fail("ospf cost outside interface")
			}
			c, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil || c == 0 {
				return nil, fail("bad cost %q", fields[3])
			}
			curIf.OSPFCost = uint32(c)
		case fields[0] == "delay" && len(fields) == 2:
			if curIf == nil {
				return nil, fail("delay outside interface")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d < 0 {
				return nil, fail("bad delay %q", fields[1])
			}
			curIf.Delay = d
		case fields[0] == "bandwidth" && len(fields) == 2:
			if curIf == nil {
				return nil, fail("bandwidth outside interface")
			}
			b, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || b <= 0 {
				return nil, fail("bad bandwidth %q", fields[1])
			}
			curIf.Bandwidth = b
		case inOSPF && fields[0] == "hello-interval" && len(fields) == 2:
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return nil, fail("bad hello-interval %q", fields[1])
			}
			rc.HelloInterval = v
		case inOSPF && fields[0] == "dead-interval" && len(fields) == 2:
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return nil, fail("bad dead-interval %q", fields[1])
			}
			rc.DeadInterval = v
		default:
			return nil, fail("unrecognized statement %q", line)
		}
	}
	flush()
	if rc.Hostname == "" {
		return nil, fmt.Errorf("rcc: configuration has no hostname")
	}
	return rc, nil
}

// Problem is one fault found by static analysis, in rcc's two classes:
// route-validity and visibility faults reduce here to link-level
// inconsistencies between the two ends of each subnet.
type Problem struct {
	Router string
	Iface  string
	Msg    string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s %s: %s", p.Router, p.Iface, p.Msg)
}

// Check statically analyses a set of router configurations.
func Check(configs []*RouterConfig) []Problem {
	var out []Problem
	type end struct {
		router, iface string
		cfg           InterfaceConfig
	}
	bySubnet := map[netip.Prefix][]end{}
	seenAddr := map[netip.Addr]string{}
	for _, rc := range configs {
		for _, ifc := range rc.Interfaces {
			if !ifc.Addr.IsValid() {
				out = append(out, Problem{rc.Hostname, ifc.Name, "no ip address"})
				continue
			}
			if prev, dup := seenAddr[ifc.Addr]; dup {
				out = append(out, Problem{rc.Hostname, ifc.Name,
					fmt.Sprintf("address %v also configured on %s", ifc.Addr, prev)})
			}
			seenAddr[ifc.Addr] = rc.Hostname
			bySubnet[ifc.Prefix] = append(bySubnet[ifc.Prefix], end{rc.Hostname, ifc.Name, ifc})
		}
	}
	subnets := make([]netip.Prefix, 0, len(bySubnet))
	for p := range bySubnet {
		subnets = append(subnets, p)
	}
	sort.Slice(subnets, func(i, j int) bool { return subnets[i].String() < subnets[j].String() })
	for _, p := range subnets {
		ends := bySubnet[p]
		switch {
		case len(ends) == 1:
			out = append(out, Problem{ends[0].router, ends[0].iface,
				fmt.Sprintf("subnet %v has no far end (dangling link)", p)})
		case len(ends) == 2:
			if ends[0].cfg.OSPFCost != ends[1].cfg.OSPFCost {
				out = append(out, Problem{ends[0].router, ends[0].iface,
					fmt.Sprintf("asymmetric OSPF cost %d vs %d on %s",
						ends[0].cfg.OSPFCost, ends[1].cfg.OSPFCost, ends[1].router)})
			}
		default:
			out = append(out, Problem{ends[0].router, ends[0].iface,
				fmt.Sprintf("subnet %v has %d ends (point-to-point expected)", p, len(ends))})
		}
	}
	return out
}

// BuildTopology assembles a topology graph by matching interfaces that
// share a /30, carrying OSPF costs and measured delays onto the links.
func BuildTopology(configs []*RouterConfig) (*topology.Graph, error) {
	if probs := Check(configs); len(probs) > 0 {
		return nil, fmt.Errorf("rcc: configuration faults: %v", probs[0])
	}
	g := topology.New()
	type end struct {
		router string
		cfg    InterfaceConfig
	}
	bySubnet := map[netip.Prefix][]end{}
	for _, rc := range configs {
		g.AddNode(rc.Hostname)
		for _, ifc := range rc.Interfaces {
			bySubnet[ifc.Prefix] = append(bySubnet[ifc.Prefix], end{rc.Hostname, ifc})
		}
	}
	subnets := make([]netip.Prefix, 0, len(bySubnet))
	for p := range bySubnet {
		subnets = append(subnets, p)
	}
	sort.Slice(subnets, func(i, j int) bool { return subnets[i].String() < subnets[j].String() })
	for _, p := range subnets {
		ends := bySubnet[p]
		if len(ends) != 2 {
			continue // Check guarantees this cannot happen
		}
		bw := ends[0].cfg.Bandwidth
		if bw == 0 {
			bw = 10e9
		}
		if err := g.AddLink(topology.Link{
			A: ends[0].router, B: ends[1].router,
			CostAB: ends[0].cfg.OSPFCost, CostBA: ends[1].cfg.OSPFCost,
			Delay: maxDur(ends[0].cfg.Delay, ends[1].cfg.Delay), Bandwidth: bw,
		}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Timers extracts the (consistent) OSPF timers across the configs,
// defaulting to the paper's 5/10 seconds.
func Timers(configs []*RouterConfig) (hello, dead time.Duration, err error) {
	h, d := 0, 0
	for _, rc := range configs {
		if rc.HelloInterval != 0 {
			if h != 0 && h != rc.HelloInterval {
				return 0, 0, fmt.Errorf("rcc: inconsistent hello-interval (%d vs %d)", h, rc.HelloInterval)
			}
			h = rc.HelloInterval
		}
		if rc.DeadInterval != 0 {
			if d != 0 && d != rc.DeadInterval {
				return 0, 0, fmt.Errorf("rcc: inconsistent dead-interval (%d vs %d)", d, rc.DeadInterval)
			}
			d = rc.DeadInterval
		}
	}
	if h == 0 {
		h = 5
	}
	if d == 0 {
		d = 10
	}
	return time.Duration(h) * time.Second, time.Duration(d) * time.Second, nil
}
