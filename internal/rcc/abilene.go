package rcc

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vini/internal/topology"
)

// AbileneConfigs renders the eleven Abilene router configurations (one
// per PoP, keyed by router code) from the published topology — the
// "configuration state of the eleven Abilene routers" the paper extracts
// to drive its Section 5.2 experiment. Parsing them back through this
// package reproduces topology.Abilene() exactly, which is what the rcc
// tests assert.
func AbileneConfigs() map[string]string {
	g := topology.Abilene()
	// Assign one /30 per link out of 10.9.0.0/16 in a stable order.
	links := g.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	type ifaceLine struct {
		peer  string
		addr  string
		cost  uint32
		delay time.Duration
		bw    float64
	}
	byRouter := map[string][]ifaceLine{}
	for i, l := range links {
		subnet := i * 4
		aAddr := fmt.Sprintf("10.9.%d.%d/30", subnet/256, subnet%256+1)
		bAddr := fmt.Sprintf("10.9.%d.%d/30", subnet/256, subnet%256+2)
		byRouter[l.A] = append(byRouter[l.A], ifaceLine{peer: l.B, addr: aAddr,
			cost: l.CostAB, delay: l.Delay, bw: l.Bandwidth})
		byRouter[l.B] = append(byRouter[l.B], ifaceLine{peer: l.A, addr: bAddr,
			cost: l.CostBA, delay: l.Delay, bw: l.Bandwidth})
	}
	out := make(map[string]string, len(g.Nodes()))
	for _, pop := range g.Nodes() {
		code := topology.AbileneRouterCode[pop]
		var b strings.Builder
		fmt.Fprintf(&b, "hostname %s\n", code)
		for i, ifc := range byRouter[pop] {
			peerCode := topology.AbileneRouterCode[ifc.peer]
			fmt.Fprintf(&b, "!\ninterface so-0/%d/0\n", i)
			fmt.Fprintf(&b, " description \"to %s\"\n", peerCode)
			fmt.Fprintf(&b, " ip address %s\n", ifc.addr)
			fmt.Fprintf(&b, " ip ospf cost %d\n", ifc.cost)
			fmt.Fprintf(&b, " delay %s\n", ifc.delay)
			fmt.Fprintf(&b, " bandwidth %.0f\n", ifc.bw)
		}
		b.WriteString("!\nrouter ospf\n hello-interval 5\n dead-interval 10\n")
		out[code] = b.String()
	}
	return out
}

// PopForCode inverts topology.AbileneRouterCode.
func PopForCode(code string) (string, bool) {
	for pop, c := range topology.AbileneRouterCode {
		if c == code {
			return pop, true
		}
	}
	return "", false
}
