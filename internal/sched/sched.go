// Package sched models the PlanetLab node CPU scheduler that PL-VINI
// extends (Section 4.1.2 of the paper): VServer-style per-slice token
// buckets give each slice a fair share (or an explicit CPU reservation)
// of the processor, the scheduler is work-conserving (idle cycles go to
// whoever is runnable), and slices boosted to Linux real-time priority
// preempt any non-real-time task as soon as they wake.
//
// The model runs on the discrete-event loop from internal/sim. Tasks are
// callback-driven: when the scheduler selects a task it grants CPU in
// small "grains" (the preemption granularity); the task's WorkFunc does
// its processing and reports how much CPU it actually consumed. The
// emergent behaviours — scheduling latency spiking when many slices
// contend, a 25% reservation restoring throughput, real-time priority
// removing wake-up latency — are exactly the effects Tables 4-6 and
// Figure 6 of the paper measure.
package sched

import (
	"fmt"
	"time"

	"vini/internal/sim"
	"vini/internal/telemetry"
)

// WorkFunc performs up to budget of CPU work. It returns the CPU time
// actually consumed (0 <= used <= budget) and whether the task still has
// work pending (stays runnable). A WorkFunc that returns (0, true) is
// treated as asleep to keep the loop live.
type WorkFunc func(budget time.Duration) (used time.Duration, more bool)

// Options configures a CPU.
type Options struct {
	// Quantum is the timeslice a selected task may hold the CPU before
	// rotating to the next runnable task. Default 10ms.
	Quantum time.Duration
	// Grain is the preemption granularity: a higher-priority wakeup waits
	// at most this long. Default 500µs.
	Grain time.Duration
	// TokenCap is the per-task token bucket capacity: the horizon over
	// which shares and reservations are enforced. The default 300ms
	// lets a reserved slice burst well beyond its rate in the short
	// term (what lets the paper's PL-VINI forwarder reach 40% CPU on a
	// 25% reservation when the machine has idle capacity) while still
	// throttling a runaway real-time process.
	TokenCap time.Duration
}

func (o *Options) setDefaults() {
	if o.Quantum <= 0 {
		o.Quantum = 10 * time.Millisecond
	}
	if o.Grain <= 0 {
		o.Grain = 500 * time.Microsecond
	}
	if o.TokenCap <= 0 {
		o.TokenCap = 300 * time.Millisecond
	}
}

// TaskConfig describes one schedulable entity (a slice's process).
type TaskConfig struct {
	Name string
	// RT marks the task SCHED_RR real-time: it preempts any non-RT task
	// at the next grain boundary. Per the paper, RT tasks remain subject
	// to their share/reservation, so a runaway RT task cannot lock the
	// machine.
	RT bool
	// Share is the token fill rate as a fraction of one CPU: the
	// PlanetLab fair share for ordinary slices, or the value of a CPU
	// reservation (e.g. 0.25). Zero means the task only ever runs on
	// work-conserved idle cycles.
	Share float64
	// Strict makes the allocation non-work-conserving: the task runs
	// only against its tokens, receiving "neither less nor more" CPU
	// than its share — the repeatability scheduler of the paper's
	// Section 6.2.
	Strict bool
	// Work is invoked with a CPU budget when the task is scheduled.
	Work WorkFunc
}

// Task is a schedulable entity registered with a CPU.
type Task struct {
	cpu *CPU
	cfg TaskConfig
	id  int
	// runnable means the task has (or believes it has) pending work.
	runnable bool
	queued   bool
	// suspended parks the task: it keeps its registration and queue
	// position but is never selected until resumed (slice pause).
	suspended bool
	// removed marks a task deregistered via RemoveTask; Wake becomes
	// inert so a stale reference cannot resurrect it.
	removed bool
	// tokens is the CPU-time bucket; lazily refilled.
	tokens     time.Duration
	lastRefill time.Duration
	// quantumLeft is the remaining timeslice of the current selection.
	quantumLeft time.Duration
	// used accumulates total CPU consumed, for CPU% reporting.
	used time.Duration
	// wakeAt marks when the task last became runnable after sleeping,
	// and waiting whether that wake's latency is still unrecorded.
	wakeAt  time.Duration
	waiting bool
	// WakeStat records per-wake scheduling latency in milliseconds —
	// the quantity whose tail causes the paper's Figure 6(a) losses.
	WakeStat sim.Stats
	// Telemetry mirrors (nil-safe): cumulative CPU nanoseconds consumed
	// and the wake-to-dispatch latency distribution.
	mUsed *telemetry.Counter
	mWake *telemetry.Histogram
}

// Instrument attaches telemetry handles to the task: a cumulative
// CPU-time counter (nanoseconds; unlike Used it survives
// ResetAccounting, so callers measure windows by deltas) and a wake
// latency histogram. Driver-time only.
func (t *Task) Instrument(usedNS *telemetry.Counter, wake *telemetry.Histogram) {
	t.mUsed, t.mWake = usedNS, wake
}

// Name returns the task's configured name.
func (t *Task) Name() string { return t.cfg.Name }

// Used returns total CPU time consumed.
func (t *Task) Used() time.Duration { return t.used }

// SetRT changes the task's real-time flag at runtime (PL-VINI toggles
// this per experiment).
func (t *Task) SetRT(rt bool) { t.cfg.RT = rt }

// SetShare changes the token fill rate (fair share vs 25% reservation).
func (t *Task) SetShare(s float64) { t.cfg.Share = s }

// SetSuspended parks or resumes the task. A suspended task is never
// selected (its class is ineligible) and never preempts; if it is
// mid-quantum the current grain completes and the rotation parks it.
// Resuming a runnable task re-queues it and kicks the scheduler.
func (t *Task) SetSuspended(v bool) {
	if t.suspended == v || t.removed {
		return
	}
	t.suspended = v
	if v {
		return
	}
	c := t.cpu
	if t.runnable && !t.queued && c.current != t {
		t.queued = true
		c.queue = append(c.queue, t)
	}
	c.kick()
}

// Suspended reports whether the task is parked.
func (t *Task) Suspended() bool { return t.suspended }

// CPU is one simulated processor.
type CPU struct {
	clock   sim.Clock
	opt     Options
	tasks   []*Task
	queue   []*Task // FIFO arrival order of runnable, unselected tasks
	current *Task
	// busy accounts total non-idle time for utilization reporting.
	busy    time.Duration
	started time.Duration
	running bool
	nextID  int
	// refillKick guards the pending wake-up that re-runs the scheduler
	// when a strict (non-work-conserving) task's bucket refills.
	refillKick bool
	// mBusy is the telemetry mirror of busy (cumulative, nil-safe).
	mBusy *telemetry.Counter
}

// Instrument attaches the CPU's cumulative busy-time counter
// (nanoseconds). Driver-time only.
func (c *CPU) Instrument(busyNS *telemetry.Counter) { c.mBusy = busyNS }

// New returns a CPU bound to a domain-scoped clock (or a Loop).
func New(clock sim.Clock, opt Options) *CPU {
	opt.setDefaults()
	return &CPU{clock: clock, opt: opt, started: clock.Now()}
}

// Options returns the CPU's effective options.
func (c *CPU) Options() Options { return c.opt }

// NewTask registers a task. Tasks start asleep; call Wake when work
// arrives.
func (c *CPU) NewTask(cfg TaskConfig) *Task {
	if cfg.Work == nil {
		panic("sched: task without WorkFunc")
	}
	t := &Task{cpu: c, cfg: cfg, id: c.nextID, tokens: c.opt.TokenCap,
		lastRefill: c.clock.Now()}
	c.nextID++
	c.tasks = append(c.tasks, t)
	return t
}

// RemoveTask deregisters a task (slice teardown). The task is dropped
// from the registration list and the run queue, a pending wake can no
// longer resurrect it, and if it was the current selection the in-flight
// grain completes but nothing further is charged to it.
func (c *CPU) RemoveTask(t *Task) {
	if t == nil || t.removed {
		return
	}
	t.removed = true
	t.runnable = false
	for i, x := range c.tasks {
		if x == t {
			c.tasks = append(c.tasks[:i], c.tasks[i+1:]...)
			break
		}
	}
	if t.queued {
		for i, x := range c.queue {
			if x == t {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
		t.queued = false
	}
	if c.current == t {
		// grainDone tolerates a nil current: it simply picks the next
		// queued task when the in-flight grain timer pops.
		c.current = nil
	}
}

// Utilization returns the busy fraction of the CPU since accounting start.
func (c *CPU) Utilization() float64 {
	elapsed := c.clock.Now() - c.started
	if elapsed <= 0 {
		return 0
	}
	return float64(c.busy) / float64(elapsed)
}

// TaskUtilization returns the fraction of wall time task has consumed
// since accounting start.
func (c *CPU) TaskUtilization(t *Task) float64 {
	elapsed := c.clock.Now() - c.started
	if elapsed <= 0 {
		return 0
	}
	return float64(t.used) / float64(elapsed)
}

// ResetAccounting zeroes utilization counters (between experiment phases).
func (c *CPU) ResetAccounting() {
	c.started = c.clock.Now()
	c.busy = 0
	for _, t := range c.tasks {
		t.used = 0
		t.WakeStat = sim.Stats{}
	}
}

// Wake marks the task runnable. Safe to call redundantly; the overlay
// calls it on every packet arrival.
func (t *Task) Wake() {
	if t.removed {
		return
	}
	c := t.cpu
	if !t.runnable {
		t.runnable = true
		if !t.waiting {
			t.wakeAt = c.clock.Now()
			t.waiting = true
		}
	}
	if !t.queued && c.current != t {
		t.queued = true
		c.queue = append(c.queue, t)
	}
	c.kick()
}

func (t *Task) refill() {
	now := t.cpu.clock.Now()
	dt := now - t.lastRefill
	t.lastRefill = now
	if t.cfg.Share <= 0 {
		return
	}
	t.tokens += time.Duration(float64(dt) * t.cfg.Share)
	if t.tokens > t.cpu.opt.TokenCap {
		t.tokens = t.cpu.opt.TokenCap
	}
}

// class returns the task's current scheduling class: 0 = real-time with
// tokens, 1 = tokens available, 2 = work-conserving only, 3 =
// ineligible (a strict task with an empty bucket never runs on idle
// cycles; suspended and removed tasks are always ineligible). Lower is
// better.
func (t *Task) class() int {
	t.refill()
	if t.suspended || t.removed {
		return 3
	}
	switch {
	case t.cfg.RT && t.tokens > 0:
		return 0
	case t.tokens > 0:
		return 1
	case t.cfg.Strict:
		return 3
	default:
		return 2
	}
}

// kick starts the scheduler if the CPU is idle.
func (c *CPU) kick() {
	if !c.running {
		c.dispatch()
	}
}

// pickLocked selects the best queued task: lowest class, FIFO within
// class. It removes the selection from the queue.
func (c *CPU) pickQueued() *Task {
	bestIdx, bestClass := -1, 3
	for i, t := range c.queue {
		if cl := t.class(); cl < bestClass {
			bestIdx, bestClass = i, cl
		}
	}
	if bestIdx < 0 {
		return nil
	}
	t := c.queue[bestIdx]
	c.queue = append(c.queue[:bestIdx], c.queue[bestIdx+1:]...)
	t.queued = false
	return t
}

// dispatch runs the scheduler: select (or continue) a task and execute
// one grain of its work, then schedule the grain's completion.
func (c *CPU) dispatch() {
	for {
		t := c.current
		if t == nil {
			t = c.pickQueued()
			if t == nil {
				c.running = false
				c.armRefillKick()
				return
			}
			c.current = t
			t.quantumLeft = c.opt.Quantum
			if t.waiting {
				t.waiting = false
				lat := c.clock.Now() - t.wakeAt
				t.WakeStat.AddDuration(lat)
				t.mWake.Observe(lat)
			}
		}
		budget := c.opt.Grain
		if t.quantumLeft < budget {
			budget = t.quantumLeft
		}
		used, more := t.cfg.Work(budget)
		if used < 0 {
			used = 0
		}
		if used > budget {
			used = budget
		}
		t.used += used
		t.tokens -= used
		t.quantumLeft -= used
		t.runnable = more && used > 0 // (0, true) treated as asleep
		c.busy += used
		t.mUsed.Add(uint64(used))
		c.mBusy.Add(uint64(used))
		if used == 0 {
			// Nothing consumed: the task sleeps; pick another.
			c.current = nil
			continue
		}
		c.running = true
		c.clock.Schedule(used, c.grainDone)
		return
	}
}

// grainDone handles rotation/preemption decisions after a grain.
func (c *CPU) grainDone() {
	cur := c.current
	if cur != nil {
		rotate := !cur.runnable || cur.quantumLeft <= 0 || cur.suspended
		if !rotate && len(c.queue) > 0 {
			// Mid-quantum preemption is a real-time privilege only; an
			// ordinary slice waking with tokens still waits for the
			// current timeslice to end, which is exactly the scheduling
			// latency the paper measures on default-share PlanetLab.
			curClass := cur.class()
			for _, w := range c.queue {
				if w.class() == 0 && curClass != 0 {
					rotate = true
					break
				}
			}
		}
		if rotate {
			c.current = nil
			if cur.runnable && !cur.queued && !cur.suspended {
				cur.queued = true
				c.queue = append(c.queue, cur)
			}
		}
	}
	c.running = false
	c.dispatch()
}

// armRefillKick schedules a scheduler re-run for when the earliest
// queued strict task will have tokens again (a strict task is never run
// on idle cycles, so nothing else would wake the CPU for it).
func (c *CPU) armRefillKick() {
	if c.refillKick {
		return
	}
	var wait time.Duration = -1
	for _, t := range c.queue {
		if !t.cfg.Strict || t.cfg.Share <= 0 || t.suspended || t.removed {
			continue
		}
		t.refill()
		need := -t.tokens
		if need < 0 {
			need = 0
		}
		w := time.Duration(float64(need)/t.cfg.Share) + c.opt.Grain
		if wait < 0 || w < wait {
			wait = w
		}
	}
	if wait < 0 {
		return
	}
	c.refillKick = true
	c.clock.Schedule(wait, func() {
		c.refillKick = false
		c.kick()
	})
}

// String summarises scheduler state for debugging.
func (c *CPU) String() string {
	cur := "idle"
	if c.current != nil {
		cur = c.current.cfg.Name
	}
	return fmt.Sprintf("cpu{current=%s queued=%d util=%.1f%%}", cur, len(c.queue), 100*c.Utilization())
}
