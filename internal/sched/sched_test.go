package sched

import (
	"math"
	"testing"
	"time"

	"vini/internal/sim"
)

// hogTask returns a config for an always-runnable CPU-bound task.
func hogTask(name string, share float64) TaskConfig {
	return TaskConfig{Name: name, Share: share,
		Work: func(budget time.Duration) (time.Duration, bool) { return budget, true }}
}

func TestSingleTaskGetsFullCPU(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	task := cpu.NewTask(hogTask("solo", 0.1))
	task.Wake()
	loop.Run(time.Second)
	u := cpu.TaskUtilization(task)
	if u < 0.99 {
		t.Fatalf("solo task utilization = %.3f, want ~1 (work-conserving)", u)
	}
}

func TestFairShareBetweenEqualHogs(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	a := cpu.NewTask(hogTask("a", 0.05))
	b := cpu.NewTask(hogTask("b", 0.05))
	a.Wake()
	b.Wake()
	loop.Run(2 * time.Second)
	ua, ub := cpu.TaskUtilization(a), cpu.TaskUtilization(b)
	if math.Abs(ua-ub) > 0.05 {
		t.Fatalf("unfair split: a=%.3f b=%.3f", ua, ub)
	}
	if ua+ub < 0.99 {
		t.Fatalf("CPU not fully used: %.3f", ua+ub)
	}
}

func TestReservationGuaranteesShare(t *testing.T) {
	loop := sim.NewLoop(1)
	// Short token cap so the guarantee reaches steady state within the
	// 2-second window.
	cpu := New(loop, Options{TokenCap: 30 * time.Millisecond})
	// One reserved task vs 8 hogs with tiny fair shares.
	reserved := cpu.NewTask(hogTask("reserved", 0.25))
	var hogs []*Task
	for i := 0; i < 8; i++ {
		h := cpu.NewTask(hogTask("hog", 0.02))
		h.Wake()
		hogs = append(hogs, h)
	}
	reserved.Wake()
	loop.Run(2 * time.Second)
	// Quantum-boundary waits cost a little; the guarantee is approximate
	// at this granularity (a real scheduler's is too).
	if u := cpu.TaskUtilization(reserved); u < 0.22 {
		t.Fatalf("reserved task got %.3f, want >= 0.22", u)
	}
}

func TestWorkConservingWithoutTokens(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	// Zero-share task alone on the machine still runs (idle cycles).
	task := cpu.NewTask(hogTask("zero", 0))
	task.Wake()
	loop.Run(time.Second)
	if u := cpu.TaskUtilization(task); u < 0.99 {
		t.Fatalf("work conservation failed: %.3f", u)
	}
}

func TestRTPreemptsQuickly(t *testing.T) {
	loop := sim.NewLoop(1)
	opt := Options{Grain: 500 * time.Microsecond, Quantum: 10 * time.Millisecond}
	cpu := New(loop, opt)
	for i := 0; i < 5; i++ {
		cpu.NewTask(hogTask("hog", 0.05)).Wake()
	}
	// An RT task woken periodically must be scheduled within one grain.
	var rt *Task
	var maxWait time.Duration
	rt = cpu.NewTask(TaskConfig{Name: "rt", RT: true, Share: 0.25,
		Work: func(budget time.Duration) (time.Duration, bool) {
			return 50 * time.Microsecond, false
		}})
	var tick func()
	wakes := 0
	tick = func() {
		if wakes >= 100 {
			return
		}
		wakes++
		rt.Wake()
		loop.Schedule(7*time.Millisecond, tick)
	}
	loop.Schedule(time.Millisecond, tick)
	loop.Run(time.Second)
	if rt.WakeStat.N() < 90 {
		t.Fatalf("rt ran %d times, want ~100", rt.WakeStat.N())
	}
	maxWait = time.Duration(rt.WakeStat.Max() * float64(time.Millisecond))
	if maxWait > 600*time.Microsecond {
		t.Fatalf("RT wake latency max = %v, want <= grain (+rounding)", maxWait)
	}
}

func TestNonRTWaitsBehindHogs(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{TokenCap: 30 * time.Millisecond})
	for i := 0; i < 5; i++ {
		cpu.NewTask(hogTask("hog", 0.05)).Wake()
	}
	// A no-token interactive-style task sees multi-millisecond waits.
	lat := cpu.NewTask(TaskConfig{Name: "lat", Share: 0,
		Work: func(budget time.Duration) (time.Duration, bool) {
			return 50 * time.Microsecond, false
		}})
	var tick func()
	wakes := 0
	tick = func() {
		if wakes >= 50 {
			return
		}
		wakes++
		lat.Wake()
		loop.Schedule(17*time.Millisecond, tick)
	}
	loop.Schedule(time.Millisecond, tick)
	loop.Run(2 * time.Second)
	if lat.WakeStat.N() < 40 {
		t.Fatalf("task ran %d times", lat.WakeStat.N())
	}
	if lat.WakeStat.Mean() < 1.0 {
		t.Fatalf("mean wait = %.3f ms; expected contention delays", lat.WakeStat.Mean())
	}
}

func TestTokensBoundRTTask(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	// Paper: "a real-time process that runs amok cannot lock the machine".
	amok := cpu.NewTask(TaskConfig{Name: "amok", RT: true, Share: 0.25,
		Work: func(budget time.Duration) (time.Duration, bool) { return budget, true }})
	fair := cpu.NewTask(hogTask("fair", 0.25))
	amok.Wake()
	fair.Wake()
	loop.Run(2 * time.Second)
	ua, uf := cpu.TaskUtilization(amok), cpu.TaskUtilization(fair)
	if uf < 0.3 {
		t.Fatalf("runaway RT task starved fair task: rt=%.3f fair=%.3f", ua, uf)
	}
}

func TestSleepingTaskConsumesNothing(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	task := cpu.NewTask(TaskConfig{Name: "sleeper", Share: 0.5,
		Work: func(budget time.Duration) (time.Duration, bool) { return 0, false }})
	task.Wake() // spurious wake, no work
	loop.Run(100 * time.Millisecond)
	if task.Used() != 0 {
		t.Fatalf("sleeper consumed %v", task.Used())
	}
	if cpu.Utilization() != 0 {
		t.Fatalf("cpu busy %.3f with no work", cpu.Utilization())
	}
}

func TestZeroTrueWorkFuncDoesNotSpin(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	task := cpu.NewTask(TaskConfig{Name: "buggy", Share: 0.5,
		Work: func(budget time.Duration) (time.Duration, bool) { return 0, true }})
	task.Wake()
	// Must terminate.
	loop.Run(10 * time.Millisecond)
}

func TestResetAccounting(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	task := cpu.NewTask(hogTask("x", 0.1))
	task.Wake()
	loop.Run(time.Second)
	cpu.ResetAccounting()
	if task.Used() != 0 || cpu.Utilization() != 0 {
		t.Fatal("accounting not reset")
	}
	loop.Run(2 * time.Second)
	if u := cpu.TaskUtilization(task); u < 0.99 {
		t.Fatalf("post-reset utilization = %.3f", u)
	}
}

func TestHogDutyCycle(t *testing.T) {
	loop := sim.NewLoop(42)
	cpu := New(loop, Options{})
	h := StartHog(loop, cpu, HogConfig{
		Name: "bg", Share: 0.05,
		MeanBusy: 20 * time.Millisecond, MeanIdle: 60 * time.Millisecond,
		RNG: loop.RNG().Fork(),
	})
	loop.Run(20 * time.Second)
	u := cpu.TaskUtilization(h.Task())
	// Duty cycle 20/(20+60) = 0.25 and the machine is otherwise idle, so
	// utilization should be near 25%.
	if u < 0.15 || u > 0.40 {
		t.Fatalf("hog utilization = %.3f, want ~0.25", u)
	}
	h.Stop()
	cpu.ResetAccounting()
	loop.Run(loop.Now() + 5*time.Second)
	if u := cpu.TaskUtilization(h.Task()); u > 0.01 {
		t.Fatalf("stopped hog still ran: %.3f", u)
	}
}

func TestManyHogsShareFairly(t *testing.T) {
	loop := sim.NewLoop(7)
	cpu := New(loop, Options{})
	var tasks []*Task
	for i := 0; i < 4; i++ {
		task := cpu.NewTask(hogTask("h", 0.05))
		task.Wake()
		tasks = append(tasks, task)
	}
	loop.Run(4 * time.Second)
	for _, task := range tasks {
		u := cpu.TaskUtilization(task)
		if u < 0.20 || u > 0.30 {
			t.Fatalf("4-way split off: %.3f", u)
		}
	}
}

// TestStrictNonWorkConserving verifies the §6.2 repeatability scheduler:
// a strict task on an otherwise idle machine receives its share and no
// more, while an ordinary task would soak up the whole CPU.
func TestStrictNonWorkConserving(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{TokenCap: 20 * time.Millisecond})
	strict := cpu.NewTask(TaskConfig{Name: "strict", Share: 0.25, Strict: true,
		Work: func(b time.Duration) (time.Duration, bool) { return b, true }})
	strict.Wake()
	loop.Run(5 * time.Second)
	u := cpu.TaskUtilization(strict)
	if u < 0.22 || u > 0.28 {
		t.Fatalf("strict task got %.3f of an idle CPU, want ~0.25 exactly", u)
	}
	// And it keeps making progress (no starvation deadlock).
	used := strict.Used()
	loop.Run(10 * time.Second)
	if strict.Used() <= used {
		t.Fatal("strict task starved after bucket exhaustion")
	}
}

// TestStrictUnaffectedByContention: the same allocation with and without
// competing load — the "repeatable experiments" property.
func TestStrictUnaffectedByContention(t *testing.T) {
	measure := func(withHogs bool) float64 {
		loop := sim.NewLoop(1)
		cpu := New(loop, Options{TokenCap: 20 * time.Millisecond})
		strict := cpu.NewTask(TaskConfig{Name: "strict", Share: 0.2, Strict: true,
			Work: func(b time.Duration) (time.Duration, bool) { return b, true }})
		strict.Wake()
		if withHogs {
			for i := 0; i < 3; i++ {
				cpu.NewTask(hogTask("hog", 0.05)).Wake()
			}
		}
		loop.Run(5 * time.Second)
		return cpu.TaskUtilization(strict)
	}
	idle := measure(false)
	loaded := measure(true)
	diff := idle - loaded
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.04 {
		t.Fatalf("strict allocation varies with load: %.3f vs %.3f", idle, loaded)
	}
}

func TestSuspendResume(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	a := cpu.NewTask(hogTask("a", 0.05))
	b := cpu.NewTask(hogTask("b", 0.05))
	a.Wake()
	b.Wake()
	loop.Run(time.Second)
	a.SetSuspended(true)
	if !a.Suspended() {
		t.Fatal("SetSuspended(true) did not stick")
	}
	cpu.ResetAccounting()
	loop.Run(2 * time.Second)
	if u := cpu.TaskUtilization(a); u > 0.01 {
		t.Fatalf("suspended task still ran: %.3f", u)
	}
	if u := cpu.TaskUtilization(b); u < 0.99 {
		t.Fatalf("remaining task did not absorb the CPU: %.3f", u)
	}
	// Waking a suspended task must not run it either.
	a.Wake()
	cpu.ResetAccounting()
	loop.Run(4 * time.Second)
	if u := cpu.TaskUtilization(a); u > 0.01 {
		t.Fatalf("suspended task ran after Wake: %.3f", u)
	}
	a.SetSuspended(false)
	cpu.ResetAccounting()
	loop.Run(6 * time.Second)
	ua, ub := cpu.TaskUtilization(a), cpu.TaskUtilization(b)
	if math.Abs(ua-ub) > 0.05 {
		t.Fatalf("resume did not restore fair split: a=%.3f b=%.3f", ua, ub)
	}
}

func TestSuspendedStrictTaskDoesNotSpinRefillKicks(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	s := cpu.NewTask(TaskConfig{Name: "strict", Share: 0.25, Strict: true,
		Work: func(budget time.Duration) (time.Duration, bool) { return budget, true }})
	s.Wake()
	loop.Run(time.Second)
	s.SetSuspended(true)
	s.Wake() // re-queues, but must not arm refill kicks forever
	loop.Run(2 * time.Second)
	// With only a suspended strict task queued, the loop must drain
	// instead of self-perpetuating refill kicks.
	if n := loop.Pending(); n != 0 {
		t.Fatalf("refill kicks pending for suspended strict task: %d", n)
	}
}

func TestRemoveTask(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	a := cpu.NewTask(hogTask("a", 0.05))
	b := cpu.NewTask(hogTask("b", 0.05))
	a.Wake()
	b.Wake()
	loop.Run(time.Second)
	cpu.RemoveTask(a)
	before := a.Used() // ResetAccounting no longer covers a: it is deregistered
	cpu.ResetAccounting()
	loop.Run(2 * time.Second)
	if d := a.Used() - before; d > 0 {
		t.Fatalf("removed task still ran: %v", d)
	}
	if u := cpu.TaskUtilization(b); u < 0.99 {
		t.Fatalf("survivor did not get the CPU: %.3f", u)
	}
	// A stale Wake reference must be inert.
	a.Wake()
	if a.queued {
		t.Fatal("Wake resurrected a removed task")
	}
	cpu.RemoveTask(a) // idempotent
	if len(cpu.tasks) != 1 {
		t.Fatalf("task list has %d entries, want 1", len(cpu.tasks))
	}
}

func TestRemoveCurrentTaskMidQuantum(t *testing.T) {
	loop := sim.NewLoop(1)
	cpu := New(loop, Options{})
	a := cpu.NewTask(hogTask("a", 0.05))
	b := cpu.NewTask(hogTask("b", 0.05))
	a.Wake()
	b.Wake()
	// Stop while a grain is in flight: the grain timer is pending and
	// current is (probably) set.
	loop.Run(3 * time.Millisecond)
	cpu.RemoveTask(cpu.current)
	loop.Run(time.Second)
	// Whichever task survived owns the machine; no panic, no stall.
	total := cpu.TaskUtilization(a) + cpu.TaskUtilization(b)
	if total < 0.9 {
		t.Fatalf("CPU stalled after removing current task: %.3f", total)
	}
}
