package sched

import (
	"time"

	"vini/internal/sim"
)

// HogConfig describes a background slice that alternates between bursts
// of CPU-bound work and idle periods — the "other users on a shared
// system" whose contention the PlanetLab microbenchmarks (Section 5.1.2)
// measure. Burst and idle durations are drawn from bounded Pareto
// distributions, matching the heavy-tailed behaviour of batch slices.
type HogConfig struct {
	Name string
	// Share is the hog slice's fair share (token fill rate).
	Share float64
	// MeanBusy and MeanIdle set the duty cycle.
	MeanBusy, MeanIdle time.Duration
	// Seed stream for this hog.
	RNG *sim.RNG
}

// Hog is a running background slice.
type Hog struct {
	task *Task
	clock sim.Clock
	cfg  HogConfig
	busy bool
	stop bool
}

// StartHog registers and starts a background slice on cpu.
func StartHog(clock sim.Clock, cpu *CPU, cfg HogConfig) *Hog {
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(1)
	}
	h := &Hog{clock: clock, cfg: cfg}
	h.task = cpu.NewTask(TaskConfig{
		Name:  cfg.Name,
		Share: cfg.Share,
		Work: func(budget time.Duration) (time.Duration, bool) {
			if !h.busy {
				return 0, false
			}
			return budget, true // CPU-bound while busy
		},
	})
	h.scheduleBusy()
	return h
}

// Task exposes the underlying scheduler task, for utilization queries.
func (h *Hog) Task() *Task { return h.task }

// Stop permanently idles the hog.
func (h *Hog) Stop() {
	h.stop = true
	h.busy = false
}

func (h *Hog) scheduleBusy() {
	if h.stop {
		return
	}
	idle := h.draw(h.cfg.MeanIdle)
	h.clock.Schedule(idle, func() {
		if h.stop {
			return
		}
		h.busy = true
		h.task.Wake()
		busy := h.draw(h.cfg.MeanBusy)
		h.clock.Schedule(busy, func() {
			h.busy = false
			h.scheduleBusy()
		})
	})
}

// draw samples a bounded Pareto with the given mean (alpha 1.5, bounded
// to [mean/5, mean*8] which keeps the sample mean near the target).
func (h *Hog) draw(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	m := float64(mean)
	v := h.cfg.RNG.Pareto(1.5, m/5, m*8)
	// The bounded Pareto(1.5) over [m/5, 8m] has mean ~0.53m; rescale so
	// the configured mean is honoured.
	return time.Duration(v / 0.53)
}
