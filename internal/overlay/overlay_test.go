package overlay

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vini/internal/packet"
)

// buildLine stands up a live a—b—c overlay on loopback with fast OSPF
// timers and returns the three nodes.
func buildLine(t *testing.T) (a, b, c *Node) {
	t.Helper()
	mk := func(name, tap string) *Node {
		n, err := NewNode(Config{
			Name: name, Listen: "127.0.0.1:0",
			TapAddr: netip.MustParseAddr(tap),
			Hello:   200 * time.Millisecond, Dead: 600 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a = mk("a", "10.99.0.1")
	b = mk("b", "10.99.0.2")
	c = mk("c", "10.99.0.3")
	t.Cleanup(func() { a.Close(); b.Close(); c.Close() })
	link := func(x, y *Node, subnet byte, cost uint32) {
		px := netip.AddrFrom4([4]byte{10, 99, subnet, 1})
		py := netip.AddrFrom4([4]byte{10, 99, subnet, 2})
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 99, subnet, 0}), 30)
		if err := x.AddPeer(PeerConfig{Remote: y.LocalAddr(), LocalIf: px, PeerIf: py, Prefix: prefix, Cost: cost}); err != nil {
			t.Fatal(err)
		}
		if err := y.AddPeer(PeerConfig{Remote: x.LocalAddr(), LocalIf: py, PeerIf: px, Prefix: prefix, Cost: cost}); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b, 10, 5)
	link(b, c, 11, 7)
	return a, b, c
}

// waitFor polls cond up to timeout.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func hasRoute(n *Node, prefix string) bool {
	p := netip.MustParsePrefix(prefix)
	for _, r := range n.Routes() {
		if r.Prefix == p {
			return true
		}
	}
	return false
}

func TestLiveOverlayConvergesAndForwards(t *testing.T) {
	a, b, c := buildLine(t)
	var delivered atomic.Int64
	var lastPayload atomic.Value
	c.OnDeliver(func(d []byte) {
		var ip packet.IPv4
		body, err := ip.Parse(d)
		if err == nil && ip.Proto == packet.ProtoUDP {
			var u packet.UDP
			if pay, err := u.Parse(body); err == nil {
				lastPayload.Store(string(pay))
				delivered.Add(1)
			}
		}
	})
	for _, n := range []*Node{a, b, c} {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Real OSPF over real sockets: a learns c's tap /32 transitively.
	waitFor(t, 15*time.Second, func() bool {
		return hasRoute(a, "10.99.0.3/32") && hasRoute(c, "10.99.0.1/32")
	}, "OSPF convergence")
	// Forward a real packet a -> c through b.
	dgram := packet.BuildUDP(a.TapAddr(), c.TapAddr(), 1234, 5678, 64, []byte("in vini veritas"))
	waitFor(t, 10*time.Second, func() bool {
		a.Send(dgram)
		return delivered.Load() > 0
	}, "end-to-end delivery")
	if got := lastPayload.Load().(string); got != "in vini veritas" {
		t.Fatalf("payload = %q", got)
	}
	// TTL decremented by the transit Click at b: verify via a second
	// delivery check isn't needed; adjacency state is enough here.
	if nbs := b.Neighbors(); len(nbs) != 2 {
		t.Fatalf("b neighbors = %+v", nbs)
	}
}

func TestLiveFailureReroutesOrIsolates(t *testing.T) {
	a, b, c := buildLine(t)
	for _, n := range []*Node{a, b, c} {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, func() bool {
		return hasRoute(a, "10.99.0.3/32")
	}, "initial convergence")
	// Fail the a-b tunnel inside Click on both ends: OSPF adjacencies
	// die within the dead interval and a loses the route to c.
	a.FailTunnel(0, true)
	b.FailTunnel(0, true)
	waitFor(t, 15*time.Second, func() bool {
		return !hasRoute(a, "10.99.0.3/32")
	}, "route withdrawal after live failure")
	// Restore: the route comes back.
	a.FailTunnel(0, false)
	b.FailTunnel(0, false)
	waitFor(t, 20*time.Second, func() bool {
		return hasRoute(a, "10.99.0.3/32")
	}, "route restoration")
}

// TestMetricsEndpoint converges the live overlay, forwards a packet,
// and scrapes the HTTP telemetry surface: the Prometheus exposition
// must carry the Click element counters and the scrape-time gauges, the
// JSON snapshot must parse, and /healthz must answer.
func TestMetricsEndpoint(t *testing.T) {
	a, b, c := buildLine(t)
	var delivered atomic.Int64
	c.OnDeliver(func([]byte) { delivered.Add(1) })
	for _, n := range []*Node{a, b, c} {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, func() bool {
		return hasRoute(a, "10.99.0.3/32") && hasRoute(c, "10.99.0.1/32")
	}, "OSPF convergence")
	dgram := packet.BuildUDP(a.TapAddr(), c.TapAddr(), 1234, 5678, 64, []byte("scrape me"))
	waitFor(t, 10*time.Second, func() bool {
		a.Send(dgram)
		return delivered.Load() > 0
	}, "end-to-end delivery")

	srv := httptest.NewServer(c.MetricsHandler())
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`slice="live"`, `node="c"`,
		"vini_fib_routes", "vini_ospf_neighbors_full", "vini_tap_delivered",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The gauges are refreshed at scrape time from live protocol state.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "vini_ospf_neighbors_full") && strings.HasSuffix(line, " 0") {
			t.Fatalf("neighbors_full gauge not refreshed: %q", line)
		}
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap []map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v\n%s", err, body)
	}
	if len(snap) == 0 {
		t.Fatal("/metrics.json empty")
	}

	// The registry accessor exposes the same data programmatically.
	if c.Metrics() == nil {
		t.Fatal("Metrics() returned nil")
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("invalid tap address accepted")
	}
	if _, err := NewNode(Config{Listen: "not-an-address", TapAddr: netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Fatal("bad listen address accepted")
	}
	n, err := NewNode(Config{Listen: "127.0.0.1:0", TapAddr: netip.MustParseAddr("10.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	if err := n.AddPeer(PeerConfig{Remote: "127.0.0.1:9"}); err == nil {
		t.Fatal("AddPeer after Start accepted")
	}
}
