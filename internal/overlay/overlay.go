// Package overlay runs the IIAS router live: the same Click element
// graph, forwarding tables, and OSPF implementation as the simulated
// virtual nodes, but over real UDP sockets on a real network. A Node is
// a single-goroutine actor: socket readers and timers post events to its
// loop, so the protocol code runs single-threaded exactly as it does on
// the simulator's event loop. cmd/iiasd wraps a Node as a daemon;
// examples/realoverlay runs three of them over loopback and fails a
// tunnel live.
package overlay

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"time"

	"vini/internal/click"
	"vini/internal/fea"
	"vini/internal/fib"
	"vini/internal/ospf"
	"vini/internal/packet"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// PeerConfig describes one virtual link to a remote overlay node.
type PeerConfig struct {
	// Remote is the peer's UDP tunnel address ("host:port").
	Remote string
	// LocalIf and PeerIf are this link's /30 interface addresses.
	LocalIf, PeerIf netip.Addr
	// Prefix is the link subnet.
	Prefix netip.Prefix
	// Cost is the OSPF metric.
	Cost uint32
}

// Config describes a live IIAS node.
type Config struct {
	Name string
	// Listen is the local UDP tunnel bind address ("127.0.0.1:0" for an
	// ephemeral port).
	Listen string
	// TapAddr is this node's overlay address, advertised as a /32 stub.
	TapAddr netip.Addr
	// Hello and Dead are the OSPF timers.
	Hello, Dead time.Duration
	// Peers are the virtual links (may also be added before Start).
	Peers []PeerConfig
}

// Node is a running live IIAS router.
type Node struct {
	cfg    Config
	conn   *net.UDPConn
	clock  *sim.RealClock
	events chan func()
	done   chan struct{}
	closed sync.Once

	router  *click.Router
	table   *fib.Table
	encap   *fib.EncapTable
	rib     *fea.RIB
	ospf    *ospf.Router
	peers   []PeerConfig
	remotes map[string]int // remote addr string -> tunnel index

	// Live telemetry: the same registry the simulator uses, under the
	// "live" slice label. Click element counters publish into it; the
	// adjacency/route gauges are refreshed on scrape (actor-safe).
	reg        *telemetry.Registry
	mRoutes    *telemetry.Gauge
	mNeighbors *telemetry.Gauge
	mFull      *telemetry.Gauge
	mDelivered *telemetry.Counter

	onDeliver func(dgram []byte)
	started   bool
}

// NewNode builds (but does not start) a node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Hello <= 0 {
		cfg.Hello = 5 * time.Second
	}
	if cfg.Dead <= 0 {
		cfg.Dead = 2 * cfg.Hello
	}
	if !cfg.TapAddr.IsValid() || !cfg.TapAddr.Is4() {
		return nil, fmt.Errorf("overlay: invalid tap address")
	}
	addr, err := net.ResolveUDPAddr("udp4", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen address: %w", err)
	}
	conn, err := net.ListenUDP("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay: bind: %w", err)
	}
	n := &Node{
		cfg:     cfg,
		conn:    conn,
		clock:   sim.NewRealClock(),
		events:  make(chan func(), 1024),
		done:    make(chan struct{}),
		table:   fib.New(),
		encap:   fib.NewEncapTable(),
		remotes: make(map[string]int),
	}
	n.rib = fea.NewRIB(n.table)
	n.reg = telemetry.NewRegistry()
	scope := n.reg.Scope("live", cfg.Name)
	n.mRoutes = scope.Gauge("fib/routes")
	n.mNeighbors = scope.Gauge("ospf/neighbors")
	n.mFull = scope.Gauge("ospf/neighbors_full")
	n.mDelivered = scope.Counter("tap/delivered")
	ctx := &click.Context{
		Clock:     n.actorClock(),
		RNG:       sim.NewRNG(time.Now().UnixNano()),
		FIB:       n.table,
		Encap:     n.encap,
		Tunnels:   (*liveTunnels)(n),
		Tap:       (*liveTap)(n),
		LocalAddr: packet.Flow{Src: cfg.TapAddr},
		Metrics:   scope,
	}
	r, err := click.ParseConfig(ctx, liveConfig)
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.router = r
	for _, p := range cfg.Peers {
		if err := n.AddPeer(p); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return n, nil
}

// liveConfig is the IIAS data plane, identical in shape to the simulated
// one (per-tunnel chains appended by AddPeer).
const liveConfig = `
fromtap :: FromTap;
fromtun :: FromTunnel;
chk :: CheckIPHeader;
dec :: DecIPTTL;
rt :: LookupIPRoute(NOROUTE 2);
encap :: EncapTunnel;
ttlerr :: ICMPError(11, 0);
unreach :: ICMPError(3, 0);
totap :: ToTap;
bad :: Discard;
fromtap -> rt;
fromtun -> chk;
chk[0] -> dec;
chk[1] -> bad;
dec[0] -> rt;
dec[1] -> ttlerr;
ttlerr -> rt;
rt[0] -> encap;
rt[1] -> totap;
rt[2] -> unreach;
unreach -> rt;
`

// LocalAddr returns the bound UDP tunnel address.
func (n *Node) LocalAddr() string { return n.conn.LocalAddr().String() }

// TapAddr returns the node's overlay address.
func (n *Node) TapAddr() netip.Addr { return n.cfg.TapAddr }

// OnDeliver registers the tap read callback (packets addressed to this
// node). Call before Start.
func (n *Node) OnDeliver(fn func(dgram []byte)) { n.onDeliver = fn }

// AddPeer wires one virtual link. Call before Start.
func (n *Node) AddPeer(p PeerConfig) error {
	if n.started {
		return fmt.Errorf("overlay: AddPeer after Start")
	}
	raddr, err := net.ResolveUDPAddr("udp4", p.Remote)
	if err != nil {
		return fmt.Errorf("overlay: peer address %q: %w", p.Remote, err)
	}
	idx := len(n.peers)
	n.peers = append(n.peers, p)
	n.remotes[raddr.String()] = idx
	rip, _ := netip.AddrFromSlice(raddr.IP.To4())
	n.encap.Set(fib.EncapEntry{
		NextHop: p.PeerIf, Remote: rip, Port: uint16(raddr.Port), Tunnel: idx,
	})
	cfgText := fmt.Sprintf("fail%d :: LinkFail;\ntun%d :: ToTunnel(%d);\nencap[%d] -> fail%d;\nfail%d -> tun%d;",
		idx, idx, idx, idx, idx, idx, idx)
	if err := click.ParseInto(n.router, cfgText); err != nil {
		return err
	}
	return nil
}

// Start launches the actor loop, socket reader, and OSPF.
func (n *Node) Start() error {
	if n.started {
		return fmt.Errorf("overlay: already started")
	}
	n.started = true
	// Connected routes.
	var connected []fib.Route
	connected = append(connected, fib.Route{Prefix: netip.PrefixFrom(n.cfg.TapAddr, 32), OutPort: 1})
	for i, p := range n.peers {
		connected = append(connected,
			fib.Route{Prefix: netip.PrefixFrom(p.LocalIf, 32), OutPort: 1},
			fib.Route{Prefix: p.Prefix.Masked(), NextHop: p.PeerIf, OutPort: 0, Metric: 1})
		_ = i
	}
	n.rib.SetRoutes("connected", fea.DistConnected, connected)
	// OSPF over the tunnels.
	r := ospf.New(n.actorClock(), ospf.Config{
		RouterID: ospf.RouterIDFromAddr(n.cfg.TapAddr),
		Hello:    n.cfg.Hello,
		Dead:     n.cfg.Dead,
		Stubs:    []ospf.StubDesc{{Prefix: netip.PrefixFrom(n.cfg.TapAddr, 32)}},
	}, (*liveOSPFTransport)(n))
	for i, p := range n.peers {
		r.AddInterface(ospf.Interface{
			Name: fmt.Sprintf("tun%d", i), Index: i,
			Addr: p.LocalIf, Prefix: p.Prefix, Cost: p.Cost,
		})
	}
	n.ospf = r
	r.OnRoutes(func(routes []fib.Route) {
		adapted := make([]fib.Route, 0, len(routes))
		for _, rt := range routes {
			if rt.NextHop.IsValid() {
				rt.OutPort = 0
			} else {
				rt.OutPort = 1
			}
			adapted = append(adapted, rt)
		}
		n.rib.SetRoutes("ospf", fea.DistOSPF, adapted)
	})
	if err := n.router.Initialize(); err != nil {
		return err
	}
	go n.actorLoop()
	go n.readLoop()
	n.post(func() { r.Start() })
	return nil
}

// Close stops the node.
func (n *Node) Close() {
	n.closed.Do(func() {
		n.post(func() {
			if n.ospf != nil {
				n.ospf.Stop()
			}
		})
		close(n.done)
		n.conn.Close()
	})
}

// post enqueues an event for the actor loop (drops after shutdown).
func (n *Node) post(fn func()) {
	select {
	case n.events <- fn:
	case <-n.done:
	}
}

func (n *Node) actorLoop() {
	for {
		select {
		case fn := <-n.events:
			fn()
		case <-n.done:
			return
		}
	}
}

func (n *Node) readLoop() {
	buf := make([]byte, 65536)
	for {
		sz, from, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		data := append([]byte(nil), buf[:sz]...)
		src := from.String()
		n.post(func() { n.receive(src, data) })
	}
}

// receive demultiplexes an incoming tunnel packet (actor context).
func (n *Node) receive(from string, inner []byte) {
	idx, ok := n.remotes[from]
	if !ok {
		return // not a configured neighbor
	}
	var iip packet.IPv4
	payload, err := iip.Parse(inner)
	if err != nil {
		return
	}
	if iip.Proto == packet.ProtoOSPF && n.ospf != nil {
		n.ospf.Receive(idx, iip.Src, payload)
		return
	}
	p := packet.New(inner)
	p.Anno.InPort = idx
	n.router.Push("fromtun", 0, p)
}

// Send injects a locally originated IP datagram into the overlay (a tap
// write). Safe to call from any goroutine.
func (n *Node) Send(dgram []byte) {
	buf := append([]byte(nil), dgram...)
	n.post(func() { n.router.Push("fromtap", 0, packet.New(buf)) })
}

// Routes returns a snapshot of the node's FIB.
func (n *Node) Routes() []fib.Route { return n.table.Routes() }

// Neighbors returns OSPF adjacency state (actor-safe snapshot).
func (n *Node) Neighbors() []ospf.NeighborInfo {
	ch := make(chan []ospf.NeighborInfo, 1)
	n.post(func() {
		if n.ospf == nil {
			ch <- nil
			return
		}
		ch <- n.ospf.Neighbors()
	})
	select {
	case nb := <-ch:
		return nb
	case <-time.After(2 * time.Second):
		return nil
	}
}

// Metrics returns the node's telemetry registry (Click element counters
// under the "live" slice, plus the scrape-time gauges).
func (n *Node) Metrics() *telemetry.Registry { return n.reg }

// refreshGauges recomputes the adjacency and route gauges on the actor
// loop, so a scrape never races protocol state.
func (n *Node) refreshGauges() {
	done := make(chan struct{})
	n.post(func() {
		defer close(done)
		n.mRoutes.Set(int64(len(n.table.Routes())))
		var full, total int
		if n.ospf != nil {
			for _, nb := range n.ospf.Neighbors() {
				total++
				if nb.State == "Full" {
					full++
				}
			}
		}
		n.mNeighbors.Set(int64(total))
		n.mFull.Set(int64(full))
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
}

// MetricsHandler serves the node's telemetry over HTTP: Prometheus text
// exposition at /metrics, the JSON snapshot at /metrics.json, and a
// liveness probe at /healthz. cmd/iiasd mounts it behind -metrics.
func (n *Node) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		n.refreshGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		n.refreshGauges()
		w.Header().Set("Content-Type", "application/json")
		n.reg.WriteJSON(w)
	})
	return mux
}

// FailTunnel injects or clears a failure on tunnel idx (the Click
// LinkFail element, as in the simulated §5.2 experiment).
func (n *Node) FailTunnel(idx int, failed bool) {
	v := "false"
	if failed {
		v = "true"
	}
	n.post(func() { n.router.Handler(fmt.Sprintf("fail%d.active", idx), v) })
}

// actorClock adapts the real clock so timer callbacks run on the actor.
func (n *Node) actorClock() sim.Clock {
	return &actorClock{n: n}
}

type actorClock struct{ n *Node }

func (c *actorClock) Now() time.Duration { return c.n.clock.Now() }
func (c *actorClock) Schedule(d time.Duration, fn func()) sim.Timer {
	return c.n.clock.Schedule(d, func() { c.n.post(fn) })
}

// liveOSPFTransport pushes OSPF packets into the per-tunnel Click chain
// so live failure injection cuts adjacencies too.
type liveOSPFTransport Node

func (t *liveOSPFTransport) SendRouting(ifIndex int, payload []byte) {
	n := (*Node)(t)
	if ifIndex < 0 || ifIndex >= len(n.peers) {
		return
	}
	p := n.peers[ifIndex]
	hdr := packet.IPv4{TTL: 1, Proto: packet.ProtoOSPF, Src: p.LocalIf, Dst: p.PeerIf}
	pkt := packet.New(hdr.Marshal(payload))
	pkt.Anno.NextHop = p.PeerIf
	n.router.Push(fmt.Sprintf("fail%d", ifIndex), 0, pkt)
}

// liveTunnels sends overlay packets over the real socket.
type liveTunnels Node

func (t *liveTunnels) SendTunnel(e fib.EncapEntry, p *packet.Packet) {
	n := (*Node)(t)
	dst := &net.UDPAddr{IP: e.Remote.AsSlice(), Port: int(e.Port)}
	n.conn.WriteToUDP(p.Data, dst)
}

// liveTap delivers local packets to the registered callback.
type liveTap Node

func (t *liveTap) DeliverTap(p *packet.Packet) {
	n := (*Node)(t)
	n.mDelivered.Inc()
	if n.onDeliver != nil {
		n.onDeliver(p.Data)
	}
}
