package core

// Slice lifecycle: every slice moves through an explicit state machine
// (Admitted → Embedded → Running → Paused ⇄ Running → Draining →
// Destroyed, with a Running → Migrating → Running excursion while a
// make-before-break migration is in flight) and every substrate
// resource it takes — CPU reservation,
// UDP port range, address block, kernel address aliases, processes,
// link-event subscriptions, telemetry series — is acquired through a
// refcounted handle in the slice's resource ledger. Destroy releases
// the ledger in reverse acquisition order, so a torn-down slice leaves
// the substrate exactly as it found it: the port span and prefix block
// recycle to the next admission (LIFO, through the address plan), no
// timer survives in any domain heap (timer groups), and the packet-pool
// ledger balances.

import "fmt"

// SliceState is the lifecycle position of a slice.
type SliceState int

const (
	// StateAdmitted: resources reserved (id, ports, address block), no
	// presence on any physical node yet.
	StateAdmitted SliceState = iota
	// StateEmbedded: virtual nodes and links instantiated on the
	// substrate, routing not started.
	StateEmbedded
	// StateRunning: routing processes live.
	StateRunning
	// StatePaused: forwarders parked, inbound traffic dropped at the
	// sockets; resources stay held.
	StatePaused
	// StateMigrating: a make-before-break migration is in flight — one
	// virtual node exists twice (old instance plus shadow) until the
	// cutover retires the old one. The slice keeps forwarding
	// throughout; Running resumes when the migration completes or
	// aborts.
	StateMigrating
	// StateDraining: teardown in progress (transient within Destroy).
	StateDraining
	// StateDestroyed: every resource released; the slice object remains
	// only for inspection.
	StateDestroyed
)

func (st SliceState) String() string {
	switch st {
	case StateAdmitted:
		return "Admitted"
	case StateEmbedded:
		return "Embedded"
	case StateRunning:
		return "Running"
	case StatePaused:
		return "Paused"
	case StateMigrating:
		return "Migrating"
	case StateDraining:
		return "Draining"
	case StateDestroyed:
		return "Destroyed"
	default:
		return fmt.Sprintf("SliceState(%d)", int(st))
	}
}

// allocSliceID returns a free slice id, preferring recycled ids (LIFO)
// so long-running substrates with slice churn never exhaust the space.
// Ids are unbounded labels now: addresses and ports come from the
// address plan (addrplan.go), whose allocators bound concurrency — not
// from id arithmetic, which is what used to cap the substrate at 126
// slices.
func (v *VINI) allocSliceID() int {
	if n := len(v.freeIDs); n > 0 {
		id := v.freeIDs[n-1]
		v.freeIDs = v.freeIDs[:n-1]
		return id
	}
	id := v.nextID
	v.nextID++
	return id
}

// freeSliceID recycles id for the next admission.
func (v *VINI) freeSliceID(id int) {
	v.freeIDs = append(v.freeIDs, id)
}

// handle is one refcounted resource acquisition in a slice's ledger.
// The free closure runs exactly once, when the last reference drops or
// when teardown force-drains the ledger.
type handle struct {
	kind, name string
	refs       int
	free       func()
}

func (h *handle) retain() { h.refs++ }

func (h *handle) release() {
	if h.refs <= 0 {
		return
	}
	h.refs--
	if h.refs == 0 && h.free != nil {
		h.free()
		h.free = nil
	}
}

// ledger records resource acquisitions in order, so teardown can
// release them in exact reverse order (addresses before processes
// before CPU before the id itself).
type ledger struct {
	handles []*handle
}

func (l *ledger) acquire(kind, name string, free func()) *handle {
	h := &handle{kind: kind, name: name, refs: 1, free: free}
	l.handles = append(l.handles, h)
	return h
}

// drop force-frees one handle out of order and removes it from the
// ledger. Migration retires a single vnode incarnation while the slice
// lives on, so the whole-ledger releaseAll does not apply; dropping
// (rather than release) keeps a live slice's Audit clean — no
// zero-reference handle is left behind.
func (l *ledger) drop(h *handle) {
	h.refs = 0
	if h.free != nil {
		h.free()
		h.free = nil
	}
	for i := len(l.handles) - 1; i >= 0; i-- {
		if l.handles[i] == h {
			l.handles = append(l.handles[:i], l.handles[i+1:]...)
			break
		}
	}
}

// releaseAll force-drains every handle in reverse acquisition order,
// regardless of outstanding references (teardown owns everything).
func (l *ledger) releaseAll() {
	for i := len(l.handles) - 1; i >= 0; i-- {
		h := l.handles[i]
		h.refs = 0
		if h.free != nil {
			h.free()
			h.free = nil
		}
	}
	l.handles = nil
}

// holdings renders the live acquisitions, oldest first.
func (l *ledger) holdings() []string {
	out := make([]string, 0, len(l.handles))
	for _, h := range l.handles {
		out = append(out, fmt.Sprintf("%s:%s(refs=%d)", h.kind, h.name, h.refs))
	}
	return out
}

// State returns the slice's lifecycle state.
func (s *Slice) State() SliceState { return s.state }

// ID returns the slice's substrate id (an opaque label; addresses and
// ports no longer derive from it).
func (s *Slice) ID() int { return s.id }

// BasePort returns the first port of the slice's tunnel port block.
func (s *Slice) BasePort() uint16 { return s.basePort }

// PortRange returns the slice's allocated tunnel port span.
func (s *Slice) PortRange() PortRange { return s.ports }

// NATPortRange returns the slice's NAT egress span; the zero range
// until the first EnableEgress allocates one.
func (s *Slice) NATPortRange() PortRange { return s.natPorts }

// Resources lists the slice's live resource acquisitions, for tests
// and operator inspection.
func (s *Slice) Resources() []string { return s.res.holdings() }

// Audit checks the slice's resource accounting: a destroyed slice must
// hold nothing and have no timer pending in any domain, a live one must
// hold a consistent ledger. It returns the first inconsistency.
func (s *Slice) Audit() error {
	if s.state == StateDestroyed {
		if n := len(s.res.handles); n != 0 {
			return fmt.Errorf("core: destroyed slice %s still holds %d resources: %v",
				s.cfg.Name, n, s.res.holdings())
		}
		if !s.ctl.Stopped() || s.ctl.Live() != 0 {
			return fmt.Errorf("core: destroyed slice %s has %d control timers pending", s.cfg.Name, s.ctl.Live())
		}
		for _, name := range s.vorder {
			vn := s.vnodes[name]
			if n := vn.group.Live(); n != 0 {
				return fmt.Errorf("core: destroyed slice %s has %d timers pending on %s", s.cfg.Name, n, name)
			}
			if n := vn.ticks.Live(); n != 0 {
				return fmt.Errorf("core: destroyed slice %s has %d tick timers pending on %s", s.cfg.Name, n, name)
			}
		}
		return nil
	}
	for _, h := range s.res.handles {
		if h.refs <= 0 {
			return fmt.Errorf("core: slice %s resource %s:%s has no references but was not released",
				s.cfg.Name, h.kind, h.name)
		}
	}
	return nil
}

// Pause parks the slice: every forwarder process is suspended on its
// CPU, inbound packets tail-drop at its sockets, and control-plane
// output stops, so neighbors see the slice go dark (adjacencies expire
// at the peers exactly as they would for a crashed PlanetLab sliver).
// Resources stay held. Must run at a barrier or on the control domain.
func (s *Slice) Pause() error {
	switch s.state {
	case StatePaused:
		return nil
	case StateDraining, StateDestroyed:
		return fmt.Errorf("core: cannot pause slice %s in state %s", s.cfg.Name, s.state)
	}
	if s.mig != nil {
		// A pause lands on whichever side of the commit point the
		// migration is: before cutover the shadow is abandoned (its
		// handles drop from the ledger), after it the retirement
		// completes early. Either way the slice pauses with exactly one
		// incarnation per virtual node.
		s.mig.finish()
	}
	s.prevState = s.state
	for _, name := range s.vorder {
		vn := s.vnodes[name]
		vn.suspended = true
		vn.proc.SetPaused(true)
	}
	s.state = StatePaused
	return nil
}

// Resume reverses Pause. Routing adjacencies re-form on the protocols'
// own timers; convergence after resume is the experiment's observable.
func (s *Slice) Resume() error {
	if s.state != StatePaused {
		return fmt.Errorf("core: cannot resume slice %s in state %s", s.cfg.Name, s.state)
	}
	for _, name := range s.vorder {
		vn := s.vnodes[name]
		vn.suspended = false
		vn.proc.SetPaused(false)
	}
	s.state = s.prevState
	return nil
}

// Destroy tears the slice down completely: routing stops, every pending
// timer in every domain is cancelled through the slice's timer groups,
// buffered packets flush back to the pool, and the resource ledger
// releases in reverse acquisition order — interface aliases, tap
// addresses, processes (sockets, port ranges, scheduler tasks), CPU
// reservations, telemetry series, the link subscription, and finally
// the slice id with its port block and address prefix, which the next
// CreateSlice on this substrate reuses. Idempotent. Must run at a
// barrier or on the control domain.
func (s *Slice) Destroy() error {
	if s.state == StateDestroyed {
		return nil
	}
	if s.mig != nil {
		// Resolve the in-flight migration first so teardown sees exactly
		// one incarnation per virtual node: pre-cutover the shadow
		// aborts, post-cutover the old instance retires now.
		s.mig.finish()
	}
	s.state = StateDraining
	v := s.vini
	// 1. Stop routing processes (their saved timers stop eagerly).
	for _, name := range s.vorder {
		vn := s.vnodes[name]
		if vn.OSPF != nil {
			vn.OSPF.Stop()
		}
		if vn.RIP != nil {
			vn.RIP.Stop()
		}
	}
	// 2. Cancel the control-domain group (staggered StartOSPF closures
	// that have not fired yet) and every per-node group: the unsaved
	// periodic timers — OSPF refresh/age sweeps, SPF batching, shaper
	// release chains — leave their domain heaps here. A stopped group
	// refuses re-arms, so a periodic racing teardown cannot resurrect.
	s.ctl.StopAll()
	for _, name := range s.vorder {
		s.vnodes[name].group.StopAll()
		s.vnodes[name].ticks.StopAll()
	}
	// 3. Flush buffered packets out of every Click element so the pool
	// ledger balances.
	for _, name := range s.vorder {
		s.vnodes[name].Router.Flush()
	}
	// 4. Release every acquired resource, newest first.
	s.res.releaseAll()
	// 5. Deregister from the infrastructure.
	delete(v.slices, s.cfg.Name)
	for i, n := range v.order {
		if n == s.cfg.Name {
			v.order = append(v.order[:i], v.order[i+1:]...)
			break
		}
	}
	s.state = StateDestroyed
	return nil
}

// physPath returns the current shortest physical path between two
// nodes, routing around links that are down right now; when the live
// topology is partitioned it falls back to the all-links-up path (the
// embedding is then pinned to a path that will work once the substrate
// heals). Returns nil only if the nodes are disconnected outright.
func (v *VINI) physPath(from, to string) []string {
	down := map[int]bool{}
	for i, l := range v.graph.Links() {
		if phys, ok := v.Net.FindLink(l.A, l.B); ok && phys.Down() {
			down[i] = true
		}
	}
	if p, ok := v.graph.ShortestPaths(from, down)[to]; ok {
		return p.Hops
	}
	if p, ok := v.graph.ShortestPaths(from, nil)[to]; ok {
		return p.Hops
	}
	return nil
}

// ReEmbed re-pins every virtual link onto the current shortest physical
// path — the embedding step run again against live topology. Virtual
// links whose old path crossed a dead physical link move onto a live
// path and (for ExposePhysicalFailures slices) come back up. It returns
// the number of virtual links whose path changed. Must run at a barrier
// or on the control domain.
func (s *Slice) ReEmbed() (int, error) {
	if s.state == StateDraining || s.state == StateDestroyed {
		return 0, fmt.Errorf("core: cannot re-embed slice %s in state %s", s.cfg.Name, s.state)
	}
	changed := 0
	for _, vl := range s.vlinks {
		from, to := vl.A.phys.Name(), vl.B.phys.Name()
		path := s.vini.physPath(from, to)
		if path == nil {
			continue // endpoints disconnected: keep the stale pin
		}
		if !samePath(path, vl.path) {
			vl.path = path
			changed++
		}
		if s.cfg.ExposePhysicalFailures {
			vl.physFailed = s.anyPathDown(vl.path)
			vl.applyFailState()
		}
	}
	return changed, nil
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// anyPathDown reports whether any physical link along the pinned path
// is currently down.
func (s *Slice) anyPathDown(path []string) bool {
	for i := 0; i+1 < len(path); i++ {
		if l, ok := s.vini.Net.FindLink(path[i], path[i+1]); ok && l.Down() {
			return true
		}
	}
	return false
}

// usesPhysLink reports whether the pinned path traverses the physical
// link a-b.
func usesPhysLink(path []string, a, b string) bool {
	for i := 0; i+1 < len(path); i++ {
		x, y := path[i], path[i+1]
		if (x == a && y == b) || (x == b && y == a) {
			return true
		}
	}
	return false
}

// reserveCPU admits share on the named physical node, rejecting
// oversubscription of reservations (the sum of slice shares on a node
// may not exceed the whole CPU).
func (v *VINI) reserveCPU(node string, share float64) error {
	const eps = 1e-9
	if v.reserved[node]+share > 1.0+eps {
		return fmt.Errorf("core: CPU oversubscription on %s: %.3f reserved, %.3f requested",
			node, v.reserved[node], share)
	}
	v.reserved[node] += share
	return nil
}

// releaseCPU returns share to the node's admission budget.
func (v *VINI) releaseCPU(node string, share float64) {
	v.reserved[node] -= share
	if v.reserved[node] < 0 {
		v.reserved[node] = 0
	}
}

// ReservedCPU reports the admitted CPU reservation total on a node.
func (v *VINI) ReservedCPU(node string) float64 { return v.reserved[node] }
