package core

import (
	"fmt"
	"net/netip"

	"vini/internal/bgp"
	"vini/internal/fea"
	"vini/internal/fib"
	"vini/internal/telemetry"
)

// ConnectBGP attaches the slice to a BGP multiplexer (Section 6.1): the
// slice's public prefix is announced upstream through the mux's single
// external adjacency, and externally learned routes are redistributed
// into every virtual node's RIB. This is Section 3.2's second routing
// problem — "discovering routes to external destinations" — solved the
// way real routers do:
//
//   - on the egress node, an external prefix forwards into the NAT exit;
//   - on every other node, the BGP route's next hop is the egress node's
//     overlay address, which is *recursively resolved* through the IGP's
//     current best path, and re-resolved whenever the IGP reconverges
//     (so an external route follows intra-overlay failover automatically).
//
// Call after the virtual topology is built and egress has EnableEgress.
func (s *Slice) ConnectBGP(mux *bgp.Mux, egress string, publicPrefix netip.Prefix, rate, burst float64) error {
	evn, ok := s.vnodes[egress]
	if !ok {
		return fmt.Errorf("core: no virtual node on %q", egress)
	}
	if err := mux.Register(s.cfg.Name, publicPrefix, rate, burst); err != nil {
		return err
	}
	if err := mux.Announce(s.cfg.Name, publicPrefix, bgp.PathAttrs{
		NextHop: evn.phys.Addr(),
	}); err != nil {
		return err
	}
	if tel := s.vini.tel; tel != nil {
		// The mux speaker is clocked on the control loop at every call
		// site (NewMux(v.Loop(), ...)), so session events record into
		// the control ring.
		mux.Speaker().OnEvent(func(peer, event string) {
			tel.Rec.Record(s.vini.loop.Domain, telemetry.Event{
				Kind:   telemetry.EvSession,
				Slice:  s.cfg.Name,
				Elem:   "bgp",
				Node:   peer,
				Detail: event,
			})
		})
	}
	// Redistribute the shared external view into every virtual node.
	mux.Speaker().OnRoutes(func(external []fib.Route) {
		for _, name := range s.vorder {
			vn := s.vnodes[name]
			var raw []fib.Route
			for _, r := range external {
				if vn == evn {
					raw = append(raw, fib.Route{Prefix: r.Prefix, OutPort: portNAPT, Metric: r.Metric})
				} else {
					raw = append(raw, fib.Route{Prefix: r.Prefix, NextHop: evn.TapAddr, Metric: r.Metric})
				}
			}
			vn.setBGPRoutes(raw)
		}
	})
	return nil
}

// setBGPRoutes stores unresolved BGP routes and resolves them against
// the current IGP state.
func (vn *VirtualNode) setBGPRoutes(raw []fib.Route) {
	vn.bgpRaw = raw
	vn.bgpAttached = true
	vn.resolveBGP()
}

// resolveBGP performs recursive next-hop resolution: a BGP route whose
// next hop is another overlay address adopts the forwarding state of
// the IGP route currently reaching that address. Unresolvable routes
// are withheld from the FIB (the BGP next hop is unreachable).
func (vn *VirtualNode) resolveBGP() {
	if !vn.bgpAttached {
		return
	}
	resolved := make([]fib.Route, 0, len(vn.bgpRaw))
	for _, r := range vn.bgpRaw {
		if !r.NextHop.IsValid() {
			resolved = append(resolved, r) // egress-local (NAT) route
			continue
		}
		via, ok := vn.FIB.Lookup(r.NextHop)
		if !ok || !via.NextHop.IsValid() {
			continue // next hop unreachable right now
		}
		resolved = append(resolved, fib.Route{
			Prefix:  r.Prefix,
			NextHop: via.NextHop,
			OutPort: via.OutPort,
			Metric:  r.Metric,
		})
	}
	vn.rib.SetRoutes("bgp", fea.DistEBGP, resolved)
}
