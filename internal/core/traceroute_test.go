package core

import (
	"testing"
	"time"

	"vini/internal/topology"
	"vini/internal/traffic"
)

// TestTracerouteAcrossOverlay walks the virtual Abilene hop by hop: each
// transit Click's ICMPError element answers with its tap address, so the
// trace reads out exactly the embedded default path of Figure 7.
func TestTracerouteAcrossOverlay(t *testing.T) {
	v := buildAbilene(t, 12)
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)
	wash, _ := s.VirtualNode(topology.Washington)
	sea, _ := s.VirtualNode(topology.Seattle)
	h := traffic.NewICMPHost(wash.Phys())
	tr := h.StartTraceroute(v.Loop(), traffic.TracerouteConfig{
		Src: wash.TapAddr, Dst: sea.TapAddr})
	v.Run(v.Loop().Now() + 60*time.Second)
	if !tr.Done {
		t.Fatalf("traceroute incomplete: %+v", tr.Hops)
	}
	// Expected transit tap addresses along the Figure 7 default path.
	want := []string{topology.NewYork, topology.Chicago, topology.Indianapolis,
		topology.KansasCity, topology.Denver, topology.Seattle}
	if len(tr.Hops) != len(want) {
		t.Fatalf("hops = %d (%+v), want %d", len(tr.Hops), tr.Hops, len(want))
	}
	for i, name := range want {
		vn, _ := s.VirtualNode(name)
		if tr.Hops[i].Addr != vn.TapAddr {
			t.Fatalf("hop %d = %v, want %s (%v)", i+1, tr.Hops[i].Addr, name, vn.TapAddr)
		}
		if tr.Hops[i].RTT <= 0 {
			t.Fatalf("hop %d has no RTT", i+1)
		}
	}
	// RTTs grow along the path.
	if tr.Hops[0].RTT >= tr.Hops[len(tr.Hops)-1].RTT {
		t.Fatalf("RTTs not increasing: %v vs %v", tr.Hops[0].RTT, tr.Hops[len(tr.Hops)-1].RTT)
	}
}
