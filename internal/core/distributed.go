package core

// Distributed execution: a VINI world is built identically in every
// process (replicated construction — the driver program must be
// deterministic), then Distribute marks which node domains this process
// executes; the rest become inert replicas whose events materialize on
// their owning shard. Cross-shard packet deliveries ride the
// sim.DomainTransport, and per-domain schedule digests plus telemetry
// snapshots merge back into a whole-world view that is byte-identical
// to a single-process run.

import (
	"fmt"
	"time"

	"vini/internal/sim"
	"vini/internal/telemetry"
)

// Distribute splits this infrastructure's node domains across process
// shards: this process executes shard `shard` of `shards`, joined to
// its peers by tr (a sim.SockWorker or sim.SockCoordinator). Must be
// called on a NewParallel infrastructure after the topology is complete
// and before the first Run.
func (v *VINI) Distribute(tr sim.DomainTransport, shard, shards int) {
	v.Executor().Distribute(tr, shard, shards)
}

// RunE advances virtual time like Run but surfaces transport failures
// (a dead or desynchronized peer shard) as a typed error instead of
// discarding it.
func (v *VINI) RunE(until time.Duration) error {
	return v.Executor().Run(until)
}

// NodeOwner returns the shard that executes the named physical node's
// domain under an s-way split.
func (v *VINI) NodeOwner(name string, shards int) int {
	return sim.OwnerShard(v.Net.MustNode(name).Domain().ID(), shards)
}

// TelemetryOwner returns the owner function telemetry.MergeSnapshots
// needs: series labeled with a physical node name belong to the shard
// executing that node; anything else (global or control-side series) is
// replicated and the coordinator's own value stands.
func (v *VINI) TelemetryOwner(shards int) func(node string) int {
	return func(node string) int {
		n, ok := v.Net.Node(node)
		if !ok {
			return 0
		}
		return sim.OwnerShard(n.Domain().ID(), shards)
	}
}

// MergeShardDigests reassembles the whole-world schedule digest from
// per-shard sim.Executor.DomainDigests reports: each domain's digest is
// taken from its owning shard, then folded exactly as a single
// process's ScheduleDigest folds its own domains. byShard[s] must be
// shard s's report; every report must cover all domains.
func MergeShardDigests(byShard [][]uint64, shards int) (uint64, error) {
	if len(byShard) == 0 {
		return 0, fmt.Errorf("core: no shard digest reports")
	}
	n := len(byShard[0])
	merged := make([]uint64, n)
	for dom := 0; dom < n; dom++ {
		s := sim.OwnerShard(int32(dom), shards)
		if s >= len(byShard) || len(byShard[s]) != n {
			return 0, fmt.Errorf("core: shard %d digest report missing or short (domain %d)", s, dom)
		}
		merged[dom] = byShard[s][dom]
	}
	return sim.FoldDigests(merged), nil
}

// MergeShardTelemetry substitutes owner-shard values into the
// coordinator's snapshot and returns the merged snapshot plus its
// digest, which must equal a single-process Registry.Digest for the
// same scenario.
func (v *VINI) MergeShardTelemetry(byShard [][]telemetry.MetricValue, shards int) ([]telemetry.MetricValue, uint64, error) {
	tel := v.Telemetry()
	if tel == nil {
		return nil, 0, fmt.Errorf("core: telemetry not enabled")
	}
	merged, err := telemetry.MergeSnapshots(tel.Reg.Snapshot(), v.TelemetryOwner(shards), byShard)
	if err != nil {
		return nil, 0, err
	}
	return merged, telemetry.DigestOf(merged), nil
}
