package core

// The address plan: one allocator instance per VINI owns the substrate's
// slice address space (10.0.0.0/8 minus the reserved 10.0/16) and the
// slice tunnel-port space, handing out power-of-two blocks sized to each
// slice's embedding instead of deriving both from the slice id. The old
// arithmetic scheme — prefix 10.<id>/16, ports 33000+256*id — burned a
// /16 and 256 ports on every slice regardless of size, which capped the
// substrate at 126 concurrent slices (the last 256-port block under
// 65536) and silently overlapped the NAT egress ranges at 40000+512*id
// with the tunnel blocks of ids >= 28. Sized blocks push the bound to
// thousands of slices and give NAT ranges their own allocations in the
// same space, so overlap is impossible by construction.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net/netip"
	"sort"
)

// ErrExhausted is wrapped by every allocation failure in the address
// plan (prefix blocks, tunnel-port spans, NAT ranges); callers branch
// with errors.Is.
var ErrExhausted = errors.New("resource space exhausted")

// PortRange is an inclusive UDP port span.
type PortRange struct {
	Lo, Hi uint16
}

// Valid reports whether the range has been allocated.
func (r PortRange) Valid() bool { return r.Hi != 0 }

// Size returns the number of ports in the span.
func (r PortRange) Size() int { return int(r.Hi) - int(r.Lo) + 1 }

func (r PortRange) String() string { return fmt.Sprintf("%d-%d", r.Lo, r.Hi) }

// spanAlloc hands out power-of-two-sized spans from the half-open
// integer interval [lo, hi). Freed spans go to per-size LIFO stacks, so
// a destroy/create cycle of the same shape reuses the block that was
// just released — the recycling contract the lifecycle tests pin.
// Larger free blocks are split buddy-style when a smaller request finds
// its own stack empty; blocks are never coalesced (the split halves
// stay naturally aligned, and exact LIFO reuse matters more here than
// defragmentation — the workload is slices of a few shapes churning).
type spanAlloc struct {
	name string
	lo   uint32
	hi   uint32
	// next is the bump frontier: [next, hi) has never been carved.
	next uint32
	// aligned keeps every allocated span aligned to its own size, so a
	// span of 2^k starting at offset off can be read as the CIDR prefix
	// off/(32-k). Port spans do not need this.
	aligned bool
	// free maps span size -> LIFO stack of free offsets.
	free map[uint32][]uint32
	// live maps offset -> size for every outstanding span (audit).
	live map[uint32]uint32
}

func newSpanAlloc(name string, lo, hi uint32, aligned bool) *spanAlloc {
	return &spanAlloc{
		name: name, lo: lo, hi: hi, next: lo, aligned: aligned,
		free: make(map[uint32][]uint32),
		live: make(map[uint32]uint32),
	}
}

// acquire returns the offset of a free span of the given size (a power
// of two). Preference order: the size's own free stack (LIFO), then
// splitting the smallest larger free block, then the bump frontier.
func (a *spanAlloc) acquire(size uint32) (uint32, error) {
	if size == 0 || size&(size-1) != 0 {
		return 0, fmt.Errorf("core: %s allocator: size %d not a power of two", a.name, size)
	}
	if stack := a.free[size]; len(stack) > 0 {
		off := stack[len(stack)-1]
		a.free[size] = stack[:len(stack)-1]
		a.live[off] = size
		return off, nil
	}
	for s2 := size << 1; s2 != 0 && s2 <= a.hi-a.lo; s2 <<= 1 {
		stack := a.free[s2]
		if len(stack) == 0 {
			continue
		}
		off := stack[len(stack)-1]
		a.free[s2] = stack[:len(stack)-1]
		// Keep the low half, free the upper halves down to size; every
		// piece stays aligned to its own size.
		for s := s2 >> 1; s >= size; s >>= 1 {
			a.free[s] = append(a.free[s], off+s)
		}
		a.live[off] = size
		return off, nil
	}
	next := a.next
	if a.aligned {
		// Pad the frontier up to the next size-aligned boundary; the
		// skipped chunks (each aligned to its own size) become free
		// blocks rather than leaking.
		for next%size != 0 {
			s := next & -next
			if next+s > a.hi {
				return 0, fmt.Errorf("core: %s allocator: no %d-wide block free: %w", a.name, size, ErrExhausted)
			}
			a.free[s] = append(a.free[s], next)
			next += s
		}
		a.next = next
	}
	if next+size > a.hi || next+size < next {
		return 0, fmt.Errorf("core: %s allocator: no %d-wide block free: %w", a.name, size, ErrExhausted)
	}
	a.next = next + size
	a.live[next] = size
	return next, nil
}

// release returns a span to its size's free stack (LIFO).
func (a *spanAlloc) release(off, size uint32) {
	if a.live[off] != size {
		// Double-free or foreign span: surface loudly — this is the same
		// class of accounting bug the ledger audit exists to catch.
		panic(fmt.Sprintf("core: %s allocator: release of %d+%d not live", a.name, off, size))
	}
	delete(a.live, off)
	a.free[size] = append(a.free[size], off)
}

// audit checks the allocator's books: every live and free span lies in
// [lo, next), no two spans overlap, and live + free + uncarved frontier
// exactly tile [lo, hi).
func (a *spanAlloc) audit() error {
	type span struct{ off, size uint32 }
	var spans []span
	for off, size := range a.live {
		spans = append(spans, span{off, size})
	}
	for size, stack := range a.free {
		for _, off := range stack {
			spans = append(spans, span{off, size})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	var covered uint64
	prevEnd := a.lo
	for _, sp := range spans {
		if sp.off < prevEnd {
			return fmt.Errorf("core: %s allocator: span %d+%d overlaps previous (ends %d)",
				a.name, sp.off, sp.size, prevEnd)
		}
		if sp.off+sp.size > a.next {
			return fmt.Errorf("core: %s allocator: span %d+%d beyond frontier %d",
				a.name, sp.off, sp.size, a.next)
		}
		prevEnd = sp.off + sp.size
		covered += uint64(sp.size)
	}
	if covered != uint64(a.next-a.lo) {
		return fmt.Errorf("core: %s allocator: %d of %d carved units accounted for",
			a.name, covered, a.next-a.lo)
	}
	return nil
}

// Address-plan layout. The constants keep the default slice shape
// byte-identical to the historical arithmetic scheme: the first default
// slice gets 10.1.0.0/16 and ports 33256..33511 — exactly what id 1
// received under prefix 10.<id>/16 and basePort 33000+256*id — so every
// committed golden (Table 2, Figure 8) and every digest baseline is
// unchanged.
const (
	// planAddrLo..planAddrHi is the slice address space 10.1.0.0 —
	// 10.255.255.255; 10.0/16 stays reserved for the substrate (the old
	// scheme never issued id 0 either).
	planAddrLo = uint32(10)<<24 | uint32(1)<<16 // 10.1.0.0
	planAddrHi = uint32(11) << 24              // 11.0.0.0 (exclusive)
	// planPortLo..planPortHi is the slice port space: the historical
	// id-1 tunnel block through the end of the id-126 block. 8064
	// minimum-size (4-port) spans fit — the new concurrency bound when
	// slices declare their size.
	planPortLo = 33000 + 256    // 33256
	planPortHi = 33000 + 127*256 // 65512 (exclusive; last usable port 65511)
	// defaultPortSpan is the legacy 256-port tunnel block for unsized
	// slices; sizedPortSpan is the minimum span for slices that declare
	// MaxNodes (the tunnel socket needs one port; the rest is slack for
	// future per-slice listeners).
	defaultPortSpan = 256
	sizedPortSpan   = 4
	// natPortSpan is the NAT egress range EnableEgress draws per slice,
	// matching the old 512-port window at 40000+512*id — but allocated,
	// so it can no longer collide with anyone's tunnel block.
	natPortSpan = 512
)

// addrPlan owns the two allocators.
type addrPlan struct {
	prefixes *spanAlloc
	ports    *spanAlloc
}

func newAddrPlan() *addrPlan {
	return &addrPlan{
		prefixes: newSpanAlloc("prefix", planAddrLo, planAddrHi, true),
		ports:    newSpanAlloc("port", planPortLo, planPortHi, false),
	}
}

// blockSizeFor sizes a slice's address block from its embedding hints.
// The block splits in half: host (tap) addresses below, /30 link
// subnets above, so each half must fit its population — nodes plus
// network/broadcast, and 4*(links+1) subnet words (subnet numbering
// starts at 1). Zero hints select the legacy /16 (250 hosts, 8000
// subnets — the unsized contract).
func blockSizeFor(nodes, links int) uint32 {
	if nodes <= 0 {
		return 1 << 16
	}
	if links <= 0 {
		links = 2 * nodes
	}
	need := nodes + 2
	if n := 4 * (links + 1); n > need {
		need = n
	}
	half := uint32(16) // /27 minimum: room for 14 taps / 3 subnets
	for half < uint32(need) {
		half <<= 1
	}
	size := half * 2
	if size > 1<<16 {
		size = 1 << 16
	}
	return size
}

// acquirePrefix allocates an address block sized for the hints.
func (p *addrPlan) acquirePrefix(nodes, links int) (netip.Prefix, error) {
	size := blockSizeFor(nodes, links)
	off, err := p.prefixes.acquire(size)
	if err != nil {
		return netip.Prefix{}, err
	}
	return netip.PrefixFrom(u32Addr(off), 32-bits.TrailingZeros32(size)), nil
}

func (p *addrPlan) releasePrefix(pfx netip.Prefix) {
	p.prefixes.release(addrU32(pfx.Addr()), uint32(1)<<(32-pfx.Bits()))
}

// acquirePorts allocates a tunnel or NAT span of the given width.
func (p *addrPlan) acquirePorts(span uint32) (PortRange, error) {
	off, err := p.ports.acquire(span)
	if err != nil {
		return PortRange{}, err
	}
	return PortRange{Lo: uint16(off), Hi: uint16(off + span - 1)}, nil
}

func (p *addrPlan) releasePorts(r PortRange) {
	p.ports.release(uint32(r.Lo), uint32(r.Size()))
}

// audit checks both allocators' books.
func (p *addrPlan) audit() error {
	if err := p.prefixes.audit(); err != nil {
		return err
	}
	return p.ports.audit()
}

func u32Addr(u uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], u)
	return netip.AddrFrom4(b)
}

func addrU32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// AuditAddressPlan verifies the substrate's address and port
// allocators: live blocks pairwise disjoint, free lists consistent,
// and carved space exactly accounted for. Complements Slice.Audit,
// which checks one slice's ledger.
func (v *VINI) AuditAddressPlan() error { return v.plan.audit() }
