package core

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
)

// TestAddrPlanProperties drives randomized acquire/release/re-acquire
// sequences through CreateSlice/Destroy and asserts the allocator
// invariants after every step: no prefix or port-range overlap among
// live slices, exhaustion surfaces as the typed ErrExhausted (never a
// panic), the per-slice ledger Audit and the substrate-wide address
// plan audit stay balanced, and destroy/create of the same shape reuses
// the just-released blocks (LIFO).
func TestAddrPlanProperties(t *testing.T) {
	shapes := []SliceConfig{
		{},                          // legacy /16 + 256 ports
		{MaxNodes: 3, MaxLinks: 3},  // /27 + 4 ports
		{MaxNodes: 6, MaxLinks: 6},  // /26
		{MaxNodes: 12, MaxLinks: 20},
		{MaxNodes: 40, MaxLinks: 64},
	}
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			v := New(seed)
			var live []*Slice
			checkDisjoint := func() {
				t.Helper()
				for i := 0; i < len(live); i++ {
					for j := i + 1; j < len(live); j++ {
						a, b := live[i], live[j]
						if a.Prefix().Overlaps(b.Prefix()) {
							t.Fatalf("prefixes overlap: %s %v / %s %v",
								a.Name(), a.Prefix(), b.Name(), b.Prefix())
						}
						ap, bp := a.PortRange(), b.PortRange()
						if ap.Lo <= bp.Hi && bp.Lo <= ap.Hi {
							t.Fatalf("port ranges overlap: %s %v / %s %v",
								a.Name(), ap, b.Name(), bp)
						}
					}
				}
			}
			for step := 0; step < 600; step++ {
				if rng.Intn(3) != 0 || len(live) == 0 {
					cfg := shapes[rng.Intn(len(shapes))]
					cfg.Name = fmt.Sprintf("s%d", step)
					s, err := v.CreateSlice(cfg)
					if err != nil {
						if !errors.Is(err, ErrExhausted) {
							t.Fatalf("step %d: create failed with untyped error: %v", step, err)
						}
						// Exhausted: fall through to the invariant checks;
						// a later destroy frees room.
					} else {
						if !s.Prefix().IsValid() || !s.PortRange().Valid() {
							t.Fatalf("step %d: slice admitted with invalid blocks", step)
						}
						live = append(live, s)
					}
				} else {
					i := rng.Intn(len(live))
					s := live[i]
					prefix, ports, sized := s.Prefix(), s.PortRange(), s.cfg.MaxNodes
					if err := s.Destroy(); err != nil {
						t.Fatalf("step %d: destroy: %v", step, err)
					}
					if err := s.Audit(); err != nil {
						t.Fatalf("step %d: post-destroy audit: %v", step, err)
					}
					live = append(live[:i], live[i+1:]...)
					// LIFO: an immediate same-shape re-admission gets the
					// blocks back.
					if rng.Intn(2) == 0 {
						s2, err := v.CreateSlice(SliceConfig{
							Name: fmt.Sprintf("r%d", step), MaxNodes: sized, MaxLinks: s.cfg.MaxLinks})
						if err != nil {
							t.Fatalf("step %d: re-admission after destroy: %v", step, err)
						}
						if s2.Prefix() != prefix || s2.PortRange() != ports {
							t.Fatalf("step %d: re-admission got %v/%v, want LIFO reuse of %v/%v",
								step, s2.Prefix(), s2.PortRange(), prefix, ports)
						}
						live = append(live, s2)
					}
				}
				if err := v.AuditAddressPlan(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				for _, s := range live {
					if err := s.Audit(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
				if step%25 == 0 {
					checkDisjoint()
				}
			}
			checkDisjoint()
			// Drain everything: the plan must account for a fully free
			// space again.
			for _, s := range live {
				if err := s.Destroy(); err != nil {
					t.Fatal(err)
				}
			}
			if err := v.AuditAddressPlan(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpanAllocSplitsAndAligns unit-tests the allocator's block
// splitting and CIDR alignment directly.
func TestSpanAllocSplitsAndAligns(t *testing.T) {
	a := newSpanAlloc("test", 0, 1024, true)
	small, err := a.acquire(16)
	if err != nil {
		t.Fatal(err)
	}
	big, err := a.acquire(256)
	if err != nil {
		t.Fatal(err)
	}
	if big%256 != 0 {
		t.Fatalf("256-block at %d not aligned", big)
	}
	if err := a.audit(); err != nil {
		t.Fatal(err)
	}
	// The padding between the 16-block and the aligned 256-block must
	// be reusable.
	pad, err := a.acquire(16)
	if err != nil {
		t.Fatal(err)
	}
	if pad >= big && pad < big+256 || pad == small {
		t.Fatalf("padding block %d overlaps", pad)
	}
	// A small request splits a freed larger block rather than bumping
	// the frontier (fresh allocator: no padding blocks in the way).
	b := newSpanAlloc("split", 0, 1024, true)
	first, _ := b.acquire(256)
	if _, err := b.acquire(256); err != nil {
		t.Fatal(err)
	}
	b.release(first, 256)
	frontier := b.next
	s1, err := b.acquire(32)
	if err != nil {
		t.Fatal(err)
	}
	if s1 < first || s1 >= first+256 {
		t.Fatalf("32-block at %d did not split the freed 256-block at %d", s1, first)
	}
	if b.next != frontier {
		t.Fatal("split advanced the bump frontier")
	}
	if err := b.audit(); err != nil {
		t.Fatal(err)
	}
	a.release(big, 256)
	// Exhaustion is typed.
	if _, err := a.acquire(2048); !errors.Is(err, ErrExhausted) {
		t.Fatalf("oversized acquire: %v, want ErrExhausted", err)
	}
	// Non-power-of-two sizes are rejected without panicking.
	if _, err := a.acquire(24); err == nil {
		t.Fatal("non-power-of-two size accepted")
	}
	// Double-free panics (accounting corruption must be loud).
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	a.release(big, 256)
}

// TestBlockSizeFor pins the sizing table, in particular that the legacy
// unsized shape maps to exactly a /16.
func TestBlockSizeFor(t *testing.T) {
	cases := []struct {
		nodes, links int
		want         uint32
	}{
		{0, 0, 1 << 16},  // unsized: legacy /16
		{3, 3, 32},       // /27
		{6, 6, 64},       // /26
		{14, 3, 32},      // node-bound half
		{250, 8000, 1 << 16},
		{1000, 100000, 1 << 16}, // clamped at /16
	}
	for _, c := range cases {
		if got := blockSizeFor(c.nodes, c.links); got != c.want {
			t.Errorf("blockSizeFor(%d, %d) = %d, want %d", c.nodes, c.links, got, c.want)
		}
	}
	// The derived prefix is aligned and usable.
	p := newAddrPlan()
	pfx, err := p.acquirePrefix(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if pfx.Bits() != 26 {
		t.Fatalf("prefix %v, want a /26", pfx)
	}
	if pfx.Addr() != netip.MustParseAddr("10.1.0.0") {
		t.Fatalf("first sized prefix %v, want 10.1.0.0/26", pfx)
	}
}
