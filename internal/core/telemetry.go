package core

// Telemetry wiring: EnableTelemetry activates the deterministic
// metrics registry and flight recorder for one infrastructure. All
// registration happens at driver time (node/link/slice construction),
// so the registry's snapshot order is fixed by the build sequence and
// identical for any worker count; runtime publication is sharded — a
// counter or ring is written only from the domain that owns it.

import (
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/telemetry"
)

// EnableTelemetry activates telemetry for this infrastructure and
// returns the bundle. Call right after New/NewParallel, before the
// first Run; nodes, links, and slices added later are instrumented as
// they are created. Idempotent.
func (v *VINI) EnableTelemetry() *telemetry.Telemetry {
	if v.tel != nil {
		return v.tel
	}
	v.tel = telemetry.New(0)
	for _, d := range v.loop.Executor().Domains() {
		v.tel.Rec.EnsureDomain(d.ID())
	}
	for _, name := range v.Net.Nodes() {
		v.instrumentNode(v.Net.MustNode(name))
	}
	for _, l := range v.Net.Links() {
		v.instrumentLink(l)
	}
	// Physical link transitions. FailLink/RestoreLink run on the
	// control timeline (driver calls or loop-scheduled actions), so the
	// control ring is the single writer.
	v.Net.OnLinkEvent(func(ev netem.LinkEvent) {
		detail := "up"
		if ev.Down {
			detail = "down"
		}
		v.tel.Rec.Record(v.loop.Domain, telemetry.Event{
			Kind:   telemetry.EvLink,
			Slice:  "phys",
			Elem:   ev.A + "-" + ev.B,
			Detail: detail,
		})
	})
	// Substrate packet hops: trace painted packets only — unmarked
	// traffic costs one integer comparison, and the hook runs in the
	// domain the hop happens in, so the ring write is single-writer.
	v.Net.OnPacket(func(n *netem.Node, event string, p *packet.Packet) {
		if p.Anno.Paint != telemetry.TracePaint {
			return
		}
		v.tel.Rec.Record(n.Domain(), telemetry.Event{
			Kind:   telemetry.EvPacket,
			Slice:  "phys",
			Node:   n.Name(),
			Elem:   event,
			Value:  int64(p.Len()),
		})
	})
	return v.tel
}

// Telemetry returns the active bundle (nil until EnableTelemetry).
func (v *VINI) Telemetry() *telemetry.Telemetry { return v.tel }

// ExecutorProfile reports the per-domain stall/horizon profile of the
// coordinating executor. Driver-time only.
func (v *VINI) ExecutorProfile() telemetry.ExecutorProfile {
	return telemetry.ProfileExecutor(v.loop.Executor())
}

// instrumentNode attaches substrate-level counters for one physical
// node under the reserved "phys" slice label.
func (v *VINI) instrumentNode(n *netem.Node) {
	v.tel.Rec.EnsureDomain(n.Domain().ID())
	sc := v.tel.Reg.Scope("phys", n.Name())
	n.Instrument(sc.Counter("kernel/cpu_ns"), sc.Counter("kernel/drops"))
	n.CPU.Instrument(sc.Counter("cpu/busy_ns"))
}

// instrumentLink attaches per-direction counters for one physical
// link, each owned by the transmitting node's domain.
func (v *VINI) instrumentLink(l *netem.Link) {
	cfg := l.Config()
	ab := v.tel.Reg.Scope("phys", cfg.A).With("link/" + cfg.B + "/")
	ba := v.tel.Reg.Scope("phys", cfg.B).With("link/" + cfg.A + "/")
	l.Instrument(0, ab.Counter("packets"), ab.Counter("bytes"), ab.Counter("drops"))
	l.Instrument(1, ba.Counter("packets"), ba.Counter("bytes"), ba.Counter("drops"))
}
