package core

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/topology"
	"vini/internal/traffic"
)

// buildAbilene stands up the physical Abilene substrate.
func buildAbilene(t testing.TB, seed int64) *VINI {
	if h, ok := t.(interface{ Helper() }); ok {
		h.Helper()
	}
	v := New(seed)
	g := topology.Abilene()
	for _, n := range g.Nodes() {
		a, _ := topology.AbilenePublicAddr(n)
		if _, err := v.AddNode(n, netip.MustParseAddr(a), netem.PlanetLabProfile(), sched.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range g.Links() {
		if _, err := v.AddLink(netem.LinkConfig{A: l.A, B: l.B,
			Bandwidth: l.Bandwidth, Delay: l.Delay}); err != nil {
			t.Fatal(err)
		}
	}
	v.ComputeRoutes()
	return v
}

// abileneSlice embeds a virtual Abilene mirroring the physical topology
// with the real OSPF weights (the Section 5.2 setup).
func abileneSlice(t testing.TB, v *VINI, cfg SliceConfig) *Slice {
	if h, ok := t.(interface{ Helper() }); ok {
		h.Helper()
	}
	s, err := v.CreateSlice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.Abilene()
	for _, n := range g.Nodes() {
		if _, err := s.AddVirtualNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range g.Links() {
		if _, err := s.ConnectVirtual(l.A, l.B, l.CostAB); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSliceAddressingIsolation(t *testing.T) {
	v := buildAbilene(t, 1)
	s1, _ := v.CreateSlice(SliceConfig{Name: "one"})
	s2, _ := v.CreateSlice(SliceConfig{Name: "two"})
	if s1.Prefix() == s2.Prefix() {
		t.Fatal("slices share an address block")
	}
	a, err := s1.AddVirtualNode(topology.Seattle)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.AddVirtualNode(topology.Seattle)
	if err != nil {
		t.Fatal(err)
	}
	if a.TapAddr == b.TapAddr {
		t.Fatal("tap addresses collide across slices")
	}
	if !s1.Prefix().Contains(a.TapAddr) {
		t.Fatalf("tap %v outside slice block %v", a.TapAddr, s1.Prefix())
	}
	if _, err := s1.AddVirtualNode(topology.Seattle); err == nil {
		t.Fatal("duplicate virtual node accepted")
	}
}

func TestOSPFConvergesOverOverlay(t *testing.T) {
	v := buildAbilene(t, 1)
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	s.StartOSPF(5*time.Second, 10*time.Second)
	v.Run(60 * time.Second)
	// Every virtual node must have a route to every other tap address,
	// with metrics matching the reference shortest paths.
	g := topology.Abilene()
	for _, src := range g.Nodes() {
		vn, _ := s.VirtualNode(src)
		ref := g.ShortestPaths(src, nil)
		for _, dst := range g.Nodes() {
			if src == dst {
				continue
			}
			dn, _ := s.VirtualNode(dst)
			r, ok := vn.FIB.Lookup(dn.TapAddr)
			if !ok {
				t.Fatalf("%s has no route to %s (%v)", src, dst, dn.TapAddr)
			}
			if r.Metric != ref[dst].Cost {
				t.Fatalf("%s->%s metric = %d, want %d", src, dst, r.Metric, ref[dst].Cost)
			}
		}
	}
}

func TestPingAcrossOverlay(t *testing.T) {
	v := buildAbilene(t, 2)
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)
	wash, _ := s.VirtualNode(topology.Washington)
	sea, _ := s.VirtualNode(topology.Seattle)
	traffic.NewICMPHost(sea.Phys())
	h := traffic.NewICMPHost(wash.Phys())
	p := h.StartPing(v.Loop(), traffic.PingConfig{
		Src: wash.TapAddr, Dst: sea.TapAddr,
		Interval: 200 * time.Millisecond, Count: 50})
	v.Run(60 * time.Second)
	if p.Lost != 0 {
		t.Fatalf("lost %d of %d pings on a healthy overlay", p.Lost, p.Sent)
	}
	// The default path RTT is 76 ms plus small forwarding overheads.
	if avg := p.RTTs.Mean(); avg < 75 || avg > 80 {
		t.Fatalf("mean RTT = %.2f ms, want ~76", avg)
	}
}

// TestClickFailureReroutesOSPF is the Section 5.2 experiment in miniature:
// fail Denver–Kansas City inside Click, watch OSPF reroute, restore.
func TestClickFailureReroutesOSPF(t *testing.T) {
	v := buildAbilene(t, 3)
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	s.StartOSPF(time.Second, 3*time.Second) // fast timers to keep the test short
	v.Run(30 * time.Second)
	wash, _ := s.VirtualNode(topology.Washington)
	sea, _ := s.VirtualNode(topology.Seattle)
	g := topology.Abilene()
	refUp := g.ShortestPaths(topology.Washington, nil)[topology.Seattle].Cost

	r, ok := wash.FIB.Lookup(sea.TapAddr)
	if !ok || r.Metric != refUp {
		t.Fatalf("pre-failure metric = %d want %d", r.Metric, refUp)
	}
	vl, ok := s.FindVirtualLink(topology.Denver, topology.KansasCity)
	if !ok {
		t.Fatal("no Denver-KC virtual link")
	}
	vl.SetFailed(true)
	v.Run(45 * time.Second) // dead interval + flooding + SPF
	down := map[int]bool{}
	for i, l := range g.Links() {
		if (l.A == topology.Denver && l.B == topology.KansasCity) ||
			(l.B == topology.Denver && l.A == topology.KansasCity) {
			down[i] = true
		}
	}
	refDown := g.ShortestPaths(topology.Washington, down)[topology.Seattle].Cost
	r, ok = wash.FIB.Lookup(sea.TapAddr)
	if !ok {
		t.Fatal("no route after failure")
	}
	if r.Metric != refDown {
		t.Fatalf("post-failure metric = %d, want %d (via Atlanta)", r.Metric, refDown)
	}
	vl.SetFailed(false)
	v.Run(75 * time.Second)
	r, _ = wash.FIB.Lookup(sea.TapAddr)
	if r.Metric != refUp {
		t.Fatalf("post-restore metric = %d, want %d", r.Metric, refUp)
	}
}

func TestUpcallsExposePhysicalFailures(t *testing.T) {
	v := buildAbilene(t, 4)
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true,
		ExposePhysicalFailures: true})
	var alarms []LinkAlarm
	s.OnAlarm(func(a LinkAlarm) { alarms = append(alarms, a) })
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)
	// Fail the physical Denver-KC link. The substrate reroutes around it
	// (masking), but the upcall must fire and the virtual link must fail.
	if err := v.FailLink(topology.Denver, topology.KansasCity, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 {
		t.Fatal("no upcall delivered")
	}
	found := false
	for _, a := range alarms {
		if (a.A == topology.Denver && a.B == topology.KansasCity) ||
			(a.A == topology.KansasCity && a.B == topology.Denver) {
			found = true
		}
	}
	if !found {
		t.Fatalf("upcalls missed the affected virtual link: %+v", alarms)
	}
	vl, _ := s.FindVirtualLink(topology.Denver, topology.KansasCity)
	if !vl.Failed() {
		t.Fatal("ExposePhysicalFailures did not fail the virtual link")
	}
	v.Run(60 * time.Second)
	// OSPF must have routed around the exposed failure.
	wash, _ := s.VirtualNode(topology.Washington)
	sea, _ := s.VirtualNode(topology.Seattle)
	r, ok := wash.FIB.Lookup(sea.TapAddr)
	if !ok {
		t.Fatal("no route after exposed failure")
	}
	if r.Metric == topology.Abilene().ShortestPaths(topology.Washington, nil)[topology.Seattle].Cost {
		t.Fatal("route still uses the failed link's metric")
	}
	// Restore and verify the virtual link is restored too.
	v.RestoreLink(topology.Denver, topology.KansasCity, 100*time.Millisecond)
	if vl.Failed() {
		t.Fatal("restore upcall did not clear the virtual failure")
	}
}

func TestSimultaneousSlicesAreIsolated(t *testing.T) {
	v := buildAbilene(t, 5)
	s1 := abileneSlice(t, v, SliceConfig{Name: "ospf-slice", CPUShare: 0.2, RT: true})
	s2 := abileneSlice(t, v, SliceConfig{Name: "rip-slice", CPUShare: 0.2, RT: true})
	s1.StartOSPF(time.Second, 3*time.Second)
	s2.StartRIP(2 * time.Second)
	v.Run(60 * time.Second)
	// Both slices独立 converge; failing a virtual link in slice 1 must
	// not affect slice 2's routes.
	w1, _ := s1.VirtualNode(topology.Washington)
	w2, _ := s2.VirtualNode(topology.Washington)
	sea1, _ := s1.VirtualNode(topology.Seattle)
	sea2, _ := s2.VirtualNode(topology.Seattle)
	if _, ok := w1.FIB.Lookup(sea1.TapAddr); !ok {
		t.Fatal("slice 1 did not converge")
	}
	r2, ok := w2.FIB.Lookup(sea2.TapAddr)
	if !ok {
		t.Fatal("slice 2 (RIP) did not converge")
	}
	vl, _ := s1.FindVirtualLink(topology.Denver, topology.KansasCity)
	vl.SetFailed(true)
	v.Run(90 * time.Second)
	r2b, ok := w2.FIB.Lookup(sea2.TapAddr)
	if !ok || r2b.Metric != r2.Metric || r2b.NextHop != r2.NextHop {
		t.Fatalf("slice 2 routes perturbed by slice 1 failure: %+v -> %+v", r2, r2b)
	}
	// Cross-slice address spaces must not leak: slice 1 has no route to
	// slice 2's addresses.
	if _, ok := w1.FIB.Lookup(sea2.TapAddr); ok {
		t.Fatal("slice 1 routes to slice 2's address space")
	}
}

func TestAtomicProtocolSwitchover(t *testing.T) {
	v := buildAbilene(t, 6)
	s := abileneSlice(t, v, SliceConfig{Name: "dual", CPUShare: 0.25, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	s.StartRIP(2 * time.Second)
	v.Run(90 * time.Second)
	wash, _ := s.VirtualNode(topology.Washington)
	sea, _ := s.VirtualNode(topology.Seattle)
	r, ok := wash.FIB.Lookup(sea.TapAddr)
	if !ok || r.Proto != "ospf" {
		t.Fatalf("pre-switch winner = %+v (want ospf by admin distance)", r)
	}
	if err := s.SwitchProtocol("rip"); err != nil {
		t.Fatal(err)
	}
	r, ok = wash.FIB.Lookup(sea.TapAddr)
	if !ok || r.Proto != "rip" {
		t.Fatalf("post-switch winner = %+v (want rip)", r)
	}
	if err := s.SwitchProtocol("nonsense"); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestEgressNATLifeOfAPacket(t *testing.T) {
	// The Figure 2 scenario: a packet from an overlay address reaches an
	// external web server via the egress NAT, and the response returns
	// through the overlay.
	v := buildAbilene(t, 7)
	// An external host (CNN in the paper) attached to New York.
	cnnAddr := netip.MustParseAddr("64.236.16.20")
	if _, err := v.AddNode("cnn", cnnAddr, netem.DETERProfile(), sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddLink(netem.LinkConfig{A: "cnn", B: topology.NewYork,
		Bandwidth: 100e6, Delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	v.ComputeRoutes()
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	ny, _ := s.VirtualNode(topology.NewYork)
	if err := ny.EnableEgress(); err != nil {
		t.Fatal(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)
	// A "web server" on the external host.
	cnn, _ := v.Net.Node("cnn")
	var gotReq []byte
	cnn.StackListenUDP(80, func(d []byte) {
		gotReq = d
		var ip packet.IPv4
		seg, _ := ip.Parse(d)
		var u packet.UDP
		u.Parse(seg)
		resp := packet.BuildUDP(cnnAddr, ip.Src, 80, u.SrcPort, 64, []byte("200 OK"))
		cnn.StackSend(resp)
	})
	// Client app on the Seattle virtual node sends through the overlay:
	// divert the external destination into the slice's tap.
	sea, _ := s.VirtualNode(topology.Seattle)
	sea.DivertPrefix(netip.PrefixFrom(cnnAddr, 32))
	var gotResp []byte
	sea.Phys().StackListenUDP(5555, func(d []byte) { gotResp = d })
	req := packet.BuildUDP(sea.TapAddr, cnnAddr, 5555, 80, 64, []byte("GET /"))
	sea.Phys().StackSend(req)
	v.Run(40 * time.Second)
	if gotReq == nil {
		t.Fatal("request never reached the external server")
	}
	f, _ := packet.FlowOf(gotReq)
	if f.Src != ny.Phys().Addr() {
		t.Fatalf("request source = %v, want the egress public address %v", f.Src, ny.Phys().Addr())
	}
	if gotResp == nil {
		t.Fatal("response never returned through the overlay")
	}
	rf, _ := packet.FlowOf(gotResp)
	if rf.Src != cnnAddr || rf.Dst != sea.TapAddr || rf.DstPort != 5555 {
		t.Fatalf("response flow = %v", rf)
	}
}

func TestVPNOptIn(t *testing.T) {
	// An end host opts in via the VPN and pings an overlay node.
	v := buildAbilene(t, 8)
	clientPub := netip.MustParseAddr("128.112.93.81")
	if _, err := v.AddNode("client", clientPub, netem.DETERProfile(), sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddLink(netem.LinkConfig{A: "client", B: topology.Washington,
		Bandwidth: 10e6, Delay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	v.ComputeRoutes()
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	wash, _ := s.VirtualNode(topology.Washington)
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	clientOverlay := netip.MustParseAddr("10.1.0.87")
	if err := wash.EnableVPNServer(1194); err != nil {
		t.Fatal(err)
	}
	if err := wash.RegisterVPNClient(clientOverlay, key); err != nil {
		t.Fatal(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)
	vc, err := NewVPNClient(v, "client", clientOverlay, key,
		netip.AddrPortFrom(wash.Phys().Addr(), 1194),
		[]netip.Prefix{s.Prefix()})
	if err != nil {
		t.Fatal(err)
	}
	// Ping Seattle's tap address from the client through the VPN.
	sea, _ := s.VirtualNode(topology.Seattle)
	traffic.NewICMPHost(sea.Phys())
	clientNode, _ := v.Net.Node("client")
	h := traffic.NewICMPHost(clientNode)
	p := h.StartPing(v.Loop(), traffic.PingConfig{
		Src: clientOverlay, Dst: sea.TapAddr,
		Interval: 500 * time.Millisecond, Count: 10})
	v.Run(70 * time.Second)
	if p.RTTs.N() == 0 {
		t.Fatalf("no echo replies through the VPN (sent %d, client rx %d)", p.Sent, vc.Received)
	}
	if p.LossRate() > 0.2 {
		t.Fatalf("VPN path loss = %.2f", p.LossRate())
	}
	if vc.Received == 0 {
		t.Fatal("client decrypted nothing")
	}
}

func TestLifeOfPacketTrace(t *testing.T) {
	v := buildAbilene(t, 9)
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)
	wash, _ := s.VirtualNode(topology.Washington)
	ny, _ := s.VirtualNode(topology.NewYork)
	var events []string
	ny.Trace = func(el, ev string, p *packet.Packet) {
		events = append(events, el+":"+ev)
	}
	sea, _ := s.VirtualNode(topology.Seattle)
	// Send one UDP packet Washington -> Seattle; it transits New York.
	sea.Phys().StackListenUDP(7, func([]byte) {})
	wash.Phys().StackSend(packet.BuildUDP(wash.TapAddr, sea.TapAddr, 7, 7, 64, []byte("x")))
	v.Run(35 * time.Second)
	foundRoute := false
	for _, e := range events {
		if e == "rt:route" {
			foundRoute = true
		}
	}
	if !foundRoute {
		t.Fatalf("transit trace missing route event: %v", events)
	}
}
