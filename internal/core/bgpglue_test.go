package core

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/bgp"
	"vini/internal/topology"
)

// wireSpeakers joins two BGP speakers with a reliable delayed pipe on
// the VINI event loop (the TCP session of a real deployment).
func wireSpeakers(v *VINI, a, b *bgp.Speaker, aName, bName string) {
	mk := func(dst *bgp.Speaker, from string) bgp.Conn {
		return connFn(func(msg []byte) {
			buf := append([]byte(nil), msg...)
			v.Loop().Schedule(5*time.Millisecond, func() { dst.Deliver(from, buf) })
		})
	}
	a.AddPeer(bgp.PeerConfig{Name: bName, EBGP: true}, mk(b, aName))
	b.AddPeer(bgp.PeerConfig{Name: aName, EBGP: true}, mk(a, bName))
}

type connFn func([]byte)

func (f connFn) Send(msg []byte) { f(msg) }

func TestConnectBGPDistributesExternalRoutes(t *testing.T) {
	v := buildAbilene(t, 41)
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	ny, _ := s.VirtualNode(topology.NewYork)
	if err := ny.EnableEgress(); err != nil {
		t.Fatal(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)

	// The mux holds the single adjacency with the upstream provider.
	mux := bgp.NewMux(v.Loop(), bgp.MuxConfig{ASN: 64600, RouterID: 9,
		NextHopSelf: ny.Phys().Addr(), HoldTime: 30 * time.Second})
	upstream := bgp.NewSpeaker(v.Loop(), bgp.Config{ASN: 7018, RouterID: 1,
		NextHopSelf: netip.MustParseAddr("12.0.0.1"), HoldTime: 30 * time.Second})
	wireSpeakers(v, mux.Speaker(), upstream, "vini-mux", "upstream")
	if err := s.ConnectBGP(mux, topology.NewYork,
		netip.MustParsePrefix("198.32.0.0/20"), 10, 10); err != nil {
		t.Fatal(err)
	}
	upstream.Originate(netip.MustParsePrefix("12.0.0.0/8"), bgp.PathAttrs{})
	v.Run(v.Loop().Now() + 10*time.Second)

	// The upstream learned the slice's prefix over the one session.
	found := false
	for _, r := range upstream.LocRIB() {
		if r.Prefix == netip.MustParsePrefix("198.32.0.0/20") {
			found = true
			if len(r.Attrs.ASPath) == 0 || r.Attrs.ASPath[0] != 64600 {
				t.Fatalf("AS path = %v", r.Attrs.ASPath)
			}
		}
	}
	if !found {
		t.Fatalf("slice prefix not announced upstream: %+v", upstream.LocRIB())
	}

	ext := netip.MustParseAddr("12.9.9.9")
	// At the egress, the external route exits through NAT.
	r, ok := ny.FIB.Lookup(ext)
	if !ok || r.Proto != "bgp" || r.OutPort != portNAPT {
		t.Fatalf("egress external route = %+v ok=%v", r, ok)
	}
	// At Seattle, the BGP route is recursively resolved: its forwarding
	// state equals the IGP route toward the egress tap address.
	sea, _ := s.VirtualNode(topology.Seattle)
	rExt, ok := sea.FIB.Lookup(ext)
	if !ok || rExt.Proto != "bgp" {
		t.Fatalf("seattle external route = %+v ok=%v", rExt, ok)
	}
	rIGP, ok := sea.FIB.Lookup(ny.TapAddr)
	if !ok {
		t.Fatal("seattle has no IGP route to the egress")
	}
	if rExt.NextHop != rIGP.NextHop || rExt.OutPort != rIGP.OutPort {
		t.Fatalf("BGP route not resolved via IGP: bgp=%+v igp=%+v", rExt, rIGP)
	}

	// Recursive re-resolution: fail Seattle's current first link toward
	// the egress; after the IGP reconverges, the BGP route follows.
	oldNH := rExt.NextHop
	// Find the neighbor whose interface address is the IGP next hop.
	var failLink *VirtualLink
	for _, vl := range s.vlinks {
		if (vl.A == sea && vl.B.hasIfaceAddr(oldNH)) || (vl.B == sea && vl.A.hasIfaceAddr(oldNH)) {
			failLink = vl
		}
	}
	if failLink == nil {
		t.Fatalf("could not find virtual link for next hop %v", oldNH)
	}
	failLink.SetFailed(true)
	v.Run(v.Loop().Now() + 30*time.Second)
	rExt2, ok := sea.FIB.Lookup(ext)
	if !ok {
		t.Fatal("external route lost after IGP failover")
	}
	if rExt2.NextHop == oldNH {
		t.Fatalf("BGP route still via failed next hop %v", oldNH)
	}
	rIGP2, _ := sea.FIB.Lookup(ny.TapAddr)
	if rExt2.NextHop != rIGP2.NextHop {
		t.Fatalf("re-resolution mismatch: bgp=%+v igp=%+v", rExt2, rIGP2)
	}

	// Withdrawal: the upstream withdraws; the overlay loses the route
	// (the egress default route may still cover it via static 0/0, so
	// check the /8 specifically is gone from the RIB's bgp set).
	upstream.Withdraw(netip.MustParsePrefix("12.0.0.0/8"))
	v.Run(v.Loop().Now() + 10*time.Second)
	if r, ok := sea.FIB.Lookup(ext); ok && r.Proto == "bgp" && r.Prefix == netip.MustParsePrefix("12.0.0.0/8") {
		t.Fatalf("withdrawn external route survives: %+v", r)
	}
}

// hasIfaceAddr reports whether the node owns the interface address.
func (vn *VirtualNode) hasIfaceAddr(a netip.Addr) bool {
	for _, ifc := range vn.ifaces {
		if ifc.Addr == a {
			return true
		}
	}
	return false
}

func TestConnectBGPValidation(t *testing.T) {
	v := buildAbilene(t, 42)
	s := abileneSlice(t, v, SliceConfig{Name: "iias"})
	mux := bgp.NewMux(v.Loop(), bgp.MuxConfig{ASN: 64600, RouterID: 9})
	if err := s.ConnectBGP(mux, "atlantis", netip.MustParsePrefix("198.32.0.0/20"), 1, 1); err == nil {
		t.Fatal("unknown egress accepted")
	}
	// Announcing outside the registered block fails at the mux.
	if err := s.ConnectBGP(mux, topology.NewYork, netip.MustParsePrefix("198.32.0.0/20"), 1, 1); err != nil {
		t.Fatal(err)
	}
	// A second attachment of the same slice is rejected by the mux.
	if err := s.ConnectBGP(mux, topology.NewYork, netip.MustParsePrefix("198.32.16.0/20"), 1, 1); err == nil {
		t.Fatal("double registration accepted")
	}
}
