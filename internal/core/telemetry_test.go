package core

import (
	"strings"
	"testing"
	"time"

	"vini/internal/packet"
	"vini/internal/telemetry"
	"vini/internal/topology"
)

func findMetric(snap []telemetry.MetricValue, slice, node, name string) (telemetry.MetricValue, bool) {
	for _, m := range snap {
		if m.Slice == slice && m.Node == node && m.Name == name {
			return m, true
		}
	}
	return telemetry.MetricValue{}, false
}

// TestTelemetryCountersAndTimeline drives the Section 5.2 failure
// experiment with telemetry enabled and checks the registry and flight
// recorder captured the layers the paper instruments by hand: Click
// element counters, substrate link counters, OSPF adjacency events,
// route installs, and the convergence window around a link failure.
func TestTelemetryCountersAndTimeline(t *testing.T) {
	v := buildAbilene(t, 3)
	tel := v.EnableTelemetry()
	if v.EnableTelemetry() != tel {
		t.Fatal("EnableTelemetry is not idempotent")
	}
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)

	vl, ok := s.FindVirtualLink(topology.Denver, topology.KansasCity)
	if !ok {
		t.Fatal("no Denver-KC virtual link")
	}
	vl.SetFailed(true)
	v.Run(60 * time.Second)

	snap := tel.Snapshot()
	// Click data-plane counters: OSPF floods traverse the per-tunnel
	// chains, so tunnel counters must be nonzero on every node.
	m, ok := findMetric(snap.Metrics, "iias", topology.Denver, "click/encap/sent")
	if !ok || m.Value == 0 {
		t.Fatalf("click/encap/sent missing or zero on Denver: %+v", m)
	}
	if m.Kind != "counter" {
		t.Fatalf("encap/sent kind = %q, want counter", m.Kind)
	}
	// Substrate link counters under the reserved "phys" slice.
	if m, ok = findMetric(snap.Metrics, "phys", topology.Denver, "link/"+topology.KansasCity+"/packets"); !ok || m.Value == 0 {
		t.Fatalf("phys link counter missing or zero: %+v", m)
	}
	// Scheduler instrumentation: the Click forwarder consumed CPU.
	if m, ok = findMetric(snap.Metrics, "iias", topology.Denver, "proc/cpu_ns"); !ok || m.Value == 0 {
		t.Fatalf("proc/cpu_ns missing or zero: %+v", m)
	}
	if m, ok = findMetric(snap.Metrics, "phys", topology.Denver, "cpu/busy_ns"); !ok || m.Value == 0 {
		t.Fatalf("cpu/busy_ns missing or zero: %+v", m)
	}

	var sawNeighbor, sawRoute, sawLink bool
	for _, ev := range snap.Events {
		switch ev.Kind {
		case telemetry.EvNeighbor:
			sawNeighbor = true
		case telemetry.EvRoute:
			sawRoute = true
		case telemetry.EvLink:
			sawLink = true
		}
	}
	if !sawNeighbor || !sawRoute || !sawLink {
		t.Fatalf("timeline incomplete: neighbor=%v route=%v link=%v",
			sawNeighbor, sawRoute, sawLink)
	}

	// Convergence-after-failure is a first-class query: the failure
	// window must contain route installs and close within the run.
	var conv *telemetry.Convergence
	for i := range snap.Convergences {
		c := &snap.Convergences[i]
		if c.Down && c.Link == topology.Denver+"-"+topology.KansasCity {
			conv = c
			break
		}
	}
	if conv == nil {
		t.Fatalf("no convergence window for the failed link; got %+v", snap.Convergences)
	}
	if conv.Installs == 0 || conv.Duration <= 0 {
		t.Fatalf("degenerate convergence window: %+v", *conv)
	}
	// OSPF with a 3 s dead interval cannot converge faster than the dead
	// timer; generous upper bound for flooding + SPF delay.
	if conv.Duration < 2*time.Second || conv.Duration > 30*time.Second {
		t.Fatalf("convergence duration %v outside [2s, 30s]", conv.Duration)
	}

	// The Prometheus exposition renders without error and includes the
	// slice label.
	var b strings.Builder
	if err := tel.Reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `slice="iias"`) {
		t.Fatal("prometheus exposition missing slice label")
	}
}

// TestTelemetryPacketPathTrace paints one packet and follows it
// hop-by-hop: Click elements on the ingress node, substrate link
// transmissions and receives along the physical path, and Click again
// on the egress node — the life-of-a-packet view, ordered by the
// deterministic merge key.
func TestTelemetryPacketPathTrace(t *testing.T) {
	v := buildAbilene(t, 7)
	tel := v.EnableTelemetry()
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(30 * time.Second)

	wash, _ := s.VirtualNode(topology.Washington)
	sea, _ := s.VirtualNode(topology.Seattle)
	before := len(telemetry.PacketPath(tel.Rec.Events()))
	v.Loop().Schedule(0, func() {
		dgram := packet.BuildUDP(wash.TapAddr, sea.TapAddr, 9000, 9000, 64, []byte("trace-me"))
		p := packet.New(dgram)
		p.Anno.Paint = telemetry.TracePaint
		wash.Router.Push("fromtap", 0, p)
	})
	v.Run(35 * time.Second)

	hops := telemetry.PacketPath(tel.Rec.Events())[before:]
	if len(hops) == 0 {
		t.Fatal("painted packet left no trace")
	}
	var sawIngress, sawSubstrate, sawEgress bool
	for i, h := range hops {
		if i > 0 && hops[i-1].At > h.At {
			t.Fatalf("hops out of travel order: %+v then %+v", hops[i-1], h)
		}
		switch {
		case h.Slice == "iias" && h.Node == topology.Washington && h.Elem == "rt":
			sawIngress = true
		case h.Slice == "phys" && h.Elem == "link-tx":
			sawSubstrate = true
		case h.Slice == "iias" && h.Node == topology.Seattle && h.Elem == "totap":
			sawEgress = true
		}
	}
	if !sawIngress || !sawSubstrate || !sawEgress {
		t.Fatalf("path incomplete: ingress=%v substrate=%v egress=%v; hops=%+v",
			sawIngress, sawSubstrate, sawEgress, hops)
	}
}
