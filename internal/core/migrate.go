package core

// Live slice migration (make-before-break): move one virtual node to a
// different physical node while the slice keeps forwarding. The GENI
// recipe, adapted to IIAS:
//
//	Migrate()  — admit the shadow (transient double CPU reservation),
//	             clone the forwarder on the target, pre-install its
//	             FIB/encap/connected state, and start double-delivering:
//	             every neighbor sends the original packet to the old
//	             instance and a stamped clone to the shadow.
//	cutover()  — one control-domain barrier event: repoint every
//	             neighbor's encap entry at the shadow (with a drain
//	             alias for the old address), transplant the routing
//	             process state (ospf.ExportState → ImportState, so
//	             peers never see the adjacency reset), and swap the
//	             slice's identity maps to the shadow. This is the
//	             commit point.
//	retire()   — after the drain window, stop whatever the old
//	             incarnation still schedules, flush its Click buffers
//	             back to the pool, and drop its ledger handles
//	             newest-first (addresses, process, CPU reservation).
//
// Duplicate suppression is receiver-side and unconditional: clones are
// stamped (packet.Annotations.MigClone, carried by the wire codec) and
// every virtual node's DupSuppress element sits between FromTunnel and
// the checker, so delivery stays exactly-once no matter which instance
// wins a race. Suppression, not buffering, because the shadow would
// otherwise have to replay a buffer against live traffic at cutover —
// reordering — while suppression makes the window idempotent.

import (
	"fmt"
	"net/netip"
	"strconv"
	"sync/atomic"
	"time"

	"vini/internal/fea"
	"vini/internal/fib"
	"vini/internal/netem"
	"vini/internal/telemetry"
)

// MigrateOptions tunes one migration.
type MigrateOptions struct {
	// Window is the double-delivery period before cutover; the shadow
	// warms while the old instance still forwards. Default 500ms.
	Window time.Duration
	// Drain keeps the old instance alive after cutover so packets
	// already in flight toward its address still deliver. Default 500ms.
	Drain time.Duration
	// Naive selects the break-before-make baseline: tear the old
	// instance down first, rebuild fresh on the target, and let routing
	// reconverge from scratch. In-flight packets drop and peers see the
	// adjacency reset — the blackout the default path exists to avoid.
	Naive bool
}

// MigrationPhase is the migration's position in its state machine.
type MigrationPhase int

const (
	// MigWindow: shadow built and warming, double-delivery active, old
	// instance still authoritative. Abort is possible.
	MigWindow MigrationPhase = iota
	// MigDraining: cutover done (commit point passed), shadow
	// authoritative, old instance draining in-flight packets.
	MigDraining
	// MigDone: old instance retired, every handle released.
	MigDone
	// MigAborted: shadow torn down before cutover; the old instance
	// never stopped being authoritative.
	MigAborted
)

func (p MigrationPhase) String() string {
	switch p {
	case MigWindow:
		return "Window"
	case MigDraining:
		return "Draining"
	case MigDone:
		return "Done"
	case MigAborted:
		return "Aborted"
	default:
		return fmt.Sprintf("MigrationPhase(%d)", int(p))
	}
}

// Migration tracks one in-flight (or completed) vnode migration.
type Migration struct {
	s      *Slice
	old    *VirtualNode
	shadow *VirtualNode
	// fromName/toName are the physical node names; the slice's vnode
	// key moves from one to the other at cutover.
	fromName, toName string
	fromAddr, toAddr netip.Addr
	drain            time.Duration
	phase            MigrationPhase
	// dup gates the double-delivery branch on every neighbor's
	// per-packet transmit path. Only control-domain barriers write it.
	dup bool
	// clones counts stamped duplicates sent to the shadow (senders run
	// in their own domains, hence atomic).
	clones atomic.Uint64
}

// Phase returns the migration's current state-machine position.
func (m *Migration) Phase() MigrationPhase { return m.phase }

// From and To return the old and new physical node names.
func (m *Migration) From() string { return m.fromName }
func (m *Migration) To() string   { return m.toName }

// ClonesSent counts the stamped duplicates sent to the shadow during
// the double-delivery window.
func (m *Migration) ClonesSent() uint64 { return m.clones.Load() }

// CloneDrops reads the shadow's DupSuppress drop counter: clones
// retired at the receiver. With suppression intact this tracks
// ClonesSent minus clones still in flight (or dropped en route).
func (m *Migration) CloneDrops() uint64 {
	if m.shadow == nil {
		return 0
	}
	v, err := m.shadow.Router.Handler("dup.drops", "")
	if err != nil {
		return 0
	}
	n, _ := strconv.ParseUint(v, 10, 64)
	return n
}

// Abort abandons a migration that has not reached its cutover: the
// shadow tears down, its ledger handles drop, and the old instance
// stays authoritative. Past the commit point the migration can only
// run forward.
func (m *Migration) Abort() error {
	if m.phase != MigWindow {
		return fmt.Errorf("core: migration %s->%s is past the commit point (%s)",
			m.fromName, m.toName, m.phase)
	}
	m.abort()
	return nil
}

// ActiveMigration returns the slice's in-flight migration, nil if none.
func (s *Slice) ActiveMigration() *Migration { return s.mig }

// Shadow returns the target-side clone. Mutation tests reach through it
// to sabotage the shadow's duplicate suppression and prove the
// exactly-once checkers fire.
func (m *Migration) Shadow() *VirtualNode { return m.shadow }

// BreakDupSuppressionForTest disables the duplicate-suppression element
// on this virtual node. Mutation tests use it to prove the migration
// invariant checkers have teeth: with suppression off, window clones
// leak to applications as duplicate deliveries.
func (vn *VirtualNode) BreakDupSuppressionForTest() {
	vn.Router.Handler("dup.active", "false")
}

// Migrate moves the virtual node currently on vnodeName to targetPhys.
// The slice must be Running; one migration runs at a time. The returned
// Migration reports progress (the work itself runs on the slice's
// control timers: cutover after opt.Window, retirement opt.Drain
// later). Must run at a barrier or on the control domain.
func (s *Slice) Migrate(vnodeName, targetPhys string, opt MigrateOptions) (*Migration, error) {
	if s.state != StateRunning {
		return nil, fmt.Errorf("core: cannot migrate slice %s in state %s", s.cfg.Name, s.state)
	}
	if s.mig != nil {
		return nil, fmt.Errorf("core: slice %s already has a migration in flight (%s->%s)",
			s.cfg.Name, s.mig.fromName, s.mig.toName)
	}
	old, ok := s.vnodes[vnodeName]
	if !ok {
		return nil, fmt.Errorf("core: no virtual node on %q", vnodeName)
	}
	if _, dup := s.vnodes[targetPhys]; dup {
		return nil, fmt.Errorf("core: slice %s already on node %s", s.cfg.Name, targetPhys)
	}
	target, ok := s.vini.Net.Node(targetPhys)
	if !ok {
		return nil, fmt.Errorf("core: unknown physical node %q", targetPhys)
	}
	if old.vpn != nil || old.egress {
		return nil, fmt.Errorf("core: cannot migrate %s: VPN/NAT flow state is node-local", vnodeName)
	}
	if opt.Window <= 0 {
		opt.Window = 500 * time.Millisecond
	}
	if opt.Drain <= 0 {
		opt.Drain = 500 * time.Millisecond
	}
	if opt.Naive {
		return s.migrateNaive(old, target, vnodeName, targetPhys)
	}
	// Admission: the shadow holds a full reservation on the target while
	// the old instance keeps its own — the transient double reservation
	// is subject to the same oversubscription check as any embedding.
	if err := s.vini.reserveCPU(targetPhys, s.cfg.CPUShare); err != nil {
		return nil, err
	}
	cpu := s.res.acquire("cpu", targetPhys, func() { s.vini.releaseCPU(targetPhys, s.cfg.CPUShare) })
	shadow, err := s.buildShadow(old, target, true)
	if err != nil {
		if shadow != nil {
			s.dropVnodeHandles(shadow)
		}
		s.res.drop(cpu)
		return nil, err
	}
	shadow.handles = append([]*handle{cpu}, shadow.handles...)
	m := &Migration{
		s: s, old: old, shadow: shadow,
		fromName: vnodeName, toName: targetPhys,
		fromAddr: old.phys.Addr(), toAddr: target.Addr(),
		drain: opt.Drain, phase: MigWindow,
	}
	s.mig = m
	m.dup = true
	s.state = StateMigrating
	m.event("window", m.fromName)
	s.ctl.Schedule(opt.Window, m.cutover)
	return m, nil
}

// buildShadow clones the old incarnation's configuration onto the
// target node: process, interfaces (same tunnel indices), link fail
// bits and shaper rates, and — when preinstall is set — the old RIB's
// protocol routes, so the shadow forwards correctly from its first
// packet. A partially built shadow is returned alongside the error so
// the caller can drop its handles.
func (s *Slice) buildShadow(old *VirtualNode, target *netem.Node, preinstall bool) (*VirtualNode, error) {
	shadow, err := newVirtualNode(s, target, old.TapAddr)
	if err != nil {
		return nil, err
	}
	// Replay the interface plan in index order so tunnel indices line up
	// with the old instance's (OSPF interface indices, encap entries,
	// and per-tunnel Click chains all key on them).
	for _, ifc := range old.ifaces {
		if _, err := shadow.addInterface(ifc.Prefix, ifc.Addr, ifc.PeerAddr, ifc.Peer, ifc.Cost); err != nil {
			return shadow, err
		}
	}
	// Replicate link configuration: effective fail bits and shaper caps.
	for _, vl := range s.vlinks {
		if vl.A == old {
			shadow.setTunnelFailed(vl.AIf, vl.applied)
			if vl.bw > 0 {
				shadow.Router.Handler(fmt.Sprintf("shape%d.rate", vl.AIf), fmt.Sprintf("%f", vl.bw))
			}
		}
		if vl.B == old {
			shadow.setTunnelFailed(vl.BIf, vl.applied)
			if vl.bw > 0 {
				shadow.Router.Handler(fmt.Sprintf("shape%d.rate", vl.BIf), fmt.Sprintf("%f", vl.bw))
			}
		}
	}
	shadow.extraStubs = append([]netip.Prefix(nil), old.extraStubs...)
	if preinstall {
		// Pre-install the FIB: the old RIB's protocol routes copy over
		// as data; the shadow's own routing process takes over at
		// cutover (connected routes were installed by addInterface).
		for _, pr := range []struct {
			proto string
			dist  int
		}{{"static", fea.DistStatic}, {"ospf", fea.DistOSPF}, {"rip", fea.DistRIP}} {
			if rts := old.rib.ProtoRoutes(pr.proto); len(rts) > 0 {
				shadow.rib.SetRoutes(pr.proto, pr.dist, rts)
			}
		}
		shadow.bgpRaw = append([]fib.Route(nil), old.bgpRaw...)
		shadow.bgpAttached = old.bgpAttached
		if shadow.bgpAttached {
			shadow.resolveBGP()
		}
	}
	return shadow, nil
}

// cutover is the commit point, one atomic control-domain event: from
// this barrier on the shadow is the slice's presence on the target.
func (m *Migration) cutover() {
	if m.phase != MigWindow {
		return // aborted before the window elapsed
	}
	s, old, shadow := m.s, m.old, m.shadow
	// 1. Stop double-delivery: senders now see repointed encap entries.
	m.dup = false
	// 2. Repoint every neighbor at the shadow's physical address, with a
	// drain alias so the old instance's in-flight traffic (outer source
	// = old address) still demultiplexes to the right ingress tunnel.
	for _, ifc := range old.ifaces {
		peer := ifc.Peer
		if e, ok := peer.Encap.Lookup(ifc.Addr); ok {
			peer.Encap.SetRemoteAlias(m.fromAddr, m.toAddr)
			e.Remote = m.toAddr
			peer.Encap.Set(e)
		}
	}
	// 3. Transplant the routing processes. OSPF state moves wholesale —
	// sequence numbers, LSDB, Full neighbors — so peers never see a
	// hello that forgets them (which would reset the adjacency and
	// trigger the reconvergence the naive path suffers). RIP has no
	// adjacency state; a fresh instance re-announces within one update
	// period while the pre-installed routes keep forwarding.
	if old.OSPF != nil {
		st := old.OSPF.ExportState()
		old.OSPF.Stop()
		r := shadow.buildOSPF(old.ospfHello, old.ospfDead)
		if err := r.ImportState(st); err != nil {
			// Unreachable by construction (identical interface plan),
			// but never start a half-imported router silently.
			m.event("import-error: "+err.Error(), m.toName)
		}
		r.Start()
	}
	if old.RIP != nil {
		old.RIP.Stop()
		shadow.startRIP(old.ripUpdate)
	}
	// 4. Swap identity: the slice's vnode on fromName becomes the shadow
	// on toName; virtual links, their pinned paths, and peer interface
	// pointers follow.
	delete(s.vnodes, m.fromName)
	s.vnodes[m.toName] = shadow
	for i, n := range s.vorder {
		if n == m.fromName {
			s.vorder[i] = m.toName
			break
		}
	}
	for _, vl := range s.vlinks {
		touched := false
		if vl.A == old {
			vl.A = shadow
			touched = true
		}
		if vl.B == old {
			vl.B = shadow
			touched = true
		}
		if touched {
			a, b := vl.A.phys.Name(), vl.B.phys.Name()
			vl.name = a + "-" + b
			vl.path = s.vini.physPath(a, b)
			if s.cfg.ExposePhysicalFailures {
				vl.physFailed = s.anyPathDown(vl.path)
				vl.applyFailState()
			}
		}
	}
	for _, n := range s.vorder {
		for _, ifc := range s.vnodes[n].ifaces {
			if ifc.Peer == old {
				ifc.Peer = shadow
			}
		}
	}
	m.phase = MigDraining
	m.event("cutover", m.toName)
	s.ctl.Schedule(m.drain, m.retire)
}

// retire finishes the migration: the old incarnation's timers cancel,
// its buffered packets flush back to the pool, and its ledger handles
// drop newest-first (interface addresses, tap address, process, CPU
// reservation). The drain aliases clear — the old address is dead.
func (m *Migration) retire() {
	if m.phase != MigDraining {
		return
	}
	s, old := m.s, m.old
	old.group.StopAll()
	old.ticks.StopAll()
	old.Router.Flush()
	s.dropVnodeHandles(old)
	for _, ifc := range m.shadow.ifaces {
		ifc.Peer.Encap.ClearRemoteAlias(m.fromAddr)
	}
	m.phase = MigDone
	s.mig = nil
	if s.state == StateMigrating {
		s.state = StateRunning
	}
	m.event("retired", m.fromName)
}

// abort tears the shadow down before the commit point; the old
// instance was authoritative throughout, so nothing else changes.
func (m *Migration) abort() {
	s, shadow := m.s, m.shadow
	m.dup = false
	shadow.group.StopAll()
	shadow.ticks.StopAll()
	shadow.Router.Flush()
	s.dropVnodeHandles(shadow)
	m.phase = MigAborted
	s.mig = nil
	if s.state == StateMigrating {
		s.state = StateRunning
	}
	m.event("aborted", m.toName)
}

// finish resolves an in-flight migration synchronously (Pause/Destroy
// interleavings): pre-cutover it aborts — the shadow never carried
// traffic — post-cutover it completes the retirement early, because
// the cutover is the commit point.
func (m *Migration) finish() {
	switch m.phase {
	case MigWindow:
		m.abort()
	case MigDraining:
		m.retire()
	}
}

// dropVnodeHandles releases one incarnation's ledger handles
// newest-first, leaving the rest of the slice's ledger intact.
func (s *Slice) dropVnodeHandles(vn *VirtualNode) {
	for i := len(vn.handles) - 1; i >= 0; i-- {
		s.res.drop(vn.handles[i])
	}
	vn.handles = nil
}

// migrateNaive is the break-before-make baseline: retire first, build
// fresh, reconverge. Synchronous; the returned Migration is already
// Done. Packets in flight toward the old instance are dropped at its
// closed sockets, and peers' OSPF adjacencies reset when the fresh
// instance's first hello does not list them — the measured blackout.
func (s *Slice) migrateNaive(old *VirtualNode, target *netem.Node, fromName, toName string) (*Migration, error) {
	m := &Migration{
		s: s, old: old,
		fromName: fromName, toName: toName,
		fromAddr: old.phys.Addr(), toAddr: target.Addr(),
	}
	hadOSPF, hadRIP := old.OSPF != nil, old.RIP != nil
	hello, dead, update := old.ospfHello, old.ospfDead, old.ripUpdate
	// Admission still precedes teardown: a rejected target must not
	// cost the slice its node.
	if err := s.vini.reserveCPU(toName, s.cfg.CPUShare); err != nil {
		return nil, err
	}
	cpu := s.res.acquire("cpu", toName, func() { s.vini.releaseCPU(toName, s.cfg.CPUShare) })
	// 1. Break: stop and retire the old instance.
	if old.OSPF != nil {
		old.OSPF.Stop()
	}
	if old.RIP != nil {
		old.RIP.Stop()
	}
	old.group.StopAll()
	old.ticks.StopAll()
	old.Router.Flush()
	s.dropVnodeHandles(old)
	delete(s.vnodes, fromName)
	// 2. Make: fresh build on the target — topology replicates (it is
	// configuration), routing state does not.
	shadow, err := s.buildShadow(old, target, false)
	if err != nil {
		if shadow != nil {
			s.dropVnodeHandles(shadow)
		}
		s.res.drop(cpu)
		return nil, fmt.Errorf("core: naive migrate rebuild failed (vnode %s lost): %w", fromName, err)
	}
	shadow.handles = append([]*handle{cpu}, shadow.handles...)
	m.shadow = shadow
	// 3. Repoint neighbors (no drain alias: the old address is gone).
	for _, ifc := range shadow.ifaces {
		peer := ifc.Peer
		if e, ok := peer.Encap.Lookup(ifc.Addr); ok {
			e.Remote = m.toAddr
			peer.Encap.Set(e)
		}
	}
	// 4. Swap identity and restart routing from scratch.
	s.vnodes[toName] = shadow
	for i, n := range s.vorder {
		if n == fromName {
			s.vorder[i] = toName
			break
		}
	}
	for _, vl := range s.vlinks {
		touched := false
		if vl.A == old {
			vl.A = shadow
			touched = true
		}
		if vl.B == old {
			vl.B = shadow
			touched = true
		}
		if touched {
			a, b := vl.A.phys.Name(), vl.B.phys.Name()
			vl.name = a + "-" + b
			vl.path = s.vini.physPath(a, b)
		}
	}
	for _, n := range s.vorder {
		for _, ifc := range s.vnodes[n].ifaces {
			if ifc.Peer == old {
				ifc.Peer = shadow
			}
		}
	}
	if hadOSPF {
		shadow.startOSPF(hello, dead)
	}
	if hadRIP {
		shadow.startRIP(update)
	}
	m.phase = MigDone
	m.event("naive", toName)
	return m, nil
}

// event records a migration lifecycle event on the control timeline.
func (m *Migration) event(detail, node string) {
	if tel := m.s.vini.tel; tel != nil {
		tel.Rec.Record(m.s.vini.loop.Domain, telemetry.Event{
			Kind:   telemetry.EvSession,
			Slice:  m.s.cfg.Name,
			Node:   node,
			Elem:   "migrate",
			Detail: detail,
		})
	}
}
