package core

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"vini/internal/click"
	"vini/internal/fea"
	"vini/internal/fib"
	"vini/internal/netem"
	"vini/internal/ospf"
	"vini/internal/packet"
	"vini/internal/rip"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// LookupIPRoute output-port convention in the generated IIAS config.
const (
	portEncap   = 0 // forward via the encapsulation table
	portTap     = 1 // deliver to the local tap0
	portUnreach = 2 // no route: ICMP unreachable
	portNAPT    = 3 // leave the overlay via NAT (egress nodes)
	portVPN     = 4 // return to an opted-in VPN client (ingress nodes)
)

// VIface is one virtual interface (a UML-style device backed by a UDP
// tunnel).
type VIface struct {
	Index    int
	Addr     netip.Addr
	Prefix   netip.Prefix
	Peer     *VirtualNode
	PeerAddr netip.Addr
	Cost     uint32
}

// VirtualNode is the slice's presence on one physical node: the IIAS
// router of the paper's Figure 1 — a Click process forwarding between
// UDP tunnels and the local tap0, with XORP-role routing processes
// configuring its FIB through the FEA.
type VirtualNode struct {
	slice *Slice
	phys  *netem.Node
	// clock is the hosting node's domain-scoped clock wrapped in the
	// slice's per-node timer group; everything the virtual node
	// schedules at runtime (Click timers, OSPF/RIP periodics, control
	// timestamps) runs in that domain, and teardown cancels whatever is
	// still pending through the group.
	clock sim.Clock
	group *sim.TimerGroup
	// ticks is a second group over the node's coarse tick clock (a
	// per-node wheel in sharded mode, the domain itself in classic):
	// periodic protocol timers (hellos, RIP updates) schedule here so
	// they coalesce into shared slot events, and teardown cancels them
	// the same way as the main group's.
	ticks *sim.TimerGroup
	// suspended silences control-plane output while the slice is
	// paused (data-plane output stops with the parked process; control
	// packets bypass the scheduler, so they need their own gate).
	suspended bool
	proc      *netem.Process
	// Router is the Click graph, built by parsing a generated
	// configuration in the Click language.
	Router *click.Router
	FIB    *fib.Table
	Encap  *fib.EncapTable
	rib    *fea.RIB
	// TapAddr is this virtual node's address (tap0).
	TapAddr netip.Addr
	ifaces  []*VIface
	// Routing processes (nil until started).
	OSPF *ospf.Router
	RIP  *rip.Router
	// extraStubs are additional prefixes this node advertises (an
	// egress node announces 0.0.0.0/0).
	extraStubs []netip.Prefix
	// bgpRaw holds unresolved BGP routes (next hop = egress overlay
	// address), re-resolved against the IGP on every route change;
	// bgpAttached distinguishes "no routes" from "no BGP".
	bgpRaw      []fib.Route
	bgpAttached bool
	// vpn holds per-client ingress sessions on designated nodes.
	vpn *vpnServer
	// egress marks a node that NATs traffic out of the overlay; its
	// per-flow NAT table is node-local, so such nodes cannot migrate.
	egress bool
	// handles are this incarnation's ledger acquisitions (CPU, process,
	// kernel address aliases) in acquisition order, so migration can
	// retire one vnode incarnation — dropping its handles newest-first —
	// while the slice's ledger stays live.
	handles []*handle
	// ospfHello/ospfDead/ripUpdate remember the routing timer
	// configuration so a migration shadow can rebuild the processes.
	ospfHello, ospfDead, ripUpdate time.Duration
	// Trace taps life-of-a-packet events when set.
	Trace func(element, event string, p *packet.Packet)
}

// iiasConfig is the Click-language configuration IIAS generates for each
// virtual node; tunnels add per-link chains on top of it. This mirrors
// the paper's Figure 1 data plane.
const iiasConfig = `
// IIAS data plane (Figure 1): tunnels and tap in, FIB lookup, tunnels
// and tap out. Failure injection sits on the per-tunnel chains.
fromtap :: FromTap;
fromtun :: FromTunnel;
dup :: DupSuppress;
chk :: CheckIPHeader;
dec :: DecIPTTL;
rt :: LookupIPRoute(NOROUTE 2);
encap :: EncapTunnel;
ttlerr :: ICMPError(11, 0);
unreach :: ICMPError(3, 0);
totap :: ToTap;
bad :: Discard;
fromtap -> rt;
fromtun -> dup;
dup -> chk;
chk[0] -> dec;
chk[1] -> bad;
dec[0] -> rt;
dec[1] -> ttlerr;
ttlerr -> rt;
rt[0] -> encap;
rt[1] -> totap;
rt[2] -> unreach;
unreach -> rt;
`

func newVirtualNode(s *Slice, phys *netem.Node, tap netip.Addr) (*VirtualNode, error) {
	vn := &VirtualNode{
		slice:   s,
		phys:    phys,
		group:   sim.NewTimerGroup(phys.Clock()),
		ticks:   sim.NewTimerGroup(phys.Ticks()),
		FIB:     fib.New(),
		Encap:   fib.NewEncapTable(),
		TapAddr: tap,
	}
	vn.clock = vn.group
	vn.rib = fea.NewRIB(vn.FIB)
	vn.proc = phys.NewProcess(netem.ProcessConfig{
		Name:   s.cfg.Name + "-click",
		RT:     s.cfg.RT,
		Share:  s.cfg.CPUShare,
		Strict: s.cfg.Strict,
	})
	tel := s.vini.tel
	var metrics *telemetry.Scope
	if tel != nil {
		metrics = tel.Reg.Scope(s.cfg.Name, phys.Name())
		vn.proc.Task().Instrument(metrics.Counter("proc/cpu_ns"),
			metrics.Histogram("proc/wake_latency"))
		// Route installs land in the flight recorder from the domain
		// the triggering protocol runs in (this node's).
		vn.rib.OnInstall(func(proto string, n int) {
			tel.Rec.Record(phys.Domain(), telemetry.Event{
				Kind:  telemetry.EvRoute,
				Slice: s.cfg.Name,
				Node:  phys.Name(),
				Elem:  proto,
				Value: int64(n),
			})
		})
	}
	ctx := &click.Context{
		Clock:     vn.clock,
		RNG:       phys.Domain().RNG().Fork(),
		FIB:       vn.FIB,
		Encap:     vn.Encap,
		Tunnels:   (*tunnelTransport)(vn),
		Tap:       (*tapSink)(vn),
		External:  (*externalSink)(vn),
		VPN:       (*vpnSink)(vn),
		LocalAddr: packet.Flow{Src: tap},
		Metrics:   metrics,
		Trace: func(el, ev string, p *packet.Packet) {
			if vn.Trace != nil {
				vn.Trace(el, ev, p)
			}
			if tel != nil && p != nil && p.Anno.Paint == telemetry.TracePaint {
				tel.Rec.Record(phys.Domain(), telemetry.Event{
					Kind:   telemetry.EvPacket,
					Slice:  s.cfg.Name,
					Node:   phys.Name(),
					Elem:   el,
					Detail: ev,
					Value:  int64(p.Len()),
				})
			}
		},
	}
	r, err := click.ParseConfig(ctx, iiasConfig)
	if err != nil {
		return nil, fmt.Errorf("core: IIAS config: %w", err)
	}
	vn.Router = r
	// tap0: the kernel routes the slice's block into its Click. (The
	// paper routes all of 10/8 to tap0 with per-slice demux in the
	// modified TUN/TAP driver; scoping each slice's tap to its own /16
	// achieves the same isolation here.)
	vn.proc.OpenTap(s.Prefix(), func(p *packet.Packet) {
		vn.Router.Push("fromtap", 0, p)
	})
	// One tunnel socket per virtual node; peers are distinguished by
	// source address (the encapsulation table in reverse).
	if _, err := vn.proc.OpenUDP(s.basePort, vn.tunnelReceive); err != nil {
		return nil, err
	}
	// The process handle closes sockets, port ranges, tap captures, and
	// the scheduler task at teardown.
	vn.handles = append(vn.handles, s.res.acquire("proc", vn.proc.Name, func() { vn.proc.Close() }))
	// The node answers for its tap address.
	phys.AddAddr(tap)
	vn.handles = append(vn.handles, s.res.acquire("addr", tap.String(), func() { phys.RemoveAddr(tap) }))
	// Connected host route for the tap address itself.
	vn.rib.SetRoutes("connected", fea.DistConnected, []fib.Route{
		{Prefix: netip.PrefixFrom(tap, 32), OutPort: portTap},
	})
	if err := r.Initialize(); err != nil {
		return nil, err
	}
	return vn, nil
}

// Phys returns the hosting physical node.
func (vn *VirtualNode) Phys() *netem.Node { return vn.phys }

// DivertPrefix adds a tap route so locally originated traffic to an
// external prefix enters this slice's overlay instead of the substrate —
// how applications on a PL-VINI node send Internet-bound traffic through
// IIAS to the egress NAT (Section 4.2.3's "tap0 provides another
// ingress/egress mechanism for applications running in the same slice").
func (vn *VirtualNode) DivertPrefix(p netip.Prefix) {
	vn.proc.OpenTap(p, func(pkt *packet.Packet) {
		vn.Router.Push("fromtap", 0, pkt)
	})
}

// Proc returns the Click forwarder process (for scheduler statistics).
func (vn *VirtualNode) Proc() *netem.Process { return vn.proc }

// RIB returns the node's FEA RIB (the XORP-role merge layer), so
// consistency checkers can compare protocol, RIB, and FIB views.
func (vn *VirtualNode) RIB() *fea.RIB { return vn.rib }

// Interfaces returns the virtual interfaces.
func (vn *VirtualNode) Interfaces() []VIface {
	out := make([]VIface, len(vn.ifaces))
	for i, ifc := range vn.ifaces {
		out[i] = *ifc
	}
	return out
}

// addInterface wires one end of a virtual link: interface bookkeeping,
// encap entry, the per-tunnel Click chain, and connected routes.
func (vn *VirtualNode) addInterface(prefix netip.Prefix, local, peerAddr netip.Addr, peer *VirtualNode, cost uint32) (int, error) {
	idx := len(vn.ifaces)
	ifc := &VIface{Index: idx, Addr: local, Prefix: prefix, Peer: peer, PeerAddr: peerAddr, Cost: cost}
	vn.ifaces = append(vn.ifaces, ifc)
	vn.Encap.Set(fib.EncapEntry{
		NextHop: peerAddr,
		Remote:  peer.phys.Addr(),
		Port:    peer.slice.basePort,
		Tunnel:  idx,
	})
	// Per-tunnel chain: encap[idx] -> fail<idx> -> shape<idx> -> tun<idx>.
	// The shaper starts unlimited; VirtualLink.SetBandwidth turns it on
	// (the §6.2 "setting link bandwidths via traffic shapers in Click").
	failName := fmt.Sprintf("fail%d", idx)
	shapeName := fmt.Sprintf("shape%d", idx)
	tunName := fmt.Sprintf("tun%d", idx)
	cfg := fmt.Sprintf("%s :: LinkFail;\n%s :: BandwidthShaper(0, 512);\n%s :: ToTunnel(%d);\n"+
		"encap[%d] -> %s;\n%s -> %s;\n%s -> %s;",
		failName, shapeName, tunName, idx,
		idx, failName, failName, shapeName, shapeName, tunName)
	if err := click.ParseInto(vn.Router, cfg); err != nil {
		return 0, err
	}
	if err := vn.Router.Initialize(); err != nil {
		return 0, err
	}
	// The node answers for its interface address; connected routes send
	// /30 traffic to the peer via the tunnel and our own address to tap.
	vn.phys.AddAddr(local)
	vn.handles = append(vn.handles, vn.slice.res.acquire("addr", local.String(), func() { vn.phys.RemoveAddr(local) }))
	vn.addConnected(fib.Route{Prefix: netip.PrefixFrom(local, 32), OutPort: portTap})
	vn.addConnected(fib.Route{Prefix: prefix.Masked(), NextHop: peerAddr, OutPort: portEncap, Metric: 1})
	return idx, nil
}

// connected accumulates the connected-route set (the RIB replaces whole
// protocol sets, so we re-issue all of them).
func (vn *VirtualNode) addConnected(r fib.Route) {
	var all []fib.Route
	all = append(all, fib.Route{Prefix: netip.PrefixFrom(vn.TapAddr, 32), OutPort: portTap})
	for _, ifc := range vn.ifaces {
		all = append(all, fib.Route{Prefix: netip.PrefixFrom(ifc.Addr, 32), OutPort: portTap})
		all = append(all, fib.Route{Prefix: ifc.Prefix.Masked(), NextHop: ifc.PeerAddr, OutPort: portEncap, Metric: 1})
	}
	vn.rib.SetRoutes("connected", fea.DistConnected, all)
}

// setTunnelFailed flips the Click LinkFail element for one tunnel.
func (vn *VirtualNode) setTunnelFailed(idx int, v bool) {
	name := fmt.Sprintf("fail%d.active", idx)
	val := "false"
	if v {
		val = "true"
	}
	vn.Router.Handler(name, val)
}

// installProtocolRoutes adapts protocol routes (OutPort = interface
// index) to the IIAS Click port convention before the RIB merge: any
// route with a next hop forwards via the encapsulation table.
func (vn *VirtualNode) installProtocolRoutes(proto string, routes []fib.Route) {
	dist := fea.DistOSPF
	if proto == "rip" {
		dist = fea.DistRIP
	}
	adapted := make([]fib.Route, 0, len(routes))
	for _, r := range routes {
		if r.NextHop.IsValid() {
			r.OutPort = portEncap
		} else {
			r.OutPort = portTap
		}
		adapted = append(adapted, r)
	}
	vn.rib.SetRoutes(proto, dist, adapted)
	// IGP changes move BGP next hops: re-resolve (recursive resolution).
	vn.resolveBGP()
}

// tunnelReceive is the slice's UDP socket handler: decapsulate, identify
// the tunnel by outer source, and demultiplex control traffic to the
// routing processes (the uml_switch path of Figure 1) or data into the
// Click graph.
func (vn *VirtualNode) tunnelReceive(p *packet.Packet) {
	var outer packet.IPv4
	seg, err := outer.Parse(p.Data)
	if err != nil {
		p.Release()
		return
	}
	var u packet.UDP
	inner, err := u.Parse(seg)
	if err != nil {
		p.Release()
		return
	}
	ent, ok := vn.Encap.ByRemote(outer.Src)
	if !ok {
		p.Release()
		return // not from a known neighbor; VNET isolation drops it
	}
	idx := ent.Tunnel
	var iip packet.IPv4
	ipayload, err := iip.Parse(inner)
	if err != nil {
		p.Release()
		return
	}
	// Migration clones never reach a routing process: the original
	// (unstamped) copy already did, so a stamped duplicate must fall
	// through to the data path, where DupSuppress retires it.
	switch {
	case iip.Proto == packet.ProtoOSPF && vn.OSPF != nil && !p.Anno.MigClone:
		// Control traffic: the protocol parses (and may retain) the inner
		// slices, so the buffer stays out of the pool.
		p.Escape()
		vn.OSPF.Receive(idx, iip.Src, ipayload)
		return
	case iip.Proto == packet.ProtoUDP && !p.Anno.MigClone:
		var iu packet.UDP
		if body, err := iu.Parse(ipayload); err == nil && iu.DstPort == 520 && vn.RIP != nil {
			p.Escape()
			vn.RIP.Receive(idx, iip.Src, body)
			return
		}
	}
	// Zero-copy decapsulation: strip the outer IP+UDP headers in place.
	// The freed 28 bytes become headroom for the re-encapsulation at the
	// next hop, so steady-state forwarding never copies the payload.
	p.Pull(outer.HeaderLen + packet.UDPHeaderLen)
	p.Trim(len(inner))
	p.Anno.InPort = idx
	p.Anno.SliceID = vn.slice.id
	vn.Router.Push("fromtun", 0, p)
}

// sendControl pushes a routing-protocol packet into the per-tunnel Click
// chain so failure injection cuts routing adjacencies exactly as it cuts
// data traffic.
func (vn *VirtualNode) sendControl(ifIndex int, dgram []byte) {
	if vn.suspended {
		// Paused slice: control output bypasses the (parked) CPU
		// scheduler, so it is gated here; the peer's dead timer expires
		// exactly as it would for a crashed sliver.
		return
	}
	if ifIndex < 0 || ifIndex >= len(vn.ifaces) {
		return
	}
	p := packet.New(dgram)
	p.Anno.Timestamp = vn.clock.Now()
	p.Anno.NextHop = vn.ifaces[ifIndex].PeerAddr
	vn.Router.Push(fmt.Sprintf("fail%d", ifIndex), 0, p)
}

// ospfTransport adapts the OSPF Transport interface onto the vnode.
type ospfTransport struct{ vn *VirtualNode }

func (t ospfTransport) SendRouting(ifIndex int, payload []byte) {
	vn := t.vn
	if ifIndex < 0 || ifIndex >= len(vn.ifaces) {
		return
	}
	ifc := vn.ifaces[ifIndex]
	hdr := packet.IPv4{TTL: 1, Proto: packet.ProtoOSPF, Src: ifc.Addr, Dst: ifc.PeerAddr}
	vn.sendControl(ifIndex, hdr.Marshal(payload))
}

// ripTransport wraps RIP messages in inner UDP port 520.
type ripTransport struct{ vn *VirtualNode }

func (t ripTransport) SendRouting(ifIndex int, payload []byte) {
	vn := t.vn
	if ifIndex < 0 || ifIndex >= len(vn.ifaces) {
		return
	}
	ifc := vn.ifaces[ifIndex]
	vn.sendControl(ifIndex, packet.BuildUDP(ifc.Addr, ifc.PeerAddr, 520, 520, 1, payload))
}

// tunnelTransport implements click.TunnelTransport: wrap the overlay
// packet in UDP and send it from the slice's socket via the substrate.
type tunnelTransport VirtualNode

func (t *tunnelTransport) SendTunnel(e fib.EncapEntry, p *packet.Packet) {
	vn := (*VirtualNode)(t)
	if m := vn.slice.mig; m != nil && m.dup && e.Remote == m.fromAddr {
		// Make-before-break window: packets bound for the migrating
		// instance double-deliver — the original to the old address, a
		// stamped clone to the shadow. Receivers suppress the stamp
		// (DupSuppress), so delivery stays exactly-once whichever
		// instance wins the cutover race. Off the window this is a
		// single nil check, keeping the forwarding path allocation-free.
		q := p.Clone()
		q.Anno.MigClone = true
		m.clones.Add(1)
		vn.proc.SendUDPPacket(vn.slice.basePort, netip.AddrPortFrom(m.toAddr, e.Port), q, 64)
	}
	vn.proc.SendUDPPacket(vn.slice.basePort, netip.AddrPortFrom(e.Remote, e.Port), p, 64)
}

// tapSink implements click.TapSink: deliver overlay packets addressed to
// this virtual node to local applications through the kernel.
type tapSink VirtualNode

func (t *tapSink) DeliverTap(p *packet.Packet) {
	vn := (*VirtualNode)(t)
	// InjectLocal wraps p.Data in a fresh packet that local consumers may
	// retain, so this buffer must not return to the pool (Escape, not
	// Release — releasing would recycle memory the kernel now aliases).
	p.Escape()
	vn.phys.InjectLocal(p.Data)
}

// DumpFIB renders the virtual node's forwarding table.
func (vn *VirtualNode) DumpFIB() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s) FIB:\n", vn.slice.cfg.Name, vn.phys.Name())
	b.WriteString(vn.FIB.String())
	return b.String()
}
