package core

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
)

// buildLine stands up a minimal west -- mid -- east substrate.
func buildLine(t *testing.T, seed int64) *VINI {
	t.Helper()
	v := New(seed)
	for i, n := range []string{"west", "mid", "east"} {
		a := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(n, a, netem.DETERProfile(), sched.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"west", "mid"}, {"mid", "east"}} {
		if _, err := v.AddLink(netem.LinkConfig{A: l[0], B: l[1],
			Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	v.ComputeRoutes()
	return v
}

func TestCreateSliceValidatesCPUShare(t *testing.T) {
	v := buildLine(t, 1)
	if _, err := v.CreateSlice(SliceConfig{Name: "big", CPUShare: 1.5}); err == nil {
		t.Fatal("CPUShare > 1 admitted")
	}
	if _, err := v.CreateSlice(SliceConfig{Name: "neg", CPUShare: -0.1}); err == nil {
		t.Fatal("negative CPUShare admitted")
	}
	s, err := v.CreateSlice(SliceConfig{Name: "def"})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.CPUShare != 1.0/40 {
		t.Fatalf("default share = %v, want 1/40", s.cfg.CPUShare)
	}
}

func TestAdmissionRejectsCPUOversubscription(t *testing.T) {
	v := buildLine(t, 1)
	a, err := v.CreateSlice(SliceConfig{Name: "a", CPUShare: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddVirtualNode("west"); err != nil {
		t.Fatal(err)
	}
	b, err := v.CreateSlice(SliceConfig{Name: "b", CPUShare: 0.75})
	if err != nil {
		t.Fatal(err) // admission is per node, not per substrate
	}
	if _, err := b.AddVirtualNode("west"); err == nil {
		t.Fatal("0.75 + 0.75 on one node admitted")
	}
	// A different node has a full budget.
	if _, err := b.AddVirtualNode("east"); err != nil {
		t.Fatalf("admission rejected a free node: %v", err)
	}
	if got := v.ReservedCPU("west"); got != 0.75 {
		t.Fatalf("ReservedCPU(west) = %v after rejection, want 0.75", got)
	}
	// Destroying the first slice returns its reservation.
	if err := a.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := v.ReservedCPU("west"); got != 0 {
		t.Fatalf("ReservedCPU(west) = %v after destroy, want 0", got)
	}
	if _, err := b.AddVirtualNode("west"); err != nil {
		t.Fatalf("re-admission after destroy failed: %v", err)
	}
}

func TestSliceIDBoundAndRecycling(t *testing.T) {
	v := buildLine(t, 1)
	// Unsized (legacy-shape) slices each take a 256-port span, so the
	// port space admits exactly 126 of them — the historical bound, now
	// enforced by the allocator rather than id arithmetic.
	var slices []*Slice
	for i := 0; i < 126; i++ {
		s, err := v.CreateSlice(SliceConfig{Name: string(rune('A'+i/26)) + string(rune('a'+i%26))})
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		slices = append(slices, s)
	}
	last := slices[len(slices)-1]
	// Every allocated block fits in uint16 and matches the historical
	// layout for sequential unsized admissions.
	if hi := int(last.basePort) + 255; hi > 65535 || int(last.basePort) != 33000+256*126 {
		t.Fatalf("port block [%d, %d] out of range", last.basePort, hi)
	}
	if _, err := v.CreateSlice(SliceConfig{Name: "overflow"}); err == nil {
		t.Fatal("unsized slice past the port space admitted")
	} else if !errors.Is(err, ErrExhausted) {
		t.Fatalf("exhaustion error not typed: %v", err)
	}
	// Sized slices break the ceiling: destroying one unsized slice
	// frees a 256-port block, which the allocator splits into 64
	// 4-port spans — 63 more concurrent slices than the old scheme
	// could ever hold.
	if err := slices[0].Destroy(); err != nil {
		t.Fatal(err)
	}
	var sized []*Slice
	for i := 0; i < 64; i++ {
		s, err := v.CreateSlice(SliceConfig{Name: fmt.Sprintf("sized%02d", i), MaxNodes: 3, MaxLinks: 3})
		if err != nil {
			t.Fatalf("sized slice %d: %v", i, err)
		}
		if s.Prefix().Bits() <= 16 {
			t.Fatalf("sized slice got a %v block, want smaller than /16", s.Prefix())
		}
		sized = append(sized, s)
	}
	if len(v.order) != 125+64 {
		t.Fatalf("%d concurrent slices, want 189 (past the old 126 ceiling)", len(v.order))
	}
	if _, err := v.CreateSlice(SliceConfig{Name: "sizedover", MaxNodes: 3}); !errors.Is(err, ErrExhausted) {
		t.Fatalf("sized slice past the port space: %v, want ErrExhausted", err)
	}
	for _, s := range sized {
		if err := s.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	// Destroy recycles the id, port block, and prefix (LIFO).
	victim := slices[41]
	id, port, prefix := victim.id, victim.basePort, victim.Prefix()
	if err := victim.Destroy(); err != nil {
		t.Fatal(err)
	}
	s, err := v.CreateSlice(SliceConfig{Name: "recycled"})
	if err != nil {
		t.Fatalf("create after destroy: %v", err)
	}
	if s.id != id || s.basePort != port || s.Prefix() != prefix {
		t.Fatalf("recycled slice got id=%d port=%d prefix=%v, want %d/%d/%v",
			s.id, s.basePort, s.Prefix(), id, port, prefix)
	}
	if err := v.AuditAddressPlan(); err != nil {
		t.Fatal(err)
	}
}

func TestEgressPortSpace(t *testing.T) {
	v := buildLine(t, 1)
	// Egress works regardless of slice id: the NAT range is allocated,
	// not derived from 40000+512*id (which wrapped past id 48 and
	// overlapped tunnel blocks from id 28).
	for i := 0; i < 60; i++ {
		if _, err := v.CreateSlice(SliceConfig{
			Name: string(rune('a'+i/26)) + string(rune('A'+i%26)), MaxNodes: 3}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := v.CreateSlice(SliceConfig{Name: "edge", MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	vn, err := s.AddVirtualNode("west")
	if err != nil {
		t.Fatal(err)
	}
	if err := vn.EnableEgress(); err != nil {
		t.Fatalf("egress at id %d: %v", s.id, err)
	}
	nat := s.NATPortRange()
	if !nat.Valid() || nat.Size() != 512 {
		t.Fatalf("NAT range %v, want a valid 512-port span", nat)
	}
	// The NAT range must not overlap any slice's tunnel block — the
	// latent bug of the arithmetic scheme.
	for _, name := range v.order {
		tun := v.slices[name].PortRange()
		if nat.Lo <= tun.Hi && tun.Lo <= nat.Hi {
			t.Fatalf("NAT range %v overlaps tunnel block %v of slice %s", nat, tun, name)
		}
	}
	// A second egress node on the same slice shares the range.
	vn2, err := s.AddVirtualNode("east")
	if err != nil {
		t.Fatal(err)
	}
	if err := vn2.EnableEgress(); err != nil {
		t.Fatal(err)
	}
	if got := s.NATPortRange(); got != nat {
		t.Fatalf("second egress reallocated the NAT range: %v then %v", nat, got)
	}
	// Destroy returns the range; the next slice's egress reuses it.
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	s2, err := v.CreateSlice(SliceConfig{Name: "edge2", MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	vn3, err := s2.AddVirtualNode("west")
	if err != nil {
		t.Fatal(err)
	}
	if err := vn3.EnableEgress(); err != nil {
		t.Fatal(err)
	}
	if got := s2.NATPortRange(); got != nat {
		t.Fatalf("NAT range not recycled LIFO: %v, want %v", got, nat)
	}
	if err := v.AuditAddressPlan(); err != nil {
		t.Fatal(err)
	}
}

// lineSlice embeds the slice on all three nodes in a line.
func lineSlice(t *testing.T, v *VINI, cfg SliceConfig) *Slice {
	t.Helper()
	s, err := v.CreateSlice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"west", "mid", "east"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"west", "mid"}, {"mid", "east"}} {
		if _, err := s.ConnectVirtual(l[0], l[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// hasRoute reports whether the virtual node's FIB reaches dst.
func hasRoute(vn *VirtualNode, dst netip.Addr) bool {
	_, ok := vn.FIB.Lookup(dst)
	return ok
}

func TestSliceStateMachine(t *testing.T) {
	v := buildLine(t, 1)
	s, err := v.CreateSlice(SliceConfig{Name: "sm", CPUShare: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != StateAdmitted {
		t.Fatalf("state = %v, want Admitted", s.State())
	}
	if _, err := s.AddVirtualNode("west"); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateEmbedded {
		t.Fatalf("state = %v, want Embedded", s.State())
	}
	s.StartOSPF(time.Second, 3*time.Second)
	if s.State() != StateRunning {
		t.Fatalf("state = %v, want Running", s.State())
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if s.State() != StatePaused {
		t.Fatalf("state = %v, want Paused", s.State())
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateRunning {
		t.Fatalf("state = %v, want Running after resume", s.State())
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateDestroyed {
		t.Fatalf("state = %v, want Destroyed", s.State())
	}
	if err := s.Resume(); err == nil {
		t.Fatal("resume of a destroyed slice accepted")
	}
	if err := s.Pause(); err == nil {
		t.Fatal("pause of a destroyed slice accepted")
	}
	if _, err := s.AddVirtualNode("mid"); err == nil {
		t.Fatal("embed on a destroyed slice accepted")
	}
	if _, err := s.ReEmbed(); err == nil {
		t.Fatal("re-embed of a destroyed slice accepted")
	}
	if err := s.Destroy(); err != nil {
		t.Fatalf("destroy not idempotent: %v", err)
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("audit after destroy: %v", err)
	}
}

func TestPauseStopsSliceAndResumeReconverges(t *testing.T) {
	v := buildLine(t, 1)
	s := lineSlice(t, v, SliceConfig{Name: "pr", CPUShare: 0.3, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(20 * time.Second)
	west, _ := s.VirtualNode("west")
	east, _ := s.VirtualNode("east")
	if !hasRoute(west, east.TapAddr) {
		t.Fatal("no route before pause")
	}
	midUsed := func() time.Duration {
		vn, _ := s.VirtualNode("mid")
		return vn.proc.Task().Used()
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	before := midUsed()
	// Past the dead interval: the paused slice's neighbors expire and
	// its forwarder burns no CPU.
	v.Run(40 * time.Second)
	if used := midUsed() - before; used != 0 {
		t.Fatalf("paused forwarder consumed %v CPU", used)
	}
	if len(west.OSPF.Neighbors()) != 0 {
		t.Fatalf("paused node keeps %d OSPF adjacencies", len(west.OSPF.Neighbors()))
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	v.Run(80 * time.Second)
	if !hasRoute(west, east.TapAddr) {
		t.Fatal("no route after resume (reconvergence failed)")
	}
	if len(west.OSPF.Neighbors()) == 0 {
		t.Fatal("adjacency did not re-form after resume")
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	v := buildLine(t, 1)
	tel := v.EnableTelemetry()
	base := packet.Stats()
	s := lineSlice(t, v, SliceConfig{Name: "doomed", CPUShare: 0.3, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(15 * time.Second)
	if tel.Reg.Series("doomed") == 0 {
		t.Fatal("no telemetry series before destroy (test is vacuous)")
	}
	west, _ := s.VirtualNode("west")
	tap := west.TapAddr
	port := s.basePort
	phys := west.phys
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	// Run past any in-flight deliveries, then the world must be clean.
	v.Run(25 * time.Second)
	if f := packet.Stats().Sub(base).InFlight(); f != 0 {
		t.Fatalf("pool ledger unbalanced after destroy: %d in flight", f)
	}
	if n := v.loop.Pending(); n != 0 {
		t.Fatalf("%d events still pending after destroy (orphaned timers)", n)
	}
	if tel.Reg.Series("doomed") != 0 {
		t.Fatalf("%d telemetry series survive destroy", tel.Reg.Series("doomed"))
	}
	if phys.HasAddr(tap) {
		t.Fatal("tap address still on the physical node")
	}
	if _, ok := v.Slice("doomed"); ok {
		t.Fatal("destroyed slice still registered")
	}
	// The whole identity recycles: same id, ports, prefix, and the
	// substrate accepts the rebind while still running.
	s2 := lineSlice(t, v, SliceConfig{Name: "next", CPUShare: 0.3, RT: true})
	if s2.basePort != port {
		t.Fatalf("port block not recycled: %d, want %d", s2.basePort, port)
	}
	s2.StartOSPF(time.Second, 3*time.Second)
	v.Run(v.loop.Now() + 20*time.Second)
	w2, _ := s2.VirtualNode("west")
	e2, _ := s2.VirtualNode("east")
	if !hasRoute(w2, e2.TapAddr) {
		t.Fatal("recycled slice failed to converge")
	}
}

func TestReEmbedMovesVirtualLinkOffDeadPath(t *testing.T) {
	v := New(1)
	for i, n := range []string{"a", "b", "c"} {
		addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(n, addr, netem.DETERProfile(), sched.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Triangle: a-b direct (cheap), plus a-c and c-b (detour).
	for _, l := range [][2]string{{"a", "b"}, {"a", "c"}, {"c", "b"}} {
		if _, err := v.AddLink(netem.LinkConfig{A: l[0], B: l[1],
			Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	v.ComputeRoutes()
	s, err := v.CreateSlice(SliceConfig{Name: "re", CPUShare: 0.3, ExposePhysicalFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			t.Fatal(err)
		}
	}
	vl, err := s.ConnectVirtual("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := vl.Path(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("embed path = %v, want [a b]", got)
	}
	if err := v.FailLink("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if !vl.Failed() {
		t.Fatal("exposed physical failure did not fail the virtual link")
	}
	changed, err := s.ReEmbed()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("ReEmbed changed %d links, want 1", changed)
	}
	if got := vl.Path(); len(got) != 3 || got[1] != "c" {
		t.Fatalf("re-embedded path = %v, want the detour via c", got)
	}
	if vl.Failed() {
		t.Fatal("virtual link still failed after re-embedding onto a live path")
	}
	// The dead direct link no longer matters; restoring it does not
	// flap the virtual link (its path runs via c now).
	if err := v.RestoreLink("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if vl.Failed() {
		t.Fatal("restore flapped a link that no longer rides the path")
	}
	// A second ReEmbed moves it back to the (again shortest) direct path.
	if changed, _ := s.ReEmbed(); changed != 1 {
		t.Fatalf("ReEmbed back changed %d, want 1", changed)
	}
	// Injected failures survive re-embedding (they are experiment state).
	vl.SetFailed(true)
	if _, err := s.ReEmbed(); err != nil {
		t.Fatal(err)
	}
	if !vl.Failed() {
		t.Fatal("ReEmbed cleared an injected failure")
	}
}
