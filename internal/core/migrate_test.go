package core

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/telemetry"
)

const migProbePort = 45000

// buildQuad stands up west -- mid -- east plus a spare node reachable
// from both ends, the migration target.
func buildQuad(t *testing.T) *VINI {
	t.Helper()
	v := New(1)
	for i, n := range []string{"west", "mid", "east", "spare"} {
		a := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(n, a, netem.DETERProfile(), sched.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"west", "mid"}, {"mid", "east"}, {"west", "spare"}, {"spare", "east"}} {
		if _, err := v.AddLink(netem.LinkConfig{A: l[0], B: l[1],
			Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	v.ComputeRoutes()
	return v
}

// quadSlice embeds a west--mid--east line slice (spare stays free).
func quadSlice(t *testing.T, v *VINI, cfg SliceConfig) *Slice {
	t.Helper()
	s, err := v.CreateSlice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"west", "mid", "east"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"west", "mid"}, {"mid", "east"}} {
		if _, err := s.ConnectVirtual(l[0], l[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// probeLedger counts overlay probe deliveries per (destination, seq)
// on every physical node, the receiver side of the exactly-once check.
type probeLedger struct {
	got map[string]int
}

func watchProbes(t *testing.T, v *VINI, nodes ...string) *probeLedger {
	t.Helper()
	pl := &probeLedger{got: make(map[string]int)}
	for _, n := range nodes {
		node, ok := v.Net.Node(n)
		if !ok {
			t.Fatalf("no node %s", n)
		}
		if err := node.StackListenUDP(migProbePort, func(d []byte) {
			var ip packet.IPv4
			seg, err := ip.Parse(d)
			if err != nil {
				return
			}
			var u packet.UDP
			pay, err := u.Parse(seg)
			if err != nil || len(pay) < 4 {
				return
			}
			pl.got[fmt.Sprintf("%s#%d", ip.Dst, binary.BigEndian.Uint32(pay))]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	return pl
}

func sendProbe(v *VINI, fromPhys string, src, dst netip.Addr, seq uint32) {
	var pay [4]byte
	binary.BigEndian.PutUint32(pay[:], seq)
	n, _ := v.Net.Node(fromPhys)
	n.StackSend(packet.BuildUDP(src, dst, migProbePort, migProbePort, 64, pay[:]))
}

// TestMigrateMakeBeforeBreakLossless drives continuous probe traffic
// through (and to) a migrating transit node and asserts zero loss, no
// duplicate deliveries, no OSPF adjacency churn, balanced ledgers, and
// a fully retired old incarnation.
func TestMigrateMakeBeforeBreakLossless(t *testing.T) {
	v := buildQuad(t)
	tel := v.EnableTelemetry()
	base := packet.Stats()
	s := quadSlice(t, v, SliceConfig{Name: "mg", CPUShare: 0.2, RT: true})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(20 * time.Second)
	west, _ := s.VirtualNode("west")
	mid, _ := s.VirtualNode("mid")
	east, _ := s.VirtualNode("east")
	westTap, midTap, eastTap := west.TapAddr, mid.TapAddr, east.TapAddr
	if !hasRoute(west, eastTap) {
		t.Fatal("no route before migration")
	}
	pl := watchProbes(t, v, "west", "mid", "east", "spare")
	seq := uint32(0)
	burst := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			sendProbe(v, "west", westTap, eastTap, seq) // through the migrating hop
			sendProbe(v, "west", westTap, midTap, seq)  // to the migrating node
			v.Run(v.loop.Now() + 100*time.Millisecond)
		}
	}
	burst(10) // pre-migration traffic
	migStart := v.loop.Now()
	m, err := s.Migrate("mid", "spare", MigrateOptions{Window: 2 * time.Second, Drain: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != StateMigrating || m.Phase() != MigWindow {
		t.Fatalf("state %v phase %v after Migrate, want Migrating/Window", s.State(), m.Phase())
	}
	burst(40) // 4s of traffic spanning window, cutover, drain, retire
	v.Run(v.loop.Now() + 5*time.Second)
	if m.Phase() != MigDone {
		t.Fatalf("phase = %v, want Done", m.Phase())
	}
	if s.State() != StateRunning {
		t.Fatalf("state = %v, want Running", s.State())
	}
	burst(10) // post-migration traffic
	v.Run(v.loop.Now() + 3*time.Second)

	// Exactly-once: every probe sent was delivered exactly once.
	if len(pl.got) != int(seq)*2 {
		t.Fatalf("delivered %d distinct probes, sent %d (in-flight loss)", len(pl.got), seq*2)
	}
	for k, n := range pl.got {
		if n != 1 {
			t.Fatalf("probe %s delivered %d times, want exactly once", k, n)
		}
	}
	// Double-delivery really ran: window traffic toward mid was cloned
	// to the shadow and suppressed there.
	if m.ClonesSent() == 0 {
		t.Fatal("no clones sent during the double-delivery window (test is vacuous)")
	}
	if m.CloneDrops() == 0 {
		t.Fatal("shadow's DupSuppress retired no clones")
	}
	// No OSPF adjacency churn after the migration started: the state
	// transplant keeps peers Full throughout.
	for _, ev := range tel.Rec.Events() {
		if ev.Kind == telemetry.EvNeighbor && ev.At >= migStart {
			t.Fatalf("OSPF neighbor event during migration: %+v", ev)
		}
	}
	// Identity moved: the slice now runs on spare, mid is clean.
	if _, ok := s.VirtualNode("mid"); ok {
		t.Fatal("mid still hosts the slice after migration")
	}
	moved, ok := s.VirtualNode("spare")
	if !ok {
		t.Fatal("spare does not host the slice after migration")
	}
	if moved.TapAddr != midTap {
		t.Fatalf("migrated vnode tap = %v, want %v (identity preserved)", moved.TapAddr, midTap)
	}
	midPhys, _ := v.Net.Node("mid")
	sparePhys, _ := v.Net.Node("spare")
	if midPhys.HasAddr(midTap) {
		t.Fatal("old physical node still answers for the migrated tap address")
	}
	if !sparePhys.HasAddr(midTap) {
		t.Fatal("target physical node does not answer for the migrated tap address")
	}
	// The transient double reservation resolved: mid's budget freed,
	// spare carries the slice's share.
	if got := v.ReservedCPU("mid"); got != 0 {
		t.Fatalf("ReservedCPU(mid) = %v after retire, want 0", got)
	}
	if got := v.ReservedCPU("spare"); got != 0.2 {
		t.Fatalf("ReservedCPU(spare) = %v, want 0.2", got)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	if f := packet.Stats().Sub(base).InFlight(); f != 0 {
		t.Fatalf("pool ledger unbalanced after migration: %d in flight", f)
	}
	// The moved slice keeps working: repeated migration back.
	if _, err := s.Migrate("spare", "mid", MigrateOptions{Window: time.Second, Drain: time.Second}); err != nil {
		t.Fatal(err)
	}
	burst(30)
	v.Run(v.loop.Now() + 3*time.Second)
	if _, ok := s.VirtualNode("mid"); !ok {
		t.Fatal("migration back to mid failed")
	}
	for k, n := range pl.got {
		if n != 1 {
			t.Fatalf("probe %s delivered %d times after return migration", k, n)
		}
	}
	if len(pl.got) != int(seq)*2 {
		t.Fatalf("delivered %d distinct probes, sent %d after return migration", len(pl.got), seq*2)
	}
}

func TestMigrateValidation(t *testing.T) {
	v := buildQuad(t)
	s := quadSlice(t, v, SliceConfig{Name: "mv", CPUShare: 0.2})
	// Not running yet.
	if _, err := s.Migrate("mid", "spare", MigrateOptions{}); err == nil {
		t.Fatal("migrate of an embedded (not running) slice accepted")
	}
	east, _ := s.VirtualNode("east")
	if err := east.EnableEgress(); err != nil {
		t.Fatal(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(10 * time.Second)
	if _, err := s.Migrate("nowhere", "spare", MigrateOptions{}); err == nil {
		t.Fatal("migrate of an unknown vnode accepted")
	}
	if _, err := s.Migrate("mid", "nowhere", MigrateOptions{}); err == nil {
		t.Fatal("migrate to an unknown target accepted")
	}
	if _, err := s.Migrate("mid", "west", MigrateOptions{}); err == nil {
		t.Fatal("migrate onto a node already hosting the slice accepted")
	}
	if _, err := s.Migrate("east", "spare", MigrateOptions{}); err == nil {
		t.Fatal("migrate of an egress (NAT) node accepted")
	}
	m, err := s.Migrate("mid", "spare", MigrateOptions{Window: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Migrate("west", "spare", MigrateOptions{}); err == nil {
		t.Fatal("second concurrent migration accepted")
	}
	if _, err := s.AddVirtualNode("spare"); err == nil {
		t.Fatal("embed during migration accepted")
	}
	if _, err := s.ConnectVirtual("west", "east", 1); err == nil {
		t.Fatal("connect during migration accepted")
	}
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateAdmissionReject proves the transient double reservation is
// subject to CPU admission control, and that a rejected migration
// leaves no trace: no shadow, no reservation, a clean ledger.
func TestMigrateAdmissionReject(t *testing.T) {
	v := buildQuad(t)
	s := quadSlice(t, v, SliceConfig{Name: "ma", CPUShare: 0.2})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(10 * time.Second)
	hog, err := v.CreateSlice(SliceConfig{Name: "hog", CPUShare: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hog.AddVirtualNode("spare"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Migrate("mid", "spare", MigrateOptions{}); err == nil {
		t.Fatal("migration onto an oversubscribed node admitted")
	}
	if s.State() != StateRunning || s.ActiveMigration() != nil {
		t.Fatalf("rejected migration left state %v, mig %v", s.State(), s.ActiveMigration())
	}
	if got := v.ReservedCPU("spare"); got != 0.9 {
		t.Fatalf("ReservedCPU(spare) = %v after rejection, want 0.9", got)
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("ledger dirty after rejected migration: %v", err)
	}
	// Freeing the target admits the retry.
	if err := hog.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Migrate("mid", "spare", MigrateOptions{Window: 100 * time.Millisecond, Drain: 100 * time.Millisecond}); err != nil {
		t.Fatalf("retry after freeing the target: %v", err)
	}
	v.Run(v.loop.Now() + 2*time.Second)
	if _, ok := s.VirtualNode("spare"); !ok {
		t.Fatal("retry migration did not complete")
	}
}

// TestMigratePauseAborts: a pause before the cutover abandons the
// shadow — handles drop, reservation frees, the old instance stays.
func TestMigratePauseAborts(t *testing.T) {
	v := buildQuad(t)
	s := quadSlice(t, v, SliceConfig{Name: "mp", CPUShare: 0.2})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(10 * time.Second)
	mid, _ := s.VirtualNode("mid")
	midTap := mid.TapAddr
	m, err := s.Migrate("mid", "spare", MigrateOptions{Window: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v.Run(v.loop.Now() + time.Second) // inside the window
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if m.Phase() != MigAborted {
		t.Fatalf("phase = %v after pause, want Aborted", m.Phase())
	}
	if s.State() != StatePaused {
		t.Fatalf("state = %v, want Paused", s.State())
	}
	sparePhys, _ := v.Net.Node("spare")
	if sparePhys.HasAddr(midTap) {
		t.Fatal("aborted shadow still answers for the tap address")
	}
	if got := v.ReservedCPU("spare"); got != 0 {
		t.Fatalf("ReservedCPU(spare) = %v after abort, want 0", got)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	// The stale cutover timer fires into the aborted migration: no-op.
	v.Run(v.loop.Now() + 10*time.Second)
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateRunning {
		t.Fatalf("state = %v after resume, want Running", s.State())
	}
	v.Run(v.loop.Now() + 30*time.Second)
	west, _ := s.VirtualNode("west")
	if !hasRoute(west, midTap) {
		t.Fatal("no route after abort + resume")
	}
	if _, ok := s.VirtualNode("mid"); !ok {
		t.Fatal("old instance gone after aborted migration")
	}
}

// TestMigratePausePastCommitRetiresEarly: once the cutover has run the
// migration only moves forward — a pause completes the retirement.
func TestMigratePausePastCommitRetiresEarly(t *testing.T) {
	v := buildQuad(t)
	s := quadSlice(t, v, SliceConfig{Name: "mc", CPUShare: 0.2})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(10 * time.Second)
	mid, _ := s.VirtualNode("mid")
	midTap := mid.TapAddr
	m, err := s.Migrate("mid", "spare", MigrateOptions{Window: time.Second, Drain: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	v.Run(v.loop.Now() + 2*time.Second) // past cutover, deep in drain
	if m.Phase() != MigDraining {
		t.Fatalf("phase = %v, want Draining", m.Phase())
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if m.Phase() != MigDone {
		t.Fatalf("phase = %v after pause, want Done (early retire)", m.Phase())
	}
	midPhys, _ := v.Net.Node("mid")
	if midPhys.HasAddr(midTap) {
		t.Fatal("old instance still holds the tap address after early retire")
	}
	if got := v.ReservedCPU("mid"); got != 0 {
		t.Fatalf("ReservedCPU(mid) = %v, want 0", got)
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	v.Run(v.loop.Now() + 30*time.Second)
	west, _ := s.VirtualNode("west")
	if !hasRoute(west, midTap) {
		t.Fatal("no route to the migrated node after resume")
	}
}

// TestDestroyMidMigration drives Destroy into both migration phases and
// demands the usual teardown invariants: empty ledger, no timers, no
// leaked packets.
func TestDestroyMidMigration(t *testing.T) {
	for _, tc := range []struct {
		name   string
		window time.Duration
		drain  time.Duration
		runFor time.Duration
		want   MigrationPhase
	}{
		{"during-window", 5 * time.Second, time.Second, time.Second, MigAborted},
		{"during-drain", time.Second, 30 * time.Second, 2 * time.Second, MigDone},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := buildQuad(t)
			base := packet.Stats()
			s := quadSlice(t, v, SliceConfig{Name: "md", CPUShare: 0.2})
			s.StartOSPF(time.Second, 3*time.Second)
			v.Run(10 * time.Second)
			m, err := s.Migrate("mid", "spare", MigrateOptions{Window: tc.window, Drain: tc.drain})
			if err != nil {
				t.Fatal(err)
			}
			v.Run(v.loop.Now() + tc.runFor)
			if err := s.Destroy(); err != nil {
				t.Fatal(err)
			}
			if m.Phase() != tc.want {
				t.Fatalf("phase = %v after destroy, want %v", m.Phase(), tc.want)
			}
			if err := s.Audit(); err != nil {
				t.Fatal(err)
			}
			v.Run(v.loop.Now() + 20*time.Second)
			if f := packet.Stats().Sub(base).InFlight(); f != 0 {
				t.Fatalf("pool ledger unbalanced: %d in flight", f)
			}
			if n := v.loop.Pending(); n != 0 {
				t.Fatalf("%d events still pending after destroy", n)
			}
			for _, n := range []string{"mid", "spare"} {
				if got := v.ReservedCPU(n); got != 0 {
					t.Fatalf("ReservedCPU(%s) = %v after destroy, want 0", n, got)
				}
			}
		})
	}
}

// TestMigrateNaiveBaseline: the break-before-make path moves the node
// but drops in-flight packets — the blackout the default path avoids.
func TestMigrateNaiveBaseline(t *testing.T) {
	v := buildQuad(t)
	base := packet.Stats()
	s := quadSlice(t, v, SliceConfig{Name: "nv", CPUShare: 0.2})
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(20 * time.Second)
	mid, _ := s.VirtualNode("mid")
	east, _ := s.VirtualNode("east")
	west, _ := s.VirtualNode("west")
	midTap, eastTap, westTap := mid.TapAddr, east.TapAddr, west.TapAddr
	pl := watchProbes(t, v, "west", "mid", "east", "spare")
	// Launch probes and immediately migrate: the in-flight packets hit
	// the old instance's closed sockets.
	for i := uint32(1); i <= 5; i++ {
		sendProbe(v, "west", westTap, eastTap, i)
	}
	m, err := s.Migrate("mid", "spare", MigrateOptions{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Phase() != MigDone {
		t.Fatalf("naive migration phase = %v, want Done (synchronous)", m.Phase())
	}
	if _, ok := s.VirtualNode("spare"); !ok {
		t.Fatal("naive migration did not move the vnode")
	}
	v.Run(v.loop.Now() + 60*time.Second) // reconverge from scratch
	if len(pl.got) >= 5 {
		t.Fatalf("naive migration delivered %d/5 in-flight probes, expected loss", len(pl.got))
	}
	// After reconvergence the moved slice forwards again.
	for i := uint32(100); i < 105; i++ {
		sendProbe(v, "west", westTap, eastTap, i)
		sendProbe(v, "west", westTap, midTap, i)
		v.Run(v.loop.Now() + 100*time.Millisecond)
	}
	v.Run(v.loop.Now() + 2*time.Second)
	for i := uint32(100); i < 105; i++ {
		if pl.got[fmt.Sprintf("%s#%d", eastTap, i)] != 1 {
			t.Fatalf("post-reconvergence probe %d to east not delivered once", i)
		}
		if pl.got[fmt.Sprintf("%s#%d", midTap, i)] != 1 {
			t.Fatalf("post-reconvergence probe %d to migrated node not delivered once", i)
		}
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	v.Run(v.loop.Now() + 10*time.Second)
	if f := packet.Stats().Sub(base).InFlight(); f != 0 {
		t.Fatalf("pool ledger unbalanced after naive migration: %d in flight", f)
	}
}

// TestReEmbedNoLivePathKeepsStalePin: when the substrate partitions,
// ReEmbed must keep the stale pin (and the exposed failure) rather than
// erase the embedding; healing the partition re-embeds normally.
func TestReEmbedNoLivePathKeepsStalePin(t *testing.T) {
	v := New(1)
	for i, n := range []string{"a", "b"} {
		addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(n, addr, netem.DETERProfile(), sched.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.AddLink(netem.LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	v.ComputeRoutes()
	s, err := v.CreateSlice(SliceConfig{Name: "part", CPUShare: 0.2, ExposePhysicalFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			t.Fatal(err)
		}
	}
	vl, err := s.ConnectVirtual("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	pinned := vl.Path()
	if err := v.FailLink("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if !vl.Failed() {
		t.Fatal("exposed failure did not fail the virtual link")
	}
	// The substrate is partitioned: no live path exists, so the stale
	// pin is kept and the link stays failed.
	changed, err := s.ReEmbed()
	if err != nil {
		t.Fatalf("ReEmbed on a partitioned substrate errored: %v", err)
	}
	if changed != 0 {
		t.Fatalf("ReEmbed changed %d links with no live path, want 0", changed)
	}
	if got := vl.Path(); !samePath(got, pinned) {
		t.Fatalf("stale pin rewritten: %v, want %v", got, pinned)
	}
	if !vl.Failed() {
		t.Fatal("virtual link healed with no live physical path")
	}
	// Heal the partition: the same pin is shortest again and comes up.
	if err := v.RestoreLink("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReEmbed(); err != nil {
		t.Fatal(err)
	}
	if vl.Failed() {
		t.Fatal("virtual link still failed after the substrate healed")
	}
}

// TestReEmbedMidRepinLinkDeath: a second failure landing on the freshly
// re-pinned path is picked up by the next ReEmbed — and when that
// failure severs the last path, the pin survives stale.
func TestReEmbedMidRepinLinkDeath(t *testing.T) {
	v := New(1)
	for i, n := range []string{"a", "b", "c"} {
		addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(n, addr, netem.DETERProfile(), sched.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"a", "b"}, {"a", "c"}, {"c", "b"}} {
		if _, err := v.AddLink(netem.LinkConfig{A: l[0], B: l[1],
			Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	v.ComputeRoutes()
	s, err := v.CreateSlice(SliceConfig{Name: "repin", CPUShare: 0.2, ExposePhysicalFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if _, err := s.AddVirtualNode(n); err != nil {
			t.Fatal(err)
		}
	}
	vl, err := s.ConnectVirtual("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.FailLink("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if changed, _ := s.ReEmbed(); changed != 1 {
		t.Fatalf("first ReEmbed changed %d, want 1 (detour via c)", changed)
	}
	detour := vl.Path()
	if len(detour) != 3 || detour[1] != "c" {
		t.Fatalf("detour path = %v, want via c", detour)
	}
	// The detour dies too: the substrate is now partitioned for a-b.
	if err := v.FailLink("c", "b", 0); err != nil {
		t.Fatal(err)
	}
	if !vl.Failed() {
		t.Fatal("failure on the re-pinned path not exposed")
	}
	// With no live path at all, ReEmbed falls back to the shortest path
	// ignoring failures (the direct link) — a deterministic best-effort
	// pin — and the link stays failed.
	changed, err := s.ReEmbed()
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("partitioned ReEmbed changed %d links, want 1 (best-effort direct pin)", changed)
	}
	if got := vl.Path(); !samePath(got, []string{"a", "b"}) {
		t.Fatalf("partitioned ReEmbed pinned %v, want the direct [a b]", got)
	}
	if !vl.Failed() {
		t.Fatal("virtual link healed while the substrate is partitioned")
	}
	// Heal only the detour: ReEmbed moves onto the live path via c.
	if err := v.RestoreLink("c", "b", 0); err != nil {
		t.Fatal(err)
	}
	if changed, _ := s.ReEmbed(); changed != 1 {
		t.Fatalf("healing ReEmbed changed %d, want 1", changed)
	}
	if got := vl.Path(); !samePath(got, detour) {
		t.Fatalf("healed ReEmbed pinned %v, want the detour via c", got)
	}
	if vl.Failed() {
		t.Fatal("virtual link still failed after moving onto the healed path")
	}
}
