package core

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/traffic"
)

// TestSharedLinkInterference demonstrates the §3.1/§3.4 caveat the paper
// is explicit about: virtual links of different experiments may share
// underlying physical links, so "the traffic from one experiment may
// affect the network conditions seen in another virtual network". A
// bulk flow in slice A congests the shared physical bottleneck and
// slice B's ping RTT visibly inflates (queueing) relative to a quiet
// baseline.
func TestSharedLinkInterference(t *testing.T) {
	build := func() (*VINI, *Slice, *Slice) {
		v := New(21)
		prof := netem.DETERProfile()
		for i, n := range []string{"west", "east"} {
			addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
			if _, err := v.AddNode(n, addr, prof, sched.Options{}); err != nil {
				t.Fatal(err)
			}
		}
		// A slow shared bottleneck with a deep queue.
		if _, err := v.AddLink(netem.LinkConfig{A: "west", B: "east",
			Bandwidth: 20e6, Delay: 5 * time.Millisecond, QueueBytes: 512 << 10}); err != nil {
			t.Fatal(err)
		}
		v.ComputeRoutes()
		mk := func(name string) *Slice {
			s, err := v.CreateSlice(SliceConfig{Name: name, CPUShare: 0.4, RT: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []string{"west", "east"} {
				if _, err := s.AddVirtualNode(n); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.ConnectVirtual("west", "east", 1); err != nil {
				t.Fatal(err)
			}
			return s
		}
		a := mk("bulk")
		b := mk("latency")
		a.StartOSPF(time.Second, 3*time.Second)
		b.StartOSPF(time.Second, 3*time.Second)
		v.Run(20 * time.Second)
		return v, a, b
	}

	measure := func(withLoad bool) float64 {
		v, a, b := build()
		if withLoad {
			aw, _ := a.VirtualNode("west")
			ae, _ := a.VirtualNode("east")
			west, _ := v.Net.Node("west")
			east, _ := v.Net.Node("east")
			// A big-window TCP bulk flow keeps a standing queue at the
			// bottleneck (CBR below line rate would not).
			bulk, err := traffic.StartIperfTCP(v.Net, west, east, traffic.IperfTCPConfig{
				Streams: 4, Window: 256 << 10, SrcAddr: aw.TapAddr, DstAddr: ae.TapAddr})
			if err != nil {
				t.Fatal(err)
			}
			defer bulk.Stop()
			v.Run(v.Loop().Now() + 3*time.Second) // let the queue fill
		}
		bw, _ := b.VirtualNode("west")
		be, _ := b.VirtualNode("east")
		traffic.NewICMPHost(be.Phys())
		h := traffic.NewICMPHost(bw.Phys())
		p := h.StartPing(v.Loop(), traffic.PingConfig{Src: bw.TapAddr, Dst: be.TapAddr,
			Interval: 100 * time.Millisecond, Count: 50})
		v.Run(v.Loop().Now() + 10*time.Second)
		if p.RTTs.N() == 0 {
			t.Fatal("no ping replies")
		}
		return p.RTTs.Mean()
	}

	quiet := measure(false)
	loaded := measure(true)
	if loaded < quiet+1.0 {
		t.Fatalf("cross-slice interference invisible: quiet %.2f ms vs loaded %.2f ms", quiet, loaded)
	}
}

// TestVPNWrongKeyRejected: an attacker who knows the server address but
// not the pre-shared key gets nothing into the overlay.
func TestVPNWrongKeyRejected(t *testing.T) {
	v := buildAbilene(t, 31)
	clientPub := netip.MustParseAddr("128.112.93.82")
	if _, err := v.AddNode("attacker", clientPub, netem.DETERProfile(), sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddLink(netem.LinkConfig{A: "attacker", B: "washington",
		Bandwidth: 10e6, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	v.ComputeRoutes()
	s := abileneSlice(t, v, SliceConfig{Name: "iias", CPUShare: 0.25, RT: true})
	wash, _ := s.VirtualNode("washington")
	goodKey := make([]byte, 32)
	if err := wash.EnableVPNServer(1194); err != nil {
		t.Fatal(err)
	}
	overlayAddr := netip.MustParseAddr("10.1.0.87")
	if err := wash.RegisterVPNClient(overlayAddr, goodKey); err != nil {
		t.Fatal(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(20 * time.Second)
	badKey := make([]byte, 32)
	badKey[0] = 0xff
	vc, err := NewVPNClient(v, "attacker", overlayAddr, badKey,
		netip.AddrPortFrom(wash.Phys().Addr(), 1194), []netip.Prefix{s.Prefix()})
	if err != nil {
		t.Fatal(err)
	}
	// The attacker pings an overlay node; nothing must come back.
	sea, _ := s.VirtualNode("seattle")
	traffic.NewICMPHost(sea.Phys())
	att, _ := v.Net.Node("attacker")
	h := traffic.NewICMPHost(att)
	p := h.StartPing(v.Loop(), traffic.PingConfig{Src: overlayAddr, Dst: sea.TapAddr,
		Interval: 500 * time.Millisecond, Count: 6})
	v.Run(v.Loop().Now() + 10*time.Second)
	if p.RTTs.N() != 0 || vc.Received != 0 {
		t.Fatalf("wrong-key client got %d replies, %d frames", p.RTTs.N(), vc.Received)
	}
}

// TestEgressRequiresSetupOrder: registering a VPN client before enabling
// the server fails cleanly, and double-enabling is rejected.
func TestVPNSetupValidation(t *testing.T) {
	v := buildAbilene(t, 32)
	s := abileneSlice(t, v, SliceConfig{Name: "iias"})
	wash, _ := s.VirtualNode("washington")
	if err := wash.RegisterVPNClient(netip.MustParseAddr("10.1.0.87"), make([]byte, 32)); err == nil {
		t.Fatal("RegisterVPNClient before EnableVPNServer accepted")
	}
	if err := wash.EnableVPNServer(1194); err != nil {
		t.Fatal(err)
	}
	if err := wash.EnableVPNServer(1194); err == nil {
		t.Fatal("double EnableVPNServer accepted")
	}
	if err := wash.RegisterVPNClient(netip.MustParseAddr("10.1.0.87"), []byte("short")); err == nil {
		t.Fatal("bad key accepted")
	}
	// Client capture prefix covering the server is a routing loop.
	if _, err := NewVPNClient(v, "washington", netip.MustParseAddr("10.1.0.88"), make([]byte, 32),
		netip.AddrPortFrom(wash.Phys().Addr(), 1194),
		[]netip.Prefix{netip.MustParsePrefix("0.0.0.0/0")}); err == nil {
		t.Fatal("capture prefix covering the server accepted")
	}
}

// TestVirtualLinkBandwidthShaping: the §6.2 knob — capping a virtual
// link with the Click shaper limits throughput across it even though
// the physical link is gigabit.
func TestVirtualLinkBandwidthShaping(t *testing.T) {
	v := New(51)
	prof := netem.DETERProfile()
	for i, n := range []string{"a", "b"} {
		addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)})
		if _, err := v.AddNode(n, addr, prof, sched.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.AddLink(netem.LinkConfig{A: "a", B: "b", Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	v.ComputeRoutes()
	s, err := v.CreateSlice(SliceConfig{Name: "shaped", CPUShare: 0.5, RT: true})
	if err != nil {
		t.Fatal(err)
	}
	s.AddVirtualNode("a")
	s.AddVirtualNode("b")
	vl, err := s.ConnectVirtual("a", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	s.StartOSPF(time.Second, 3*time.Second)
	v.Run(15 * time.Second)
	va, _ := s.VirtualNode("a")
	vb, _ := s.VirtualNode("b")
	run := func() float64 {
		an, _ := v.Net.Node("a")
		bn, _ := v.Net.Node("b")
		test, err := traffic.StartUDPCBR(v.Net, an, bn, traffic.UDPCBRConfig{
			RateBps: 20e6, SrcAddr: va.TapAddr, DstAddr: vb.TapAddr,
			Port: uint16(7000 + int(v.Loop().Now()/time.Second))})
		if err != nil {
			t.Fatal(err)
		}
		start := v.Loop().Now()
		v.Run(start + 3*time.Second)
		test.Stop()
		// Let the shaper queue drain, and average over the whole window.
		v.Run(v.Loop().Now() + time.Second)
		return float64(test.Received()) * 1458 * 8 / 4 / 1e6
	}
	unshaped := run()
	if unshaped < 13 {
		t.Fatalf("unshaped = %.1f Mb/s, want ~15 (3s of 20 Mb/s over a 4s window)", unshaped)
	}
	vl.SetBandwidth(5e6)
	shaped := run()
	if shaped > 6 || shaped < 4 {
		t.Fatalf("shaped = %.1f Mb/s, want ~5 (the cap)", shaped)
	}
	// Removing the cap restores full rate.
	vl.SetBandwidth(0)
	if again := run(); again < 13 {
		t.Fatalf("cap removal failed: %.1f Mb/s", again)
	}
}
