// Package core is VINI itself: the virtual network infrastructure that
// embeds experiment slices — each with its own virtual topology, Click
// forwarding plane, routing processes, and resource guarantees — onto a
// shared physical substrate (internal/netem in simulation). It is the
// paper's primary contribution; everything else in this repository is a
// substrate it composes.
package core

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/telemetry"
	"vini/internal/topology"
)

// VINI is one deployment of the infrastructure.
type VINI struct {
	Net    *netem.Network
	loop   *sim.Loop
	graph  *topology.Graph // physical topology mirror, for embeddings
	slices map[string]*Slice
	order  []string
	nextID int
	// freeIDs recycles slice ids released by Destroy, LIFO.
	freeIDs []int
	// plan allocates slice prefix blocks and port spans (addrplan.go);
	// its free lists are LIFO too, so a same-shape re-admission gets
	// back exactly the blocks the destroyed slice released.
	plan *addrPlan
	// reserved tracks admitted CPU reservations per physical node, the
	// admission-control budget.
	reserved map[string]float64
	// tel is the telemetry bundle (nil until EnableTelemetry).
	tel *telemetry.Telemetry
}

// New creates an infrastructure on a fresh event loop: the classic
// single-timeline mode, byte-identical to the historical global loop.
func New(seed int64) *VINI {
	return build(sim.NewLoop(seed), false)
}

// NewParallel creates an infrastructure whose physical nodes each get
// their own time domain, run by an executor with the given worker
// budget under conservative synchronization. workers <= 1 still shards
// nodes into domains but executes them on one worker — the
// determinism-parity baseline: results are byte-identical for any
// worker count.
func NewParallel(seed int64, workers int) *VINI {
	return build(sim.NewExecutor(seed, workers).Loop(), true)
}

func build(loop *sim.Loop, shard bool) *VINI {
	net := netem.New(loop)
	if shard {
		net = netem.NewSharded(loop)
	}
	v := &VINI{
		Net:      net,
		loop:     loop,
		graph:    topology.New(),
		slices:   make(map[string]*Slice),
		nextID:   1,
		plan:     newAddrPlan(),
		reserved: make(map[string]float64),
	}
	return v
}

// Loop exposes the event loop for scheduling experiment actions.
func (v *VINI) Loop() *sim.Loop { return v.loop }

// Executor exposes the coordinating executor (domain statistics,
// schedule digests, worker shutdown).
func (v *VINI) Executor() *sim.Executor { return v.loop.Executor() }

// Close releases the executor's worker goroutines. Only needed for
// NewParallel infrastructures that have run; harmless otherwise.
func (v *VINI) Close() { v.loop.Executor().Shutdown() }

// AddNode creates a physical node.
func (v *VINI) AddNode(name string, addr netip.Addr, prof netem.Profile, opt sched.Options) (*netem.Node, error) {
	n, err := v.Net.AddNode(name, addr, prof, opt)
	if err != nil {
		return nil, err
	}
	v.graph.AddNode(name)
	if v.tel != nil {
		v.instrumentNode(n)
	}
	return n, nil
}

// AddLink creates a physical link.
func (v *VINI) AddLink(cfg netem.LinkConfig) (*netem.Link, error) {
	l, err := v.Net.AddLink(cfg)
	if err != nil {
		return nil, err
	}
	v.graph.AddLink(topology.Link{A: cfg.A, B: cfg.B,
		CostAB: uint32(cfg.Delay/time.Microsecond) + 1,
		Delay:  cfg.Delay, Bandwidth: cfg.Bandwidth})
	if v.tel != nil {
		v.instrumentLink(l)
	}
	return l, nil
}

// ComputeRoutes converges the substrate's own IP routing.
func (v *VINI) ComputeRoutes() { v.Net.ComputeRoutes() }

// Run advances virtual time.
func (v *VINI) Run(until time.Duration) { v.Net.Run(until) }

// SliceConfig sets a slice's resource guarantees, the PL-VINI knobs of
// Section 4.1.2.
type SliceConfig struct {
	Name string
	// CPUShare is the slice's token fill rate: the default fair share or
	// an explicit reservation (0.25 for the paper's PL-VINI runs).
	CPUShare float64
	// RT boosts the slice's forwarder to real-time priority.
	RT bool
	// Strict makes the CPU allocation non-work-conserving (§6.2): the
	// slice receives exactly CPUShare, never idle surplus — the
	// repeatability configuration.
	Strict bool
	// ExposePhysicalFailures wires substrate link alarms (upcalls) to
	// automatic failure of the virtual links riding them, so experiments
	// see underlying topology changes instead of having them masked
	// (Sections 3.1 and 6.1).
	ExposePhysicalFailures bool
	// MaxNodes and MaxLinks bound the slice's embedding and let the
	// address plan size its prefix block and port span to fit, instead
	// of the legacy full /16 + 256 ports. Zero means unsized: the slice
	// gets the legacy block (up to 250 virtual nodes and 8000 virtual
	// links) and counts against the 126-slice legacy budget. Scale
	// scenarios must set both.
	MaxNodes int
	MaxLinks int
}

// CreateSlice admits a new experiment. Each slice receives a private
// prefix block out of 10/8 and a dedicated UDP port span from the
// address plan (the VNET-style isolation), both sized to the embedding
// hints in SliceConfig — an unsized slice gets the legacy /16 + 256
// ports, a sized one as little as a /27 and 4 ports, which is what
// raises the concurrency bound from 126 slices to thousands. Blocks
// recycle LIFO through the resource ledger when a slice is destroyed.
// Admission validates the CPU request here; per-node oversubscription
// is rejected at embedding time, when the slice lands on concrete
// nodes.
func (v *VINI) CreateSlice(cfg SliceConfig) (*Slice, error) {
	if _, dup := v.slices[cfg.Name]; dup {
		return nil, fmt.Errorf("core: slice %q exists", cfg.Name)
	}
	if cfg.CPUShare < 0 || cfg.CPUShare > 1 {
		return nil, fmt.Errorf("core: slice %q CPUShare %.3f outside (0, 1]", cfg.Name, cfg.CPUShare)
	}
	if cfg.CPUShare == 0 {
		cfg.CPUShare = 1.0 / 40 // a PlanetLab node's default fair share
	}
	id := v.allocSliceID()
	prefix, err := v.plan.acquirePrefix(cfg.MaxNodes, cfg.MaxLinks)
	if err != nil {
		v.freeSliceID(id)
		return nil, fmt.Errorf("core: slice %q: %w", cfg.Name, err)
	}
	span := uint32(defaultPortSpan)
	if cfg.MaxNodes > 0 {
		span = sizedPortSpan
	}
	ports, err := v.plan.acquirePorts(span)
	if err != nil {
		v.plan.releasePrefix(prefix)
		v.freeSliceID(id)
		return nil, fmt.Errorf("core: slice %q: %w", cfg.Name, err)
	}
	s := &Slice{
		vini:     v,
		cfg:      cfg,
		id:       id,
		prefix:   prefix,
		addrBase: addrU32(prefix.Addr()),
		half:     (uint32(1) << (32 - prefix.Bits())) / 2,
		ports:    ports,
		basePort: ports.Lo,
		vnodes:   make(map[string]*VirtualNode),
		ctl:      sim.NewTimerGroup(v.loop),
	}
	s.res.acquire("slice-id", fmt.Sprintf("%d", id), func() { v.freeSliceID(id) })
	s.res.acquire("addr-block", prefix.String(), func() { v.plan.releasePrefix(prefix) })
	s.res.acquire("port-block", ports.String(), func() { v.plan.releasePorts(ports) })
	// Physical topology upcalls are a held resource too: teardown
	// unsubscribes, so a destroyed slice can never be called back.
	sub := v.Net.OnLinkEvent(s.physicalEvent)
	s.res.acquire("link-sub", cfg.Name, func() { v.Net.Unsubscribe(sub) })
	// Telemetry series registered under the slice label retire with it
	// (the registry is consulted at free time: telemetry may be enabled
	// after the slice is created).
	s.res.acquire("telemetry", cfg.Name, func() {
		if v.tel != nil {
			v.tel.Reg.Retire(cfg.Name)
		}
	})
	v.slices[cfg.Name] = s
	v.order = append(v.order, cfg.Name)
	return s, nil
}

// Slice returns a slice by name.
func (v *VINI) Slice(name string) (*Slice, bool) {
	s, ok := v.slices[name]
	return s, ok
}

// FailLink fails a physical substrate link (with the substrate's own
// IGP reconverging after igpDelay) and fires upcalls.
func (v *VINI) FailLink(a, b string, igpDelay time.Duration) error {
	return v.Net.FailLink(a, b, igpDelay)
}

// RestoreLink restores a physical link.
func (v *VINI) RestoreLink(a, b string, igpDelay time.Duration) error {
	return v.Net.RestoreLink(a, b, igpDelay)
}

// LinkAlarm is the upcall delivered to slices when a physical link
// transition affects one of their virtual links.
type LinkAlarm struct {
	Event netem.LinkEvent
	// A, B name the virtual nodes whose virtual link rides the failed
	// physical link.
	A, B string
}
