package core

import (
	"fmt"
	"net/netip"

	"vini/internal/click"
	"vini/internal/fea"
	"vini/internal/fib"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/vpn"
)

// EnableEgress makes this virtual node an overlay egress (Section
// 4.2.3): packets with no overlay destination leave through a Click
// NAPT element using the physical node's public address, and return
// traffic from external hosts is captured on the NAT port range and
// re-enters the overlay. The node also advertises a default route into
// the slice's IGP, so every other virtual node forwards external
// destinations here. Call before StartOSPF/StartRIP.
func (vn *VirtualNode) EnableEgress() error {
	s := vn.slice
	// The NAT range is a slice-wide allocation from the address plan
	// (the old arithmetic 40000+512*id windows overlapped the tunnel
	// blocks of ids >= 28); the first egress node acquires it into the
	// ledger, later egress nodes on the same slice share it.
	if !s.natPorts.Valid() {
		r, err := s.vini.plan.acquirePorts(natPortSpan)
		if err != nil {
			return fmt.Errorf("core: slice %s egress: %w", s.cfg.Name, err)
		}
		s.natPorts = r
		s.res.acquire("nat-ports", r.String(), func() {
			s.vini.plan.releasePorts(r)
			s.natPorts = PortRange{}
		})
	}
	lo, hi := s.natPorts.Lo, s.natPorts.Hi
	cfg := fmt.Sprintf(`
		napt :: IPNAPT(%s, PORTS %d %d);
		ext :: ToExternal;
		rt[%d] -> napt;
		napt[0] -> ext;
		napt[1] -> [0]rt;
	`, vn.phys.Addr(), lo, hi, portNAPT)
	if err := click.ParseInto(vn.Router, cfg); err != nil {
		return err
	}
	if err := vn.Router.Initialize(); err != nil {
		return err
	}
	// Return traffic from the Internet re-enters Click's NAT input.
	if _, err := vn.proc.OpenPortRange(lo, hi, func(p *packet.Packet) {
		vn.Router.Push("napt", 1, p)
	}); err != nil {
		return err
	}
	// Local default: out through NAT. Advertised default: via the IGP.
	vn.rib.SetRoutes("static", fea.DistStatic, []fib.Route{
		{Prefix: netip.MustParsePrefix("0.0.0.0/0"), OutPort: portNAPT},
	})
	vn.extraStubs = append(vn.extraStubs, netip.MustParsePrefix("0.0.0.0/0"))
	vn.egress = true
	return nil
}

// externalSink sends post-NAT packets onto the real Internet (the
// substrate network) from the egress node.
type externalSink VirtualNode

func (t *externalSink) SendExternal(p *packet.Packet) {
	vn := (*VirtualNode)(t)
	// The substrate send wraps p.Data in a new packet; the buffer leaves
	// the pool with it.
	p.Escape()
	vn.proc.SendIP(p.Data)
}

// vpnSession is one opted-in client on an ingress node.
type vpnSession struct {
	clientAddr netip.Addr // the client's address inside the overlay
	codec      *vpn.Codec
	outer      netip.AddrPort // learned from the client's first packet
	seen       bool
}

type vpnServer struct {
	port     uint16
	sessions map[netip.Addr]*vpnSession
}

// EnableVPNServer makes this virtual node an OpenVPN-style ingress on
// the given UDP port. Register clients (pre-shared keys) before starting
// routing so their addresses are advertised. Call before StartOSPF.
func (vn *VirtualNode) EnableVPNServer(port uint16) error {
	if vn.vpn != nil {
		return fmt.Errorf("core: VPN server already enabled")
	}
	cfg := fmt.Sprintf(`
		fromvpn :: FromVPN;
		tovpn :: ToVPN;
		fromvpn -> rt;
		rt[%d] -> tovpn;
	`, portVPN)
	if err := click.ParseInto(vn.Router, cfg); err != nil {
		return err
	}
	if err := vn.Router.Initialize(); err != nil {
		return err
	}
	vn.vpn = &vpnServer{port: port, sessions: make(map[netip.Addr]*vpnSession)}
	if _, err := vn.proc.OpenUDP(port, vn.vpnReceive); err != nil {
		return err
	}
	return nil
}

// RegisterVPNClient provisions an opt-in client: its overlay address,
// its pre-shared key, a static route through the VPN port, and a stub
// advertisement so the whole overlay can reach it.
func (vn *VirtualNode) RegisterVPNClient(clientAddr netip.Addr, key []byte) error {
	if vn.vpn == nil {
		return fmt.Errorf("core: EnableVPNServer first")
	}
	codec, err := vpn.NewCodec(key)
	if err != nil {
		return err
	}
	vn.vpn.sessions[clientAddr] = &vpnSession{clientAddr: clientAddr, codec: codec}
	var routes []fib.Route
	for a := range vn.vpn.sessions {
		routes = append(routes, fib.Route{Prefix: netip.PrefixFrom(a, 32), OutPort: portVPN})
	}
	routes = append(routes, fib.Route{Prefix: netip.MustParsePrefix("0.0.0.0/0"), OutPort: portNAPT, Metric: 1})
	// Keep any egress default this node already has.
	if len(vn.extraStubs) == 0 || vn.extraStubs[0] != netip.MustParsePrefix("0.0.0.0/0") {
		routes = routes[:len(routes)-1]
	}
	vn.rib.SetRoutes("static", fea.DistStatic, routes)
	vn.extraStubs = append(vn.extraStubs, netip.PrefixFrom(clientAddr, 32))
	return nil
}

// vpnReceive ingests an encrypted client frame: authenticate, decrypt,
// learn the client's outer address, and push the inner packet into the
// overlay data plane.
func (vn *VirtualNode) vpnReceive(p *packet.Packet) {
	defer p.Release() // Open copies out of the frame; p is never retained
	var outer packet.IPv4
	seg, err := outer.Parse(p.Data)
	if err != nil {
		return
	}
	var u packet.UDP
	frame, err := u.Parse(seg)
	if err != nil {
		return
	}
	// Trial-decrypt against each provisioned client (sessions are few; a
	// production server would key on the outer address after handshake).
	for _, sess := range vn.vpn.sessions {
		inner, err := sess.codec.Open(frame)
		if err != nil {
			continue
		}
		var iip packet.IPv4
		if _, err := iip.Parse(inner); err != nil || iip.Src != sess.clientAddr {
			return // authenticated but spoofed inner source: drop
		}
		sess.outer = netip.AddrPortFrom(outer.Src, u.SrcPort)
		sess.seen = true
		q := packet.Get()
		q.SetData(inner) // Open returned a fresh buffer; adopt it
		q.Anno.Timestamp = p.Anno.Timestamp
		vn.Router.Push("fromvpn", 0, q)
		return
	}
}

// vpnSink returns overlay packets to their opted-in client.
type vpnSink VirtualNode

func (t *vpnSink) SendVPN(p *packet.Packet) {
	vn := (*VirtualNode)(t)
	defer p.Release() // Seal copies out of p.Data; p is never retained
	var ip packet.IPv4
	if _, err := ip.Parse(p.Data); err != nil {
		return
	}
	sess, ok := vn.vpn.sessions[ip.Dst]
	if !ok || !sess.seen {
		return
	}
	frame := sess.codec.Seal(p.Data)
	vn.proc.SendUDP(vn.vpn.port, sess.outer, frame, 64)
}

// VPNClient is the end-host side: an OpenVPN-style process that captures
// configured prefixes on a tun device, encrypts, and tunnels them to an
// ingress node; return frames are decrypted and injected locally.
type VPNClient struct {
	node   *netem.Node
	proc   *netem.Process
	codec  *vpn.Codec
	server netip.AddrPort
	// Addr is the client's address inside the overlay.
	Addr netip.Addr
	port uint16
	// Received counts decrypted return packets.
	Received uint64
}

// NewVPNClient attaches a client process to an end-host node. capture
// lists the destination prefixes diverted into the overlay (must not
// cover the server's own address).
func NewVPNClient(v *VINI, nodeName string, overlayAddr netip.Addr, key []byte,
	server netip.AddrPort, capture []netip.Prefix) (*VPNClient, error) {
	node, ok := v.Net.Node(nodeName)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", nodeName)
	}
	codec, err := vpn.NewCodec(key)
	if err != nil {
		return nil, err
	}
	c := &VPNClient{node: node, codec: codec, server: server,
		Addr: overlayAddr, port: 21194}
	c.proc = node.NewProcess(netem.ProcessConfig{Name: "openvpn-client", Share: 0.5})
	for _, p := range capture {
		if p.Contains(server.Addr()) {
			return nil, fmt.Errorf("core: capture prefix %v covers the VPN server (routing loop)", p)
		}
		c.proc.OpenTap(p, c.capture)
	}
	node.AddAddr(overlayAddr)
	if _, err := c.proc.OpenUDP(c.port, c.ret); err != nil {
		return nil, err
	}
	return c, nil
}

// capture seals an outgoing packet and tunnels it to the server.
func (c *VPNClient) capture(p *packet.Packet) {
	frame := c.codec.Seal(p.Data)
	p.Release()
	c.proc.SendUDP(c.port, c.server, frame, 64)
}

// ret handles a frame returning from the server.
func (c *VPNClient) ret(p *packet.Packet) {
	defer p.Release()
	var outer packet.IPv4
	seg, err := outer.Parse(p.Data)
	if err != nil {
		return
	}
	var u packet.UDP
	frame, err := u.Parse(seg)
	if err != nil {
		return
	}
	inner, err := c.codec.Open(frame)
	if err != nil {
		return
	}
	c.Received++
	c.node.InjectLocal(inner)
}
