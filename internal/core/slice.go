package core

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/fib"
	"vini/internal/netem"
	"vini/internal/ospf"
	"vini/internal/rip"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// Slice is one experiment: a set of virtual nodes joined by virtual
// links (UDP tunnels), with its own addresses, ports, forwarding tables,
// and routing processes.
type Slice struct {
	vini *VINI
	cfg  SliceConfig
	id   int
	// prefix is the slice's allocated address block; addrBase is its
	// network address as a uint32 and half its midpoint: taps live in
	// [base+1, base+half), /30 link subnets in [base+half, base+2*half).
	prefix   netip.Prefix
	addrBase uint32
	half     uint32
	// ports is the allocated tunnel port span; basePort (== ports.Lo)
	// stays a field because the encap hot path reads it per packet.
	ports    PortRange
	basePort uint16
	// natPorts is the NAT egress span, allocated lazily by the first
	// EnableEgress on the slice.
	natPorts PortRange
	vnodes   map[string]*VirtualNode
	vorder   []string
	vlinks   []*VirtualLink
	nextHost int // tap address allocator
	nextNet  int // /30 subnet allocator
	// state is the lifecycle position; prevState remembers what Pause
	// interrupted so Resume can restore it.
	state     SliceState
	prevState SliceState
	// res is the resource ledger teardown drains in reverse order.
	res ledger
	// ctl tracks control-domain timers the slice owns (staggered
	// StartOSPF closures, migration cutover/retire); Destroy cancels
	// them as a group.
	ctl *sim.TimerGroup
	// mig is the in-flight make-before-break migration, nil otherwise
	// (one at a time per slice). Written only at control-domain
	// barriers; the per-packet double-delivery branch reads it.
	mig *Migration
	// SPFDelay overrides the OSPF SPF batching delay (default 100ms;
	// production routers use ~1s, which widens the transient-forwarding
	// windows Figure 8's 110ms/87ms samples fall into). Set before
	// StartOSPF.
	SPFDelay time.Duration
	// onAlarm receives physical-failure upcalls.
	onAlarm func(LinkAlarm)
}

// VirtualLink is one virtual point-to-point link (a UDP tunnel pair).
type VirtualLink struct {
	A, B     *VirtualNode
	AIf, BIf int
	Cost     uint32
	// name labels the link in telemetry events ("a-b", endpoint
	// physical names), prebuilt so SetFailed does not allocate.
	name string
	// path pins the physical shortest path the tunnel was embedded
	// onto (the substrate masks failures along it until ReEmbed moves
	// the link to a live path).
	path []string
	// injected is the experiment-requested failure (SetFailed).
	injected bool
	// physFailed mirrors substrate failures along the pinned path for
	// ExposePhysicalFailures slices.
	physFailed bool
	// applied is the effective fail state last pushed into Click.
	applied bool
	// bw is the configured shaper rate in bits/s (0 = uncapped),
	// remembered so a migration shadow replicates the cap.
	bw float64
}

// Name returns the slice name.
func (s *Slice) Name() string { return s.cfg.Name }

// Prefix returns the slice's private address block.
func (s *Slice) Prefix() netip.Prefix { return s.prefix }

// addrAt returns the address at the given offset into the slice block.
func (s *Slice) addrAt(off uint32) netip.Addr { return u32Addr(s.addrBase + off) }

// hostCap bounds tap addresses: the lower half of the block, minus the
// network address, capped at the legacy 250 for /16 blocks.
func (s *Slice) hostCap() int {
	if s.half >= 256 {
		return 250
	}
	return int(s.half) - 2
}

// subnetCap bounds /30 link subnets: the upper half of the block in
// 4-address words (numbering starts at 1), capped at the legacy 8000.
func (s *Slice) subnetCap() int {
	if n := int(s.half/4) - 1; n < 8000 {
		return n
	}
	return 8000
}

// OnAlarm registers the upcall handler for substrate topology changes.
func (s *Slice) OnAlarm(fn func(LinkAlarm)) { s.onAlarm = fn }

// VirtualNodes returns the slice's virtual node names in creation order.
func (s *Slice) VirtualNodes() []string { return append([]string(nil), s.vorder...) }

// VirtualNode returns a virtual node by (physical) name.
func (s *Slice) VirtualNode(name string) (*VirtualNode, bool) {
	vn, ok := s.vnodes[name]
	return vn, ok
}

// AddVirtualNode instantiates the slice on the named physical node: a
// Click forwarder process with the IIAS element graph, a tap0 address
// out of the slice's block, and (lazily) routing processes.
func (s *Slice) AddVirtualNode(physName string) (*VirtualNode, error) {
	if s.state >= StateDraining {
		return nil, fmt.Errorf("core: cannot embed slice %s in state %s", s.cfg.Name, s.state)
	}
	if s.mig != nil {
		return nil, fmt.Errorf("core: cannot embed slice %s while a migration is in flight", s.cfg.Name)
	}
	if _, dup := s.vnodes[physName]; dup {
		return nil, fmt.Errorf("core: slice %s already on node %s", s.cfg.Name, physName)
	}
	phys, ok := s.vini.Net.Node(physName)
	if !ok {
		return nil, fmt.Errorf("core: unknown physical node %q", physName)
	}
	// Admission control: the node must have room for this slice's CPU
	// reservation before anything is instantiated on it.
	if err := s.vini.reserveCPU(physName, s.cfg.CPUShare); err != nil {
		return nil, err
	}
	cpu := s.res.acquire("cpu", physName, func() { s.vini.releaseCPU(physName, s.cfg.CPUShare) })
	s.nextHost++
	if s.nextHost > s.hostCap() {
		cpu.release()
		return nil, fmt.Errorf("core: slice %s out of tap addresses (block %s holds %d): %w",
			s.cfg.Name, s.prefix, s.hostCap(), ErrExhausted)
	}
	tap := s.addrAt(uint32(s.nextHost))
	vn, err := newVirtualNode(s, phys, tap)
	if err != nil {
		cpu.release()
		return nil, err
	}
	// The CPU reservation heads the incarnation's handle list: a
	// migration retire drops newest-first, releasing addresses, then the
	// process, then the reservation.
	vn.handles = append([]*handle{cpu}, vn.handles...)
	s.vnodes[physName] = vn
	s.vorder = append(s.vorder, physName)
	if s.state == StateAdmitted {
		s.state = StateEmbedded
	}
	return vn, nil
}

// allocSubnet returns a fresh /30 from the slice block and its two host
// addresses.
func (s *Slice) allocSubnet() (netip.Prefix, netip.Addr, netip.Addr, error) {
	s.nextNet++
	if s.nextNet > s.subnetCap() {
		return netip.Prefix{}, netip.Addr{}, netip.Addr{},
			fmt.Errorf("core: slice %s out of /30 subnets (block %s holds %d): %w",
				s.cfg.Name, s.prefix, s.subnetCap(), ErrExhausted)
	}
	// Subnets live in the upper half of the block (10.<x>.128.0/17 for
	// the legacy /16 shape).
	off := s.half + uint32(s.nextNet)*4
	base := s.addrAt(off)
	a := s.addrAt(off + 1)
	b := s.addrAt(off + 2)
	return netip.PrefixFrom(base, 30), a, b, nil
}

// ConnectVirtual creates a virtual link between two of the slice's
// virtual nodes: a /30 subnet, one UDP-tunnel interface on each side
// (with the Click LinkFail → ToTunnel chain), and encapsulation-table
// entries pointing at the peer's physical node.
func (s *Slice) ConnectVirtual(a, b string, cost uint32) (*VirtualLink, error) {
	if s.state >= StateDraining {
		return nil, fmt.Errorf("core: cannot embed slice %s in state %s", s.cfg.Name, s.state)
	}
	if s.mig != nil {
		return nil, fmt.Errorf("core: cannot embed slice %s while a migration is in flight", s.cfg.Name)
	}
	va, ok := s.vnodes[a]
	if !ok {
		return nil, fmt.Errorf("core: no virtual node on %q", a)
	}
	vb, ok := s.vnodes[b]
	if !ok {
		return nil, fmt.Errorf("core: no virtual node on %q", b)
	}
	if cost == 0 {
		cost = 1
	}
	prefix, addrA, addrB, err := s.allocSubnet()
	if err != nil {
		return nil, err
	}
	ifA, err := va.addInterface(prefix, addrA, addrB, vb, cost)
	if err != nil {
		return nil, err
	}
	ifB, err := vb.addInterface(prefix, addrB, addrA, va, cost)
	if err != nil {
		return nil, err
	}
	vl := &VirtualLink{A: va, B: vb, AIf: ifA, BIf: ifB, Cost: cost, name: a + "-" + b,
		// Pin the embedding to the current shortest physical path —
		// upcall matching and ReEmbed work against this pin.
		path: s.vini.physPath(a, b)}
	s.vlinks = append(s.vlinks, vl)
	return vl, nil
}

// FindVirtualLink locates the virtual link between two virtual nodes.
func (s *Slice) FindVirtualLink(a, b string) (*VirtualLink, bool) {
	for _, vl := range s.vlinks {
		if (vl.A.phys.Name() == a && vl.B.phys.Name() == b) ||
			(vl.A.phys.Name() == b && vl.B.phys.Name() == a) {
			return vl, true
		}
	}
	return nil, false
}

// SetFailed injects (or clears) a failure on the virtual link by
// flipping the LinkFail elements inside Click on both endpoints — the
// paper's §5.2 mechanism ("we fail the link by dropping packets within
// Click on the virtual link connecting two Abilene nodes").
func (vl *VirtualLink) SetFailed(v bool) {
	vl.injected = v
	vl.applyFailState()
}

// applyFailState pushes the effective failure state (injected OR
// mirrored-physical) into the Click LinkFail elements, recording the
// transition; repeated application of an unchanged state is free.
func (vl *VirtualLink) applyFailState() {
	eff := vl.injected || vl.physFailed
	if eff == vl.applied {
		return
	}
	vl.applied = eff
	vl.A.setTunnelFailed(vl.AIf, eff)
	vl.B.setTunnelFailed(vl.BIf, eff)
	s := vl.A.slice
	if tel := s.vini.tel; tel != nil {
		detail := "up"
		if eff {
			detail = "down"
		}
		// Fail-state flips run on the control timeline (driver calls,
		// scheduled failures, physical upcalls), so the control ring is
		// the writer.
		tel.Rec.Record(s.vini.loop.Domain, telemetry.Event{
			Kind:   telemetry.EvLink,
			Slice:  s.cfg.Name,
			Elem:   vl.name,
			Detail: detail,
		})
	}
}

// Failed reports the effective failure state (injected or exposed
// physical).
func (vl *VirtualLink) Failed() bool { return vl.injected || vl.physFailed }

// Path returns the pinned physical path (embedding-time shortest path,
// or the latest ReEmbed result).
func (vl *VirtualLink) Path() []string { return append([]string(nil), vl.path...) }

// SetBandwidth caps the virtual link at bps in both directions using
// the Click traffic shapers on its per-tunnel chains (Section 6.2's
// "support for setting link bandwidths"). bps <= 0 removes the cap.
func (vl *VirtualLink) SetBandwidth(bps float64) {
	if bps < 0 {
		bps = 0
	}
	vl.bw = bps
	v := "0"
	if bps > 0 {
		v = fmt.Sprintf("%f", bps)
	}
	vl.A.Router.Handler(fmt.Sprintf("shape%d.rate", vl.AIf), v)
	vl.B.Router.Handler(fmt.Sprintf("shape%d.rate", vl.BIf), v)
}

// StartOSPF launches an OSPF process on every virtual node with the
// given timers, advertising each node's tap0 /32 (plus any extra stubs
// registered on the node, e.g. an egress default route). Router starts
// are staggered across one hello interval, as real deployments are, so
// dead timers do not fire in lockstep.
func (s *Slice) StartOSPF(hello, dead time.Duration) {
	rng := s.vini.loop.RNG().Fork()
	for _, name := range s.vorder {
		vn := s.vnodes[name]
		offset := time.Duration(rng.Float64() * float64(hello))
		// Staggered starts are slice-owned control timers: Destroy
		// cancels the ones that have not fired yet through the group.
		s.ctl.Schedule(offset, func() { vn.startOSPF(hello, dead) })
	}
	if s.state == StateEmbedded {
		s.state = StateRunning
	}
}

// StartRIP launches RIP instead (a slice runs one IGP at a time unless
// an experiment deliberately runs both for the switchover demo).
func (s *Slice) StartRIP(update time.Duration) {
	for _, name := range s.vorder {
		s.vnodes[name].startRIP(update)
	}
	if s.state == StateEmbedded {
		s.state = StateRunning
	}
}

// SwitchProtocol atomically prefers the named protocol ("ospf" or
// "rip") in every virtual node's RIB — the conclusion's "atomic
// switchover between virtual networks". Both protocols keep running;
// only the forwarding tables flip.
func (s *Slice) SwitchProtocol(proto string) error {
	switch proto {
	case "ospf", "rip":
	default:
		return fmt.Errorf("core: unknown protocol %q", proto)
	}
	for _, name := range s.vorder {
		s.vnodes[name].rib.Prefer(proto)
	}
	return nil
}

// physicalEvent delivers upcalls for a substrate link event and, when
// the slice opted in, exposes the failure to the virtual topology.
// Virtual links are matched against their pinned embedding path — the
// substrate IGP re-routes around the failure and would mask it, which
// is exactly what Section 3.1's upcalls exist to counteract.
func (s *Slice) physicalEvent(ev netem.LinkEvent) {
	if s.state == StateDraining || s.state == StateDestroyed {
		return
	}
	for _, vl := range s.vlinks {
		if !usesPhysLink(vl.path, ev.A, ev.B) {
			continue
		}
		if s.onAlarm != nil {
			s.onAlarm(LinkAlarm{Event: ev, A: vl.A.phys.Name(), B: vl.B.phys.Name()})
		}
		if s.cfg.ExposePhysicalFailures {
			// The virtual link is down while any link of its pinned
			// path is down (a restore elsewhere does not heal it).
			vl.physFailed = s.anyPathDown(vl.path)
			vl.applyFailState()
		}
	}
}

// buildOSPF constructs and wires the per-node OSPF process without
// starting it, so a migration shadow can import the old instance's
// exported state between construction and Start.
func (vn *VirtualNode) buildOSPF(hello, dead time.Duration) *ospf.Router {
	vn.ospfHello, vn.ospfDead = hello, dead
	stubs := []ospf.StubDesc{{Prefix: netip.PrefixFrom(vn.TapAddr, 32)}}
	for _, p := range vn.extraStubs {
		stubs = append(stubs, ospf.StubDesc{Prefix: p})
	}
	cfg := ospf.Config{
		RouterID: ospf.RouterIDFromAddr(vn.TapAddr),
		Hello:    hello,
		Dead:     dead,
		SPFDelay: vn.slice.SPFDelay,
		Stubs:    stubs,
		Ticks:    vn.ticks,
	}
	r := ospf.New(vn.clock, cfg, ospfTransport{vn})
	for _, ifc := range vn.ifaces {
		r.AddInterface(ospf.Interface{
			Name:   fmt.Sprintf("tun%d", ifc.Index),
			Index:  ifc.Index,
			Addr:   ifc.Addr,
			Prefix: ifc.Prefix,
			Cost:   ifc.Cost,
		})
	}
	vn.OSPF = r
	r.OnRoutes(func(routes []fib.Route) { vn.installProtocolRoutes("ospf", routes) })
	if tel := vn.slice.vini.tel; tel != nil {
		r.OnNeighborEvent(func(iface int, id uint32, state string) {
			tel.Rec.Record(vn.phys.Domain(), telemetry.Event{
				Kind:   telemetry.EvNeighbor,
				Slice:  vn.slice.cfg.Name,
				Node:   vn.phys.Name(),
				Elem:   "ospf",
				Detail: state,
				Value:  int64(id),
			})
		})
	}
	return r
}

func (vn *VirtualNode) startOSPF(hello, dead time.Duration) {
	vn.buildOSPF(hello, dead).Start()
}

func (vn *VirtualNode) startRIP(update time.Duration) {
	vn.ripUpdate = update
	stubs := []netip.Prefix{netip.PrefixFrom(vn.TapAddr, 32)}
	stubs = append(stubs, vn.extraStubs...)
	r := rip.New(vn.clock, rip.Config{Update: update, Stubs: stubs, Ticks: vn.ticks}, ripTransport{vn})
	for _, ifc := range vn.ifaces {
		r.AddInterface(rip.Interface{
			Name:   fmt.Sprintf("tun%d", ifc.Index),
			Index:  ifc.Index,
			Addr:   ifc.Addr,
			Prefix: ifc.Prefix,
		})
	}
	vn.RIP = r
	r.OnRoutes(func(routes []fib.Route) { vn.installProtocolRoutes("rip", routes) })
	if tel := vn.slice.vini.tel; tel != nil {
		r.OnEvent(func(event string, n int) {
			tel.Rec.Record(vn.phys.Domain(), telemetry.Event{
				Kind:   telemetry.EvSession,
				Slice:  vn.slice.cfg.Name,
				Node:   vn.phys.Name(),
				Elem:   "rip",
				Detail: event,
				Value:  int64(n),
			})
		})
	}
	r.Start()
}
