package vpn

import (
	"bytes"
	"testing"
	"testing/quick"
)

func pair(t *testing.T) (*Codec, *Codec) {
	t.Helper()
	key := bytes.Repeat([]byte{7}, KeySize)
	a, err := NewCodec(key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCodec(key)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSealOpenRoundTrip(t *testing.T) {
	a, b := pair(t)
	msg := []byte("inner ip datagram")
	frame := a.Seal(msg)
	if len(frame) != len(msg)+Overhead {
		t.Fatalf("frame len = %d, want %d", len(frame), len(msg)+Overhead)
	}
	got, err := b.Open(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestTamperRejected(t *testing.T) {
	a, b := pair(t)
	frame := a.Seal([]byte("payload"))
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 1
		if _, err := b.Open(bad); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	a, b := pair(t)
	f1 := a.Seal([]byte("one"))
	if _, err := b.Open(f1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(f1); err == nil {
		t.Fatal("replay accepted")
	}
}

func TestOutOfOrderWithinWindow(t *testing.T) {
	a, b := pair(t)
	var frames [][]byte
	for i := 0; i < 10; i++ {
		frames = append(frames, a.Seal([]byte{byte(i)}))
	}
	// Deliver 9 first, then the earlier ones (reordered but not replayed).
	if _, err := b.Open(frames[9]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := b.Open(frames[i]); err != nil {
			t.Fatalf("in-window frame %d rejected: %v", i, err)
		}
	}
	// Now every one of them is a replay.
	for i := range frames {
		if _, err := b.Open(frames[i]); err == nil {
			t.Fatalf("late replay %d accepted", i)
		}
	}
}

func TestAncientFrameRejected(t *testing.T) {
	a, b := pair(t)
	old := a.Seal([]byte("old"))
	for i := 0; i < 100; i++ {
		f := a.Seal([]byte("new"))
		if _, err := b.Open(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Open(old); err == nil {
		t.Fatal("frame far outside window accepted")
	}
}

func TestWrongKeyFails(t *testing.T) {
	a, _ := pair(t)
	other, _ := NewCodec(bytes.Repeat([]byte{9}, KeySize))
	if _, err := other.Open(a.Seal([]byte("x"))); err == nil {
		t.Fatal("cross-key frame accepted")
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := NewCodec([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		a, b := pair(&testing.T{})
		for _, p := range payloads {
			if len(p) > 1500 {
				p = p[:1500]
			}
			got, err := b.Open(a.Seal(p))
			if err != nil || !bytes.Equal(got, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
