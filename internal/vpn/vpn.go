// Package vpn implements the OpenVPN-style opt-in ingress of Section
// 4.2.3: an end host runs a client that captures its outgoing packets on
// a tun device and tunnels them, encrypted, over UDP to a VPN server on
// a designated IIAS ingress node; the server decrypts and hands the inner
// packets to the slice's Click forwarder. Framing is AES-256-GCM with a
// pre-shared key, a 64-bit nonce counter, and a sliding replay window.
package vpn

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// KeySize is the pre-shared key length (AES-256).
const KeySize = 32

// Overhead is the per-packet expansion: 8-byte counter + GCM tag.
const Overhead = 8 + 16

// Codec seals and opens VPN frames in one direction each. Use one Codec
// per endpoint; the send counter and receive replay window are
// independent.
type Codec struct {
	aead    cipher.AEAD
	sendCtr uint64
	// Replay window over received counters.
	maxSeen uint64
	window  uint64 // bitmap of the 64 counters below maxSeen
}

// NewCodec builds a codec from a 32-byte pre-shared key.
func NewCodec(key []byte) (*Codec, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("vpn: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Codec{aead: aead}, nil
}

func nonceFor(ctr uint64) []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint64(n[4:], ctr)
	return n
}

// Seal encrypts an inner IP datagram into a VPN frame.
func (c *Codec) Seal(plain []byte) []byte {
	c.sendCtr++
	out := make([]byte, 8, 8+len(plain)+16)
	binary.BigEndian.PutUint64(out, c.sendCtr)
	return c.aead.Seal(out, nonceFor(c.sendCtr), plain, out[:8])
}

// Open decrypts a VPN frame, rejecting tampered and replayed packets.
func (c *Codec) Open(frame []byte) ([]byte, error) {
	if len(frame) < Overhead {
		return nil, fmt.Errorf("vpn: frame too short")
	}
	ctr := binary.BigEndian.Uint64(frame[:8])
	if ctr == 0 {
		return nil, fmt.Errorf("vpn: zero counter")
	}
	if !c.replayOK(ctr) {
		return nil, fmt.Errorf("vpn: replayed counter %d", ctr)
	}
	plain, err := c.aead.Open(nil, nonceFor(ctr), frame[8:], frame[:8])
	if err != nil {
		return nil, fmt.Errorf("vpn: authentication failed: %w", err)
	}
	c.accept(ctr)
	return plain, nil
}

// replayOK checks the counter against the sliding window without
// mutating state (state updates only after authentication succeeds).
func (c *Codec) replayOK(ctr uint64) bool {
	switch {
	case ctr > c.maxSeen:
		return true
	case c.maxSeen-ctr >= 64:
		return false // too old
	default:
		return c.window&(1<<(c.maxSeen-ctr)) == 0
	}
}

func (c *Codec) accept(ctr uint64) {
	if ctr > c.maxSeen {
		shift := ctr - c.maxSeen
		if shift >= 64 {
			c.window = 0
		} else {
			c.window <<= shift
		}
		c.window |= 1 // previous maxSeen slot... bit 0 is current
		c.maxSeen = ctr
		return
	}
	c.window |= 1 << (c.maxSeen - ctr)
}
