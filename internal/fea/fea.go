// Package fea is the Forwarding Engine Abstraction: the layer through
// which routing processes (internal/ospf, internal/rip, internal/bgp)
// manipulate forwarding state, as XORP's FEA does for the Click data
// plane (Section 4.2.2 of the paper). It contains a small RIB that
// merges the routes of several protocols by administrative distance and
// pushes the winners into the slice's Click FIB atomically.
package fea

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"vini/internal/fib"
)

// Administrative distances, matching common router defaults.
const (
	DistConnected = 0
	DistStatic    = 1
	DistEBGP      = 20
	DistOSPF      = 110
	DistRIP       = 120
	DistIBGP      = 200
)

// protoRoute is a route candidate contributed by one protocol.
type protoRoute struct {
	fib.Route
	dist int
}

// RIB merges per-protocol route sets and installs winners into a FIB.
type RIB struct {
	mu     sync.Mutex
	target *fib.Table
	// byProto holds each protocol's latest full announcement.
	byProto map[string][]protoRoute
	// preferred, when set, beats administrative distance — the atomic
	// switchover lever ("controlling the forwarding tables ... in one
	// virtual network at any given time, with atomic switchover").
	preferred string
	// onInstall observes FIB installs (telemetry hook): the protocol
	// that triggered the recompute and the number of routes now
	// installed. Fired outside the mutex.
	onInstall func(proto string, n int)
}

// OnInstall registers an observer called after every FIB recompute with
// the triggering protocol and the resulting installed-route count. The
// callback runs outside the RIB lock, in the caller's clock domain.
func (r *RIB) OnInstall(fn func(proto string, n int)) { r.onInstall = fn }

// NewRIB returns a RIB feeding target.
func NewRIB(target *fib.Table) *RIB {
	return &RIB{target: target, byProto: make(map[string][]protoRoute)}
}

// SetRoutes replaces proto's entire route set (protocols recompute whole
// tables — OSPF after SPF, RIP after a periodic update) and recomputes
// the FIB. dist is the protocol's administrative distance.
func (r *RIB) SetRoutes(proto string, dist int, routes []fib.Route) {
	r.mu.Lock()
	prs := make([]protoRoute, 0, len(routes))
	for _, rt := range routes {
		rt.Proto = proto
		prs = append(prs, protoRoute{Route: rt, dist: dist})
	}
	r.byProto[proto] = prs
	n := r.recompute()
	fn := r.onInstall
	r.mu.Unlock()
	if fn != nil {
		fn(proto, n)
	}
}

// Prefer makes proto win route selection regardless of administrative
// distance (empty string restores normal selection). The change applies
// atomically across the whole table.
func (r *RIB) Prefer(proto string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.preferred = proto
	r.recompute()
}

// RemoveProtocol withdraws everything a protocol contributed.
func (r *RIB) RemoveProtocol(proto string) {
	r.mu.Lock()
	delete(r.byProto, proto)
	n := r.recompute()
	fn := r.onInstall
	r.mu.Unlock()
	if fn != nil {
		fn(proto, n)
	}
}

// recompute picks, per prefix, the route with the lowest administrative
// distance (metric breaks ties, then protocol name for determinism) and
// atomically replaces the FIB contents. It returns the number of routes
// installed.
func (r *RIB) recompute() int {
	best := make(map[netip.Prefix]protoRoute)
	for _, prs := range r.byProto {
		for _, pr := range prs {
			key := pr.Prefix.Masked()
			cur, ok := best[key]
			if !ok || r.better(pr, cur) {
				best[key] = pr
			}
		}
	}
	routes := make([]fib.Route, 0, len(best))
	for _, pr := range best {
		routes = append(routes, pr.Route)
	}
	sort.Slice(routes, func(i, j int) bool {
		return routes[i].Prefix.String() < routes[j].Prefix.String()
	})
	r.target.Replace("rib", routes)
	return len(routes)
}

func (r *RIB) better(pr, other protoRoute) bool {
	if r.preferred != "" {
		// "connected" still wins (a directly attached subnet is never
		// reached through a protocol route), then the preference.
		if (pr.dist == DistConnected) != (other.dist == DistConnected) {
			return pr.dist == DistConnected
		}
		if (pr.Proto == r.preferred) != (other.Proto == r.preferred) {
			return pr.Proto == r.preferred
		}
	}
	if pr.dist != other.dist {
		return pr.dist < other.dist
	}
	if pr.Metric != other.Metric {
		return pr.Metric < other.Metric
	}
	return pr.Proto < other.Proto
}

// Routes returns the current merged route set (from the target FIB).
func (r *RIB) Routes() []fib.Route {
	return r.target.Routes()
}

// ProtoRoutes returns a copy of proto's latest full announcement as
// held by the RIB, for consistency checks against the protocol's own
// view.
func (r *RIB) ProtoRoutes(proto string) []fib.Route {
	r.mu.Lock()
	defer r.mu.Unlock()
	prs := r.byProto[proto]
	out := make([]fib.Route, len(prs))
	for i, pr := range prs {
		out[i] = pr.Route
	}
	return out
}

// Verify re-runs route selection and checks the target FIB holds
// exactly the winners (owner "rib"), i.e. no installation was lost or
// reordered between the RIB and the data plane. It returns a
// description of the first mismatch.
func (r *RIB) Verify() error {
	r.mu.Lock()
	best := make(map[netip.Prefix]protoRoute)
	for _, prs := range r.byProto {
		for _, pr := range prs {
			key := pr.Prefix.Masked()
			cur, ok := best[key]
			if !ok || r.better(pr, cur) {
				best[key] = pr
			}
		}
	}
	r.mu.Unlock()
	installed := make(map[netip.Prefix]fib.Route)
	for _, rt := range r.target.Routes() {
		if rt.Owner != "rib" {
			continue
		}
		installed[rt.Prefix.Masked()] = rt
	}
	for key, pr := range best {
		got, ok := installed[key]
		if !ok {
			return fmt.Errorf("fea: winner %v (%s) missing from FIB", pr.Route, pr.Proto)
		}
		want := pr.Route
		want.Owner = "rib"
		want.Prefix = want.Prefix.Masked()
		if got != want {
			return fmt.Errorf("fea: FIB has %v for %v, RIB selected %v", got, key, want)
		}
		delete(installed, key)
	}
	for _, rt := range installed {
		return fmt.Errorf("fea: FIB route %v has no RIB winner", rt)
	}
	return nil
}
