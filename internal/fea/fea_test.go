package fea

import (
	"net/netip"
	"testing"

	"vini/internal/fib"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestAdminDistanceWins(t *testing.T) {
	tbl := fib.New()
	rib := NewRIB(tbl)
	rib.SetRoutes("rip", DistRIP, []fib.Route{{Prefix: pfx("10.1.0.0/16"), Metric: 1, OutPort: 9}})
	rib.SetRoutes("ospf", DistOSPF, []fib.Route{{Prefix: pfx("10.1.0.0/16"), Metric: 100, OutPort: 2}})
	r, ok := tbl.Lookup(addr("10.1.2.3"))
	if !ok || r.Proto != "ospf" || r.OutPort != 2 {
		t.Fatalf("winner = %+v, want ospf despite higher metric", r)
	}
}

func TestMetricBreaksTies(t *testing.T) {
	tbl := fib.New()
	rib := NewRIB(tbl)
	rib.SetRoutes("ospf", DistOSPF, []fib.Route{
		{Prefix: pfx("10.1.0.0/16"), Metric: 5, OutPort: 1},
	})
	rib.SetRoutes("ospf2", DistOSPF, []fib.Route{
		{Prefix: pfx("10.1.0.0/16"), Metric: 3, OutPort: 2},
	})
	r, _ := tbl.Lookup(addr("10.1.0.1"))
	if r.OutPort != 2 {
		t.Fatalf("lower metric lost: %+v", r)
	}
}

func TestFullReplaceWithdrawsStale(t *testing.T) {
	tbl := fib.New()
	rib := NewRIB(tbl)
	rib.SetRoutes("ospf", DistOSPF, []fib.Route{
		{Prefix: pfx("10.1.0.0/16")},
		{Prefix: pfx("10.2.0.0/16")},
	})
	rib.SetRoutes("ospf", DistOSPF, []fib.Route{
		{Prefix: pfx("10.1.0.0/16")},
	})
	if _, ok := tbl.Lookup(addr("10.2.0.1")); ok {
		t.Fatal("stale route survived full replace")
	}
	if _, ok := tbl.Lookup(addr("10.1.0.1")); !ok {
		t.Fatal("kept route missing")
	}
}

func TestRemoveProtocolFallsBack(t *testing.T) {
	tbl := fib.New()
	rib := NewRIB(tbl)
	rib.SetRoutes("ospf", DistOSPF, []fib.Route{{Prefix: pfx("10.1.0.0/16"), OutPort: 1}})
	rib.SetRoutes("rip", DistRIP, []fib.Route{{Prefix: pfx("10.1.0.0/16"), OutPort: 2}})
	rib.RemoveProtocol("ospf")
	r, ok := tbl.Lookup(addr("10.1.0.1"))
	if !ok || r.Proto != "rip" {
		t.Fatalf("fallback = %+v ok=%v", r, ok)
	}
}

func TestConnectedBeatsEverything(t *testing.T) {
	tbl := fib.New()
	rib := NewRIB(tbl)
	rib.SetRoutes("bgp", DistEBGP, []fib.Route{{Prefix: pfx("10.1.1.0/30"), OutPort: 5}})
	rib.SetRoutes("connected", DistConnected, []fib.Route{{Prefix: pfx("10.1.1.0/30"), OutPort: 0}})
	r, _ := tbl.Lookup(addr("10.1.1.2"))
	if r.Proto != "connected" {
		t.Fatalf("winner = %+v", r)
	}
}

func TestDistinctPrefixesCoexist(t *testing.T) {
	tbl := fib.New()
	rib := NewRIB(tbl)
	rib.SetRoutes("ospf", DistOSPF, []fib.Route{{Prefix: pfx("10.1.0.0/16")}})
	rib.SetRoutes("bgp", DistEBGP, []fib.Route{{Prefix: pfx("192.0.2.0/24")}})
	if len(rib.Routes()) != 2 {
		t.Fatalf("routes = %v", rib.Routes())
	}
}

func TestPreferOverridesDistance(t *testing.T) {
	tbl := fib.New()
	rib := NewRIB(tbl)
	rib.SetRoutes("ospf", DistOSPF, []fib.Route{{Prefix: pfx("10.1.0.0/16"), OutPort: 1}})
	rib.SetRoutes("rip", DistRIP, []fib.Route{{Prefix: pfx("10.1.0.0/16"), OutPort: 2}})
	rib.SetRoutes("connected", DistConnected, []fib.Route{{Prefix: pfx("10.1.9.0/30"), OutPort: 0}})
	rib.Prefer("rip")
	r, _ := tbl.Lookup(addr("10.1.0.1"))
	if r.Proto != "rip" {
		t.Fatalf("preferred rip lost: %+v", r)
	}
	// Connected routes still beat the preference.
	r, _ = tbl.Lookup(addr("10.1.9.1"))
	if r.Proto != "connected" {
		t.Fatalf("connected lost to preference: %+v", r)
	}
	// Switching back and clearing restores distance order.
	rib.Prefer("ospf")
	r, _ = tbl.Lookup(addr("10.1.0.1"))
	if r.Proto != "ospf" {
		t.Fatalf("switch back failed: %+v", r)
	}
	rib.Prefer("")
	r, _ = tbl.Lookup(addr("10.1.0.1"))
	if r.Proto != "ospf" {
		t.Fatalf("normal selection failed: %+v", r)
	}
}
