package telemetry

import (
	"time"

	"vini/internal/sim"
)

// EventKind classifies flight-recorder events.
type EventKind uint8

// Flight-recorder event kinds.
const (
	EvPacket   EventKind = 1 + iota // a traced packet visited an element/hop
	EvNeighbor                      // OSPF neighbor FSM transition
	EvRoute                         // protocol route install into the RIB
	EvLink                          // physical or virtual link state change
	EvSession                       // BGP session event / RIP advertisement
	EvMark                          // free-form experiment marker
	EvRate                          // adaptive-workload rate/detector update
)

func (k EventKind) String() string {
	switch k {
	case EvPacket:
		return "packet"
	case EvNeighbor:
		return "neighbor"
	case EvRoute:
		return "route"
	case EvLink:
		return "link"
	case EvSession:
		return "session"
	case EvMark:
		return "mark"
	case EvRate:
		return "rate"
	default:
		return "unknown"
	}
}

// Event is one flight-recorder entry. (At, Dom, Seq) is the same merge
// key the parallel executor orders events by: At is the recording
// domain's sim-time, Dom its id, Seq the ring's monotonic sequence.
// Merging every ring by this key yields one total order that is
// byte-identical for any worker count.
type Event struct {
	At     time.Duration `json:"at"`
	Dom    int32         `json:"dom"`
	Seq    uint64        `json:"seq"`
	Kind   EventKind     `json:"kind"`
	Slice  string        `json:"slice,omitempty"`
	Node   string        `json:"node,omitempty"`
	Elem   string        `json:"elem,omitempty"`
	Detail string        `json:"detail,omitempty"`
	Value  int64         `json:"value,omitempty"`
}

// ring is one domain's bounded event buffer. It is written only by the
// code running inside that domain (single-threaded by the executor)
// and read only at barriers, so it needs no locking.
type ring struct {
	buf  []Event
	next uint64 // total events ever recorded; seq source
}

// DefaultFlightCap is the per-domain ring capacity.
const DefaultFlightCap = 4096

// Recorder is the deterministic flight recorder: one bounded ring per
// time domain. Callers pass the domain they are executing in; the
// entry is stamped with that domain's current sim-time and a
// per-domain sequence number. When a ring overflows, the oldest
// entries are overwritten (deterministically — overflow depends only
// on the event sequence).
type Recorder struct {
	cap   int
	rings []*ring
}

// NewRecorder returns a recorder whose rings hold capPerDomain events
// each (DefaultFlightCap if <= 0). Rings are added via EnsureDomain.
func NewRecorder(capPerDomain int) *Recorder {
	if capPerDomain <= 0 {
		capPerDomain = DefaultFlightCap
	}
	return &Recorder{cap: capPerDomain}
}

// EnsureDomain sizes the ring table to cover domain id. Must be called
// from the driver (domain creation time), never concurrently with
// recording workers.
func (r *Recorder) EnsureDomain(id int32) {
	if r == nil {
		return
	}
	for int(id) >= len(r.rings) {
		r.rings = append(r.rings, &ring{buf: make([]Event, r.cap)})
	}
}

// Record appends an event to the ring of the domain d is executing in,
// stamping At/Dom/Seq. Zero allocations: the ring slot is reused and
// string fields must be static or pre-built at wiring time.
func (r *Recorder) Record(d *sim.Domain, ev Event) {
	if r == nil || d == nil {
		return
	}
	id := int(d.ID())
	if id >= len(r.rings) {
		return
	}
	rg := r.rings[id]
	ev.At = d.Now()
	ev.Dom = d.ID()
	ev.Seq = rg.next
	rg.buf[rg.next%uint64(len(rg.buf))] = ev
	rg.next++
}

// Dropped reports how many events were overwritten across all rings.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, rg := range r.rings {
		if rg.next > uint64(len(rg.buf)) {
			n += rg.next - uint64(len(rg.buf))
		}
	}
	return n
}

// Events merges every ring, oldest first, into one slice ordered by
// the merge key (At, Dom, Seq). Call only at a barrier (no domain
// executing).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, rg := range r.rings {
		n := rg.next
		cap64 := uint64(len(rg.buf))
		start := uint64(0)
		count := n
		if n > cap64 {
			start = n % cap64
			count = cap64
		}
		for i := uint64(0); i < count; i++ {
			out = append(out, rg.buf[(start+i)%cap64])
		}
	}
	sortEvents(out)
	return out
}

// Digest folds the merged event stream — stamps, kinds, labels and
// values — into one FNV-1a word. The worker-parity property asserts
// this digest is identical for 1 and N workers.
func (r *Recorder) Digest() uint64 {
	h := uint64(fnvOffset)
	for _, ev := range r.Events() {
		h = fnvFold(h, uint64(ev.At))
		h = fnvFold(h, uint64(uint32(ev.Dom)))
		h = fnvFold(h, ev.Seq)
		h = fnvFold(h, uint64(ev.Kind))
		h = fnvString(h, ev.Slice)
		h = fnvString(h, ev.Node)
		h = fnvString(h, ev.Elem)
		h = fnvString(h, ev.Detail)
		h = fnvFold(h, uint64(ev.Value))
	}
	return h
}
