// Package telemetry is the deterministic observability subsystem: a
// metrics registry keyed by (slice, node, name), a sim-time flight
// recorder whose events carry the executor's merge key (at, dom, seq),
// and first-class queries (packet paths, convergence after failure)
// derived from the recorded control-plane timeline.
//
// Determinism contract: every write happens either from the driver /
// control phase (globally serialized) or from code running inside a
// single time domain (single-threaded by the executor), so counter
// values and recorded events are a pure function of the simulated
// event sequence — identical for any worker count. Snapshots iterate
// in registration order, never map order.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FNV-1a, matching the executor's schedule digests.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvFold(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return (h ^ 0xff) * fnvPrime // terminator so "ab","c" != "a","bc"
}

// pad keeps each hot counter on its own cache line: counters are
// sharded by key — each (slice, node, name) cell is written by exactly
// one time domain — so correctness needs only the atomic, but padding
// prevents false sharing between cells updated by different workers.
type pad [56]byte

// Counter is a monotonically increasing uint64. The zero receiver is
// valid and discards writes, so instrumented fast paths need no
// enabled/disabled branch beyond the nil check inlined in each method.
type Counter struct {
	_ pad
	v atomic.Uint64
	_ pad
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed value (occupancy, share, last-seen).
type Gauge struct {
	_ pad
	v atomic.Int64
	_ pad
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every histogram: bucket i
// holds samples with value < 2^i microseconds (bucket 0: < 1us), the
// last bucket is unbounded. Fixed power-of-two bounds keep Observe
// allocation-free and snapshots comparable across runs.
const HistBuckets = 28

// Histogram records duration samples into power-of-two buckets.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	n      atomic.Uint64
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.counts[i].Add(1)
	h.sum.Add(uint64(d))
	h.n.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all samples in nanoseconds.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets copies the non-cumulative bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	if h == nil {
		return out
	}
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metricKey struct{ slice, node, name string }

type metric struct {
	key  metricKey
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds metrics keyed by (slice, node, name). Registration is
// get-or-create and must happen from the driver or the serialized
// control phase so registration order — the snapshot order — is
// deterministic; handle reads/writes may then come from any domain.
type Registry struct {
	mu    sync.Mutex
	order []*metric
	index map[metricKey]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[metricKey]*metric)}
}

func (r *Registry) lookup(slice, node, name string, kind metricKind) *metric {
	k := metricKey{slice, node, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[k]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %v re-registered as %v (was %v)", k, kind, m.kind))
		}
		return m
	}
	m := &metric{key: k, kind: kind}
	switch kind {
	case kindCounter:
		m.c = new(Counter)
	case kindGauge:
		m.g = new(Gauge)
	case kindHistogram:
		m.h = new(Histogram)
	}
	r.index[k] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter for the key, creating it on first use.
func (r *Registry) Counter(slice, node, name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(slice, node, name, kindCounter).c
}

// Gauge returns the gauge for the key, creating it on first use.
func (r *Registry) Gauge(slice, node, name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(slice, node, name, kindGauge).g
}

// Histogram returns the histogram for the key, creating it on first use.
func (r *Registry) Histogram(slice, node, name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(slice, node, name, kindHistogram).h
}

// FindCounter returns an existing counter without registering one.
func (r *Registry) FindCounter(slice, node, name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[metricKey{slice, node, name}]; ok && m.kind == kindCounter {
		return m.c
	}
	return nil
}

// Retire removes every series whose slice label matches slice (slice
// teardown), returning the number retired. Handles already held by
// publishers stay writable — they just no longer appear in snapshots,
// digests, or exports — so a straggling in-flight event cannot crash.
// A fresh order slice is built rather than compacting in place, because
// Snapshot serves capped views of the old backing array.
func (r *Registry) Retire(slice string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := make([]*metric, 0, len(r.order))
	n := 0
	for _, m := range r.order {
		if m.key.slice == slice {
			delete(r.index, m.key)
			n++
			continue
		}
		kept = append(kept, m)
	}
	r.order = kept
	return n
}

// Series returns the number of registered series for the slice label
// (the lifecycle audit asserts zero after teardown).
func (r *Registry) Series(slice string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.order {
		if m.key.slice == slice {
			n++
		}
	}
	return n
}

// Scope binds a registry to a (slice, node) pair plus a name prefix,
// so publishers hold one handle factory instead of repeating labels.
type Scope struct {
	reg    *Registry
	slice  string
	node   string
	prefix string
}

// Scope returns a handle factory for (slice, node).
func (r *Registry) Scope(slice, node string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{reg: r, slice: slice, node: node}
}

// With returns a derived scope whose metric names gain prefix.
func (s *Scope) With(prefix string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, slice: s.slice, node: s.node, prefix: s.prefix + prefix}
}

// Counter registers/fetches a counter under the scope.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(s.slice, s.node, s.prefix+name)
}

// Gauge registers/fetches a gauge under the scope.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(s.slice, s.node, s.prefix+name)
}

// Histogram registers/fetches a histogram under the scope.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(s.slice, s.node, s.prefix+name)
}

// MetricValue is one snapshotted metric.
type MetricValue struct {
	Slice   string   `json:"slice,omitempty"`
	Node    string   `json:"node,omitempty"`
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Value   uint64   `json:"value,omitempty"`   // counter
	Gauge   int64    `json:"gauge,omitempty"`   // gauge
	Count   uint64   `json:"count,omitempty"`   // histogram samples
	Sum     uint64   `json:"sum,omitempty"`     // histogram total ns
	Buckets []uint64 `json:"buckets,omitempty"` // non-cumulative, trailing zeros trimmed
}

// Snapshot captures every metric in registration order.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	order := r.order[:len(r.order):len(r.order)]
	r.mu.Unlock()
	out := make([]MetricValue, 0, len(order))
	for _, m := range order {
		mv := MetricValue{Slice: m.key.slice, Node: m.key.node, Name: m.key.name, Kind: m.kind.String()}
		switch m.kind {
		case kindCounter:
			mv.Value = m.c.Value()
		case kindGauge:
			mv.Gauge = m.g.Value()
		case kindHistogram:
			mv.Count = m.h.Count()
			mv.Sum = m.h.Sum()
			b := m.h.Buckets()
			last := -1
			for i, v := range b {
				if v != 0 {
					last = i
				}
			}
			if last >= 0 {
				mv.Buckets = append([]uint64(nil), b[:last+1]...)
			}
		}
		out = append(out, mv)
	}
	return out
}

// Digest folds every metric (labels and values) in registration order.
// Two runs match iff they registered the same metrics in the same
// order with the same final values.
func (r *Registry) Digest() uint64 { return DigestOf(r.Snapshot()) }

// DigestOf folds a snapshot exactly as Registry.Digest does, so a
// snapshot merged from several process shards can be compared against a
// single-process registry digest byte for byte.
func DigestOf(snap []MetricValue) uint64 {
	h := uint64(fnvOffset)
	for _, mv := range snap {
		h = fnvString(h, mv.Slice)
		h = fnvString(h, mv.Node)
		h = fnvString(h, mv.Name)
		h = fnvString(h, mv.Kind)
		h = fnvFold(h, mv.Value)
		h = fnvFold(h, uint64(mv.Gauge))
		h = fnvFold(h, mv.Count)
		h = fnvFold(h, mv.Sum)
		for _, b := range mv.Buckets {
			h = fnvFold(h, b)
		}
	}
	return h
}

// WriteJSON writes the snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName maps a registry metric name to a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("vini_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promLabels(mv MetricValue) string {
	var parts []string
	if mv.Slice != "" {
		parts = append(parts, fmt.Sprintf("slice=%q", mv.Slice))
	}
	if mv.Node != "" {
		parts = append(parts, fmt.Sprintf("node=%q", mv.Node))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format. Series sharing a metric name are grouped under one # TYPE
// line, preserving first-registration order between groups.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	byName := make(map[string][]MetricValue)
	var names []string
	for _, mv := range snap {
		n := promName(mv.Name)
		if _, ok := byName[n]; !ok {
			names = append(names, n)
		}
		byName[n] = append(byName[n], mv)
	}
	for _, n := range names {
		group := byName[n]
		typ := group[0].Kind
		if typ == "histogram" {
			// Exposed as explicit-bucket histogram series.
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
				return err
			}
			for _, mv := range group {
				labels := promLabels(mv)
				sep := "{"
				if labels != "" {
					sep = labels[:len(labels)-1] + ","
				}
				cum := uint64(0)
				for i, b := range mv.Buckets {
					cum += b
					le := float64(uint64(1)<<uint(i)) * 1e-6 // seconds
					if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%g\"} %d\n", n, sep, le, cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", n, sep, mv.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", n, labels, float64(mv.Sum)*1e-9); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", n, labels, mv.Count); err != nil {
					return err
				}
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, typ); err != nil {
			return err
		}
		for _, mv := range group {
			v := mv.Value
			if mv.Kind == "gauge" {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", n, promLabels(mv), mv.Gauge); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", n, promLabels(mv), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortEvents orders a merged event slice by the executor merge key.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Dom != b.Dom {
			return a.Dom < b.Dom
		}
		return a.Seq < b.Seq
	})
}
