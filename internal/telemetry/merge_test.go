package telemetry

import "testing"

func TestMergeSnapshots(t *testing.T) {
	// Two shards build the identical registry; each owns one node's
	// counters. Shard 0 is the base.
	build := func(n0, n1 uint64) *Registry {
		r := NewRegistry()
		r.Counter("phys", "a", "pkts").Add(n0)
		r.Counter("phys", "b", "pkts").Add(n1)
		r.Gauge("phys", "b", "depth").Set(int64(n1))
		return r
	}
	want := build(10, 20) // single-process truth
	s0 := build(10, 999)  // shard 0: node b is a stale replica
	s1 := build(999, 20)  // shard 1: node a is a stale replica
	owner := func(node string) int {
		if node == "b" {
			return 1
		}
		return 0
	}
	merged, err := MergeSnapshots(s0.Snapshot(), owner, [][]MetricValue{nil, s1.Snapshot()})
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	if got, w := DigestOf(merged), want.Digest(); got != w {
		t.Fatalf("merged digest %016x != single-process %016x", got, w)
	}

	// A diverged world (missing series on the owner shard) must error,
	// not silently keep the replica value.
	short := NewRegistry()
	short.Counter("phys", "a", "pkts").Add(10)
	if _, err := MergeSnapshots(s0.Snapshot(), owner, [][]MetricValue{nil, short.Snapshot()}); err == nil {
		t.Fatal("missing owner series accepted")
	}
	// An out-of-range owner shard must error too.
	if _, err := MergeSnapshots(s0.Snapshot(), func(string) int { return 7 }, [][]MetricValue{nil, s1.Snapshot()}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
