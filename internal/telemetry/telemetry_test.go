package telemetry

import (
	"bytes"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"vini/internal/sim"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	var r *Registry
	if r.Counter("s", "n", "x") != nil || r.Scope("s", "n") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	var rec *Recorder
	rec.Record(nil, Event{}) // must not panic
}

func TestRegistrySnapshotOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("s1", "b", "z-last")
	r.Counter("s1", "a", "a-first")
	r.Gauge("", "", "global")
	r.Counter("s1", "b", "z-last").Add(5) // get-or-create: same handle
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	want := []string{"z-last", "a-first", "global"}
	for i, mv := range snap {
		if mv.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (registration order)", i, mv.Name, want[i])
		}
	}
	if snap[0].Value != 5 {
		t.Fatalf("counter value %d, want 5", snap[0].Value)
	}
}

func TestRegistryDigestTracksValues(t *testing.T) {
	mk := func(v uint64) uint64 {
		r := NewRegistry()
		r.Counter("s", "n", "c").Add(v)
		return r.Digest()
	}
	if mk(1) == mk(2) {
		t.Fatal("digest must change with counter value")
	}
	if mk(3) != mk(3) {
		t.Fatal("digest must be a pure function of contents")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := new(Histogram)
	h.Observe(500 * time.Nanosecond) // < 1us -> bucket 0
	h.Observe(3 * time.Microsecond)  // < 4us -> bucket 2
	h.Observe(-time.Second)          // clamped to 0 -> bucket 0
	b := h.Buckets()
	if b[0] != 2 || b[2] != 1 {
		t.Fatalf("buckets = %v", b[:4])
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestScopePrefix(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("iias", "denver").With("click/rt/")
	sc.Counter("noroute").Add(2)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Name != "click/rt/noroute" || snap[0].Node != "denver" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// recorderWorld builds an executor with two node domains and rings for
// all three.
func recorderWorld(t *testing.T, flightCap int) (*sim.Executor, *Recorder, *sim.Domain, *sim.Domain) {
	t.Helper()
	x := sim.NewExecutor(1, 1)
	d1 := x.NewDomain("d1")
	d2 := x.NewDomain("d2")
	rec := NewRecorder(flightCap)
	for _, d := range x.Domains() {
		rec.EnsureDomain(d.ID())
	}
	return x, rec, d1, d2
}

func TestRecorderMergesByMergeKey(t *testing.T) {
	x, rec, d1, d2 := recorderWorld(t, 0)
	// Same timestamp in two domains plus a later event in d1: the merge
	// order must be (at, dom, seq), independent of recording order.
	d2.Schedule(10*time.Millisecond, func() { rec.Record(d2, Event{Kind: EvMark, Detail: "d2@10"}) })
	d1.Schedule(10*time.Millisecond, func() {
		rec.Record(d1, Event{Kind: EvMark, Detail: "d1@10a"})
		rec.Record(d1, Event{Kind: EvMark, Detail: "d1@10b"})
	})
	d1.Schedule(20*time.Millisecond, func() { rec.Record(d1, Event{Kind: EvMark, Detail: "d1@20"}) })
	x.Run(time.Second)
	evs := rec.Events()
	var got []string
	for _, ev := range evs {
		got = append(got, ev.Detail)
	}
	want := []string{"d1@10a", "d1@10b", "d2@10", "d1@20"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
	if evs[0].At != 10*time.Millisecond || evs[3].At != 20*time.Millisecond {
		t.Fatalf("timestamps = %+v", evs)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("per-domain seq = %d,%d want 0,1", evs[0].Seq, evs[1].Seq)
	}
}

func TestRecorderBoundOverwritesOldest(t *testing.T) {
	x, rec, d1, _ := recorderWorld(t, 4)
	d1.Schedule(time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			rec.Record(d1, Event{Kind: EvMark, Value: int64(i)})
		}
	})
	x.Run(time.Second)
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Value != int64(6+i) {
			t.Fatalf("event %d value %d, want %d (newest survive)", i, ev.Value, 6+i)
		}
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
}

func TestRecorderDigestIsOrderSensitive(t *testing.T) {
	run := func(vals ...int64) uint64 {
		x, rec, d1, _ := recorderWorld(t, 0)
		d1.Schedule(time.Millisecond, func() {
			for _, v := range vals {
				rec.Record(d1, Event{Kind: EvMark, Value: v})
			}
		})
		x.Run(time.Second)
		return rec.Digest()
	}
	if run(1, 2) == run(2, 1) {
		t.Fatal("digest must be order-sensitive")
	}
	if run(1, 2) != run(1, 2) {
		t.Fatal("digest must replay")
	}
}

func TestConvergencesQuery(t *testing.T) {
	evs := []Event{
		{At: 10 * time.Second, Kind: EvLink, Elem: "a-b", Detail: "down"},
		{At: 10*time.Second + 300*time.Millisecond, Kind: EvRoute, Node: "c"},
		{At: 12 * time.Second, Kind: EvRoute, Node: "d"},
		{At: 30 * time.Second, Kind: EvLink, Elem: "a-b", Detail: "up"},
		{At: 31 * time.Second, Kind: EvRoute, Node: "c"},
	}
	cs := Convergences(evs)
	if len(cs) != 2 {
		t.Fatalf("got %d convergence windows, want 2", len(cs))
	}
	if !cs[0].Down || cs[0].Link != "a-b" || cs[0].Installs != 2 || cs[0].Duration != 2*time.Second {
		t.Fatalf("down window = %+v", cs[0])
	}
	if cs[1].Down || cs[1].Installs != 1 || cs[1].Duration != time.Second {
		t.Fatalf("up window = %+v", cs[1])
	}
}

func TestPacketPathFilter(t *testing.T) {
	evs := []Event{
		{At: 1, Kind: EvPacket, Node: "a", Elem: "rt"},
		{At: 2, Kind: EvRoute},
		{At: 3, Kind: EvPacket, Node: "b", Elem: "encap"},
	}
	path := PacketPath(evs)
	if len(path) != 2 || path[0].Node != "a" || path[1].Node != "b" {
		t.Fatalf("path = %+v", path)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("iias", "denver", "click/rt/noroute").Add(3)
	r.Gauge("", "denver", "routes").Set(12)
	r.Histogram("iias", "denver", "wake-latency").Observe(2 * time.Microsecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vini_click_rt_noroute counter",
		`vini_click_rt_noroute{slice="iias",node="denver"} 3`,
		"# TYPE vini_routes gauge",
		`vini_routes{node="denver"} 12`,
		"# TYPE vini_wake_latency histogram",
		`vini_wake_latency_count{slice="iias",node="denver"} 1`,
		`le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	build := func() *Telemetry {
		tel := New(8)
		tel.Rec.EnsureDomain(0)
		tel.Reg.Counter("s", "n", "c").Add(9)
		return tel
	}
	a, _ := build().SnapshotJSON()
	b, _ := build().SnapshotJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON not stable:\n%s\n---\n%s", a, b)
	}
}

// TestHotPathZeroAlloc proves the instrumentation primitives the
// data-plane fast path calls — counter adds, histogram observes, and
// flight-recorder appends — run at zero allocations per op.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s", "n", "pkts")
	h := r.Histogram("s", "n", "lat")
	x, rec, d1, _ := recorderWorld(t, 0)
	_ = x
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(200, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("Counter.Add: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { h.Observe(3 * time.Microsecond) }); allocs != 0 {
		t.Fatalf("Histogram.Observe: %.1f allocs/op, want 0", allocs)
	}
	ev := Event{Kind: EvPacket, Slice: "s", Node: "n", Elem: "rt", Detail: "route"}
	if allocs := testing.AllocsPerRun(200, func() { rec.Record(d1, ev) }); allocs != 0 {
		t.Fatalf("Recorder.Record: %.1f allocs/op, want 0", allocs)
	}
	var nilC *Counter
	if allocs := testing.AllocsPerRun(200, func() { nilC.Add(1) }); allocs != 0 {
		t.Fatalf("nil Counter.Add: %.1f allocs/op, want 0", allocs)
	}
}

func TestRegistryRetire(t *testing.T) {
	r := NewRegistry()
	r.Counter("s1", "n1", "pkts").Add(3)
	r.Counter("s1", "n2", "pkts").Add(4)
	r.Counter("s2", "n1", "pkts").Add(5)
	r.Gauge("s1", "n1", "depth").Set(7)
	snapBefore := r.Snapshot()
	if n := r.Retire("s1"); n != 3 {
		t.Fatalf("Retire = %d, want 3", n)
	}
	if n := r.Series("s1"); n != 0 {
		t.Fatalf("Series(s1) after Retire = %d", n)
	}
	if n := r.Series("s2"); n != 1 {
		t.Fatalf("Series(s2) = %d, want 1", n)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Slice != "s2" || snap[0].Value != 5 {
		t.Fatalf("post-retire snapshot = %+v", snap)
	}
	// The pre-retire snapshot view is unaffected (fresh order slice).
	if len(snapBefore) != 4 {
		t.Fatalf("old snapshot mutated: %d entries", len(snapBefore))
	}
	// Re-registering the key yields a fresh series at zero.
	c := r.Counter("s1", "n1", "pkts")
	if c.Value() != 0 {
		t.Fatalf("re-registered counter = %d, want 0", c.Value())
	}
	if n := r.Retire("nope"); n != 0 {
		t.Fatalf("Retire of absent slice = %d", n)
	}
	var nilReg *Registry
	if nilReg.Retire("x") != 0 || nilReg.Series("x") != 0 {
		t.Fatal("nil registry not nil-safe")
	}
}
