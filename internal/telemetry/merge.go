package telemetry

import "fmt"

// MergeSnapshots reassembles a whole-world snapshot from per-shard
// snapshots of a replicated registry. Every shard builds the identical
// world and so registers the identical series in the identical order,
// but each series' value is authoritative only on the shard that
// executes its node's domain. base (the coordinator's snapshot) provides
// the series universe and order; owner maps a series' node label to the
// shard whose snapshot holds the live value; byShard[s] is shard s's
// snapshot (byShard[0] may be nil — base already holds shard 0's
// values).
//
// The merged snapshot digests (DigestOf) byte-identically to a
// single-process run's Registry.Digest.
func MergeSnapshots(base []MetricValue, owner func(node string) int, byShard [][]MetricValue) ([]MetricValue, error) {
	type key struct{ slice, node, name, kind string }
	idx := make([]map[key]MetricValue, len(byShard))
	for s, snap := range byShard {
		if snap == nil {
			continue
		}
		idx[s] = make(map[key]MetricValue, len(snap))
		for _, mv := range snap {
			idx[s][key{mv.Slice, mv.Node, mv.Name, mv.Kind}] = mv
		}
	}
	out := make([]MetricValue, len(base))
	for i, mv := range base {
		s := owner(mv.Node)
		if s == 0 {
			out[i] = mv
			continue
		}
		if s < 0 || s >= len(byShard) || idx[s] == nil {
			return nil, fmt.Errorf("telemetry: no snapshot from shard %d (series %s/%s/%s)", s, mv.Slice, mv.Node, mv.Name)
		}
		sub, ok := idx[s][key{mv.Slice, mv.Node, mv.Name, mv.Kind}]
		if !ok {
			return nil, fmt.Errorf("telemetry: shard %d snapshot missing series %s/%s/%s (%s) — worlds diverged",
				s, mv.Slice, mv.Node, mv.Name, mv.Kind)
		}
		out[i] = sub
	}
	return out, nil
}
