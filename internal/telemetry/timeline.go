package telemetry

import (
	"encoding/json"
	"time"

	"vini/internal/sim"
)

// TracePaint is the packet.Anno.Paint sentinel that marks a packet for
// hop-by-hop path tracing. Instrumented forwarding paths compare Paint
// against this value and record an EvPacket hop on match; unmarked
// packets cost one integer comparison.
const TracePaint = 0x7e1e

// PacketPath extracts the traced-packet hops from a merged event
// stream, in travel order (the merge key is the travel order: each hop
// happens at a later sim-time, or in a later domain at the same time).
func PacketPath(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Kind == EvPacket {
			out = append(out, ev)
		}
	}
	return out
}

// Convergence describes routing convergence after one link event: the
// failure (or restore) instant, the last route install attributable to
// it, and the derived convergence time. Installs counts route installs
// inside the window.
type Convergence struct {
	Link     string        `json:"link"`
	Down     bool          `json:"down"`
	At       time.Duration `json:"at"`
	LastTime time.Duration `json:"last_install"`
	Duration time.Duration `json:"duration"`
	Installs int           `json:"installs"`
}

// Convergences derives convergence-after-link-event windows from a
// merged event stream: each EvLink event opens a window that closes at
// the next EvLink event (or end of trace); the last EvRoute install in
// the window marks convergence. Windows with no installs report zero
// duration (the event did not perturb routing, or telemetry started
// after convergence).
func Convergences(events []Event) []Convergence {
	var out []Convergence
	for i, ev := range events {
		if ev.Kind != EvLink {
			continue
		}
		c := Convergence{Link: ev.Elem, Down: ev.Detail == "down", At: ev.At, LastTime: ev.At}
		for _, e2 := range events[i+1:] {
			if e2.Kind == EvLink {
				break
			}
			if e2.Kind == EvRoute {
				c.Installs++
				c.LastTime = e2.At
			}
		}
		c.Duration = c.LastTime - c.At
		out = append(out, c)
	}
	return out
}

// DomainProfile is one time domain's executor-level profile: where its
// clock stopped, its conservative lookahead, and its scheduling
// counters (stalls are rounds where work was pending but beyond the
// safe horizon).
type DomainProfile struct {
	ID        int32         `json:"id"`
	Label     string        `json:"label"`
	Now       time.Duration `json:"now"`
	Lookahead time.Duration `json:"lookahead"`
	Fired     uint64        `json:"fired"`
	Scheduled uint64        `json:"scheduled"`
	Sent      uint64        `json:"sent"`
	Delivered uint64        `json:"delivered"`
	Stalls    uint64        `json:"stalls"`
	Trains    uint64        `json:"trains,omitempty"`
	TrainMsgs uint64        `json:"train_msgs,omitempty"`
}

// ExecutorProfile aggregates the per-domain profiles with the round
// structure of the conservative-lookahead executor.
type ExecutorProfile struct {
	Workers   int    `json:"workers"`
	Rounds    uint64 `json:"rounds"`
	Fallbacks uint64 `json:"fallbacks"`
	// Windows counts domain execution windows (a domain picked up by a
	// worker and run to its horizon); Trains/TrainMsgs the flushed
	// cross-domain message batches; Deliveries the typed messages
	// delivered. Steals, Parks, and ParkTime describe the work-stealing
	// scheduler and are wall-clock/interleaving dependent — diagnostic
	// only, never part of any parity digest.
	Windows    uint64          `json:"windows"`
	Trains     uint64          `json:"trains"`
	TrainMsgs  uint64          `json:"train_msgs"`
	Deliveries uint64          `json:"deliveries"`
	Steals     uint64          `json:"steals"`
	Parks      uint64          `json:"parks"`
	ParkTime   time.Duration   `json:"park_time"`
	Domains    []DomainProfile `json:"domains"`
}

// ProfileExecutor builds the per-domain stall/horizon profile from the
// coordinating executor. Driver-time only (reads domain clocks). Unlike
// the registry snapshot and flight digest, the profile is diagnostic:
// stall counts describe the executor's rounds, not the simulation, and
// are not part of the worker-parity contract.
func ProfileExecutor(x *sim.Executor) ExecutorProfile {
	p := ExecutorProfile{
		Workers:    x.Workers(),
		Rounds:     x.Rounds(),
		Fallbacks:  x.Fallbacks(),
		Windows:    x.Windows(),
		Deliveries: x.Deliveries(),
		Steals:     x.Steals(),
		Parks:      x.Parks(),
		ParkTime:   x.ParkTime(),
	}
	p.Trains, p.TrainMsgs = x.TrainStats()
	for _, d := range x.Domains() {
		s := d.Stats()
		p.Domains = append(p.Domains, DomainProfile{
			ID:        s.ID,
			Label:     s.Label,
			Now:       d.Now(),
			Lookahead: d.Lookahead(),
			Fired:     s.Fired,
			Scheduled: s.Scheduled,
			Sent:      s.Sent,
			Delivered: s.Delivered,
			Stalls:    s.Stalls,
			Trains:    s.Trains,
			TrainMsgs: s.TrainMsgs,
		})
	}
	return p
}

// Snapshot is the full telemetry export: metrics, flight-recorder
// events, their digests, and derived views. Marshalled by vinibench
// -exp and compared byte-for-byte by the worker-parity property.
type Snapshot struct {
	Metrics       []MetricValue `json:"metrics"`
	Events        []Event       `json:"events"`
	Dropped       uint64        `json:"dropped_events,omitempty"`
	MetricsDigest uint64        `json:"metrics_digest"`
	FlightDigest  uint64        `json:"flight_digest"`
	Convergences  []Convergence `json:"convergences,omitempty"`
}

// Telemetry bundles the registry and flight recorder one VINI instance
// publishes into.
type Telemetry struct {
	Reg *Registry
	Rec *Recorder
}

// New returns a telemetry bundle with an empty registry and a flight
// recorder of the given per-domain capacity (<= 0 for the default).
func New(flightCap int) *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Rec: NewRecorder(flightCap)}
}

// Snapshot captures the deterministic telemetry state. Call at a
// barrier (driver context).
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	evs := t.Rec.Events()
	return Snapshot{
		Metrics:       t.Reg.Snapshot(),
		Events:        evs,
		Dropped:       t.Rec.Dropped(),
		MetricsDigest: t.Reg.Digest(),
		FlightDigest:  t.Rec.Digest(),
		Convergences:  Convergences(evs),
	}
}

// SnapshotJSON marshals the snapshot with stable field order.
func (t *Telemetry) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(t.Snapshot(), "", "  ")
}
