// Package traffic implements the measurement tools the paper's
// evaluation uses: iperf 1.7.0's TCP throughput test (N parallel
// streams) and UDP constant-bit-rate test (RFC 1889 interarrival jitter
// and loss), plus ping -f's RTT statistics. The endpoints attach to
// netem nodes as kernel-resident applications and work identically over
// the native network and over an IIAS overlay (where the node's tap0
// route hands their packets to the slice's Click process).
package traffic

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sim"
)

// ICMPHost owns a node's ICMP delivery: it answers echo requests (every
// host does), dispatches echo replies to the ping clients that sent
// them, and routes ICMP errors to running traceroutes. Create at most
// one per node.
type ICMPHost struct {
	node    *netem.Node
	clients map[uint16]*Ping
	traces  []*Traceroute
	// nextID allocates ping identifiers per host (per world): a shared
	// package counter here would be cross-world mutable state.
	nextID uint16
	closed bool
}

// NewICMPHost attaches the dispatcher to the node.
func NewICMPHost(node *netem.Node) *ICMPHost {
	h := &ICMPHost{node: node, clients: make(map[uint16]*Ping), nextID: 0x1000}
	node.StackListenICMP(h.deliver)
	return h
}

// Close stops every attached client and trace and detaches the
// dispatcher from the node's stack. Idempotent.
func (h *ICMPHost) Close() {
	if h.closed {
		return
	}
	h.closed = true
	ids := make([]int, 0, len(h.clients))
	for id := range h.clients {
		ids = append(ids, int(id))
	}
	sort.Ints(ids) // deterministic teardown order
	for _, id := range ids {
		h.clients[uint16(id)].Stop()
	}
	for _, tr := range h.traces {
		tr.Stop()
	}
	h.traces = nil
	h.node.StackUnlistenICMP()
}

func (h *ICMPHost) deliver(dgram []byte) {
	var ip packet.IPv4
	payload, err := ip.Parse(dgram)
	if err != nil {
		return
	}
	var ic packet.ICMP
	body, err := ic.Parse(payload)
	if err != nil {
		return
	}
	switch ic.Type {
	case packet.ICMPEcho:
		// Respond, echoing the body, from the address that was pinged.
		reply := packet.BuildICMPEcho(ip.Dst, ip.Src, true, ic.ID, ic.Seq, 64, body)
		h.node.StackSend(reply)
	case packet.ICMPEchoReply:
		if p, ok := h.clients[ic.ID]; ok {
			p.reply(ic.Seq)
		}
	case packet.ICMPTimeExceeded, packet.ICMPUnreachable:
		for _, tr := range h.traces {
			if tr.handleError(ip.Src, ic.Type, body) {
				return
			}
		}
	}
}

// PingConfig parameterizes a ping client.
type PingConfig struct {
	Src, Dst netip.Addr
	Interval time.Duration // default 200 ms (ping -f adaptive floor here)
	Count    int           // 0 = until Stop
	Payload  int           // echo payload bytes (default 56)
	Timeout  time.Duration // per-echo loss timeout (default 2 s)
}

// PingSample is one echo's outcome, Figure 8's plotted points.
type PingSample struct {
	At   time.Duration // send time
	RTT  time.Duration
	Lost bool
}

// Ping is a running echo client.
type Ping struct {
	host   *ICMPHost
	clock  sim.Clock
	cfg    PingConfig
	id     uint16
	seq    uint16
	sent   map[uint16]time.Duration
	timers map[uint16]sim.Timer
	// tickTimer is the pending interval tick; Stop cancels it so
	// teardown leaves nothing live in the domain heap.
	tickTimer sim.Timer
	stopped   bool
	// RTTs aggregates in milliseconds (ping's min/avg/max/mdev line).
	RTTs sim.Stats
	// Timeline records every sample in order.
	Timeline []PingSample
	// Sent and Lost count totals.
	Sent, Lost int
}

// StartPing launches a ping client through the host dispatcher. Under
// parallel execution pass the host node's Clock(), so the echo tick and
// the reply path share the node's time domain; on a classic loop any
// clock handle is the same timeline.
func (h *ICMPHost) StartPing(clock sim.Clock, cfg PingConfig) *Ping {
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 56
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	h.nextID++
	p := &Ping{host: h, clock: clock, cfg: cfg, id: h.nextID,
		sent: make(map[uint16]time.Duration), timers: make(map[uint16]sim.Timer)}
	h.clients[p.id] = p
	p.tick()
	return p
}

// Start resumes a stopped client (the constructor already started it).
func (p *Ping) Start() {
	if !p.stopped {
		return
	}
	p.stopped = false
	p.host.clients[p.id] = p
	p.tick()
}

// Stop halts the client, cancelling its pending echo-loss timeouts and
// the interval tick so nothing of it stays live in the domain heap.
func (p *Ping) Stop() {
	p.stopped = true
	delete(p.host.clients, p.id)
	for _, t := range p.timers {
		t.Stop()
	}
	if !p.tickTimer.IsZero() {
		p.tickTimer.Stop()
		p.tickTimer = sim.Timer{}
	}
}

// Close halts the client; the ping's registrations live in its host
// dispatcher, which Stop already releases.
func (p *Ping) Close() { p.Stop() }

func (p *Ping) tick() {
	if p.stopped || (p.cfg.Count > 0 && p.Sent >= p.cfg.Count) {
		return
	}
	p.seq++
	seq := p.seq
	now := p.clock.Now()
	p.sent[seq] = now
	p.Sent++
	echo := packet.BuildICMPEcho(p.cfg.Src, p.cfg.Dst, false, p.id, seq, 64,
		make([]byte, p.cfg.Payload))
	p.host.node.StackSend(echo)
	p.timers[seq] = p.clock.Schedule(p.cfg.Timeout, func() {
		if at, ok := p.sent[seq]; ok {
			delete(p.sent, seq)
			delete(p.timers, seq)
			p.Lost++
			p.Timeline = append(p.Timeline, PingSample{At: at, Lost: true})
		}
	})
	p.tickTimer = p.clock.Schedule(p.cfg.Interval, p.tick)
}

func (p *Ping) reply(seq uint16) {
	at, ok := p.sent[seq]
	if !ok {
		return // late duplicate
	}
	delete(p.sent, seq)
	if t, ok := p.timers[seq]; ok {
		t.Stop()
		delete(p.timers, seq)
	}
	rtt := p.clock.Now() - at
	p.RTTs.AddDuration(rtt)
	p.Timeline = append(p.Timeline, PingSample{At: at, RTT: rtt})
}

// LossRate returns the fraction of echoes lost.
func (p *Ping) LossRate() float64 {
	if p.Sent == 0 {
		return 0
	}
	return float64(p.Lost) / float64(p.Sent)
}

// String summarises like ping's last line.
func (p *Ping) String() string {
	return fmt.Sprintf("%d sent, %.1f%% loss, rtt %s",
		p.Sent, 100*p.LossRate(), p.RTTs.String())
}
