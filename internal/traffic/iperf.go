package traffic

import (
	"net/netip"
	"time"

	"vini/internal/netem"
	"vini/internal/sim"
	"vini/internal/tcpm"
)

// IperfTCPConfig parameterizes a TCP throughput test (iperf -c ... -P n).
type IperfTCPConfig struct {
	// Streams is the number of parallel connections (the paper uses 20).
	Streams int
	// Window is the per-stream receive window (iperf default 16 KB).
	Window int
	// MSS defaults to 1448.
	MSS int
	// BasePort is the first server port; stream i uses BasePort+i.
	BasePort uint16
	// SrcAddr/DstAddr override the node primary addresses (set them to
	// the tap0 addresses to run over an IIAS overlay).
	SrcAddr, DstAddr netip.Addr
}

// IperfTCP is a running TCP test.
type IperfTCP struct {
	loop      *sim.Loop
	senders   []*tcpm.Sender
	receivers []*tcpm.Receiver
	clientEP  *Endpoint
	serverEP  *Endpoint
	running   bool
	closed    bool
	started   time.Duration
	stoppedAt time.Duration
}

// StartIperfTCP attaches stream endpoints to the client and server nodes
// and starts unbounded transfers; call Stop then Mbps after running the
// loop for the measurement duration.
func StartIperfTCP(w *netem.Network, client, server *netem.Node, cfg IperfTCPConfig) (*IperfTCP, error) {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 5001
	}
	src := client.Addr()
	if cfg.SrcAddr.IsValid() {
		src = cfg.SrcAddr
	}
	dst := server.Addr()
	if cfg.DstAddr.IsValid() {
		dst = cfg.DstAddr
	}
	loop := w.Loop()
	t := &IperfTCP{loop: loop, started: loop.Now(),
		clientEP: NewEndpoint(client), serverEP: NewEndpoint(server)}
	tcpCfg := tcpm.Config{MSS: cfg.MSS, RcvWnd: cfg.Window}
	for i := 0; i < cfg.Streams; i++ {
		sport := cfg.BasePort + uint16(i) + 1000
		dport := cfg.BasePort + uint16(i)
		// Each endpoint's protocol machine runs on its own node's
		// domain clock (identical to the loop in classic mode).
		rcv := tcpm.NewReceiver(server.Clock(), tcpCfg, dst, dport, server.StackSend)
		if err := t.serverEP.ListenTCP(dport, rcv.Deliver); err != nil {
			t.Close()
			return nil, err
		}
		snd := tcpm.NewSender(client.Clock(), tcpCfg, src, sport, dst, dport, client.StackSend)
		if err := t.clientEP.ListenTCP(sport, snd.Deliver); err != nil {
			t.Close()
			return nil, err
		}
		t.senders = append(t.senders, snd)
		t.receivers = append(t.receivers, rcv)
		snd.Start(0)
	}
	t.running = true
	return t, nil
}

// Start begins unbounded transfers on every stream (the constructor
// already did; after Stop it restarts the streams from scratch).
func (t *IperfTCP) Start() {
	if t.running || t.closed {
		return
	}
	t.running = true
	t.started = t.loop.Now()
	t.stoppedAt = 0
	for _, s := range t.senders {
		s.Start(0)
	}
}

// Stop ends the test (senders stop transmitting).
func (t *IperfTCP) Stop() {
	if !t.running {
		return
	}
	t.running = false
	t.stoppedAt = t.loop.Now()
	for _, s := range t.senders {
		s.Stop()
	}
}

// Close stops the test, cancels the receivers' pending delayed-ACK
// timers, and releases every stream's port registration.
func (t *IperfTCP) Close() {
	t.Stop()
	if t.closed {
		return
	}
	t.closed = true
	for _, r := range t.receivers {
		r.Close()
	}
	t.clientEP.Close()
	t.serverEP.Close()
}

// Mbps returns aggregate goodput over the test interval.
func (t *IperfTCP) Mbps() float64 {
	end := t.stoppedAt
	if end == 0 {
		end = t.loop.Now()
	}
	elapsed := (end - t.started).Seconds()
	if elapsed <= 0 {
		return 0
	}
	var bytes uint64
	for _, r := range t.receivers {
		bytes += r.Bytes
	}
	return float64(bytes) * 8 / elapsed / 1e6
}

// Retransmits totals sender retransmissions across streams.
func (t *IperfTCP) Retransmits() uint64 {
	var n uint64
	for _, s := range t.senders {
		n += s.Retransmits
	}
	return n
}

// Receivers exposes the stream receivers (arrival logs for Figure 9).
func (t *IperfTCP) Receivers() []*tcpm.Receiver { return t.receivers }

// Senders exposes the stream senders.
func (t *IperfTCP) Senders() []*tcpm.Sender { return t.senders }
