package traffic

// Demand-driven traffic: a REPETITA demand matrix becomes a set of UDP
// CBR flows, one per origin-destination pair, each running at the
// matrix rate (optionally scaled). The caller maps topology node names
// to concrete endpoints — for overlay experiments that is the slice's
// virtual node taps, for substrate experiments the physical nodes
// themselves — so the generator stays ignorant of slice structure.

import (
	"fmt"
	"net/netip"

	"vini/internal/netem"
	"vini/internal/topology"
)

// DemandEndpoint resolves a demand-matrix node name to the physical
// node that hosts the sender/receiver and the address traffic should
// use (a slice tap address for overlay flows). ok=false skips the
// demand, which the result counts.
type DemandEndpoint func(name string) (node *netem.Node, addr netip.Addr, ok bool)

// DemandConfig tunes the flow set.
type DemandConfig struct {
	// Scale multiplies every matrix rate (default 1.0). Scenarios with
	// hundreds of concurrent flows scale down to keep event counts
	// tractable.
	Scale float64
	// BasePort is the first receiver port; flow i listens on BasePort+i.
	// Ports must be globally unique because a physical node may host
	// many receivers. The default 20001 keeps the whole span below the
	// slice tunnel-port space. (default 20001)
	BasePort uint16
	// Payload is the UDP payload size (default 256: scale runs favor
	// many small flows over the paper's 1430-byte iperf default).
	Payload int
	// MinRateBps floors each flow's scaled rate (default 8000) so a
	// tiny demand cannot produce near-zero packet rates with
	// pathological interarrival times.
	MinRateBps float64
}

// DemandFlows is a running flow set.
type DemandFlows struct {
	Flows []*UDPCBR
	// OfferedBps is the total scaled offered load.
	OfferedBps float64
	// Skipped counts demands whose endpoints did not resolve.
	Skipped int
}

// StartDemands launches one CBR flow per demand. The flow order (and
// so port assignment) follows the matrix order, keeping runs
// deterministic.
func StartDemands(w *netem.Network, m *topology.DemandMatrix, ep DemandEndpoint, cfg DemandConfig) (*DemandFlows, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 20001
	}
	if cfg.Payload == 0 {
		cfg.Payload = 256
	}
	if cfg.MinRateBps <= 0 {
		cfg.MinRateBps = 8000
	}
	if int(cfg.BasePort)+len(m.Demands) > 32768 {
		return nil, fmt.Errorf("traffic: %d demands from port %d overrun the flow port space",
			len(m.Demands), cfg.BasePort)
	}
	out := &DemandFlows{Flows: make([]*UDPCBR, 0, len(m.Demands))}
	for i, d := range m.Demands {
		srcNode, srcAddr, ok := ep(d.Src)
		if !ok {
			out.Skipped++
			continue
		}
		dstNode, dstAddr, ok := ep(d.Dst)
		if !ok {
			out.Skipped++
			continue
		}
		rate := d.RateBps * cfg.Scale
		if rate < cfg.MinRateBps {
			rate = cfg.MinRateBps
		}
		f, err := StartUDPCBR(w, srcNode, dstNode, UDPCBRConfig{
			RateBps: rate, Payload: cfg.Payload,
			Port:    cfg.BasePort + uint16(i),
			SrcAddr: srcAddr, DstAddr: dstAddr,
		})
		if err != nil {
			return nil, fmt.Errorf("traffic: demand %d (%s->%s): %w", i, d.Src, d.Dst, err)
		}
		out.OfferedBps += rate
		out.Flows = append(out.Flows, f)
	}
	return out, nil
}

// Start resumes every sender (the constructor already started them).
func (s *DemandFlows) Start() {
	for _, f := range s.Flows {
		f.Start()
	}
}

// Stop halts every sender.
func (s *DemandFlows) Stop() {
	for _, f := range s.Flows {
		f.Stop()
	}
}

// Close halts every sender and releases every receiver registration.
func (s *DemandFlows) Close() {
	for _, f := range s.Flows {
		f.Close()
	}
}

// Sent sums datagrams emitted across the flow set.
func (s *DemandFlows) Sent() uint64 {
	var n uint64
	for _, f := range s.Flows {
		n += uint64(f.Sent())
	}
	return n
}

// Delivered sums datagrams received across the flow set.
func (s *DemandFlows) Delivered() uint64 {
	var n uint64
	for _, f := range s.Flows {
		n += uint64(f.Received())
	}
	return n
}
