package traffic

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/topology"
)

// demandWorld builds a 4-node square substrate matching a tiny
// REPETITA matrix.
func demandWorld(t *testing.T) (*netem.Network, map[string]*netem.Node) {
	t.Helper()
	loop := sim.NewLoop(3)
	w := netem.New(loop)
	prof := netem.DETERProfile()
	nodes := make(map[string]*netem.Node)
	for i, name := range []string{"a", "b", "c", "d"} {
		n, err := w.AddNode(name, netip.MustParseAddr("192.168.1."+string(rune('1'+i))), prof, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nodes[name] = n
	}
	for _, l := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}} {
		if _, err := w.AddLink(netem.LinkConfig{A: l[0], B: l[1], Bandwidth: 1e9, Delay: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	w.ComputeRoutes()
	return w, nodes
}

func TestStartDemands(t *testing.T) {
	w, nodes := demandWorld(t)
	m := &topology.DemandMatrix{Demands: []topology.Demand{
		{Src: "a", Dst: "c", RateBps: 400_000},
		{Src: "b", Dst: "d", RateBps: 200_000},
		{Src: "d", Dst: "a", RateBps: 100_000},
		{Src: "ghost", Dst: "a", RateBps: 999_999}, // unresolvable: skipped
	}}
	ep := func(name string) (*netem.Node, netip.Addr, bool) {
		n, ok := nodes[name]
		if !ok {
			return nil, netip.Addr{}, false
		}
		return n, n.Addr(), true
	}
	flows, err := StartDemands(w, m, ep, DemandConfig{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if flows.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", flows.Skipped)
	}
	if len(flows.Flows) != 3 {
		t.Fatalf("%d flows, want 3", len(flows.Flows))
	}
	if want := 0.5 * (400_000 + 200_000 + 100_000); flows.OfferedBps != want {
		t.Fatalf("OfferedBps = %v, want %v", flows.OfferedBps, want)
	}
	w.Run(2 * time.Second)
	flows.Stop()
	w.Run(3 * time.Second) // drain in-flight packets
	if flows.Sent() == 0 {
		t.Fatal("no datagrams sent")
	}
	if flows.Delivered() != flows.Sent() {
		t.Fatalf("delivered %d of %d on a clean network", flows.Delivered(), flows.Sent())
	}
	// Per-flow rates honor the matrix: the 400k flow sends ~2x the 200k
	// flow's packets.
	s0, s1 := flows.Flows[0].Sent(), flows.Flows[1].Sent()
	if s0 < s1 || float64(s0) > 2.5*float64(s1) {
		t.Fatalf("flow rates off matrix: %d vs %d", s0, s1)
	}
	for i, f := range flows.Flows {
		if f.LossRate() != 0 {
			t.Fatalf("flow %d lost packets: %v", i, f.LossRate())
		}
	}
}

func TestStartDemandsPortSpace(t *testing.T) {
	w, nodes := demandWorld(t)
	ep := func(name string) (*netem.Node, netip.Addr, bool) {
		n, ok := nodes[name]
		return n, netip.Addr{}, ok
	}
	big := &topology.DemandMatrix{Demands: make([]topology.Demand, 20000)}
	for i := range big.Demands {
		big.Demands[i] = topology.Demand{Src: "a", Dst: "c", RateBps: 1000}
	}
	_, err := StartDemands(w, big, ep, DemandConfig{BasePort: 30000})
	if err == nil || !strings.Contains(err.Error(), "port space") {
		t.Fatalf("port-space overrun not rejected: %v", err)
	}
}
