package traffic

import (
	"testing"
	"time"
)

// TestIperfPerStreamAccounting checks that the aggregate Mbps figure is
// exactly the sum of the per-stream receiver byte counts over the test
// interval, and that every parallel stream actually carried traffic.
func TestIperfPerStreamAccounting(t *testing.T) {
	w, src, dst := gigChain(t)
	test, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 4, Window: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(3 * time.Second)
	test.Stop()
	elapsed := (test.stoppedAt - test.started).Seconds()
	var sum uint64
	for i, r := range test.Receivers() {
		if r.Bytes == 0 {
			t.Fatalf("stream %d delivered no bytes", i)
		}
		sum += r.Bytes
	}
	want := float64(sum) * 8 / elapsed / 1e6
	if got := test.Mbps(); got != want {
		t.Fatalf("Mbps() = %f, but per-stream bytes sum to %f", got, want)
	}
	// Four streams sharing clean GigE: no stream may be starved below a
	// quarter of its fair share.
	for i, r := range test.Receivers() {
		if share := float64(r.Bytes) / float64(sum); share < 0.25/4 {
			t.Fatalf("stream %d carried only %.1f%% of the bytes", i, 100*share)
		}
	}
}

// TestIperfCloseReleasesPorts is the teardown regression test: Close
// must return both nodes' stacks to their pre-test registration counts,
// and the same ports must be immediately reusable.
func TestIperfCloseReleasesPorts(t *testing.T) {
	w, src, dst := gigChain(t)
	srcBase, dstBase := src.StackListeners(), dst.StackListeners()
	test, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := src.StackListeners(); got != srcBase+3 {
		t.Fatalf("client registered %d listeners, want 3", got-srcBase)
	}
	if got := dst.StackListeners(); got != dstBase+3 {
		t.Fatalf("server registered %d listeners, want 3", got-dstBase)
	}
	w.Run(time.Second)
	test.Close()
	if got := src.StackListeners(); got != srcBase {
		t.Fatalf("client still holds %d registrations after Close", got-srcBase)
	}
	if got := dst.StackListeners(); got != dstBase {
		t.Fatalf("server still holds %d registrations after Close", got-dstBase)
	}
	// The ports are free again: a fresh test on the defaults must start.
	again, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 3})
	if err != nil {
		t.Fatalf("restart on the released ports: %v", err)
	}
	again.Close()
}

// TestIperfFailedStartCleansUp: when a constructor loses the port race
// mid-registration, the streams it did register must be rolled back, so
// closing the winner frees everything.
func TestIperfFailedStartCleansUp(t *testing.T) {
	w, src, dst := gigChain(t)
	first, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := dst.StackListeners()
	if _, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 2}); err == nil {
		t.Fatal("second test reused ports without error")
	}
	if got := dst.StackListeners(); got != before {
		t.Fatalf("failed constructor leaked %d registrations", got-before)
	}
	first.Close()
	third, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 2})
	if err != nil {
		t.Fatalf("start after cleanup: %v", err)
	}
	third.Close()
}
