package traffic

import (
	"net/netip"
	"time"

	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sim"
)

// UDPCBRConfig parameterizes iperf's UDP constant-bit-rate test.
type UDPCBRConfig struct {
	// RateBps is the target bit rate.
	RateBps float64
	// Payload is the UDP payload size (the paper uses 1430 bytes).
	Payload int
	// Port is the server port.
	Port uint16
	// SrcAddr/DstAddr override node primary addresses (tap0 for overlay).
	SrcAddr, DstAddr netip.Addr
	// Controller overrides the pacing controller (default: a FixedRate
	// pinned at RateBps). It is queried from the client's domain before
	// every datagram.
	Controller RateController
}

// UDPCBR is a running CBR test: sender on the client node, receiver on
// the server node. The receiver computes iperf's jitter (the RFC 1889
// interarrival-jitter estimator) and loss from sequence gaps — the
// quantities Tables 3/5/6 and Figure 6 report.
type UDPCBR struct {
	// send is the client node's clock, recv the server's: under
	// parallel execution the tick loop runs in the client's domain and
	// the receive path in the server's, so each side reads its own
	// timeline (identical in classic mode, where both are the loop).
	send      sim.Clock
	recv      sim.Clock
	cfg       UDPCBRConfig
	client    *netem.Node
	src       netip.Addr
	dst       netip.Addr
	ctrl      RateController
	ep        *Endpoint
	seq       uint32
	tickTimer sim.Timer
	active    bool
	closed    bool
	// Receiver state.
	received  uint32
	maxSeq    uint32
	jitter    float64 // seconds, RFC 1889 smoothed
	lastTrans time.Duration
	haveTrans bool
	// JitterStats samples the smoothed jitter (ms) at each arrival.
	JitterStats sim.Stats
	// TransitStats records one-way transit times (ms).
	TransitStats sim.Stats
}

// StartUDPCBR begins the test; Stop it after the measurement interval,
// Close it to release the server-side listener.
func StartUDPCBR(w *netem.Network, client, server *netem.Node, cfg UDPCBRConfig) (*UDPCBR, error) {
	if cfg.Payload <= 0 {
		cfg.Payload = 1430
	}
	if cfg.Payload < FrameHeaderLen {
		cfg.Payload = FrameHeaderLen
	}
	if cfg.Port == 0 {
		cfg.Port = 5001
	}
	t := &UDPCBR{send: client.Clock(), recv: server.Clock(), cfg: cfg,
		client: client, src: client.Addr(), dst: server.Addr(),
		ctrl: cfg.Controller, ep: NewEndpoint(server)}
	if t.ctrl == nil {
		t.ctrl = NewFixedRate(cfg.RateBps)
	}
	if cfg.SrcAddr.IsValid() {
		t.src = cfg.SrcAddr
	}
	if cfg.DstAddr.IsValid() {
		t.dst = cfg.DstAddr
	}
	if err := t.ep.ListenUDP(cfg.Port, t.receive); err != nil {
		return nil, err
	}
	t.Start()
	return t, nil
}

// Start begins (or resumes) the paced sender.
func (t *UDPCBR) Start() {
	if t.active || t.closed {
		return
	}
	t.active = true
	t.tick()
}

// Stop halts the sender, cancelling the pending tick; the receiver keeps
// listening (and counting late arrivals) until Close.
func (t *UDPCBR) Stop() {
	t.active = false
	if !t.tickTimer.IsZero() {
		t.tickTimer.Stop()
		t.tickTimer = sim.Timer{}
	}
}

// Close stops the sender and releases the server-side UDP listener.
func (t *UDPCBR) Close() {
	t.Stop()
	if !t.closed {
		t.closed = true
		t.ep.Close()
	}
}

// Controller exposes the pacing controller (the spec's `rate` action
// retargets a FixedRate through it).
func (t *UDPCBR) Controller() RateController { return t.ctrl }

func (t *UDPCBR) tick() {
	if !t.active {
		return
	}
	payload := make([]byte, t.cfg.Payload)
	putFrame(payload, t.seq, t.send.Now())
	t.seq++
	t.client.StackSend(packet.BuildUDP(t.src, t.dst, t.cfg.Port+1000, t.cfg.Port, 64, payload))
	interval := paceInterval(t.cfg.Payload+packet.UDPHeaderLen+packet.IPv4HeaderLen,
		t.ctrl.TargetBps())
	t.tickTimer = t.send.Schedule(interval, t.tick)
}

func (t *UDPCBR) receive(dgram []byte) {
	var ip packet.IPv4
	seg, err := ip.Parse(dgram)
	if err != nil {
		return
	}
	var u packet.UDP
	payload, err := u.Parse(seg)
	if err != nil {
		return
	}
	seq, sentAt, ok := parseFrame(payload)
	if !ok {
		return
	}
	t.received++
	if seq > t.maxSeq {
		t.maxSeq = seq
	}
	transit := t.recv.Now() - sentAt
	t.TransitStats.AddDuration(transit)
	if t.haveTrans {
		d := transit - t.lastTrans
		if d < 0 {
			d = -d
		}
		// RFC 1889: J += (|D| - J) / 16.
		t.jitter += (d.Seconds() - t.jitter) / 16
		t.JitterStats.Add(t.jitter * 1000)
	}
	t.haveTrans = true
	t.lastTrans = transit
}

// LossRate returns the fraction of sent packets never received,
// counting only packets that had a chance to arrive (sequence space up
// to the highest received, as iperf does).
func (t *UDPCBR) LossRate() float64 {
	if t.maxSeq == 0 && t.received == 0 {
		return 0
	}
	expected := t.maxSeq + 1
	if t.received >= expected {
		return 0
	}
	return float64(expected-t.received) / float64(expected)
}

// Received returns the packets delivered.
func (t *UDPCBR) Received() uint32 { return t.received }

// Sent returns the datagrams emitted so far.
func (t *UDPCBR) Sent() uint32 { return t.seq }

// Jitter returns the final smoothed jitter estimate in milliseconds.
func (t *UDPCBR) Jitter() float64 { return t.jitter * 1000 }
