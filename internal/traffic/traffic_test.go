package traffic

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/sim"
)

// gigChain builds src -- fwdr -- dst over GigE with the DETER profile.
func gigChain(t *testing.T) (*netem.Network, *netem.Node, *netem.Node) {
	t.Helper()
	loop := sim.NewLoop(1)
	w := netem.New(loop)
	prof := netem.DETERProfile()
	src, err := w.AddNode("src", netip.MustParseAddr("192.168.1.1"), prof, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddNode("fwdr", netip.MustParseAddr("192.168.1.2"), prof, sched.Options{}); err != nil {
		t.Fatal(err)
	}
	dst, err := w.AddNode("dst", netip.MustParseAddr("192.168.1.3"), prof, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.AddLink(netem.LinkConfig{A: "src", B: "fwdr", Bandwidth: 1e9, Delay: 90 * time.Microsecond})
	w.AddLink(netem.LinkConfig{A: "fwdr", B: "dst", Bandwidth: 1e9, Delay: 90 * time.Microsecond})
	w.ComputeRoutes()
	return w, src, dst
}

func TestPingOverKernelPath(t *testing.T) {
	w, src, dst := gigChain(t)
	NewICMPHost(dst)
	h := NewICMPHost(src)
	p := h.StartPing(w.Loop(), PingConfig{Src: src.Addr(), Dst: dst.Addr(),
		Interval: 10 * time.Millisecond, Count: 100})
	w.Run(5 * time.Second)
	if p.Sent != 100 {
		t.Fatalf("sent = %d", p.Sent)
	}
	if p.Lost != 0 {
		t.Fatalf("lost = %d on a clean path", p.Lost)
	}
	// RTT ≈ 4×90µs propagation + kernel costs: well under 1 ms, over 0.3.
	if avg := p.RTTs.Mean(); avg < 0.3 || avg > 1.0 {
		t.Fatalf("mean RTT = %.3f ms", avg)
	}
	if len(p.Timeline) != 100 {
		t.Fatalf("timeline = %d", len(p.Timeline))
	}
}

func TestPingCountsLosses(t *testing.T) {
	w, src, dst := gigChain(t)
	NewICMPHost(dst)
	h := NewICMPHost(src)
	p := h.StartPing(w.Loop(), PingConfig{Src: src.Addr(), Dst: dst.Addr(),
		Interval: 50 * time.Millisecond, Count: 20, Timeout: 500 * time.Millisecond})
	// Fail the path mid-test.
	l, _ := w.FindLink("src", "fwdr")
	w.Loop().Schedule(500*time.Millisecond, func() { l.SetDown(true) })
	w.Run(10 * time.Second)
	if p.Lost == 0 {
		t.Fatal("no losses recorded across a dead link")
	}
	if p.Lost+p.RTTs.N() != p.Sent {
		t.Fatalf("lost %d + replied %d != sent %d", p.Lost, p.RTTs.N(), p.Sent)
	}
}

func TestIperfTCPNativeGigabit(t *testing.T) {
	w, src, dst := gigChain(t)
	test, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 20, Window: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(5 * time.Second)
	test.Stop()
	mbps := test.Mbps()
	// The paper's Table 2 native row: ≈940 Mb/s on GigE.
	if mbps < 850 || mbps > 1000 {
		t.Fatalf("native TCP = %.0f Mb/s, want ~940", mbps)
	}
}

func TestIperfTCPPortConflict(t *testing.T) {
	w, src, dst := gigChain(t)
	if _, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := StartIperfTCP(w, src, dst, IperfTCPConfig{Streams: 2}); err == nil {
		t.Fatal("second test reused ports without error")
	}
}

func TestUDPCBRCleanPath(t *testing.T) {
	w, src, dst := gigChain(t)
	test, err := StartUDPCBR(w, src, dst, UDPCBRConfig{RateBps: 10e6})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(5 * time.Second)
	test.Stop()
	w.Run(6 * time.Second)
	if test.LossRate() != 0 {
		t.Fatalf("loss = %.3f on clean GigE", test.LossRate())
	}
	if test.Received() < 4000 {
		t.Fatalf("received only %d packets", test.Received())
	}
	// Constant-rate CBR over fixed-delay links: jitter near zero.
	if test.Jitter() > 0.1 {
		t.Fatalf("jitter = %.3f ms on a constant path", test.Jitter())
	}
}

func TestUDPCBRSeesQueueLoss(t *testing.T) {
	loop := sim.NewLoop(2)
	w := netem.New(loop)
	prof := netem.DETERProfile()
	a, _ := w.AddNode("a", netip.MustParseAddr("10.0.0.1"), prof, sched.Options{})
	b, _ := w.AddNode("b", netip.MustParseAddr("10.0.0.2"), prof, sched.Options{})
	_ = a
	w.AddLink(netem.LinkConfig{A: "a", B: "b", Bandwidth: 5e6, Delay: time.Millisecond, QueueBytes: 20000})
	w.ComputeRoutes()
	// Send 10 Mb/s into a 5 Mb/s link: ~50% loss.
	test, err := StartUDPCBR(w, a, b, UDPCBRConfig{RateBps: 10e6})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(5 * time.Second)
	test.Stop()
	w.Run(6 * time.Second)
	if lr := test.LossRate(); lr < 0.3 || lr > 0.7 {
		t.Fatalf("loss = %.2f, want ~0.5 for 2x overload", lr)
	}
	_ = b
}

func TestUDPCBRJitterUnderVariableDelay(t *testing.T) {
	loop := sim.NewLoop(3)
	w := netem.New(loop)
	prof := netem.DETERProfile()
	a, _ := w.AddNode("a", netip.MustParseAddr("10.0.0.1"), prof, sched.Options{})
	w.AddNode("b", netip.MustParseAddr("10.0.0.2"), prof, sched.Options{})
	w.AddLink(netem.LinkConfig{A: "a", B: "b", Bandwidth: 1e9,
		Delay: 5 * time.Millisecond, Jitter: 4 * time.Millisecond})
	w.ComputeRoutes()
	b, _ := w.Node("b")
	test, err := StartUDPCBR(w, a, b, UDPCBRConfig{RateBps: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(5 * time.Second)
	test.Stop()
	if test.Jitter() < 0.3 {
		t.Fatalf("jitter = %.3f ms, expected >0.3 with 4ms link jitter", test.Jitter())
	}
}
