package traffic

import (
	"net/netip"
	"time"

	"vini/internal/packet"
	"vini/internal/sim"
)

// Hop is one traceroute result line.
type Hop struct {
	TTL  int
	Addr netip.Addr // responder (invalid if timed out)
	RTT  time.Duration
}

// TracerouteConfig parameterizes a trace.
type TracerouteConfig struct {
	Src, Dst netip.Addr
	// MaxTTL bounds the probe depth (default 16).
	MaxTTL int
	// Timeout per probe (default 2 s).
	Timeout time.Duration
	// Port is the probe's (unlikely-to-be-listened) UDP destination port
	// base, as classic traceroute uses (default 33434).
	Port uint16
}

// Traceroute runs UDP-probe traceroute through the node's stack: each
// virtual Click hop that expires the TTL answers with an ICMP time
// exceeded from its tap address, and the destination answers port
// unreachable — exactly the behaviour the IIAS ICMPError elements
// implement. Call Run, advance the simulation, then read Hops.
type Traceroute struct {
	host    *ICMPHost
	clock   sim.Clock
	cfg     TracerouteConfig
	Hops    []Hop
	Done    bool
	started bool
	current int
	sentAt  time.Duration
	timer   sim.Timer
	onDone  func()
}

// StartTraceroute begins a trace through the host's node.
func (h *ICMPHost) StartTraceroute(clock sim.Clock, cfg TracerouteConfig) *Traceroute {
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Port == 0 {
		cfg.Port = 33434
	}
	tr := &Traceroute{host: h, clock: clock, cfg: cfg}
	h.traces = append(h.traces, tr)
	tr.started = true
	tr.probe(1)
	return tr
}

// OnDone registers a completion callback.
func (tr *Traceroute) OnDone(fn func()) { tr.onDone = fn }

// Start launches the first probe (the constructor already did).
func (tr *Traceroute) Start() {
	if tr.started || tr.Done {
		return
	}
	tr.started = true
	tr.probe(1)
}

// Stop abandons the trace, cancelling the pending probe timeout.
func (tr *Traceroute) Stop() {
	if tr.Done {
		return
	}
	tr.Done = true
	if !tr.timer.IsZero() {
		tr.timer.Stop()
		tr.timer = sim.Timer{}
	}
}

// Close abandons the trace and detaches it from the host dispatcher.
func (tr *Traceroute) Close() {
	tr.Stop()
	for i, t := range tr.host.traces {
		if t == tr {
			tr.host.traces = append(tr.host.traces[:i], tr.host.traces[i+1:]...)
			return
		}
	}
}

func (tr *Traceroute) probe(ttl int) {
	if ttl > tr.cfg.MaxTTL {
		tr.finish()
		return
	}
	tr.current = ttl
	tr.sentAt = tr.clock.Now()
	d := packet.BuildUDP(tr.cfg.Src, tr.cfg.Dst, 44444, tr.cfg.Port+uint16(ttl), uint8(ttl), nil)
	tr.host.node.StackSend(d)
	tr.timer = tr.clock.Schedule(tr.cfg.Timeout, func() {
		tr.Hops = append(tr.Hops, Hop{TTL: ttl}) // * * *
		tr.probe(ttl + 1)
	})
}

// handleError processes an ICMP error that may answer the current probe.
// It reports whether the error was consumed.
func (tr *Traceroute) handleError(from netip.Addr, icmpType uint8, quote []byte) bool {
	if tr.Done {
		return false
	}
	// The quote is the offending datagram's header plus 8 payload bytes
	// (RFC 792). It is deliberately truncated, so extract fields by
	// offset rather than with the strict parser.
	if len(quote) < packet.IPv4HeaderLen || quote[0]>>4 != 4 {
		return false
	}
	ihl := int(quote[0]&0xf) * 4
	if len(quote) < ihl+4 {
		return false
	}
	osrc := netip.AddrFrom4([4]byte(quote[12:16]))
	odst := netip.AddrFrom4([4]byte(quote[16:20]))
	if odst != tr.cfg.Dst || osrc != tr.cfg.Src {
		return false
	}
	dport := uint16(quote[ihl+2])<<8 | uint16(quote[ihl+3])
	if dport != tr.cfg.Port+uint16(tr.current) {
		return false
	}
	if !tr.timer.IsZero() {
		tr.timer.Stop()
	}
	tr.Hops = append(tr.Hops, Hop{TTL: tr.current, Addr: from, RTT: tr.clock.Now() - tr.sentAt})
	if icmpType == packet.ICMPUnreachable || from == tr.cfg.Dst {
		tr.finish()
		return true
	}
	tr.probe(tr.current + 1)
	return true
}

func (tr *Traceroute) finish() {
	tr.Done = true
	if tr.onDone != nil {
		tr.onDone()
	}
}
