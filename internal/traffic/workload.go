package traffic

// The workload runtime: every measurement tool in this package (ping,
// UDP CBR, iperf-TCP, traceroute, the adaptive sender) is a Workload
// that borrows kernel-stack registrations from a per-node Endpoint and
// returns them on Close. Before this seam existed each tool re-derived
// clock wiring, timer chains and endpoint registration by hand — and
// two of them leaked on teardown (the CBR listener and the ping
// interval timer). The runtime makes teardown auditable: an Endpoint
// counts its live registrations, and simtest's churn-style regimes
// assert the count returns to zero and the domain heaps drain.

import (
	"encoding/binary"
	"time"

	"vini/internal/netem"
	"vini/internal/sim"
)

// Workload is the common lifecycle contract. The Start* constructors
// build a workload and call Start; Stop halts send activity (idempotent,
// and re-Startable); Close additionally releases every stack
// registration and pending timer the workload owns, leaving the node
// exactly as it was before the workload attached.
type Workload interface {
	Start()
	Stop()
	Close()
}

// Endpoint owns one node's kernel-stack registrations on behalf of
// workloads: UDP and TCP ports, plus the node's shared ICMP dispatcher.
// Every registration made through it is recorded, and Close releases
// them all (LIFO) so churn-regime ledger audits stay balanced. Create
// endpoints through a Runtime when several workloads share nodes.
type Endpoint struct {
	node    *netem.Node
	udp     []uint16
	tcp     []uint16
	host    *ICMPHost
	closers []func()
	closed  bool
}

// NewEndpoint attaches a fresh endpoint to the node. A node must have at
// most one ICMP-owning endpoint; use Runtime.At for shared access.
func NewEndpoint(node *netem.Node) *Endpoint { return &Endpoint{node: node} }

// Node returns the owning node.
func (e *Endpoint) Node() *netem.Node { return e.node }

// Clock returns the node's domain clock — the timeline every timer and
// send of a workload attached here must use.
func (e *Endpoint) Clock() sim.Clock { return e.node.Clock() }

// ListenUDP registers a kernel UDP listener and records it for Close.
func (e *Endpoint) ListenUDP(port uint16, h netem.StackHandler) error {
	if err := e.node.StackListenUDP(port, h); err != nil {
		return err
	}
	e.udp = append(e.udp, port)
	return nil
}

// UnlistenUDP releases one recorded UDP listener early.
func (e *Endpoint) UnlistenUDP(port uint16) {
	for i, p := range e.udp {
		if p == port {
			e.udp = append(e.udp[:i], e.udp[i+1:]...)
			e.node.StackUnlistenUDP(port)
			return
		}
	}
}

// ListenTCP registers a kernel TCP endpoint and records it for Close.
func (e *Endpoint) ListenTCP(port uint16, h netem.StackHandler) error {
	if err := e.node.StackListenTCP(port, h); err != nil {
		return err
	}
	e.tcp = append(e.tcp, port)
	return nil
}

// UnlistenTCP releases one recorded TCP endpoint early.
func (e *Endpoint) UnlistenTCP(port uint16) {
	for i, p := range e.tcp {
		if p == port {
			e.tcp = append(e.tcp[:i], e.tcp[i+1:]...)
			e.node.StackUnlistenTCP(port)
			return
		}
	}
}

// ICMP returns the node's ICMP dispatcher, attaching it on first use.
// The endpoint owns the attachment and releases it on Close.
func (e *Endpoint) ICMP() *ICMPHost {
	if e.host == nil {
		e.host = NewICMPHost(e.node)
	}
	return e.host
}

// OnClose registers a teardown hook; hooks run LIFO before the
// registrations are released.
func (e *Endpoint) OnClose(fn func()) { e.closers = append(e.closers, fn) }

// Open counts live registrations (the teardown ledger).
func (e *Endpoint) Open() int {
	if e.closed {
		return 0
	}
	n := len(e.udp) + len(e.tcp)
	if e.host != nil {
		n++
	}
	return n
}

// Close runs the teardown hooks and releases every registration. It is
// idempotent.
func (e *Endpoint) Close() {
	if e.closed {
		return
	}
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
	}
	e.closers = nil
	for i := len(e.udp) - 1; i >= 0; i-- {
		e.node.StackUnlistenUDP(e.udp[i])
	}
	e.udp = nil
	for i := len(e.tcp) - 1; i >= 0; i-- {
		e.node.StackUnlistenTCP(e.tcp[i])
	}
	e.tcp = nil
	if e.host != nil {
		e.host.Close()
		e.host = nil
	}
	e.closed = true
}

// Runtime hands out one Endpoint per node within a world, so workloads
// sharing a node also share its ICMP dispatcher and teardown ledger.
// It replaces the package-global state older revisions kept (the
// cross-world nextPingID counter): all sharing is scoped to the Runtime
// the caller created.
type Runtime struct {
	eps   map[*netem.Node]*Endpoint
	order []*Endpoint
}

// NewRuntime creates an empty endpoint registry.
func NewRuntime() *Runtime {
	return &Runtime{eps: make(map[*netem.Node]*Endpoint)}
}

// At returns the node's endpoint, creating it on first use.
func (r *Runtime) At(node *netem.Node) *Endpoint {
	if e, ok := r.eps[node]; ok {
		return e
	}
	e := NewEndpoint(node)
	r.eps[node] = e
	r.order = append(r.order, e)
	return e
}

// Open totals live registrations across every endpoint.
func (r *Runtime) Open() int {
	n := 0
	for _, e := range r.order {
		n += e.Open()
	}
	return n
}

// Close releases every endpoint in reverse creation order.
func (r *Runtime) Close() {
	for i := len(r.order) - 1; i >= 0; i-- {
		r.order[i].Close()
	}
}

// FrameHeaderLen is the datagram preamble shared by the CBR and
// adaptive workloads: payload[0:4] holds a big-endian sequence number
// and payload[4:12] the sender clock's nanoseconds at transmission —
// the layout the original CBR tool used, now the runtime's common
// framing.
const FrameHeaderLen = 12

// putFrame writes the seq/timestamp preamble.
func putFrame(payload []byte, seq uint32, sentAt time.Duration) {
	binary.BigEndian.PutUint32(payload[0:4], seq)
	binary.BigEndian.PutUint64(payload[4:12], uint64(sentAt))
}

// parseFrame reads the preamble back; ok is false on a short payload.
func parseFrame(payload []byte) (seq uint32, sentAt time.Duration, ok bool) {
	if len(payload) < FrameHeaderLen {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(payload[0:4]),
		time.Duration(binary.BigEndian.Uint64(payload[4:12])), true
}

// RateController is the datagram half of the runtime's rate seam (the
// window half is tcpm.Congestion): the paced sender asks it for the
// current target rate before every datagram. Implementations must be
// deterministic and must only be driven from the sender's domain.
type RateController interface {
	// TargetBps returns the current target send rate in bits/second.
	TargetBps() float64
}

// FixedRate is the constant-bit-rate controller the classic CBR tool
// runs on.
type FixedRate struct{ bps float64 }

// NewFixedRate builds a controller pinned at bps.
func NewFixedRate(bps float64) *FixedRate { return &FixedRate{bps: bps} }

// TargetBps returns the pinned rate.
func (f *FixedRate) TargetBps() float64 { return f.bps }

// Set retargets the rate (the experiment-spec `rate` action). Call it
// from the sender's domain — or, classic mode, anywhere on the loop.
func (f *FixedRate) Set(bps float64) { f.bps = bps }

// paceInterval is the CBR interarrival formula, preserved verbatim from
// the original sender so FixedRate pacing is bit-identical: wire bytes
// (payload + UDP + IP headers) times 8, over the rate, in seconds.
func paceInterval(wireBytes int, rateBps float64) time.Duration {
	return time.Duration(float64(wireBytes) * 8 / rateBps * float64(time.Second))
}

// Interface conformance for every tool in the package.
var (
	_ Workload = (*Ping)(nil)
	_ Workload = (*UDPCBR)(nil)
	_ Workload = (*IperfTCP)(nil)
	_ Workload = (*Traceroute)(nil)
	_ Workload = (*Adaptive)(nil)
	_ Workload = (*DemandFlows)(nil)
)
