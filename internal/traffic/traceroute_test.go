package traffic

import (
	"testing"
	"time"
)

func TestTracerouteDiscoversChain(t *testing.T) {
	w, src, dst := gigChain(t)
	h := NewICMPHost(src)
	done := false
	tr := h.StartTraceroute(w.Loop(), TracerouteConfig{Src: src.Addr(), Dst: dst.Addr()})
	tr.OnDone(func() { done = true })
	w.Run(5 * time.Second)
	if !tr.Done || !done {
		t.Fatalf("trace did not finish: Done=%v callback=%v", tr.Done, done)
	}
	if len(tr.Hops) != 2 {
		t.Fatalf("hops = %d, want 2 for src--fwdr--dst", len(tr.Hops))
	}
	fwdr, _ := w.Node("fwdr")
	if tr.Hops[0].TTL != 1 || tr.Hops[0].Addr != fwdr.Addr() {
		t.Fatalf("hop 1 = %+v, want TTL 1 from %s (time exceeded)", tr.Hops[0], fwdr.Addr())
	}
	if tr.Hops[1].TTL != 2 || tr.Hops[1].Addr != dst.Addr() {
		t.Fatalf("hop 2 = %+v, want TTL 2 from %s (port unreachable)", tr.Hops[1], dst.Addr())
	}
	// Each hop adds propagation; the second RTT must exceed the first.
	if tr.Hops[0].RTT <= 0 || tr.Hops[1].RTT <= tr.Hops[0].RTT {
		t.Fatalf("RTTs not increasing along the path: %v then %v",
			tr.Hops[0].RTT, tr.Hops[1].RTT)
	}
}

// TestTracerouteDemuxWithPing runs a flood ping and a traceroute through
// the same host dispatcher: echo replies must route by identifier to the
// ping client while ICMP errors route to the trace, with neither
// consuming the other's responses.
func TestTracerouteDemuxWithPing(t *testing.T) {
	w, src, dst := gigChain(t)
	NewICMPHost(dst)
	h := NewICMPHost(src)
	p := h.StartPing(w.Loop(), PingConfig{Src: src.Addr(), Dst: dst.Addr(),
		Interval: 10 * time.Millisecond, Count: 50})
	tr := h.StartTraceroute(w.Loop(), TracerouteConfig{Src: src.Addr(), Dst: dst.Addr()})
	w.Run(5 * time.Second)
	if !tr.Done || len(tr.Hops) != 2 {
		t.Fatalf("trace beside ping: Done=%v hops=%d, want 2", tr.Done, len(tr.Hops))
	}
	if p.Sent != 50 || p.Lost != 0 {
		t.Fatalf("ping beside trace: sent=%d lost=%d, want 50 sent 0 lost", p.Sent, p.Lost)
	}
}

func TestTracerouteTimeoutHops(t *testing.T) {
	w, src, dst := gigChain(t)
	l, _ := w.FindLink("src", "fwdr")
	l.SetDown(true)
	h := NewICMPHost(src)
	tr := h.StartTraceroute(w.Loop(), TracerouteConfig{Src: src.Addr(), Dst: dst.Addr(),
		MaxTTL: 3, Timeout: 200 * time.Millisecond})
	w.Run(2 * time.Second)
	if !tr.Done {
		t.Fatal("trace across a dead link never gave up")
	}
	if len(tr.Hops) != 3 {
		t.Fatalf("hops = %d, want MaxTTL=3 timeout entries", len(tr.Hops))
	}
	for i, hop := range tr.Hops {
		if hop.TTL != i+1 || hop.Addr.IsValid() || hop.RTT != 0 {
			t.Fatalf("hop %d = %+v, want a bare * * * timeout entry", i+1, hop)
		}
	}
	// Timeout probes expire their own timers; nothing may stay scheduled.
	if n := w.Loop().Pending(); n != 0 {
		t.Fatalf("%d events still pending after a timed-out trace", n)
	}
}

// TestTracerouteStopAndClose covers the teardown path: Stop cancels the
// pending probe timeout (the domain heap drains) and Close detaches the
// trace from the host dispatcher.
func TestTracerouteStopAndClose(t *testing.T) {
	w, src, dst := gigChain(t)
	l, _ := w.FindLink("src", "fwdr")
	l.SetDown(true)
	h := NewICMPHost(src)
	tr := h.StartTraceroute(w.Loop(), TracerouteConfig{Src: src.Addr(), Dst: dst.Addr(),
		Timeout: 10 * time.Second})
	w.Run(100 * time.Millisecond)
	if tr.Done {
		t.Fatal("trace finished with its probe still outstanding")
	}
	tr.Stop()
	if n := w.Loop().Pending(); n != 0 {
		t.Fatalf("%d events still pending after Stop", n)
	}
	if got := len(h.traces); got != 1 {
		t.Fatalf("stopped trace left %d dispatcher entries, want 1 until Close", got)
	}
	tr.Close()
	if got := len(h.traces); got != 0 {
		t.Fatalf("%d traces still attached after Close", got)
	}
}
