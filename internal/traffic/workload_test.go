package traffic

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/sim"
)

// TestUDPCBRCloseReleasesListener is the regression test for the CBR
// teardown leak: Close must release the server-side UDP listener so a
// fresh test can bind the same port, and the sender's pending tick must
// leave the domain heap.
func TestUDPCBRCloseReleasesListener(t *testing.T) {
	w, src, dst := gigChain(t)
	base := dst.StackListeners()
	test, err := StartUDPCBR(w, src, dst, UDPCBRConfig{RateBps: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	if got := dst.StackListeners(); got != base+1 {
		t.Fatalf("server registered %d listeners, want 1", got-base)
	}
	w.Run(time.Second)
	test.Close()
	if got := dst.StackListeners(); got != base {
		t.Fatalf("server still holds %d registrations after Close", got-base)
	}
	// Drain in-flight datagrams; nothing of the test may stay scheduled.
	w.Run(2 * time.Second)
	if n := w.Loop().Pending(); n != 0 {
		t.Fatalf("%d events still pending after Close", n)
	}
	again, err := StartUDPCBR(w, src, dst, UDPCBRConfig{RateBps: 5e6})
	if err != nil {
		t.Fatalf("restart on the released port: %v", err)
	}
	again.Close()
}

// TestPingStopCancelsIntervalTimer is the regression test for the ping
// teardown leak: Stop must cancel the interval tick (and any pending
// echo-loss timeouts) so the loop drains instead of ticking forever.
func TestPingStopCancelsIntervalTimer(t *testing.T) {
	w, src, dst := gigChain(t)
	NewICMPHost(dst)
	h := NewICMPHost(src)
	p := h.StartPing(w.Loop(), PingConfig{Src: src.Addr(), Dst: dst.Addr(),
		Interval: 50 * time.Millisecond}) // Count 0: runs until Stop
	w.Run(time.Second)
	p.Stop()
	sent := p.Sent
	w.Run(3 * time.Second)
	if p.Sent != sent {
		t.Fatalf("stopped ping kept sending: %d then %d", sent, p.Sent)
	}
	if n := w.Loop().Pending(); n != 0 {
		t.Fatalf("%d events still pending after Stop", n)
	}
	// Start resumes from the same client state.
	p.Start()
	w.Run(5 * time.Second)
	if p.Sent <= sent {
		t.Fatal("restarted ping never resumed sending")
	}
}

// TestPingIDsArePerHost: ping identifiers come from the host dispatcher,
// not package state, so two worlds allocate independently and two
// clients on one host stay distinct.
func TestPingIDsArePerHost(t *testing.T) {
	w1, src1, dst1 := gigChain(t)
	w2, src2, dst2 := gigChain(t)
	NewICMPHost(dst1)
	NewICMPHost(dst2)
	h1, h2 := NewICMPHost(src1), NewICMPHost(src2)
	p1 := h1.StartPing(w1.Loop(), PingConfig{Src: src1.Addr(), Dst: dst1.Addr(), Count: 1})
	q1 := h1.StartPing(w1.Loop(), PingConfig{Src: src1.Addr(), Dst: dst1.Addr(), Count: 1})
	p2 := h2.StartPing(w2.Loop(), PingConfig{Src: src2.Addr(), Dst: dst2.Addr(), Count: 1})
	if p1.id == q1.id {
		t.Fatalf("two clients on one host share id %#x", p1.id)
	}
	if p1.id != p2.id {
		t.Fatalf("first client ids differ across worlds (%#x vs %#x): allocation leaked cross-world state",
			p1.id, p2.id)
	}
	w1.Run(time.Second)
	w2.Run(time.Second)
	if p1.Lost != 0 || q1.Lost != 0 || p2.Lost != 0 {
		t.Fatalf("losses on clean paths: %d %d %d", p1.Lost, q1.Lost, p2.Lost)
	}
}

// TestEndpointLedger exercises the registration ledger: every Listen
// raises Open, Unlisten lowers it, hooks run LIFO before release, and
// Close is idempotent and complete.
func TestEndpointLedger(t *testing.T) {
	w, src, _ := gigChain(t)
	_ = w
	base := src.StackListeners()
	e := NewEndpoint(src)
	if e.Node() != src {
		t.Fatal("endpoint lost its node")
	}
	sink := func([]byte) {}
	if err := e.ListenUDP(7000, sink); err != nil {
		t.Fatal(err)
	}
	if err := e.ListenUDP(7001, sink); err != nil {
		t.Fatal(err)
	}
	if err := e.ListenTCP(7002, sink); err != nil {
		t.Fatal(err)
	}
	e.ICMP()
	if e.Open() != 4 || src.StackListeners() != base+4 {
		t.Fatalf("ledger %d, stack %d: want 4 each", e.Open(), src.StackListeners()-base)
	}
	// Registering a taken port fails without touching the ledger.
	if err := e.ListenUDP(7000, sink); err == nil {
		t.Fatal("duplicate UDP registration succeeded")
	}
	if e.Open() != 4 {
		t.Fatalf("failed Listen moved the ledger to %d", e.Open())
	}
	e.UnlistenUDP(7001)
	if e.Open() != 3 || src.StackListeners() != base+3 {
		t.Fatalf("after Unlisten: ledger %d, stack %d", e.Open(), src.StackListeners()-base)
	}
	var order []string
	e.OnClose(func() { order = append(order, "first") })
	e.OnClose(func() { order = append(order, "second") })
	e.Close()
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("teardown hooks ran %v, want LIFO", order)
	}
	if e.Open() != 0 || src.StackListeners() != base {
		t.Fatalf("after Close: ledger %d, stack %d", e.Open(), src.StackListeners()-base)
	}
	e.Close() // idempotent
	if len(order) != 2 {
		t.Fatal("second Close re-ran the teardown hooks")
	}
	// The ports are free for a fresh endpoint.
	f := NewEndpoint(src)
	if err := f.ListenUDP(7000, sink); err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
	f.Close()
}

// TestRuntimeSharesEndpoints: a Runtime hands each node exactly one
// endpoint (so workloads share the node's ICMP dispatcher), totals the
// ledgers, and releases everything on Close.
func TestRuntimeSharesEndpoints(t *testing.T) {
	_, src, dst := gigChain(t)
	rt := NewRuntime()
	if rt.At(src) != rt.At(src) {
		t.Fatal("Runtime.At built two endpoints for one node")
	}
	if rt.At(src) == rt.At(dst) {
		t.Fatal("Runtime.At shared an endpoint across nodes")
	}
	if rt.At(src).ICMP() != rt.At(src).ICMP() {
		t.Fatal("shared endpoint rebuilt its ICMP dispatcher")
	}
	sink := func([]byte) {}
	if err := rt.At(src).ListenUDP(7000, sink); err != nil {
		t.Fatal(err)
	}
	if err := rt.At(dst).ListenUDP(7000, sink); err != nil {
		t.Fatal(err)
	}
	if rt.Open() != 3 { // two UDP ports + src's ICMP dispatcher
		t.Fatalf("runtime ledger = %d, want 3", rt.Open())
	}
	rt.Close()
	if rt.Open() != 0 {
		t.Fatalf("runtime ledger = %d after Close", rt.Open())
	}
	if got := src.StackListeners() + dst.StackListeners(); got != 0 {
		t.Fatalf("%d registrations survived runtime Close", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	buf := make([]byte, FrameHeaderLen)
	putFrame(buf, 0xdeadbeef, 1234567891011)
	seq, at, ok := parseFrame(buf)
	if !ok || seq != 0xdeadbeef || at != 1234567891011 {
		t.Fatalf("round-trip gave seq=%#x at=%d ok=%v", seq, at, ok)
	}
	if _, _, ok := parseFrame(buf[:FrameHeaderLen-1]); ok {
		t.Fatal("parseFrame accepted a short payload")
	}
}

// TestFixedRateRetunes: the spec-level `rate` action retargets a running
// CBR flow through its FixedRate controller; pacing must follow.
func TestFixedRateRetunes(t *testing.T) {
	fr := NewFixedRate(1e6)
	if fr.TargetBps() != 1e6 {
		t.Fatalf("TargetBps = %f", fr.TargetBps())
	}
	if got, want := paceInterval(1500, 1e6), 12*time.Millisecond; got != want {
		t.Fatalf("paceInterval(1500B, 1Mb/s) = %v, want %v", got, want)
	}
	fr.Set(2e6)
	if got, want := paceInterval(1500, fr.TargetBps()), 6*time.Millisecond; got != want {
		t.Fatalf("after Set(2M): paceInterval = %v, want %v", got, want)
	}

	// End to end: doubling the controller rate mid-run must speed the
	// sender up by roughly the same factor.
	w, src, dst := gigChain(t)
	fr2 := NewFixedRate(1e6)
	test, err := StartUDPCBR(w, src, dst, UDPCBRConfig{RateBps: 1e6, Controller: fr2})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(2 * time.Second)
	atOne := test.Sent()
	fr2.Set(4e6)
	w.Run(4 * time.Second)
	burst := test.Sent() - atOne
	test.Close()
	if burst < 3*atOne {
		t.Fatalf("4x retune sent only %d packets vs %d at 1x", burst, atOne)
	}
}

// TestAdaptiveWorkloadSmoke drives the adaptive sender directly over a
// constrained link (no simtest harness): the estimate must converge near
// the bottleneck and Close must release the data and feedback listeners
// on both nodes.
func TestAdaptiveWorkloadSmoke(t *testing.T) {
	loop := sim.NewLoop(7)
	w := netem.New(loop)
	prof := netem.DETERProfile()
	src, err := w.AddNode("src", netip.MustParseAddr("10.9.0.1"), prof, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := w.AddNode("dst", netip.MustParseAddr("10.9.0.2"), prof, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.AddLink(netem.LinkConfig{A: "src", B: "dst", Bandwidth: 2e6,
		Delay: 5 * time.Millisecond, QueueBytes: 30000})
	w.ComputeRoutes()
	srcBase, dstBase := src.StackListeners(), dst.StackListeners()
	a, err := StartAdaptive(w, src, dst, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if src.StackListeners() != srcBase+1 || dst.StackListeners() != dstBase+1 {
		t.Fatal("adaptive flow did not register exactly one listener per node")
	}
	w.Run(20 * time.Second)
	if est := a.EstimateBps(); est < 0.45*2e6 || est > 1.35*2e6 {
		t.Fatalf("estimate = %.0f b/s against a 2 Mb/s bottleneck", est)
	}
	if a.Received() == 0 || a.Sent() == 0 {
		t.Fatalf("no traffic: sent=%d received=%d", a.Sent(), a.Received())
	}
	a.Close()
	if src.StackListeners() != srcBase || dst.StackListeners() != dstBase {
		t.Fatal("Close left adaptive listeners registered")
	}
	w.Run(21 * time.Second)
	if n := w.Loop().Pending(); n != 0 {
		t.Fatalf("%d events still pending after Close", n)
	}
}
