package traffic

// Adaptive is the first rate-adaptive workload on the runtime's
// RateController seam: a delay-gradient bandwidth estimator in the
// style of congestion-responsive media stacks (GCC/BWE). The receiver
// measures each datagram's one-way delay from the common frame
// timestamp, smooths the per-packet delay gradient, and aggregates the
// delays per feedback window: the window mean above a sliding base
// delay is the standing queueing delay, and the window-to-window mean
// delta is the delay gradient the detector classifies on (robust to
// the per-packet jitter competing flows cause at a shared FIFO). The
// verdict drives an AIMD update on the bandwidth estimate
// (multiplicative decrease toward the measured delivery rate on
// over-use or heavy loss, additive increase when the queue is empty
// and the gradient flat). The estimate rides back to the sender in periodic
// feedback datagrams; the sender paces at the clamped estimate and
// decays multiplicatively when feedback stops arriving (reroute,
// blackout, paused overlay).
//
// Determinism: all controller state is float64, but every update is a
// fixed sequence of IEEE-754 double ops on values derived purely from
// simulated time and packet sizes, so the same event schedule
// reproduces the same floats bit-for-bit on any worker count. The
// telemetry projections (gauges, EvRate flight events, the Trace) round
// to int64 only at publication, never feeding back into the controller.

import (
	"encoding/binary"
	"math"
	"net/netip"
	"time"

	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// AdaptiveConfig parameterizes an adaptive flow.
type AdaptiveConfig struct {
	// Port is the server data port (default 5201). Feedback returns to
	// the sender's source port, Port+1000, on the client node.
	Port uint16
	// Payload is the UDP payload size (default 1000).
	Payload int
	// InitBps is the starting rate (default 200 kb/s).
	InitBps float64
	// MinBps/MaxBps clamp the controller (defaults 64 kb/s, 100 Mb/s).
	MinBps, MaxBps float64
	// IncBps is the additive-increase step per feedback interval
	// (default 50 kb/s).
	IncBps float64
	// Beta is the multiplicative-decrease factor applied to the
	// measured delivery rate on over-use (default 0.85).
	Beta float64
	// GradientThreshold classifies the windowed one-way-delay gradient
	// (this feedback window's mean OWD minus the previous window's):
	// above it the queue is building, below its negative it is draining
	// (default 2 ms/window).
	GradientThreshold time.Duration
	// QueueLow/QueueHigh bound the standing queueing delay (window mean
	// OWD above the sliding base delay). Below QueueLow the path is
	// under-utilized and the rate may grow; above QueueHigh it is
	// over-used (defaults 15 ms / 40 ms).
	QueueLow, QueueHigh time.Duration
	// FeedbackInterval is the receiver's report cadence (default 100 ms).
	FeedbackInterval time.Duration
	// SrcAddr/DstAddr override node primary addresses (tap0 for overlay).
	SrcAddr, DstAddr netip.Addr
	// Telemetry, when set, publishes the estimate-vs-actual and gradient
	// series (registry gauges under Slice, EvRate flight events).
	Telemetry *telemetry.Telemetry
	// Slice labels the telemetry series (default "adaptive").
	Slice string
	// DisableOveruse turns the over-use detector off — a sabotage hook
	// for mutation tests, which must see the convergence invariant trip.
	DisableOveruse bool
}

func (c *AdaptiveConfig) setDefaults() {
	if c.Port == 0 {
		c.Port = 5201
	}
	if c.Payload < FrameHeaderLen {
		c.Payload = 1000
	}
	if c.InitBps <= 0 {
		c.InitBps = 200_000
	}
	if c.MinBps <= 0 {
		c.MinBps = 64_000
	}
	if c.MaxBps <= 0 {
		c.MaxBps = 100_000_000
	}
	if c.IncBps <= 0 {
		c.IncBps = 50_000
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.85
	}
	if c.GradientThreshold <= 0 {
		c.GradientThreshold = 2 * time.Millisecond
	}
	if c.QueueLow <= 0 {
		c.QueueLow = 15 * time.Millisecond
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 40 * time.Millisecond
	}
	if c.FeedbackInterval <= 0 {
		c.FeedbackInterval = 100 * time.Millisecond
	}
	if c.Slice == "" {
		c.Slice = "adaptive"
	}
}

// RatePoint is one sender-side controller sample, appended on every
// feedback application and every no-feedback decay — the
// estimate-vs-actual trace the adaptive figure plots.
type RatePoint struct {
	At time.Duration `json:"at_ns"`
	// EstimateBps is the rate the sender paces at after this update.
	EstimateBps float64 `json:"estimate_bps"`
	// ActualBps is the sender's measured send rate since the previous
	// point (0 on the first point and on decays during blackouts).
	ActualBps float64 `json:"actual_bps"`
	// DeliveredBps is the receiver-measured delivery rate carried in the
	// feedback (0 on decay points).
	DeliveredBps float64 `json:"delivered_bps"`
	// GradientNs is the receiver's windowed delay gradient (ns/window).
	GradientNs float64 `json:"gradient_ns"`
	// Decay marks a no-feedback timeout update.
	Decay bool `json:"decay,omitempty"`
}

// feedback wire format: estimate, delivered rate, windowed delay
// gradient (float64 bits each), then a state byte (0 normal /
// 1 overuse / 2 underuse).
const feedbackLen = 25

// baseWindows is how many feedback-window delay minima the sliding
// base-delay tracker keeps. The base adapts to a longer path (reroute)
// within baseWindows feedback intervals.
const baseWindows = 10

// Adaptive is a running adaptive flow.
type Adaptive struct {
	send sim.Clock // client domain
	recv sim.Clock // server domain
	cfg  AdaptiveConfig

	client   *netem.Node
	server   *netem.Node
	clientEP *Endpoint
	serverEP *Endpoint
	src, dst netip.Addr
	dataPort uint16
	fbPort   uint16

	active bool
	closed bool

	// ---- sender state (client domain only) ----
	rate       float64 // current pacing rate, bits/s
	seq        uint32
	sentBytes  uint64
	tickTimer  sim.Timer
	watchTimer sim.Timer
	lastFB     time.Duration // sim time feedback was last applied
	lastPoint  time.Duration // sim time of the previous trace point
	lastSent   uint64        // sentBytes at the previous trace point
	// Trace is the estimate-vs-actual series; read it at a barrier.
	Trace []RatePoint
	// FeedbackRx and Decays count controller updates.
	FeedbackRx, Decays uint64

	// ---- receiver state (server domain only) ----
	rxCount   uint64 // datagrams this feedback window
	rxBytes   uint64 // payload+header bits source for delivery rate
	rxMaxSeq  uint32
	rxLastMax uint32
	havePrev  bool
	prevOWD   time.Duration
	gradNs    float64 // EWMA of per-packet OWD gradient, ns
	// Windowed delay statistics: the detector classifies on the window
	// mean OWD relative to a sliding base (min of the last baseWindows
	// window-minima) and on the window-to-window mean gradient, which
	// averages out the per-packet interleaving noise competing flows
	// cause at the bottleneck FIFO.
	winOWDSum   float64
	winOWDMin   time.Duration
	prevAvg     float64
	havePrevAvg bool
	baseRing    [baseWindows]time.Duration
	baseLen     int
	baseIdx     int
	est         float64 // receiver-side bandwidth estimate, bits/s
	state       uint8   // last detector verdict
	fbTimer     sim.Timer
	// Overuses and Underuses count detector verdicts (receiver side).
	Overuses, Underuses uint64
	// RxPackets counts data arrivals.
	RxPackets uint64

	// telemetry handles (nil-safe), registered at construction.
	tel        *telemetry.Telemetry
	gEstimate  *telemetry.Gauge
	gActual    *telemetry.Gauge
	gGradient  *telemetry.Gauge
	gDelivered *telemetry.Gauge
	cOveruse   *telemetry.Counter
	cUnderuse  *telemetry.Counter
	cFeedback  *telemetry.Counter
	cDecay     *telemetry.Counter
}

// StartAdaptive launches an adaptive flow from client to server. Stop
// halts both loops; Close also releases the data and feedback
// listeners.
func StartAdaptive(w *netem.Network, client, server *netem.Node, cfg AdaptiveConfig) (*Adaptive, error) {
	cfg.setDefaults()
	a := &Adaptive{
		send: client.Clock(), recv: server.Clock(), cfg: cfg,
		client: client, server: server,
		clientEP: NewEndpoint(client), serverEP: NewEndpoint(server),
		src: client.Addr(), dst: server.Addr(),
		dataPort: cfg.Port, fbPort: cfg.Port + 1000,
		rate: cfg.InitBps, est: cfg.InitBps,
		tel: cfg.Telemetry,
	}
	if cfg.SrcAddr.IsValid() {
		a.src = cfg.SrcAddr
	}
	if cfg.DstAddr.IsValid() {
		a.dst = cfg.DstAddr
	}
	if a.tel != nil {
		cs := a.tel.Reg.Scope(cfg.Slice, client.Name()).With("adaptive/")
		ss := a.tel.Reg.Scope(cfg.Slice, server.Name()).With("adaptive/")
		a.gEstimate = cs.Gauge("estimate_bps")
		a.gActual = cs.Gauge("actual_bps")
		a.cFeedback = cs.Counter("feedback_rx")
		a.cDecay = cs.Counter("decays")
		a.gGradient = ss.Gauge("gradient_ns")
		a.gDelivered = ss.Gauge("delivered_bps")
		a.cOveruse = ss.Counter("overuse")
		a.cUnderuse = ss.Counter("underuse")
	}
	if err := a.serverEP.ListenUDP(a.dataPort, a.receiveData); err != nil {
		return nil, err
	}
	if err := a.clientEP.ListenUDP(a.fbPort, a.receiveFeedback); err != nil {
		a.serverEP.Close()
		return nil, err
	}
	a.Start()
	return a, nil
}

// Start begins (or resumes) the paced sender, the receiver's feedback
// loop, and the sender's no-feedback watchdog.
func (a *Adaptive) Start() {
	if a.active || a.closed {
		return
	}
	a.active = true
	a.lastFB = a.send.Now()
	a.lastPoint = a.send.Now()
	a.lastSent = a.sentBytes
	a.tick()
	a.fbTimer = a.recv.Schedule(a.cfg.FeedbackInterval, a.feedbackTick)
	a.watchTimer = a.send.Schedule(4*a.cfg.FeedbackInterval, a.watchdog)
}

// Stop halts both loops, cancelling every pending timer.
func (a *Adaptive) Stop() {
	a.active = false
	for _, t := range []*sim.Timer{&a.tickTimer, &a.watchTimer, &a.fbTimer} {
		if !t.IsZero() {
			t.Stop()
			*t = sim.Timer{}
		}
	}
}

// Close stops the flow and releases both nodes' listeners.
func (a *Adaptive) Close() {
	a.Stop()
	if !a.closed {
		a.closed = true
		a.clientEP.Close()
		a.serverEP.Close()
	}
}

// TargetBps returns the sender's current pacing rate — Adaptive is its
// own RateController.
func (a *Adaptive) TargetBps() float64 { return a.rate }

// EstimateBps returns the receiver's current bandwidth estimate.
func (a *Adaptive) EstimateBps() float64 { return a.est }

// GradientNs returns the receiver's smoothed delay gradient (ns/packet).
func (a *Adaptive) GradientNs() float64 { return a.gradNs }

// Sent returns the datagrams emitted.
func (a *Adaptive) Sent() uint32 { return a.seq }

// Received returns the datagrams delivered.
func (a *Adaptive) Received() uint64 { return a.RxPackets }

// ---- sender side (client domain) ----

func (a *Adaptive) tick() {
	if !a.active {
		return
	}
	payload := make([]byte, a.cfg.Payload)
	putFrame(payload, a.seq, a.send.Now())
	a.seq++
	wire := a.cfg.Payload + packet.UDPHeaderLen + packet.IPv4HeaderLen
	a.sentBytes += uint64(wire)
	a.client.StackSend(packet.BuildUDP(a.src, a.dst, a.fbPort, a.dataPort, 64, payload))
	a.tickTimer = a.send.Schedule(paceInterval(wire, a.rate), a.tick)
}

// receiveFeedback applies a receiver report (client domain).
func (a *Adaptive) receiveFeedback(dgram []byte) {
	var ip packet.IPv4
	seg, err := ip.Parse(dgram)
	if err != nil {
		return
	}
	var u packet.UDP
	body, err := u.Parse(seg)
	if err != nil || len(body) < feedbackLen {
		return
	}
	est := f64frombits(body[0:8])
	delivered := f64frombits(body[8:16])
	grad := f64frombits(body[16:24])
	now := a.send.Now()
	a.FeedbackRx++
	a.cFeedback.Inc()
	a.lastFB = now
	a.rate = clamp(est, a.cfg.MinBps, a.cfg.MaxBps)
	a.point(now, delivered, grad, false)
}

// watchdog decays the rate multiplicatively while no feedback arrives —
// the sender must never run away open-loop (reroute, blackout, paused
// overlay).
func (a *Adaptive) watchdog() {
	if !a.active {
		return
	}
	now := a.send.Now()
	if now-a.lastFB >= 4*a.cfg.FeedbackInterval {
		a.rate = clamp(a.rate*0.5, a.cfg.MinBps, a.cfg.MaxBps)
		a.Decays++
		a.cDecay.Inc()
		a.point(now, 0, 0, true)
	}
	a.watchTimer = a.send.Schedule(4*a.cfg.FeedbackInterval, a.watchdog)
}

// point appends a trace sample and publishes the sender-side series.
func (a *Adaptive) point(now time.Duration, delivered, grad float64, decay bool) {
	actual := 0.0
	if dt := (now - a.lastPoint).Seconds(); dt > 0 {
		actual = float64(a.sentBytes-a.lastSent) * 8 / dt
	}
	a.lastPoint = now
	a.lastSent = a.sentBytes
	a.Trace = append(a.Trace, RatePoint{At: now, EstimateBps: a.rate,
		ActualBps: actual, DeliveredBps: delivered, GradientNs: grad, Decay: decay})
	a.gEstimate.Set(int64(a.rate))
	a.gActual.Set(int64(actual))
	if a.tel != nil {
		detail := "estimate"
		if decay {
			detail = "decay"
		}
		a.tel.Rec.Record(a.client.Domain(), telemetry.Event{
			Kind: telemetry.EvRate, Slice: a.cfg.Slice, Node: a.client.Name(),
			Elem: "adaptive", Detail: detail, Value: int64(a.rate)})
	}
}

// ---- receiver side (server domain) ----

func (a *Adaptive) receiveData(dgram []byte) {
	var ip packet.IPv4
	seg, err := ip.Parse(dgram)
	if err != nil {
		return
	}
	var u packet.UDP
	body, err := u.Parse(seg)
	if err != nil {
		return
	}
	seq, sentAt, ok := parseFrame(body)
	if !ok {
		return
	}
	owd := a.recv.Now() - sentAt
	if a.havePrev {
		// EWMA of the per-packet one-way-delay gradient: the queueing
		// slope, positive while the bottleneck queue builds. Published
		// as telemetry; the detector itself classifies on windowed
		// statistics, which are robust to cross-traffic interleaving.
		g := float64(owd - a.prevOWD)
		a.gradNs += (g - a.gradNs) / 8
	}
	a.havePrev = true
	a.prevOWD = owd
	a.RxPackets++
	a.rxCount++
	a.winOWDSum += float64(owd)
	if a.rxCount == 1 || owd < a.winOWDMin {
		a.winOWDMin = owd
	}
	a.rxBytes += uint64(len(body) + packet.UDPHeaderLen + packet.IPv4HeaderLen)
	if seq > a.rxMaxSeq {
		a.rxMaxSeq = seq
	}
}

// feedbackTick classifies the window and reports to the sender (server
// domain). Windows with no arrivals send nothing: the sender's watchdog
// owns the blackout response.
func (a *Adaptive) feedbackTick() {
	if !a.active {
		return
	}
	defer func() {
		a.fbTimer = a.recv.Schedule(a.cfg.FeedbackInterval, a.feedbackTick)
	}()
	if a.rxCount == 0 {
		a.havePrev = false    // per-packet gradient baseline is stale
		a.havePrevAvg = false // so is the window-mean gradient
		return
	}
	delivered := float64(a.rxBytes) * 8 / a.cfg.FeedbackInterval.Seconds()
	// Loss inside the window: sequence span vs. arrivals.
	span := a.rxMaxSeq - a.rxLastMax
	loss := 0.0
	if span > 0 {
		loss = 1 - float64(a.rxCount)/float64(span)
	}
	// Windowed delay statistics: the mean OWD over this window, the
	// sliding base delay (min of the last baseWindows window-minima, so
	// the base re-learns a longer path within a second), the standing
	// queueing delay above that base, and the window-to-window mean
	// gradient.
	avg := a.winOWDSum / float64(a.rxCount)
	a.baseRing[a.baseIdx] = a.winOWDMin
	a.baseIdx = (a.baseIdx + 1) % baseWindows
	if a.baseLen < baseWindows {
		a.baseLen++
	}
	base := a.baseRing[0]
	for i := 1; i < a.baseLen; i++ {
		if a.baseRing[i] < base {
			base = a.baseRing[i]
		}
	}
	q := avg - float64(base)
	wg := 0.0
	if a.havePrevAvg {
		wg = avg - a.prevAvg
	}
	a.prevAvg = avg
	a.havePrevAvg = true
	a.rxLastMax = a.rxMaxSeq
	a.rxCount = 0
	a.rxBytes = 0
	a.winOWDSum = 0
	a.winOWDMin = 0

	thresh := float64(a.cfg.GradientThreshold)
	qlo := float64(a.cfg.QueueLow)
	qhi := float64(a.cfg.QueueHigh)
	switch {
	case a.cfg.DisableOveruse:
		// Sabotage hook: with the detector off there is no over-use
		// verdict and no delivery-rate tether, so the estimate climbs
		// open-loop — the convergence and no-runaway invariants must
		// catch this.
		a.state = 0
		a.est = clamp(a.est+a.cfg.IncBps, a.cfg.MinBps, a.cfg.MaxBps)
	case q > qhi || loss > 0.1 || (wg > thresh && q > qlo):
		// Over-use: a standing queue (or heavy loss) — multiplicative
		// decrease toward the measured delivery rate, floored at half
		// the current estimate so one noisy window cannot collapse the
		// flow to the minimum.
		a.state = 1
		a.Overuses++
		a.cOveruse.Inc()
		dec := a.cfg.Beta * delivered
		if half := 0.5 * a.est; dec < half {
			dec = half
		}
		a.est = clamp(dec, a.cfg.MinBps, a.cfg.MaxBps)
	case q > qlo || wg < -thresh:
		// Under-use: the queue is draining (or still standing above the
		// low mark); hold until it flattens.
		a.state = 2
		a.Underuses++
		a.cUnderuse.Inc()
	default:
		// Normal: additive increase, capped against the measured
		// delivery rate so the estimate cannot detach from reality.
		a.state = 0
		a.est = clamp(min2(a.est+a.cfg.IncBps, 1.25*delivered+a.cfg.IncBps),
			a.cfg.MinBps, a.cfg.MaxBps)
	}
	a.gGradient.Set(int64(wg))
	a.gDelivered.Set(int64(delivered))
	if a.tel != nil && a.state == 1 {
		a.tel.Rec.Record(a.server.Domain(), telemetry.Event{
			Kind: telemetry.EvRate, Slice: a.cfg.Slice, Node: a.server.Name(),
			Elem: "adaptive", Detail: "overuse", Value: int64(a.est)})
	}

	body := make([]byte, feedbackLen)
	putF64bits(body[0:8], a.est)
	putF64bits(body[8:16], delivered)
	putF64bits(body[16:24], wg)
	body[24] = a.state
	a.server.StackSend(packet.BuildUDP(a.dst, a.src, a.dataPort, a.fbPort, 64, body))
}

// Feedback carries float64 state as raw IEEE-754 bits: the sender
// adopts the receiver's exact doubles, keeping the whole control loop's
// float state digest-stable across worker counts.
func putF64bits(b []byte, v float64) { binary.BigEndian.PutUint64(b, math.Float64bits(v)) }
func f64frombits(b []byte) float64   { return math.Float64frombits(binary.BigEndian.Uint64(b)) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
