package packet

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzIPv4RoundTrip parses arbitrary bytes as an IPv4 datagram and, for
// every accepted input, re-serializes the parsed header with the
// zero-allocation Put and parses it again: the two parses must agree on
// every field and on the payload. This pins the in-place fast path to
// the parser the rest of the stack trusts.
func FuzzIPv4RoundTrip(f *testing.F) {
	h := IPv4{TTL: 64, Proto: ProtoUDP,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	f.Add(h.Marshal([]byte("payload")))
	f.Add(h.Marshal(nil))
	f.Add([]byte{0x45})                  // truncated header
	f.Add(make([]byte, IPv4HeaderLen))   // zero header (bad version)
	f.Fuzz(func(t *testing.T, b []byte) {
		var h1 IPv4
		payload, err := h1.Parse(b)
		if err != nil {
			return
		}
		if h1.HeaderLen != IPv4HeaderLen {
			return // Put always emits IHL=5; options don't round-trip
		}
		dgram := make([]byte, IPv4HeaderLen+len(payload))
		copy(dgram[IPv4HeaderLen:], payload)
		h1.Put(dgram)
		var h2 IPv4
		payload2, err := h2.Parse(dgram)
		if err != nil {
			t.Fatalf("re-parse of Put output failed: %v (input %x)", err, b)
		}
		if h2.TOS != h1.TOS || h2.ID != h1.ID || h2.Flags != h1.Flags ||
			h2.FragOff != h1.FragOff || h2.TTL != h1.TTL || h2.Proto != h1.Proto ||
			h2.Src != h1.Src || h2.Dst != h1.Dst {
			t.Fatalf("header did not round-trip:\nfirst  %+v\nsecond %+v", h1, h2)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatalf("payload did not round-trip: %x vs %x", payload, payload2)
		}
	})
}

// FuzzUDPRoundTrip does the same for UDP segments, additionally
// demanding that Put's pseudo-header checksum verifies.
func FuzzUDPRoundTrip(f *testing.F) {
	u := UDP{SrcPort: 1234, DstPort: 80}
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	f.Add([]byte{10, 0, 0, 1}, []byte{10, 0, 0, 2}, u.Marshal(src, dst, []byte("hi")))
	f.Add([]byte{0, 0, 0, 0}, []byte{255, 255, 255, 255}, make([]byte, UDPHeaderLen))
	f.Add([]byte{1, 2, 3, 4}, []byte{5, 6, 7, 8}, []byte{0, 1})
	f.Fuzz(func(t *testing.T, srcB, dstB, seg []byte) {
		if len(srcB) != 4 || len(dstB) != 4 {
			return
		}
		sa := netip.AddrFrom4([4]byte(srcB))
		da := netip.AddrFrom4([4]byte(dstB))
		var h1 UDP
		payload, err := h1.Parse(seg)
		if err != nil {
			return
		}
		out := make([]byte, UDPHeaderLen+len(payload))
		copy(out[UDPHeaderLen:], payload)
		h2 := UDP{SrcPort: h1.SrcPort, DstPort: h1.DstPort}
		h2.Put(sa, da, out)
		var h3 UDP
		payload2, err := h3.Parse(out)
		if err != nil {
			t.Fatalf("re-parse of Put output failed: %v", err)
		}
		if h3.SrcPort != h1.SrcPort || h3.DstPort != h1.DstPort || int(h3.Length) != len(out) {
			t.Fatalf("header did not round-trip: %+v vs %+v", h1, h3)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatalf("payload did not round-trip")
		}
		if !h3.VerifyChecksum(sa, da, out) {
			t.Fatalf("Put emitted a segment whose checksum does not verify: %x", out)
		}
	})
}

// FuzzBuildUDP drives the composed allocating builder and demands the
// result parses back into exactly what was requested — the oracle the
// in-place Encap path is differential-tested against elsewhere.
func FuzzBuildUDP(f *testing.F) {
	f.Add([]byte{10, 0, 0, 1}, []byte{10, 0, 0, 2}, uint16(1), uint16(2), uint8(64), []byte("data"))
	f.Add([]byte{0, 0, 0, 0}, []byte{255, 255, 255, 255}, uint16(0), uint16(65535), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, srcB, dstB []byte, sport, dport uint16, ttl uint8, payload []byte) {
		if len(srcB) != 4 || len(dstB) != 4 || len(payload) > 20000 {
			return
		}
		sa := netip.AddrFrom4([4]byte(srcB))
		da := netip.AddrFrom4([4]byte(dstB))
		d := BuildUDP(sa, da, sport, dport, ttl, payload)
		var ip IPv4
		seg, err := ip.Parse(d)
		if err != nil {
			t.Fatalf("BuildUDP output does not parse as IPv4: %v", err)
		}
		if ip.Src != sa || ip.Dst != da || ip.TTL != ttl || ip.Proto != ProtoUDP {
			t.Fatalf("IP header mismatch: %+v", ip)
		}
		var u UDP
		got, err := u.Parse(seg)
		if err != nil {
			t.Fatalf("BuildUDP output does not parse as UDP: %v", err)
		}
		if u.SrcPort != sport || u.DstPort != dport || !bytes.Equal(got, payload) {
			t.Fatalf("UDP round-trip mismatch: %+v payload %x", u, got)
		}
		if !u.VerifyChecksum(sa, da, seg) {
			t.Fatalf("BuildUDP checksum does not verify")
		}
	})
}
