package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

func TestPacketWireRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		make func() *Packet
	}{
		{"empty", func() *Packet { return Get() }},
		{"payload-no-addr", func() *Packet {
			p := Get()
			copy(p.Extend(5), "hello")
			p.Anno.Timestamp = 3 * time.Millisecond
			p.Anno.InPort = 2
			p.Anno.SliceID = 7
			p.Anno.Paint = -1
			p.Anno.Hops = 4
			return p
		}},
		{"ipv4-nexthop", func() *Packet {
			p := Get()
			copy(p.Extend(3), "abc")
			p.Anno.NextHop = netip.MustParseAddr("10.0.3.1")
			return p
		}},
		{"ipv6-nexthop", func() *Packet {
			p := Get()
			p.Anno.NextHop = netip.MustParseAddr("fd00::42")
			p.Anno.Hops = 255
			return p
		}},
		{"migration-clone", func() *Packet {
			p := Get()
			copy(p.Extend(4), "dup!")
			p.Anno.MigClone = true
			p.Anno.SliceID = 2
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.make()
			defer p.Release()
			enc := AppendWire(nil, p)
			q, err := DecodeWire(enc)
			if err != nil {
				t.Fatalf("DecodeWire: %v", err)
			}
			defer q.Release()
			if !bytes.Equal(q.Data, p.Data) {
				t.Fatalf("data mismatch: %q vs %q", q.Data, p.Data)
			}
			if q.Anno != p.Anno {
				t.Fatalf("annotations mismatch: %+v vs %+v", q.Anno, p.Anno)
			}
			// Canonical: re-encoding the decode is byte-identical.
			if enc2 := AppendWire(nil, q); !bytes.Equal(enc, enc2) {
				t.Fatal("re-encode not byte-identical")
			}
			// The decoded packet owns headroom for later encapsulation.
			if q.Headroom() != DefaultHeadroom {
				t.Fatalf("decoded headroom %d, want %d", q.Headroom(), DefaultHeadroom)
			}
		})
	}
}

func TestPacketWireRejectsMalformed(t *testing.T) {
	p := Get()
	copy(p.Extend(4), "data")
	p.Anno.NextHop = netip.MustParseAddr("10.0.0.1")
	enc := AppendWire(nil, p)
	p.Release()

	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short-prefix", enc[:3]},
		{"truncated-body", enc[:len(enc)-10]},
		{"trailing", append(append([]byte{}, enc...), 0)},
		{"huge-length", []byte{0xff, 0xff, 0xff, 0xff}},
		{"bad-addr-kind", func() []byte {
			b := append([]byte{}, enc...)
			b[len(b)-5] = 9 // addrKind byte for the IPv4 encoding
			return b
		}()},
		{"bad-flag-bits", func() []byte {
			b := append([]byte{}, enc...)
			b[len(b)-6] = 0x80 // flags byte for the IPv4 encoding
			return b
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if q, err := DecodeWire(tc.b); err == nil {
				q.Release()
				t.Fatal("malformed encoding accepted")
			}
		})
	}
	// A failed decode must not leak pool packets.
	before := Stats()
	if q, err := DecodeWire(enc[:len(enc)-2]); err == nil {
		q.Release()
		t.Fatal("truncated addr accepted")
	}
	after := Stats()
	if after.Gets-before.Gets != after.Releases-before.Releases {
		t.Fatalf("failed decode leaked packets: %+v -> %+v", before, after)
	}
}

// FuzzPacketWire feeds arbitrary bytes to DecodeWire: it must never
// panic or leak pool packets, and anything it does accept must
// re-encode byte-identically (the canonical-form property the
// cross-process digest parity rests on).
func FuzzPacketWire(f *testing.F) {
	p := Get()
	copy(p.Extend(6), "seeded")
	p.Anno.NextHop = netip.MustParseAddr("10.0.0.1")
	p.Anno.SliceID = 3
	f.Add(AppendWire(nil, p))
	p.Release()
	p = Get()
	p.Anno.NextHop = netip.MustParseAddr("fd00::1")
	f.Add(AppendWire(nil, p))
	p.Release()
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		before := Stats()
		q, err := DecodeWire(b)
		if err == nil {
			enc := AppendWire(nil, q)
			if !bytes.Equal(enc, b) {
				q.Release()
				t.Fatalf("accepted non-canonical encoding: %x re-encodes as %x", b, enc)
			}
			q.Release()
		}
		after := Stats()
		if after.Gets-before.Gets != after.Releases-before.Releases {
			t.Fatalf("decode leaked pool packets: %+v -> %+v", before, after)
		}
	})
}
