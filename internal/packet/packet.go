// Package packet implements the wire formats VINI forwards: Ethernet,
// IPv4, UDP, TCP, ICMP, plus the IIAS UDP-tunnel encapsulation. Headers
// decode from and serialize to byte slices in the gopacket style — decode
// into caller-owned structs, no hidden allocation — because the data plane
// (internal/click) handles every packet as raw bytes exactly as the Click
// software router does.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

// IP protocol numbers used by IIAS.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoOSPF = 89
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options; IIAS never emits options
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options
	ICMPHeaderLen     = 8
)

// MTU is the Ethernet payload limit the substrate enforces.
const MTU = 1500

// Packet is the unit every data-plane component exchanges: a byte buffer
// plus out-of-band annotations, mirroring Click's packet annotations.
// Data begins at the outermost header currently meaningful to the holder
// (an Ethernet frame at a tap device, an IPv4 datagram inside the
// forwarder, a UDP-encapsulated datagram on a tunnel).
type Packet struct {
	Data []byte
	Anno Annotations
}

// Annotations carries per-packet metadata that never appears on the wire.
type Annotations struct {
	// Timestamp is when the packet entered the system (virtual time in
	// simulation, wall-clock offset in live mode).
	Timestamp time.Duration
	// InPort is the element-local input identifier (e.g. tunnel index).
	InPort int
	// SliceID identifies the experiment slice owning the packet, used by
	// the VNET-style demultiplexer to isolate simultaneous experiments.
	SliceID int
	// Paint is a free-form mark used by Paint/CheckPaint elements.
	Paint int
	// NextHop is the virtual next-hop address selected by the FIB lookup,
	// consumed by the encapsulation-table lookup (Click's dst_ip
	// annotation).
	NextHop netip.Addr
	// Hops counts virtual-node traversals, for life-of-a-packet traces.
	Hops int
}

// New returns a packet wrapping data (not copied).
func New(data []byte) *Packet { return &Packet{Data: data} }

// Clone deep-copies the packet, as Tee does in Click.
func (p *Packet) Clone() *Packet {
	q := &Packet{Data: append([]byte(nil), p.Data...), Anno: p.Anno}
	return q
}

// Len returns the current buffer length.
func (p *Packet) Len() int { return len(p.Data) }

// Pull removes n bytes from the front (decapsulation). It panics if the
// buffer is shorter than n; callers validate with header parsing first.
func (p *Packet) Pull(n int) { p.Data = p.Data[n:] }

// Push prepends hdr to the buffer (encapsulation).
func (p *Packet) Push(hdr []byte) {
	buf := make([]byte, len(hdr)+len(p.Data))
	copy(buf, hdr)
	copy(buf[len(hdr):], p.Data)
	p.Data = buf
}

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the IPv4 pseudo-header partial sum used by UDP
// and TCP checksums.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	s, d := src.As4(), dst.As4()
	sum += uint32(binary.BigEndian.Uint16(s[0:2]))
	sum += uint32(binary.BigEndian.Uint16(s[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d[0:2]))
	sum += uint32(binary.BigEndian.Uint16(d[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes a UDP/TCP checksum including pseudo-header.
func transportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	b := segment
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ParseError describes a malformed header.
type ParseError struct {
	Layer string
	Msg   string
}

func (e *ParseError) Error() string { return fmt.Sprintf("packet: bad %s: %s", e.Layer, e.Msg) }

func parseErr(layer, format string, args ...any) error {
	return &ParseError{Layer: layer, Msg: fmt.Sprintf(format, args...)}
}
