// Package packet implements the wire formats VINI forwards: Ethernet,
// IPv4, UDP, TCP, ICMP, plus the IIAS UDP-tunnel encapsulation. Headers
// decode from and serialize to byte slices in the gopacket style — decode
// into caller-owned structs, no hidden allocation — because the data plane
// (internal/click) handles every packet as raw bytes exactly as the Click
// software router does.
//
// Packets use a Click-style headroom layout: Data is a window into a
// larger backing buffer, so encapsulation (Push) and decapsulation (Pull)
// on the forwarding fast path are pointer arithmetic, not copy-allocate.
// A sync.Pool (Get/Release) recycles packet buffers so the steady-state
// IIAS forwarding path runs at zero allocations per packet.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// IP protocol numbers used by IIAS.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoOSPF = 89
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options; IIAS never emits options
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options
	ICMPHeaderLen     = 8
)

// MTU is the Ethernet payload limit the substrate enforces.
const MTU = 1500

// DefaultHeadroom is the front reserve on owned buffers: two rounds of
// IPv4+UDP tunnel encapsulation (2×28) plus an Ethernet header fit
// without sliding the payload.
const DefaultHeadroom = 64

// poolBufSize is the backing-array size for pooled packets: headroom plus
// an encapsulated MTU-sized datagram with slack.
const poolBufSize = DefaultHeadroom + 2048

// Packet is the unit every data-plane component exchanges: a byte buffer
// plus out-of-band annotations, mirroring Click's packet annotations.
// Data begins at the outermost header currently meaningful to the holder
// (an Ethernet frame at a tap device, an IPv4 datagram inside the
// forwarder, a UDP-encapsulated datagram on a tunnel).
//
// Ownership: a packet has exactly one owner at a time. Pushing a packet
// into an element or transport transfers ownership; an owner that drops a
// packet instead of handing it on calls Release. See DESIGN.md "Packet
// lifecycle & ownership".
type Packet struct {
	Data []byte
	Anno Annotations

	// buf is the backing storage Data points into when own is set.
	// Pooled packets keep buf across Release/Get cycles.
	buf []byte
	// off is the index of Data[0] within buf (valid only when own).
	off int
	// own records that Data == buf[off:off+len(Data)], enabling the
	// headroom fast path in Push/Extend/Pull.
	own bool
	// pooled marks packets obtained from Get; only these return to the
	// pool on Release.
	pooled bool
	// released guards against double Release and use-after-release.
	released bool
}

// Annotations carries per-packet metadata that never appears on the wire.
type Annotations struct {
	// Timestamp is when the packet entered the system (virtual time in
	// simulation, wall-clock offset in live mode).
	Timestamp time.Duration
	// InPort is the element-local input identifier (e.g. tunnel index).
	InPort int
	// SliceID identifies the experiment slice owning the packet, used by
	// the VNET-style demultiplexer to isolate simultaneous experiments.
	SliceID int
	// Paint is a free-form mark used by Paint/CheckPaint elements.
	Paint int
	// NextHop is the virtual next-hop address selected by the FIB lookup,
	// consumed by the encapsulation-table lookup (Click's dst_ip
	// annotation).
	NextHop netip.Addr
	// Hops counts virtual-node traversals, for life-of-a-packet traces.
	Hops int
	// MigClone marks a duplicate sent to a migration shadow during the
	// make-before-break cutover window. Receivers always suppress marked
	// clones on the data path (the original, unmarked copy is the one
	// that counts), so double-delivery can never turn into duplicate
	// delivery. See core.Migrate and the click DupSuppress element.
	MigClone bool
}

// New returns a packet wrapping data (not copied). The packet does not
// own headroom; the first Push migrates it onto an owned buffer.
func New(data []byte) *Packet { return &Packet{Data: data} }

var pktPool = sync.Pool{
	New: func() any { return &Packet{buf: make([]byte, poolBufSize)} },
}

// Pool accounting: every pooled packet leaves the pool through Get and
// comes back through Release, or is handed off for keeps through Escape.
// The deterministic simulation tests assert Gets == Releases + Escapes at
// every quiescent point (packet conservation); see internal/simtest.
var poolGets, poolReleases, poolEscapes atomic.Uint64

// PoolStats is a snapshot of the pooled-packet ledger.
type PoolStats struct {
	// Gets counts packets obtained from Get (including Clone).
	Gets uint64
	// Releases counts packets returned to the pool with Release.
	Releases uint64
	// Escapes counts packets whose ownership left the pool for good:
	// delivered to a stack handler that may retain the buffer.
	Escapes uint64
}

// InFlight is the number of pooled packets currently owned by someone:
// taken from the pool and neither released nor escaped.
func (s PoolStats) InFlight() int64 {
	return int64(s.Gets) - int64(s.Releases) - int64(s.Escapes)
}

// Sub returns the per-counter difference s - t, for delta accounting
// across a test region.
func (s PoolStats) Sub(t PoolStats) PoolStats {
	return PoolStats{Gets: s.Gets - t.Gets, Releases: s.Releases - t.Releases,
		Escapes: s.Escapes - t.Escapes}
}

// Stats snapshots the pool ledger.
func Stats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Releases: poolReleases.Load(),
		Escapes: poolEscapes.Load()}
}

// Get returns an empty pooled packet with DefaultHeadroom reserved.
// The caller owns it until it is handed off or Released.
func Get() *Packet {
	p := pktPool.Get().(*Packet)
	p.off = DefaultHeadroom
	p.Data = p.buf[p.off:p.off]
	p.own = true
	p.pooled = true
	p.released = false
	p.Anno = Annotations{}
	poolGets.Add(1)
	return p
}

// Release returns a pooled packet to the pool. Releasing a wrapped
// (non-pooled) packet is a no-op — the garbage collector reclaims it —
// so drop paths may call Release unconditionally. Releasing the same
// pooled packet twice panics: it means two owners believed they held it.
func (p *Packet) Release() {
	if !p.pooled {
		return
	}
	if p.released {
		panic("packet: double release (two owners dropped the same packet)")
	}
	p.released = true
	p.Data = nil
	poolReleases.Add(1)
	pktPool.Put(p)
}

// Escape removes a pooled packet from the pool's ledger without
// returning its buffer: the receiver (a simulated kernel stack handler,
// a tap consumer) may retain p.Data indefinitely, so the buffer must
// never be recycled. After Escape the packet behaves as a wrapped
// packet — Release becomes a no-op. Calling Escape on a wrapped packet
// is a no-op; calling it after Release panics (the owner already gave
// the buffer away).
func (p *Packet) Escape() {
	if !p.pooled {
		return
	}
	if p.released {
		panic("packet: escape after release")
	}
	p.pooled = false
	poolEscapes.Add(1)
}

// Released reports whether a pooled packet has been returned to the pool.
// The data plane uses it as a cheap use-after-release guard.
func (p *Packet) Released() bool { return p.released }

// Clone deep-copies the packet, as Tee does in Click. The clone is a
// pooled packet with fresh headroom; the caller owns it.
func (p *Packet) Clone() *Packet {
	q := Get()
	n := len(p.Data)
	if cap(q.buf) < DefaultHeadroom+n {
		q.buf = make([]byte, DefaultHeadroom+n)
	}
	q.off = DefaultHeadroom
	q.Data = q.buf[q.off : q.off+n]
	copy(q.Data, p.Data)
	q.Anno = p.Anno
	return q
}

// Len returns the current buffer length.
func (p *Packet) Len() int { return len(p.Data) }

// Headroom reports the bytes available for Push without copying.
func (p *Packet) Headroom() int {
	if !p.own {
		return 0
	}
	return p.off
}

// Pull removes n bytes from the front (decapsulation). On owned buffers
// the removed region becomes headroom for a later Push. It panics if the
// buffer is shorter than n; callers validate with header parsing first.
func (p *Packet) Pull(n int) {
	p.Data = p.Data[n:]
	if p.own {
		p.off += n
	}
}

// Trim shortens the packet to its first n bytes (e.g. dropping padding
// beyond an inner datagram after decapsulation).
func (p *Packet) Trim(n int) { p.Data = p.Data[:n] }

// Extend prepends n uninitialized bytes and returns the new data slice,
// whose first n bytes are the caller's to fill (in-place header
// serialization). When headroom is available this is pointer arithmetic.
func (p *Packet) Extend(n int) []byte {
	if p.own && p.off >= n {
		p.off -= n
		p.Data = p.buf[p.off : p.off+n+len(p.Data)]
		return p.Data
	}
	p.grow(n)
	return p.Data
}

// Push prepends hdr to the buffer (encapsulation).
func (p *Packet) Push(hdr []byte) {
	p.Extend(len(hdr))
	copy(p.Data, hdr)
}

// SetData replaces the packet's contents with b (not copied). Ownership
// of the backing buffer's layout is dropped; a later Push re-establishes
// it by migrating the data into the owned buffer with fresh headroom.
func (p *Packet) SetData(b []byte) {
	p.Data = b
	p.own = false
}

// grow re-homes the data into the owned buffer (reused when large
// enough, reallocated otherwise) leaving DefaultHeadroom plus n bytes of
// front space, with the first n exposed in Data.
func (p *Packet) grow(n int) {
	old := len(p.Data)
	need := DefaultHeadroom + n + old
	buf := p.buf
	if cap(buf) < need {
		c := 2 * cap(buf)
		if c < need {
			c = need
		}
		buf = make([]byte, c)
	}
	buf = buf[:cap(buf)]
	copy(buf[DefaultHeadroom+n:], p.Data) // memmove: may overlap p.buf
	p.buf = buf
	p.off = DefaultHeadroom
	p.Data = buf[DefaultHeadroom : DefaultHeadroom+n+old]
	p.own = true
}

// csumAdd folds v into a running 64-bit ones-complement sum with
// end-around carry.
func csumAdd(sum, v uint64) uint64 {
	sum += v
	if sum < v {
		sum++
	}
	return sum
}

// csumWords adds b to sum as a sequence of big-endian 16-bit words,
// folding 8 bytes per iteration (RFC 1071 permits any accumulator width;
// the end-around carry keeps ones-complement semantics). An odd trailing
// byte is padded with zero.
func csumWords(sum uint64, b []byte) uint64 {
	for len(b) >= 8 {
		sum = csumAdd(sum, binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) >= 4 {
		sum = csumAdd(sum, uint64(binary.BigEndian.Uint32(b))<<32)
		b = b[4:]
	}
	if len(b) >= 2 {
		sum = csumAdd(sum, uint64(binary.BigEndian.Uint16(b))<<48)
		b = b[2:]
	}
	if len(b) == 1 {
		sum = csumAdd(sum, uint64(b[0])<<56)
	}
	return sum
}

// csumFold reduces a 64-bit ones-complement sum to 16 bits.
func csumFold(sum uint64) uint16 {
	sum = (sum >> 32) + (sum & 0xffffffff)
	sum = (sum >> 32) + (sum & 0xffffffff)
	sum = (sum >> 16) + (sum & 0xffff)
	sum = (sum >> 16) + (sum & 0xffff)
	return uint16(sum)
}

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	return ^csumFold(csumWords(0, b))
}

// pseudoHeaderSum computes the IPv4 pseudo-header partial sum used by UDP
// and TCP checksums.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint64 {
	var sum uint64
	s, d := src.As4(), dst.As4()
	sum = csumAdd(sum, uint64(binary.BigEndian.Uint32(s[:])))
	sum = csumAdd(sum, uint64(binary.BigEndian.Uint32(d[:])))
	sum = csumAdd(sum, uint64(proto))
	sum = csumAdd(sum, uint64(uint16(length)))
	return sum
}

// transportChecksum computes a UDP/TCP checksum including pseudo-header.
func transportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	return ^csumFold(csumWords(sum, segment))
}

// ParseError describes a malformed header.
type ParseError struct {
	Layer string
	Msg   string
}

func (e *ParseError) Error() string { return fmt.Sprintf("packet: bad %s: %s", e.Layer, e.Msg) }

func parseErr(layer, format string, args ...any) error {
	return &ParseError{Layer: layer, Msg: fmt.Sprintf(format, args...)}
}
