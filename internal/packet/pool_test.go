package packet

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

// refChecksum is the textbook two-bytes-at-a-time RFC 1071 implementation,
// kept as the oracle for the 8-byte-folding production Checksum.
func refChecksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func TestChecksumMatchesTwoByteReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Every length through several folding boundaries, random and
	// all-ones contents (all-ones maximizes end-around carries).
	for n := 0; n <= 96; n++ {
		b := make([]byte, n)
		for trial := 0; trial < 20; trial++ {
			rng.Read(b)
			if got, want := Checksum(b), refChecksum(b); got != want {
				t.Fatalf("len %d: Checksum=%#04x ref=%#04x data=%x", n, got, want, b)
			}
		}
		for i := range b {
			b[i] = 0xff
		}
		if got, want := Checksum(b), refChecksum(b); got != want {
			t.Fatalf("len %d all-ones: Checksum=%#04x ref=%#04x", n, got, want)
		}
	}
	f := func(b []byte) bool { return Checksum(b) == refChecksum(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransportChecksumMatchesReference(t *testing.T) {
	// Oracle: serialize the pseudo-header in front of the segment and run
	// the two-byte reference over the concatenation.
	ref := func(src, dst netip.Addr, proto uint8, seg []byte) uint16 {
		s, d := src.As4(), dst.As4()
		buf := make([]byte, 0, 12+len(seg))
		buf = append(buf, s[:]...)
		buf = append(buf, d[:]...)
		buf = append(buf, 0, proto, byte(len(seg)>>8), byte(len(seg)))
		buf = append(buf, seg...)
		return refChecksum(buf)
	}
	rng := rand.New(rand.NewSource(2))
	f := func(sb, db [4]byte, proto uint8, n uint16) bool {
		src := netip.AddrFrom4(sb)
		dst := netip.AddrFrom4(db)
		seg := make([]byte, int(n)%2048)
		rng.Read(seg)
		return transportChecksum(src, dst, proto, seg) == ref(src, dst, proto, seg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGetReleaseLifecycle(t *testing.T) {
	p := Get()
	if p.Len() != 0 {
		t.Fatalf("fresh pooled packet has %d bytes", p.Len())
	}
	if p.Headroom() != DefaultHeadroom {
		t.Fatalf("fresh headroom = %d, want %d", p.Headroom(), DefaultHeadroom)
	}
	copy(p.Extend(4), []byte{1, 2, 3, 4})
	if p.Released() {
		t.Fatal("live packet reports released")
	}
	p.Release()
	if !p.Released() {
		t.Fatal("released packet reports live")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release()
}

func TestReleaseWrappedPacketIsNoOp(t *testing.T) {
	p := New([]byte{1, 2, 3})
	p.Release()
	p.Release() // never panics: drop paths release unconditionally
	if p.Released() {
		t.Fatal("non-pooled packet claims to be pooled")
	}
}

func TestPooledPushPullUsesHeadroom(t *testing.T) {
	p := Get()
	payload := []byte{0xaa, 0xbb, 0xcc, 0xdd}
	copy(p.Extend(len(payload)), payload)
	hdr := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	before := p.Headroom()
	p.Push(hdr)
	if p.Headroom() != before-len(hdr) {
		t.Fatalf("push did not consume headroom: %d -> %d", before, p.Headroom())
	}
	if !bytes.Equal(p.Data[:8], hdr) || !bytes.Equal(p.Data[8:], payload) {
		t.Fatalf("push result %x", p.Data)
	}
	p.Pull(len(hdr))
	if p.Headroom() != before {
		t.Fatalf("pull did not restore headroom: want %d got %d", before, p.Headroom())
	}
	if !bytes.Equal(p.Data, payload) {
		t.Fatalf("pull result %x", p.Data)
	}
	p.Release()
}

func TestSetDataRehomesOnPush(t *testing.T) {
	foreign := []byte{9, 8, 7}
	p := Get()
	p.SetData(foreign)
	if p.Headroom() != 0 {
		t.Fatal("foreign buffer should report no headroom")
	}
	p.Push([]byte{1, 2})
	if !bytes.Equal(p.Data, []byte{1, 2, 9, 8, 7}) {
		t.Fatalf("rehomed data %x", p.Data)
	}
	if p.Headroom() != DefaultHeadroom {
		t.Fatalf("rehomed headroom = %d", p.Headroom())
	}
	if &p.Data[2] == &foreign[0] {
		t.Fatal("rehome still aliases the foreign buffer")
	}
	p.Release()
}

func TestCloneOfPooledIsIndependent(t *testing.T) {
	p := Get()
	copy(p.Extend(3), []byte{1, 2, 3})
	q := p.Clone()
	p.Release()
	if !bytes.Equal(q.Data, []byte{1, 2, 3}) {
		t.Fatalf("clone data %x after original released", q.Data)
	}
	q.Data[0] = 42
	q.Release()
}

func TestExtendLargerThanPoolBufferGrows(t *testing.T) {
	p := Get()
	n := poolBufSize + 100
	b := p.Extend(n)
	if len(b) != n {
		t.Fatalf("extend returned %d bytes", len(b))
	}
	b[0], b[n-1] = 1, 2
	// Headroom is re-established so encapsulation still works in place.
	if p.Headroom() != DefaultHeadroom {
		t.Fatalf("grown headroom = %d", p.Headroom())
	}
	p.Release()
}
