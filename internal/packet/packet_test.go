package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	srcA = MustAddr("10.1.1.2")
	dstA = MustAddr("10.1.2.3")
)

func TestChecksumRFCExample(t *testing.T) {
	// Example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x12, 0x34, 0x56}
	if got, want := Checksum(b), ^uint16(0x1234+0x5600); got != want {
		t.Fatalf("odd checksum = %#x want %#x", got, want)
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		// Zero a checksum field, compute, insert, verify sums to zero.
		data[0], data[1] = 0, 0
		ck := Checksum(data)
		data[0], data[1] = byte(ck>>8), byte(ck)
		if len(data)%2 == 1 {
			// Odd-length buffers pad with zero; still verifies.
			return Checksum(data) == 0
		}
		return Checksum(data) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{TOS: 0x10, ID: 1234, Flags: IPFlagDF, TTL: 61, Proto: ProtoUDP, Src: srcA, Dst: dstA}
	payload := []byte("hello vini")
	dgram := h.Marshal(payload)
	var g IPv4
	got, err := g.Parse(dgram)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
	if g.Src != h.Src || g.Dst != h.Dst || g.TTL != 61 || g.Proto != ProtoUDP ||
		g.ID != 1234 || g.TOS != 0x10 || g.Flags != IPFlagDF {
		t.Fatalf("header mismatch: %+v", g)
	}
	if int(g.TotalLen) != len(dgram) {
		t.Fatalf("TotalLen = %d, want %d", g.TotalLen, len(dgram))
	}
}

func TestIPv4RejectsCorruption(t *testing.T) {
	h := IPv4{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA}
	dgram := h.Marshal([]byte("x"))
	for i := 0; i < IPv4HeaderLen; i++ {
		bad := append([]byte(nil), dgram...)
		bad[i] ^= 0xff
		var g IPv4
		if _, err := g.Parse(bad); err == nil && i != 10 && i != 11 {
			// Flipping any header byte must break the checksum (bytes
			// 10-11 are the checksum itself; flipping both halves of it
			// still fails, but flipping one may cancel only if crafted).
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestIPv4TruncatedAndBadVersion(t *testing.T) {
	var g IPv4
	if _, err := g.Parse(make([]byte, 10)); err == nil {
		t.Fatal("short header accepted")
	}
	h := IPv4{TTL: 1, Proto: 1, Src: srcA, Dst: dstA}
	d := h.Marshal(nil)
	d[0] = 6 << 4
	if _, err := g.Parse(d); err == nil {
		t.Fatal("version 6 accepted")
	}
}

func TestSetTTLIncrementalChecksum(t *testing.T) {
	for ttl := uint8(1); ttl < 255; ttl += 13 {
		h := IPv4{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: uint16(ttl)}
		dgram := h.Marshal([]byte("payload"))
		SetTTL(dgram, ttl)
		var g IPv4
		if _, err := g.Parse(dgram); err != nil {
			t.Fatalf("ttl=%d: %v", ttl, err)
		}
		if g.TTL != ttl {
			t.Fatalf("ttl = %d, want %d", g.TTL, ttl)
		}
	}
}

func TestSetTTLMatchesFullRecompute(t *testing.T) {
	f := func(id uint16, ttl, newTTL uint8) bool {
		if ttl == 0 {
			ttl = 1
		}
		h := IPv4{TTL: ttl, Proto: ProtoTCP, ID: id, Src: srcA, Dst: dstA}
		d1 := h.Marshal(nil)
		SetTTL(d1, newTTL)
		h2 := h
		h2.TTL = newTTL
		d2 := h2.Marshal(nil)
		return bytes.Equal(d1, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 5000, DstPort: 33000}
	seg := u.Marshal(srcA, dstA, []byte("data"))
	var g UDP
	payload, err := g.Parse(seg)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "data" || g.SrcPort != 5000 || g.DstPort != 33000 {
		t.Fatalf("parse: %+v %q", g, payload)
	}
	if !g.VerifyChecksum(srcA, dstA, seg) {
		t.Fatal("checksum did not verify")
	}
	// Note: swapping src/dst keeps the pseudo-header sum (commutative),
	// so use a genuinely different address to detect the mismatch.
	if g.VerifyChecksum(MustAddr("192.0.2.9"), dstA, seg) {
		t.Fatal("checksum verified with wrong pseudo-header")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCP{SrcPort: 80, DstPort: 1024, Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPSyn | TCPAck, Window: 16384}
	seg := h.Marshal(srcA, dstA, []byte("abc"))
	var g TCP
	payload, err := g.Parse(seg)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "abc" || g.Seq != h.Seq || g.Ack != h.Ack ||
		g.Flags != h.Flags || g.Window != 16384 {
		t.Fatalf("parse: %+v", g)
	}
	if transportChecksum(srcA, dstA, ProtoTCP, seg) != 0 {
		t.Fatal("tcp checksum does not verify")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ic := ICMP{Type: ICMPEcho, ID: 77, Seq: 3}
	msg := ic.Marshal(bytes.Repeat([]byte{0xaa}, 56))
	var g ICMP
	payload, err := g.Parse(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 56 || g.ID != 77 || g.Seq != 3 || g.Type != ICMPEcho {
		t.Fatalf("parse: %+v len=%d", g, len(payload))
	}
	msg[9] ^= 1
	if _, err := g.Parse(msg); err == nil {
		t.Fatal("corrupted ICMP accepted")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{7, 8, 9, 10, 11, 12}, Type: EtherTypeIPv4}
	frame := e.AppendTo(nil)
	frame = append(frame, []byte("payload")...)
	var g Ethernet
	p, err := g.Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if g != e || string(p) != "payload" {
		t.Fatalf("parse: %+v %q", g, p)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x00, 0x1b, 0xc0, 0xff, 0xee, 0x01}
	if m.String() != "00:1b:c0:ff:ee:01" {
		t.Fatalf("MAC string = %s", m)
	}
}

func TestFlowOfUDPAndReverse(t *testing.T) {
	d := BuildUDP(srcA, dstA, 1111, 2222, 64, []byte("x"))
	f, ok := FlowOf(d)
	if !ok {
		t.Fatal("FlowOf failed")
	}
	want := Flow{Proto: ProtoUDP, Src: srcA, Dst: dstA, SrcPort: 1111, DstPort: 2222}
	if f != want {
		t.Fatalf("flow = %v", f)
	}
	if f.Reverse().Reverse() != f {
		t.Fatal("double reverse not identity")
	}
}

func TestFlowOfICMPUsesEchoID(t *testing.T) {
	d := BuildICMPEcho(srcA, dstA, false, 4242, 1, 64, nil)
	f, ok := FlowOf(d)
	if !ok || f.SrcPort != 4242 || f.Proto != ProtoICMP {
		t.Fatalf("flow = %v ok=%v", f, ok)
	}
}

func TestFlowOfTCP(t *testing.T) {
	d := BuildTCP(srcA, dstA, TCP{SrcPort: 5001, DstPort: 80, Flags: TCPSyn}, 64, nil)
	f, ok := FlowOf(d)
	if !ok || f.SrcPort != 5001 || f.DstPort != 80 || f.Proto != ProtoTCP {
		t.Fatalf("flow = %v ok=%v", f, ok)
	}
}

func TestBuildICMPErrorQuotesOffender(t *testing.T) {
	offending := BuildUDP(srcA, dstA, 9999, 53, 1, bytes.Repeat([]byte{1}, 100))
	router := MustAddr("10.0.0.1")
	e := BuildICMPError(router, ICMPTimeExceeded, ICMPCodeTTL, offending)
	var ip IPv4
	payload, err := ip.Parse(e)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != router || ip.Dst != srcA || ip.Proto != ProtoICMP {
		t.Fatalf("ICMP error header: %+v", ip)
	}
	var ic ICMP
	quote, err := ic.Parse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Type != ICMPTimeExceeded {
		t.Fatalf("type = %d", ic.Type)
	}
	if len(quote) != IPv4HeaderLen+8 {
		t.Fatalf("quote length = %d, want %d", len(quote), IPv4HeaderLen+8)
	}
	// The quote must be the beginning of the offending datagram.
	if !bytes.Equal(quote, offending[:len(quote)]) {
		t.Fatal("quote does not match offending packet")
	}
}

func TestPacketPushPullClone(t *testing.T) {
	p := New([]byte{1, 2, 3, 4})
	p.Push([]byte{9, 9})
	if !bytes.Equal(p.Data, []byte{9, 9, 1, 2, 3, 4}) {
		t.Fatalf("push: %v", p.Data)
	}
	q := p.Clone()
	p.Pull(2)
	if !bytes.Equal(p.Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("pull: %v", p.Data)
	}
	if !bytes.Equal(q.Data, []byte{9, 9, 1, 2, 3, 4}) {
		t.Fatal("clone shares storage with original")
	}
	q.Data[0] = 7
	if p.Data[0] == 7 {
		t.Fatal("clone aliases original")
	}
}

func TestUDPChecksumNeverZeroOnWire(t *testing.T) {
	// RFC 768: transmitted checksum 0 means "none"; Marshal must emit
	// 0xffff when the computed sum is zero. Search for a payload whose
	// checksum would be zero by brute force over the length field nonce.
	f := func(sport, dport uint16, n uint8) bool {
		u := UDP{SrcPort: sport, DstPort: dport}
		seg := u.Marshal(srcA, dstA, make([]byte, int(n)))
		var g UDP
		if _, err := g.Parse(seg); err != nil {
			return false
		}
		return g.Checksum != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlowOfRejectsFragmentsAndGarbage(t *testing.T) {
	if _, ok := FlowOf([]byte{1, 2, 3}); ok {
		t.Fatal("garbage accepted")
	}
	h := IPv4{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, FragOff: 100, Flags: IPFlagMF}
	d := h.Marshal(make([]byte, 16))
	if _, ok := FlowOf(d); ok {
		t.Fatal("fragment accepted")
	}
}
