package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

// Wire codec for shipping packets between domain shards. The encoding is
// canonical — for any packet p, DecodeWire(AppendWire(nil, p)) produces a
// packet that re-encodes to the identical bytes — so cross-process runs
// can be digest-checked against in-process runs byte for byte.
//
// Layout (little-endian):
//
//	u32 dataLen | data | i64 Timestamp | i64 InPort | i64 SliceID |
//	i64 Paint | i64 Hops | u8 flags | u8 addrKind | addr bytes
//
// flags bit 0 carries the MigClone annotation; the remaining bits must
// be zero (decoders reject them, keeping the encoding canonical).
// addrKind is 0 (no NextHop), 4 (IPv4), or 16 (IPv6); the address bytes
// follow in netip.Addr.As4/As16 order. Zone-qualified IPv6 addresses are
// not representable (the simulator never produces them).

const maxWirePacket = 1 << 24 // 16 MiB: far above any simulated MTU

// AppendWire appends the canonical encoding of p to dst and returns the
// extended slice.
func AppendWire(dst []byte, p *Packet) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Data)))
	dst = append(dst, p.Data...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Anno.Timestamp))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Anno.InPort))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Anno.SliceID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Anno.Paint))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Anno.Hops))
	var flags byte
	if p.Anno.MigClone {
		flags |= 1
	}
	dst = append(dst, flags)
	switch {
	case !p.Anno.NextHop.IsValid():
		dst = append(dst, 0)
	case p.Anno.NextHop.Is4():
		a4 := p.Anno.NextHop.As4()
		dst = append(dst, 4)
		dst = append(dst, a4[:]...)
	default:
		a16 := p.Anno.NextHop.As16()
		dst = append(dst, 16)
		dst = append(dst, a16[:]...)
	}
	return dst
}

// DecodeWire decodes one packet from b, which must contain exactly one
// encoded packet (trailing bytes are an error). The result is a pooled
// packet with fresh DefaultHeadroom; the caller owns it and must Release
// it back to the pool.
func DecodeWire(b []byte) (*Packet, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("packet wire: truncated length prefix (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxWirePacket {
		return nil, fmt.Errorf("packet wire: data length %d exceeds limit", n)
	}
	b = b[4:]
	if len(b) < n+42 { // data + 5×u64 + flags + addrKind
		return nil, fmt.Errorf("packet wire: body truncated (%d bytes, need %d)", len(b), n+42)
	}
	data, rest := b[:n], b[n:]

	q := Get()
	if cap(q.buf) < DefaultHeadroom+n {
		q.buf = make([]byte, DefaultHeadroom+n)
	}
	q.off = DefaultHeadroom
	q.Data = q.buf[q.off : q.off+n]
	copy(q.Data, data)

	q.Anno.Timestamp = time.Duration(binary.LittleEndian.Uint64(rest[0:]))
	q.Anno.InPort = int(int64(binary.LittleEndian.Uint64(rest[8:])))
	q.Anno.SliceID = int(int64(binary.LittleEndian.Uint64(rest[16:])))
	q.Anno.Paint = int(int64(binary.LittleEndian.Uint64(rest[24:])))
	q.Anno.Hops = int(int64(binary.LittleEndian.Uint64(rest[32:])))
	flags := rest[40]
	if flags&^1 != 0 {
		q.Release()
		return nil, fmt.Errorf("packet wire: unknown flag bits %#x", flags&^1)
	}
	q.Anno.MigClone = flags&1 != 0
	kind, rest := rest[41], rest[42:]
	switch kind {
	case 0:
		q.Anno.NextHop = netip.Addr{}
	case 4:
		if len(rest) < 4 {
			q.Release()
			return nil, fmt.Errorf("packet wire: truncated IPv4 next hop")
		}
		q.Anno.NextHop = netip.AddrFrom4([4]byte(rest[:4]))
		rest = rest[4:]
	case 16:
		if len(rest) < 16 {
			q.Release()
			return nil, fmt.Errorf("packet wire: truncated IPv6 next hop")
		}
		q.Anno.NextHop = netip.AddrFrom16([16]byte(rest[:16]))
		rest = rest[16:]
	default:
		q.Release()
		return nil, fmt.Errorf("packet wire: unknown next-hop kind %d", kind)
	}
	if len(rest) != 0 {
		q.Release()
		return nil, fmt.Errorf("packet wire: %d trailing bytes", len(rest))
	}
	return q, nil
}
