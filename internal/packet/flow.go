package packet

import (
	"fmt"
	"net/netip"
)

// Flow is a hashable 5-tuple in the gopacket Flow/Endpoint spirit: fixed
// size, usable as a map key (NAT bindings, VNET demux, TCP demux).
type Flow struct {
	Proto    uint8
	Src, Dst netip.Addr
	SrcPort  uint16
	DstPort  uint16
}

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// String renders "proto src:sport>dst:dport".
func (f Flow) String() string {
	return fmt.Sprintf("%d %s:%d>%s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// FlowOf extracts the 5-tuple from a serialized IPv4 datagram. For ICMP,
// the echo ID is reported in SrcPort so NAT can bind echo sessions the way
// Linux netfilter does. ok is false for malformed or fragmented packets.
func FlowOf(dgram []byte) (f Flow, ok bool) {
	var ip IPv4
	payload, err := ip.Parse(dgram)
	if err != nil {
		return f, false
	}
	if ip.FragOff != 0 {
		return f, false
	}
	f.Proto = ip.Proto
	f.Src, f.Dst = ip.Src, ip.Dst
	switch ip.Proto {
	case ProtoUDP:
		var u UDP
		if _, err := u.Parse(payload); err != nil {
			return f, false
		}
		f.SrcPort, f.DstPort = u.SrcPort, u.DstPort
	case ProtoTCP:
		var t TCP
		if _, err := t.Parse(payload); err != nil {
			return f, false
		}
		f.SrcPort, f.DstPort = t.SrcPort, t.DstPort
	case ProtoICMP:
		var ic ICMP
		if _, err := ic.Parse(payload); err != nil {
			return f, false
		}
		f.SrcPort = ic.ID
	}
	return f, true
}

// BuildUDP builds a complete IPv4/UDP datagram.
func BuildUDP(src, dst netip.Addr, sport, dport uint16, ttl uint8, payload []byte) []byte {
	u := UDP{SrcPort: sport, DstPort: dport}
	seg := u.Marshal(src, dst, payload)
	ip := IPv4{TTL: ttl, Proto: ProtoUDP, Src: src, Dst: dst}
	return ip.Marshal(seg)
}

// BuildTCP builds a complete IPv4/TCP datagram.
func BuildTCP(src, dst netip.Addr, hdr TCP, ttl uint8, payload []byte) []byte {
	seg := hdr.Marshal(src, dst, payload)
	ip := IPv4{TTL: ttl, Proto: ProtoTCP, Src: src, Dst: dst}
	return ip.Marshal(seg)
}

// BuildICMPEcho builds an IPv4/ICMP echo request (or reply) datagram.
func BuildICMPEcho(src, dst netip.Addr, reply bool, id, seq uint16, ttl uint8, payload []byte) []byte {
	typ := uint8(ICMPEcho)
	if reply {
		typ = ICMPEchoReply
	}
	ic := ICMP{Type: typ, ID: id, Seq: seq}
	msg := ic.Marshal(payload)
	ip := IPv4{TTL: ttl, Proto: ProtoICMP, Src: src, Dst: dst}
	return ip.Marshal(msg)
}

// BuildICMPError builds the ICMP error (time exceeded / unreachable) a
// router emits about an offending datagram, quoting its IP header plus the
// first 8 payload bytes per RFC 792.
func BuildICMPError(routerAddr netip.Addr, icmpType, code uint8, offending []byte) []byte {
	var oip IPv4
	if _, err := oip.Parse(offending); err != nil {
		return nil
	}
	quote := offending
	if max := oip.HeaderLen + 8; len(quote) > max {
		quote = quote[:max]
	}
	ic := ICMP{Type: icmpType, Code: code}
	msg := ic.Marshal(quote)
	ip := IPv4{TTL: 64, Proto: ProtoICMP, Src: routerAddr, Dst: oip.Src}
	return ip.Marshal(msg)
}

// MustAddr parses a as a netip.Addr, panicking on error. For tests and
// static configuration tables.
func MustAddr(a string) netip.Addr { return netip.MustParseAddr(a) }

// MustPrefix parses p as a netip.Prefix, panicking on error.
func MustPrefix(p string) netip.Prefix { return netip.MustParsePrefix(p) }
