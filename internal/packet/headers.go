package packet

import (
	"encoding/binary"
	"net/netip"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the conventional colon-hex form.
func (m MAC) String() string {
	const hex = "0123456789abcdef"
	b := make([]byte, 0, 17)
	for i, x := range m {
		if i > 0 {
			b = append(b, ':')
		}
		b = append(b, hex[x>>4], hex[x&0xf])
	}
	return string(b)
}

// BroadcastMAC is ff:ff:ff:ff:ff:ff.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src MAC
	Type     uint16
}

// Parse decodes the header from b and returns the payload.
func (h *Ethernet) Parse(b []byte) ([]byte, error) {
	if len(b) < EthernetHeaderLen {
		return nil, parseErr("ethernet", "frame too short: %d bytes", len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:14])
	return b[EthernetHeaderLen:], nil
}

// AppendTo appends the serialized header to b.
func (h *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, h.Type)
}

// IPv4 is an IPv4 header without options (IHL=5), which is the only form
// IIAS emits; packets with options are accepted and options preserved via
// the HeaderLen field.
type IPv4 struct {
	TOS       uint8
	TotalLen  uint16
	ID        uint16
	Flags     uint8 // 3 bits: reserved, DF, MF
	FragOff   uint16
	TTL       uint8
	Proto     uint8
	Checksum  uint16
	Src, Dst  netip.Addr
	HeaderLen int // bytes, >= 20
}

// IPv4 flag bits.
const (
	IPFlagDF = 0x2
	IPFlagMF = 0x1
)

// Parse decodes the header from b and returns the payload (bounded by
// TotalLen). The checksum is verified.
func (h *IPv4) Parse(b []byte) ([]byte, error) {
	if len(b) < IPv4HeaderLen {
		return nil, parseErr("ipv4", "header too short: %d bytes", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return nil, parseErr("ipv4", "version %d", v)
	}
	hl := int(b[0]&0xf) * 4
	if hl < IPv4HeaderLen || hl > len(b) {
		return nil, parseErr("ipv4", "header length %d", hl)
	}
	if Checksum(b[:hl]) != 0 {
		return nil, parseErr("ipv4", "checksum mismatch")
	}
	h.HeaderLen = hl
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	fo := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(fo >> 13)
	h.FragOff = fo & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = netip.AddrFrom4([4]byte(b[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	if int(h.TotalLen) < hl || int(h.TotalLen) > len(b) {
		return nil, parseErr("ipv4", "total length %d (buffer %d)", h.TotalLen, len(b))
	}
	return b[hl:h.TotalLen], nil
}

// Marshal serializes header+payload into a fresh datagram, computing
// TotalLen and Checksum. HeaderLen/Checksum fields in h are ignored.
func (h *IPv4) Marshal(payload []byte) []byte {
	b := make([]byte, IPv4HeaderLen+len(payload))
	copy(b[IPv4HeaderLen:], payload)
	h.Put(b)
	return b
}

// Put serializes the header (IHL=5) into the first IPv4HeaderLen bytes of
// dgram, which must already hold the payload at dgram[IPv4HeaderLen:].
// TotalLen covers all of dgram; the checksum is computed in place. This is
// the zero-allocation path behind Marshal and EncapIPv4.
func (h *IPv4) Put(dgram []byte) {
	b := dgram[:IPv4HeaderLen]
	b[0] = 4<<4 | 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(len(dgram)))
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	s, d := h.Src.As4(), h.Dst.As4()
	copy(b[12:16], s[:])
	copy(b[16:20], d[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum(b))
}

// EncapIPv4 prepends an IPv4 header to p in place, using headroom when
// available. The packet's current contents become the payload.
func EncapIPv4(p *Packet, h *IPv4) {
	h.Put(p.Extend(IPv4HeaderLen))
}

// SetTTL rewrites the TTL in a serialized IPv4 datagram in place and
// incrementally updates the checksum (RFC 1624), as Click's DecIPTTL does.
func SetTTL(dgram []byte, ttl uint8) {
	old := uint16(dgram[8]) << 8
	dgram[8] = ttl
	new_ := uint16(ttl) << 8
	UpdateChecksum16(dgram[10:12], old, new_)
}

// UpdateChecksum16 applies an incremental checksum update for a 16-bit
// field change per RFC 1624: HC' = ~(~HC + ~m + m'). csum is the two
// checksum bytes in place; old and new_ are the field's big-endian
// values before and after the rewrite. In-place header rewriting (TTL
// decrement, NAPT address/port translation) uses this instead of
// recomputing the full sum.
func UpdateChecksum16(csum []byte, old, new_ uint16) {
	hc := binary.BigEndian.Uint16(csum)
	sum := uint32(^hc) + uint32(^old) + uint32(new_)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	binary.BigEndian.PutUint16(csum, ^uint16(sum))
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Parse decodes from b (a UDP segment) and returns the payload.
func (h *UDP) Parse(b []byte) ([]byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, parseErr("udp", "segment too short: %d bytes", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return nil, parseErr("udp", "length %d (buffer %d)", h.Length, len(b))
	}
	return b[UDPHeaderLen:h.Length], nil
}

// Marshal serializes header+payload with a checksum computed against the
// pseudo-header for src/dst.
func (h *UDP) Marshal(src, dst netip.Addr, payload []byte) []byte {
	b := make([]byte, UDPHeaderLen+len(payload))
	copy(b[UDPHeaderLen:], payload)
	h.Put(src, dst, b)
	return b
}

// Put serializes the header into the first UDPHeaderLen bytes of seg,
// which must already hold the payload at seg[UDPHeaderLen:]. Length covers
// all of seg; the pseudo-header checksum is computed in place.
func (h *UDP) Put(src, dst netip.Addr, seg []byte) {
	binary.BigEndian.PutUint16(seg[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], h.DstPort)
	binary.BigEndian.PutUint16(seg[4:6], uint16(len(seg)))
	seg[6], seg[7] = 0, 0
	ck := transportChecksum(src, dst, ProtoUDP, seg)
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(seg[6:8], ck)
}

// EncapUDP prepends a UDP header to p in place; the current contents
// become the UDP payload. Wire bytes match UDP.Marshal exactly.
func EncapUDP(p *Packet, src, dst netip.Addr, sport, dport uint16) {
	h := UDP{SrcPort: sport, DstPort: dport}
	h.Put(src, dst, p.Extend(UDPHeaderLen))
}

// VerifyChecksum checks a parsed UDP segment against the pseudo-header.
// A zero transmitted checksum means "not computed" and passes.
func (h *UDP) VerifyChecksum(src, dst netip.Addr, segment []byte) bool {
	if h.Checksum == 0 {
		return true
	}
	return transportChecksum(src, dst, ProtoUDP, segment) == 0
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCP is a TCP header without options.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	DataOff          int // bytes
}

// Parse decodes from b (a TCP segment) and returns the payload.
func (h *TCP) Parse(b []byte) ([]byte, error) {
	if len(b) < TCPHeaderLen {
		return nil, parseErr("tcp", "segment too short: %d bytes", len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	doff := int(b[12]>>4) * 4
	if doff < TCPHeaderLen || doff > len(b) {
		return nil, parseErr("tcp", "data offset %d", doff)
	}
	h.DataOff = doff
	h.Flags = b[13] & 0x3f
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	return b[doff:], nil
}

// Marshal serializes header+payload with pseudo-header checksum.
func (h *TCP) Marshal(src, dst netip.Addr, payload []byte) []byte {
	b := make([]byte, TCPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4
	b[13] = h.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	copy(b[TCPHeaderLen:], payload)
	binary.BigEndian.PutUint16(b[16:18], transportChecksum(src, dst, ProtoTCP, b))
	return b
}

// ICMP message types used here.
const (
	ICMPEchoReply      = 0
	ICMPUnreachable    = 3
	ICMPEcho           = 8
	ICMPTimeExceeded   = 11
	ICMPCodeNetUnreach = 0
	ICMPCodeTTL        = 0
)

// ICMP is an ICMP header (echo layout: ID and Seq valid for echo types).
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16
}

// Parse decodes from b (an ICMP message) and returns the payload. The
// checksum is verified over the whole message.
func (h *ICMP) Parse(b []byte) ([]byte, error) {
	if len(b) < ICMPHeaderLen {
		return nil, parseErr("icmp", "message too short: %d bytes", len(b))
	}
	if Checksum(b) != 0 {
		return nil, parseErr("icmp", "checksum mismatch")
	}
	h.Type = b[0]
	h.Code = b[1]
	h.Checksum = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return b[ICMPHeaderLen:], nil
}

// Marshal serializes header+payload, computing the checksum.
func (h *ICMP) Marshal(payload []byte) []byte {
	b := make([]byte, ICMPHeaderLen+len(payload))
	b[0] = h.Type
	b[1] = h.Code
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	copy(b[ICMPHeaderLen:], payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}
