package nat

import (
	"testing"
	"testing/quick"
	"time"

	"vini/internal/packet"
)

var (
	insideA = packet.MustAddr("10.1.87.2")    // OpenVPN client inside the overlay
	cnn     = packet.MustAddr("64.236.16.20") // external web server (Fig 2)
	egress  = packet.MustAddr("198.32.154.226")
)

func newTable(now *time.Duration) *Table {
	return New(Config{External: egress, PortLow: 2000, PortHigh: 2010, Timeout: time.Minute},
		func() time.Duration { return *now })
}

func TestOutboundInboundRoundTrip(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	orig := packet.BuildUDP(insideA, cnn, 5555, 80, 62, []byte("GET /"))
	out, err := nt.Outbound(orig)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := packet.FlowOf(out)
	if !ok {
		t.Fatal("no flow on translated packet")
	}
	if f.Src != egress || f.Dst != cnn || f.DstPort != 80 {
		t.Fatalf("translated flow = %v", f)
	}
	if f.SrcPort == 5555 {
		t.Fatal("source port not rewritten")
	}
	// Return packet from CNN to the egress node.
	ret := packet.BuildUDP(cnn, egress, 80, f.SrcPort, 60, []byte("200 OK"))
	back, ok, err := nt.Inbound(ret)
	if err != nil || !ok {
		t.Fatalf("inbound: ok=%v err=%v", ok, err)
	}
	bf, _ := packet.FlowOf(back)
	if bf.Dst != insideA || bf.DstPort != 5555 || bf.Src != cnn {
		t.Fatalf("restored flow = %v", bf)
	}
	// Checksums on the restored packet must verify end-to-end.
	var ip packet.IPv4
	payload, err := ip.Parse(back)
	if err != nil {
		t.Fatal(err)
	}
	var u packet.UDP
	if _, err := u.Parse(payload); err != nil {
		t.Fatal(err)
	}
	if !u.VerifyChecksum(ip.Src, ip.Dst, payload) {
		t.Fatal("UDP checksum invalid after translation")
	}
}

func TestStableBindingReuse(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	d := packet.BuildUDP(insideA, cnn, 5555, 80, 62, []byte("a"))
	o1, _ := nt.Outbound(d)
	o2, _ := nt.Outbound(d)
	f1, _ := packet.FlowOf(o1)
	f2, _ := packet.FlowOf(o2)
	if f1 != f2 {
		t.Fatalf("binding not stable: %v vs %v", f1, f2)
	}
	if nt.Len() != 1 {
		t.Fatalf("bindings = %d, want 1", nt.Len())
	}
}

func TestDistinctFlowsGetDistinctPorts(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	o1, _ := nt.Outbound(packet.BuildUDP(insideA, cnn, 5555, 80, 62, nil))
	o2, _ := nt.Outbound(packet.BuildUDP(insideA, cnn, 5556, 80, 62, nil))
	f1, _ := packet.FlowOf(o1)
	f2, _ := packet.FlowOf(o2)
	if f1.SrcPort == f2.SrcPort {
		t.Fatal("two flows share an external port")
	}
}

func TestPortExhaustion(t *testing.T) {
	var now time.Duration
	nt := newTable(&now) // range 2000-2010: 11 ports
	for i := 0; i < 11; i++ {
		if _, err := nt.Outbound(packet.BuildUDP(insideA, cnn, uint16(6000+i), 80, 62, nil)); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := nt.Outbound(packet.BuildUDP(insideA, cnn, 7000, 80, 62, nil)); err == nil {
		t.Fatal("exhausted range still allocated")
	}
}

func TestTimeoutFreesPorts(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	for i := 0; i < 11; i++ {
		nt.Outbound(packet.BuildUDP(insideA, cnn, uint16(6000+i), 80, 62, nil))
	}
	now = 2 * time.Minute
	if _, err := nt.Outbound(packet.BuildUDP(insideA, cnn, 7000, 80, 62, nil)); err != nil {
		t.Fatalf("expired bindings not reclaimed: %v", err)
	}
	if nt.Len() != 1 {
		t.Fatalf("bindings = %d, want 1 after expiry", nt.Len())
	}
}

func TestInboundUnknownDropped(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	ret := packet.BuildUDP(cnn, egress, 80, 2003, 60, nil)
	_, ok, err := nt.Inbound(ret)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unsolicited inbound accepted")
	}
}

func TestInboundWrongPeerDropped(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	o, _ := nt.Outbound(packet.BuildUDP(insideA, cnn, 5555, 80, 62, nil))
	f, _ := packet.FlowOf(o)
	// Same external port but from a different remote host: reject (an
	// address-dependent filtering NAT, which is what Click's element does).
	ret := packet.BuildUDP(packet.MustAddr("198.51.100.1"), egress, 80, f.SrcPort, 60, nil)
	_, ok, _ := nt.Inbound(ret)
	if ok {
		t.Fatal("inbound from wrong peer accepted")
	}
}

func TestICMPEchoTranslation(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	echo := packet.BuildICMPEcho(insideA, cnn, false, 777, 1, 62, []byte("ping"))
	out, err := nt.Outbound(echo)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := packet.FlowOf(out)
	if f.Src != egress || f.SrcPort == 777 {
		t.Fatalf("echo not translated: %v", f)
	}
	reply := packet.BuildICMPEcho(cnn, egress, true, f.SrcPort, 1, 60, []byte("ping"))
	back, ok, err := nt.Inbound(reply)
	if err != nil || !ok {
		t.Fatalf("echo reply: ok=%v err=%v", ok, err)
	}
	bf, _ := packet.FlowOf(back)
	if bf.Dst != insideA || bf.SrcPort != 777 {
		t.Fatalf("restored echo = %v", bf)
	}
}

func TestTCPTranslationChecksums(t *testing.T) {
	var now time.Duration
	nt := newTable(&now)
	syn := packet.BuildTCP(insideA, cnn, packet.TCP{SrcPort: 4000, DstPort: 80, Seq: 9, Flags: packet.TCPSyn, Window: 16384}, 62, nil)
	out, err := nt.Outbound(syn)
	if err != nil {
		t.Fatal(err)
	}
	var ip packet.IPv4
	payload, err := ip.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	var th packet.TCP
	if _, err := th.Parse(payload); err != nil {
		t.Fatal(err)
	}
	if th.Seq != 9 || th.Flags != packet.TCPSyn || th.DstPort != 80 {
		t.Fatalf("TCP fields damaged: %+v", th)
	}
	// Re-marshal with the same fields and compare checksum validity.
	reb := th.Marshal(ip.Src, ip.Dst, nil)
	if string(reb) != string(payload) {
		t.Fatal("translated TCP segment checksum mismatch")
	}
}

// Property: outbound then inbound of the mirrored reply always restores
// the original source exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(sport uint16, body []byte) bool {
		if sport == 0 {
			sport = 1
		}
		if len(body) > 512 {
			body = body[:512]
		}
		var now time.Duration
		nt := New(Config{External: egress}, func() time.Duration { return now })
		d := packet.BuildUDP(insideA, cnn, sport, 80, 62, body)
		out, err := nt.Outbound(d)
		if err != nil {
			return false
		}
		fo, _ := packet.FlowOf(out)
		ret := packet.BuildUDP(cnn, egress, 80, fo.SrcPort, 60, body)
		back, ok, err := nt.Inbound(ret)
		if err != nil || !ok {
			return false
		}
		bf, _ := packet.FlowOf(back)
		return bf.Dst == insideA && bf.DstPort == sport
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
