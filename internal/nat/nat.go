// Package nat implements the Network Address and Port Translation the
// IIAS egress performs (Section 4.2.3): packets leaving the overlay for
// hosts that have not opted in get their source rewritten to the egress
// node's public address and a fresh local port; return traffic matching a
// binding is rewritten back and re-enters the overlay.
package nat

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"vini/internal/packet"
)

// Binding is one NAPT session.
type Binding struct {
	Inside   packet.Flow // original 5-tuple (overlay side)
	External uint16      // allocated public port (or ICMP ID)
	LastUsed time.Duration
}

// Config controls the translator.
type Config struct {
	// External is the public address of the egress node.
	External netip.Addr
	// PortLow/PortHigh bound the allocated port range.
	PortLow, PortHigh uint16
	// Timeout expires idle bindings; zero means never.
	Timeout time.Duration
}

// Table is a NAPT translator. It is not safe for concurrent use; the
// owning Click element serializes access.
type Table struct {
	cfg      Config
	now      func() time.Duration
	out      map[packet.Flow]*Binding // inside flow -> binding
	back     map[uint16]*Binding      // external port -> binding
	nextPort uint16
}

// New returns a translator. now supplies the current time for timeouts.
func New(cfg Config, now func() time.Duration) *Table {
	if cfg.PortLow == 0 {
		cfg.PortLow = 1024
	}
	if cfg.PortHigh == 0 {
		cfg.PortHigh = 65535
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Table{
		cfg:      cfg,
		now:      now,
		out:      make(map[packet.Flow]*Binding),
		back:     make(map[uint16]*Binding),
		nextPort: cfg.PortLow,
	}
}

// Len reports the number of active bindings.
func (t *Table) Len() int { return len(t.out) }

func (t *Table) allocPort() (uint16, error) {
	span := int(t.cfg.PortHigh) - int(t.cfg.PortLow) + 1
	for i := 0; i < span; i++ {
		p := t.nextPort
		t.nextPort++
		if t.nextPort > t.cfg.PortHigh || t.nextPort < t.cfg.PortLow {
			t.nextPort = t.cfg.PortLow
		}
		if _, used := t.back[p]; !used {
			return p, nil
		}
	}
	return 0, fmt.Errorf("nat: port range %d-%d exhausted", t.cfg.PortLow, t.cfg.PortHigh)
}

// expire drops idle bindings.
func (t *Table) expire() {
	if t.cfg.Timeout == 0 {
		return
	}
	now := t.now()
	for f, b := range t.out {
		if now-b.LastUsed > t.cfg.Timeout {
			delete(t.out, f)
			delete(t.back, b.External)
		}
	}
}

// bindOutbound finds or creates the binding for an outbound flow.
func (t *Table) bindOutbound(flow packet.Flow) (*Binding, error) {
	b := t.out[flow]
	if b == nil {
		port, err := t.allocPort()
		if err != nil {
			return nil, err
		}
		b = &Binding{Inside: flow, External: port}
		t.out[flow] = b
		t.back[port] = b
	}
	b.LastUsed = t.now()
	return b, nil
}

// matchInbound returns the binding for a return flow, or nil.
func (t *Table) matchInbound(flow packet.Flow) *Binding {
	// For return traffic the external port is the destination port,
	// except ICMP echo replies where it is the echo ID (in SrcPort).
	key := flow.DstPort
	if flow.Proto == packet.ProtoICMP {
		key = flow.SrcPort
	}
	b := t.back[key]
	if b == nil || flow.Src != b.Inside.Dst {
		return nil
	}
	b.LastUsed = t.now()
	return b
}

// Outbound translates a datagram leaving the overlay: it returns a new
// serialized datagram with source address/port rewritten, creating a
// binding if needed. This is the allocating reference implementation
// the in-place TranslateOutbound is differentially tested against.
func (t *Table) Outbound(dgram []byte) ([]byte, error) {
	t.expire()
	flow, ok := packet.FlowOf(dgram)
	if !ok {
		return nil, fmt.Errorf("nat: cannot extract flow")
	}
	b, err := t.bindOutbound(flow)
	if err != nil {
		return nil, err
	}
	return rewrite(dgram, true, t.cfg.External, b.External)
}

// Inbound translates a datagram returning from the external Internet. It
// returns the datagram rewritten back to the inside flow, or ok=false if
// no binding matches (the packet is not ours; Click drops it).
func (t *Table) Inbound(dgram []byte) ([]byte, bool, error) {
	t.expire()
	flow, ok := packet.FlowOf(dgram)
	if !ok {
		return nil, false, fmt.Errorf("nat: cannot extract flow")
	}
	b := t.matchInbound(flow)
	if b == nil {
		return nil, false, nil
	}
	out, err := rewriteBack(dgram, b.Inside)
	return out, err == nil, err
}

// TranslateOutbound rewrites an outbound datagram in place with
// incremental checksum updates (RFC 1624): source address, source
// port/ICMP ID, IP header checksum, and transport checksum are patched
// without re-serializing, so the NAPT egress path does not allocate.
func (t *Table) TranslateOutbound(dgram []byte) error {
	t.expire()
	flow, ok := packet.FlowOf(dgram)
	if !ok {
		return fmt.Errorf("nat: cannot extract flow")
	}
	b, err := t.bindOutbound(flow)
	if err != nil {
		return err
	}
	return translate(dgram, true, t.cfg.External, b.External)
}

// TranslateInbound rewrites a return datagram in place back to its
// inside flow. ok=false means no binding matches (not ours; drop).
func (t *Table) TranslateInbound(dgram []byte) (bool, error) {
	t.expire()
	flow, ok := packet.FlowOf(dgram)
	if !ok {
		return false, fmt.Errorf("nat: cannot extract flow")
	}
	b := t.matchInbound(flow)
	if b == nil {
		return false, nil
	}
	return true, translate(dgram, false, b.Inside.Src, b.Inside.SrcPort)
}

// Bindings returns a snapshot of active sessions, for diagnostics.
func (t *Table) Bindings() []Binding {
	out := make([]Binding, 0, len(t.out))
	for _, b := range t.out {
		out = append(out, *b)
	}
	return out
}

// rewrite changes the source (outbound=true) address and port of dgram,
// re-serializing with correct checksums.
func rewrite(dgram []byte, _ bool, newAddr netip.Addr, newPort uint16) ([]byte, error) {
	var ip packet.IPv4
	payload, err := ip.Parse(dgram)
	if err != nil {
		return nil, err
	}
	ip.Src = newAddr
	return reserialize(ip, payload, func(proto uint8, seg []byte) {
		switch proto {
		case packet.ProtoUDP, packet.ProtoTCP:
			binary.BigEndian.PutUint16(seg[0:2], newPort)
		case packet.ProtoICMP:
			binary.BigEndian.PutUint16(seg[4:6], newPort)
		}
	})
}

// rewriteBack restores the inside destination on a return packet.
func rewriteBack(dgram []byte, inside packet.Flow) ([]byte, error) {
	var ip packet.IPv4
	payload, err := ip.Parse(dgram)
	if err != nil {
		return nil, err
	}
	ip.Dst = inside.Src
	return reserialize(ip, payload, func(proto uint8, seg []byte) {
		switch proto {
		case packet.ProtoUDP, packet.ProtoTCP:
			binary.BigEndian.PutUint16(seg[2:4], inside.SrcPort)
		case packet.ProtoICMP:
			binary.BigEndian.PutUint16(seg[4:6], inside.SrcPort)
		}
	})
}

// translate patches dgram in place: outbound (out=true) rewrites the
// source address and source port (ICMP: echo ID), inbound the
// destination address and destination port. The IP header checksum and
// the transport checksum (whose pseudo-header covers the rewritten
// address) are updated incrementally per RFC 1624, so the fast path
// neither copies nor re-serializes. A UDP datagram sent without a
// checksum (field zero) keeps none.
func translate(dgram []byte, out bool, addr netip.Addr, port uint16) error {
	var ip packet.IPv4
	seg, err := ip.Parse(dgram)
	if err != nil {
		return err
	}
	addrOff := 12 // source address
	if !out {
		addrOff = 16 // destination address
	}
	oldHi := binary.BigEndian.Uint16(dgram[addrOff : addrOff+2])
	oldLo := binary.BigEndian.Uint16(dgram[addrOff+2 : addrOff+4])
	a4 := addr.As4()
	newHi := binary.BigEndian.Uint16(a4[0:2])
	newLo := binary.BigEndian.Uint16(a4[2:4])
	packet.UpdateChecksum16(dgram[10:12], oldHi, newHi)
	packet.UpdateChecksum16(dgram[10:12], oldLo, newLo)
	copy(dgram[addrOff:addrOff+4], a4[:])

	switch ip.Proto {
	case packet.ProtoUDP, packet.ProtoTCP:
		portOff := 0 // source port
		if !out {
			portOff = 2 // destination port
		}
		var csum []byte
		switch {
		case ip.Proto == packet.ProtoUDP && len(seg) >= packet.UDPHeaderLen:
			if binary.BigEndian.Uint16(seg[6:8]) != 0 {
				csum = seg[6:8]
			}
		case ip.Proto == packet.ProtoTCP && len(seg) >= packet.TCPHeaderLen:
			csum = seg[16:18]
		default:
			return fmt.Errorf("nat: transport header truncated")
		}
		oldPort := binary.BigEndian.Uint16(seg[portOff : portOff+2])
		if csum != nil {
			packet.UpdateChecksum16(csum, oldHi, newHi)
			packet.UpdateChecksum16(csum, oldLo, newLo)
			packet.UpdateChecksum16(csum, oldPort, port)
			if ip.Proto == packet.ProtoUDP && binary.BigEndian.Uint16(csum) == 0 {
				// 0 would mean "no checksum"; 0xffff is the same
				// ones-complement value.
				binary.BigEndian.PutUint16(csum, 0xffff)
			}
		}
		binary.BigEndian.PutUint16(seg[portOff:portOff+2], port)
	case packet.ProtoICMP:
		if len(seg) < packet.ICMPHeaderLen {
			return fmt.Errorf("nat: ICMP header truncated")
		}
		// The address does not enter the ICMP checksum (no pseudo-header);
		// only the rewritten echo ID does.
		oldID := binary.BigEndian.Uint16(seg[4:6])
		packet.UpdateChecksum16(seg[2:4], oldID, port)
		binary.BigEndian.PutUint16(seg[4:6], port)
	}
	return nil
}

// reserialize rebuilds the datagram after mutate edits the transport
// header, recomputing transport and IP checksums.
func reserialize(ip packet.IPv4, payload []byte, mutate func(proto uint8, seg []byte)) ([]byte, error) {
	seg := append([]byte(nil), payload...)
	mutate(ip.Proto, seg)
	switch ip.Proto {
	case packet.ProtoUDP:
		if len(seg) >= packet.UDPHeaderLen {
			var u packet.UDP
			if _, err := u.Parse(seg); err != nil {
				return nil, err
			}
			u.SrcPort = binary.BigEndian.Uint16(seg[0:2])
			u.DstPort = binary.BigEndian.Uint16(seg[2:4])
			noCsum := binary.BigEndian.Uint16(seg[6:8]) == 0
			seg = u.Marshal(ip.Src, ip.Dst, seg[packet.UDPHeaderLen:])
			if noCsum {
				// RFC 768 zero means "no checksum"; a translator
				// preserves that rather than inventing one (RFC 3022).
				seg[6], seg[7] = 0, 0
			}
		}
	case packet.ProtoTCP:
		if len(seg) >= packet.TCPHeaderLen {
			var th packet.TCP
			body, err := th.Parse(seg)
			if err != nil {
				return nil, err
			}
			th.SrcPort = binary.BigEndian.Uint16(seg[0:2])
			th.DstPort = binary.BigEndian.Uint16(seg[2:4])
			seg = th.Marshal(ip.Src, ip.Dst, body)
		}
	case packet.ProtoICMP:
		if len(seg) >= packet.ICMPHeaderLen {
			// Parse the pre-mutation bytes (ICMP.Parse verifies the
			// checksum, which the mutation has already invalidated in
			// seg), then adopt the rewritten ID and re-marshal.
			var ic packet.ICMP
			body, err := ic.Parse(payload)
			if err != nil {
				return nil, err
			}
			ic.ID = binary.BigEndian.Uint16(seg[4:6])
			seg = ic.Marshal(body)
		}
	}
	hdr := packet.IPv4{TOS: ip.TOS, ID: ip.ID, Flags: ip.Flags, FragOff: ip.FragOff,
		TTL: ip.TTL, Proto: ip.Proto, Src: ip.Src, Dst: ip.Dst}
	return hdr.Marshal(seg), nil
}
