package nat

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"vini/internal/packet"
)

// TestTranslateDifferential pins the zero-allocation in-place NAPT path
// (TranslateOutbound/TranslateInbound, RFC 1624 incremental checksums)
// byte-for-byte against the allocating reference path
// (Outbound/Inbound, full reserialization) across UDP, TCP, and ICMP.
func TestTranslateDifferential(t *testing.T) {
	ext := netip.MustParseAddr("198.32.154.226")
	inside := netip.MustParseAddr("10.1.0.9")
	remote := netip.MustParseAddr("128.112.139.43")
	tbl := New(Config{External: ext, Timeout: time.Minute}, func() time.Duration { return 0 })

	cases := map[string][]byte{
		"udp": packet.BuildUDP(inside, remote, 4321, 53, 64, []byte("query")),
		"tcp": func() []byte {
			h := packet.TCP{SrcPort: 4321, DstPort: 80, Seq: 7, Flags: packet.TCPSyn, Window: 1024}
			seg := h.Marshal(inside, remote, []byte("GET /"))
			ip := packet.IPv4{TTL: 64, Proto: packet.ProtoTCP, Src: inside, Dst: remote}
			return ip.Marshal(seg)
		}(),
		"icmp": func() []byte {
			h := packet.ICMP{Type: packet.ICMPEcho, ID: 4321, Seq: 3}
			ip := packet.IPv4{TTL: 64, Proto: packet.ProtoICMP, Src: inside, Dst: remote}
			return ip.Marshal(h.Marshal([]byte("ping")))
		}(),
	}
	for name, dgram := range cases {
		t.Run(name, func(t *testing.T) {
			// Outbound: the reference allocates a fresh datagram, the
			// fast path rewrites a copy in place; the flow is identical
			// so both hit the same binding.
			want, err := tbl.Outbound(dgram)
			if err != nil {
				t.Fatalf("reference Outbound: %v", err)
			}
			got := append([]byte(nil), dgram...)
			if err := tbl.TranslateOutbound(got); err != nil {
				t.Fatalf("TranslateOutbound: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("outbound divergence:\nfast %x\nref  %x", got, want)
			}
			// The translated datagram must still carry valid checksums.
			var ip packet.IPv4
			if _, err := ip.Parse(got); err != nil {
				t.Fatalf("translated datagram no longer parses: %v", err)
			}

			// Inbound: build the external host's reply by swapping the
			// translated flow, then compare both return paths.
			reply := buildReply(t, got)
			wantBack, ok, err := tbl.Inbound(reply)
			if err != nil || !ok {
				t.Fatalf("reference Inbound: ok=%v err=%v", ok, err)
			}
			gotBack := append([]byte(nil), reply...)
			ok, err = tbl.TranslateInbound(gotBack)
			if err != nil || !ok {
				t.Fatalf("TranslateInbound: ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(gotBack, wantBack) {
				t.Fatalf("inbound divergence:\nfast %x\nref  %x", gotBack, wantBack)
			}
		})
	}
}

// TestTranslateUDPZeroChecksum checks the RFC 768 corner: a zero UDP
// checksum means "not computed" and must stay zero through in-place
// translation, not be incrementally updated into garbage.
func TestTranslateUDPZeroChecksum(t *testing.T) {
	ext := netip.MustParseAddr("198.32.154.226")
	tbl := New(Config{External: ext, Timeout: time.Minute}, func() time.Duration { return 0 })
	dgram := packet.BuildUDP(netip.MustParseAddr("10.1.0.9"),
		netip.MustParseAddr("128.112.139.43"), 4321, 53, 64, []byte("q"))
	// Zero the UDP checksum and fix the IP header untouched (UDP csum
	// is not covered by the IP header checksum).
	dgram[26], dgram[27] = 0, 0
	want, err := tbl.Outbound(dgram)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]byte(nil), dgram...)
	if err := tbl.TranslateOutbound(got); err != nil {
		t.Fatal(err)
	}
	if got[26] != 0 || got[27] != 0 {
		t.Fatalf("zero UDP checksum was rewritten to %x", got[26:28])
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("zero-checksum divergence:\nfast %x\nref  %x", got, want)
	}
}

// buildReply swaps a translated outbound datagram into the reply the
// external host would send: src/dst addresses and ports (or ICMP ID
// kept, type flipped to echo-reply), checksums recomputed from scratch.
func buildReply(t *testing.T, out []byte) []byte {
	t.Helper()
	var ip packet.IPv4
	seg, err := ip.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	rip := packet.IPv4{TTL: 64, Proto: ip.Proto, Src: ip.Dst, Dst: ip.Src}
	switch ip.Proto {
	case packet.ProtoUDP:
		var u packet.UDP
		payload, err := u.Parse(seg)
		if err != nil {
			t.Fatal(err)
		}
		r := packet.UDP{SrcPort: u.DstPort, DstPort: u.SrcPort}
		return rip.Marshal(r.Marshal(rip.Src, rip.Dst, payload))
	case packet.ProtoTCP:
		var h packet.TCP
		payload, err := h.Parse(seg)
		if err != nil {
			t.Fatal(err)
		}
		r := packet.TCP{SrcPort: h.DstPort, DstPort: h.SrcPort,
			Seq: 100, Ack: h.Seq + 1, Flags: packet.TCPSyn | packet.TCPAck, Window: 1024}
		return rip.Marshal(r.Marshal(rip.Src, rip.Dst, payload))
	case packet.ProtoICMP:
		var h packet.ICMP
		payload, err := h.Parse(seg)
		if err != nil {
			t.Fatal(err)
		}
		r := packet.ICMP{Type: packet.ICMPEchoReply, ID: h.ID, Seq: h.Seq}
		return rip.Marshal(r.Marshal(payload))
	}
	t.Fatalf("unhandled proto %d", ip.Proto)
	return nil
}
