package topology

import (
	"testing"
	"testing/quick"
	"time"
)

func line(names ...string) *Graph {
	g := New()
	for i := 0; i+1 < len(names); i++ {
		g.AddLink(Link{A: names[i], B: names[i+1], CostAB: 1, Delay: time.Millisecond})
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := line("a", "b", "c", "d")
	sp := g.ShortestPaths("a", nil)
	p, ok := sp["d"]
	if !ok || p.Cost != 3 || len(p.Hops) != 4 {
		t.Fatalf("path a->d = %+v ok=%v", p, ok)
	}
	if p.Hops[0] != "a" || p.Hops[3] != "d" {
		t.Fatalf("hops = %v", p.Hops)
	}
	if p.Delay != 3*time.Millisecond {
		t.Fatalf("delay = %v", p.Delay)
	}
}

func TestShortestPathPrefersLowCost(t *testing.T) {
	g := New()
	g.AddLink(Link{A: "a", B: "b", CostAB: 10})
	g.AddLink(Link{A: "a", B: "c", CostAB: 1})
	g.AddLink(Link{A: "c", B: "b", CostAB: 1})
	p := g.ShortestPaths("a", nil)["b"]
	if p.Cost != 2 || len(p.Hops) != 3 || p.Hops[1] != "c" {
		t.Fatalf("path = %+v", p)
	}
}

func TestShortestPathWithDownLink(t *testing.T) {
	g := New()
	g.AddLink(Link{A: "a", B: "b", CostAB: 1}) // index 0
	g.AddLink(Link{A: "a", B: "c", CostAB: 5}) // index 1
	g.AddLink(Link{A: "c", B: "b", CostAB: 5}) // index 2
	p := g.ShortestPaths("a", map[int]bool{0: true})["b"]
	if p.Cost != 10 {
		t.Fatalf("detour cost = %d, want 10", p.Cost)
	}
	if _, ok := g.ShortestPaths("a", map[int]bool{0: true, 1: true})["b"]; ok {
		t.Fatal("unreachable node still has path")
	}
}

func TestAsymmetricCosts(t *testing.T) {
	g := New()
	g.AddLink(Link{A: "a", B: "b", CostAB: 1, CostBA: 100})
	g.AddLink(Link{A: "b", B: "a", CostAB: 0}) // defaults to 1 both ways
	spA := g.ShortestPaths("a", nil)
	if spA["b"].Cost != 1 {
		t.Fatalf("a->b = %d", spA["b"].Cost)
	}
	spB := g.ShortestPaths("b", nil)
	if spB["a"].Cost != 1 { // takes the second (parallel) link
		t.Fatalf("b->a = %d", spB["a"].Cost)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New()
	if err := g.AddLink(Link{A: "x", B: "x"}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestConnected(t *testing.T) {
	g := line("a", "b", "c")
	if !g.Connected(nil) {
		t.Fatal("line not connected")
	}
	g.AddNode("island")
	if g.Connected(nil) {
		t.Fatal("island not detected")
	}
}

func TestNeighborsSortedAndFiltered(t *testing.T) {
	g := New()
	g.AddLink(Link{A: "m", B: "z", CostAB: 1})
	g.AddLink(Link{A: "m", B: "a", CostAB: 2})
	nb := g.Neighbors("m", nil)
	if len(nb) != 2 || nb[0].Node != "a" || nb[1].Node != "z" {
		t.Fatalf("neighbors = %+v", nb)
	}
	nb = g.Neighbors("m", map[int]bool{0: true})
	if len(nb) != 1 || nb[0].Node != "a" {
		t.Fatalf("filtered neighbors = %+v", nb)
	}
}

// TestDijkstraMatchesBellmanFord is the property test: on random graphs
// the two independent implementations must agree on every distance.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 8
		g := New()
		names := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}
		for _, nm := range names {
			g.AddNode(nm)
		}
		for _, e := range edges {
			a := names[int(e)%n]
			b := names[int(e>>4)%n]
			if a == b {
				continue
			}
			cost := uint32(e>>8)%50 + 1
			g.AddLink(Link{A: a, B: b, CostAB: cost})
		}
		sp := g.ShortestPaths("n0", nil)
		bf := g.BellmanFord("n0", nil)
		if len(sp) != len(bf) {
			return false
		}
		for node, p := range sp {
			if uint64(p.Cost) != bf[node] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPathsAreValid checks every reported path is a real walk whose edge
// costs sum to the reported cost.
func TestPathsAreValid(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 6
		g := New()
		names := []string{"a", "b", "c", "d", "e", "f"}
		for _, nm := range names {
			g.AddNode(nm)
		}
		for _, e := range edges {
			x, y := names[int(e)%n], names[int(e>>4)%n]
			if x == y {
				continue
			}
			g.AddLink(Link{A: x, B: y, CostAB: uint32(e>>8)%20 + 1})
		}
		for _, p := range g.ShortestPaths("a", nil) {
			if p.Hops[0] != "a" {
				return false
			}
			var sum uint32
			for i := 0; i+1 < len(p.Hops); i++ {
				// Find the cheapest edge in the walk direction; the path
				// must cost no more than any valid walk over its hops.
				found := false
				var best uint32
				for _, l := range g.Links() {
					var c uint32
					switch {
					case l.A == p.Hops[i] && l.B == p.Hops[i+1]:
						c = l.CostAB
					case l.B == p.Hops[i] && l.A == p.Hops[i+1]:
						c = l.CostBA
					default:
						continue
					}
					if !found || c < best {
						best, found = c, true
					}
				}
				if !found {
					return false // non-adjacent consecutive hops
				}
				sum += best
			}
			if sum != p.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAbileneShape(t *testing.T) {
	g := Abilene()
	if got := len(g.Nodes()); got != 11 {
		t.Fatalf("nodes = %d, want 11", got)
	}
	if got := len(g.Links()); got != 14 {
		t.Fatalf("links = %d, want 14", got)
	}
	if !g.Connected(nil) {
		t.Fatal("Abilene not connected")
	}
}

// TestAbileneDefaultPath verifies the paper's default route: D.C. through
// New York, Chicago, Indianapolis, Kansas City, and Denver to Seattle with
// a 76 ms RTT (38 ms one-way).
func TestAbileneDefaultPath(t *testing.T) {
	g := Abilene()
	p := g.ShortestPaths(Washington, nil)[Seattle]
	want := []string{Washington, NewYork, Chicago, Indianapolis, KansasCity, Denver, Seattle}
	if len(p.Hops) != len(want) {
		t.Fatalf("hops = %v, want %v", p.Hops, want)
	}
	for i := range want {
		if p.Hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", p.Hops, want)
		}
	}
	if rtt := 2 * p.Delay; rtt != 76*time.Millisecond {
		t.Fatalf("default-path RTT = %v, want 76ms", rtt)
	}
}

// TestAbileneFailoverPath verifies the paper's post-failure route through
// Atlanta, Houston, Los Angeles, and Sunnyvale with a 93 ms RTT.
func TestAbileneFailoverPath(t *testing.T) {
	g := Abilene()
	down := map[int]bool{}
	for i, l := range g.Links() {
		if (l.A == Denver && l.B == KansasCity) || (l.A == KansasCity && l.B == Denver) {
			down[i] = true
		}
	}
	if len(down) != 1 {
		t.Fatalf("could not find Denver-Kansas City link")
	}
	p := g.ShortestPaths(Washington, down)[Seattle]
	want := []string{Washington, Atlanta, Houston, LosAngeles, Sunnyvale, Seattle}
	if len(p.Hops) != len(want) {
		t.Fatalf("hops = %v, want %v", p.Hops, want)
	}
	for i := range want {
		if p.Hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", p.Hops, want)
		}
	}
	if rtt := 2 * p.Delay; rtt != 93*time.Millisecond {
		t.Fatalf("failover-path RTT = %v, want 93ms", rtt)
	}
}

func TestAbilenePublicAddrs(t *testing.T) {
	seen := map[string]bool{}
	for _, pop := range Abilene().Nodes() {
		a, ok := AbilenePublicAddr(pop)
		if !ok {
			t.Fatalf("no public addr for %s", pop)
		}
		if seen[a] {
			t.Fatalf("duplicate public addr %s", a)
		}
		seen[a] = true
	}
	if _, ok := AbilenePublicAddr("atlantis"); ok {
		t.Fatal("made up a PoP")
	}
}

func TestAbileneRouterCodes(t *testing.T) {
	g := Abilene()
	for _, n := range g.Nodes() {
		if AbileneRouterCode[n] == "" {
			t.Fatalf("no router code for %s", n)
		}
	}
}

func TestFindLink(t *testing.T) {
	g := Abilene()
	if _, ok := g.FindLink(Denver, KansasCity); !ok {
		t.Fatal("Denver-KC link missing")
	}
	if _, ok := g.FindLink(KansasCity, Denver); !ok {
		t.Fatal("FindLink not orientation-agnostic")
	}
	if _, ok := g.FindLink(Seattle, Washington); ok {
		t.Fatal("phantom link")
	}
}
