package topology

import (
	"math"
	"testing"
)

// FuzzRepetitaParse feeds arbitrary bytes to the .graph parser: it must
// error on malformed input (truncated sections, bad indices, NaN
// fields) and never panic; accepted input must yield a structurally
// sound graph.
func FuzzRepetitaParse(f *testing.F) {
	f.Add(sampleGraph)
	f.Add("NODES 1\nlabel x y\nA 0 0\nEDGES 0\nlabel src dest weight bw delay\n")
	f.Add("NODES 2\nlabel x y\nA 0 0\nB 1 1\nEDGES 1\nlabel src dest weight bw delay\ne 0 1 1 100 250\n")
	f.Add("NODES 2\nlabel x y\nA NaN 0\n")
	f.Add("NODES -3\nlabel x y\n")
	f.Add("EDGES 1\n")
	g64, _ := SynthRepetita(8, 4, 1)
	f.Add(g64)
	f.Fuzz(func(t *testing.T, text string) {
		g, names, err := ParseRepetita(text)
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph without error")
		}
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			if !g.HasNode(n) {
				t.Fatalf("name %q not in graph", n)
			}
			if seen[n] {
				t.Fatalf("duplicate node %q accepted", n)
			}
			seen[n] = true
		}
		for _, l := range g.Links() {
			if l.A == l.B {
				t.Fatalf("self-loop %q accepted", l.A)
			}
			if math.IsNaN(l.Bandwidth) || math.IsInf(l.Bandwidth, 0) || l.Bandwidth < 0 {
				t.Fatalf("non-finite bandwidth %v accepted", l.Bandwidth)
			}
			if l.Delay < 0 {
				t.Fatalf("negative delay %v accepted", l.Delay)
			}
		}
	})
}

// FuzzRepetitaDemands does the same for the .demands parser against a
// fixed node table.
func FuzzRepetitaDemands(f *testing.F) {
	f.Add(sampleDemands)
	f.Add("DEMANDS 1\nlabel src dest bw\nd 0 1 10\n")
	f.Add("DEMANDS 1\nlabel src dest bw\nd 0 1 NaN\n")
	f.Add("DEMANDS 2\nlabel src dest bw\nd 0 1 10\n")
	f.Add("DEMANDS 1\nlabel src dest bw\nd 7 0 10\n")
	_, d := SynthRepetita(8, 16, 1)
	f.Add(d)
	names := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}
	valid := make(map[string]bool, len(names))
	for _, n := range names {
		valid[n] = true
	}
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseRepetitaDemands(text, names)
		if err != nil {
			return
		}
		for _, d := range m.Demands {
			if !valid[d.Src] || !valid[d.Dst] || d.Src == d.Dst {
				t.Fatalf("bad endpoints %+v accepted", d)
			}
			if math.IsNaN(d.RateBps) || math.IsInf(d.RateBps, 0) || d.RateBps < 0 {
				t.Fatalf("non-finite rate %v accepted", d.RateBps)
			}
		}
	})
}
