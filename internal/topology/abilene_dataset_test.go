package topology

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAbileneDataset pins the committed REPETITA serialization of the
// Abilene backbone (testdata/abilene.graph + .demands — the dataset
// EXPERIMENTS.md feeds to vinibench -exp scale) against the canonical
// Abilene() graph: same links, metrics, delays, and bandwidths, so the
// shortest paths the paper's Section 5 depends on are identical
// whichever way the topology is loaded.
func TestAbileneDataset(t *testing.T) {
	gb, err := os.ReadFile(filepath.Join("testdata", "abilene.graph"))
	if err != nil {
		t.Fatal(err)
	}
	g, names, err := ParseRepetita(string(gb))
	if err != nil {
		t.Fatal(err)
	}
	want := Abilene()
	if len(names) != len(want.Nodes()) {
		t.Fatalf("dataset has %d nodes, canonical %d", len(names), len(want.Nodes()))
	}
	wl := want.Links()
	gl := g.Links()
	if len(gl) != len(wl) {
		t.Fatalf("dataset has %d links, canonical %d", len(gl), len(wl))
	}
	for _, l := range wl {
		got, ok := g.FindLink(l.A, l.B)
		if !ok {
			t.Fatalf("dataset missing link %s-%s", l.A, l.B)
		}
		// The REPETITA file stores each direction explicitly with the
		// same published IS-IS metric.
		sameCosts := (got.CostAB == l.CostAB && got.CostBA == l.CostAB) ||
			(got.CostBA == l.CostAB && got.CostAB == l.CostAB)
		if !sameCosts || got.Delay != l.Delay || got.Bandwidth != l.Bandwidth {
			t.Fatalf("link %s-%s: dataset %+v != canonical %+v", l.A, l.B, got, l)
		}
	}
	// The paper's default Washington->Seattle path must survive the
	// round-trip through the dataset.
	paths := g.ShortestPaths(Washington, nil)
	p, ok := paths[Seattle]
	if !ok {
		t.Fatal("no washington->seattle path")
	}
	wantPath := []string{Washington, NewYork, Chicago, Indianapolis, KansasCity, Denver, Seattle}
	if len(p.Hops) != len(wantPath) {
		t.Fatalf("washington->seattle path %v, want %v", p.Hops, wantPath)
	}
	for i := range wantPath {
		if p.Hops[i] != wantPath[i] {
			t.Fatalf("washington->seattle path %v, want %v", p.Hops, wantPath)
		}
	}

	db, err := os.ReadFile(filepath.Join("testdata", "abilene.demands"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseRepetitaDemands(string(db), names)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Demands) != 110 { // 11 PoPs, all ordered pairs
		t.Fatalf("demand matrix has %d entries, want 110", len(m.Demands))
	}
	if m.TotalBps() <= 0 {
		t.Fatal("demand matrix carries no load")
	}
	for _, d := range m.Demands {
		if !g.HasNode(d.Src) || !g.HasNode(d.Dst) {
			t.Fatalf("demand %s->%s references unknown node", d.Src, d.Dst)
		}
	}
}
