package topology

// REPETITA dataset loader. The REPETITA repository (PAPERS.md) bundles
// 260+ real ISP topologies with traffic-engineering demand matrices in
// a simple line-oriented text format:
//
//	NODES <n>
//	label x y
//	<name> <x> <y>          (n rows)
//
//	EDGES <m>
//	label src dest weight bw delay
//	<name> <si> <di> <w> <kbps> <usec>   (m rows; directed, node indices)
//
//	DEMANDS <k>
//	label src dest bw
//	<name> <si> <di> <kbps>              (k rows)
//
// Bandwidths are kilobits per second and delays microseconds. Directed
// edge pairs fold into this package's undirected Link with per-direction
// costs; a direction that never appears inherits the other's weight.

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Demand is one origin-destination entry of a traffic matrix.
type Demand struct {
	Src, Dst string
	// RateBps is the offered load in bits per second.
	RateBps float64
}

// DemandMatrix is a parsed REPETITA demand file.
type DemandMatrix struct {
	Demands []Demand
}

// TotalBps sums the offered load.
func (m *DemandMatrix) TotalBps() float64 {
	var t float64
	for _, d := range m.Demands {
		t += d.RateBps
	}
	return t
}

// Scaled returns a copy with every rate multiplied by f.
func (m *DemandMatrix) Scaled(f float64) *DemandMatrix {
	out := &DemandMatrix{Demands: make([]Demand, len(m.Demands))}
	for i, d := range m.Demands {
		d.RateBps *= f
		out.Demands[i] = d
	}
	return out
}

// repScanner walks non-blank lines with position tracking for errors.
type repScanner struct {
	sc   *bufio.Scanner
	line int
}

func newRepScanner(text string) *repScanner {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &repScanner{sc: sc}
}

// next returns the fields of the next non-blank line.
func (s *repScanner) next() ([]string, error) {
	for s.sc.Scan() {
		s.line++
		f := strings.Fields(s.sc.Text())
		if len(f) > 0 {
			return f, nil
		}
	}
	if err := s.sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("line %d: unexpected end of input", s.line)
}

// section reads a "<KEYWORD> <count>" section header followed by its
// column-label line, returning the count.
func (s *repScanner) section(keyword string, maxCount int) (int, error) {
	f, err := s.next()
	if err != nil {
		return 0, err
	}
	if len(f) != 2 || f[0] != keyword {
		return 0, fmt.Errorf("line %d: expected %q header, got %q", s.line, keyword, strings.Join(f, " "))
	}
	n, err := strconv.Atoi(f[1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("line %d: bad %s count %q", s.line, keyword, f[1])
	}
	if n > maxCount {
		return 0, fmt.Errorf("line %d: %s count %d exceeds limit %d", s.line, keyword, n, maxCount)
	}
	if f, err = s.next(); err != nil {
		return 0, err
	}
	if f[0] != "label" {
		return 0, fmt.Errorf("line %d: expected %s column labels, got %q", s.line, keyword, f[0])
	}
	return n, nil
}

// finite parses a float that must be finite and non-negative (NaN,
// infinities, and negative values are malformed input, not data).
func (s *repScanner) finite(field, what string) (float64, error) {
	v, err := s.coord(field, what)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("line %d: %s %q not a finite non-negative number", s.line, what, field)
	}
	return v, nil
}

// coord parses a float that must merely be finite: node coordinates are
// positions (real datasets store longitude/latitude, so negatives are
// data, not errors).
func (s *repScanner) coord(field, what string) (float64, error) {
	v, err := strconv.ParseFloat(field, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: bad %s %q", s.line, what, field)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("line %d: %s %q not a finite number", s.line, what, field)
	}
	return v, nil
}

// nodeIndex parses a node index within [0, n).
func (s *repScanner) nodeIndex(field, what string, n int) (int, error) {
	i, err := strconv.Atoi(field)
	if err != nil || i < 0 || i >= n {
		return 0, fmt.Errorf("line %d: %s %q outside [0, %d)", s.line, what, field, n)
	}
	return i, nil
}

// Sanity bounds: the largest REPETITA topologies (Rocketfuel-derived)
// stay well under these; anything bigger is malformed input.
const (
	maxRepNodes   = 100000
	maxRepEdges   = 1000000
	maxRepDemands = 5000000
)

// ParseRepetita parses a REPETITA .graph file into an undirected Graph
// plus the node-name table (index order, as demand files reference
// nodes by index). Directed edge pairs merge into one Link with
// per-direction costs; duplicate same-direction edges, self-loops, and
// non-finite bandwidths/delays are errors.
func ParseRepetita(text string) (*Graph, []string, error) {
	s := newRepScanner(text)
	n, err := s.section("NODES", maxRepNodes)
	if err != nil {
		return nil, nil, fmt.Errorf("topology: repetita: %w", err)
	}
	names := make([]string, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		f, err := s.next()
		if err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: nodes: %w", err)
		}
		if len(f) != 3 {
			return nil, nil, fmt.Errorf("topology: repetita: line %d: node row needs 3 fields, got %d", s.line, len(f))
		}
		if _, err := s.coord(f[1], "node x"); err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
		if _, err := s.coord(f[2], "node y"); err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
		if seen[f[0]] {
			return nil, nil, fmt.Errorf("topology: repetita: line %d: duplicate node %q", s.line, f[0])
		}
		seen[f[0]] = true
		names[i] = f[0]
	}
	m, err := s.section("EDGES", maxRepEdges)
	if err != nil {
		return nil, nil, fmt.Errorf("topology: repetita: %w", err)
	}
	// One directed edge's data, keyed by canonical (min,max) node pair.
	type half struct {
		bw         float64
		delay      time.Duration
		fwd, rev   bool
		wFwd, wRev uint32
	}
	order := make([][2]int, 0, m)
	pairs := make(map[[2]int]*half, m)
	for i := 0; i < m; i++ {
		f, err := s.next()
		if err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: edges: %w", err)
		}
		if len(f) != 6 {
			return nil, nil, fmt.Errorf("topology: repetita: line %d: edge row needs 6 fields, got %d", s.line, len(f))
		}
		src, err := s.nodeIndex(f[1], "edge src", n)
		if err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
		dst, err := s.nodeIndex(f[2], "edge dest", n)
		if err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
		if src == dst {
			return nil, nil, fmt.Errorf("topology: repetita: line %d: self-loop at node %d", s.line, src)
		}
		w, err := s.finite(f[3], "edge weight")
		if err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
		if w > math.MaxUint32 {
			return nil, nil, fmt.Errorf("topology: repetita: line %d: edge weight %v overflows", s.line, w)
		}
		bw, err := s.finite(f[4], "edge bandwidth")
		if err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
		us, err := s.finite(f[5], "edge delay")
		if err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
		key := [2]int{src, dst}
		forward := true
		if dst < src {
			key = [2]int{dst, src}
			forward = false
		}
		h := pairs[key]
		if h == nil {
			h = &half{bw: bw * 1000, delay: time.Duration(us * float64(time.Microsecond))}
			pairs[key] = h
			order = append(order, key)
		}
		if forward {
			if h.fwd {
				return nil, nil, fmt.Errorf("topology: repetita: line %d: duplicate edge %d->%d", s.line, src, dst)
			}
			h.fwd, h.wFwd = true, uint32(w)
		} else {
			if h.rev {
				return nil, nil, fmt.Errorf("topology: repetita: line %d: duplicate edge %d->%d", s.line, src, dst)
			}
			h.rev, h.wRev = true, uint32(w)
		}
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(names[i])
	}
	for _, key := range order {
		h := pairs[key]
		// A missing direction inherits the other's weight (REPETITA
		// files normally carry both).
		if !h.fwd {
			h.wFwd = h.wRev
		}
		if !h.rev {
			h.wRev = h.wFwd
		}
		if err := g.AddLink(Link{
			A: names[key[0]], B: names[key[1]],
			CostAB: h.wFwd, CostBA: h.wRev,
			Delay: h.delay, Bandwidth: h.bw,
		}); err != nil {
			return nil, nil, fmt.Errorf("topology: repetita: %w", err)
		}
	}
	return g, names, nil
}

// ParseRepetitaDemands parses a REPETITA .demands file against the node
// table returned by ParseRepetita. Demands with non-finite or negative
// rates are errors; zero-rate demands are kept (an experiment may scale
// them later).
func ParseRepetitaDemands(text string, names []string) (*DemandMatrix, error) {
	s := newRepScanner(text)
	k, err := s.section("DEMANDS", maxRepDemands)
	if err != nil {
		return nil, fmt.Errorf("topology: repetita demands: %w", err)
	}
	out := &DemandMatrix{Demands: make([]Demand, 0, k)}
	for i := 0; i < k; i++ {
		f, err := s.next()
		if err != nil {
			return nil, fmt.Errorf("topology: repetita demands: %w", err)
		}
		if len(f) != 4 {
			return nil, fmt.Errorf("topology: repetita demands: line %d: demand row needs 4 fields, got %d", s.line, len(f))
		}
		src, err := s.nodeIndex(f[1], "demand src", len(names))
		if err != nil {
			return nil, fmt.Errorf("topology: repetita demands: %w", err)
		}
		dst, err := s.nodeIndex(f[2], "demand dest", len(names))
		if err != nil {
			return nil, fmt.Errorf("topology: repetita demands: %w", err)
		}
		if src == dst {
			return nil, fmt.Errorf("topology: repetita demands: line %d: demand %d->%d loops", s.line, src, dst)
		}
		kbps, err := s.finite(f[3], "demand bandwidth")
		if err != nil {
			return nil, fmt.Errorf("topology: repetita demands: %w", err)
		}
		out.Demands = append(out.Demands, Demand{
			Src: names[src], Dst: names[dst], RateBps: kbps * 1000})
	}
	return out, nil
}
