package topology

// Synthetic REPETITA-format scenario generator: a deterministic
// ISP-like topology (ring backbone plus random chords) and a matching
// demand matrix, rendered in the exact file format ParseRepetita and
// ParseRepetitaDemands consume. The scale simtest regime and vinibench
// -exp scale run on these when no external REPETITA files are given, so
// the generator is pinned by a golden test against committed testdata —
// its output is part of the determinism surface.

import (
	"fmt"
	"strings"
)

// synthRNG is a self-contained xorshift64* so generator output never
// depends on math/rand's version-specific stream.
type synthRNG uint64

func (r *synthRNG) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = synthRNG(x)
	return x * 0x2545F4914F6CDD1D
}

func (r *synthRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// SynthRepetita renders an n-node topology and a k-entry demand matrix
// in REPETITA text format, deterministically from the seed. The
// topology is a ring (always connected) plus ~n/2 chords; link delays
// are 1–3 ms (comfortably above the parallel executor's lookahead
// floor), bandwidths 1 Gbps, IGP weights 1–10. Demand rates are 50–500
// kbps per origin-destination pair.
func SynthRepetita(n, k int, seed int64) (graph, demands string) {
	if n < 3 {
		n = 3
	}
	rng := synthRNG(uint64(seed)*0x9E3779B97F4A7C15 + 1)
	var g strings.Builder
	fmt.Fprintf(&g, "NODES %d\nlabel x y\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g, "n%03d %d.0 %d.0\n", i, i%16, i/16)
	}
	type edge struct{ a, b, w1, w2, delay int }
	var edges []edge
	have := make(map[[2]int]bool)
	addEdge := func(a, b int) {
		key := [2]int{a, b}
		if b < a {
			key = [2]int{b, a}
		}
		if a == b || have[key] {
			return
		}
		have[key] = true
		edges = append(edges, edge{a: a, b: b,
			w1: 1 + rng.intn(10), w2: 1 + rng.intn(10),
			delay: 1000 + rng.intn(2000)})
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
	}
	for c := 0; c < n/2; c++ {
		addEdge(rng.intn(n), rng.intn(n))
	}
	fmt.Fprintf(&g, "\nEDGES %d\nlabel src dest weight bw delay\n", 2*len(edges))
	for i, e := range edges {
		fmt.Fprintf(&g, "edge_%d %d %d %d 1000000 %d\n", 2*i, e.a, e.b, e.w1, e.delay)
		fmt.Fprintf(&g, "edge_%d %d %d %d 1000000 %d\n", 2*i+1, e.b, e.a, e.w2, e.delay)
	}
	var d strings.Builder
	fmt.Fprintf(&d, "DEMANDS %d\nlabel src dest bw\n", k)
	for i := 0; i < k; i++ {
		src := rng.intn(n)
		dst := rng.intn(n - 1)
		if dst >= src {
			dst++
		}
		fmt.Fprintf(&d, "demand_%d %d %d %d\n", i, src, dst, 50+rng.intn(451))
	}
	return g.String(), d.String()
}
