package topology

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

const sampleGraph = `NODES 4
label x y
Vienna 16.37 48.22
Paris 2.35 48.85
Rome 12.49 41.90
Bern 7.44 46.95

EDGES 8
label src dest weight bw delay
edge_0 0 1 10 40000 1500
edge_1 1 0 20 40000 1500
edge_2 1 2 5 10000 2250
edge_3 2 1 5 10000 2250
edge_4 2 3 1 10000 1000
edge_5 3 2 1 10000 1000
edge_6 3 0 7 40000 1750
edge_7 0 3 7 40000 1750
`

const sampleDemands = `DEMANDS 3
label src dest bw
demand_0 0 2 128
demand_1 1 3 256
demand_2 3 0 64
`

func TestParseRepetita(t *testing.T) {
	g, names, err := ParseRepetita(sampleGraph)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Vienna", "Paris", "Rome", "Bern"}
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], n)
		}
	}
	if got := len(g.Links()); got != 4 {
		t.Fatalf("%d undirected links, want 4 (8 directed halves)", got)
	}
	l, ok := g.FindLink("Vienna", "Paris")
	if !ok {
		t.Fatal("Vienna-Paris missing")
	}
	// Asymmetric weights survive the fold, oriented by the first-seen
	// direction.
	costs := [2]uint32{l.CostAB, l.CostBA}
	if l.A == "Paris" {
		costs[0], costs[1] = costs[1], costs[0]
	}
	if costs != [2]uint32{10, 20} {
		t.Fatalf("Vienna->Paris/Paris->Vienna = %v, want {10 20}", costs)
	}
	if l.Bandwidth != 40000*1000 {
		t.Fatalf("bandwidth %v bps, want 40 Mbps (input is kbps)", l.Bandwidth)
	}
	if l.Delay != 1500*time.Microsecond {
		t.Fatalf("delay %v, want 1.5ms (input is usec)", l.Delay)
	}
	if !g.Connected(nil) {
		t.Fatal("sample graph not connected")
	}

	m, err := ParseRepetitaDemands(sampleDemands, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Demands) != 3 {
		t.Fatalf("%d demands, want 3", len(m.Demands))
	}
	if d := m.Demands[0]; d.Src != "Vienna" || d.Dst != "Rome" || d.RateBps != 128000 {
		t.Fatalf("demand 0 = %+v", d)
	}
	if got, want := m.TotalBps(), float64((128+256+64)*1000); got != want {
		t.Fatalf("TotalBps = %v, want %v", got, want)
	}
	if got := m.Scaled(0.5).TotalBps(); got != 224000 {
		t.Fatalf("Scaled(0.5).TotalBps = %v, want 224000", got)
	}
}

func TestParseRepetitaErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"bad header", "EDGES 3\n"},
		{"bad count", "NODES x\nlabel x y\n"},
		{"negative count", "NODES -1\nlabel x y\n"},
		{"huge count", "NODES 999999999\nlabel x y\n"},
		{"missing labels", "NODES 1\nVienna 1 2\n"},
		{"truncated nodes", "NODES 2\nlabel x y\nVienna 1 2\n"},
		{"short node row", "NODES 1\nlabel x y\nVienna 1\n"},
		{"nan coord", "NODES 1\nlabel x y\nVienna NaN 2\n"},
		{"dup node", "NODES 2\nlabel x y\nA 1 1\nA 2 2\n"},
		{"no edges", "NODES 1\nlabel x y\nA 1 1\n"},
		{"self loop", "NODES 2\nlabel x y\nA 1 1\nB 2 2\nEDGES 1\nlabel src dest weight bw delay\ne 0 0 1 1 1\n"},
		{"edge index", "NODES 2\nlabel x y\nA 1 1\nB 2 2\nEDGES 1\nlabel src dest weight bw delay\ne 0 5 1 1 1\n"},
		{"dup edge", "NODES 2\nlabel x y\nA 1 1\nB 2 2\nEDGES 2\nlabel src dest weight bw delay\ne 0 1 1 1 1\ne 0 1 2 1 1\n"},
		{"neg bw", "NODES 2\nlabel x y\nA 1 1\nB 2 2\nEDGES 1\nlabel src dest weight bw delay\ne 0 1 1 -5 1\n"},
		{"inf delay", "NODES 2\nlabel x y\nA 1 1\nB 2 2\nEDGES 1\nlabel src dest weight bw delay\ne 0 1 1 1 +Inf\n"},
	}
	for _, c := range cases {
		if _, _, err := ParseRepetita(c.text); err == nil {
			t.Errorf("%s: parsed without error", c.name)
		}
	}
	names := []string{"A", "B"}
	demandCases := []struct{ name, text string }{
		{"empty", ""},
		{"truncated", "DEMANDS 2\nlabel src dest bw\nd 0 1 5\n"},
		{"bad index", "DEMANDS 1\nlabel src dest bw\nd 0 9 5\n"},
		{"nan rate", "DEMANDS 1\nlabel src dest bw\nd 0 1 NaN\n"},
		{"neg rate", "DEMANDS 1\nlabel src dest bw\nd 0 1 -3\n"},
		{"loop", "DEMANDS 1\nlabel src dest bw\nd 1 1 5\n"},
	}
	for _, c := range demandCases {
		if _, err := ParseRepetitaDemands(c.text, names); err == nil {
			t.Errorf("demands %s: parsed without error", c.name)
		}
	}
}

// TestSynthRepetitaGolden pins the generator's output byte-for-byte
// against committed testdata: the synthetic scale topology is part of
// the determinism surface (simtest digests and BENCH_scale.json are
// produced on it).
func TestSynthRepetitaGolden(t *testing.T) {
	graph, demands := SynthRepetita(64, 512, 64)
	for _, c := range []struct{ file, got string }{
		{"synth64.graph", graph},
		{"synth64.demands", demands},
	} {
		path := filepath.Join("testdata", c.file)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing (regenerate with SynthRepetita(64, 512, 64)): %v", path, err)
		}
		if string(want) != c.got {
			t.Errorf("%s drifted from SynthRepetita output", path)
		}
	}
}

// TestSynthRepetitaParses round-trips generator output through the
// parsers across sizes.
func TestSynthRepetitaParses(t *testing.T) {
	for _, n := range []int{3, 16, 64, 100} {
		graph, demandText := SynthRepetita(n, 4*n, int64(n))
		g, names, err := ParseRepetita(graph)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(names) != n {
			t.Fatalf("n=%d: %d names", n, len(names))
		}
		if !g.Connected(nil) {
			t.Fatalf("n=%d: not connected", n)
		}
		m, err := ParseRepetitaDemands(demandText, names)
		if err != nil {
			t.Fatalf("n=%d demands: %v", n, err)
		}
		if len(m.Demands) != 4*n {
			t.Fatalf("n=%d: %d demands", n, len(m.Demands))
		}
		for _, d := range m.Demands {
			if d.Src == d.Dst || !g.HasNode(d.Src) || !g.HasNode(d.Dst) {
				t.Fatalf("n=%d: bad demand %+v", n, d)
			}
		}
	}
}
