// Package topology models network topologies: nodes, weighted links with
// propagation delay and capacity, and the shortest-path computations both
// the routing protocols and the experiment harness verify against. It also
// ships the Abilene backbone dataset the paper mirrors in Section 5.2.
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"
)

// Link is an undirected edge between two named nodes.
type Link struct {
	A, B string
	// CostAB/CostBA are the IGP metrics in each direction (OSPF allows
	// asymmetric costs; Abilene's are symmetric).
	CostAB, CostBA uint32
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Bandwidth is the link capacity in bits per second.
	Bandwidth float64
}

// Graph is a topology under construction or inspection.
type Graph struct {
	nodes map[string]bool
	links []Link
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[string]bool)}
}

// AddNode adds a node; adding twice is a no-op.
func (g *Graph) AddNode(name string) {
	g.nodes[name] = true
}

// AddLink adds an undirected link, creating endpoints as needed.
func (g *Graph) AddLink(l Link) error {
	if l.A == l.B {
		return fmt.Errorf("topology: self-loop at %s", l.A)
	}
	if l.CostAB == 0 {
		l.CostAB = 1
	}
	if l.CostBA == 0 {
		l.CostBA = l.CostAB
	}
	g.nodes[l.A] = true
	g.nodes[l.B] = true
	g.links = append(g.links, l)
	return nil
}

// HasNode reports whether name exists.
func (g *Graph) HasNode(name string) bool { return g.nodes[name] }

// Nodes returns all node names, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Links returns a copy of all links.
func (g *Graph) Links() []Link {
	return append([]Link(nil), g.links...)
}

// FindLink returns the first link between a and b in either orientation.
func (g *Graph) FindLink(a, b string) (Link, bool) {
	for _, l := range g.links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l, true
		}
	}
	return Link{}, false
}

// Neighbor describes one adjacency from a node's perspective.
type Neighbor struct {
	Node  string
	Cost  uint32
	Delay time.Duration
	Index int // index into Links()
}

// Neighbors returns the adjacencies of node, sorted by neighbor name.
// Links in down are skipped (set of link indices), which is how SPF
// recomputation after failure is modelled at the graph level.
func (g *Graph) Neighbors(node string, down map[int]bool) []Neighbor {
	var out []Neighbor
	for i, l := range g.links {
		if down[i] {
			continue
		}
		switch node {
		case l.A:
			out = append(out, Neighbor{Node: l.B, Cost: l.CostAB, Delay: l.Delay, Index: i})
		case l.B:
			out = append(out, Neighbor{Node: l.A, Cost: l.CostBA, Delay: l.Delay, Index: i})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Path is a shortest-path result.
type Path struct {
	Hops  []string // source..dest inclusive
	Cost  uint32
	Delay time.Duration // one-way propagation along the path
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node string
	dist uint64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node // deterministic tie-break
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x any)   { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// ShortestPaths runs Dijkstra from src, skipping links in down, and
// returns the path to every reachable node. Ties are broken by
// lexicographically smallest predecessor so results are deterministic
// (and match the SPF in internal/ospf).
func (g *Graph) ShortestPaths(src string, down map[int]bool) map[string]Path {
	const inf = math.MaxUint64
	dist := make(map[string]uint64, len(g.nodes))
	prev := make(map[string]string)
	for n := range g.nodes {
		dist[n] = inf
	}
	if _, ok := dist[src]; !ok {
		return nil
	}
	dist[src] = 0
	q := &pq{}
	heap.Push(q, &pqItem{node: src, dist: 0})
	done := make(map[string]bool)
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, nb := range g.Neighbors(it.node, down) {
			nd := it.dist + uint64(nb.Cost)
			if nd < dist[nb.Node] || (nd == dist[nb.Node] && it.node < prev[nb.Node]) {
				dist[nb.Node] = nd
				prev[nb.Node] = it.node
				heap.Push(q, &pqItem{node: nb.Node, dist: nd})
			}
		}
	}
	out := make(map[string]Path, len(g.nodes))
	for n, d := range dist {
		if d == inf {
			continue
		}
		var hops []string
		for at := n; ; at = prev[at] {
			hops = append(hops, at)
			if at == src {
				break
			}
		}
		// Reverse into src..dest order.
		for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
			hops[i], hops[j] = hops[j], hops[i]
		}
		p := Path{Hops: hops, Cost: uint32(d)}
		for i := 0; i+1 < len(hops); i++ {
			if l, ok := g.activeLink(hops[i], hops[i+1], down); ok {
				p.Delay += l.Delay
			}
		}
		out[n] = p
	}
	return out
}

func (g *Graph) activeLink(a, b string, down map[int]bool) (Link, bool) {
	for i, l := range g.links {
		if down[i] {
			continue
		}
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l, true
		}
	}
	return Link{}, false
}

// BellmanFord computes shortest-path costs from src by relaxation; it is
// the independent reference implementation the property tests compare
// Dijkstra (and the OSPF SPF) against.
func (g *Graph) BellmanFord(src string, down map[int]bool) map[string]uint64 {
	const inf = math.MaxUint64
	dist := make(map[string]uint64, len(g.nodes))
	for n := range g.nodes {
		dist[n] = inf
	}
	if _, ok := dist[src]; !ok {
		return nil
	}
	dist[src] = 0
	for iter := 0; iter < len(g.nodes); iter++ {
		changed := false
		for i, l := range g.links {
			if down[i] {
				continue
			}
			if dist[l.A] != inf && dist[l.A]+uint64(l.CostAB) < dist[l.B] {
				dist[l.B] = dist[l.A] + uint64(l.CostAB)
				changed = true
			}
			if dist[l.B] != inf && dist[l.B]+uint64(l.CostBA) < dist[l.A] {
				dist[l.A] = dist[l.B] + uint64(l.CostBA)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for n, d := range dist {
		if d == inf {
			delete(dist, n)
		}
	}
	return dist
}

// Connected reports whether all nodes are mutually reachable ignoring
// links in down.
func (g *Graph) Connected(down map[int]bool) bool {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return true
	}
	sp := g.ShortestPaths(nodes[0], down)
	return len(sp) == len(nodes)
}
