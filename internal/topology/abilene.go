package topology

import "time"

// Abilene PoP names as used in the paper's Figure 7.
const (
	Seattle      = "seattle"
	Sunnyvale    = "sunnyvale"
	LosAngeles   = "los-angeles"
	Denver       = "denver"
	KansasCity   = "kansas-city"
	Houston      = "houston"
	Indianapolis = "indianapolis"
	Chicago      = "chicago"
	Atlanta      = "atlanta"
	Washington   = "washington"
	NewYork      = "new-york"
)

// AbileneRouterCode maps PoP names to the Abilene router codes that appear
// in the router configurations internal/rcc parses.
var AbileneRouterCode = map[string]string{
	Seattle:      "sttl",
	Sunnyvale:    "snva",
	LosAngeles:   "losa",
	Denver:       "dnvr",
	KansasCity:   "kscy",
	Houston:      "hstn",
	Indianapolis: "ipls",
	Chicago:      "chin",
	Atlanta:      "atla",
	Washington:   "wash",
	NewYork:      "nycm",
}

// Abilene returns the 11-PoP Abilene (Internet2) backbone of 2006 with its
// published IS-IS/OSPF link metrics. One-way propagation delays are
// calibrated so the paper's Section 5 numbers emerge:
//
//   - Washington–Seattle via New York, Chicago, Indianapolis, Kansas City,
//     Denver sums to 38 ms one-way (the paper's 76 ms default-path RTT);
//   - the post-failure path via Atlanta, Houston, Los Angeles, Sunnyvale
//     sums to 46.5 ms (93 ms RTT);
//   - the Chicago–New York and New York–Washington segments carry the
//     20.2 ms and 4.5 ms RTTs of the paper's Figure 5.
//
// With these metrics Dijkstra selects exactly the default and post-failure
// paths reported in the paper, and the transient mixed paths during
// convergence land near the observed 110 ms and 87 ms RTTs.
func Abilene() *Graph {
	g := New()
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	const gbps10 = 10e9 // OC-192 backbone
	links := []Link{
		{A: Chicago, B: Indianapolis, CostAB: 260, Delay: ms(2.5), Bandwidth: gbps10},
		{A: Chicago, B: NewYork, CostAB: 700, Delay: ms(10.1), Bandwidth: gbps10},
		{A: Denver, B: KansasCity, CostAB: 639, Delay: ms(5.5), Bandwidth: gbps10},
		{A: Denver, B: Sunnyvale, CostAB: 1295, Delay: ms(11.0), Bandwidth: gbps10},
		{A: Denver, B: Seattle, CostAB: 2095, Delay: ms(12.65), Bandwidth: gbps10},
		{A: Houston, B: Atlanta, CostAB: 1045, Delay: ms(10.0), Bandwidth: gbps10},
		{A: Houston, B: KansasCity, CostAB: 817, Delay: ms(8.0), Bandwidth: gbps10},
		{A: Houston, B: LosAngeles, CostAB: 1893, Delay: ms(17.0), Bandwidth: gbps10},
		{A: Indianapolis, B: Atlanta, CostAB: 714, Delay: ms(6.0), Bandwidth: gbps10},
		{A: Indianapolis, B: KansasCity, CostAB: 548, Delay: ms(5.0), Bandwidth: gbps10},
		{A: LosAngeles, B: Sunnyvale, CostAB: 366, Delay: ms(4.0), Bandwidth: gbps10},
		{A: NewYork, B: Washington, CostAB: 233, Delay: ms(2.25), Bandwidth: gbps10},
		{A: Atlanta, B: Washington, CostAB: 846, Delay: ms(7.5), Bandwidth: gbps10},
		{A: Sunnyvale, B: Seattle, CostAB: 861, Delay: ms(8.0), Bandwidth: gbps10},
	}
	for _, l := range links {
		if err := g.AddLink(l); err != nil {
			panic(err) // static data; cannot fail
		}
	}
	return g
}

// AbilenePublicAddr returns the public (tunnel-endpoint) IPv4 address
// assigned to the PlanetLab node co-located at the given Abilene PoP, in
// the 198.32.154/24 block the paper's Figure 2 uses.
func AbilenePublicAddr(pop string) (string, bool) {
	idx := map[string]int{
		Seattle:      41,
		Sunnyvale:    42,
		LosAngeles:   43,
		Denver:       44,
		KansasCity:   45,
		Houston:      46,
		Indianapolis: 47,
		Chicago:      48,
		Atlanta:      49,
		Washington:   50,
		NewYork:      51,
	}
	i, ok := idx[pop]
	if !ok {
		return "", false
	}
	return "198.32.154." + itoa(i), true
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
