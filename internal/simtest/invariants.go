package simtest

import (
	"fmt"
	"hash/fnv"
	"net/netip"

	"vini/internal/core"
	"vini/internal/fib"
	"vini/internal/packet"
)

// LookupIPRoute output ports in the generated IIAS configuration (see
// core.iiasConfig): 0 forwards via the encapsulation table, 1 delivers
// to the local tap.
const (
	outPortEncap = 0
	outPortTap   = 1
)

// probePort is the UDP port every node's kernel stack listens on for
// the delivery-checked traffic probes.
const probePort = 40000

// fibFingerprint hashes every node's FIB contents (not versions —
// periodic protocols bump versions without changing routes, and
// quiescence means the *contents* stopped moving).
func fibFingerprint(vnodes []*core.VirtualNode) uint64 {
	h := fnv.New64a()
	for _, vn := range vnodes {
		for _, r := range vn.FIB.Routes() {
			fmt.Fprintln(h, r.String())
		}
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// walkResult classifies one FIB next-hop graph walk.
type walkResult int

const (
	walkDelivered walkResult = iota
	walkUnreachable // no route, or next hop resolves to no node
	walkMisdelivered
	walkLoop
)

// walkFIB follows the per-destination next-hop graph from node start
// toward dst: look up dst in the current node's FIB, hop to the owner
// of the chosen next-hop address, repeat. It is a pure control-plane
// walk — no packets move — so it checks invariant 1 (acyclicity per
// destination) directly on the forwarding state.
func walkFIB(vnodes []*core.VirtualNode, addrOwner map[netip.Addr]int,
	start int, dst netip.Addr) (walkResult, string) {
	cur := start
	path := fmt.Sprintf("n%d", start)
	visited := map[int]bool{start: true}
	for hops := 0; hops <= len(vnodes)+1; hops++ {
		r, ok := vnodes[cur].FIB.Lookup(dst)
		if !ok {
			return walkUnreachable, path
		}
		if !r.NextHop.IsValid() || r.OutPort == outPortTap {
			if dst == vnodes[cur].TapAddr {
				return walkDelivered, path
			}
			return walkMisdelivered, path + " (local delivery of foreign address)"
		}
		next, ok := addrOwner[r.NextHop]
		if !ok {
			return walkUnreachable, path + fmt.Sprintf(" (next hop %v unowned)", r.NextHop)
		}
		if visited[next] {
			return walkLoop, path + fmt.Sprintf(" -> n%d", next)
		}
		visited[next] = true
		cur = next
		path += fmt.Sprintf(" -> n%d", next)
	}
	return walkLoop, path + " (hop budget exhausted)"
}

// checkLoops runs invariant 1 (and the reachability corollary) for
// every (source, destination-tap) pair: the next-hop graph must be
// acyclic, same-component pairs must walk to delivery, and
// cross-component pairs must not (a cross-component "delivery" means a
// protocol failed to withdraw routes over a failed link).
func (sc *scenario) checkLoops() []string {
	var out []string
	comp := sc.components()
	for d, dvn := range sc.vnode {
		for s := range sc.vnode {
			if s == d {
				continue
			}
			res, path := walkFIB(sc.vnode, sc.addrOwner, s, dvn.TapAddr)
			switch res {
			case walkLoop:
				out = append(out, fmt.Sprintf("forwarding loop for %v: %s", dvn.TapAddr, path))
			case walkMisdelivered:
				out = append(out, fmt.Sprintf("misdelivery for %v: %s", dvn.TapAddr, path))
			case walkDelivered:
				if comp[s] != comp[d] {
					out = append(out, fmt.Sprintf("stale route: n%d reaches %v across failed links: %s",
						s, dvn.TapAddr, path))
				}
			case walkUnreachable:
				if comp[s] == comp[d] {
					out = append(out, fmt.Sprintf("unreachable in component: n%d cannot reach %v: %s",
						s, dvn.TapAddr, path))
				}
			}
		}
	}
	return out
}

// checkConsistency runs invariant 2 on one node: the routing process's
// last-emitted RIB must match what the FEA holds for it, the FEA's
// selection must match the installed FIB, the compiled stride-8 FIB
// must agree with the reference binary trie, and every Click element
// cache must agree with its authoritative table.
func (sc *scenario) checkConsistency(i int, sample []netip.Addr) []string {
	vn := sc.vnode[i]
	var out []string
	fail := func(format string, args ...any) {
		out = append(out, fmt.Sprintf("n%d: ", i)+fmt.Sprintf(format, args...))
	}
	if vn.OSPF != nil {
		if err := compareRoutes(vn.OSPF.Routes(), vn.RIB().ProtoRoutes("ospf")); err != nil {
			fail("ospf vs RIB: %v", err)
		}
	}
	if vn.RIP != nil {
		if err := compareRoutes(vn.RIP.Routes(), vn.RIB().ProtoRoutes("rip")); err != nil {
			fail("rip vs RIB: %v", err)
		}
	}
	if err := vn.RIB().Verify(); err != nil {
		fail("RIB vs FIB: %v", err)
	}
	if err := vn.FIB.VerifyCompiled(sample); err != nil {
		fail("compiled FIB oracle: %v", err)
	}
	if err := vn.Router.Audit(); err != nil {
		fail("click cache audit: %v", err)
	}
	return out
}

// compareRoutes checks that two route sets agree on the forwarding
// substance (prefix, next hop, metric). Output ports and ownership tags
// legitimately differ: the FEA rewrites protocol interface indices to
// IIAS Click ports.
func compareRoutes(proto, rib []fib.Route) error {
	if len(proto) != len(rib) {
		return fmt.Errorf("%d routes in protocol, %d in RIB", len(proto), len(rib))
	}
	key := func(r fib.Route) string {
		return fmt.Sprintf("%s|%s|%d", r.Prefix, r.NextHop, r.Metric)
	}
	seen := make(map[string]int, len(proto))
	for _, r := range proto {
		seen[key(r)]++
	}
	for _, r := range rib {
		if seen[key(r)] == 0 {
			return fmt.Errorf("RIB holds %v which the protocol did not emit", r)
		}
		seen[key(r)]--
	}
	return nil
}

// checkConservation runs invariant 3: relative to the scenario's
// baseline, every pooled packet obtained from the pool has been
// released or escaped — a non-zero residue is a leak (or a double
// hand-off) somewhere in the data plane.
func checkConservation(baseline packet.PoolStats, where string) []string {
	d := packet.Stats().Sub(baseline)
	if n := d.InFlight(); n != 0 {
		return []string{fmt.Sprintf("packet conservation at %s: %d pooled packets unaccounted (gets=%d releases=%d escapes=%d)",
			where, n, d.Gets, d.Releases, d.Escapes)}
	}
	return nil
}

// addrSample collects the addresses the differential FIB oracle checks
// on every node: all tap and interface addresses (every address a real
// packet can carry in this world) plus a few seeded random ones for
// the no-route paths.
func (sc *scenario) addrSample() []netip.Addr {
	var out []netip.Addr
	for _, vn := range sc.vnode {
		out = append(out, vn.TapAddr)
		for _, ifc := range vn.Interfaces() {
			out = append(out, ifc.Addr, ifc.PeerAddr)
		}
	}
	for i := 0; i < 16; i++ {
		out = append(out, netip.AddrFrom4([4]byte{10, byte(sc.rng.Intn(256)),
			byte(sc.rng.Intn(256)), byte(sc.rng.Intn(256))}))
	}
	return out
}
