package simtest

import (
	"fmt"
	"testing"
)

// paritySeeds is how many seeds the worker-parity property explores
// (each seed runs the full scenario twice, so this test dominates the
// package's runtime).
const paritySeeds = 25

// TestWorkerParity is the parallel-executor property test: for each
// seed, running the sharded engine with 1 worker and with 4 workers
// must produce byte-identical results — the same scenario digest, the
// same executed event schedule (every fired event's merge key, in
// order), and the same quiescent FIB fingerprints. Any divergence is a
// synchronization bug: a message delivered across a horizon, a racy
// RNG draw, or state shared between domains.
func TestWorkerParity(t *testing.T) {
	seeds := int64(paritySeeds)
	if testing.Short() {
		seeds = 6
	}
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+seeds; s++ {
		one, err := Run(Options{Seed: s, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d workers=1: harness error: %v", s, err)
		}
		four, err := Run(Options{Seed: s, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d workers=4: harness error: %v", s, err)
		}
		for _, r := range []*Result{one, four} {
			if r.Failed() {
				failArtifact(r)
				t.Errorf("seed %d workers=%d: invariant violation — replay with: go test ./internal/simtest -seed %d -run TestWorkerParity\n%s",
					s, r.Workers, s, r)
			}
		}
		if one.ScheduleDigest != four.ScheduleDigest {
			failArtifact(four)
			t.Errorf("seed %d: event-schedule digest diverged: workers=1 %016x, workers=4 %016x — replay with: go test ./internal/simtest -seed %d -run TestWorkerParity",
				s, one.ScheduleDigest, four.ScheduleDigest, s)
		}
		if one.Digest != four.Digest {
			failArtifact(four)
			t.Errorf("seed %d: scenario digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.Digest, four.Digest)
		}
		if fmt.Sprint(one.FIBDigests) != fmt.Sprint(four.FIBDigests) {
			t.Errorf("seed %d: quiescent FIB fingerprints diverged:\nworkers=1: %016x\nworkers=4: %016x",
				s, one.FIBDigests, four.FIBDigests)
		}
		if one.TelemetryDigest != four.TelemetryDigest {
			failArtifact(four)
			t.Errorf("seed %d: telemetry metrics digest diverged: workers=1 %016x, workers=4 %016x — a counter was written from more than one domain, or registration happened mid-run",
				s, one.TelemetryDigest, four.TelemetryDigest)
		}
		if one.FlightDigest != four.FlightDigest {
			failArtifact(four)
			t.Errorf("seed %d: flight-recorder digest diverged: workers=1 %016x, workers=4 %016x — an event was recorded into a domain its writer does not own",
				s, one.FlightDigest, four.FlightDigest)
		}
		if one.Telemetry != four.Telemetry {
			t.Errorf("seed %d: telemetry JSON snapshots are not byte-identical (lens %d vs %d)",
				s, len(one.Telemetry), len(four.Telemetry))
		}
		if testing.Verbose() {
			t.Logf("seed %d: nodes=%d links=%d rip=%v schedule=%016x fibs=%d",
				s, one.Nodes, one.Links, one.WithRIP, one.ScheduleDigest, len(one.FIBDigests))
		}
	}
}

// TestShardedMatchesClassicInvariants: the sharded engine is a
// different deterministic baseline (domain RNG streams fork per node),
// so its digests differ from the classic loop's — but every invariant
// the classic engine satisfies must hold there too, and replaying the
// same sharded configuration must be exact.
func TestShardedReplayDeterminism(t *testing.T) {
	for s := int64(1); s <= 5; s++ {
		a, err := Run(Options{Seed: s, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		b, err := Run(Options{Seed: s, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if a.Digest != b.Digest || a.ScheduleDigest != b.ScheduleDigest {
			t.Errorf("seed %d: sharded replay diverged: digest %016x vs %016x, schedule %016x vs %016x",
				s, a.Digest, b.Digest, a.ScheduleDigest, b.ScheduleDigest)
		}
	}
}
