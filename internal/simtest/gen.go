package simtest

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/sim"
)

// genTopology draws a random connected virtual topology: a uniform
// random spanning tree over n nodes plus a few extra edges, every
// choice taken from the scenario RNG so the whole shape replays from
// the seed.
type genLink struct {
	a, b int
	cost uint32
}

func genTopology(rng *sim.RNG, n int) []genLink {
	var links []genLink
	seen := make(map[[2]int]bool)
	add := func(a, b int, cost uint32) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if seen[k] {
			return false
		}
		seen[k] = true
		links = append(links, genLink{a: a, b: b, cost: cost})
		return true
	}
	// Random attachment tree keeps every node reachable.
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i), 1+uint32(rng.Intn(10)))
	}
	// Extra edges create the alternate paths failures reroute onto.
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		add(rng.Intn(n), rng.Intn(n), 1+uint32(rng.Intn(10)))
	}
	return links
}

// scenario is one generated world: substrate, slice, mirrors of every
// virtual link, and per-node delivery counters for the traffic probes.
type scenario struct {
	opts  Options
	rng   *sim.RNG
	vini  *core.VINI
	slice *core.Slice
	nodes []string
	vnode []*core.VirtualNode
	links []genLink
	vls   []*core.VirtualLink
	// crashed marks nodes whose every incident link is failed.
	crashed []bool
	// withRIP runs RIP alongside OSPF, enabling route-flip events.
	withRIP bool
	// addrOwner maps every virtual interface and tap address to the
	// owning node index, for next-hop graph walks.
	addrOwner map[netip.Addr]int
	// delivered counts probe datagrams that reached each node's stack.
	delivered []int
	// probeSent sequences probe source ports so every probe is distinct.
	probeSent int
	res       *Result
}

// buildScenario constructs the world for a seed. Every random draw
// comes from a single RNG stream, so construction order is the replay
// discipline: never reorder these calls without a compatibility note.
func buildScenario(opts Options) (*scenario, error) {
	rng := sim.NewRNG(opts.Seed)
	n := opts.MinNodes + rng.Intn(opts.MaxNodes-opts.MinNodes+1)
	vini := core.New(opts.Seed)
	if opts.Workers > 0 {
		vini = core.NewParallel(opts.Seed, opts.Workers)
	}
	// Telemetry runs in every scenario so the worker-parity property
	// also pins the metrics registry and flight recorder byte-for-byte.
	vini.EnableTelemetry()
	sc := &scenario{
		opts:      opts,
		rng:       rng,
		vini:      vini,
		crashed:   make([]bool, n),
		addrOwner: make(map[netip.Addr]int),
		delivered: make([]int, n),
		res:       &Result{Seed: opts.Seed, Workers: opts.Workers},
	}
	prof := netem.DETERProfile()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		sc.nodes = append(sc.nodes, name)
		addr := netip.AddrFrom4([4]byte{192, 168, byte(1 + i/200), byte(1 + i%200)})
		if _, err := sc.vini.AddNode(name, addr, prof, sched.Options{}); err != nil {
			return nil, err
		}
	}
	sc.links = genTopology(rng, n)
	for _, l := range sc.links {
		if _, err := sc.vini.AddLink(netem.LinkConfig{
			A: sc.nodes[l.a], B: sc.nodes[l.b],
			Bandwidth: 1e9, Delay: time.Duration(1+rng.Intn(10)) * time.Millisecond,
		}); err != nil {
			return nil, err
		}
	}
	sc.vini.ComputeRoutes()

	s, err := sc.vini.CreateSlice(core.SliceConfig{Name: "simtest", CPUShare: 1.0})
	if err != nil {
		return nil, err
	}
	sc.slice = s
	for i, name := range sc.nodes {
		vn, err := s.AddVirtualNode(name)
		if err != nil {
			return nil, err
		}
		sc.vnode = append(sc.vnode, vn)
		sc.addrOwner[vn.TapAddr] = i
	}
	for _, l := range sc.links {
		vl, err := s.ConnectVirtual(sc.nodes[l.a], sc.nodes[l.b], l.cost)
		if err != nil {
			return nil, err
		}
		sc.vls = append(sc.vls, vl)
	}
	for i, vn := range sc.vnode {
		for _, ifc := range vn.Interfaces() {
			sc.addrOwner[ifc.Addr] = i
		}
	}
	// Every node listens for probe datagrams on its kernel stack.
	for i, vn := range sc.vnode {
		i := i
		if err := vn.Phys().StackListenUDP(probePort, func([]byte) { sc.delivered[i]++ }); err != nil {
			return nil, err
		}
	}
	sc.withRIP = rng.Bool(0.4)
	s.StartOSPF(time.Second, 3*time.Second)
	if sc.withRIP {
		s.StartRIP(5 * time.Second)
	}
	sc.res.Nodes, sc.res.Links, sc.res.WithRIP = n, len(sc.links), sc.withRIP
	return sc, nil
}

// event kinds drawn by the failure/recovery schedule.
const (
	evFailLink = iota
	evRestoreLink
	evCrashNode
	evRestoreNode
	evRouteFlip
	evKinds
)

// nextEvent mutates the world with one random failure/recovery step and
// returns its log line. It retries draws that are no-ops in the current
// state (e.g. restoring when nothing is failed).
func (sc *scenario) nextEvent() string {
	for attempt := 0; attempt < 16; attempt++ {
		switch sc.rng.Intn(evKinds) {
		case evFailLink:
			i := sc.rng.Intn(len(sc.vls))
			if sc.vls[i].Failed() {
				continue
			}
			sc.vls[i].SetFailed(true)
			return fmt.Sprintf("fail-link %s-%s", sc.nodes[sc.links[i].a], sc.nodes[sc.links[i].b])
		case evRestoreLink:
			i := sc.rng.Intn(len(sc.vls))
			l := sc.links[i]
			// Links into a crashed node stay down until the node restores.
			if !sc.vls[i].Failed() || sc.crashed[l.a] || sc.crashed[l.b] {
				continue
			}
			sc.vls[i].SetFailed(false)
			return fmt.Sprintf("restore-link %s-%s", sc.nodes[l.a], sc.nodes[l.b])
		case evCrashNode:
			i := sc.rng.Intn(len(sc.nodes))
			if sc.crashed[i] {
				continue
			}
			sc.crashed[i] = true
			for j, l := range sc.links {
				if l.a == i || l.b == i {
					sc.vls[j].SetFailed(true)
				}
			}
			return fmt.Sprintf("crash-node %s", sc.nodes[i])
		case evRestoreNode:
			i := sc.rng.Intn(len(sc.nodes))
			if !sc.crashed[i] {
				continue
			}
			sc.crashed[i] = false
			for j, l := range sc.links {
				if l.a == i || l.b == i {
					// The far end may itself be crashed.
					if sc.crashed[l.a] || sc.crashed[l.b] {
						continue
					}
					sc.vls[j].SetFailed(false)
				}
			}
			return fmt.Sprintf("restore-node %s", sc.nodes[i])
		case evRouteFlip:
			if !sc.withRIP {
				continue
			}
			proto := "rip"
			if sc.rng.Bool(0.5) {
				proto = "ospf"
			}
			sc.slice.SwitchProtocol(proto)
			return fmt.Sprintf("route-flip %s", proto)
		}
	}
	return "no-op"
}

// components labels nodes by connected component over unfailed virtual
// links — the ground truth the reachability checks compare against.
func (sc *scenario) components() []int {
	parent := make([]int, len(sc.nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, l := range sc.links {
		if !sc.vls[i].Failed() {
			parent[find(l.a)] = find(l.b)
		}
	}
	out := make([]int, len(sc.nodes))
	for i := range out {
		out[i] = find(i)
	}
	return out
}
