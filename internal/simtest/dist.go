// Distributed parity scenario: the same seeded, fixed-schedule physical
// world is built by every participating process (replicated
// construction), executed either whole (one process) or sharded across
// vinid workers, and fingerprinted. Per-domain schedule digests and the
// telemetry registry snapshot must merge byte-identically — that is the
// distributed analogue of the worker-parity property the CI matrix
// asserts in-process.
//
// The scenario is deliberately fixed-schedule (timed failures, timed
// run segments, no RunUntilStable feedback loop): quiescence probing
// reads world state between runs, which a sharded process cannot see
// for nodes it does not own.
package simtest

import (
	"fmt"
	"net/netip"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/telemetry"
	"vini/internal/traffic"
)

// DistParams selects one distributed-parity scenario. It is the
// coordinator->worker contract: vinid serializes it as JSON into the
// handshake payload so every process provably builds the same world.
type DistParams struct {
	Seed  int64 `json:"seed"`
	Nodes int   `json:"nodes"` // ring size, >= 4
	// Duration is total virtual time, run in two segments with a
	// driver-time boundary in the middle (exercising replicated
	// driver-time code under sharding).
	Duration time.Duration `json:"duration"`
	// Workers is this process's executor worker budget (execution
	// parallelism only — never affects results).
	Workers int `json:"workers"`
}

func (p *DistParams) normalize() {
	if p.Nodes < 4 {
		p.Nodes = 6
	}
	if p.Duration <= 0 {
		p.Duration = 4 * time.Second
	}
	if p.Workers < 1 {
		p.Workers = 1
	}
}

// DistResult is one process's fingerprint of the scenario.
type DistResult struct {
	// DomainDigests has one schedule digest per domain (index = domain
	// id); entries for domains this shard does not own are stale
	// replicas and must be substituted from the owner's report.
	DomainDigests []uint64
	// ScheduleDigest folds DomainDigests — the whole-world fingerprint
	// for a single-process run, meaningless for a shard.
	ScheduleDigest uint64
	// Telemetry is the registry snapshot (authoritative only for owned
	// nodes' series); TelemetryDigest folds it.
	Telemetry       []telemetry.MetricValue
	TelemetryDigest uint64
	// Delivered counts CBR packets received across all flows, a cheap
	// liveness check that traffic actually crossed shard boundaries.
	Delivered uint64
	Rounds    uint64
}

// RunDist executes the scenario as shard `shard` of `shards` joined by
// tr. Pass shards <= 1 (tr ignored) for the single-process baseline.
// The caller owns tr and closes it after the run.
func RunDist(p DistParams, tr sim.DomainTransport, shard, shards int) (*DistResult, error) {
	p.normalize()
	v := core.NewParallel(p.Seed, p.Workers)
	defer v.Close()
	v.EnableTelemetry()

	// Ring plus stride-2 chords: every node has degree 4, failures leave
	// the graph connected, and shortest paths cross shard boundaries for
	// any ownership split.
	names := make([]string, p.Nodes)
	prof := netem.DETERProfile()
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
		addr := netip.AddrFrom4([4]byte{10, 200, byte(i >> 8), byte(i & 0xff)})
		if _, err := v.AddNode(names[i], addr, prof, sched.Options{}); err != nil {
			return nil, err
		}
	}
	link := func(a, b string, delay time.Duration) error {
		_, err := v.AddLink(netem.LinkConfig{A: a, B: b, Bandwidth: 100e6,
			Delay: delay, QueueBytes: 64 << 10})
		return err
	}
	for i := range names {
		if err := link(names[i], names[(i+1)%p.Nodes], time.Millisecond); err != nil {
			return nil, err
		}
	}
	for i := 0; i < p.Nodes; i += 2 {
		if err := link(names[i], names[(i+2)%p.Nodes], 3*time.Millisecond); err != nil {
			return nil, err
		}
	}
	v.ComputeRoutes()

	if shards > 1 {
		v.Distribute(tr, shard, shards)
	}

	// CBR flows between far-apart nodes, so every packet crosses several
	// links (and, sharded, several process boundaries).
	var flows []*traffic.UDPCBR
	for i := 0; i < p.Nodes; i++ {
		src := v.Net.MustNode(names[i])
		dst := v.Net.MustNode(names[(i+p.Nodes/2)%p.Nodes])
		f, err := traffic.StartUDPCBR(v.Net, src, dst, traffic.UDPCBRConfig{
			RateBps: 2e6, Payload: 700, Port: uint16(6000 + i)})
		if err != nil {
			return nil, err
		}
		flows = append(flows, f)
	}

	// Timed failure and recovery on the control timeline (replicated on
	// every shard; the substrate IGP reroutes after 50ms).
	loop := v.Loop()
	loop.Schedule(p.Duration/4, func() {
		if err := v.FailLink(names[0], names[1], 50*time.Millisecond); err != nil {
			panic(err)
		}
	})
	loop.Schedule(3*p.Duration/4, func() {
		if err := v.RestoreLink(names[0], names[1], 50*time.Millisecond); err != nil {
			panic(err)
		}
	})

	// Two segments with a replicated driver-time boundary in between.
	if err := v.RunE(p.Duration / 2); err != nil {
		return nil, err
	}
	for _, f := range flows {
		_ = f.Sent() // replicated driver-time read of owned-or-replica state
	}
	if err := v.RunE(p.Duration); err != nil {
		return nil, err
	}
	for _, f := range flows {
		f.Stop()
	}

	res := &DistResult{
		DomainDigests: v.Executor().DomainDigests(),
		Telemetry:     v.Telemetry().Reg.Snapshot(),
		Rounds:        v.Executor().Rounds(),
	}
	res.ScheduleDigest = sim.FoldDigests(res.DomainDigests)
	res.TelemetryDigest = telemetry.DigestOf(res.Telemetry)
	for _, f := range flows {
		res.Delivered += uint64(f.Received())
	}
	return res, nil
}

// DistOwner maps a telemetry node label to its executing shard for the
// RunDist world: node p<i> is created i-th, so its domain id is i+1
// (domain 0 is the replicated control timeline). Non-node labels
// (global series) stay with the coordinator.
func DistOwner(shards int) func(node string) int {
	return func(node string) int {
		var i int
		if _, err := fmt.Sscanf(node, "p%d", &i); err != nil {
			return 0
		}
		return sim.OwnerShard(int32(i+1), shards)
	}
}

// MergeDistResults folds per-shard results (index = shard) into the
// whole-world schedule and telemetry digests, using the same owner
// mapping the executor used. results[0] must be the coordinator's
// result.
func MergeDistResults(results []*DistResult, shards int) (schedule, tel uint64, err error) {
	byShard := make([][]uint64, len(results))
	snaps := make([][]telemetry.MetricValue, len(results))
	for s, r := range results {
		if r == nil {
			return 0, 0, fmt.Errorf("simtest: missing result from shard %d", s)
		}
		byShard[s] = r.DomainDigests
		snaps[s] = r.Telemetry
	}
	schedule, err = core.MergeShardDigests(byShard, shards)
	if err != nil {
		return 0, 0, err
	}
	merged, err := telemetry.MergeSnapshots(results[0].Telemetry, DistOwner(shards), snaps)
	if err != nil {
		return 0, 0, err
	}
	return schedule, telemetry.DigestOf(merged), nil
}
