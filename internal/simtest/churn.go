package simtest

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
)

// ChurnOptions configures a slice-churn scenario: one long-lived
// substrate over which slices are repeatedly created, run, paused,
// re-embedded, and destroyed. The churn property is the lifecycle
// counterpart of the steady-state invariants in Run: after every
// teardown the substrate must be exactly as clean as before the slice
// existed — pool ledger balanced, no timers left in any domain heap,
// no telemetry series under the dead slice's label — and the whole
// schedule must replay byte-identically for any worker count.
type ChurnOptions struct {
	Seed int64
	// Rounds is the number of create/run/pause/reembed/destroy cycles
	// (default 4).
	Rounds int
	// Workers selects the execution engine, exactly as in Options.
	Workers int
}

// ChurnResult is everything one churn scenario produced.
type ChurnResult struct {
	Seed       int64
	Workers    int
	Rounds     int
	Nodes      int
	Log        []string
	Violations []string
	// Digest folds every per-round observation: slice identities,
	// quiescent FIB fingerprints, re-embedding outcomes.
	Digest uint64
	// ScheduleDigest, TelemetryDigest, FlightDigest and the Telemetry
	// JSON snapshot carry the same parity obligations as in Result.
	ScheduleDigest  uint64
	TelemetryDigest uint64
	FlightDigest    uint64
	Telemetry       string
}

// Failed reports whether any lifecycle invariant was violated.
func (r *ChurnResult) Failed() bool { return len(r.Violations) > 0 }

func (r *ChurnResult) String() string {
	s := fmt.Sprintf("churn seed=%d workers=%d rounds=%d nodes=%d digest=%016x",
		r.Seed, r.Workers, r.Rounds, r.Nodes, r.Digest)
	for _, l := range r.Log {
		s += "\n  " + l
	}
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// churnSlices is the number of concurrent slices per round; with it the
// id-recycling bound: destroyed ids must be reissued, so the id space
// never grows past the concurrency high-water mark.
const churnSlices = 2

// RunChurn executes one seeded churn scenario end to end.
func RunChurn(opts ChurnOptions) (*ChurnResult, error) {
	if opts.Rounds == 0 {
		opts.Rounds = 4
	}
	rng := sim.NewRNG(opts.Seed)
	n := 4 + rng.Intn(3)
	vini := core.New(opts.Seed)
	if opts.Workers > 0 {
		vini = core.NewParallel(opts.Seed, opts.Workers)
	}
	vini.EnableTelemetry()
	res := &ChurnResult{Seed: opts.Seed, Workers: opts.Workers,
		Rounds: opts.Rounds, Nodes: n}
	note := func(format string, args ...any) {
		res.Log = append(res.Log, fmt.Sprintf(format, args...))
	}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	prof := netem.DETERProfile()
	var nodes []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		nodes = append(nodes, name)
		addr := netip.AddrFrom4([4]byte{192, 168, 2, byte(1 + i)})
		if _, err := vini.AddNode(name, addr, prof, sched.Options{}); err != nil {
			return nil, err
		}
	}
	links := genTopology(rng, n)
	for _, l := range links {
		if _, err := vini.AddLink(netem.LinkConfig{
			A: nodes[l.a], B: nodes[l.b],
			Bandwidth: 1e9, Delay: time.Duration(1+rng.Intn(5)) * time.Millisecond,
		}); err != nil {
			return nil, err
		}
	}
	vini.ComputeRoutes()

	baseline := packet.Stats()
	loop := vini.Loop()
	digest := fnv.New64a()
	fold := func(format string, args ...any) {
		fmt.Fprintf(digest, format+"\n", args...)
	}

	for round := 0; round < opts.Rounds; round++ {
		// Create this round's slices on the running substrate.
		var slices []*core.Slice
		var vnodes [][]*core.VirtualNode
		for i := 0; i < churnSlices; i++ {
			cfg := core.SliceConfig{
				Name:     fmt.Sprintf("churn-r%d-s%d", round, i),
				CPUShare: 0.25,
				RT:       rng.Bool(0.5),
				// The first slice sees substrate failures so ReEmbed has
				// real state transitions to exercise.
				ExposePhysicalFailures: i == 0,
			}
			s, err := vini.CreateSlice(cfg)
			if err != nil {
				return nil, err
			}
			// Recycling bound: with churnSlices concurrent slices ever
			// alive, destroyed ids must be reissued rather than burned.
			if s.ID() > churnSlices {
				violate("round %d: slice id %d exceeds concurrency bound %d (ids not recycled)",
					round, s.ID(), churnSlices)
			}
			var vns []*core.VirtualNode
			for _, name := range nodes {
				vn, err := s.AddVirtualNode(name)
				if err != nil {
					return nil, err
				}
				vns = append(vns, vn)
			}
			for _, l := range links {
				if _, err := s.ConnectVirtual(nodes[l.a], nodes[l.b], l.cost); err != nil {
					return nil, err
				}
			}
			s.StartOSPF(time.Second, 3*time.Second)
			fold("round %d slice %s id=%d port=%d prefix=%s",
				round, cfg.Name, s.ID(), s.BasePort(), s.Prefix())
			slices = append(slices, s)
			vnodes = append(vnodes, vns)
		}
		note("round %d: created %d slices", round, len(slices))
		vini.Run(loop.Now() + 12*time.Second)
		for i := range slices {
			fold("round %d converged s%d fib=%016x", round, i, fibFingerprint(vnodes[i]))
		}

		// Pause one slice across the OSPF dead interval, then resume and
		// let it reconverge; the sibling slice must be undisturbed.
		paused := rng.Intn(len(slices))
		if err := slices[paused].Pause(); err != nil {
			violate("round %d: pause: %v", round, err)
		}
		vini.Run(loop.Now() + 5*time.Second)
		sibling := (paused + 1) % len(slices)
		if !reachesPeer(vnodes[sibling]) {
			violate("round %d: sibling slice lost routes while s%d was paused", round, paused)
		}
		if err := slices[paused].Resume(); err != nil {
			violate("round %d: resume: %v", round, err)
		}
		vini.Run(loop.Now() + 15*time.Second)
		if !reachesPeer(vnodes[paused]) {
			violate("round %d: slice s%d did not reconverge after resume", round, paused)
		}
		fold("round %d resumed s%d fib=%016x", round, paused, fibFingerprint(vnodes[paused]))

		// Fail one substrate link, re-embed the exposed slice around it,
		// then restore and re-embed back.
		l := links[rng.Intn(len(links))]
		if err := vini.FailLink(nodes[l.a], nodes[l.b], 100*time.Millisecond); err != nil {
			return nil, err
		}
		vini.Run(loop.Now() + 2*time.Second)
		moved, err := slices[0].ReEmbed()
		if err != nil {
			violate("round %d: reembed: %v", round, err)
		}
		vini.Run(loop.Now() + 5*time.Second)
		if err := vini.RestoreLink(nodes[l.a], nodes[l.b], 100*time.Millisecond); err != nil {
			return nil, err
		}
		vini.Run(loop.Now() + 2*time.Second)
		back, err := slices[0].ReEmbed()
		if err != nil {
			violate("round %d: reembed back: %v", round, err)
		}
		fold("round %d fail %s-%s moved=%d back=%d", round, nodes[l.a], nodes[l.b], moved, back)
		note("round %d: reembed moved %d, back %d", round, moved, back)

		// Teardown in creation order, then audit the wreckage.
		for i, s := range slices {
			name := fmt.Sprintf("churn-r%d-s%d", round, i)
			if err := s.Destroy(); err != nil {
				violate("round %d: destroy %s: %v", round, name, err)
				continue
			}
			if err := s.Audit(); err != nil {
				violate("round %d: audit %s: %v", round, name, err)
			}
			if tel := vini.Telemetry(); tel != nil {
				if live := tel.Reg.Series(name); live != 0 {
					violate("round %d: %d telemetry series survive %s", round, live, name)
				}
			}
		}
		// Drain in-flight deliveries; then the pool ledger must balance
		// and no orphaned timer may remain in any domain heap.
		vini.Run(loop.Now() + 3*time.Second)
		for i := 0; i < 40 && packet.Stats().Sub(baseline).InFlight() != 0; i++ {
			vini.Run(loop.Now() + 50*time.Millisecond)
		}
		if fl := packet.Stats().Sub(baseline).InFlight(); fl != 0 {
			violate("round %d: pool ledger unbalanced after teardown: %d in flight", round, fl)
		}
		if p := loop.Pending(); p != 0 {
			violate("round %d: %d events still pending after teardown (orphaned timers)", round, p)
		}
		fold("round %d clean pending=%d", round, loop.Pending())
	}

	for _, v := range res.Violations {
		fold("violation %s", v)
	}
	res.Digest = digest.Sum64()
	res.ScheduleDigest = vini.Executor().ScheduleDigest()
	if tel := vini.Telemetry(); tel != nil {
		res.TelemetryDigest = tel.Reg.Digest()
		res.FlightDigest = tel.Rec.Digest()
		if js, err := tel.SnapshotJSON(); err == nil {
			res.Telemetry = string(js)
		}
	}
	vini.Close()
	return res, nil
}

// reachesPeer reports whether the first virtual node holds a FIB route
// to the last one's tap — the minimal "this slice's control plane is
// alive" probe.
func reachesPeer(vns []*core.VirtualNode) bool {
	if len(vns) < 2 {
		return true
	}
	_, ok := vns[0].FIB.Lookup(vns[len(vns)-1].TapAddr)
	return ok
}
