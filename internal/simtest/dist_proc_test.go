package simtest

import (
	"encoding/json"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"vini/internal/sim"
	"vini/internal/telemetry"
)

// buildVinid compiles cmd/vinid once per test binary.
func buildVinid(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "vinid")
	cmd := exec.Command("go", "build", "-o", bin, "vini/cmd/vinid")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build vinid: %v\n%s", err, out)
	}
	return bin
}

func spawnWorkers(t *testing.T, bin, addr string, shards int, extra ...string) []*exec.Cmd {
	t.Helper()
	var procs []*exec.Cmd
	for s := 1; s < shards; s++ {
		args := append([]string{"-worker", "-connect", addr, "-shard", strconv.Itoa(s)}, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn shard %d: %v", s, err)
		}
		procs = append(procs, cmd)
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	}
	return procs
}

// TestDistParityAcrossProcesses is the acceptance property: the same
// seeded scenario runs in-process and split across vinid worker
// PROCESSES over loopback sockets, and the merged per-domain schedule
// digests and telemetry registry digest are byte-identical.
func TestDistParityAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and spawns subprocesses")
	}
	bin := buildVinid(t)
	p := DistParams{Seed: 777, Nodes: 9, Duration: 2 * time.Second, Workers: 2}
	base, err := RunDist(p, nil, 0, 1)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	const shards = 3 // coordinator in this process + 2 worker processes
	const timeout = 60 * time.Second
	payload, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	procs := spawnWorkers(t, bin, ln.Addr().String(), shards)

	coord, err := sim.AcceptWorkers(ln, shards, payload, timeout)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer coord.Close()
	own, err := RunDist(p, coord, 0, shards)
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	reports, err := coord.Gather()
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	results := make([]*DistResult, shards)
	results[0] = own
	for _, r := range reports {
		var snap []telemetry.MetricValue
		if err := json.Unmarshal(r.Payload, &snap); err != nil {
			t.Fatalf("shard %d telemetry payload: %v", r.Shard, err)
		}
		results[r.Shard] = &DistResult{DomainDigests: r.Digests, Telemetry: snap}
	}
	for _, c := range procs {
		if err := c.Wait(); err != nil {
			t.Fatalf("worker process: %v", err)
		}
	}

	sched, tel, err := MergeDistResults(results, shards)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if sched != base.ScheduleDigest {
		t.Fatalf("merged schedule digest %016x != in-process %016x", sched, base.ScheduleDigest)
	}
	if tel != base.TelemetryDigest {
		t.Fatalf("merged telemetry digest %016x != in-process %016x", tel, base.TelemetryDigest)
	}
}

// TestDistWorkerProcessDeath kills a real worker process mid-run (via
// vinid's crash-injection flag) and requires the coordinator's
// Executor.Run to surface a typed *sim.TransportError within the wire
// deadline instead of hanging.
func TestDistWorkerProcessDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and spawns subprocesses")
	}
	bin := buildVinid(t)
	p := DistParams{Seed: 13, Nodes: 6, Duration: 2 * time.Second, Workers: 1}
	const timeout = 5 * time.Second
	payload, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	spawnWorkers(t, bin, ln.Addr().String(), 2,
		"-fail-after-supersteps", "10", "-timeout", timeout.String())

	coord, err := sim.AcceptWorkers(ln, 2, payload, timeout)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer coord.Close()
	start := time.Now()
	_, err = RunDist(p, coord, 0, 2)
	if err == nil {
		t.Fatal("coordinator run succeeded despite worker crash")
	}
	var te *sim.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error %T (%v) is not *sim.TransportError", err, err)
	}
	if te.Shard != 1 {
		t.Fatalf("TransportError.Shard = %d, want 1", te.Shard)
	}
	if elapsed := time.Since(start); elapsed > 3*timeout {
		t.Fatalf("death surfaced after %v (deadline %v)", elapsed, timeout)
	}
}
