package simtest

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// migProbePort is the UDP port the migration regime's painted probes
// target (distinct from the steady-state regime's probePort so the two
// regimes can never cross-count).
const migProbePort = 40001

// MigrateOptions configures one migration scenario: a seeded substrate
// with one spare node, a slice embedded on the rest, and repeated live
// migrations under continuous traffic, substrate link flaps, and
// Pause/Resume/Destroy churn.
type MigrateOptions struct {
	Seed int64
	// Rounds is the number of migration rounds (default 4).
	Rounds int
	// Workers selects the execution engine, exactly as in Options.
	Workers int
	// Sabotage disables duplicate suppression on every shadow — the
	// mutation hook proving the exactly-once checker has teeth. A
	// sabotaged run MUST report duplicate-delivery violations.
	Sabotage bool
}

// MigrateResult is everything one migration scenario produced. Every
// probe is painted with its round number and tracked per (destination,
// sequence), so loss and duplication are attributable to the exact
// in-flight packet, not just aggregate counters.
type MigrateResult struct {
	Seed    int64
	Workers int
	Rounds  int
	Nodes   int
	// Sent/Delivered/Duplicates aggregate the painted-probe ledger:
	// Delivered counts probes that arrived at least once, Duplicates
	// those that arrived more than once (must be 0).
	Sent, Delivered, Duplicates int
	Log                         []string
	Violations                  []string
	// Digest folds every per-round observation (op, migration phase,
	// clone counts, probe ledger, FIB fingerprints); the remaining
	// digests carry the same worker-parity obligations as in Result.
	Digest          uint64
	ScheduleDigest  uint64
	TelemetryDigest uint64
	FlightDigest    uint64
	Telemetry       string
}

// Failed reports whether any migration invariant was violated.
func (r *MigrateResult) Failed() bool { return len(r.Violations) > 0 }

func (r *MigrateResult) String() string {
	s := fmt.Sprintf("migrate seed=%d workers=%d rounds=%d nodes=%d sent=%d delivered=%d dups=%d digest=%016x",
		r.Seed, r.Workers, r.Rounds, r.Nodes, r.Sent, r.Delivered, r.Duplicates, r.Digest)
	for _, l := range r.Log {
		s += "\n  " + l
	}
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// migWorld is one generated migration scenario: the substrate, the
// slice under test, the rotating spare node, and the painted-probe
// delivery ledger.
type migWorld struct {
	opts     MigrateOptions
	rng      *sim.RNG
	vini     *core.VINI
	slice    *core.Slice
	name     string // current slice name (changes across destroy/rebuild)
	nodes    []string
	subLinks []genLink
	members  []string // phys nodes currently hosting the slice
	spare    string   // the one free phys node, rotated by migrations
	vlinks   []genLink
	// tap maps each member to its vnode's tap address (the address is
	// the vnode's identity and survives migration).
	tap map[string]netip.Addr
	// delivered is the painted-probe ledger: per-node maps from probe
	// key to delivery count. Each physical node's stack listener writes
	// only its own map (listeners run on the node's time domain under
	// the sharded executor), and the driver merges them at barriers —
	// the same single-writer discipline as scenario.delivered.
	delivered []map[string]uint32
	seq       uint32
	res       *MigrateResult
}

// RunMigrate executes one seeded migration scenario end to end. Like
// Run, it returns an error only for harness bugs; every system-under-
// test failure lands in Result.Violations.
func RunMigrate(opts MigrateOptions) (*MigrateResult, error) {
	if opts.Rounds == 0 {
		opts.Rounds = 4
	}
	rng := sim.NewRNG(opts.Seed)
	n := 4 + rng.Intn(3)
	vini := core.New(opts.Seed)
	if opts.Workers > 0 {
		vini = core.NewParallel(opts.Seed, opts.Workers)
	}
	vini.EnableTelemetry()
	w := &migWorld{
		opts: opts, rng: rng, vini: vini,
		delivered: make([]map[string]uint32, n),
		res: &MigrateResult{Seed: opts.Seed, Workers: opts.Workers,
			Rounds: opts.Rounds, Nodes: n},
	}
	prof := netem.DETERProfile()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		w.nodes = append(w.nodes, name)
		addr := netip.AddrFrom4([4]byte{192, 168, 3, byte(1 + i)})
		if _, err := vini.AddNode(name, addr, prof, sched.Options{}); err != nil {
			return nil, err
		}
	}
	w.subLinks = genTopology(rng, n)
	for _, l := range w.subLinks {
		if _, err := vini.AddLink(netem.LinkConfig{
			A: w.nodes[l.a], B: w.nodes[l.b],
			Bandwidth: 1e9, Delay: time.Duration(1+rng.Intn(5)) * time.Millisecond,
		}); err != nil {
			return nil, err
		}
	}
	vini.ComputeRoutes()
	w.members = append([]string(nil), w.nodes[:n-1]...)
	w.spare = w.nodes[n-1]
	w.vlinks = genTopology(rng, n-1)
	// Every physical node — including the spare — listens for painted
	// probes, so a duplicate surfacing anywhere is counted.
	for i, name := range w.nodes {
		w.delivered[i] = make(map[string]uint32)
		ledger := w.delivered[i]
		node, _ := vini.Net.Node(name)
		if err := node.StackListenUDP(migProbePort, func(d []byte) {
			if k, ok := probeKey(d); ok {
				ledger[k]++
			}
		}); err != nil {
			return nil, err
		}
	}

	baseline := packet.Stats()
	if err := w.buildSlice("mig0"); err != nil {
		return nil, err
	}
	w.stable()

	digest := fnv.New64a()
	fold := func(format string, args ...any) {
		fmt.Fprintf(digest, format+"\n", args...)
	}
	note := func(format string, args ...any) {
		w.res.Log = append(w.res.Log, fmt.Sprintf(format, args...))
	}

	for round := 0; round < opts.Rounds; round++ {
		// Round 0 is always a clean migration so every seed exercises
		// the double-delivery window (and the sabotage arm has a target).
		op := 0
		if round > 0 {
			switch d := rng.Intn(8); {
			case d < 4:
				op = 0
			case d < 6:
				op = 1
			case d == 6:
				op = 2
			default:
				op = 3
			}
		}
		var err error
		var line string
		switch op {
		case 0:
			line, err = w.roundMigrate(round, baseline, false, fold)
		case 1:
			line, err = w.roundMigrate(round, baseline, true, fold)
		case 2:
			line, err = w.roundPauseAbort(round, baseline, fold)
		case 3:
			line, err = w.roundPauseDestroy(round, baseline, fold)
		}
		if err != nil {
			return nil, fmt.Errorf("seed %d round %d: %w", opts.Seed, round, err)
		}
		note("round %d: %s", round, line)
		fold("round %d %s fib=%016x", round, line, w.fingerprint())
	}

	// Final teardown: the substrate must come out exactly as clean as it
	// went in.
	if err := w.slice.Destroy(); err != nil {
		w.violate("final destroy: %v", err)
	}
	if err := w.slice.Audit(); err != nil {
		w.violate("final audit: %v", err)
	}
	loop := vini.Loop()
	vini.Run(loop.Now() + 3*time.Second)
	for i := 0; i < 40 && packet.Stats().Sub(baseline).InFlight() != 0; i++ {
		vini.Run(loop.Now() + 50*time.Millisecond)
	}
	w.res.Violations = append(w.res.Violations, checkConservation(baseline, "final teardown")...)
	if p := loop.Pending(); p != 0 {
		w.violate("%d events still pending after final teardown (orphaned migration timers)", p)
	}

	for _, v := range w.res.Violations {
		fold("violation %s", v)
	}
	w.res.Digest = digest.Sum64()
	w.res.ScheduleDigest = vini.Executor().ScheduleDigest()
	if tel := vini.Telemetry(); tel != nil {
		w.res.TelemetryDigest = tel.Reg.Digest()
		w.res.FlightDigest = tel.Rec.Digest()
		if js, err := tel.SnapshotJSON(); err == nil {
			w.res.Telemetry = string(js)
		}
	}
	vini.Close()
	return w.res, nil
}

// roundMigrate is the core arm: continuous painted traffic through (and
// to) the migrating vnode across the whole window, with zero loss and
// exactly-once delivery demanded afterwards. With flap set, a substrate
// link fails mid-window and restores after the retirement — loss is
// then legitimate (packets die on the dead physical link) but
// duplicates and ledger imbalance still are not.
func (w *migWorld) roundMigrate(round int, baseline packet.PoolStats, flap bool,
	fold func(string, ...any)) (string, error) {
	victimIdx := w.rng.Intn(len(w.members))
	victim := w.members[victimIdx]
	target := w.spare
	var keys []string
	paint := byte(round)
	for i := 0; i < 3; i++ {
		w.step(&keys, "", paint)
	}
	migStart := w.vini.Loop().Now()
	m, err := w.slice.Migrate(victim, target, core.MigrateOptions{
		Window: 800 * time.Millisecond, Drain: 400 * time.Millisecond})
	if err != nil {
		return "", fmt.Errorf("migrate %s->%s: %w", victim, target, err)
	}
	if w.opts.Sabotage {
		m.Shadow().BreakDupSuppressionForTest()
	}
	var failed *genLink
	for i := 0; i < 16; i++ {
		if flap && i == 2 {
			l := w.subLinks[w.rng.Intn(len(w.subLinks))]
			failed = &l
			if err := w.vini.FailLink(w.nodes[l.a], w.nodes[l.b], 100*time.Millisecond); err != nil {
				return "", err
			}
		}
		w.step(&keys, victim, paint)
	}
	w.vini.Run(w.vini.Loop().Now() + 2*time.Second)
	if m.Phase() != core.MigDone {
		w.violate("round %d: migration %s->%s stuck in %s", round, victim, target, m.Phase())
	}
	clones, drops := m.ClonesSent(), m.CloneDrops()
	if clones == 0 {
		w.violate("round %d: no clones sent — the double-delivery window never carried traffic", round)
	}
	if failed != nil {
		if err := w.vini.RestoreLink(w.nodes[failed.a], w.nodes[failed.b], 100*time.Millisecond); err != nil {
			return "", err
		}
	}
	// Rotate: the vacated node is the next spare.
	w.members[victimIdx] = target
	w.tap[target] = w.tap[victim]
	delete(w.tap, victim)
	w.spare = victim
	w.stable()
	// Bounded control-plane disruption: a clean migration transplants
	// OSPF state, so no neighbor FSM transition may occur anywhere.
	if !flap {
		if nev := w.neighborEventsSince(migStart); nev != 0 {
			w.violate("round %d: %d OSPF neighbor transitions during a clean migration (adjacencies reset)",
				round, nev)
		}
	}
	w.checkRound(round, baseline, keys, !flap)
	if err := w.slice.Audit(); err != nil {
		w.violate("round %d: audit: %v", round, err)
	}
	op := "migrate"
	if flap {
		op = "migrate+flap"
	}
	fold("%s %s->%s clones=%d drops=%d", op, victim, target, clones, drops)
	return fmt.Sprintf("%s %s->%s probes=%d clones=%d", op, victim, target, len(keys), clones), nil
}

// roundPauseAbort drives Pause into the double-delivery window: the
// migration must abort, the shadow's handles must all drop, and after
// Resume the old instance must still forward with exactly-once
// delivery.
func (w *migWorld) roundPauseAbort(round int, baseline packet.PoolStats,
	fold func(string, ...any)) (string, error) {
	victim := w.members[w.rng.Intn(len(w.members))]
	target := w.spare
	var keys []string
	paint := byte(round)
	for i := 0; i < 2; i++ {
		w.step(&keys, "", paint)
	}
	m, err := w.slice.Migrate(victim, target, core.MigrateOptions{
		Window: 5 * time.Second, Drain: 400 * time.Millisecond})
	if err != nil {
		return "", fmt.Errorf("migrate %s->%s: %w", victim, target, err)
	}
	for i := 0; i < 4; i++ {
		w.step(&keys, victim, paint)
	}
	w.vini.Run(w.vini.Loop().Now() + time.Second) // drain in-flight probes
	if err := w.slice.Pause(); err != nil {
		w.violate("round %d: pause mid-migration: %v", round, err)
	}
	if m.Phase() != core.MigAborted {
		w.violate("round %d: pause left migration in %s, want Aborted", round, m.Phase())
	}
	if node, ok := w.vini.Net.Node(target); ok && node.HasAddr(w.tap[victim]) {
		w.violate("round %d: aborted shadow still answers for %v on %s", round, w.tap[victim], target)
	}
	if err := w.slice.Audit(); err != nil {
		w.violate("round %d: audit after abort: %v", round, err)
	}
	w.vini.Run(w.vini.Loop().Now() + time.Second)
	if err := w.slice.Resume(); err != nil {
		w.violate("round %d: resume after abort: %v", round, err)
	}
	w.stable()
	for i := 0; i < 4; i++ {
		w.step(&keys, "", paint)
	}
	// The stale cutover timer (scheduled for the 5s window) must be
	// inert; run past it before judging the ledger.
	w.vini.Run(w.vini.Loop().Now() + 6*time.Second)
	w.checkRound(round, baseline, keys, true)
	fold("pause-abort %s->%s", victim, target)
	return fmt.Sprintf("pause-abort %s->%s probes=%d", victim, target, len(keys)), nil
}

// roundPauseDestroy is the Pause -> Destroy interleaving: destroying a
// slice whose migration was aborted by the pause must release every
// shadow handle, retire every telemetry series, and leave no orphaned
// timers; the arm then rebuilds the slice so later rounds keep running.
func (w *migWorld) roundPauseDestroy(round int, baseline packet.PoolStats,
	fold func(string, ...any)) (string, error) {
	victim := w.members[w.rng.Intn(len(w.members))]
	target := w.spare
	var keys []string
	paint := byte(round)
	for i := 0; i < 2; i++ {
		w.step(&keys, "", paint)
	}
	m, err := w.slice.Migrate(victim, target, core.MigrateOptions{
		Window: 5 * time.Second, Drain: 400 * time.Millisecond})
	if err != nil {
		return "", fmt.Errorf("migrate %s->%s: %w", victim, target, err)
	}
	for i := 0; i < 3; i++ {
		w.step(&keys, victim, paint)
	}
	w.vini.Run(w.vini.Loop().Now() + time.Second) // drain in-flight probes
	if err := w.slice.Pause(); err != nil {
		w.violate("round %d: pause mid-migration: %v", round, err)
	}
	if m.Phase() != core.MigAborted {
		w.violate("round %d: pause left migration in %s, want Aborted", round, m.Phase())
	}
	oldName := w.name
	if err := w.slice.Destroy(); err != nil {
		w.violate("round %d: destroy paused mid-migration slice: %v", round, err)
	}
	if err := w.slice.Audit(); err != nil {
		w.violate("round %d: audit after destroy: %v", round, err)
	}
	if node, ok := w.vini.Net.Node(target); ok && node.HasAddr(w.tap[victim]) {
		w.violate("round %d: destroyed shadow still answers for %v on %s", round, w.tap[victim], target)
	}
	if tel := w.vini.Telemetry(); tel != nil {
		if live := tel.Reg.Series(oldName); live != 0 {
			w.violate("round %d: %d telemetry series survive destroyed slice %s", round, live, oldName)
		}
	}
	loop := w.vini.Loop()
	w.vini.Run(loop.Now() + 6*time.Second) // past the stale cutover timer
	for i := 0; i < 40 && packet.Stats().Sub(baseline).InFlight() != 0; i++ {
		w.vini.Run(loop.Now() + 50*time.Millisecond)
	}
	w.res.Violations = append(w.res.Violations,
		checkConservation(baseline, fmt.Sprintf("round %d destroy", round))...)
	if p := loop.Pending(); p != 0 {
		w.violate("round %d: %d events pending after mid-migration destroy (orphaned timers)", round, p)
	}
	// Rebuild on the same members so later rounds have a slice to move.
	if err := w.buildSlice(fmt.Sprintf("mig%d", round+1)); err != nil {
		return "", err
	}
	w.stable()
	w.checkRound(round, baseline, keys, true)
	fold("pause-destroy %s->%s rebuilt=%s", victim, target, w.name)
	return fmt.Sprintf("pause-destroy %s->%s probes=%d rebuilt=%s", victim, target, len(keys), w.name), nil
}

// buildSlice embeds the slice on the current members and starts OSPF.
func (w *migWorld) buildSlice(name string) error {
	s, err := w.vini.CreateSlice(core.SliceConfig{Name: name, CPUShare: 0.5, RT: true})
	if err != nil {
		return err
	}
	for _, m := range w.members {
		if _, err := s.AddVirtualNode(m); err != nil {
			return err
		}
	}
	for _, l := range w.vlinks {
		if _, err := s.ConnectVirtual(w.members[l.a], w.members[l.b], l.cost); err != nil {
			return err
		}
	}
	s.StartOSPF(time.Second, 3*time.Second)
	w.slice, w.name = s, name
	w.tap = make(map[string]netip.Addr)
	for _, m := range w.members {
		vn, _ := s.VirtualNode(m)
		w.tap[m] = vn.TapAddr
	}
	return nil
}

// step injects one painted traffic slice: two random member-to-member
// probes plus — while a migration is in flight (victim non-empty) — one
// probe pinned at the migrating vnode itself, then advances 100ms.
// The victim is never a source (its tap capture dies at retirement
// mid-burst) but always remains a destination: its tap address is
// exactly what must survive the move.
func (w *migWorld) step(keys *[]string, victim string, paint byte) {
	avoid := func(i int) int {
		if victim != "" && w.members[i] == victim {
			return (i + 1) % len(w.members)
		}
		return i
	}
	for k := 0; k < 2; k++ {
		si := avoid(w.rng.Intn(len(w.members)))
		di := w.rng.Intn(len(w.members))
		if di == si {
			di = (di + 1) % len(w.members)
		}
		w.send(w.members[si], w.tap[w.members[di]], keys, paint)
	}
	if victim != "" {
		si := avoid(w.rng.Intn(len(w.members)))
		w.send(w.members[si], w.tap[victim], keys, paint)
	}
	w.vini.Run(w.vini.Loop().Now() + 100*time.Millisecond)
}

// send paints and injects one probe from src's kernel stack into the
// overlay and records its ledger key.
func (w *migWorld) send(src string, dst netip.Addr, keys *[]string, paint byte) {
	vn, ok := w.slice.VirtualNode(src)
	if !ok {
		return
	}
	w.seq++
	var pay [5]byte
	binary.BigEndian.PutUint32(pay[:4], w.seq)
	pay[4] = paint
	vn.Phys().StackSend(packet.BuildUDP(vn.TapAddr, dst,
		uint16(41000+w.seq%1000), migProbePort, 64, pay[:]))
	*keys = append(*keys, fmt.Sprintf("%s#%d", dst, w.seq))
}

// probeKey attributes a delivered probe datagram back to its ledger key.
func probeKey(d []byte) (string, bool) {
	var ip packet.IPv4
	seg, err := ip.Parse(d)
	if err != nil {
		return "", false
	}
	var u packet.UDP
	pay, err := u.Parse(seg)
	if err != nil || len(pay) < 5 {
		return "", false
	}
	return fmt.Sprintf("%s#%d", ip.Dst, binary.BigEndian.Uint32(pay[:4])), true
}

// deliveries merges the per-node ledgers for one probe key. Driver-time
// only (barrier).
func (w *migWorld) deliveries(k string) uint32 {
	var n uint32
	for _, m := range w.delivered {
		n += m[k]
	}
	return n
}

// checkRound settles the pool ledger and then judges this round's
// painted probes: exactly-once when lossless, at-most-once always.
func (w *migWorld) checkRound(round int, baseline packet.PoolStats, keys []string, lossless bool) {
	loop := w.vini.Loop()
	for i := 0; i < 40 && packet.Stats().Sub(baseline).InFlight() != 0; i++ {
		w.vini.Run(loop.Now() + 50*time.Millisecond)
	}
	w.res.Violations = append(w.res.Violations,
		checkConservation(baseline, fmt.Sprintf("round %d", round))...)
	losses, dups := 0, 0
	for _, k := range keys {
		switch c := w.deliveries(k); {
		case c == 0:
			if lossless {
				losses++
				if losses <= 5 {
					w.violate("round %d: probe %s lost in flight", round, k)
				}
			}
		case c > 1:
			dups++
			if dups <= 5 {
				w.violate("round %d: probe %s delivered %d times (duplicate leaked past cutover)",
					round, k, c)
			}
			w.res.Delivered++
		default:
			w.res.Delivered++
		}
	}
	if losses > 5 {
		w.violate("round %d: ... %d probes lost in total", round, losses)
	}
	if dups > 5 {
		w.violate("round %d: ... %d duplicated probes in total", round, dups)
	}
	w.res.Sent += len(keys)
	w.res.Duplicates += dups
}

// stable runs the loop until every member FIB's contents stop changing.
func (w *migWorld) stable() {
	w.vini.Loop().RunUntilStable(time.Second, 120*time.Second, 5, w.fingerprint)
}

// fingerprint hashes the FIBs of the current members, in member order.
func (w *migWorld) fingerprint() uint64 {
	var vns []*core.VirtualNode
	for _, m := range w.members {
		if vn, ok := w.slice.VirtualNode(m); ok {
			vns = append(vns, vn)
		}
	}
	return fibFingerprint(vns)
}

// neighborEventsSince counts OSPF neighbor FSM transitions recorded at
// or after the given instant — the convergence-timeline measure of
// control-plane disruption.
func (w *migWorld) neighborEventsSince(since time.Duration) int {
	tel := w.vini.Telemetry()
	if tel == nil {
		return 0
	}
	n := 0
	for _, ev := range tel.Rec.Events() {
		if ev.Kind == telemetry.EvNeighbor && ev.At >= since {
			n++
		}
	}
	return n
}

func (w *migWorld) violate(format string, args ...any) {
	w.res.Violations = append(w.res.Violations, fmt.Sprintf(format, args...))
}
