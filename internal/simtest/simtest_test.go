package simtest

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"
)

var (
	flagSeeds = flag.Int("seeds", 25, "number of seeded scenarios to explore")
	flagSeed  = flag.Int64("seed", -1, "replay exactly one scenario seed")
)

// failArtifact appends a failing seed to the file named by
// SIMTEST_FAIL_FILE (set in CI) so the artifact survives the run.
func failArtifact(r *Result) {
	path := os.Getenv("SIMTEST_FAIL_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", r)
}

// TestScenarios is the harness entry point: it explores -seeds seeded
// scenarios (or exactly one with -seed N) and fails on any invariant
// violation, printing the seed that reproduces it.
func TestScenarios(t *testing.T) {
	seeds := *flagSeeds
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+int64(seeds); s++ {
		r, err := Run(Options{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", s, err)
		}
		if r.Failed() {
			failArtifact(r)
			t.Errorf("invariant violation — replay with: go test ./internal/simtest -seed %d -run TestScenarios\n%s", s, r)
		}
		if testing.Verbose() {
			t.Logf("seed %d: nodes=%d links=%d rip=%v events=%d reconv=%v digest=%016x",
				s, r.Nodes, r.Links, r.WithRIP, len(r.EventLog), r.Reconvergences, r.Digest)
		}
	}
}

// TestReplayDeterminism runs the same seeds twice and demands
// byte-identical digests: the digest covers the event schedule, every
// quiescent FIB fingerprint, and every violation, so equality means
// the whole run replays exactly.
func TestReplayDeterminism(t *testing.T) {
	for s := int64(1); s <= 5; s++ {
		a, err := Run(Options{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		b, err := Run(Options{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if a.Digest != b.Digest {
			t.Errorf("seed %d: replay diverged: %016x vs %016x\nfirst:\n%s\nsecond:\n%s",
				s, a.Digest, b.Digest, a, b)
		}
		if fmt.Sprint(a.EventLog) != fmt.Sprint(b.EventLog) {
			t.Errorf("seed %d: event logs diverged:\n%v\n%v", s, a.EventLog, b.EventLog)
		}
	}
}

// TestDistinctSeedsDiverge is the generator sanity check: different
// seeds must explore different worlds.
func TestDistinctSeedsDiverge(t *testing.T) {
	digests := map[uint64]int64{}
	same := 0
	for s := int64(1); s <= 8; s++ {
		r, err := Run(Options{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if _, dup := digests[r.Digest]; dup {
			same++
		}
		digests[r.Digest] = s
	}
	if same > 0 {
		t.Errorf("%d of 8 seeds produced duplicate digests — generator is not consuming the seed", same)
	}
}

// TestReconvergenceBounded checks invariant 4's reporting path: every
// recorded reconvergence must be finite and under the budget.
func TestReconvergenceBounded(t *testing.T) {
	r, err := Run(Options{Seed: 7, Events: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("seed 7 violated invariants:\n%s", r)
	}
	if len(r.Reconvergences) != 4 {
		t.Fatalf("expected 4 reconvergence samples, got %d", len(r.Reconvergences))
	}
	for i, d := range r.Reconvergences {
		if d < 0 || d > 300*time.Second {
			t.Errorf("event %d: reconvergence %v out of bounds", i, d)
		}
	}
}

// --- mutation tests: each one injects a fault the harness must catch ---

// TestCatchesCompiledFIBMutation poisons one node's compiled FIB (via
// the fib package's test-only hook) and demands the differential
// oracle reports it.
func TestCatchesCompiledFIBMutation(t *testing.T) {
	sc, err := buildScenario(Options{Seed: 3, MinNodes: 4, MaxNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.stable(time.Second, 300*time.Second, settleFor(sc)); !ok {
		t.Fatal("did not converge")
	}
	if v := sc.checkLoops(); len(v) != 0 {
		t.Fatalf("clean scenario reported loop violations: %v", v)
	}
	sc.vnode[1].FIB.CorruptCompiledForTest()
	sample := sc.addrSample()
	var all []string
	for i := range sc.vnode {
		all = append(all, sc.checkConsistency(i, sample)...)
	}
	if len(all) == 0 {
		t.Fatal("compiled-FIB mutation went undetected by the differential oracle")
	}
	t.Logf("caught: %v", all[0])
}

// TestCatchesPacketLeak takes a pooled packet and never releases it;
// the conservation checker must flag exactly that.
func TestCatchesPacketLeak(t *testing.T) {
	sc, err := buildScenario(Options{Seed: 5, MinNodes: 3, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.stable(time.Second, 300*time.Second, settleFor(sc)); !ok {
		t.Fatal("did not converge")
	}
	baseline := takeBaselineForTest()
	leakPacketForTest() // Get() with no Release/Escape
	v := sc.settleConservation(baseline)
	if len(v) == 0 {
		t.Fatal("leaked packet went undetected by the conservation checker")
	}
	t.Logf("caught: %v", v[0])
}

// TestCatchesForwardingLoop installs a two-node routing loop for a
// bogus destination straight into the FIBs and demands the loop walker
// reports it.
func TestCatchesForwardingLoop(t *testing.T) {
	sc, err := buildScenario(Options{Seed: 11, MinNodes: 4, MaxNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.stable(time.Second, 300*time.Second, settleFor(sc)); !ok {
		t.Fatal("did not converge")
	}
	if v := sc.checkLoops(); len(v) != 0 {
		t.Fatalf("clean scenario reported loop violations: %v", v)
	}
	// Point n0's route for n1's tap back through a next hop owned by
	// n0 itself is impossible; instead aim n0 -> n1 and n1 -> n0 for
	// the same destination: n2's tap.
	dst := sc.vnode[2].TapAddr
	installLoopForTest(sc, 0, 1, dst)
	v := sc.checkLoops()
	found := false
	for _, s := range v {
		if containsLoop(s) {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected forwarding loop went undetected; got %v", v)
	}
	t.Logf("caught: %v", v)
}

func containsLoop(s string) bool {
	return len(s) >= len("forwarding loop") && s[:len("forwarding loop")] == "forwarding loop"
}

func settleFor(sc *scenario) int {
	if sc.withRIP {
		return 36
	}
	return 5
}
