package simtest

import (
	"fmt"
	"os"
	"testing"
)

// scaleFailArtifact mirrors failArtifact for scale results.
func scaleFailArtifact(r *ScaleResult) {
	path := os.Getenv("SIMTEST_FAIL_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", r)
}

// TestScaleScenario runs the pinned scale regime on the classic engine:
// 200 slices — well past the old 126-slice ceiling — embedded on a
// 64-node synthetic REPETITA substrate, converged, flapped, loaded with
// demand traffic, churned, and audited. -short trims to 24 nodes / 60
// slices (still compiled against the sized-allocation path).
func TestScaleScenario(t *testing.T) {
	opts := ScaleOptions{Seed: 2}
	if testing.Short() {
		opts.Nodes, opts.Slices = 24, 60
	}
	if *flagSeed >= 0 {
		opts.Seed = *flagSeed
	}
	r, err := RunScale(opts)
	if err != nil {
		t.Fatalf("seed %d: harness error: %v", opts.Seed, err)
	}
	if r.Failed() {
		scaleFailArtifact(r)
		t.Fatalf("seed %d: invariant violation — replay with: go test ./internal/simtest -seed %d -run TestScaleScenario\n%s",
			opts.Seed, opts.Seed, r)
	}
	if r.Slices < 127 && !testing.Short() {
		t.Fatalf("scale scenario ran only %d slices; the point is to exceed the old 126 ceiling", r.Slices)
	}
	if testing.Verbose() {
		t.Logf("seed %d: %d slices / %d vnodes on %d nodes, %d events, %d/%d delivered (build %.2fs, run %.2fs)",
			r.Seed, r.Slices, r.VNodes, r.Nodes, r.Events, r.Delivered, r.Sent, r.BuildSeconds, r.RunSeconds)
	}
}

// TestScaleWorkerParity extends the worker-parity property to the scale
// regime: the seeded 64-node / 200-slice scenario must produce
// byte-identical digests — scenario, event schedule, telemetry
// registry, flight recorder, and the full JSON snapshot — at 1, 2, and
// 4 workers. At this scale every divergence class the small-topology
// parity test hunts (cross-horizon delivery, racy RNG draws, shared
// state between domains) has hundreds of chances per run to show up.
func TestScaleWorkerParity(t *testing.T) {
	seed := int64(11)
	if *flagSeed >= 0 {
		seed = *flagSeed
	}
	var first *ScaleResult
	for _, w := range []int{1, 2, 4} {
		r, err := RunScale(ScaleOptions{Seed: seed, Workers: w})
		if err != nil {
			t.Fatalf("seed %d workers=%d: harness error: %v", seed, w, err)
		}
		if r.Failed() {
			scaleFailArtifact(r)
			t.Fatalf("seed %d workers=%d: invariant violation — replay with: go test ./internal/simtest -seed %d -run TestScaleWorkerParity\n%s",
				seed, w, seed, r)
		}
		if testing.Verbose() {
			t.Logf("seed %d workers=%d: events=%d sent=%d digest=%016x schedule=%016x",
				seed, w, r.Events, r.Sent, r.Digest, r.ScheduleDigest)
		}
		if first == nil {
			first = r
			continue
		}
		if r.ScheduleDigest != first.ScheduleDigest {
			scaleFailArtifact(r)
			t.Errorf("seed %d: event-schedule digest diverged: workers=%d %016x, workers=%d %016x — replay with: go test ./internal/simtest -seed %d -run TestScaleWorkerParity",
				seed, first.Workers, first.ScheduleDigest, w, r.ScheduleDigest, seed)
		}
		if r.Digest != first.Digest {
			scaleFailArtifact(r)
			t.Errorf("seed %d: scenario digest diverged: workers=%d %016x, workers=%d %016x",
				seed, first.Workers, first.Digest, w, r.Digest)
		}
		if r.TelemetryDigest != first.TelemetryDigest {
			scaleFailArtifact(r)
			t.Errorf("seed %d: telemetry metrics digest diverged: workers=%d %016x, workers=%d %016x",
				seed, first.Workers, first.TelemetryDigest, w, r.TelemetryDigest)
		}
		if r.FlightDigest != first.FlightDigest {
			scaleFailArtifact(r)
			t.Errorf("seed %d: flight-recorder digest diverged: workers=%d %016x, workers=%d %016x",
				seed, first.Workers, first.FlightDigest, w, r.FlightDigest)
		}
		if r.Telemetry != first.Telemetry {
			t.Errorf("seed %d: telemetry JSON snapshots are not byte-identical (lens %d vs %d)",
				seed, len(first.Telemetry), len(r.Telemetry))
		}
		if r.Sent != first.Sent || r.Delivered != first.Delivered {
			t.Errorf("seed %d: traffic counts diverged: workers=%d %d/%d, workers=%d %d/%d",
				seed, first.Workers, first.Delivered, first.Sent, w, r.Delivered, r.Sent)
		}
	}
}
