package simtest

// The adaptive regime drives traffic.Adaptive — the delay-gradient
// bandwidth estimator — through everything that changes a path's
// available bandwidth: competing CBR cross-traffic carried by a slice
// overlay, Pause/Resume churn on that overlay, and a physical link flap
// that reroutes the flow onto a slower alternate path. After each
// quiescent point the estimate must have converged into a band around
// the true available bandwidth, the rate must never run away above it,
// and teardown must leave the world exactly as clean as churn demands:
// balanced pool ledger, zero stack registrations beyond the baseline,
// empty domain heaps — byte-identically for any worker count.

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/traffic"
)

// AdaptiveOptions configures one seeded adaptive-controller scenario.
type AdaptiveOptions struct {
	Seed int64
	// Workers selects the execution engine, exactly as in Options.
	Workers int
	// DisableOveruse sabotages the controller's over-use detector — the
	// mutation check: with it set, the convergence invariant must trip.
	DisableOveruse bool
}

// AdaptivePhase is one quiescent measurement point.
type AdaptivePhase struct {
	Name string
	// AvailBps is the true available bandwidth for the flow.
	AvailBps float64
	// EstimateBps is the controller's estimate at the quiescent point.
	EstimateBps float64
	// DeliveredBps is the measured delivery rate over the phase.
	DeliveredBps float64
}

// AdaptiveResult is everything one scenario produced.
type AdaptiveResult struct {
	Seed          int64
	Workers       int
	BottleneckBps float64
	AltBps        float64
	CrossBps      float64
	Phases        []AdaptivePhase
	Log           []string
	Violations    []string
	// Digest folds the phase observations (float state via exact bits).
	Digest uint64
	// ScheduleDigest, TelemetryDigest, FlightDigest and the Telemetry
	// JSON snapshot carry the same parity obligations as in Result.
	ScheduleDigest  uint64
	TelemetryDigest uint64
	FlightDigest    uint64
	Telemetry       string
	// TracePoints counts sender-side controller updates.
	TracePoints int
	// Events counts fired executor events; RunSeconds is wall-clock
	// spend (diagnostic only — never folded into digests).
	Events     uint64
	RunSeconds float64
}

// Failed reports whether any invariant was violated.
func (r *AdaptiveResult) Failed() bool { return len(r.Violations) > 0 }

func (r *AdaptiveResult) String() string {
	s := fmt.Sprintf("adaptive seed=%d workers=%d bottleneck=%.0f digest=%016x",
		r.Seed, r.Workers, r.BottleneckBps, r.Digest)
	for _, l := range r.Log {
		s += "\n  " + l
	}
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// Convergence band: after a quiescent window the estimate must sit
// within [adaptiveLo, adaptiveHi] × available bandwidth. The lower edge
// leaves room for AIMD sawtooth bottoms; the upper edge leaves room for
// the additive-increase cap (1.25 × delivered) sampled mid-sawtooth.
// adaptiveRunaway bounds the peak estimate over the whole run — the
// open-loop blowup the mutation check must trip.
const (
	adaptiveLo      = 0.45
	adaptiveHi      = 1.30
	adaptiveRunaway = 1.35
)

// RunAdaptive executes one seeded adaptive scenario end to end.
func RunAdaptive(opts AdaptiveOptions) (*AdaptiveResult, error) {
	wallStart := time.Now()
	rng := sim.NewRNG(opts.Seed)
	vini := core.New(opts.Seed)
	if opts.Workers > 0 {
		vini = core.NewParallel(opts.Seed, opts.Workers)
	}
	vini.EnableTelemetry()
	res := &AdaptiveResult{Seed: opts.Seed, Workers: opts.Workers}
	note := func(format string, args ...any) {
		res.Log = append(res.Log, fmt.Sprintf(format, args...))
	}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	digest := fnv.New64a()
	fold := func(format string, args ...any) {
		fmt.Fprintf(digest, format+"\n", args...)
	}

	// Topology: a — b — c — d carries the adaptive flow; b — e — c is
	// the slower alternate path the flap reroutes onto. The bottleneck
	// b—c draws its bandwidth from the seed.
	bottleneck := float64(1_500_000 + 1000*rng.Intn(1500)) // 1.5–3 Mb/s
	alt := 0.6 * bottleneck
	cross := 0.4 * bottleneck
	res.BottleneckBps, res.AltBps, res.CrossBps = bottleneck, alt, cross

	prof := netem.DETERProfile()
	names := []string{"a", "b", "c", "d", "e"}
	for i, name := range names {
		addr := netip.AddrFrom4([4]byte{192, 168, 3, byte(1 + i)})
		if _, err := vini.AddNode(name, addr, prof, sched.Options{}); err != nil {
			return nil, err
		}
	}
	type linkSpec struct {
		a, b  string
		bw    float64
		delay time.Duration
	}
	for _, l := range []linkSpec{
		{"a", "b", 100e6, time.Millisecond},
		{"b", "c", bottleneck, 5 * time.Millisecond},
		{"c", "d", 100e6, time.Millisecond},
		{"b", "e", 10e6, 10 * time.Millisecond},
		{"e", "c", alt, 10 * time.Millisecond},
	} {
		if _, err := vini.AddLink(netem.LinkConfig{
			A: l.a, B: l.b, Bandwidth: l.bw, Delay: l.delay,
		}); err != nil {
			return nil, err
		}
	}
	vini.ComputeRoutes()

	nodeA, _ := vini.Net.Node("a")
	nodeB, _ := vini.Net.Node("b")
	nodeC, _ := vini.Net.Node("c")
	nodeD, _ := vini.Net.Node("d")
	baselinePool := packet.Stats()
	baselineListeners := 0
	for _, name := range names {
		n, _ := vini.Net.Node(name)
		baselineListeners += n.StackListeners()
	}
	loop := vini.Loop()

	// The cross-traffic overlay: a two-vnode slice embedded at the
	// bottleneck's endpoints, so its tunnel shares the b—c queue.
	slice, err := vini.CreateSlice(core.SliceConfig{Name: "cross", CPUShare: 0.25})
	if err != nil {
		return nil, err
	}
	vb, err := slice.AddVirtualNode("b")
	if err != nil {
		return nil, err
	}
	vc, err := slice.AddVirtualNode("c")
	if err != nil {
		return nil, err
	}
	if _, err := slice.ConnectVirtual("b", "c", 1); err != nil {
		return nil, err
	}
	slice.StartOSPF(time.Second, 3*time.Second)
	vini.Run(loop.Now() + 15*time.Second)
	if _, ok := vb.FIB.Lookup(vc.TapAddr); !ok {
		violate("overlay never converged: no route b->c")
	}

	flow, err := traffic.StartAdaptive(vini.Net, nodeA, nodeD, traffic.AdaptiveConfig{
		Telemetry:      vini.Telemetry(),
		DisableOveruse: opts.DisableOveruse,
	})
	if err != nil {
		return nil, err
	}
	wireBits := float64(1000+packet.UDPHeaderLen+packet.IPv4HeaderLen) * 8

	lastRx := uint64(0)
	// phase runs the world for dur, then checks the estimate against the
	// available bandwidth and folds the exact controller floats.
	phase := func(name string, dur time.Duration, avail float64) {
		start := loop.Now()
		vini.Run(start + dur)
		est := flow.EstimateBps()
		rx := flow.Received()
		delivered := float64(rx-lastRx) * wireBits / dur.Seconds()
		lastRx = rx
		res.Phases = append(res.Phases, AdaptivePhase{
			Name: name, AvailBps: avail, EstimateBps: est, DeliveredBps: delivered})
		note("%s: avail=%.0f estimate=%.0f delivered=%.0f gradient=%.0fns",
			name, avail, est, delivered, flow.GradientNs())
		if est < adaptiveLo*avail || est > adaptiveHi*avail {
			violate("%s: estimate %.0f outside [%.2f, %.2f] x avail %.0f",
				name, est, adaptiveLo, adaptiveHi, avail)
		}
		fold("%s est=%016x grad=%016x rx=%d", name,
			math.Float64bits(est), math.Float64bits(flow.GradientNs()), rx)
	}

	// Phase 1: the flow alone must climb to the bottleneck.
	phase("alone", 25*time.Second, bottleneck)

	// Phase 2: competing CBR cross-traffic through the overlay.
	crossFlow, err := traffic.StartUDPCBR(vini.Net, nodeB, nodeC, traffic.UDPCBRConfig{
		RateBps: cross, Port: 6001, SrcAddr: vb.TapAddr, DstAddr: vc.TapAddr,
	})
	if err != nil {
		return nil, err
	}
	phase("cross", 25*time.Second, bottleneck-cross)
	if crossFlow.Received() == 0 {
		violate("cross-traffic never flowed through the overlay")
	}

	// Phase 3: pause the overlay — the cross load vanishes at b, the
	// estimate must recover the full bottleneck.
	if err := slice.Pause(); err != nil {
		violate("pause: %v", err)
	}
	phase("paused", 25*time.Second, bottleneck)

	// Phase 4: resume — cross load returns after the overlay reconverges.
	if err := slice.Resume(); err != nil {
		violate("resume: %v", err)
	}
	vini.Run(loop.Now() + 15*time.Second) // overlay reconvergence warmup
	lastRx = flow.Received()
	phase("resumed", 25*time.Second, bottleneck-cross)

	// Phase 5: stop the cross flow, then flap the bottleneck link; the
	// substrate reroutes a—d over the slower b—e—c path.
	crossFlow.Stop()
	if err := vini.FailLink("b", "c", 100*time.Millisecond); err != nil {
		return nil, err
	}
	vini.Run(loop.Now() + 5*time.Second) // reroute + decay transient
	lastRx = flow.Received()
	phase("rerouted", 30*time.Second, alt)

	// Phase 6: restore; back to the full bottleneck.
	if err := vini.RestoreLink("b", "c", 100*time.Millisecond); err != nil {
		return nil, err
	}
	vini.Run(loop.Now() + 5*time.Second)
	lastRx = flow.Received()
	phase("restored", 25*time.Second, bottleneck)

	// Global no-runaway audit over the whole trace: the sender's rate
	// must never exceed the controller's clamp or the band above the
	// best path it ever had.
	res.TracePoints = len(flow.Trace)
	maxRate := 0.0
	for _, pt := range flow.Trace {
		if pt.EstimateBps > maxRate {
			maxRate = pt.EstimateBps
		}
	}
	if maxRate > adaptiveRunaway*bottleneck {
		violate("rate runaway: peak rate %.0f above %.2f x bottleneck %.0f",
			maxRate, adaptiveRunaway, bottleneck)
	}
	if res.TracePoints == 0 {
		violate("controller produced no trace points")
	}
	fold("trace n=%d max=%016x", res.TracePoints, math.Float64bits(maxRate))

	// Teardown: every workload closed, the overlay destroyed, then the
	// churn-grade audits.
	flow.Close()
	crossFlow.Close()
	if err := slice.Destroy(); err != nil {
		violate("destroy: %v", err)
	}
	if tel := vini.Telemetry(); tel != nil {
		if live := tel.Reg.Series("cross"); live != 0 {
			violate("%d telemetry series survive the cross slice", live)
		}
	}
	vini.Run(loop.Now() + 3*time.Second)
	for i := 0; i < 40 && packet.Stats().Sub(baselinePool).InFlight() != 0; i++ {
		vini.Run(loop.Now() + 50*time.Millisecond)
	}
	if fl := packet.Stats().Sub(baselinePool).InFlight(); fl != 0 {
		violate("pool ledger unbalanced after teardown: %d in flight", fl)
	}
	listeners := 0
	for _, name := range names {
		n, _ := vini.Net.Node(name)
		listeners += n.StackListeners()
	}
	if listeners != baselineListeners {
		violate("endpoint ledger unbalanced: %d stack listeners, baseline %d",
			listeners, baselineListeners)
	}
	if p := loop.Pending(); p != 0 {
		violate("%d events still pending after teardown (orphaned timers)", p)
	}
	fold("clean pending=%d listeners=%d", loop.Pending(), listeners)

	for _, v := range res.Violations {
		fold("violation %s", v)
	}
	res.Digest = digest.Sum64()
	res.Events = vini.Executor().TotalFired()
	res.RunSeconds = time.Since(wallStart).Seconds()
	res.ScheduleDigest = vini.Executor().ScheduleDigest()
	if tel := vini.Telemetry(); tel != nil {
		res.TelemetryDigest = tel.Reg.Digest()
		res.FlightDigest = tel.Rec.Digest()
		if js, err := tel.SnapshotJSON(); err == nil {
			res.Telemetry = string(js)
		}
	}
	vini.Close()
	return res, nil
}
