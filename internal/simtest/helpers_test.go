package simtest

import (
	"net/netip"

	"vini/internal/fib"
	"vini/internal/packet"
)

// takeBaselineForTest snapshots the pool ledger for the leak test.
func takeBaselineForTest() packet.PoolStats { return packet.Stats() }

// leakPacketForTest obtains a pooled packet and deliberately drops it
// on the floor — the exact bug class invariant 3 exists to catch.
func leakPacketForTest() { _ = packet.Get() }

// installLoopForTest aims nodes a and b at each other for dst: a
// two-node forwarding loop injected straight into the FIBs, bypassing
// the control plane, so the loop walker has something real to catch.
func installLoopForTest(sc *scenario, a, b int, dst netip.Addr) {
	pfx := netip.PrefixFrom(dst, 32)
	sc.vnode[a].FIB.Add(fib.Route{
		Prefix: pfx, NextHop: sc.vnode[b].Interfaces()[0].Addr,
		OutPort: outPortEncap, Metric: 1, Owner: "mutation", Proto: "static",
	})
	sc.vnode[b].FIB.Add(fib.Route{
		Prefix: pfx, NextHop: sc.vnode[a].Interfaces()[0].Addr,
		OutPort: outPortEncap, Metric: 1, Owner: "mutation", Proto: "static",
	})
}
