// Package simtest is a deterministic simulation-testing harness for the
// VINI stack, in the style FoundationDB made famous: a single seed
// drives a scenario generator (random virtual topology, traffic matrix,
// failure/recovery schedule), the whole world runs on the discrete
// event loop, and after every quiescent point an invariant engine
// checks properties that must hold in any reachable state:
//
//  1. no forwarding loops — the FIB next-hop graph is acyclic per
//     destination, and reachability matches the live link components;
//  2. control-plane/data-plane consistency — protocol RIB == FEA RIB ==
//     installed FIB == compiled stride-8 FIB == Click element caches;
//  3. packet conservation — every pooled packet obtained is released,
//     escaped to a retaining consumer, or still in flight; nothing
//     leaks (checked via the pool's Gets/Releases/Escapes ledger);
//  4. bounded reconvergence — after every injected failure the control
//     plane reaches a new fixed point within the scenario budget.
//
// Differential oracles ride along: the compiled FIB and per-element
// caches are audited against the reference binary trie, and live
// traffic probes check that the data plane agrees with the control
// plane walk. Any divergence reproduces exactly from the printed seed.
package simtest

import (
	"fmt"
	"hash/fnv"
	"time"

	"vini/internal/packet"
)

// Options configures one simulation run. The zero value of every field
// except Seed selects a sensible default, so tests can sweep seeds with
// Options{Seed: s}.
type Options struct {
	Seed int64
	// MinNodes..MaxNodes bounds the drawn topology size (defaults 3..8).
	MinNodes, MaxNodes int
	// Events fixes the number of failure/recovery events; 0 draws
	// 2..5 from the scenario RNG.
	Events int
	// Workers selects the execution engine: 0 runs the classic
	// single-timeline loop; >= 1 shards every node into its own time
	// domain executed by that many workers under conservative
	// synchronization. Any Workers >= 1 must produce byte-identical
	// results (that is the worker-parity property the CI matrix
	// asserts); Workers = 0 is a different — also deterministic —
	// baseline, because domain RNG streams fork differently.
	Workers int
	// Quiet suppresses nothing yet; reserved so the CLI flag surface
	// stays stable.
	Quiet bool
}

// Result is everything one scenario produced. Digest is a replay
// fingerprint: running the same seed twice must yield identical
// digests, and a digest covers the event schedule, every quiescent
// FIB state, and every violation, so any divergence anywhere in the
// run changes it.
type Result struct {
	Seed           int64
	Workers        int
	Nodes, Links   int
	WithRIP        bool
	EventLog       []string
	Reconvergences []time.Duration
	Violations     []string
	Digest         uint64
	// ScheduleDigest is the executor's fired-event digest: a fold over
	// every fired event's (timestamp, domain, sequence) merge key. Two
	// sharded runs match iff they executed the identical event
	// schedule — the strongest replay check we have.
	ScheduleDigest uint64
	// FIBDigests records the quiescent FIB fingerprint at warmup and
	// after each event, for fine-grained divergence reports.
	FIBDigests []uint64
	// TelemetryDigest folds the metrics registry (labels and values in
	// registration order); FlightDigest folds the merged flight-recorder
	// stream. Both must be identical for any worker count.
	TelemetryDigest uint64
	FlightDigest    uint64
	// Telemetry is the full JSON snapshot, compared byte-for-byte by
	// the parity property.
	Telemetry string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// String renders a replay header plus violations, the text a failing
// test prints so the run can be reproduced from the seed alone.
func (r *Result) String() string {
	s := fmt.Sprintf("seed=%d nodes=%d links=%d rip=%v events=%d digest=%016x",
		r.Seed, r.Nodes, r.Links, r.WithRIP, len(r.EventLog), r.Digest)
	for _, e := range r.EventLog {
		s += "\n  event: " + e
	}
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// Run executes one seeded scenario end to end and returns its Result.
// It only returns an error for scenario-construction failures (which
// indicate harness bugs, not system-under-test bugs); invariant
// violations land in Result.Violations.
func Run(opts Options) (*Result, error) {
	if opts.MinNodes == 0 {
		opts.MinNodes = 3
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 8
	}
	if opts.MaxNodes < opts.MinNodes {
		return nil, fmt.Errorf("simtest: MaxNodes %d < MinNodes %d", opts.MaxNodes, opts.MinNodes)
	}
	sc, err := buildScenario(opts)
	if err != nil {
		return nil, err
	}
	res := sc.res

	// The conservation baseline is taken before the loop ever runs:
	// at this instant this scenario has zero packets in flight, and
	// deltas from here cancel out whatever earlier scenarios in the
	// same process left behind.
	baseline := packet.Stats()

	// Quiescence windows. RIP only notices a dead route when its
	// Timeout (6 updates = 30s at the 5s period) expires, and until
	// then the FIB can sit on a stale plateau that looks converged —
	// so scenarios running RIP must demand a stability window longer
	// than that plateau before declaring quiescence.
	const step = time.Second
	settle := 5
	if sc.withRIP {
		settle = 36
	}
	const maxConverge = 300 * time.Second

	digest := fnv.New64a()
	note := func(s string) { fmt.Fprintln(digest, s) }

	if _, ok := sc.stable(step, maxConverge, settle); !ok {
		res.Violations = append(res.Violations,
			fmt.Sprintf("initial convergence not reached within %v", maxConverge))
	}
	res.Violations = append(res.Violations, sc.checkpoint(baseline)...)
	fp := fibFingerprint(sc.vnode)
	res.FIBDigests = append(res.FIBDigests, fp)
	note(fmt.Sprintf("warmup fib=%016x", fp))

	events := opts.Events
	if events == 0 {
		events = 2 + sc.rng.Intn(4)
	}
	for e := 0; e < events; e++ {
		line := sc.nextEvent()
		res.EventLog = append(res.EventLog, line)
		note("event " + line)
		elapsed, ok := sc.stable(step, maxConverge, settle)
		if !ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("reconvergence after %q not reached within %v", line, maxConverge))
			continue
		}
		// The settle tail is quiet by definition; the reconvergence
		// time is what came before it.
		rec := elapsed - time.Duration(settle)*step
		if rec < 0 {
			rec = 0
		}
		res.Reconvergences = append(res.Reconvergences, rec)
		res.Violations = append(res.Violations, sc.checkpoint(baseline)...)
		fp := fibFingerprint(sc.vnode)
		res.FIBDigests = append(res.FIBDigests, fp)
		note(fmt.Sprintf("quiescent fib=%016x", fp))
	}

	for _, v := range res.Violations {
		note("violation " + v)
	}
	res.Digest = digest.Sum64()
	res.ScheduleDigest = sc.vini.Executor().ScheduleDigest()
	if tel := sc.vini.Telemetry(); tel != nil {
		res.TelemetryDigest = tel.Reg.Digest()
		res.FlightDigest = tel.Rec.Digest()
		if js, err := tel.SnapshotJSON(); err == nil {
			res.Telemetry = string(js)
		}
	}
	sc.vini.Close()
	return res, nil
}

// stable advances the event loop until the network-wide FIB contents
// stop changing for settle consecutive steps (FIB versions tick on
// every periodic protocol update even when routes are unchanged, so
// quiescence is defined over contents).
func (sc *scenario) stable(step, max time.Duration, settle int) (time.Duration, bool) {
	return sc.vini.Loop().RunUntilStable(step, max, settle, func() uint64 {
		return fibFingerprint(sc.vnode)
	})
}

// checkpoint runs the full invariant suite at one quiescent point.
func (sc *scenario) checkpoint(baseline packet.PoolStats) []string {
	var out []string
	out = append(out, sc.checkLoops()...)
	sample := sc.addrSample()
	for i := range sc.vnode {
		out = append(out, sc.checkConsistency(i, sample)...)
	}
	out = append(out, sc.runProbes()...)
	out = append(out, sc.settleConservation(baseline)...)
	return out
}

// runProbes injects a small traffic matrix — real UDP datagrams through
// the pooled data plane — and checks exact delivery counts against the
// link-component ground truth: same-component pairs deliver every
// probe, cross-component pairs deliver none.
func (sc *scenario) runProbes() []string {
	const perPair = 2
	comp := sc.components()
	before := append([]int(nil), sc.delivered...)
	expected := make([]int, len(sc.vnode))
	for s, svn := range sc.vnode {
		for d, dvn := range sc.vnode {
			if s == d {
				continue
			}
			n := 1 // cross-component probes still exercise drop paths
			if comp[s] == comp[d] {
				n = perPair
				expected[d] += perPair
			}
			for k := 0; k < n; k++ {
				sc.probeSent++
				sport := uint16(41000 + sc.probeSent%1000)
				svn.Phys().StackSend(packet.BuildUDP(svn.TapAddr, dvn.TapAddr,
					sport, probePort, 64, []byte("simtest-probe")))
			}
		}
	}
	// Drain: worst-case path is diameter x (propagation + forwarder
	// scheduling), far under a virtual second; give it two.
	l := sc.vini.Loop()
	sc.vini.Run(l.Now() + 2*time.Second)
	var out []string
	for d := range sc.vnode {
		got := sc.delivered[d] - before[d]
		if got != expected[d] {
			out = append(out, fmt.Sprintf("probe delivery at n%d: got %d datagrams, expected %d",
				d, got, expected[d]))
		}
	}
	return out
}

// settleConservation checks invariant 3. Control traffic flows forever,
// so at any single instant a handful of pooled packets may legitimately
// be mid-flight inside the event queue; a leak, by contrast, never
// drains. Sampling the ledger at several closely spaced instants
// separates the two: a clean system hits a zero-in-flight instant
// almost immediately.
func (sc *scenario) settleConservation(baseline packet.PoolStats) []string {
	l := sc.vini.Loop()
	for i := 0; i < 40; i++ {
		if packet.Stats().Sub(baseline).InFlight() == 0 {
			return nil
		}
		sc.vini.Run(l.Now() + 50*time.Millisecond)
	}
	return checkConservation(baseline, fmt.Sprintf("t=%v", l.Now()))
}
