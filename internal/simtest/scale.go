package simtest

// The scale regime: hundreds of concurrent slices embedded on a
// REPETITA-format topology (synthetic by default, external files
// optionally), each slice a small overlay along one demand's shortest
// path, driven by demand-matrix traffic. This is the regime the
// address-plan allocator exists for — 126 slices was the old ceiling —
// and the regime where the parallel executor earns its keep, so the
// whole scenario carries the same determinism obligations as Run: every
// digest byte-identical for any worker count.

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"vini/internal/core"
	"vini/internal/netem"
	"vini/internal/packet"
	"vini/internal/sched"
	"vini/internal/sim"
	"vini/internal/topology"
	"vini/internal/traffic"
)

// ScaleOptions configures one scale scenario.
type ScaleOptions struct {
	Seed int64
	// Nodes sizes the synthetic substrate (default 64); ignored when
	// GraphText is given.
	Nodes int
	// Slices is the concurrent slice count (default 200).
	Slices int
	// Workers selects the engine: 0 the classic loop, >= 1 the sharded
	// executor with that worker budget.
	Workers int
	// Flaps is the number of virtual-link failure/recovery cycles
	// (default 2).
	Flaps int
	// Window is the demand-traffic measurement window (default 5s).
	Window time.Duration
	// GraphText/DemandsText carry external REPETITA file contents;
	// both empty selects the pinned synthetic scenario.
	GraphText   string
	DemandsText string
}

// ScaleResult is everything one scale scenario produced.
type ScaleResult struct {
	Seed    int64
	Workers int
	Nodes   int
	Links   int
	Slices  int
	VNodes  int
	Flows   int
	// Sent/Delivered count demand datagrams; OfferedBps the scaled load.
	Sent       uint64
	Delivered  uint64
	OfferedBps float64
	// Events counts fired executor events end to end.
	Events     uint64
	Log        []string
	Violations []string
	// Digest folds every deterministic observation (embeddings, FIB
	// fingerprints per phase, traffic counts, violations); it and the
	// other digests must be byte-identical across worker counts.
	Digest          uint64
	ScheduleDigest  uint64
	TelemetryDigest uint64
	FlightDigest    uint64
	Telemetry       string
	// BuildSeconds/RunSeconds split wall-clock spend (diagnostic only —
	// never folded into digests).
	BuildSeconds float64
	RunSeconds   float64
}

// Failed reports whether any invariant was violated.
func (r *ScaleResult) Failed() bool { return len(r.Violations) > 0 }

func (r *ScaleResult) String() string {
	s := fmt.Sprintf("scale seed=%d workers=%d nodes=%d slices=%d vnodes=%d flows=%d sent=%d delivered=%d events=%d digest=%016x",
		r.Seed, r.Workers, r.Nodes, r.Slices, r.VNodes, r.Flows, r.Sent, r.Delivered, r.Events, r.Digest)
	for _, l := range r.Log {
		s += "\n  " + l
	}
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// scaleSlice is one embedded slice and its invariant-checking state.
type scaleSlice struct {
	s     *core.Slice
	hops  []string
	vns   []*core.VirtualNode
	owner map[netip.Addr]int
	// chord is the redundant first-last virtual link (nil for 2-node
	// slices), the one whose middle links can fail without partition.
	chord *core.VirtualLink
	// mid is the failable virtual link (between hops 0 and 1).
	mid  *core.VirtualLink
	rate float64
}

// maxScaleHops caps each slice's path length: slices are deliberately
// small so hundreds fit, and a 6-hop overlay exercises multi-hop
// forwarding plenty.
const maxScaleHops = 6

// RunScale executes one seeded scale scenario end to end.
func RunScale(opts ScaleOptions) (*ScaleResult, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 64
	}
	if opts.Slices == 0 {
		opts.Slices = 200
	}
	if opts.Flaps == 0 {
		opts.Flaps = 2
	}
	if opts.Window == 0 {
		opts.Window = 5 * time.Second
	}
	graphText, demandsText := opts.GraphText, opts.DemandsText
	if graphText == "" {
		demandCount := opts.Slices
		if demandCount < 64 {
			demandCount = 64
		}
		graphText, demandsText = topology.SynthRepetita(opts.Nodes, demandCount, opts.Seed)
	}
	g, names, err := topology.ParseRepetita(graphText)
	if err != nil {
		return nil, err
	}
	mat, err := topology.ParseRepetitaDemands(demandsText, names)
	if err != nil {
		return nil, err
	}
	if !g.Connected(nil) {
		return nil, fmt.Errorf("simtest: scale topology not connected")
	}
	if len(names) > 40000 {
		return nil, fmt.Errorf("simtest: scale topology too large (%d nodes)", len(names))
	}
	if len(mat.Demands) == 0 {
		return nil, fmt.Errorf("simtest: scale demand matrix empty")
	}

	buildStart := time.Now()
	vini := core.New(opts.Seed)
	if opts.Workers > 0 {
		vini = core.NewParallel(opts.Seed, opts.Workers)
	}
	vini.EnableTelemetry()
	res := &ScaleResult{Seed: opts.Seed, Workers: opts.Workers,
		Nodes: len(names), Links: len(g.Links()), Slices: opts.Slices}
	note := func(format string, args ...any) {
		res.Log = append(res.Log, fmt.Sprintf(format, args...))
	}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	digest := fnv.New64a()
	fold := func(format string, args ...any) {
		fmt.Fprintf(digest, format+"\n", args...)
	}

	// Substrate: one physical node per topology node, REPETITA link
	// parameters verbatim.
	prof := netem.DETERProfile()
	for i, name := range names {
		addr := netip.AddrFrom4([4]byte{198, byte(18 + i/40000), byte(1 + (i/200)%200), byte(1 + i%200)})
		if _, err := vini.AddNode(name, addr, prof, sched.Options{}); err != nil {
			return nil, err
		}
	}
	for _, l := range g.Links() {
		if _, err := vini.AddLink(netem.LinkConfig{A: l.A, B: l.B,
			Bandwidth: l.Bandwidth, Delay: l.Delay}); err != nil {
			return nil, err
		}
	}
	vini.ComputeRoutes()

	// Embed one slice per demand (cycling if the matrix is short): the
	// demand's shortest path, capped at maxScaleHops, with a redundant
	// first-last chord on >= 3-hop slices so one virtual link can fail
	// without partitioning the overlay.
	spCache := make(map[string]map[string]topology.Path)
	paths := func(src string) map[string]topology.Path {
		if p, ok := spCache[src]; ok {
			return p
		}
		p := g.ShortestPaths(src, nil)
		spCache[src] = p
		return p
	}
	const cpuShare = 0.001
	slices := make([]*scaleSlice, 0, opts.Slices)
	di := 0
	for len(slices) < opts.Slices {
		if di >= 4*opts.Slices+len(mat.Demands) {
			return nil, fmt.Errorf("simtest: demand matrix yields too few usable paths (%d of %d slices)",
				len(slices), opts.Slices)
		}
		d := mat.Demands[di%len(mat.Demands)]
		di++
		p, ok := paths(d.Src)[d.Dst]
		if !ok || len(p.Hops) < 2 {
			continue
		}
		hops := p.Hops
		if len(hops) > maxScaleHops {
			hops = hops[:maxScaleHops]
		}
		name := fmt.Sprintf("s%04d", len(slices))
		s, err := vini.CreateSlice(core.SliceConfig{
			Name: name, CPUShare: cpuShare,
			MaxNodes: len(hops), MaxLinks: len(hops),
		})
		if err != nil {
			return nil, fmt.Errorf("simtest: scale slice %d: %w", len(slices), err)
		}
		ss := &scaleSlice{s: s, hops: hops, rate: d.RateBps, owner: make(map[netip.Addr]int)}
		for _, h := range hops {
			vn, err := s.AddVirtualNode(h)
			if err != nil {
				return nil, fmt.Errorf("simtest: scale slice %s on %s: %w", name, h, err)
			}
			ss.vns = append(ss.vns, vn)
		}
		for i := 0; i+1 < len(hops); i++ {
			vl, err := s.ConnectVirtual(hops[i], hops[i+1], 1)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				ss.mid = vl
			}
		}
		if len(hops) >= 3 {
			vl, err := s.ConnectVirtual(hops[0], hops[len(hops)-1], 64)
			if err != nil {
				return nil, err
			}
			ss.chord = vl
		}
		for i, vn := range ss.vns {
			ss.owner[vn.TapAddr] = i
			for _, ifc := range vn.Interfaces() {
				ss.owner[ifc.Addr] = i
			}
		}
		s.StartOSPF(2*time.Second, 6*time.Second)
		fold("slice %s id=%d prefix=%s ports=%s hops=%v",
			name, s.ID(), s.Prefix(), s.PortRange(), hops)
		slices = append(slices, ss)
		res.VNodes += len(ss.vns)
	}
	note("embedded %d slices (%d vnodes) on %d nodes / %d links",
		len(slices), res.VNodes, res.Nodes, res.Links)
	res.BuildSeconds = time.Since(buildStart).Seconds()

	runStart := time.Now()
	baseline := packet.Stats()
	loop := vini.Loop()
	allVN := make([]*core.VirtualNode, 0, res.VNodes)
	for _, ss := range slices {
		allVN = append(allVN, ss.vns...)
	}
	// The settle window (8 x 1s) must exceed the OSPF dead interval:
	// after a link flap nothing in any FIB moves until a dead timer
	// fires, and declaring quiescence inside that silence would check
	// invariants against pre-reconvergence state.
	stable := func(phase string) {
		took, ok := loop.RunUntilStable(time.Second, 240*time.Second, 8, func() uint64 {
			return fibFingerprint(allVN)
		})
		if !ok {
			violate("%s: FIBs did not quiesce within 240s", phase)
		}
		fold("%s stable took=%v fib=%016x", phase, took, fibFingerprint(allVN))
	}
	// walkAll checks per-slice loop-freedom and reachability: every
	// ordered (src, dst-tap) pair inside each slice must walk the
	// next-hop graph to delivery without cycling.
	walkAll := func(phase string) {
		bad := 0
		for _, ss := range slices {
			for d, dvn := range ss.vns {
				for s := range ss.vns {
					if s == d {
						continue
					}
					r, path := walkFIB(ss.vns, ss.owner, s, dvn.TapAddr)
					if r != walkDelivered {
						bad++
						if bad <= 5 {
							violate("%s: slice %s walk %d->%d: %v (%s)",
								phase, ss.s.Name(), s, d, r, path)
						}
					}
				}
			}
		}
		if bad > 5 {
			violate("%s: %d total failed walks", phase, bad)
		}
		fold("%s walks bad=%d", phase, bad)
	}

	stable("converge")
	walkAll("converge")
	// Control-plane consistency on every vnode: protocol vs RIB vs FIB,
	// plus the Click cache audit.
	for _, ss := range slices {
		for i, vn := range ss.vns {
			if err := vn.RIB().Verify(); err != nil {
				violate("slice %s n%d RIB vs FIB: %v", ss.s.Name(), i, err)
			}
			if err := vn.Router.Audit(); err != nil {
				violate("slice %s n%d click audit: %v", ss.s.Name(), i, err)
			}
		}
	}

	// Virtual-link flap cycles on chord-protected slices: the overlay
	// must reconverge around the failed link (via the chord) and back.
	eligible := make([]*scaleSlice, 0, len(slices))
	for _, ss := range slices {
		if ss.chord != nil {
			eligible = append(eligible, ss)
		}
	}
	rng := sim.NewRNG(opts.Seed ^ 0x5ca1e)
	for f := 0; f < opts.Flaps && len(eligible) > 0; f++ {
		ss := eligible[rng.Intn(len(eligible))]
		ss.mid.SetFailed(true)
		stable(fmt.Sprintf("flap%d-down", f))
		for d, dvn := range ss.vns {
			for s := range ss.vns {
				if s == d {
					continue
				}
				if r, path := walkFIB(ss.vns, ss.owner, s, dvn.TapAddr); r != walkDelivered {
					violate("flap%d: slice %s lost %d->%d with chord up: %v (%s)",
						f, ss.s.Name(), s, d, r, path)
				}
			}
		}
		ss.mid.SetFailed(false)
		stable(fmt.Sprintf("flap%d-up", f))
		fold("flap%d slice=%s fib=%016x", f, ss.s.Name(), fibFingerprint(ss.vns))
	}

	// Demand-driven traffic: one CBR flow per slice between its first
	// and last virtual node taps, at the demand's rate scaled down so
	// hundreds of concurrent flows stay tractable.
	flowMat := &topology.DemandMatrix{}
	endpoints := make(map[string]*core.VirtualNode, 2*len(slices))
	for _, ss := range slices {
		src, dst := ss.s.Name()+"/src", ss.s.Name()+"/dst"
		endpoints[src] = ss.vns[0]
		endpoints[dst] = ss.vns[len(ss.vns)-1]
		flowMat.Demands = append(flowMat.Demands, topology.Demand{
			Src: src, Dst: dst, RateBps: ss.rate})
	}
	flows, err := traffic.StartDemands(vini.Net, flowMat,
		func(name string) (*netem.Node, netip.Addr, bool) {
			vn, ok := endpoints[name]
			if !ok {
				return nil, netip.Addr{}, false
			}
			return vn.Phys(), vn.TapAddr, true
		},
		traffic.DemandConfig{Scale: 0.05, Payload: 256})
	if err != nil {
		return nil, err
	}
	res.Flows = len(flows.Flows)
	res.OfferedBps = flows.OfferedBps
	vini.Run(loop.Now() + opts.Window)
	flows.Stop()
	// Drain in-flight datagrams, then every sent packet must have
	// arrived: the overlay was converged and loop-free, so loss would
	// mean a forwarding or scheduling defect.
	for i := 0; i < 60 && flows.Delivered() != flows.Sent(); i++ {
		vini.Run(loop.Now() + 250*time.Millisecond)
	}
	res.Sent, res.Delivered = flows.Sent(), flows.Delivered()
	if res.Sent == 0 {
		violate("traffic: no datagrams sent in %v window", opts.Window)
	}
	if res.Delivered != res.Sent {
		violate("traffic: delivered %d of %d demand datagrams", res.Delivered, res.Sent)
	}
	note("traffic: %d flows, %.1f kbps offered, %d sent / %d delivered",
		res.Flows, res.OfferedBps/1000, res.Sent, res.Delivered)
	fold("traffic flows=%d offered=%.0f sent=%d delivered=%d",
		res.Flows, res.OfferedBps, res.Sent, res.Delivered)

	// Churn tail: destroy a handful of slices, audit the books, and
	// re-admit the same shapes — the allocator must hand the released
	// blocks straight back (LIFO), at full scale.
	tail := 4
	if tail > len(slices) {
		tail = len(slices)
	}
	for i := len(slices) - tail; i < len(slices); i++ {
		ss := slices[i]
		prefix, ports := ss.s.Prefix(), ss.s.PortRange()
		if err := ss.s.Destroy(); err != nil {
			violate("churn destroy %s: %v", ss.s.Name(), err)
			continue
		}
		if err := ss.s.Audit(); err != nil {
			violate("churn audit %s: %v", ss.s.Name(), err)
		}
		s2, err := vini.CreateSlice(core.SliceConfig{
			Name: ss.s.Name() + "r", CPUShare: cpuShare,
			MaxNodes: len(ss.hops), MaxLinks: len(ss.hops)})
		if err != nil {
			violate("churn readmit %s: %v", ss.s.Name(), err)
			continue
		}
		if s2.Prefix() != prefix || s2.PortRange() != ports {
			violate("churn readmit %s got %v/%v, want LIFO reuse of %v/%v",
				s2.Name(), s2.Prefix(), s2.PortRange(), prefix, ports)
		}
		fold("churn %s -> %s prefix=%s ports=%s", ss.s.Name(), s2.Name(), s2.Prefix(), s2.PortRange())
		if err := s2.Destroy(); err != nil {
			violate("churn re-destroy %s: %v", s2.Name(), err)
		}
	}

	// Final accounting: every slice ledger, the substrate address plan,
	// and the packet pool must balance.
	for _, ss := range slices {
		if err := ss.s.Audit(); err != nil {
			violate("final audit %s: %v", ss.s.Name(), err)
		}
	}
	if err := vini.AuditAddressPlan(); err != nil {
		violate("address plan: %v", err)
	}
	for i := 0; i < 40 && packet.Stats().Sub(baseline).InFlight() != 0; i++ {
		vini.Run(loop.Now() + 50*time.Millisecond)
	}
	res.Violations = append(res.Violations, checkConservation(baseline, "end of scale run")...)

	for _, v := range res.Violations {
		fold("violation %s", v)
	}
	res.Digest = digest.Sum64()
	res.Events = vini.Executor().TotalFired()
	res.ScheduleDigest = vini.Executor().ScheduleDigest()
	if tel := vini.Telemetry(); tel != nil {
		res.TelemetryDigest = tel.Reg.Digest()
		res.FlightDigest = tel.Rec.Digest()
		if js, err := tel.SnapshotJSON(); err == nil {
			res.Telemetry = string(js)
		}
	}
	res.RunSeconds = time.Since(runStart).Seconds()
	vini.Close()
	return res, nil
}
