package simtest

import (
	"fmt"
	"os"
	"testing"
)

// churnFailArtifact mirrors failArtifact for churn results.
func churnFailArtifact(r *ChurnResult) {
	path := os.Getenv("SIMTEST_FAIL_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", r)
}

// TestChurn explores seeded slice-churn scenarios on the classic
// single-timeline engine: every teardown must leave the substrate
// exactly as clean as before the slice existed.
func TestChurn(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+seeds; s++ {
		r, err := RunChurn(ChurnOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", s, err)
		}
		if r.Failed() {
			churnFailArtifact(r)
			t.Errorf("seed %d: lifecycle violation — replay with: go test ./internal/simtest -seed %d -run TestChurn\n%s",
				s, s, r)
		}
	}
}

// TestChurnReplayDeterminism: the same churn seed run twice must match
// in every digest.
func TestChurnReplayDeterminism(t *testing.T) {
	for s := int64(1); s <= 3; s++ {
		a, err := RunChurn(ChurnOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		b, err := RunChurn(ChurnOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if a.Digest != b.Digest || a.TelemetryDigest != b.TelemetryDigest ||
			a.FlightDigest != b.FlightDigest {
			t.Errorf("seed %d: churn replay diverged: digest %016x vs %016x",
				s, a.Digest, b.Digest)
		}
	}
}

// TestChurnWorkerParity is the lifecycle counterpart of TestWorkerParity:
// the full create/pause/reembed/destroy schedule must be byte-identical
// between a 1-worker and a 4-worker sharded run — teardown ordering,
// timer cancellation, and telemetry retirement may not depend on worker
// count.
func TestChurnWorkerParity(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 4
	}
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+seeds; s++ {
		one, err := RunChurn(ChurnOptions{Seed: s, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d workers=1: harness error: %v", s, err)
		}
		four, err := RunChurn(ChurnOptions{Seed: s, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d workers=4: harness error: %v", s, err)
		}
		for _, r := range []*ChurnResult{one, four} {
			if r.Failed() {
				churnFailArtifact(r)
				t.Errorf("seed %d workers=%d: lifecycle violation — replay with: go test ./internal/simtest -seed %d -run TestChurnWorkerParity\n%s",
					s, r.Workers, s, r)
			}
		}
		if one.ScheduleDigest != four.ScheduleDigest {
			churnFailArtifact(four)
			t.Errorf("seed %d: churn event-schedule digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.ScheduleDigest, four.ScheduleDigest)
		}
		if one.Digest != four.Digest {
			churnFailArtifact(four)
			t.Errorf("seed %d: churn digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.Digest, four.Digest)
		}
		if one.TelemetryDigest != four.TelemetryDigest {
			t.Errorf("seed %d: telemetry digest diverged under churn: workers=1 %016x, workers=4 %016x",
				s, one.TelemetryDigest, four.TelemetryDigest)
		}
		if one.FlightDigest != four.FlightDigest {
			t.Errorf("seed %d: flight digest diverged under churn: workers=1 %016x, workers=4 %016x",
				s, one.FlightDigest, four.FlightDigest)
		}
		if one.Telemetry != four.Telemetry {
			t.Errorf("seed %d: churn telemetry JSON not byte-identical (lens %d vs %d)",
				s, len(one.Telemetry), len(four.Telemetry))
		}
		if testing.Verbose() {
			t.Logf("seed %d: nodes=%d digest=%016x schedule=%016x",
				s, one.Nodes, one.Digest, one.ScheduleDigest)
		}
	}
}
