package simtest

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// migrateFailArtifact mirrors failArtifact for migration results.
func migrateFailArtifact(r *MigrateResult) {
	path := os.Getenv("SIMTEST_FAIL_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", r)
}

// TestMigrateLossless is the headline migration property: across seeded
// scenarios, repeated live migrations under continuous painted traffic,
// substrate link flaps, and Pause/Resume/Destroy churn must lose no
// in-flight packet (clean rounds), deliver no duplicates (every round),
// keep the pool and resource ledgers balanced, and produce
// byte-identical digests for 1-worker and 4-worker sharded execution.
// CI runs it under -race at GOMAXPROCS 1 and 4.
func TestMigrateLossless(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 4
	}
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+seeds; s++ {
		one, err := RunMigrate(MigrateOptions{Seed: s, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d workers=1: harness error: %v", s, err)
		}
		four, err := RunMigrate(MigrateOptions{Seed: s, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d workers=4: harness error: %v", s, err)
		}
		for _, r := range []*MigrateResult{one, four} {
			if r.Failed() {
				migrateFailArtifact(r)
				t.Errorf("seed %d workers=%d: migration violation — replay with: go test ./internal/simtest -seed %d -run TestMigrateLossless\n%s",
					s, r.Workers, s, r)
			}
			if r.Sent == 0 || r.Delivered == 0 {
				t.Errorf("seed %d workers=%d: vacuous run (sent=%d delivered=%d)",
					s, r.Workers, r.Sent, r.Delivered)
			}
			if r.Duplicates != 0 {
				t.Errorf("seed %d workers=%d: %d duplicate deliveries", s, r.Workers, r.Duplicates)
			}
		}
		if one.ScheduleDigest != four.ScheduleDigest {
			migrateFailArtifact(four)
			t.Errorf("seed %d: event-schedule digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.ScheduleDigest, four.ScheduleDigest)
		}
		if one.Digest != four.Digest {
			migrateFailArtifact(four)
			t.Errorf("seed %d: migration digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.Digest, four.Digest)
		}
		if one.TelemetryDigest != four.TelemetryDigest {
			t.Errorf("seed %d: telemetry digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.TelemetryDigest, four.TelemetryDigest)
		}
		if one.FlightDigest != four.FlightDigest {
			t.Errorf("seed %d: flight digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.FlightDigest, four.FlightDigest)
		}
		if one.Telemetry != four.Telemetry {
			t.Errorf("seed %d: telemetry JSON not byte-identical (lens %d vs %d)",
				s, len(one.Telemetry), len(four.Telemetry))
		}
		// The tentpole demands 1/2/4 parity; a 2-worker spot check on the
		// first seeds keeps the full sweep affordable.
		if s < first+2 {
			two, err := RunMigrate(MigrateOptions{Seed: s, Workers: 2})
			if err != nil {
				t.Fatalf("seed %d workers=2: harness error: %v", s, err)
			}
			if two.Digest != one.Digest || two.ScheduleDigest != one.ScheduleDigest {
				t.Errorf("seed %d: 2-worker run diverged: digest %016x vs %016x",
					s, two.Digest, one.Digest)
			}
		}
		if testing.Verbose() {
			t.Logf("seed %d: nodes=%d sent=%d delivered=%d digest=%016x",
				s, one.Nodes, one.Sent, one.Delivered, one.Digest)
		}
	}
}

// TestMigrateClassic runs the regime on the classic single-timeline
// engine (Workers=0), a different deterministic baseline.
func TestMigrateClassic(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+seeds; s++ {
		r, err := RunMigrate(MigrateOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", s, err)
		}
		if r.Failed() {
			migrateFailArtifact(r)
			t.Errorf("seed %d: migration violation — replay with: go test ./internal/simtest -seed %d -run TestMigrateClassic\n%s",
				s, s, r)
		}
	}
}

// TestMigrateReplayDeterminism: the same migration seed run twice must
// match in every digest.
func TestMigrateReplayDeterminism(t *testing.T) {
	for s := int64(1); s <= 3; s++ {
		a, err := RunMigrate(MigrateOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		b, err := RunMigrate(MigrateOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if a.Digest != b.Digest || a.TelemetryDigest != b.TelemetryDigest ||
			a.FlightDigest != b.FlightDigest {
			t.Errorf("seed %d: migration replay diverged: digest %016x vs %016x",
				s, a.Digest, b.Digest)
		}
	}
}

// TestMigrateMutationSuppressionChecker proves the exactly-once checker
// has teeth: sabotaging the shadow's duplicate suppression must surface
// window clones as duplicate deliveries and fail the run. (The same
// mutation discipline PR 2 applied to the original invariant checkers.)
func TestMigrateMutationSuppressionChecker(t *testing.T) {
	clean, err := RunMigrate(MigrateOptions{Seed: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if clean.Failed() {
		t.Fatalf("clean run must pass before the mutation means anything:\n%s", clean)
	}
	broken, err := RunMigrate(MigrateOptions{Seed: 1, Sabotage: true})
	if err != nil {
		t.Fatalf("sabotaged run: %v", err)
	}
	if !broken.Failed() {
		t.Fatalf("suppression disabled but no violation reported — the duplicate checker is toothless:\n%s", broken)
	}
	if broken.Duplicates == 0 {
		t.Errorf("sabotaged run reported violations but counted no duplicates:\n%s", broken)
	}
	found := false
	for _, v := range broken.Violations {
		if strings.Contains(v, "delivered") && strings.Contains(v, "times") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("sabotaged run failed for the wrong reason:\n%s", broken)
	}
}
