package simtest

import (
	"net"
	"sync"
	"testing"
	"time"

	"vini/internal/sim"
)

// TestDistParityInProcess runs the distributed-parity scenario whole,
// then sharded three ways over loopback TCP sockets (three executors in
// one process — the transport cannot tell), and requires the merged
// schedule and telemetry digests to be byte-identical to the
// single-process run.
func TestDistParityInProcess(t *testing.T) {
	p := DistParams{Seed: 424242, Nodes: 6, Duration: 2 * time.Second, Workers: 2}
	base, err := RunDist(p, nil, 0, 1)
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	if base.Delivered == 0 {
		t.Fatal("scenario delivered no traffic")
	}

	const shards = 3
	const timeout = 30 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	results := make([]*DistResult, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 1; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w, _, err := sim.DialCoordinator(ln.Addr().String(), s, timeout)
			if err != nil {
				errs[s] = err
				return
			}
			defer w.Close()
			r, err := RunDist(p, w, s, shards)
			if err == nil {
				err = w.Report(r.DomainDigests, nil)
			}
			results[s], errs[s] = r, err
		}(s)
	}
	coord, err := sim.AcceptWorkers(ln, shards, nil, timeout)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer coord.Close()
	results[0], errs[0] = RunDist(p, coord, 0, shards)
	if errs[0] != nil {
		t.Fatalf("coordinator run: %v", errs[0])
	}
	if _, err := coord.Gather(); err != nil {
		t.Fatalf("gather: %v", err)
	}
	wg.Wait()
	for s := 1; s < shards; s++ {
		if errs[s] != nil {
			t.Fatalf("shard %d: %v", s, errs[s])
		}
	}

	sched, tel, err := MergeDistResults(results, shards)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if sched != base.ScheduleDigest {
		t.Fatalf("merged schedule digest %016x != single-process %016x", sched, base.ScheduleDigest)
	}
	if tel != base.TelemetryDigest {
		t.Fatalf("merged telemetry digest %016x != single-process %016x", tel, base.TelemetryDigest)
	}
	// Each flow's receiver lives on exactly one shard, so delivered
	// counts partition across shards.
	var sum uint64
	for _, r := range results {
		sum += r.Delivered
	}
	if sum != base.Delivered {
		t.Fatalf("sharded runs delivered %d packets, single-process %d", sum, base.Delivered)
	}
}
