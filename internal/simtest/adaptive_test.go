package simtest

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// adaptiveFailArtifact mirrors failArtifact for adaptive results.
func adaptiveFailArtifact(r *AdaptiveResult) {
	path := os.Getenv("SIMTEST_FAIL_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", r)
}

// TestAdaptiveConverges is the headline adaptive-controller property:
// across seeded scenarios the delay-gradient estimator must converge
// into the band around the true available bandwidth after every
// quiescent point — alone, against CBR cross-traffic, across overlay
// Pause/Resume churn, and through a substrate reroute onto a slower
// path — never run away above the bottleneck, leave balanced pool and
// endpoint ledgers, and produce byte-identical digests for 1-worker
// and 4-worker sharded execution. CI runs it under -race at
// GOMAXPROCS 1 and 4.
func TestAdaptiveConverges(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+seeds; s++ {
		one, err := RunAdaptive(AdaptiveOptions{Seed: s, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d workers=1: harness error: %v", s, err)
		}
		four, err := RunAdaptive(AdaptiveOptions{Seed: s, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d workers=4: harness error: %v", s, err)
		}
		for _, r := range []*AdaptiveResult{one, four} {
			if r.Failed() {
				adaptiveFailArtifact(r)
				t.Errorf("seed %d workers=%d: adaptive violation — replay with: go test ./internal/simtest -seed %d -run TestAdaptiveConverges\n%s",
					s, r.Workers, s, r)
			}
			if len(r.Phases) != 6 {
				t.Errorf("seed %d workers=%d: %d phases measured, want 6", s, r.Workers, len(r.Phases))
			}
			if r.TracePoints == 0 {
				t.Errorf("seed %d workers=%d: vacuous run (no controller trace)", s, r.Workers)
			}
		}
		if one.ScheduleDigest != four.ScheduleDigest {
			adaptiveFailArtifact(four)
			t.Errorf("seed %d: event-schedule digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.ScheduleDigest, four.ScheduleDigest)
		}
		if one.Digest != four.Digest {
			adaptiveFailArtifact(four)
			t.Errorf("seed %d: adaptive digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.Digest, four.Digest)
		}
		if one.TelemetryDigest != four.TelemetryDigest {
			t.Errorf("seed %d: telemetry digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.TelemetryDigest, four.TelemetryDigest)
		}
		if one.FlightDigest != four.FlightDigest {
			t.Errorf("seed %d: flight digest diverged: workers=1 %016x, workers=4 %016x",
				s, one.FlightDigest, four.FlightDigest)
		}
		if one.Telemetry != four.Telemetry {
			t.Errorf("seed %d: telemetry JSON not byte-identical (lens %d vs %d)",
				s, len(one.Telemetry), len(four.Telemetry))
		}
		// The tentpole demands 1/2/4 parity; a 2-worker spot check on the
		// first seeds keeps the full sweep affordable.
		if s < first+2 {
			two, err := RunAdaptive(AdaptiveOptions{Seed: s, Workers: 2})
			if err != nil {
				t.Fatalf("seed %d workers=2: harness error: %v", s, err)
			}
			if two.Digest != one.Digest || two.ScheduleDigest != one.ScheduleDigest {
				t.Errorf("seed %d: 2-worker run diverged: digest %016x vs %016x",
					s, two.Digest, one.Digest)
			}
		}
		if testing.Verbose() {
			t.Logf("seed %d: bottleneck=%.0f trace=%d digest=%016x",
				s, one.BottleneckBps, one.TracePoints, one.Digest)
		}
	}
}

// TestAdaptiveClassic runs the regime on the classic single-timeline
// engine (Workers=0), a different deterministic baseline.
func TestAdaptiveClassic(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	first := int64(1)
	if *flagSeed >= 0 {
		first, seeds = *flagSeed, 1
	}
	for s := first; s < first+seeds; s++ {
		r, err := RunAdaptive(AdaptiveOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", s, err)
		}
		if r.Failed() {
			adaptiveFailArtifact(r)
			t.Errorf("seed %d: adaptive violation — replay with: go test ./internal/simtest -seed %d -run TestAdaptiveClassic\n%s",
				s, s, r)
		}
	}
}

// TestAdaptiveReplayDeterminism: the same adaptive seed run twice must
// match in every digest — the controller's float state is a fixed
// IEEE-754 op sequence over simulated time, nothing else.
func TestAdaptiveReplayDeterminism(t *testing.T) {
	for s := int64(1); s <= 3; s++ {
		a, err := RunAdaptive(AdaptiveOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		b, err := RunAdaptive(AdaptiveOptions{Seed: s})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if a.Digest != b.Digest || a.TelemetryDigest != b.TelemetryDigest ||
			a.FlightDigest != b.FlightDigest {
			t.Errorf("seed %d: adaptive replay diverged: digest %016x vs %016x",
				s, a.Digest, b.Digest)
		}
	}
}

// TestAdaptiveMutationOveruseDetector proves the convergence invariant
// has teeth: disabling the controller's over-use detector must blow the
// estimate through the convergence band and trip the no-runaway audit.
func TestAdaptiveMutationOveruseDetector(t *testing.T) {
	clean, err := RunAdaptive(AdaptiveOptions{Seed: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if clean.Failed() {
		t.Fatalf("clean run must pass before the mutation means anything:\n%s", clean)
	}
	broken, err := RunAdaptive(AdaptiveOptions{Seed: 1, DisableOveruse: true})
	if err != nil {
		t.Fatalf("sabotaged run: %v", err)
	}
	if !broken.Failed() {
		t.Fatalf("over-use detector disabled but no violation reported — the convergence checker is toothless:\n%s", broken)
	}
	convergence, runaway := false, false
	for _, v := range broken.Violations {
		if strings.Contains(v, "outside") {
			convergence = true
		}
		if strings.Contains(v, "runaway") {
			runaway = true
		}
	}
	if !convergence {
		t.Errorf("sabotaged run never tripped the convergence band:\n%s", broken)
	}
	if !runaway {
		t.Errorf("sabotaged run never tripped the no-runaway audit:\n%s", broken)
	}
}
