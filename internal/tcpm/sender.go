package tcpm

import (
	"net/netip"
	"time"

	"vini/internal/packet"
	"vini/internal/sim"
)

// Sender is the Reno bulk-transfer endpoint.
type Sender struct {
	cfg   Config
	clock sim.Clock
	out   Output

	local, peer netip.Addr
	port, pport uint16
	totalBytes  uint64 // 0 = unlimited (run until Stop)
	state       string // "idle", "syn-sent", "established", "done"
	isn         uint32
	sndUna      uint32 // oldest unacknowledged
	sndNxt      uint32 // next to send
	cc          Congestion
	rwnd        int
	dupAcks     int
	inRecovery  bool
	recoverSeq  uint32
	// RTO state per RFC 6298.
	srtt, rttvar time.Duration
	rto          time.Duration
	backoff      int
	rtoTimer     sim.Timer
	// rttSeq/rttAt sample one segment per window (Karn's algorithm:
	// never sample retransmitted segments).
	rttSeq   uint32
	rttAt    time.Duration
	rttValid bool
	lastSend time.Duration
	// Stats.
	Retransmits uint64
	Timeouts    uint64
	// onDone fires when totalBytes are acknowledged.
	onDone func()
}

// NewSender creates a connected sender; wire Deliver to the node's TCP
// stack handler for the source port.
func NewSender(clock sim.Clock, cfg Config, local netip.Addr, port uint16,
	peer netip.Addr, pport uint16, out Output) *Sender {
	cfg.setDefaults()
	return &Sender{
		cfg: cfg, clock: clock, out: out,
		local: local, peer: peer, port: port, pport: pport,
		state: "idle",
		rto:   time.Second,
		rwnd:  cfg.RcvWnd,
		cc:    NewReno(cfg),
	}
}

// SetCongestion swaps the congestion controller (before Start).
func (s *Sender) SetCongestion(c Congestion) { s.cc = c }

// OnDone registers a completion callback for bounded transfers.
func (s *Sender) OnDone(fn func()) { s.onDone = fn }

// Start begins a transfer of total bytes (0 = unbounded).
func (s *Sender) Start(total uint64) {
	s.totalBytes = total
	s.state = "syn-sent"
	s.isn = 0
	s.sndUna = s.isn
	s.sndNxt = s.isn
	s.cc.Open()
	s.sendSeg(packet.TCPSyn, s.sndNxt, nil)
	s.sndNxt++
	s.armRTO()
}

// Stop abandons the transfer.
func (s *Sender) Stop() {
	s.state = "done"
	if !s.rtoTimer.IsZero() {
		s.rtoTimer.Stop()
	}
}

// Acked returns the number of payload bytes acknowledged so far.
func (s *Sender) Acked() uint64 {
	if s.state == "idle" || s.state == "syn-sent" {
		return 0
	}
	return uint64(s.sndUna - s.isn - 1)
}

// Cwnd returns the current congestion window in bytes.
func (s *Sender) Cwnd() int { return int(s.cc.Window()) }

// Deliver feeds an incoming IP datagram (ACKs from the receiver).
func (s *Sender) Deliver(dgram []byte) {
	if s.state == "done" || s.state == "idle" {
		return
	}
	var ip packet.IPv4
	seg, err := ip.Parse(dgram)
	if err != nil {
		return
	}
	var th packet.TCP
	if _, err := th.Parse(seg); err != nil || th.DstPort != s.port {
		return
	}
	if th.Flags&packet.TCPAck == 0 {
		return
	}
	s.rwnd = int(th.Window)
	if s.state == "syn-sent" {
		if th.Flags&packet.TCPSyn == 0 || th.Ack != s.sndNxt {
			return
		}
		s.state = "established"
		s.sndUna = s.sndNxt
		s.sendSeg(packet.TCPAck, s.sndNxt, nil) // complete handshake
		s.clearRTO()
		s.pump()
		return
	}
	s.handleAck(th.Ack)
}

func (s *Sender) handleAck(ack uint32) {
	switch {
	case seqAfter(ack, s.sndUna):
		acked := ack - s.sndUna
		s.sndUna = ack
		s.backoff = 0
		// RTT sample (Karn: only if the sampled segment wasn't
		// retransmitted, tracked via rttValid).
		if s.rttValid && seqAfter(ack, s.rttSeq) {
			s.sampleRTT(s.clock.Now() - s.rttAt)
			s.rttValid = false
		}
		if s.inRecovery {
			if !seqAfter(s.recoverSeq, ack) {
				// Full recovery: deflate.
				s.inRecovery = false
				s.cc.ExitRecovery()
				s.dupAcks = 0
			} else {
				// Partial ACK: retransmit next hole immediately.
				s.retransmitFirst()
				s.cc.OnPartialAck(float64(acked))
			}
		} else {
			s.dupAcks = 0
			s.cc.OnNewAck()
		}
		if s.done() {
			s.state = "done"
			s.clearRTO()
			if s.onDone != nil {
				s.onDone()
			}
			return
		}
		s.armRTO()
		s.pump()
	case ack == s.sndUna && s.inflight() > 0:
		s.dupAcks++
		if s.inRecovery {
			// Window inflation during recovery.
			s.cc.OnDupAckInRecovery()
			s.pump()
		} else if s.dupAcks == 3 {
			// Fast retransmit.
			s.cc.EnterRecovery(s.inflightF())
			s.inRecovery = true
			s.recoverSeq = s.sndNxt
			s.retransmitFirst()
		}
	}
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (s *Sender) inflight() int      { return int(s.sndNxt - s.sndUna) }
func (s *Sender) inflightF() float64 { return float64(s.sndNxt - s.sndUna) }

// done reports whether every payload byte is acknowledged.
func (s *Sender) done() bool {
	return s.totalBytes > 0 && s.Acked() >= s.totalBytes
}

// pump sends new segments while the congestion and receive windows
// allow, applying slow-start restart after idle periods.
func (s *Sender) pump() {
	if s.state != "established" {
		return
	}
	now := s.clock.Now()
	if s.inflight() == 0 && s.lastSend != 0 && now-s.lastSend > s.rto {
		// Slow-start restart (Figure 9(b)): the connection idled through
		// the outage; restart from a small window.
		s.cc.OnIdleRestart()
	}
	for {
		wnd := int(s.cc.Window())
		if s.rwnd < wnd {
			wnd = s.rwnd
		}
		if s.inflight() >= wnd {
			return
		}
		sent := uint64(s.sndNxt - s.isn - 1)
		if s.totalBytes > 0 && sent >= s.totalBytes {
			return
		}
		n := s.cfg.MSS
		if s.totalBytes > 0 && s.totalBytes-sent < uint64(n) {
			n = int(s.totalBytes - sent)
		}
		if s.inflight()+n > wnd && s.inflight() > 0 {
			return
		}
		seq := s.sndNxt
		s.sendSeg(packet.TCPAck, seq, make([]byte, n))
		s.sndNxt += uint32(n)
		if !s.rttValid {
			s.rttSeq = seq + uint32(n)
			s.rttAt = now
			s.rttValid = true
		}
		s.lastSend = now
		if s.rtoTimer.IsZero() {
			s.armRTO()
		}
	}
}

// retransmitFirst resends the oldest unacknowledged segment.
func (s *Sender) retransmitFirst() {
	n := s.cfg.MSS
	if int(s.sndNxt-s.sndUna) < n {
		n = int(s.sndNxt - s.sndUna)
	}
	if n <= 0 {
		return
	}
	s.Retransmits++
	s.rttValid = false // Karn's algorithm
	s.sendSeg(packet.TCPAck, s.sndUna, make([]byte, n))
	s.lastSend = s.clock.Now()
}

func (s *Sender) sendSeg(flags uint8, seq uint32, payload []byte) {
	th := packet.TCP{SrcPort: s.port, DstPort: s.pport, Seq: seq,
		Flags: flags, Window: uint16(min(s.cfg.RcvWnd, 0xffff))}
	s.out(packet.BuildTCP(s.local, s.peer, th, 64, payload))
}

func (s *Sender) sampleRTT(rtt time.Duration) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
}

func (s *Sender) armRTO() {
	s.clearRTO()
	rto := s.rto << s.backoff
	if rto > time.Minute {
		rto = time.Minute
	}
	s.rtoTimer = s.clock.Schedule(rto, s.onRTO)
}

func (s *Sender) clearRTO() {
	if !s.rtoTimer.IsZero() {
		s.rtoTimer.Stop()
		s.rtoTimer = sim.Timer{}
	}
}

func (s *Sender) onRTO() {
	s.rtoTimer = sim.Timer{}
	if s.state == "done" {
		return
	}
	s.Timeouts++
	if s.state == "syn-sent" {
		s.sendSeg(packet.TCPSyn, s.isn, nil)
		s.backoff++
		s.armRTO()
		return
	}
	if s.inflight() == 0 {
		return // nothing outstanding; timer was stale
	}
	// Timeout: collapse to one segment and re-enter slow start.
	s.cc.OnTimeout(s.inflightF())
	s.inRecovery = false
	s.dupAcks = 0
	s.backoff++
	s.retransmitFirst()
	s.armRTO()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
