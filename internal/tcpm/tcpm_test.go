package tcpm

import (
	"net/netip"
	"testing"
	"time"

	"vini/internal/packet"
	"vini/internal/sim"
)

var (
	clientA = netip.MustParseAddr("10.0.0.1")
	serverA = netip.MustParseAddr("10.0.0.2")
)

// channel is a minimal network: one-way delay, optional bandwidth limit,
// and a programmable drop decision.
type channel struct {
	loop  *sim.Loop
	delay time.Duration
	bps   float64 // 0 = infinite
	drop  func(dir int, dgram []byte) bool
	busy  [2]time.Duration
	snd   *Sender
	rcv   *Receiver
}

func (c *channel) send(dir int, dgram []byte) {
	if c.drop != nil && c.drop(dir, dgram) {
		return
	}
	now := c.loop.Now()
	at := c.delay
	if c.bps > 0 {
		wire := time.Duration(float64(len(dgram)*8) / c.bps * float64(time.Second))
		if c.busy[dir] < now {
			c.busy[dir] = now
		}
		c.busy[dir] += wire
		at = c.busy[dir] - now + c.delay
	}
	buf := append([]byte(nil), dgram...)
	c.loop.Schedule(at, func() {
		if dir == 0 {
			c.rcv.Deliver(buf)
		} else {
			c.snd.Deliver(buf)
		}
	})
}

func newPair(loop *sim.Loop, cfg Config, delay time.Duration, bps float64) (*Sender, *Receiver, *channel) {
	ch := &channel{loop: loop, delay: delay, bps: bps}
	snd := NewSender(loop, cfg, clientA, 5001, serverA, 5002,
		func(d []byte) { ch.send(0, d) })
	rcv := NewReceiver(loop, cfg, serverA, 5002,
		func(d []byte) { ch.send(1, d) })
	ch.snd, ch.rcv = snd, rcv
	return snd, rcv, ch
}

func TestBulkTransferCompletes(t *testing.T) {
	loop := sim.NewLoop(1)
	snd, rcv, _ := newPair(loop, Config{}, 5*time.Millisecond, 0)
	done := false
	snd.OnDone(func() { done = true })
	snd.Start(1 << 20)
	loop.Run(60 * time.Second)
	if !done {
		t.Fatalf("transfer incomplete: acked=%d", snd.Acked())
	}
	if rcv.Bytes != 1<<20 {
		t.Fatalf("receiver got %d bytes, want %d", rcv.Bytes, 1<<20)
	}
	if snd.Retransmits != 0 || snd.Timeouts != 0 {
		t.Fatalf("lossless path had retransmits=%d timeouts=%d", snd.Retransmits, snd.Timeouts)
	}
}

// TestWindowLimitedThroughput checks the Figure 9 premise: a 16 KB
// receive window over a 76 ms RTT caps throughput near rwnd/RTT.
func TestWindowLimitedThroughput(t *testing.T) {
	loop := sim.NewLoop(1)
	snd, _, _ := newPair(loop, Config{RcvWnd: 16 << 10}, 38*time.Millisecond, 0)
	snd.Start(0)
	start := loop.Now()
	loop.Run(20 * time.Second)
	elapsed := (loop.Now() - start).Seconds()
	mbps := float64(snd.Acked()) * 8 / elapsed / 1e6
	// rwnd/RTT = 16384*8/0.076 = 1.72 Mb/s; allow slack for slow start
	// and delayed-ACK interactions.
	if mbps < 1.0 || mbps > 2.0 {
		t.Fatalf("window-limited throughput = %.2f Mb/s, want ~1.7", mbps)
	}
}

func TestBandwidthLimitedThroughput(t *testing.T) {
	loop := sim.NewLoop(1)
	// Big window, 10 Mb/s bottleneck, short RTT: the link is the cap.
	snd, _, _ := newPair(loop, Config{RcvWnd: 1 << 20}, time.Millisecond, 10e6)
	snd.Start(0)
	loop.Run(10 * time.Second)
	mbps := float64(snd.Acked()) * 8 / 10 / 1e6
	if mbps < 8.5 || mbps > 10.1 {
		t.Fatalf("throughput = %.2f Mb/s, want ~9.6 (link-limited)", mbps)
	}
}

func TestFastRetransmitWithoutTimeout(t *testing.T) {
	loop := sim.NewLoop(1)
	dropped := false
	snd, rcv, ch := newPair(loop, Config{RcvWnd: 64 << 10}, 5*time.Millisecond, 0)
	ch.drop = func(dir int, dgram []byte) bool {
		// Drop exactly one mid-stream data segment.
		if dir != 0 || dropped {
			return false
		}
		var ip packet.IPv4
		seg, err := ip.Parse(dgram)
		if err != nil {
			return false
		}
		var th packet.TCP
		payload, err := th.Parse(seg)
		if err != nil || len(payload) == 0 {
			return false
		}
		if th.Seq > 100000 {
			dropped = true
			return true
		}
		return false
	}
	done := false
	snd.OnDone(func() { done = true })
	snd.Start(1 << 20)
	loop.Run(60 * time.Second)
	if !done || rcv.Bytes != 1<<20 {
		t.Fatalf("transfer incomplete: done=%v bytes=%d", done, rcv.Bytes)
	}
	if !dropped {
		t.Fatal("test never dropped a segment")
	}
	if snd.Retransmits == 0 {
		t.Fatal("no retransmission recorded")
	}
	if snd.Timeouts != 0 {
		t.Fatalf("recovery used %d timeouts; fast retransmit expected", snd.Timeouts)
	}
}

func TestRandomLossRecovers(t *testing.T) {
	loop := sim.NewLoop(77)
	rng := loop.RNG().Fork()
	snd, rcv, ch := newPair(loop, Config{RcvWnd: 64 << 10}, 5*time.Millisecond, 0)
	ch.drop = func(dir int, dgram []byte) bool {
		return dir == 0 && len(dgram) > 100 && rng.Bool(0.02)
	}
	done := false
	snd.OnDone(func() { done = true })
	snd.Start(2 << 20)
	loop.Run(10 * time.Minute)
	if !done {
		t.Fatalf("transfer under 2%% loss incomplete: acked=%d retr=%d to=%d",
			snd.Acked(), snd.Retransmits, snd.Timeouts)
	}
	if rcv.Bytes != 2<<20 {
		t.Fatalf("receiver bytes = %d", rcv.Bytes)
	}
	if snd.Retransmits == 0 {
		t.Fatal("no retransmissions under loss")
	}
}

// TestOutageStallAndSlowStartRestart reproduces the Figure 9 shape: a
// total outage stalls the stream; when the path heals the sender resumes
// from a slow-start window.
func TestOutageStallAndSlowStartRestart(t *testing.T) {
	loop := sim.NewLoop(1)
	outage := false
	snd, rcv, ch := newPair(loop, Config{RcvWnd: 16 << 10}, 38*time.Millisecond, 0)
	ch.drop = func(dir int, dgram []byte) bool { return outage }
	snd.Start(0)
	loop.Run(10 * time.Second)
	preBytes := rcv.Bytes
	if preBytes == 0 {
		t.Fatal("no progress before outage")
	}
	outage = true
	loop.Run(18 * time.Second)
	duringBytes := rcv.Bytes
	// Nothing (or almost nothing in flight) delivered during the outage.
	if duringBytes-preBytes > 64<<10 {
		t.Fatalf("%d bytes crossed a dead path", duringBytes-preBytes)
	}
	outage = false
	loop.Run(19 * time.Second)
	if snd.Cwnd() > 8*1448 {
		t.Fatalf("cwnd = %d right after restart, want slow-start-sized", snd.Cwnd())
	}
	loop.Run(30 * time.Second)
	if rcv.Bytes <= duringBytes {
		t.Fatal("stream did not resume after outage")
	}
	if snd.Timeouts == 0 {
		t.Fatal("outage should force RTO")
	}
	// The arrival log must show the gap: no arrivals in (10s, 18s).
	for _, a := range rcv.Arrivals {
		if a.At > 10500*time.Millisecond && a.At < 17800*time.Millisecond {
			t.Fatalf("arrival at %v during outage", a.At)
		}
	}
}

func TestArrivalLogMatchesByteStream(t *testing.T) {
	loop := sim.NewLoop(1)
	snd, rcv, _ := newPair(loop, Config{}, 2*time.Millisecond, 0)
	snd.Start(200 << 10)
	loop.Run(time.Minute)
	if len(rcv.Arrivals) == 0 {
		t.Fatal("no arrivals logged")
	}
	seen := uint32(0)
	for _, a := range rcv.Arrivals {
		if a.Offset+uint32(a.Len) > seen {
			seen = a.Offset + uint32(a.Len)
		}
	}
	if uint64(seen) != 200<<10 {
		t.Fatalf("arrival log covers %d bytes, want %d", seen, 200<<10)
	}
}

func TestStopAbandonsTransfer(t *testing.T) {
	loop := sim.NewLoop(1)
	snd, _, _ := newPair(loop, Config{}, 5*time.Millisecond, 0)
	snd.Start(0)
	loop.Run(time.Second)
	snd.Stop()
	acked := snd.Acked()
	loop.Run(5 * time.Second)
	if snd.Acked() != acked {
		t.Fatal("sender kept transmitting after Stop")
	}
}

func TestHandshakeRetriesUnderLoss(t *testing.T) {
	loop := sim.NewLoop(5)
	first := true
	snd, _, ch := newPair(loop, Config{}, 5*time.Millisecond, 0)
	ch.drop = func(dir int, dgram []byte) bool {
		if dir == 0 && first {
			first = false
			return true // drop the first SYN
		}
		return false
	}
	done := false
	snd.OnDone(func() { done = true })
	snd.Start(10 << 10)
	loop.Run(30 * time.Second)
	if !done {
		t.Fatal("transfer never completed after SYN loss")
	}
	if snd.Timeouts == 0 {
		t.Fatal("SYN loss must be recovered by timeout")
	}
}
