package tcpm

// Congestion is the window-based half of the workload runtime's rate
// seam (the datagram half is traffic.RateController): it owns the
// congestion window and ssthresh, and the Sender drives it with the
// ACK/loss events of the Reno state machine. Implementations must be
// deterministic — the window is float64 state whose every update is a
// fixed sequence of IEEE-754 ops on values derived from the simulation,
// so the same event sequence reproduces the same window bit-for-bit.
type Congestion interface {
	// Open resets the window for a new connection.
	Open()
	// Window returns the congestion window in bytes.
	Window() float64
	// OnNewAck grows the window for a new cumulative ACK outside
	// recovery (slow start below ssthresh, congestion avoidance above).
	OnNewAck()
	// OnDupAckInRecovery inflates the window by one segment while fast
	// recovery is in progress.
	OnDupAckInRecovery()
	// EnterRecovery reacts to a triple duplicate ACK: halve ssthresh
	// against the bytes in flight and set the inflated recovery window.
	EnterRecovery(inflight float64)
	// OnPartialAck deflates the window by the newly-acked bytes during
	// recovery (the sender retransmits the next hole itself).
	OnPartialAck(acked float64)
	// ExitRecovery deflates the window back to ssthresh.
	ExitRecovery()
	// OnTimeout reacts to an RTO: halve ssthresh against the bytes in
	// flight and collapse the window to one segment.
	OnTimeout(inflight float64)
	// OnIdleRestart applies slow-start restart after an idle period.
	OnIdleRestart()
}

// Reno is the classic Reno controller, the arithmetic previously inlined
// in Sender.handleAck/onRTO, relocated verbatim so the refactor is
// byte-identical.
type Reno struct {
	mss      float64
	initial  float64
	cwnd     float64
	ssthresh float64
}

// NewReno builds the controller from an endpoint config (defaults
// already applied).
func NewReno(cfg Config) *Reno {
	return &Reno{mss: float64(cfg.MSS), initial: float64(cfg.InitialSsthresh)}
}

func (c *Reno) Open() {
	c.cwnd = 2 * c.mss
	c.ssthresh = c.initial
}

func (c *Reno) Window() float64 { return c.cwnd }

func (c *Reno) OnNewAck() {
	if c.cwnd < c.ssthresh {
		c.cwnd += c.mss // slow start
	} else {
		c.cwnd += c.mss * c.mss / c.cwnd
	}
}

func (c *Reno) OnDupAckInRecovery() { c.cwnd += c.mss }

func (c *Reno) EnterRecovery(inflight float64) {
	c.ssthresh = max64(inflight/2, 2*c.mss)
	c.cwnd = c.ssthresh + 3*c.mss
}

func (c *Reno) OnPartialAck(acked float64) {
	c.cwnd -= acked
	if c.cwnd < c.mss {
		c.cwnd = c.mss
	}
}

func (c *Reno) ExitRecovery() { c.cwnd = c.ssthresh }

func (c *Reno) OnTimeout(inflight float64) {
	c.ssthresh = max64(inflight/2, 2*c.mss)
	c.cwnd = c.mss
}

func (c *Reno) OnIdleRestart() { c.cwnd = 2 * c.mss }
