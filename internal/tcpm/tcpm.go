// Package tcpm implements the TCP Reno endpoints the paper's traffic
// tools need: iperf's bulk-transfer test (Tables 2 and 4, Figure 9) is a
// Reno sender against a fixed receive window — 16 KB in Figure 9, which
// is what caps throughput at ~window/RTT — and the per-packet arrival
// log a receiver keeps is exactly the tcpdump trace Figure 9(b) plots.
//
// Implemented behaviour: three-way handshake, slow start, congestion
// avoidance, fast retransmit/fast recovery on triple duplicate ACKs,
// RFC 6298 retransmission timeout with exponential backoff, delayed
// ACKs, receive-window flow control with out-of-order reassembly, and
// slow-start restart after idle (visible in Figure 9(b)).
package tcpm

import (
	"net/netip"
	"time"

	"vini/internal/packet"
	"vini/internal/sim"
)

// Config parameterizes an endpoint pair.
type Config struct {
	// MSS is the maximum segment size (default 1448, Ethernet MTU minus
	// IP and TCP headers plus the timestamp option budget iperf saw).
	MSS int
	// RcvWnd is the receiver's advertised window in bytes (default
	// 16 KB, iperf 1.7.0's default per the paper).
	RcvWnd int
	// MinRTO clamps the retransmission timeout (default 200 ms, the
	// Linux minimum of the era).
	MinRTO time.Duration
	// InitialSsthresh defaults to 64 KB.
	InitialSsthresh int
}

func (c *Config) setDefaults() {
	if c.MSS <= 0 {
		c.MSS = 1448
	}
	if c.RcvWnd <= 0 {
		c.RcvWnd = 16 << 10
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.InitialSsthresh <= 0 {
		c.InitialSsthresh = 64 << 10
	}
}

// Output transmits a serialized IP datagram (typically Node.StackSend).
type Output func(dgram []byte)

// Arrival is one data-segment arrival at the receiver, Figure 9(b)'s
// y-axis (position in the byte stream) against its x-axis (time).
type Arrival struct {
	At     time.Duration
	Offset uint32 // position in stream of the segment's first byte
	Len    int
}

// Receiver is the sink endpoint.
type Receiver struct {
	cfg     Config
	clock   sim.Clock
	out     Output
	local   netip.Addr
	port    uint16
	peer    netip.Addr
	pport   uint16
	started bool
	// rcvNxt is the next expected sequence number.
	rcvNxt uint32
	isn    uint32
	// ooo holds out-of-order segments by sequence number.
	ooo map[uint32]int
	// Bytes counts in-order payload bytes delivered.
	Bytes uint64
	// Arrivals is the tcpdump-style per-segment log (data segments that
	// advanced or filled the stream, including retransmissions).
	Arrivals []Arrival
	// delayed-ACK state: one un-ACKed segment allowed.
	ackPending bool
	ackTimer   sim.Timer
}

// NewReceiver creates a listening endpoint; wire its Deliver to the
// node's TCP stack handler for the chosen port.
func NewReceiver(clock sim.Clock, cfg Config, local netip.Addr, port uint16, out Output) *Receiver {
	cfg.setDefaults()
	return &Receiver{cfg: cfg, clock: clock, out: out, local: local, port: port,
		ooo: make(map[uint32]int)}
}

// Close cancels the receiver's pending delayed-ACK timer so workload
// teardown leaves the domain heap clean (the owning endpoint releases
// the port registration separately).
func (r *Receiver) Close() {
	if !r.ackTimer.IsZero() {
		r.ackTimer.Stop()
		r.ackTimer = sim.Timer{}
	}
	r.ackPending = false
}

// Deliver feeds an incoming IP datagram addressed to the receiver.
func (r *Receiver) Deliver(dgram []byte) {
	var ip packet.IPv4
	seg, err := ip.Parse(dgram)
	if err != nil {
		return
	}
	var th packet.TCP
	payload, err := th.Parse(seg)
	if err != nil || th.DstPort != r.port {
		return
	}
	switch {
	case th.Flags&packet.TCPSyn != 0:
		r.peer = ip.Src
		r.pport = th.SrcPort
		r.isn = th.Seq
		r.rcvNxt = th.Seq + 1
		r.started = true
		r.Bytes = 0
		r.sendFlags(packet.TCPSyn|packet.TCPAck, 0, r.rcvNxt)
	case !r.started:
		// Data before SYN: ignore.
	case len(payload) > 0:
		r.Arrivals = append(r.Arrivals, Arrival{
			At: r.clock.Now(), Offset: th.Seq - r.isn - 1, Len: len(payload)})
		r.accept(th.Seq, len(payload))
	case th.Flags&packet.TCPFin != 0:
		r.rcvNxt++
		r.sendAckNow()
	}
}

// accept integrates a data segment and schedules acknowledgement.
func (r *Receiver) accept(seq uint32, n int) {
	switch {
	case seq == r.rcvNxt:
		r.rcvNxt += uint32(n)
		r.Bytes += uint64(n)
		// Pull any contiguous out-of-order segments.
		for {
			l, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt += uint32(l)
			r.Bytes += uint64(l)
		}
		r.scheduleAck()
	case seqAfter(seq, r.rcvNxt):
		// Out of order within the window: buffer and send immediate
		// duplicate ACK (fast-retransmit trigger at the sender).
		if seq-r.rcvNxt < uint32(r.cfg.RcvWnd) {
			r.ooo[seq] = n
		}
		r.sendAckNow()
	default:
		// Below rcvNxt: a retransmission we already have; ACK at once.
		r.sendAckNow()
	}
}

// scheduleAck implements delayed ACKs: every second segment, or 40 ms.
func (r *Receiver) scheduleAck() {
	if r.ackPending {
		r.sendAckNow()
		return
	}
	r.ackPending = true
	r.ackTimer = r.clock.Schedule(40*time.Millisecond, r.sendAckNow)
}

func (r *Receiver) sendAckNow() {
	if !r.ackTimer.IsZero() {
		r.ackTimer.Stop()
		r.ackTimer = sim.Timer{}
	}
	r.ackPending = false
	r.sendFlags(packet.TCPAck, 0, r.rcvNxt)
}

func (r *Receiver) sendFlags(flags uint8, seq, ack uint32) {
	wnd := r.cfg.RcvWnd - r.oooBytes()
	if wnd < 0 {
		wnd = 0
	}
	if wnd > 0xffff {
		wnd = 0xffff
	}
	th := packet.TCP{SrcPort: r.port, DstPort: r.pport, Seq: seq, Ack: ack,
		Flags: flags, Window: uint16(wnd)}
	r.out(packet.BuildTCP(r.local, r.peer, th, 64, nil))
}

func (r *Receiver) oooBytes() int {
	total := 0
	for _, n := range r.ooo {
		total += n
	}
	return total
}

// seqAfter reports a > b in 32-bit sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }
