package rip

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"vini/internal/fib"
	"vini/internal/sim"
)

// harness wires RIP routers over delayed pipes.
type harness struct {
	loop  *sim.Loop
	nodes []*hnode
}

type hnode struct {
	h      *harness
	r      *Router
	routes []fib.Route
	pipes  map[int]hpipe
	addrs  map[int]netip.Addr
}

type hpipe struct {
	peer   *hnode
	peerIf int
	delay  time.Duration
	down   *bool
}

func (n *hnode) SendRouting(ifIndex int, payload []byte) {
	p, ok := n.pipes[ifIndex]
	if !ok {
		return
	}
	src := n.addrs[ifIndex]
	buf := append([]byte(nil), payload...)
	n.h.loop.Schedule(p.delay, func() {
		if *p.down {
			return
		}
		p.peer.r.Receive(p.peerIf, src, buf)
	})
}

func newHarness() *harness { return &harness{loop: sim.NewLoop(1)} }

func (h *harness) addRouter(stubs ...string) *hnode {
	cfg := Config{Update: time.Second, Timeout: 4 * time.Second, GC: 3 * time.Second}
	for _, s := range stubs {
		cfg.Stubs = append(cfg.Stubs, netip.MustParsePrefix(s))
	}
	n := &hnode{h: h, pipes: make(map[int]hpipe), addrs: make(map[int]netip.Addr)}
	n.r = New(h.loop, cfg, n)
	n.r.OnRoutes(func(rs []fib.Route) { n.routes = rs })
	h.nodes = append(h.nodes, n)
	return n
}

var subnetSeq byte

func (h *harness) connect(a, b *hnode, delay time.Duration) *bool {
	subnetSeq++
	pa := netip.AddrFrom4([4]byte{10, 9, subnetSeq, 1})
	pb := netip.AddrFrom4([4]byte{10, 9, subnetSeq, 2})
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 9, subnetSeq, 0}), 30)
	ia, ib := len(a.pipes), len(b.pipes)
	a.r.AddInterface(Interface{Index: ia, Addr: pa, Prefix: prefix})
	b.r.AddInterface(Interface{Index: ib, Addr: pb, Prefix: prefix})
	a.addrs[ia], b.addrs[ib] = pa, pb
	down := new(bool)
	a.pipes[ia] = hpipe{peer: b, peerIf: ib, delay: delay, down: down}
	b.pipes[ib] = hpipe{peer: a, peerIf: ia, delay: delay, down: down}
	return down
}

func (n *hnode) routeTo(p string) (fib.Route, bool) {
	pfx := netip.MustParsePrefix(p)
	for _, r := range n.routes {
		if r.Prefix == pfx {
			return r, true
		}
	}
	return fib.Route{}, false
}

func TestTwoRoutersLearnStubs(t *testing.T) {
	h := newHarness()
	a := h.addRouter("10.0.0.1/32")
	b := h.addRouter("10.0.0.2/32")
	h.connect(a, b, time.Millisecond)
	a.r.Start()
	b.r.Start()
	h.loop.Run(5 * time.Second)
	r, ok := a.routeTo("10.0.0.2/32")
	if !ok || r.Metric != 1 {
		t.Fatalf("a->b = %+v ok=%v", r, ok)
	}
	if _, ok := b.routeTo("10.0.0.1/32"); !ok {
		t.Fatal("b missing a's stub")
	}
}

func TestMetricAccumulatesAlongLine(t *testing.T) {
	h := newHarness()
	a := h.addRouter("10.0.0.1/32")
	b := h.addRouter()
	c := h.addRouter("10.0.0.3/32")
	h.connect(a, b, time.Millisecond)
	h.connect(b, c, time.Millisecond)
	for _, n := range h.nodes {
		n.r.Start()
	}
	h.loop.Run(10 * time.Second)
	r, ok := a.routeTo("10.0.0.3/32")
	if !ok || r.Metric != 2 {
		t.Fatalf("a->c = %+v ok=%v, want metric 2", r, ok)
	}
}

func TestRouteTimesOutAfterFailure(t *testing.T) {
	h := newHarness()
	a := h.addRouter("10.0.0.1/32")
	b := h.addRouter("10.0.0.2/32")
	down := h.connect(a, b, time.Millisecond)
	a.r.Start()
	b.r.Start()
	h.loop.Run(5 * time.Second)
	if _, ok := a.routeTo("10.0.0.2/32"); !ok {
		t.Fatal("route not learned")
	}
	*down = true
	h.loop.Run(15 * time.Second)
	if _, ok := a.routeTo("10.0.0.2/32"); ok {
		t.Fatal("route survived timeout after link failure")
	}
}

func TestFailoverToLongerPath(t *testing.T) {
	h := newHarness()
	a := h.addRouter("10.0.0.1/32")
	b := h.addRouter("10.0.0.2/32")
	c := h.addRouter()
	downAB := h.connect(a, b, time.Millisecond)
	h.connect(a, c, time.Millisecond)
	h.connect(c, b, time.Millisecond)
	for _, n := range h.nodes {
		n.r.Start()
	}
	h.loop.Run(6 * time.Second)
	r, _ := a.routeTo("10.0.0.2/32")
	if r.Metric != 1 {
		t.Fatalf("initial metric = %d", r.Metric)
	}
	*downAB = true
	h.loop.Run(30 * time.Second)
	r, ok := a.routeTo("10.0.0.2/32")
	if !ok || r.Metric != 2 {
		t.Fatalf("failover route = %+v ok=%v, want metric 2 via c", r, ok)
	}
}

func TestPoisonedReverseInUpdates(t *testing.T) {
	// Capture what a advertises back toward the interface it learned
	// from: the metric must be Infinity.
	h := newHarness()
	a := h.addRouter("10.0.0.1/32")
	b := h.addRouter("10.0.0.2/32")
	h.connect(a, b, time.Millisecond)
	a.r.Start()
	b.r.Start()
	h.loop.Run(5 * time.Second)
	var captured []advert
	tr := transportFunc(func(ifIndex int, payload []byte) {
		ads, err := parseUpdate(payload)
		if err == nil && ifIndex == 0 {
			captured = ads
		}
	})
	// Swap a's transport for a capturing one and force an update.
	a.r.tr = tr
	a.r.sendUpdates(false)
	found := false
	for _, ad := range captured {
		if ad.prefix.String() == "10.0.0.2/32" {
			found = true
			if ad.metric != Infinity {
				t.Fatalf("b's stub advertised back at metric %d, want Infinity", ad.metric)
			}
		}
	}
	if !found {
		t.Fatal("update did not mention the learned prefix at all")
	}
}

type transportFunc func(ifIndex int, payload []byte)

func (f transportFunc) SendRouting(i int, p []byte) { f(i, p) }

func TestTriggeredUpdatePropagatesFast(t *testing.T) {
	h := newHarness()
	a := h.addRouter("10.0.0.1/32")
	b := h.addRouter()
	c := h.addRouter()
	h.connect(a, b, time.Millisecond)
	h.connect(b, c, time.Millisecond)
	for _, n := range h.nodes {
		n.r.Start()
	}
	// With 1s periodic updates, plain periodic convergence to c takes
	// ~2s; triggered updates deliver within a few ms of b learning.
	h.loop.Run(1100 * time.Millisecond)
	if _, ok := c.routeTo("10.0.0.1/32"); !ok {
		t.Fatalf("triggered update did not reach c quickly: %v", c.routes)
	}
}

func TestWireRoundTrip(t *testing.T) {
	f := func(a, b, c, d byte, bits8, metric8 uint8) bool {
		bits := int(bits8) % 33
		ads := []advert{{
			prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, c, d}), bits),
			metric: uint32(metric8) % 17,
		}}
		got, err := parseUpdate(marshalUpdate(ads))
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].prefix == ads[0].prefix && got[0].metric == ads[0].metric
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parseUpdate([]byte{1, 2, 0, 0}); err == nil {
		t.Fatal("bad command accepted")
	}
	if _, err := parseUpdate([]byte{2, 2, 0, 5}); err == nil {
		t.Fatal("truncated accepted")
	}
	bad := marshalUpdate([]advert{{prefix: netip.MustParsePrefix("10.0.0.0/8"), metric: 1}})
	bad[8] = 77 // prefix bits
	if _, err := parseUpdate(bad); err == nil {
		t.Fatal("bad prefix bits accepted")
	}
}

func TestStopSilences(t *testing.T) {
	h := newHarness()
	a := h.addRouter("10.0.0.1/32")
	b := h.addRouter("10.0.0.2/32")
	h.connect(a, b, time.Millisecond)
	a.r.Start()
	b.r.Start()
	h.loop.Run(3 * time.Second)
	a.r.Stop()
	h.loop.Run(20 * time.Second)
	if _, ok := b.routeTo("10.0.0.1/32"); ok {
		t.Fatal("b kept a's route after a stopped (no timeout)")
	}
}
