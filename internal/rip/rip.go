// Package rip implements a RIPv2-style distance-vector protocol, the
// second interior protocol in the XORP suite IIAS uses as its control
// plane. It exists both for completeness and for the paper's concluding
// usage mode — running different routing protocols in parallel on the
// same physical infrastructure (one slice OSPF, another RIP).
//
// Implemented behaviour: periodic full updates, split horizon with
// poisoned reverse, triggered updates on metric changes, the 16-hop
// infinity, route timeout and garbage collection.
package rip

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"vini/internal/fib"
	"vini/internal/sim"
)

// Infinity is the RIP unreachable metric.
const Infinity = 16

// Transport sends a RIP packet out a virtual interface (same contract as
// ospf.Transport).
type Transport interface {
	SendRouting(ifIndex int, payload []byte)
}

// Interface is one point-to-point virtual interface.
type Interface struct {
	Name   string
	Index  int
	Addr   netip.Addr
	Prefix netip.Prefix
}

// Config parameterizes a router.
type Config struct {
	// Update is the periodic advertisement interval (RFC: 30 s).
	Update time.Duration
	// Timeout marks a route stale (RFC: 180 s).
	Timeout time.Duration
	// GC removes a stale route after advertising its death (RFC: 120 s).
	GC time.Duration
	// Stubs are local prefixes advertised at metric 1.
	Stubs []netip.Prefix
	// Ticks, when set, carries the periodic update timer — typically a
	// sim.TickWheel coalescing many routers' ticks into shared slot
	// events. Nil means the main clock.
	Ticks sim.Clock
}

func (c *Config) setDefaults() {
	if c.Update <= 0 {
		c.Update = 30 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 6 * c.Update
	}
	if c.GC <= 0 {
		c.GC = 4 * c.Update
	}
}

// entry is one learned route.
type entry struct {
	prefix  netip.Prefix
	metric  uint32
	nextHop netip.Addr
	ifIndex int
	learned time.Duration
	deadAt  time.Duration // when metric became Infinity (for GC)
	local   bool
}

// Router is one RIP speaker.
type Router struct {
	cfg   Config
	clock sim.Clock
	// ticks carries the periodic timer (cfg.Ticks, or clock when unset).
	ticks    sim.Clock
	tr       Transport
	ifaces   []*Interface
	table    map[netip.Prefix]*entry
	onRoutes func([]fib.Route)
	// onEvent observes protocol activity (telemetry hook): "advertise"
	// with the number of routes emitted, "expire" with the number of
	// routes newly marked unreachable.
	onEvent func(event string, n int)
	// lastRoutes is the most recently emitted route set (see Routes).
	lastRoutes []fib.Route
	started    bool
	timer      sim.Timer
}

// New creates a router; call AddInterface then Start.
func New(clock sim.Clock, cfg Config, tr Transport) *Router {
	cfg.setDefaults()
	ticks := cfg.Ticks
	if ticks == nil {
		ticks = clock
	}
	return &Router{cfg: cfg, clock: clock, ticks: ticks, tr: tr, table: make(map[netip.Prefix]*entry)}
}

// AddInterface registers an interface before Start.
func (r *Router) AddInterface(ifc Interface) error {
	if r.started {
		return fmt.Errorf("rip: AddInterface after Start")
	}
	c := ifc
	r.ifaces = append(r.ifaces, &c)
	return nil
}

// OnRoutes installs the FEA hook.
func (r *Router) OnRoutes(fn func([]fib.Route)) { r.onRoutes = fn }

// OnEvent installs an observer for protocol activity; it fires in the
// router's clock domain (telemetry timeline hook).
func (r *Router) OnEvent(fn func(event string, n int)) { r.onEvent = fn }

// Start seeds local routes and begins periodic updates.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	for _, p := range r.cfg.Stubs {
		r.table[p.Masked()] = &entry{prefix: p.Masked(), metric: 0, local: true}
	}
	for _, ifc := range r.ifaces {
		p := ifc.Prefix.Masked()
		r.table[p] = &entry{prefix: p, metric: 0, local: true, ifIndex: ifc.Index}
	}
	r.emit()
	r.periodic()
}

// Stop cancels the periodic timer.
func (r *Router) Stop() {
	r.started = false
	if !r.timer.IsZero() {
		r.timer.Stop()
	}
}

func (r *Router) periodic() {
	if !r.started {
		return
	}
	r.expire()
	r.sendUpdates(false)
	r.timer = r.ticks.Schedule(r.cfg.Update, r.periodic)
}

func (r *Router) expire() {
	now := r.clock.Now()
	expired := 0
	for p, e := range r.table {
		if e.local {
			continue
		}
		if e.metric < Infinity && now-e.learned > r.cfg.Timeout {
			e.metric = Infinity
			e.deadAt = now
			expired++
		}
		if e.metric >= Infinity && e.deadAt != 0 && now-e.deadAt > r.cfg.GC {
			delete(r.table, p)
		}
	}
	if expired > 0 {
		if r.onEvent != nil {
			r.onEvent("expire", expired)
		}
		r.emit()
	}
}

// sendUpdates advertises the table on every interface with split horizon
// and poisoned reverse.
func (r *Router) sendUpdates(_ bool) {
	if r.onEvent != nil && len(r.ifaces) > 0 {
		r.onEvent("advertise", len(r.table))
	}
	for _, ifc := range r.ifaces {
		var ads []advert
		prefixes := make([]netip.Prefix, 0, len(r.table))
		for p := range r.table {
			prefixes = append(prefixes, p)
		}
		sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].String() < prefixes[j].String() })
		for _, p := range prefixes {
			e := r.table[p]
			m := e.metric + 1
			if m > Infinity {
				m = Infinity
			}
			if !e.local && e.ifIndex == ifc.Index {
				m = Infinity // poisoned reverse
			}
			ads = append(ads, advert{prefix: p, metric: m})
		}
		if len(ads) > 0 {
			r.tr.SendRouting(ifc.Index, marshalUpdate(ads))
		}
	}
}

// Receive processes a RIP packet from a neighbor.
func (r *Router) Receive(ifIndex int, src netip.Addr, payload []byte) error {
	if !r.started {
		return nil
	}
	ads, err := parseUpdate(payload)
	if err != nil {
		return err
	}
	now := r.clock.Now()
	changed := false
	for _, ad := range ads {
		p := ad.prefix.Masked()
		m := ad.metric
		if m > Infinity {
			m = Infinity
		}
		cur, have := r.table[p]
		switch {
		case have && cur.local:
			// Never override local routes.
		case !have && m < Infinity:
			r.table[p] = &entry{prefix: p, metric: m, nextHop: src, ifIndex: ifIndex, learned: now}
			changed = true
		case have && cur.nextHop == src && cur.ifIndex == ifIndex:
			// Update from the current next hop always applies.
			if m != cur.metric {
				cur.metric = m
				changed = true
				if m >= Infinity {
					cur.deadAt = now
				}
			}
			if m < Infinity {
				cur.learned = now
			}
		case have && m < cur.metric:
			cur.metric = m
			cur.nextHop = src
			cur.ifIndex = ifIndex
			cur.learned = now
			changed = true
		}
	}
	if changed {
		r.emit()
		r.sendUpdates(true) // triggered update
	}
	return nil
}

// emit pushes the current route set to the FEA hook.
func (r *Router) emit() {
	if r.onRoutes == nil {
		return
	}
	var routes []fib.Route
	for _, e := range r.table {
		if e.local || e.metric >= Infinity {
			continue
		}
		routes = append(routes, fib.Route{
			Prefix:  e.prefix,
			NextHop: e.nextHop,
			OutPort: e.ifIndex,
			Metric:  e.metric,
		})
	}
	sort.Slice(routes, func(i, j int) bool {
		return routes[i].Prefix.String() < routes[j].Prefix.String()
	})
	r.lastRoutes = append(r.lastRoutes[:0], routes...)
	r.onRoutes(routes)
}

// Routes returns a copy of the route set most recently handed to the
// FEA, for the control-plane/data-plane consistency checkers.
func (r *Router) Routes() []fib.Route {
	out := make([]fib.Route, len(r.lastRoutes))
	copy(out, r.lastRoutes)
	return out
}

// Table returns a snapshot of all entries, for diagnostics.
func (r *Router) Table() []fib.Route {
	var out []fib.Route
	for _, e := range r.table {
		out = append(out, fib.Route{Prefix: e.prefix, NextHop: e.nextHop,
			OutPort: e.ifIndex, Metric: e.metric})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// advert is one route in an update.
type advert struct {
	prefix netip.Prefix
	metric uint32
}

// marshalUpdate encodes a RIPv2-style response packet.
func marshalUpdate(ads []advert) []byte {
	out := make([]byte, 4, 4+len(ads)*12)
	out[0] = 2 // command: response
	out[1] = 2 // version
	binary.BigEndian.PutUint16(out[2:4], uint16(len(ads)))
	for _, ad := range ads {
		a := ad.prefix.Addr().As4()
		out = append(out, a[:]...)
		out = append(out, byte(ad.prefix.Bits()), 0, 0, 0)
		out = binary.BigEndian.AppendUint32(out, ad.metric)
	}
	return out
}

func parseUpdate(b []byte) ([]advert, error) {
	if len(b) < 4 || b[0] != 2 || b[1] != 2 {
		return nil, fmt.Errorf("rip: bad packet header")
	}
	n := int(binary.BigEndian.Uint16(b[2:4]))
	b = b[4:]
	if len(b) < 12*n {
		return nil, fmt.Errorf("rip: truncated update")
	}
	ads := make([]advert, 0, n)
	for i := 0; i < n; i++ {
		addr := netip.AddrFrom4([4]byte(b[0:4]))
		bits := int(b[4])
		if bits > 32 {
			return nil, fmt.Errorf("rip: bad prefix length %d", bits)
		}
		ads = append(ads, advert{
			prefix: netip.PrefixFrom(addr, bits),
			metric: binary.BigEndian.Uint32(b[8:12]),
		})
		b = b[12:]
	}
	return ads, nil
}
