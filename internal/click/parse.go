package click

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseConfig parses a Click-language configuration into router
// declarations and connections and applies them to a new router bound to
// ctx. The supported subset covers what IIAS generates:
//
//	// comments and /* comments */
//	name :: Class(arg1, arg2);       // declaration
//	name :: Class;                   // declaration without arguments
//	a -> b -> c;                     // connection chain (ports default 0)
//	a[1] -> [2]b;                    // explicit ports
//
// Elements must be declared before they are referenced in a connection.
func ParseConfig(ctx *Context, config string) (*Router, error) {
	r := NewRouter(ctx)
	if err := ParseInto(r, config); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseInto parses config into an existing router, allowing programmatic
// elements (tunnels bound to sockets, say) to be declared first.
func ParseInto(r *Router, config string) error {
	stmts, err := splitStatements(config)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := parseStatement(r, s); err != nil {
			return err
		}
	}
	return nil
}

// splitStatements strips comments and splits on top-level semicolons.
func splitStatements(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	depth := 0
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(s) && s[i+1] == '*':
			end := strings.Index(s[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("click: unterminated /* comment")
			}
			i += end + 4
		case c == '(':
			depth++
			cur.WriteByte(c)
			i++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("click: unbalanced ')'")
			}
			cur.WriteByte(c)
			i++
		case c == ';' && depth == 0:
			if t := strings.TrimSpace(cur.String()); t != "" {
				out = append(out, t)
			}
			cur.Reset()
			i++
		default:
			cur.WriteByte(c)
			i++
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("click: unbalanced '('")
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out, nil
}

func parseStatement(r *Router, stmt string) error {
	if idx := topLevelIndex(stmt, "::"); idx >= 0 {
		return parseDeclaration(r, stmt, idx)
	}
	if topLevelIndex(stmt, "->") >= 0 {
		return parseChain(r, stmt)
	}
	return fmt.Errorf("click: cannot parse statement %q", stmt)
}

// topLevelIndex finds needle outside parentheses.
func topLevelIndex(s, needle string) int {
	depth := 0
	for i := 0; i+len(needle) <= len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && s[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

func parseDeclaration(r *Router, stmt string, sep int) error {
	names := strings.Split(stmt[:sep], ",")
	rest := strings.TrimSpace(stmt[sep+2:])
	class := rest
	var args []string
	if p := strings.IndexByte(rest, '('); p >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return fmt.Errorf("click: malformed declaration %q", stmt)
		}
		class = strings.TrimSpace(rest[:p])
		var err error
		args, err = SplitArgs(rest[p+1 : len(rest)-1])
		if err != nil {
			return err
		}
	}
	if !validIdent(class) {
		return fmt.Errorf("click: bad class name %q", class)
	}
	for _, n := range names {
		n = strings.TrimSpace(n)
		if !validIdent(n) {
			return fmt.Errorf("click: bad element name %q", n)
		}
		if err := r.AddElement(n, class, args); err != nil {
			return err
		}
	}
	return nil
}

// SplitArgs splits a Click argument string on top-level commas, trimming
// whitespace. Nested parentheses and double-quoted strings are preserved.
func SplitArgs(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			cur.WriteByte(c)
			if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
			cur.WriteByte(c)
		case c == '(':
			depth++
			cur.WriteByte(c)
		case c == ')':
			depth--
			cur.WriteByte(c)
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inStr {
		return nil, fmt.Errorf("click: unterminated string in args %q", s)
	}
	if t := strings.TrimSpace(cur.String()); t != "" || len(out) > 0 {
		out = append(out, t)
	}
	// Drop a single trailing empty arg from "a," style text.
	for len(out) > 0 && out[len(out)-1] == "" {
		out = out[:len(out)-1]
	}
	return out, nil
}

// endpoint is one side of a connection: name with optional [port].
type endpoint struct {
	name    string
	inPort  int
	outPort int
}

func parseChain(r *Router, stmt string) error {
	parts := splitTopLevel(stmt, "->")
	if len(parts) < 2 {
		return fmt.Errorf("click: bad connection %q", stmt)
	}
	eps := make([]endpoint, len(parts))
	for i, p := range parts {
		ep, err := parseEndpoint(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		eps[i] = ep
	}
	for i := 0; i+1 < len(eps); i++ {
		if err := r.Connect(eps[i].name, eps[i].outPort, eps[i+1].name, eps[i+1].inPort); err != nil {
			return err
		}
	}
	return nil
}

func splitTopLevel(s, sep string) []string {
	var out []string
	depth, last := 0, 0
	for i := 0; i+len(sep) <= len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && s[i:i+len(sep)] == sep {
			out = append(out, s[last:i])
			last = i + len(sep)
			i += len(sep) - 1
		}
	}
	out = append(out, s[last:])
	return out
}

// parseEndpoint parses "[2]name[3]", "name[3]", "[2]name", or "name".
func parseEndpoint(s string) (endpoint, error) {
	ep := endpoint{}
	if strings.HasPrefix(s, "[") {
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return ep, fmt.Errorf("click: bad endpoint %q", s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(s[1:end]))
		if err != nil {
			return ep, fmt.Errorf("click: bad input port in %q", s)
		}
		ep.inPort = n
		s = strings.TrimSpace(s[end+1:])
	}
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return ep, fmt.Errorf("click: bad endpoint %q", s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(s[i+1 : len(s)-1]))
		if err != nil {
			return ep, fmt.Errorf("click: bad output port in %q", s)
		}
		ep.outPort = n
		s = strings.TrimSpace(s[:i])
	}
	if !validIdent(s) {
		return ep, fmt.Errorf("click: bad element name %q", s)
	}
	ep.name = s
	return ep, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || r == '_':
		case (unicode.IsDigit(r) || r == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}
