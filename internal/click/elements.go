package click

import (
	"encoding/hex"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"vini/internal/fib"
	"vini/internal/nat"
	"vini/internal/packet"
	"vini/internal/telemetry"
)

func init() {
	Register("FromTap", newPassthrough)
	Register("FromTunnel", newPassthrough)
	Register("FromVPN", newPassthrough)
	Register("Null", newPassthrough)
	Register("Discard", newDiscard)
	Register("Counter", newCounter)
	Register("Tee", newTee)
	Register("Paint", newPaint)
	Register("CheckPaint", newCheckPaint)
	Register("Classifier", newClassifier)
	Register("CheckIPHeader", newCheckIPHeader)
	Register("DecIPTTL", newDecIPTTL)
	Register("LookupIPRoute", newLookupIPRoute)
	Register("EncapTunnel", newEncapTunnel)
	Register("ToTap", newToTap)
	Register("IPNAPT", newIPNAPT)
	Register("Queue", newQueue)
	Register("BandwidthShaper", newBandwidthShaper)
	Register("LinkFail", newLinkFail)
	Register("DupSuppress", newDupSuppress)
	Register("ToTunnel", newToTunnel)
	Register("ICMPError", newICMPError)
	Register("Strip", newStrip)
	Register("ToExternal", newToExternal)
	Register("ToVPN", newToVPN)
	Register("EtherEncap", newEtherEncap)
	Register("SetTimestamp", newSetTimestamp)
}

// passthrough forwards input 0 to output 0. It names the graph entry
// points (FromTap, FromTunnel, FromVPN) that external drivers push into.
type passthrough struct {
	base
	class string
}

func newPassthrough(name string, args []string) (Element, error) {
	return &passthrough{base: base{name: name}, class: "Null"}, nil
}

func (e *passthrough) Class() string { return e.class }
func (e *passthrough) Push(port int, p *packet.Packet) {
	e.trace("pass", p)
	e.out.Output(0, p)
}

// discard drops everything, counting.
type discard struct {
	base
	count uint64
	mDrop *telemetry.Counter
}

func newDiscard(name string, args []string) (Element, error) {
	return &discard{base: base{name: name}}, nil
}

func (e *discard) Class() string { return "Discard" }
func (e *discard) Instrument(sc *telemetry.Scope) { e.mDrop = sc.Counter("drops") }
func (e *discard) Push(port int, p *packet.Packet) {
	e.count++
	e.mDrop.Inc()
	e.trace("discard", p)
	p.Release()
}

func (e *discard) Handler(name, value string) (string, error) {
	if name == "count" && value == "" {
		return strconv.FormatUint(e.count, 10), nil
	}
	return "", fmt.Errorf("discard: no handler %q", name)
}

// counter counts packets and bytes, passing them through.
type counter struct {
	base
	packets, bytes uint64
	mPkts, mBytes  *telemetry.Counter
}

func newCounter(name string, args []string) (Element, error) {
	return &counter{base: base{name: name}}, nil
}

func (e *counter) Class() string { return "Counter" }
func (e *counter) Instrument(sc *telemetry.Scope) {
	e.mPkts = sc.Counter("packets")
	e.mBytes = sc.Counter("bytes")
}
func (e *counter) Push(port int, p *packet.Packet) {
	e.packets++
	e.bytes += uint64(p.Len())
	e.mPkts.Inc()
	e.mBytes.Add(uint64(p.Len()))
	e.out.Output(0, p)
}

func (e *counter) Handler(name, value string) (string, error) {
	switch {
	case name == "count" && value == "":
		return strconv.FormatUint(e.packets, 10), nil
	case name == "byte_count" && value == "":
		return strconv.FormatUint(e.bytes, 10), nil
	case name == "reset":
		e.packets, e.bytes = 0, 0
		return "", nil
	}
	return "", fmt.Errorf("counter: no handler %q", name)
}

// tee duplicates input to n outputs.
type tee struct {
	base
	n int
}

func newTee(name string, args []string) (Element, error) {
	n := 2
	if len(args) == 1 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("tee: bad fan-out %q", args[0])
		}
		n = v
	} else if len(args) > 1 {
		return nil, fmt.Errorf("tee: want at most 1 arg")
	}
	return &tee{base: base{name: name}, n: n}, nil
}

func (e *tee) Class() string { return "Tee" }
func (e *tee) Push(port int, p *packet.Packet) {
	for i := 0; i < e.n; i++ {
		q := p
		if i < e.n-1 {
			q = p.Clone()
		}
		e.out.Output(i, q)
	}
}

// paint marks the packet's Paint annotation.
type paint struct {
	base
	color int
}

func newPaint(name string, args []string) (Element, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("paint: want 1 arg")
	}
	c, err := strconv.Atoi(args[0])
	if err != nil {
		return nil, fmt.Errorf("paint: bad color %q", args[0])
	}
	return &paint{base: base{name: name}, color: c}, nil
}

func (e *paint) Class() string { return "Paint" }
func (e *paint) Push(port int, p *packet.Packet) {
	p.Anno.Paint = e.color
	e.out.Output(0, p)
}

// checkPaint sends matching paint to output 0, others to output 1.
type checkPaint struct {
	base
	color int
}

func newCheckPaint(name string, args []string) (Element, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("checkpaint: want 1 arg")
	}
	c, err := strconv.Atoi(args[0])
	if err != nil {
		return nil, fmt.Errorf("checkpaint: bad color %q", args[0])
	}
	return &checkPaint{base: base{name: name}, color: c}, nil
}

func (e *checkPaint) Class() string { return "CheckPaint" }
func (e *checkPaint) Push(port int, p *packet.Packet) {
	if p.Anno.Paint == e.color {
		e.out.Output(0, p)
	} else {
		e.out.Output(1, p)
	}
}

// clause is one offset/value%mask match within a classifier pattern.
type clause struct {
	offset int
	value  []byte
	mask   []byte
}

// classifier implements Click's Classifier: each argument is a pattern of
// space-separated "offset/hexvalue[%hexmask]" clauses, or "-" matching
// everything; packets exit on the port of the first matching pattern and
// are dropped when none matches.
type classifier struct {
	base
	patterns [][]clause // nil slice = match-all ("-")
}

func newClassifier(name string, args []string) (Element, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("classifier: want at least 1 pattern")
	}
	e := &classifier{base: base{name: name}}
	for _, a := range args {
		if a == "-" {
			e.patterns = append(e.patterns, nil)
			continue
		}
		var cs []clause
		for _, part := range strings.Fields(a) {
			c, err := parseClause(part)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
		}
		if len(cs) == 0 {
			return nil, fmt.Errorf("classifier: empty pattern %q", a)
		}
		e.patterns = append(e.patterns, cs)
	}
	return e, nil
}

func parseClause(s string) (clause, error) {
	var c clause
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return c, fmt.Errorf("classifier: clause %q missing '/'", s)
	}
	off, err := strconv.Atoi(s[:slash])
	if err != nil || off < 0 {
		return c, fmt.Errorf("classifier: bad offset in %q", s)
	}
	c.offset = off
	rest := s[slash+1:]
	var maskHex string
	if pct := strings.IndexByte(rest, '%'); pct >= 0 {
		maskHex = rest[pct+1:]
		rest = rest[:pct]
	}
	if len(rest)%2 == 1 {
		rest = "0" + rest
	}
	c.value, err = hex.DecodeString(rest)
	if err != nil {
		return c, fmt.Errorf("classifier: bad hex in %q", s)
	}
	if maskHex != "" {
		if len(maskHex)%2 == 1 {
			maskHex = "0" + maskHex
		}
		c.mask, err = hex.DecodeString(maskHex)
		if err != nil || len(c.mask) != len(c.value) {
			return c, fmt.Errorf("classifier: bad mask in %q", s)
		}
	} else {
		c.mask = make([]byte, len(c.value))
		for i := range c.mask {
			c.mask[i] = 0xff
		}
	}
	for i := range c.value {
		c.value[i] &= c.mask[i]
	}
	return c, nil
}

func (e *classifier) Class() string { return "Classifier" }
func (e *classifier) Push(port int, p *packet.Packet) {
	for i, cs := range e.patterns {
		if matchClauses(cs, p.Data) {
			e.out.Output(i, p)
			return
		}
	}
	e.trace("no-match", p)
	p.Release()
}

func matchClauses(cs []clause, b []byte) bool {
	for _, c := range cs {
		if c.offset+len(c.value) > len(b) {
			return false
		}
		for i := range c.value {
			if b[c.offset+i]&c.mask[i] != c.value[i] {
				return false
			}
		}
	}
	return true
}

// checkIPHeader validates IPv4 headers; valid packets exit port 0, bad
// ones exit port 1 (or are dropped if port 1 is unconnected).
type checkIPHeader struct {
	base
	bad  uint64
	mBad *telemetry.Counter
}

func newCheckIPHeader(name string, args []string) (Element, error) {
	return &checkIPHeader{base: base{name: name}}, nil
}

func (e *checkIPHeader) Class() string { return "CheckIPHeader" }
func (e *checkIPHeader) Instrument(sc *telemetry.Scope) { e.mBad = sc.Counter("bad") }
func (e *checkIPHeader) Push(port int, p *packet.Packet) {
	var ip packet.IPv4
	if _, err := ip.Parse(p.Data); err != nil {
		e.bad++
		e.mBad.Inc()
		e.trace("bad-ip", p)
		e.out.Output(1, p)
		return
	}
	e.out.Output(0, p)
}

func (e *checkIPHeader) Handler(name, value string) (string, error) {
	if name == "drops" && value == "" {
		return strconv.FormatUint(e.bad, 10), nil
	}
	return "", fmt.Errorf("checkipheader: no handler %q", name)
}

// decIPTTL decrements the TTL in place with an incremental checksum
// update; packets whose TTL would reach zero exit port 1 (toward
// ICMPError).
type decIPTTL struct {
	base
	expired  uint64
	mExpired *telemetry.Counter
}

func newDecIPTTL(name string, args []string) (Element, error) {
	return &decIPTTL{base: base{name: name}}, nil
}

func (e *decIPTTL) Class() string { return "DecIPTTL" }
func (e *decIPTTL) Instrument(sc *telemetry.Scope) { e.mExpired = sc.Counter("expired") }
func (e *decIPTTL) Push(port int, p *packet.Packet) {
	if len(p.Data) < packet.IPv4HeaderLen {
		p.Release()
		return
	}
	ttl := p.Data[8]
	if ttl <= 1 {
		e.expired++
		e.mExpired.Inc()
		e.trace("ttl-expired", p)
		e.out.Output(1, p)
		return
	}
	packet.SetTTL(p.Data, ttl-1)
	e.out.Output(0, p)
}

func (e *decIPTTL) Handler(name, value string) (string, error) {
	if name == "expired" && value == "" {
		return strconv.FormatUint(e.expired, 10), nil
	}
	return "", fmt.Errorf("decipttl: no handler %q", name)
}

// lookupIPRoute consults the shared FIB. A route with a valid NextHop
// sets the next-hop annotation and emits on the route's OutPort; a route
// with an invalid NextHop is directly-connected/local and emits on its
// OutPort unchanged. Packets with no route exit on the port named by the
// NOROUTE argument (default: dropped).
type lookupIPRoute struct {
	base
	norouteOut int
	noroute    uint64
	ctx        *Context
	// cache serves repeated destinations without the shared-table lookup;
	// it invalidates itself on every FIB version change.
	cache    *fib.Cache
	mLookups *telemetry.Counter
	mNoroute *telemetry.Counter
}

func newLookupIPRoute(name string, args []string) (Element, error) {
	e := &lookupIPRoute{base: base{name: name}, norouteOut: -1}
	for _, a := range args {
		f := strings.Fields(a)
		if len(f) == 2 && strings.EqualFold(f[0], "NOROUTE") {
			n, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("lookupiproute: bad NOROUTE %q", f[1])
			}
			e.norouteOut = n
		} else if a != "" {
			return nil, fmt.Errorf("lookupiproute: unknown arg %q", a)
		}
	}
	return e, nil
}

func (e *lookupIPRoute) Class() string { return "LookupIPRoute" }
func (e *lookupIPRoute) Initialize(ctx *Context) error {
	if ctx.FIB == nil {
		return fmt.Errorf("lookupiproute: no FIB in context")
	}
	e.ctx = ctx
	e.cache = fib.NewCache(ctx.FIB)
	return nil
}

func (e *lookupIPRoute) Instrument(sc *telemetry.Scope) {
	e.mLookups = sc.Counter("lookups")
	e.mNoroute = sc.Counter("noroute")
}

func (e *lookupIPRoute) Push(port int, p *packet.Packet) {
	var ip packet.IPv4
	if _, err := ip.Parse(p.Data); err != nil {
		p.Release()
		return
	}
	e.mLookups.Inc()
	r, ok := e.cache.Lookup(ip.Dst)
	if !ok {
		e.noroute++
		e.mNoroute.Inc()
		e.trace("no-route", p)
		if e.norouteOut >= 0 {
			e.out.Output(e.norouteOut, p)
			return
		}
		p.Release()
		return
	}
	p.Anno.NextHop = r.NextHop
	e.trace("route", p)
	e.out.Output(r.OutPort, p)
}

// Audit checks the per-element route cache against the FIB's reference
// trie (the stale-cache bug class: a route flip whose invalidation was
// skipped keeps forwarding on the old path).
func (e *lookupIPRoute) Audit() error { return e.cache.Verify() }

func (e *lookupIPRoute) Handler(name, value string) (string, error) {
	if name == "noroute" && value == "" {
		return strconv.FormatUint(e.noroute, 10), nil
	}
	return "", fmt.Errorf("lookupiproute: no handler %q", name)
}

// toTunnel transmits packets on one UDP tunnel; the per-link element
// that failure injection (LinkFail) sits in front of.
type toTunnel struct {
	base
	tunnel int
	ctx    *Context
	// Entry cached against the encap-table version (topology changes are
	// rare; per-packet resolution must not scan or allocate).
	cacheEnt   fib.EncapEntry
	cacheOK    bool
	cacheV     uint64
	cacheValid bool
}

func newToTunnel(name string, args []string) (Element, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("totunnel: want tunnel index arg")
	}
	idx, err := strconv.Atoi(args[0])
	if err != nil || idx < 0 {
		return nil, fmt.Errorf("totunnel: bad tunnel index %q", args[0])
	}
	return &toTunnel{base: base{name: name}, tunnel: idx}, nil
}

func (e *toTunnel) Class() string { return "ToTunnel" }
func (e *toTunnel) Initialize(ctx *Context) error {
	if ctx.Tunnels == nil {
		return fmt.Errorf("totunnel: no tunnel transport in context")
	}
	if ctx.Encap == nil {
		return fmt.Errorf("totunnel: no encap table in context")
	}
	e.ctx = ctx
	return nil
}

func (e *toTunnel) Push(port int, p *packet.Packet) {
	// Resolve the entry by tunnel index (the address details live in the
	// encapsulation table; this element owns just the socket identity).
	if v := e.ctx.Encap.Version(); !e.cacheValid || v != e.cacheV {
		e.cacheEnt, e.cacheOK = e.ctx.Encap.ByTunnel(e.tunnel)
		e.cacheV, e.cacheValid = v, true
	}
	if !e.cacheOK {
		e.trace("no-tunnel", p)
		p.Release()
		return
	}
	e.trace("tunnel", p)
	e.ctx.Tunnels.SendTunnel(e.cacheEnt, p)
}

// Audit re-resolves the cached encap entry when the cache claims to be
// current and reports any drift from the table.
func (e *toTunnel) Audit() error {
	if !e.cacheValid || e.cacheV != e.ctx.Encap.Version() {
		return nil // stale stamp; next Push re-resolves
	}
	ent, ok := e.ctx.Encap.ByTunnel(e.tunnel)
	if ok != e.cacheOK || (ok && ent != e.cacheEnt) {
		return fmt.Errorf("totunnel %d: cached entry %+v,%v != table %+v,%v",
			e.tunnel, e.cacheEnt, e.cacheOK, ent, ok)
	}
	return nil
}

// encapTunnel maps the next-hop annotation through the encapsulation
// table. When the output port matching the entry's tunnel index is
// connected, the packet is emitted there (the per-link LinkFail →
// ToTunnel chain); otherwise it is handed directly to the tunnel
// transport. Unresolvable next hops are dropped.
type encapTunnel struct {
	base
	ctx    *Context
	misses uint64
	sent   uint64
	// Last next-hop resolution, cached against the encap-table version —
	// steady flows re-resolve the same virtual neighbor every packet.
	cacheNH    netip.Addr
	cacheEnt   fib.EncapEntry
	cacheOK    bool
	cacheV     uint64
	cacheValid bool
	mSent      *telemetry.Counter
	mMisses    *telemetry.Counter
}

func newEncapTunnel(name string, args []string) (Element, error) {
	return &encapTunnel{base: base{name: name}}, nil
}

func (e *encapTunnel) Instrument(sc *telemetry.Scope) {
	e.mSent = sc.Counter("sent")
	e.mMisses = sc.Counter("misses")
}

func (e *encapTunnel) Class() string { return "EncapTunnel" }
func (e *encapTunnel) Initialize(ctx *Context) error {
	if ctx.Encap == nil {
		return fmt.Errorf("encaptunnel: no encap table in context")
	}
	if ctx.Tunnels == nil {
		return fmt.Errorf("encaptunnel: no tunnel transport in context")
	}
	e.ctx = ctx
	return nil
}

func (e *encapTunnel) Push(port int, p *packet.Packet) {
	if v := e.ctx.Encap.Version(); !e.cacheValid || v != e.cacheV || p.Anno.NextHop != e.cacheNH {
		e.cacheEnt, e.cacheOK = e.ctx.Encap.Lookup(p.Anno.NextHop)
		e.cacheNH, e.cacheV, e.cacheValid = p.Anno.NextHop, v, true
	}
	ent, ok := e.cacheEnt, e.cacheOK
	if !ok {
		e.misses++
		e.mMisses.Inc()
		e.trace("encap-miss", p)
		p.Release()
		return
	}
	e.sent++
	e.mSent.Inc()
	if e.out.Connected(ent.Tunnel) {
		e.out.Output(ent.Tunnel, p)
		return
	}
	e.trace("tunnel", p)
	e.ctx.Tunnels.SendTunnel(ent, p)
}

// Audit re-resolves the cached next hop when the version stamp is
// current; disagreement means an invalidation was missed.
func (e *encapTunnel) Audit() error {
	if !e.cacheValid || e.cacheV != e.ctx.Encap.Version() {
		return nil
	}
	ent, ok := e.ctx.Encap.Lookup(e.cacheNH)
	if ok != e.cacheOK || (ok && ent != e.cacheEnt) {
		return fmt.Errorf("encaptunnel: cached %v -> %+v,%v != table %+v,%v",
			e.cacheNH, e.cacheEnt, e.cacheOK, ent, ok)
	}
	return nil
}

func (e *encapTunnel) Handler(name, value string) (string, error) {
	switch {
	case name == "misses" && value == "":
		return strconv.FormatUint(e.misses, 10), nil
	case name == "sent" && value == "":
		return strconv.FormatUint(e.sent, 10), nil
	}
	return "", fmt.Errorf("encaptunnel: no handler %q", name)
}

// toTap delivers to the local host stack.
type toTap struct {
	base
	ctx *Context
}

func newToTap(name string, args []string) (Element, error) {
	return &toTap{base: base{name: name}}, nil
}

func (e *toTap) Class() string { return "ToTap" }
func (e *toTap) Initialize(ctx *Context) error {
	if ctx.Tap == nil {
		return fmt.Errorf("totap: no tap sink in context")
	}
	e.ctx = ctx
	return nil
}

func (e *toTap) Push(port int, p *packet.Packet) {
	e.trace("to-tap", p)
	e.ctx.Tap.DeliverTap(p)
}

// ipNAPT performs egress NAPT: input/output 0 is the outbound direction,
// input/output 1 the inbound (return) direction. Untranslatable inbound
// packets are dropped, matching the paper's egress behaviour.
type ipNAPT struct {
	base
	ext            netip.Addr
	timeout        time.Duration
	portLo, portHi uint16
	tbl            *nat.Table
	drops          uint64
	mDrops         *telemetry.Counter
}

func newIPNAPT(name string, args []string) (Element, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("ipnapt: want external address arg")
	}
	a, err := netip.ParseAddr(args[0])
	if err != nil {
		return nil, fmt.Errorf("ipnapt: bad external address %q", args[0])
	}
	e := &ipNAPT{base: base{name: name}, ext: a, timeout: 5 * time.Minute}
	for _, arg := range args[1:] {
		f := strings.Fields(arg)
		switch {
		case len(f) == 2 && strings.EqualFold(f[0], "TIMEOUT"):
			d, err := time.ParseDuration(f[1])
			if err != nil {
				return nil, fmt.Errorf("ipnapt: bad timeout %q", f[1])
			}
			e.timeout = d
		case len(f) == 3 && strings.EqualFold(f[0], "PORTS"):
			lo, err1 := strconv.ParseUint(f[1], 10, 16)
			hi, err2 := strconv.ParseUint(f[2], 10, 16)
			if err1 != nil || err2 != nil || lo == 0 || lo > hi {
				return nil, fmt.Errorf("ipnapt: bad port range %q", arg)
			}
			e.portLo, e.portHi = uint16(lo), uint16(hi)
		default:
			return nil, fmt.Errorf("ipnapt: unknown arg %q", arg)
		}
	}
	return e, nil
}

func (e *ipNAPT) Class() string { return "IPNAPT" }
func (e *ipNAPT) Instrument(sc *telemetry.Scope) { e.mDrops = sc.Counter("drops") }
func (e *ipNAPT) Initialize(ctx *Context) error {
	now := func() time.Duration { return 0 }
	if ctx.Clock != nil {
		now = ctx.Clock.Now
	}
	e.tbl = nat.New(nat.Config{External: e.ext, Timeout: e.timeout,
		PortLow: e.portLo, PortHigh: e.portHi}, now)
	return nil
}

func (e *ipNAPT) Push(port int, p *packet.Packet) {
	switch port {
	case 0:
		// In-place translation (RFC 1624 incremental checksums): the
		// packet keeps its buffer and headroom, so the NAPT egress path
		// forwards at zero allocations per packet.
		if err := e.tbl.TranslateOutbound(p.Data); err != nil {
			e.drops++
			e.mDrops.Inc()
			e.trace("napt-drop", p)
			p.Release()
			return
		}
		e.trace("napt-out", p)
		e.out.Output(0, p)
	case 1:
		ok, err := e.tbl.TranslateInbound(p.Data)
		if err != nil || !ok {
			e.drops++
			e.mDrops.Inc()
			e.trace("napt-unmatched", p)
			p.Release()
			return
		}
		e.trace("napt-in", p)
		e.out.Output(1, p)
	}
}

func (e *ipNAPT) Handler(name, value string) (string, error) {
	switch {
	case name == "bindings" && value == "":
		return strconv.Itoa(e.tbl.Len()), nil
	case name == "drops" && value == "":
		return strconv.FormatUint(e.drops, 10), nil
	}
	return "", fmt.Errorf("ipnapt: no handler %q", name)
}

// queue is a tail-drop FIFO. Push enqueues; a downstream drain (the
// netem device model or a BandwidthShaper) calls Pull.
type queue struct {
	base
	cap    int
	buf    []*packet.Packet
	drops  uint64
	mDrops *telemetry.Counter
}

// Puller is the pull side of Queue, consumed by device drains.
type Puller interface {
	Pull() *packet.Packet
}

func newQueue(name string, args []string) (Element, error) {
	c := 1000
	if len(args) == 1 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return nil, fmt.Errorf("queue: bad capacity %q", args[0])
		}
		c = v
	} else if len(args) > 1 {
		return nil, fmt.Errorf("queue: want at most 1 arg")
	}
	return &queue{base: base{name: name}, cap: c}, nil
}

func (e *queue) Class() string { return "Queue" }
func (e *queue) Instrument(sc *telemetry.Scope) { e.mDrops = sc.Counter("drops") }
func (e *queue) Push(port int, p *packet.Packet) {
	if len(e.buf) >= e.cap {
		e.drops++
		e.mDrops.Inc()
		e.trace("tail-drop", p)
		p.Release()
		return
	}
	e.buf = append(e.buf, p)
}

// Pull dequeues the head, or nil when empty.
func (e *queue) Pull() *packet.Packet {
	if len(e.buf) == 0 {
		return nil
	}
	p := e.buf[0]
	e.buf = e.buf[1:]
	return p
}

// Len reports the queue occupancy.
func (e *queue) Len() int { return len(e.buf) }

// Flush implements Flusher: buffered packets return to the pool.
func (e *queue) Flush() int {
	n := len(e.buf)
	for _, p := range e.buf {
		p.Release()
	}
	e.buf = nil
	return n
}

func (e *queue) Handler(name, value string) (string, error) {
	switch {
	case name == "length" && value == "":
		return strconv.Itoa(len(e.buf)), nil
	case name == "drops" && value == "":
		return strconv.FormatUint(e.drops, 10), nil
	case name == "capacity" && value == "":
		return strconv.Itoa(e.cap), nil
	}
	return "", fmt.Errorf("queue: no handler %q", name)
}

// bandwidthShaper releases packets at a configured bit rate using the
// context clock, implementing the "setting link bandwidths via traffic
// shapers in Click" extension from Section 6.2. Packets beyond the
// internal queue capacity are dropped.
type bandwidthShaper struct {
	base
	rateBps float64
	cap     int
	buf     []*packet.Packet
	busy    bool
	drops   uint64
	mDrops  *telemetry.Counter
	ctx     *Context
}

func newBandwidthShaper(name string, args []string) (Element, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("bandwidthshaper: want rate arg (bits/s; 0 = unlimited)")
	}
	r, err := strconv.ParseFloat(args[0], 64)
	if err != nil || r < 0 {
		return nil, fmt.Errorf("bandwidthshaper: bad rate %q", args[0])
	}
	c := 100
	if len(args) >= 2 {
		c, err = strconv.Atoi(args[1])
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bandwidthshaper: bad capacity %q", args[1])
		}
	}
	return &bandwidthShaper{base: base{name: name}, rateBps: r, cap: c}, nil
}

func (e *bandwidthShaper) Class() string { return "BandwidthShaper" }
func (e *bandwidthShaper) Instrument(sc *telemetry.Scope) { e.mDrops = sc.Counter("drops") }
func (e *bandwidthShaper) Initialize(ctx *Context) error {
	if ctx.Clock == nil {
		return fmt.Errorf("bandwidthshaper: no clock in context")
	}
	e.ctx = ctx
	return nil
}

func (e *bandwidthShaper) Push(port int, p *packet.Packet) {
	if e.rateBps <= 0 && !e.busy {
		// Unlimited: pass through (the §6.2 link-bandwidth knob is off).
		e.out.Output(0, p)
		return
	}
	if len(e.buf) >= e.cap {
		e.drops++
		e.mDrops.Inc()
		e.trace("shape-drop", p)
		p.Release()
		return
	}
	e.buf = append(e.buf, p)
	if !e.busy {
		e.busy = true
		e.release()
	}
}

func (e *bandwidthShaper) release() {
	if len(e.buf) == 0 {
		e.busy = false
		return
	}
	p := e.buf[0]
	e.buf = e.buf[1:]
	var txTime time.Duration
	if e.rateBps > 0 {
		txTime = time.Duration(float64(p.Len()*8) / e.rateBps * float64(time.Second))
	}
	e.out.Output(0, p)
	e.ctx.Clock.Schedule(txTime, e.release)
}

// Flush implements Flusher. The release chain's pending timer finds an
// empty buffer and clears busy on its own; clearing busy here too lets
// teardown (which also cancels that timer via the slice's timer group)
// leave the element reusable.
func (e *bandwidthShaper) Flush() int {
	n := len(e.buf)
	for _, p := range e.buf {
		p.Release()
	}
	e.buf = nil
	e.busy = false
	return n
}

func (e *bandwidthShaper) Handler(name, value string) (string, error) {
	switch {
	case name == "drops" && value == "":
		return strconv.FormatUint(e.drops, 10), nil
	case name == "rate" && value == "":
		return strconv.FormatFloat(e.rateBps, 'f', -1, 64), nil
	case name == "rate":
		r, err := strconv.ParseFloat(value, 64)
		if err != nil || r < 0 {
			return "", fmt.Errorf("bandwidthshaper: bad rate %q", value)
		}
		e.rateBps = r
		return "", nil
	}
	return "", fmt.Errorf("bandwidthshaper: no handler %q", name)
}

// linkFail drops packets while active — the element the paper uses to
// inject the Denver–Kansas City failure inside Click. A DROP_PROB
// argument turns it into a lossy-link model instead.
type linkFail struct {
	base
	active   bool
	dropProb float64
	dropped  uint64
	mDrops   *telemetry.Counter
	ctx      *Context
}

func newLinkFail(name string, args []string) (Element, error) {
	e := &linkFail{base: base{name: name}}
	for _, a := range args {
		f := strings.Fields(a)
		switch {
		case len(f) == 2 && strings.EqualFold(f[0], "ACTIVE"):
			e.active = f[1] == "true" || f[1] == "1"
		case len(f) == 2 && strings.EqualFold(f[0], "DROP_PROB"):
			p, err := strconv.ParseFloat(f[1], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("linkfail: bad DROP_PROB %q", f[1])
			}
			e.dropProb = p
		case a == "":
		default:
			return nil, fmt.Errorf("linkfail: unknown arg %q", a)
		}
	}
	return e, nil
}

func (e *linkFail) Class() string { return "LinkFail" }
func (e *linkFail) Initialize(ctx *Context) error {
	e.ctx = ctx
	return nil
}

// SetActive flips the failure state programmatically (the experiment
// harness uses this; the handler interface offers the same via strings).
func (e *linkFail) SetActive(v bool) { e.active = v }

func (e *linkFail) Instrument(sc *telemetry.Scope) { e.mDrops = sc.Counter("drops") }

func (e *linkFail) Push(port int, p *packet.Packet) {
	if e.active {
		e.dropped++
		e.mDrops.Inc()
		e.trace("fail-drop", p)
		p.Release()
		return
	}
	if e.dropProb > 0 && e.ctx != nil && e.ctx.RNG != nil && e.ctx.RNG.Bool(e.dropProb) {
		e.dropped++
		e.mDrops.Inc()
		e.trace("loss-drop", p)
		p.Release()
		return
	}
	e.out.Output(0, p)
}

func (e *linkFail) Handler(name, value string) (string, error) {
	switch {
	case name == "active" && value == "":
		return strconv.FormatBool(e.active), nil
	case name == "active":
		e.active = value == "true" || value == "1"
		return "", nil
	case name == "drops" && value == "":
		return strconv.FormatUint(e.dropped, 10), nil
	}
	return "", fmt.Errorf("linkfail: no handler %q", name)
}

// dupSuppress drops packets carrying the MigClone annotation — the
// stamped duplicates a migrating neighbor's peers send toward the shadow
// process during the make-before-break cutover window. Exactly one copy
// of every double-delivered packet is marked, and marked copies are
// dropped unconditionally at every receiver, so double-delivery can
// never become duplicate delivery. The check is a branch on an
// annotation bit: no per-packet state, no allocation, deterministic
// under any worker count. The active handler exists for the mutation
// tests, which disable suppression and assert the migration invariant
// checker catches the resulting duplicates.
type dupSuppress struct {
	base
	active  bool
	dropped uint64
	mDrops  *telemetry.Counter
}

func newDupSuppress(name string, args []string) (Element, error) {
	e := &dupSuppress{base: base{name: name}, active: true}
	for _, a := range args {
		f := strings.Fields(a)
		switch {
		case len(f) == 2 && strings.EqualFold(f[0], "ACTIVE"):
			e.active = f[1] == "true" || f[1] == "1"
		case a == "":
		default:
			return nil, fmt.Errorf("dupsuppress: unknown arg %q", a)
		}
	}
	return e, nil
}

func (e *dupSuppress) Class() string { return "DupSuppress" }

func (e *dupSuppress) Instrument(sc *telemetry.Scope) { e.mDrops = sc.Counter("drops") }

func (e *dupSuppress) Push(port int, p *packet.Packet) {
	if e.active && p.Anno.MigClone {
		e.dropped++
		e.mDrops.Inc()
		e.trace("dup-drop", p)
		p.Release()
		return
	}
	e.out.Output(0, p)
}

func (e *dupSuppress) Handler(name, value string) (string, error) {
	switch {
	case name == "active" && value == "":
		return strconv.FormatBool(e.active), nil
	case name == "active":
		e.active = value == "true" || value == "1"
		return "", nil
	case name == "drops" && value == "":
		return strconv.FormatUint(e.dropped, 10), nil
	}
	return "", fmt.Errorf("dupsuppress: no handler %q", name)
}

// icmpError generates the ICMP error for the offending packet it
// receives, sourced from the node's overlay address, and emits it on
// output 0 to be routed back.
type icmpError struct {
	base
	typ, code uint8
	ctx       *Context
}

func newICMPError(name string, args []string) (Element, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("icmperror: want TYPE, CODE args")
	}
	t, err1 := strconv.Atoi(args[0])
	c, err2 := strconv.Atoi(args[1])
	if err1 != nil || err2 != nil || t < 0 || t > 255 || c < 0 || c > 255 {
		return nil, fmt.Errorf("icmperror: bad type/code %v", args)
	}
	return &icmpError{base: base{name: name}, typ: uint8(t), code: uint8(c)}, nil
}

func (e *icmpError) Class() string { return "ICMPError" }
func (e *icmpError) Initialize(ctx *Context) error {
	if !ctx.LocalAddr.Src.IsValid() {
		return fmt.Errorf("icmperror: no local address in context")
	}
	e.ctx = ctx
	return nil
}

func (e *icmpError) Push(port int, p *packet.Packet) {
	// RFC 1122: never generate an ICMP error about an ICMP error.
	var oip packet.IPv4
	if payload, err := oip.Parse(p.Data); err == nil && oip.Proto == packet.ProtoICMP {
		var ic packet.ICMP
		if _, err := ic.Parse(payload); err == nil &&
			(ic.Type == packet.ICMPUnreachable || ic.Type == packet.ICMPTimeExceeded) {
			p.Release()
			return
		}
	}
	msg := packet.BuildICMPError(e.ctx.LocalAddr.Src, e.typ, e.code, p.Data)
	ts := p.Anno.Timestamp
	p.Release() // the error quotes a copy; the offending packet is done
	if msg == nil {
		return
	}
	q := packet.Get()
	q.SetData(msg)
	q.Anno.Timestamp = ts
	e.trace("icmp-error", q)
	e.out.Output(0, q)
}

// toExternal hands post-NAT packets to the node's real network stack so
// they travel the public Internet to hosts that never opted in.
type toExternal struct {
	base
	ctx *Context
}

func newToExternal(name string, args []string) (Element, error) {
	return &toExternal{base: base{name: name}}, nil
}

func (e *toExternal) Class() string { return "ToExternal" }
func (e *toExternal) Initialize(ctx *Context) error {
	if ctx.External == nil {
		return fmt.Errorf("toexternal: no external sink in context")
	}
	e.ctx = ctx
	return nil
}

func (e *toExternal) Push(port int, p *packet.Packet) {
	e.trace("to-external", p)
	e.ctx.External.SendExternal(p)
}

// toVPN returns packets to the opted-in client through the VPN server.
type toVPN struct {
	base
	ctx *Context
}

func newToVPN(name string, args []string) (Element, error) {
	return &toVPN{base: base{name: name}}, nil
}

func (e *toVPN) Class() string { return "ToVPN" }
func (e *toVPN) Initialize(ctx *Context) error {
	if ctx.VPN == nil {
		return fmt.Errorf("tovpn: no VPN sink in context")
	}
	e.ctx = ctx
	return nil
}

func (e *toVPN) Push(port int, p *packet.Packet) {
	e.trace("to-vpn", p)
	e.ctx.VPN.SendVPN(p)
}

// strip removes n bytes from the packet head (e.g. an Ethernet header).
type strip struct {
	base
	n int
}

func newStrip(name string, args []string) (Element, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("strip: want 1 arg")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("strip: bad length %q", args[0])
	}
	return &strip{base: base{name: name}, n: n}, nil
}

func (e *strip) Class() string { return "Strip" }
func (e *strip) Push(port int, p *packet.Packet) {
	if p.Len() < e.n {
		p.Release()
		return
	}
	p.Pull(e.n)
	e.out.Output(0, p)
}

// etherEncap prepends an Ethernet header, for the uml_switch path that
// exchanges Ethernet frames with the routing process's virtual machine.
type etherEncap struct {
	base
	hdr packet.Ethernet
	raw [packet.EthernetHeaderLen]byte // pre-serialized, pushed per packet
}

func newEtherEncap(name string, args []string) (Element, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("etherencap: want TYPE, SRC, DST args")
	}
	t, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 16)
	if err != nil {
		return nil, fmt.Errorf("etherencap: bad ethertype %q", args[0])
	}
	src, err := parseMAC(args[1])
	if err != nil {
		return nil, err
	}
	dst, err := parseMAC(args[2])
	if err != nil {
		return nil, err
	}
	e := &etherEncap{base: base{name: name},
		hdr: packet.Ethernet{Type: uint16(t), Src: src, Dst: dst}}
	copy(e.raw[:], e.hdr.AppendTo(nil))
	return e, nil
}

func parseMAC(s string) (packet.MAC, error) {
	var m packet.MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("etherencap: bad MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("etherencap: bad MAC %q", s)
		}
		m[i] = byte(v)
	}
	return m, nil
}

func (e *etherEncap) Class() string { return "EtherEncap" }
func (e *etherEncap) Push(port int, p *packet.Packet) {
	p.Push(e.raw[:])
	e.out.Output(0, p)
}

// setTimestamp stamps packets with the current clock, used at ingress so
// latency is measured from entry.
type setTimestamp struct {
	base
	ctx *Context
}

func newSetTimestamp(name string, args []string) (Element, error) {
	return &setTimestamp{base: base{name: name}}, nil
}

func (e *setTimestamp) Class() string { return "SetTimestamp" }
func (e *setTimestamp) Initialize(ctx *Context) error {
	if ctx.Clock == nil {
		return fmt.Errorf("settimestamp: no clock in context")
	}
	e.ctx = ctx
	return nil
}

func (e *setTimestamp) Push(port int, p *packet.Packet) {
	p.Anno.Timestamp = e.ctx.Clock.Now()
	e.out.Output(0, p)
}
