// Package click is a Go implementation of the Click modular software
// router, which IIAS uses as its virtual data plane (Section 4.2.1 of the
// paper). A router is a graph of named elements connected port-to-port;
// packets are pushed through the graph synchronously. The package
// includes a parser for the subset of the Click configuration language
// IIAS needs (declarations, connections, chains) and the IIAS element
// library: UDP tunnels, the tap0 local interface, the forwarding and
// encapsulation table lookups, NAPT, queues, shapers, counters, and the
// failure-injection element the paper's Section 5.2 uses to "fail" a
// virtual link by dropping packets inside Click.
package click

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vini/internal/fib"
	"vini/internal/packet"
	"vini/internal/sim"
	"vini/internal/telemetry"
)

// Element is a Click element: it receives packets on numbered input ports
// and emits them on numbered output ports via the router.
type Element interface {
	// Class returns the element's class name (e.g. "Classifier").
	Class() string
	// Push delivers a packet on input port. Elements emit downstream by
	// calling their PortSet.
	Push(port int, p *packet.Packet)
}

// Initializer is implemented by elements that need resources from the
// router context after construction and wiring.
type Initializer interface {
	Initialize(ctx *Context) error
}

// HandlerElement exposes Click-style read/write handlers, the mechanism
// experiments use to poke running elements (e.g. `write fail.active true`).
type HandlerElement interface {
	// Handler processes a named handler. For reads, value is empty.
	Handler(name, value string) (string, error)
}

// PortSet is the owned output side of an element; the router wires it.
type PortSet struct {
	name  string
	conns [][]edge // per output port: fan-out edges
}

type edge struct {
	elem Element
	port int
}

// Output emits p on output port, transferring ownership. Fan-out sends
// deep clones to all edges but the last, which receives the original
// (Click's Tee discipline). Unconnected ports discard — and Release —
// the packet, as Click does for push outputs wired to Discard implicitly.
// Pushing a packet that was already released panics: it means an element
// kept emitting a packet it no longer owned.
func (ps *PortSet) Output(port int, p *packet.Packet) {
	if p.Released() {
		panic("click: " + ps.name + ": output of a released packet")
	}
	if port < 0 || port >= len(ps.conns) || len(ps.conns[port]) == 0 {
		p.Release()
		return
	}
	es := ps.conns[port]
	for i, e := range es {
		q := p
		if i < len(es)-1 { // fan-out duplicates like Tee
			q = p.Clone()
		}
		e.elem.Push(e.port, q)
	}
}

// Connected reports whether output port has at least one edge.
func (ps *PortSet) Connected(port int) bool {
	return port >= 0 && port < len(ps.conns) && len(ps.conns[port]) > 0
}

func (ps *PortSet) ensure(port int) {
	for len(ps.conns) <= port {
		ps.conns = append(ps.conns, nil)
	}
}

// Context supplies shared resources to elements at Initialize time.
type Context struct {
	Clock sim.Clock
	RNG   *sim.RNG
	// FIB is the forwarding table XORP populates via the FEA.
	FIB *fib.Table
	// Encap is the preconfigured encapsulation table.
	Encap *fib.EncapTable
	// Tunnels transmits UDP-tunnel packets toward a remote physical node.
	Tunnels TunnelTransport
	// Tap delivers packets up to the local host stack (tap0).
	Tap TapSink
	// External transmits packets leaving the overlay for the real
	// Internet (an egress node's post-NAT path).
	External ExternalSink
	// VPN returns packets to an opted-in VPN client.
	VPN VPNSink
	// LocalAddr is this virtual node's overlay address (tap0 address).
	LocalAddr packet.Flow // only Src used; kept as Flow for future demux
	// Trace, when set, receives life-of-a-packet events.
	Trace func(element, event string, p *packet.Packet)
	// Metrics, when set, is the telemetry scope this router's elements
	// publish counters into (each element under a "<name>/" prefix).
	Metrics *telemetry.Scope
}

// TunnelTransport sends an encapsulated overlay packet to a remote
// physical node. The simulator and the live overlay provide
// implementations.
type TunnelTransport interface {
	SendTunnel(e fib.EncapEntry, p *packet.Packet)
}

// TapSink receives packets destined to the local host stack.
type TapSink interface {
	DeliverTap(p *packet.Packet)
}

// ExternalSink receives packets leaving the overlay for the Internet.
type ExternalSink interface {
	SendExternal(p *packet.Packet)
}

// VPNSink receives packets bound for an opted-in VPN client.
type VPNSink interface {
	SendVPN(p *packet.Packet)
}

// Constructor builds an element from its configuration arguments.
type Constructor func(name string, args []string) (Element, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Constructor{}
)

// Register installs a constructor for class. It panics on duplicates,
// matching Click's element registration discipline.
func Register(class string, c Constructor) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[class]; dup {
		panic("click: duplicate element class " + class)
	}
	registry[class] = c
}

// Classes returns all registered element classes, sorted.
func Classes() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Router is a wired element graph.
type Router struct {
	ctx      *Context
	elements map[string]Element
	ports    map[string]*PortSet
	order    []string // declaration order, for deterministic init
}

// NewRouter returns an empty router bound to ctx.
func NewRouter(ctx *Context) *Router {
	if ctx == nil {
		ctx = &Context{}
	}
	return &Router{
		ctx:      ctx,
		elements: make(map[string]Element),
		ports:    make(map[string]*PortSet),
	}
}

// Context returns the router's shared context.
func (r *Router) Context() *Context { return r.ctx }

// AddElement declares a named element instance of class with args.
func (r *Router) AddElement(name, class string, args []string) error {
	if _, dup := r.elements[name]; dup {
		return fmt.Errorf("click: duplicate element name %q", name)
	}
	registryMu.RLock()
	c := registry[class]
	registryMu.RUnlock()
	if c == nil {
		return fmt.Errorf("click: unknown element class %q", class)
	}
	e, err := c(name, args)
	if err != nil {
		return fmt.Errorf("click: %s :: %s: %w", name, class, err)
	}
	r.elements[name] = e
	r.ports[name] = &PortSet{name: name}
	r.order = append(r.order, name)
	if b, ok := e.(interface{ bind(*Router, *PortSet) }); ok {
		b.bind(r, r.ports[name])
	}
	return nil
}

// Connect wires from[fromPort] -> [toPort]to.
func (r *Router) Connect(from string, fromPort int, to string, toPort int) error {
	fp, ok := r.ports[from]
	if !ok {
		return fmt.Errorf("click: connect from unknown element %q", from)
	}
	te, ok := r.elements[to]
	if !ok {
		return fmt.Errorf("click: connect to unknown element %q", to)
	}
	if fromPort < 0 || toPort < 0 {
		return fmt.Errorf("click: negative port in %s[%d]->[%d]%s", from, fromPort, toPort, to)
	}
	fp.ensure(fromPort)
	fp.conns[fromPort] = append(fp.conns[fromPort], edge{elem: te, port: toPort})
	return nil
}

// Instrumentable is implemented by elements that publish counters into
// a telemetry scope. Instrument is called once, after Initialize, with
// a scope prefixed by the element's instance name; handles grabbed
// there are nil-safe, so uninstrumented routers pay one nil check per
// counter update.
type Instrumentable interface {
	Instrument(sc *telemetry.Scope)
}

// Initialize runs element initializers in declaration order, then (when
// the context carries a telemetry scope) hands every Instrumentable
// element its per-element scope. Declaration order makes metric
// registration order — and therefore snapshot order — deterministic.
func (r *Router) Initialize() error {
	for _, name := range r.order {
		if init, ok := r.elements[name].(Initializer); ok {
			if err := init.Initialize(r.ctx); err != nil {
				return fmt.Errorf("click: initialize %s: %w", name, err)
			}
		}
	}
	if r.ctx.Metrics != nil {
		for _, name := range r.order {
			if ins, ok := r.elements[name].(Instrumentable); ok {
				ins.Instrument(r.ctx.Metrics.With("click/" + name + "/"))
			}
		}
	}
	return nil
}

// Auditor is implemented by elements that keep derived per-element
// state (version-stamped route or encap caches). Audit checks that
// state against the authoritative shared tables and returns a
// description of the first inconsistency. The simulation invariant
// engine audits every element at each quiescent point.
type Auditor interface {
	Audit() error
}

// Audit runs every Auditor element's self-check in declaration order.
func (r *Router) Audit() error {
	for _, name := range r.order {
		if a, ok := r.elements[name].(Auditor); ok {
			if err := a.Audit(); err != nil {
				return fmt.Errorf("click: element %s: %w", name, err)
			}
		}
	}
	return nil
}

// Flusher is implemented by elements that buffer packets (queues,
// shapers). Flush releases everything buffered back to the pool and
// returns the number of packets dropped; slice teardown flushes every
// element so the pool ledger balances.
type Flusher interface {
	Flush() int
}

// Flush releases all buffered packets in every Flusher element, in
// declaration order, returning the total released.
func (r *Router) Flush() int {
	n := 0
	for _, name := range r.order {
		if f, ok := r.elements[name].(Flusher); ok {
			n += f.Flush()
		}
	}
	return n
}

// Element returns the named element.
func (r *Router) Element(name string) (Element, bool) {
	e, ok := r.elements[name]
	return e, ok
}

// Elements returns element names in declaration order.
func (r *Router) Elements() []string { return append([]string(nil), r.order...) }

// Push injects a packet into the named element's input port, the way
// device/tunnel sources enter the graph.
func (r *Router) Push(element string, port int, p *packet.Packet) error {
	e, ok := r.elements[element]
	if !ok {
		return fmt.Errorf("click: push to unknown element %q", element)
	}
	e.Push(port, p)
	return nil
}

// Handler invokes a "element.handler" endpoint with an optional value
// (empty for reads), Click's /click filesystem equivalent.
func (r *Router) Handler(path, value string) (string, error) {
	elemName, hname, ok := cutLast(path, '.')
	if !ok {
		return "", fmt.Errorf("click: handler path %q not element.handler", path)
	}
	e, found := r.elements[elemName]
	if !found {
		return "", fmt.Errorf("click: unknown element %q", elemName)
	}
	h, ok := e.(HandlerElement)
	if !ok {
		return "", fmt.Errorf("click: element %q has no handlers", elemName)
	}
	return h.Handler(hname, value)
}

func cutLast(s string, sep byte) (before, after string, ok bool) {
	if i := strings.LastIndexByte(s, sep); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}

// base provides the PortSet plumbing elements embed.
type base struct {
	name   string
	router *Router
	out    *PortSet
}

func (b *base) bind(r *Router, ps *PortSet) { b.router = r; b.out = ps }

// Name returns the element instance name.
func (b *base) Name() string { return b.name }

func (b *base) trace(event string, p *packet.Packet) {
	if b.router != nil && b.router.ctx.Trace != nil {
		b.router.ctx.Trace(b.name, event, p)
	}
}
