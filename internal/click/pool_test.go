package click

import (
	"bytes"
	"strings"
	"testing"

	"vini/internal/fib"
	"vini/internal/packet"
)

// TestOutputFanOutPooledOwnership checks the Tee discipline under packet
// pooling: every edge but the last receives a deep clone, the last edge
// receives the original, and no edge's buffer aliases another's.
func TestOutputFanOutPooledOwnership(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		c :: Counter;
		s0 :: TestSink; s1 :: TestSink; s2 :: TestSink;
		c[0] -> s0; c[0] -> s1; c[0] -> s2;
	`)
	p := packet.Get()
	copy(p.Extend(4), []byte{1, 2, 3, 4})
	if err := r.Push("c", 0, p); err != nil {
		t.Fatal(err)
	}
	var got []*packet.Packet
	for _, name := range []string{"s0", "s1", "s2"} {
		e, _ := r.Element(name)
		s := e.(*sink)
		if len(s.got) != 1 {
			t.Fatalf("%s received %d packets", name, len(s.got))
		}
		got = append(got, s.got[0])
	}
	if got[2] != p {
		t.Fatal("last edge did not receive the original packet")
	}
	if got[0] == p || got[1] == p {
		t.Fatal("early edge received the original instead of a clone")
	}
	for i, q := range got {
		if !bytes.Equal(q.Data, []byte{1, 2, 3, 4}) {
			t.Fatalf("edge %d data %x", i, q.Data)
		}
	}
	// Clones must not alias: mutating one copy leaves the others intact.
	got[0].Data[0] = 99
	if got[1].Data[0] == 99 || got[2].Data[0] == 99 {
		t.Fatal("fan-out copies alias the same buffer")
	}
	// Each edge owns its packet: all three release without a double-free.
	for _, q := range got {
		q.Release()
	}
}

func TestOutputUnconnectedReleases(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `c :: Counter;`)
	p := packet.Get()
	copy(p.Extend(2), []byte{5, 6})
	if err := r.Push("c", 0, p); err != nil {
		t.Fatal(err)
	}
	if !p.Released() {
		t.Fatal("packet pushed to an unconnected port was not released")
	}
}

func TestOutputReleasedPacketPanics(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `c :: Counter; s :: TestSink; c[0] -> s;`)
	p := packet.Get()
	p.Release()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("pushing a released packet did not panic")
		}
		if msg, ok := v.(string); !ok || !strings.Contains(msg, "released") {
			t.Fatalf("unexpected panic %v", v)
		}
	}()
	r.Push("c", 0, p)
}

// TestHandlerPathParsing covers the element.handler split, including
// element names that themselves contain dots (the separator must be the
// last one, as in Click's /click/<element>/<handler> paths).
func TestHandlerPathParsing(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `c0 :: Counter; s :: TestSink; c0[0] -> s;`)
	r.Push("c0", 0, packet.New([]byte{1}))
	if v, err := r.Handler("c0.count", ""); err != nil || v != "1" {
		t.Fatalf("c0.count = %q, %v", v, err)
	}
	// An element registered under a dotted name resolves via the last dot.
	r.elements["slice0.counter"] = &counter{base: base{name: "slice0.counter"}}
	if v, err := r.Handler("slice0.counter.count", ""); err != nil || v != "0" {
		t.Fatalf("dotted element handler = %q, %v", v, err)
	}
	if _, err := r.Handler("count", ""); err == nil {
		t.Fatal("path without separator accepted")
	}
	if _, err := r.Handler("nosuch.count", ""); err == nil {
		t.Fatal("unknown element accepted")
	}
	if _, err := r.Handler("c0.nosuch", ""); err == nil {
		t.Fatal("unknown handler accepted")
	}
}

// TestLookupRouteCacheInvalidationMidStream flips routes between packets
// of one stream and checks the per-element FIB cache never serves a stale
// next hop across Add, Remove, and Replace.
func TestLookupRouteCacheInvalidationMidStream(t *testing.T) {
	ctx, _, _ := testCtx()
	nhA := packet.MustAddr("10.9.9.1")
	nhB := packet.MustAddr("10.9.9.2")
	ctx.FIB.Add(fib.Route{Prefix: packet.MustPrefix("10.1.0.0/16"), NextHop: nhA, OutPort: 0, Owner: "rib"})
	r := mustParse(t, ctx, `rt :: LookupIPRoute; s :: TestSink; rt[0] -> s;`)
	e, _ := r.Element("s")
	s := e.(*sink)
	push := func() *packet.Packet {
		r.Push("rt", 0, packet.New(packet.BuildUDP(src10, dst10, 1, 2, 64, nil)))
		return s.got[len(s.got)-1]
	}
	if q := push(); q.Anno.NextHop != nhA {
		t.Fatalf("initial next hop %v, want %v", q.Anno.NextHop, nhA)
	}
	// A more specific route added mid-stream must win immediately.
	ctx.FIB.Add(fib.Route{Prefix: packet.MustPrefix("10.1.2.0/24"), NextHop: nhB, OutPort: 0, Owner: "rib"})
	if q := push(); q.Anno.NextHop != nhB {
		t.Fatalf("after add: next hop %v, want %v", q.Anno.NextHop, nhB)
	}
	ctx.FIB.Remove(packet.MustPrefix("10.1.2.0/24"))
	if q := push(); q.Anno.NextHop != nhA {
		t.Fatalf("after remove: next hop %v, want %v", q.Anno.NextHop, nhA)
	}
	ctx.FIB.Replace("rib", []fib.Route{
		{Prefix: packet.MustPrefix("10.1.0.0/16"), NextHop: nhB, OutPort: 0, Owner: "rib"},
	})
	if q := push(); q.Anno.NextHop != nhB {
		t.Fatalf("after replace: next hop %v, want %v", q.Anno.NextHop, nhB)
	}
}
