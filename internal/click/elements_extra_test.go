package click

import (
	"testing"

	"vini/internal/fib"
	"vini/internal/packet"
)

func TestToTunnelPerLinkChain(t *testing.T) {
	ctx, cap, _ := testCtx()
	nh1 := packet.MustAddr("10.1.1.3")
	nh2 := packet.MustAddr("10.1.1.7")
	ctx.FIB.Add(fib.Route{Prefix: packet.MustPrefix("10.1.2.0/24"), NextHop: nh1, OutPort: 0})
	ctx.FIB.Add(fib.Route{Prefix: packet.MustPrefix("10.1.3.0/24"), NextHop: nh2, OutPort: 0})
	ctx.Encap.Set(fib.EncapEntry{NextHop: nh1, Remote: packet.MustAddr("198.32.154.1"), Port: 1, Tunnel: 0})
	ctx.Encap.Set(fib.EncapEntry{NextHop: nh2, Remote: packet.MustAddr("198.32.154.2"), Port: 1, Tunnel: 1})
	r := mustParse(t, ctx, `
		rt :: LookupIPRoute;
		encap :: EncapTunnel;
		fail0 :: LinkFail;
		fail1 :: LinkFail;
		tun0 :: ToTunnel(0);
		tun1 :: ToTunnel(1);
		rt[0] -> encap;
		encap[0] -> fail0; fail0 -> tun0;
		encap[1] -> fail1; fail1 -> tun1;
	`)
	// Traffic for each next hop leaves on its own chain.
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("10.1.2.9"), 1, 2, 64, nil)))
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("10.1.3.9"), 1, 2, 64, nil)))
	if len(cap.tunneled) != 2 {
		t.Fatalf("tunneled = %d", len(cap.tunneled))
	}
	if cap.tunneled[0].Tunnel != 0 || cap.tunneled[1].Tunnel != 1 {
		t.Fatalf("tunnel routing wrong: %+v", cap.tunneled)
	}
	// Failing one chain stops its traffic only.
	r.Handler("fail0.active", "true")
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("10.1.2.9"), 1, 2, 64, nil)))
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("10.1.3.9"), 1, 2, 64, nil)))
	if len(cap.tunneled) != 3 || cap.tunneled[2].Tunnel != 1 {
		t.Fatalf("failure injection leaked: %+v", cap.tunneled)
	}
	// Misses stay counted.
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("10.9.9.9"), 1, 2, 64, nil)))
	if v, _ := r.Handler("rt.noroute", ""); v != "0" {
		// 10.9.9.9 has no route at all, so it never reaches encap.
		t.Logf("noroute = %s", v)
	}
}

func TestEncapMissCounted(t *testing.T) {
	ctx, cap, _ := testCtx()
	nh := packet.MustAddr("10.1.1.3")
	ctx.FIB.Add(fib.Route{Prefix: packet.MustPrefix("10.1.2.0/24"), NextHop: nh, OutPort: 0})
	// No encap entry for nh.
	r := mustParse(t, ctx, `
		rt :: LookupIPRoute;
		encap :: EncapTunnel;
		rt[0] -> encap;
	`)
	r.Push("rt", 0, packet.New(packet.BuildUDP(src10, packet.MustAddr("10.1.2.9"), 1, 2, 64, nil)))
	if len(cap.tunneled) != 0 {
		t.Fatal("miss was sent anyway")
	}
	if v, _ := r.Handler("encap.misses", ""); v != "1" {
		t.Fatalf("misses = %s", v)
	}
}

func TestToExternalAndToVPNElements(t *testing.T) {
	ctx, _, _ := testCtx()
	extGot, vpnGot := 0, 0
	ctx.External = extFunc(func(p *packet.Packet) { extGot++ })
	ctx.VPN = vpnFunc(func(p *packet.Packet) { vpnGot++ })
	r := mustParse(t, ctx, `
		ext :: ToExternal;
		vpn :: ToVPN;
	`)
	r.Push("ext", 0, packet.New([]byte{1}))
	r.Push("vpn", 0, packet.New([]byte{2}))
	if extGot != 1 || vpnGot != 1 {
		t.Fatalf("sinks: ext=%d vpn=%d", extGot, vpnGot)
	}
}

type extFunc func(p *packet.Packet)

func (f extFunc) SendExternal(p *packet.Packet) { f(p) }

type vpnFunc func(p *packet.Packet)

func (f vpnFunc) SendVPN(p *packet.Packet) { f(p) }

func TestSinkElementsRequireContext(t *testing.T) {
	for _, class := range []string{"ToExternal", "ToVPN", "ToTap", "EncapTunnel", "SetTimestamp", "BandwidthShaper"} {
		r := NewRouter(&Context{})
		args := []string{}
		if class == "BandwidthShaper" {
			args = []string{"1000"}
		}
		if err := r.AddElement("x", class, args); err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if err := r.Initialize(); err == nil {
			t.Errorf("%s initialized without its context resource", class)
		}
	}
}

func TestConstructorArgErrors(t *testing.T) {
	bad := map[string][]string{
		"ToTunnel":        {"-1"},
		"ICMPError":       {"11"},
		"IPNAPT":          {"not-an-ip"},
		"Strip":           {"x"},
		"EtherEncap":      {"0x0800", "bad-mac", "02:00:00:00:00:02"},
		"Paint":           {},
		"CheckPaint":      {"x"},
		"Queue":           {"0"},
		"BandwidthShaper": {"-5"},
		"LinkFail":        {"DROP_PROB 2.0"},
		"Classifier":      {"5/zz"},
	}
	for class, args := range bad {
		r := NewRouter(&Context{})
		if err := r.AddElement("x", class, args); err == nil {
			t.Errorf("%s(%v) accepted", class, args)
		}
	}
}

func TestIPNAPTPortsArg(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		napt :: IPNAPT(198.32.154.226, PORTS 5000 5001);
		out :: TestSink;
		napt[0] -> out;
	`)
	ext := packet.MustAddr("64.236.16.20")
	// Only two ports: the third distinct flow fails and is dropped.
	for i := 0; i < 3; i++ {
		r.Push("napt", 0, packet.New(packet.BuildUDP(src10, ext, uint16(6000+i), 80, 62, nil)))
	}
	o, _ := r.Element("out")
	outs := o.(*sink).got
	if len(outs) != 2 {
		t.Fatalf("translated = %d, want 2 (range exhausted)", len(outs))
	}
	for _, p := range outs {
		f, _ := packet.FlowOf(p.Data)
		if f.SrcPort != 5000 && f.SrcPort != 5001 {
			t.Fatalf("allocated port %d outside range", f.SrcPort)
		}
	}
	if v, _ := r.Handler("napt.drops", ""); v != "1" {
		t.Fatalf("drops = %s", v)
	}
	if v, _ := r.Handler("napt.bindings", ""); v != "2" {
		t.Fatalf("bindings = %s", v)
	}
}

func TestCounterResetAndDiscardCount(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		c :: Counter;
		d :: Discard;
		c -> d;
	`)
	r.Push("c", 0, packet.New([]byte{1, 2}))
	r.Push("c", 0, packet.New([]byte{3}))
	if v, _ := r.Handler("d.count", ""); v != "2" {
		t.Fatalf("discard count = %s", v)
	}
	if _, err := r.Handler("c.reset", "1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Handler("c.count", ""); v != "0" {
		t.Fatalf("count after reset = %s", v)
	}
}

func TestICMPErrorNeverAboutICMPError(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		err :: ICMPError(11, 0);
		out :: TestSink;
		err -> out;
	`)
	// An ICMP time-exceeded about a time-exceeded must be suppressed.
	offending := packet.BuildICMPError(packet.MustAddr("10.0.0.9"), packet.ICMPTimeExceeded, 0,
		packet.BuildUDP(src10, dst10, 1, 2, 1, nil))
	r.Push("err", 0, packet.New(offending))
	o, _ := r.Element("out")
	if len(o.(*sink).got) != 0 {
		t.Fatal("generated an ICMP error about an ICMP error")
	}
	// But an echo request still elicits one (RFC allows errors on echo).
	echo := packet.BuildICMPEcho(src10, dst10, false, 1, 1, 1, nil)
	r.Push("err", 0, packet.New(echo))
	if len(o.(*sink).got) != 1 {
		t.Fatal("echo-triggered error suppressed")
	}
}

func TestDuplicateElementClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("Discard", newDiscard)
}

// TestDupSuppress: marked migration clones die at the element, unmarked
// packets pass, and the active handler (used by the mutation tests to
// break suppression deliberately) lets clones through.
func TestDupSuppress(t *testing.T) {
	ctx, _, _ := testCtx()
	r := mustParse(t, ctx, `
		in :: FromTunnel;
		dup :: DupSuppress;
		out :: TestSink;
		in -> dup -> out;
	`)
	clean := packet.Get()
	copy(clean.Extend(3), "abc")
	r.Push("in", 0, clean)
	clone := packet.Get()
	copy(clone.Extend(3), "abc")
	clone.Anno.MigClone = true
	r.Push("in", 0, clone)
	s, _ := r.Element("out")
	if got := len(s.(*sink).got); got != 1 {
		t.Fatalf("delivered %d packets, want 1 (clone must be suppressed)", got)
	}
	if v, err := r.Handler("dup.drops", ""); err != nil || v != "1" {
		t.Fatalf("drops = %q err=%v", v, err)
	}
	if v, err := r.Handler("dup.active", ""); err != nil || v != "true" {
		t.Fatalf("active = %q err=%v", v, err)
	}
	// Break suppression (the mutation-test hook): clones now leak.
	if _, err := r.Handler("dup.active", "false"); err != nil {
		t.Fatalf("set active: %v", err)
	}
	leaked := packet.Get()
	leaked.Anno.MigClone = true
	r.Push("in", 0, leaked)
	if got := len(s.(*sink).got); got != 2 {
		t.Fatalf("delivered %d packets after disabling suppression, want 2", got)
	}
	for _, p := range s.(*sink).got {
		p.Release()
	}
	if _, err := r.Handler("dup.nope", ""); err == nil {
		t.Fatal("unknown handler accepted")
	}
}
